# Convenience targets. Everything is plain `go` underneath.

GO ?= go

.PHONY: all check ci fmt-check fuzz-smoke bench-smoke loadgen-smoke bench-compare bench-baseline vuln build test test-short vet cover race bench bench-build bench-serve bench-store experiments fuzz verify serve-test clean

all: build vet test

# The pre-merge gate: build + vet + the -short suites everywhere, the
# race detector over the concurrency-bearing packages, the evaluation
# service, and the certification suite. Uses test-short consistently so
# the gate stays minutes, not tens of minutes; `make test` runs the
# guarded long builds.
check: build vet test-short race serve-test verify

# Mirrors .github/workflows/ci.yml job for job, so a green local `make
# ci` predicts a green CI run (module download aside).
ci: fmt-check check fuzz-smoke bench-smoke loadgen-smoke bench-compare vuln

# The CI formatting gate: gofmt must have nothing to say.
fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# The CI fuzz gate: a brief seed-corpus + 30s mutation pass over the
# surfaces that parse adversarial bytes — the batched evaluator, the
# TCS2 store decoder, and the TCG1 graph-frame codec (the full `make
# fuzz` rotates every target). CI runs this target rather than its own
# step list, so adding a decoder here arms it everywhere at once.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzEvalBatch -fuzztime 30s ./internal/circuit/
	$(GO) test -run '^$$' -fuzz FuzzTCS2 -fuzztime 30s ./internal/store/
	$(GO) test -run '^$$' -fuzz FuzzGraphFrame -fuzztime 30s ./internal/stream/

# The CI parallel-build regression gate: the sharded builder at N=8 must
# stay within 20% of sequential wall clock (min over repeats); exits
# nonzero otherwise. Skips itself when GOMAXPROCS < 2 — single-core
# machines cannot measure parallel speedup.
bench-smoke:
	$(GO) run ./cmd/tcbench -smoke

# The CI experiment-grid regression gate: run the smoke grid (every
# measured experiment e23-e27 at N=8, each sample a fresh subprocess)
# and diff it against the committed baseline under bench/baselines/.
# The tolerance is deliberately generous — the baseline was measured on
# a 1-core container and hosted runners differ on every absolute
# number — so only a large directional regression trips it; `tcexp
# compare` prints the machine-mismatch warning when that applies.
bench-compare:
	$(GO) run ./cmd/tcexp run -grid exp/smoke.json -out results
	$(GO) run ./cmd/tcexp compare -tol 0.6 bench/baselines/smoke results/latest

# Re-measure the committed smoke baseline in place (run on the
# reference box, inspect the diff, commit).
bench-baseline:
	$(GO) run ./cmd/tcexp run -grid exp/smoke.json -out results
	rm -rf bench/baselines/smoke
	mkdir -p bench/baselines
	cp -rL results/latest bench/baselines/smoke

# The CI serving regression gate: start tcserve, drive it with tcload's
# -smoke burst (closed loop, binary frame protocol, responses verified
# against direct evaluation), and fail if throughput drops below half
# the committed BENCH_serve.json e27 baseline. Skips itself when
# GOMAXPROCS < 2 — the sharded-dispatch number needs real parallelism.
loadgen-smoke:
	scripts/loadgen_smoke.sh

# The coalescing evaluation service and the streaming session layer on
# top of it are dispatcher-goroutine heavy, so their suites always run
# under the race detector.
serve-test:
	$(GO) test -race ./internal/serve ./internal/stream

# Certification: the theorem-bound/differential/metamorphic suite, vet,
# and the race detector over the packages the verifier drives.
verify:
	$(GO) test ./internal/verify -run Certify
	$(GO) vet ./...
	$(GO) test -race -short ./internal/circuit ./internal/core
	$(GO) run ./cmd/tcverify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Skips the multi-million-gate guarded tests (N=32/64 trace builds).
test-short:
	$(GO) test -short ./...

cover:
	$(GO) test -short -cover ./...

# Race-detect the packages that run goroutines (EvalParallel, the
# batch evaluator's worker pool, and the batched core wrappers).
race:
	$(GO) test -race -short ./internal/circuit/... ./internal/core/...

bench:
	$(GO) test -bench=. -benchmem .

# Construction-pipeline benchmarks: sequential vs fork/adopt sharded
# builds (Go benchmarks with allocation stats), then the E24 scaling
# table, which writes BENCH_build.json. Add the N=32 rows (build, eval,
# certify — minutes of wall clock) with:
#   go run ./cmd/tcbench -n32 e24
bench-build:
	$(GO) test -run '^$$' -bench 'BuildParallel' -benchmem .
	$(GO) run ./cmd/tcbench e24

# Serving benchmarks, both sections of BENCH_serve.json: E25 closed-loop
# coalescing vs one-request-per-Eval, then E27 sharded dispatch with
# latency quantiles (closed-loop JSON + frame, open-loop Zipf/Poisson).
bench-serve:
	$(GO) run ./cmd/tcbench e25 e27

# E26 store benchmark: cold parallel build vs content-addressed
# cache-load for N=8/16 Strassen matmul; writes BENCH_store.json.
bench-store:
	$(GO) run ./cmd/tcbench e26

# Regenerate every experiment table (E1-E23; see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/tcbench

# Brief fuzzing pass over the robustness-critical surfaces.
fuzz:
	$(GO) test -fuzz=FuzzRead -fuzztime=30s ./internal/circuit/
	$(GO) test -fuzz=FuzzRoundTrip -fuzztime=30s ./internal/circuit/
	$(GO) test -fuzz=FuzzEvalBatch -fuzztime=30s ./internal/circuit/
	$(GO) test -fuzz=FuzzSumBits -fuzztime=30s ./internal/arith/
	$(GO) test -fuzz=FuzzEncodeSigned -fuzztime=30s ./internal/arith/
	$(GO) test -fuzz=FuzzTCS2 -fuzztime=30s ./internal/store/
	$(GO) test -fuzz=FuzzGraphFrame -fuzztime=30s ./internal/stream/

# The CI known-vulnerability gate: govulncheck's call-graph analysis
# over every package. Needs network access to fetch the tool and the
# vulnerability database, so it is CI-first; offline boxes can skip it
# (the rest of `make ci` is self-contained).
vuln:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@latest ./...

clean:
	$(GO) clean ./...
