// Benchmarks regenerating the paper's quantitative content: one
// Benchmark per experiment in DESIGN.md's index. Each reports
// the relevant size/depth/gate figures via b.ReportMetric so the bench
// log doubles as the experiment record (see EXPERIMENTS.md).
package tcmm_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	tcmm "repro"
)

// E1 — Figure 1: Strassen's algorithm as a conventional recursive
// executor (the baseline the circuits are compared to), 16x16 full
// recursion: 7^4 = 2401 scalar multiplications.
func BenchmarkE1_StrassenExecutor(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := tcmm.RandomMatrix(rng, 16, 16, -9, 9)
	y := tcmm.RandomMatrix(rng, 16, 16, -9, 9)
	e := tcmm.NewExecutor(tcmm.Strassen(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Mul(x, y); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(e.Ops().ScalarMuls)/float64(b.N), "muls/op")
}

// E2 — Figure 2 / equation (3): coefficient-grid construction for every
// node four levels deep, whose total nonzeros must be s_A^4 = 20736.
func BenchmarkE2_TreeSparsity(b *testing.B) {
	alg := tcmm.Strassen()
	for i := 0; i < b.N; i++ {
		est := tcmm.EstimateTraceGates(alg, 1, 4, tcmm.DirectSchedule(4))
		if est.Total() <= 0 {
			b.Fatal("bad estimate")
		}
	}
}

// E3 — Section 4.3 constants: sparsity analysis of every registered
// algorithm.
func BenchmarkE3_Params(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, alg := range tcmm.Algorithms() {
			p := alg.Params()
			if p.S == 0 {
				b.Fatal("bad params")
			}
		}
	}
	b.ReportMetric(tcmm.Strassen().Params().Gamma, "gamma")
	b.ReportMetric(tcmm.Strassen().Params().CConst, "c")
}

// E4 — Section 1 baseline: build + evaluate the naive depth-2 triangle
// circuit at N=32 (C(32,3)+1 = 4961 gates).
func BenchmarkE4_NaiveTriangle(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	g := tcmm.ErdosRenyi(rng, 32, 0.3)
	adj := g.Adjacency()
	tc, err := tcmm.NewNaiveTriangle(32, 10)
	if err != nil {
		b.Fatal(err)
	}
	in, err := tc.Assign(adj)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc.Circuit.Eval(in)
	}
	b.ReportMetric(float64(tc.Circuit.Size()), "gates")
	b.ReportMetric(float64(tc.Circuit.Depth()), "depth")
}

// E5 — Lemmas 3.1–3.3: the workhorse arithmetic — build and evaluate a
// depth-2 Lemma 3.2 summation of 64 numbers (the inner loop of every
// tree transition).
func BenchmarkE5_ArithCircuits(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	// Exercise through the public surface: an 8x8 binary matmul circuit
	// is a bundle of Lemma 3.1/3.2/3.3 instances.
	mc, err := tcmm.NewMatMul(8, tcmm.Options{Alg: tcmm.Strassen()})
	if err != nil {
		b.Fatal(err)
	}
	x := tcmm.RandomBinaryMatrix(rng, 8, 8, 0.5)
	y := tcmm.RandomBinaryMatrix(rng, 8, 8, 0.5)
	in, err := mc.Assign(x, y)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mc.Circuit.EvalParallel(in, 0)
	}
	b.ReportMetric(float64(mc.Circuit.Size()), "gates")
}

// E6 — Theorem 4.5: trace circuit at N=16, build once, decide per op.
func BenchmarkE6_TraceCircuit(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	g := tcmm.ErdosRenyi(rng, 16, 0.4)
	tc, err := tcmm.NewTrace(16, 6*g.Triangles(), tcmm.Options{Alg: tcmm.Strassen()})
	if err != nil {
		b.Fatal(err)
	}
	adj := g.Adjacency()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := tc.Decide(adj)
		if err != nil || !got {
			b.Fatal("wrong answer")
		}
	}
	b.ReportMetric(float64(tc.Circuit.Size()), "gates")
	b.ReportMetric(float64(tc.Circuit.Depth()), "depth")
}

// E6b — Theorem 4.5 build cost: constructing the N=16 trace circuit.
func BenchmarkE6_TraceBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := tcmm.NewTrace(16, 6, tcmm.Options{Alg: tcmm.Strassen()}); err != nil {
			b.Fatal(err)
		}
	}
}

// E24 — construction-pipeline scaling: the same N=16 trace build with
// the sequential builder versus the fork/adopt sharded path
// (Options.BuildWorkers). The circuits are bit-identical either way;
// only wall-clock and allocation behaviour differ. workers=-1 resolves
// to GOMAXPROCS.
func BenchmarkE6_TraceBuildParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4, -1} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := tcmm.NewTrace(16, 6, tcmm.Options{Alg: tcmm.Strassen(), BuildWorkers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E7 — Theorem 4.9: matmul circuit at N=8, multiply per op.
func BenchmarkE7_MatMulCircuit(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	mc, err := tcmm.NewMatMul(8, tcmm.Options{Alg: tcmm.Strassen()})
	if err != nil {
		b.Fatal(err)
	}
	x := tcmm.RandomBinaryMatrix(rng, 8, 8, 0.5)
	y := tcmm.RandomBinaryMatrix(rng, 8, 8, 0.5)
	want := x.Mul(y)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := mc.Multiply(x, y)
		if err != nil || !got.Equal(want) {
			b.Fatal("wrong product")
		}
	}
	b.ReportMetric(float64(mc.Circuit.Size()), "gates")
	b.ReportMetric(float64(mc.Circuit.Depth()), "depth")
}

// E7b — Theorem 4.9 build cost: constructing the N=8 matmul circuit.
func BenchmarkE7_MatMulBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := tcmm.NewMatMul(8, tcmm.Options{Alg: tcmm.Strassen()}); err != nil {
			b.Fatal(err)
		}
	}
}

// E24 — construction-pipeline scaling for matmul: N=16 Strassen build,
// sequential versus fork/adopt sharding (see E6 counterpart).
func BenchmarkE7_MatMulBuildParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4, -1} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := tcmm.NewMatMul(16, tcmm.Options{Alg: tcmm.Strassen(), BuildWorkers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E8 — Theorem 4.4/4.8: loglog schedule generation + model evaluation
// up to N = 2^32.
func BenchmarkE8_LogLogSchedule(b *testing.B) {
	alg := tcmm.Strassen()
	gamma := alg.Params().Gamma
	var t float64
	for i := 0; i < b.N; i++ {
		for _, l := range []int{8, 16, 32} {
			sched := tcmm.LogLogSchedule(gamma, l)
			t = float64(sched.Transitions())
			if tcmm.EstimateTraceGates(alg, 1, l, sched).Total() <= 0 {
				b.Fatal("bad estimate")
			}
		}
	}
	b.ReportMetric(t, "transitions@2^32")
}

// E9 — schedule ablation: model gates for geometric vs uniform vs
// direct at N=2^20 (geometric must win; asserted in counting tests).
func BenchmarkE9_ScheduleAblation(b *testing.B) {
	alg := tcmm.Strassen()
	gamma := alg.Params().Gamma
	const l = 20
	var geo, uni, dir float64
	for i := 0; i < b.N; i++ {
		gs := tcmm.ConstantDepthSchedule(gamma, l, 4)
		geo = tcmm.EstimateTraceGates(alg, 1, l, gs).Total()
		uni = tcmm.EstimateTraceGates(alg, 1, l, tcmm.UniformSchedule(l, gs.Transitions())).Total()
		dir = tcmm.EstimateTraceGates(alg, 1, l, tcmm.DirectSchedule(l)).Total()
	}
	b.ReportMetric(uni/geo, "uniform/geometric")
	b.ReportMetric(dir/geo, "direct/geometric")
}

// E10 — the headline crossover: fitted model exponent at L=48..64 for
// d = 5 (must be < 3) and d = 1 (must be > 3).
func BenchmarkE10_Crossover(b *testing.B) {
	alg := tcmm.Strassen()
	gamma := alg.Params().Gamma
	fit := func(d int) float64 {
		g1 := tcmm.EstimateTraceGates(alg, 1, 48, tcmm.ConstantDepthSchedule(gamma, 48, d)).Total()
		g2 := tcmm.EstimateTraceGates(alg, 1, 64, tcmm.ConstantDepthSchedule(gamma, 64, d)).Total()
		return math.Log(g2/g1) / (16 * math.Ln2)
	}
	var e1, e5 float64
	for i := 0; i < b.N; i++ {
		e1, e5 = fit(1), fit(5)
	}
	b.ReportMetric(e1, "exponent-d1")
	b.ReportMetric(e5, "exponent-d5")
}

// E11 — Section 5 convolution: circuit GEMM for a 16-patch layer,
// partitioned to 4 rows per piece.
func BenchmarkE11_ConvFanIn(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	im := tcmm.NewImage(8, 8, 1)
	for i := 0; i < 64; i++ {
		im.Set(i/8, i%8, 0, rng.Int63n(4))
	}
	k := tcmm.NewKernel(2, 1)
	k.Set(0, 0, 0, 1)
	k.Set(1, 1, 0, -1)
	kernels := []*tcmm.Kernel{k}
	direct, err := tcmm.ConvDirect(im, kernels, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var fanIn int
	for i := 0; i < b.N; i++ {
		res, err := tcmm.ConvViaCircuit(im, kernels, 2, tcmm.Options{Alg: tcmm.Strassen()}, 4)
		if err != nil || !res.Scores.Equal(direct) {
			b.Fatal("wrong scores")
		}
		fanIn = res.MaxFanIn
	}
	b.ReportMetric(float64(fanIn), "maxfanin")
}

// E12 — Sections 5–6: triangle query energy on a community graph:
// evaluate the subcubic circuit and count firing gates.
func BenchmarkE12_TrianglesEnergy(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	g := tcmm.PlantedCommunities(rng, 16, 4, 0.8, 0.05)
	tc, err := tcmm.NewTrace(16, g.TauForClustering(0.4), tcmm.Options{Alg: tcmm.Strassen()})
	if err != nil {
		b.Fatal(err)
	}
	in, err := tc.Assign(g.Adjacency())
	if err != nil {
		b.Fatal(err)
	}
	var energy int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vals := tc.Circuit.EvalParallel(in, 0)
		energy = tc.Circuit.Energy(vals)
	}
	b.ReportMetric(float64(energy), "energy")
	b.ReportMetric(float64(energy)/float64(tc.Circuit.Size()), "fired-fraction")
}

// E14 — constant depth vs PRAM log-span: the parallel fork-join
// executor at N=16 (work = sequential ops, span = 1 + 3·log2 N).
func BenchmarkE14_PRAMBaseline(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	x := tcmm.RandomBinaryMatrix(rng, 16, 16, 0.5)
	y := tcmm.RandomBinaryMatrix(rng, 16, 16, 0.5)
	e := tcmm.NewPRAMExecutor(tcmm.Strassen(), 0, 1)
	var m tcmm.PRAMMeasures
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, mm, err := e.Mul(x, y)
		if err != nil {
			b.Fatal(err)
		}
		m = mm
	}
	b.ReportMetric(float64(m.Work), "work")
	b.ReportMetric(float64(m.Span), "span")
}

// E15 — Theorem 4.1: build the staged-adder trace circuit at N=16, d=2.
func BenchmarkE15_Theorem41(b *testing.B) {
	var depth, fanin int
	for i := 0; i < b.N; i++ {
		tc, err := tcmm.NewTheorem41Trace(16, 6, tcmm.Strassen(), 2, 1, false)
		if err != nil {
			b.Fatal(err)
		}
		depth = tc.Circuit.Depth()
		fanin = tc.Circuit.MaxFanIn()
	}
	b.ReportMetric(float64(depth), "depth")
	b.ReportMetric(float64(fanin), "maxfanin")
}

// E16 — placement ablation: locality placement of the N=8 matmul
// circuit on a Loihi-like device.
func BenchmarkE16_PlacementLocality(b *testing.B) {
	rng := rand.New(rand.NewSource(16))
	mc, err := tcmm.NewMatMul(8, tcmm.Options{Alg: tcmm.Strassen()})
	if err != nil {
		b.Fatal(err)
	}
	x := tcmm.RandomBinaryMatrix(rng, 8, 8, 0.5)
	y := tcmm.RandomBinaryMatrix(rng, 8, 8, 0.5)
	in, err := mc.Assign(x, y)
	if err != nil {
		b.Fatal(err)
	}
	dev := tcmm.LoihiDevice()
	var off int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := tcmm.PlaceLocality(mc.Circuit, dev)
		if err != nil {
			b.Fatal(err)
		}
		_, st, err := tcmm.RunOnDevice(mc.Circuit, dev, p, in)
		if err != nil {
			b.Fatal(err)
		}
		off = st.OffCoreEvents
	}
	b.ReportMetric(float64(off), "offcore")
}

// E17 — the exact-count extension at N=16: count triangles per op.
func BenchmarkE17_CountCircuit(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	cc, err := tcmm.NewCount(16, tcmm.Options{Alg: tcmm.Strassen()})
	if err != nil {
		b.Fatal(err)
	}
	g := tcmm.ErdosRenyi(rng, 16, 0.4)
	adj := g.Adjacency()
	want := g.Triangles()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := cc.Triangles(adj)
		if err != nil || got != want {
			b.Fatal("wrong count")
		}
	}
	b.ReportMetric(float64(cc.Circuit.Size()), "gates")
	b.ReportMetric(float64(cc.Circuit.Depth()), "depth")
}

// E18 — the MSB-sharing optimization: build the shared-layer trace
// circuit and report the gate saving against the plain build.
func BenchmarkE18_SharedMSB(b *testing.B) {
	var plain, shared int
	for i := 0; i < b.N; i++ {
		p, err := tcmm.NewTrace(8, 6, tcmm.Options{Alg: tcmm.Strassen()})
		if err != nil {
			b.Fatal(err)
		}
		s, err := tcmm.NewTrace(8, 6, tcmm.Options{Alg: tcmm.Strassen(), SharedMSB: true})
		if err != nil {
			b.Fatal(err)
		}
		plain, shared = p.Circuit.Size(), s.Circuit.Size()
	}
	b.ReportMetric(float64(plain-shared)/float64(plain)*100, "saved-%")
}

// E19 — Section 6 energy: evaluate the trace circuit and report the
// firing fraction.
func BenchmarkE19_EnergyProfile(b *testing.B) {
	rng := rand.New(rand.NewSource(19))
	tc, err := tcmm.NewTrace(16, 6, tcmm.Options{Alg: tcmm.Strassen()})
	if err != nil {
		b.Fatal(err)
	}
	g := tcmm.ErdosRenyi(rng, 16, 0.5)
	in, err := tc.Assign(g.Adjacency())
	if err != nil {
		b.Fatal(err)
	}
	var energy int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vals := tc.Circuit.EvalParallel(in, 0)
		energy = tc.Circuit.Energy(vals)
	}
	b.ReportMetric(float64(energy)/float64(tc.Circuit.Size()), "fired-fraction")
}

// E20 — fused spiking CNN: forward pass through the single compiled
// circuit.
func BenchmarkE20_FusedCNN(b *testing.B) {
	rng := rand.New(rand.NewSource(20))
	k1 := tcmm.NewKernel(2, 1)
	k1.Set(0, 0, 0, 1)
	k1.Set(1, 1, 0, -1)
	k2 := tcmm.NewKernel(2, 1)
	k2.Set(0, 1, 0, 1)
	k2.Set(1, 0, 0, -1)
	net := &tcmm.ConvNetwork{Layers: []tcmm.ConvLayer{
		{Kernels: []*tcmm.Kernel{k1, k2}, Stride: 2, Threshold: 1},
	}}
	opts := tcmm.Options{Alg: tcmm.Strassen(), SharedMSB: true}
	fn, err := net.BuildFused(8, 8, 1, 3, &opts)
	if err != nil {
		b.Fatal(err)
	}
	im := tcmm.NewImage(8, 8, 1)
	for j := range im.Data {
		im.Data[j] = rng.Int63n(4)
	}
	want, err := net.ForwardDirect(im)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := fn.Forward(im)
		if err != nil {
			b.Fatal(err)
		}
		for j := range want.Data {
			if want.Data[j] != got.Data[j] {
				b.Fatal("fused output wrong")
			}
		}
	}
	b.ReportMetric(float64(fn.Circuit.Size()), "gates")
}

// E21 — social-network scale: sparse triangle counting at 50k vertices.
func BenchmarkE21_SparseTriangles(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	g := tcmm.SparseErdosRenyi(rng, 50000, 10.0/50000)
	var tri int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tri = g.Triangles()
	}
	b.ReportMetric(float64(tri), "triangles")
	b.ReportMetric(float64(g.NumEdges()), "edges")
}

// E23 — the batched bit-sliced evaluation engine on the Strassen
// matmul circuit at N=8 (the largest N the seed benchmarks build):
// one sub-benchmark per (batch, workers) point, reporting samples/sec
// so the ≥3x-at-batch-64 acceptance bar is read straight off the log.
// BenchmarkE23_EvalSingle is the per-sample baseline.
func BenchmarkE23_EvalSingle(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	mc, err := tcmm.NewMatMul(8, tcmm.Options{Alg: tcmm.Strassen()})
	if err != nil {
		b.Fatal(err)
	}
	x := tcmm.RandomBinaryMatrix(rng, 8, 8, 0.5)
	y := tcmm.RandomBinaryMatrix(rng, 8, 8, 0.5)
	in, err := mc.Assign(x, y)
	if err != nil {
		b.Fatal(err)
	}
	var vals []bool
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vals = mc.Circuit.EvalInto(in, vals)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "samples/sec")
}

func BenchmarkE23_EvalBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	mc, err := tcmm.NewMatMul(8, tcmm.Options{Alg: tcmm.Strassen()})
	if err != nil {
		b.Fatal(err)
	}
	const maxBatch = 256
	inputs := make([][]bool, maxBatch)
	for i := range inputs {
		x := tcmm.RandomBinaryMatrix(rng, 8, 8, 0.5)
		y := tcmm.RandomBinaryMatrix(rng, 8, 8, 0.5)
		if inputs[i], err = mc.Assign(x, y); err != nil {
			b.Fatal(err)
		}
	}
	for _, workers := range []int{1, 0} { // 0 = GOMAXPROCS
		for _, batch := range []int{1, 16, 64, 256} {
			name := fmt.Sprintf("batch=%d/workers=%d", batch, workers)
			b.Run(name, func(b *testing.B) {
				e := tcmm.NewEvaluator(mc.Circuit, workers)
				defer e.Close()
				in := inputs[:batch]
				packed := tcmm.PackBools(in)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.EvalPlanes(packed)
				}
				b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "samples/sec")
			})
		}
	}
}

// E13 — neuromorphic deployment: place + run the N=8 matmul circuit on
// a Loihi-like device per op.
func BenchmarkE13_NeuroMapping(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	mc, err := tcmm.NewMatMul(8, tcmm.Options{Alg: tcmm.Strassen()})
	if err != nil {
		b.Fatal(err)
	}
	x := tcmm.RandomBinaryMatrix(rng, 8, 8, 0.5)
	y := tcmm.RandomBinaryMatrix(rng, 8, 8, 0.5)
	in, err := mc.Assign(x, y)
	if err != nil {
		b.Fatal(err)
	}
	var stats tcmm.DeviceStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st, err := tcmm.Deploy(mc.Circuit, tcmm.LoihiDevice(), in)
		if err != nil {
			b.Fatal(err)
		}
		stats = st
	}
	b.ReportMetric(float64(stats.Cores), "cores")
	b.ReportMetric(float64(stats.Spikes), "spikes")
	b.ReportMetric(stats.Energy, "energy")
}
