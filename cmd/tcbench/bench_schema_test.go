package main

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"

	"repro/internal/exp"
)

// The BENCH_*.json artifacts written by e24/e25 are machine-read (CI
// trend tracking); these tests pin their schemas and the e25 acceptance
// bar. Each skips when its artifact is absent so plain `go test ./...`
// does not require a prior bench run.

func loadRows(t *testing.T, path string, dst any) {
	t.Helper()
	// tcbench writes relative to the repo root; the test runs in the
	// package directory, so check both.
	data, err := os.ReadFile("../../" + path)
	if os.IsNotExist(err) {
		data, err = os.ReadFile(path)
	}
	if os.IsNotExist(err) {
		t.Skipf("%s not present; run `go run ./cmd/tcbench %s` first", path, map[string]string{
			"BENCH_build.json": "e24", "BENCH_serve.json": "e25 e27 e28", "BENCH_store.json": "e26",
		}[path])
	}
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		t.Fatalf("%s: schema drift: %v", path, err)
	}
}

func TestBenchBuildSchema(t *testing.T) {
	var rows []buildBenchRow
	loadRows(t, "BENCH_build.json", &rows)
	if len(rows) == 0 {
		t.Fatal("BENCH_build.json has no rows")
	}
	n32 := map[string]bool{}
	for i, r := range rows {
		if r.Circuit == "" || r.N <= 0 || r.Workers == 0 || r.Gates <= 0 ||
			r.Repeats <= 0 || r.BuildSecMean <= 0 || r.BuildSecMin <= 0 ||
			r.GoMaxProcs <= 0 || r.NumCPU <= 0 {
			t.Errorf("row %d malformed: %+v", i, r)
		}
		if r.BuildSecMin > r.BuildSecMean*(1+1e-9) {
			t.Errorf("row %d: min %.4f exceeds mean %.4f", i, r.BuildSecMin, r.BuildSecMean)
		}
		// Std is 0 for single-repeat rows (the N=32 entries) and must
		// never be negative; provenance must name a commit or "unknown".
		if r.BuildSecStd < 0 || (r.Repeats < 2 && r.BuildSecStd != 0) {
			t.Errorf("row %d: build_sec_std %g inconsistent with repeats %d", i, r.BuildSecStd, r.Repeats)
		}
		if !exp.WellFormedSHA(r.GitSHA) {
			t.Errorf("row %d: git_sha %q not well-formed", i, r.GitSHA)
		}
		if !r.Identical {
			t.Errorf("row %d: parallel build not identical to sequential: %+v", i, r)
		}
		if r.N == 32 {
			n32[r.Circuit] = true
			if r.Workers == 1 && !r.Checked {
				t.Errorf("row %d: sequential N=32 %s row not evaluated+certified", i, r.Circuit)
			}
		}
	}
	for _, circ := range []string{"trace", "matmul"} {
		if !n32[circ] {
			t.Errorf("BENCH_build.json missing the N=32 %s row", circ)
		}
	}
}

func TestBenchServeSchema(t *testing.T) {
	var file serveBenchFile
	loadRows(t, "BENCH_serve.json", &file)
	// Serve rows are single runs, so provenance lives at file level.
	if !exp.WellFormedSHA(file.GitSHA) {
		t.Errorf("file git_sha %q not well-formed", file.GitSHA)
	}

	modes := make(map[string]bool)
	for i, r := range file.E25 {
		modes[r.Mode] = true
		if r.Clients <= 0 || r.Requests <= 0 || r.Seconds <= 0 || r.RPS <= 0 {
			t.Errorf("e25 row %d malformed: %+v", i, r)
		}
		if !r.Identical {
			t.Errorf("e25 row %d (%s): responses not bit-identical to direct Eval", i, r.Mode)
		}
		if r.Mode == "coalesced" && r.Speedup < 3 {
			t.Errorf("coalesced speedup %.2fx below the 3x acceptance bar", r.Speedup)
		}
	}
	for _, mode := range []string{"per-request-eval", "coalesced", "http-coalesced"} {
		if !modes[mode] {
			t.Errorf("BENCH_serve.json missing e25 mode %q", mode)
		}
	}

	// E27: sharded-dispatch rows carry latency quantiles and record the
	// parallelism they were measured under. The ≥3x bar against e25's
	// http-coalesced row is armed only for multi-core measurements —
	// sharding cannot beat coalescing-on-one-core on a one-core host,
	// and the honest number is published either way (the multi-core gate
	// lives in CI's loadgen-smoke job).
	e27Modes := make(map[string]bool)
	for i, r := range file.E27 {
		e27Modes[r.Mode] = true
		if r.Shards <= 0 || r.Clients <= 0 || r.Requests <= 0 || r.Seconds <= 0 ||
			r.RPS <= 0 || r.GoMaxProcs <= 0 {
			t.Errorf("e27 row %d malformed: %+v", i, r)
		}
		if !(0 < r.P50us && r.P50us <= r.P99us && r.P99us <= r.P999us) {
			t.Errorf("e27 row %d (%s): quantiles not ordered: p50=%d p99=%d p999=%d",
				i, r.Mode, r.P50us, r.P99us, r.P999us)
		}
		if !r.Identical {
			t.Errorf("e27 row %d (%s): responses not bit-identical to direct Eval", i, r.Mode)
		}
		if r.Mode == "http-zipf-open" && (r.RateRPS <= 0 || r.ZipfS <= 1) {
			t.Errorf("e27 open-loop row missing rate/zipf parameters: %+v", r)
		}
		if r.GoMaxProcs >= 4 && r.Mode == "http-sharded" && r.SpeedupVsE25HTTP < 3 {
			t.Errorf("http-sharded speedup %.2fx below the 3x multi-core acceptance bar",
				r.SpeedupVsE25HTTP)
		}
	}
	for _, mode := range []string{"http-sharded", "http-sharded-frame", "http-zipf-open"} {
		if !e27Modes[mode] {
			t.Errorf("BENCH_serve.json missing e27 mode %q", mode)
		}
	}

	// E28: the streaming service. The ≥4x batched-re-screen bar is a
	// bit-slicing win (64 graphs per machine word), not a parallelism
	// win, so it is armed regardless of GoMaxProcs; the sequential and
	// batched energy totals must agree exactly — popcount accounting
	// over bit planes ≡ per-sample firing counts. An absent e28 section
	// only means the row hasn't been generated yet (omitempty), but a
	// present one must be complete.
	if len(file.E28) > 0 {
		e28Rows := make(map[string]e28Row)
		for i, r := range file.E28 {
			e28Rows[r.Mode] = r
			if r.Tenants <= 0 || r.N <= 0 || r.Requests <= 0 || r.Seconds <= 0 ||
				r.RPS <= 0 || r.EnergyGates <= 0 || r.GoMaxProcs <= 0 {
				t.Errorf("e28 row %d malformed: %+v", i, r)
			}
			if !r.Identical {
				t.Errorf("e28 row %d (%s): screened counts not bit-identical to the scalar recount oracle", i, r.Mode)
			}
		}
		for _, mode := range []string{"update-screen-http", "screen-sequential", "screen-batch64"} {
			if _, ok := e28Rows[mode]; !ok {
				t.Errorf("BENCH_serve.json missing e28 mode %q", mode)
			}
		}
		httpRow, seq, batch := e28Rows["update-screen-http"], e28Rows["screen-sequential"], e28Rows["screen-batch64"]
		if !(0 < httpRow.P50us && httpRow.P50us <= httpRow.P99us) {
			t.Errorf("e28 http row: quantiles not ordered: p50=%d p99=%d", httpRow.P50us, httpRow.P99us)
		}
		if httpRow.UpdateBatch <= 0 {
			t.Errorf("e28 http row missing update_batch: %+v", httpRow)
		}
		if batch.SpeedupVsSequential < 4 {
			t.Errorf("e28 batched re-screen speedup %.2fx below the 4x acceptance bar",
				batch.SpeedupVsSequential)
		}
		if seq.Requests != batch.Requests {
			t.Errorf("e28 re-screen modes screened different request counts: %d vs %d",
				seq.Requests, batch.Requests)
		}
		if seq.EnergyGates != batch.EnergyGates {
			t.Errorf("e28 energy totals diverge: sequential %d vs batched %d",
				seq.EnergyGates, batch.EnergyGates)
		}
	}
}

func TestBenchStoreSchema(t *testing.T) {
	var rows []storeBenchRow
	loadRows(t, "BENCH_store.json", &rows)
	have := make(map[[2]any]bool)
	for i, r := range rows {
		have[[2]any{r.N, r.Format}] = true
		if r.Circuit == "" || r.N <= 0 || r.Gates <= 0 || r.Bytes <= 0 ||
			r.Repeats <= 0 || r.GoMaxProcs <= 0 || r.NumCPU <= 0 ||
			r.BuildSecMean <= 0 || r.BuildSecMin <= 0 ||
			r.SaveSecMean <= 0 || r.SaveSecMin <= 0 ||
			r.LoadColdSec <= 0 || r.LoadWarmSecMean <= 0 || r.LoadWarmSecMin <= 0 ||
			r.BytesVsTCS1 <= 0 {
			t.Errorf("row %d malformed: %+v", i, r)
		}
		if r.Format != "tcs1" && r.Format != "tcs2" {
			t.Errorf("row %d: unknown format %q", i, r.Format)
		}
		if r.BuildSecMin > r.BuildSecMean*(1+1e-9) ||
			r.SaveSecMin > r.SaveSecMean*(1+1e-9) ||
			r.LoadWarmSecMin > r.LoadWarmSecMean*(1+1e-9) {
			t.Errorf("row %d: a min exceeds its mean: %+v", i, r)
		}
		if r.BuildSecStd < 0 || r.SaveSecStd < 0 || r.LoadWarmSecStd < 0 {
			t.Errorf("row %d: negative std: %+v", i, r)
		}
		if !exp.WellFormedSHA(r.GitSHA) {
			t.Errorf("row %d: git_sha %q not well-formed", i, r.GitSHA)
		}
		if !r.Identical {
			t.Errorf("row %d (n=%d %s): reloaded circuit not bit-identical to the build", i, r.N, r.Format)
		}
		if !r.Certified {
			t.Errorf("row %d (n=%d %s): reloaded circuit failed re-certification", i, r.N, r.Format)
		}
		// The TCS2 acceptance bars, armed on the N=16 row: a quarter of
		// the TCS1 footprint, saving no slower than building, and a warm
		// mapped reload at least 15x faster than the cold parallel build.
		// The speedup bar divides two measured wall-clock figures, so it
		// moves when either side does: on the 1-core reference box the
		// ratio ranges 17–21x (warm load steady at ~0.09s, build 1.8–2.0s
		// run to run). 15x keeps it a load-path-regression tripwire, not
		// a build-speed jitter detector.
		if r.N == 16 && r.Format == "tcs2" {
			if r.BytesVsTCS1 > 0.25 {
				t.Errorf("n=16 tcs2 artifact is %.1f%% of TCS1, above the 25%% bar", r.BytesVsTCS1*100)
			}
			if r.SaveSecMean > r.BuildSecMean {
				t.Errorf("n=16 tcs2 save %.3fs slower than build %.3fs", r.SaveSecMean, r.BuildSecMean)
			}
			if r.Speedup < 15 {
				t.Errorf("n=16 tcs2 mapped-load speedup %.2fx below the 15x acceptance bar", r.Speedup)
			}
		}
	}
	for _, n := range []int{8, 16} {
		for _, format := range []string{"tcs1", "tcs2"} {
			if !have[[2]any{n, format}] {
				t.Errorf("BENCH_store.json missing the n=%d %s row", n, format)
			}
		}
	}
}
