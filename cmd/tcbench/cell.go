package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	tcmm "repro"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/load"
	"repro/internal/serve"
	"repro/internal/store"
)

// The -cell mode is tcbench's machine-readable face: cmd/tcexp runs
// `tcbench -cell '{"experiment":"e24","n":8,"workers":2,...}'` once
// per grid sample, in a fresh process, and reads exactly one JSON
// object — {"metrics": {...}} — from stdout. Everything human
// (progress, build chatter) goes to stderr. Each cell is a single-shot
// measurement: repeats, warmup discards and mean/std/min aggregation
// belong to the caller, which is what makes the variance it reports
// across-process variance rather than in-process warmup drift.

// runCell executes one cell sample and prints its metrics.
func runCell(spec string) int {
	var cell exp.Cell
	if err := json.Unmarshal([]byte(spec), &cell); err != nil {
		fmt.Fprintf(os.Stderr, "tcbench -cell: bad spec: %v\n", err)
		return 2
	}
	if cell.N <= 0 {
		cell.N = 8
	}
	if cell.Workers <= 0 {
		cell.Workers = 1
	}
	if cell.Seconds <= 0 {
		cell.Seconds = 0.5
	}
	cells := map[string]func(exp.Cell) (map[string]float64, error){
		"e23": cellE23, "e24": cellE24, "e25": cellE25, "e26": cellE26, "e27": cellE27,
	}
	f, ok := cells[cell.Experiment]
	if !ok {
		fmt.Fprintf(os.Stderr, "tcbench -cell: unknown experiment %q\n", cell.Experiment)
		return 2
	}
	metrics, err := f(cell)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcbench -cell %s: %v\n", cell.Key(), err)
		return 1
	}
	out, err := json.Marshal(map[string]any{"metrics": metrics})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcbench -cell: %v\n", err)
		return 1
	}
	fmt.Println(string(out))
	return 0
}

// cellE23 — batched bit-sliced evaluation throughput: EvalPlanes over
// batch-64 blocks on the N-matmul circuit with the requested worker
// count, against a sequential-Eval reference rate.
func cellE23(cell exp.Cell) (map[string]float64, error) {
	rng := rand.New(rand.NewSource(23))
	mc, err := tcmm.NewMatMul(cell.N, tcmm.Options{Alg: tcmm.Strassen()})
	if err != nil {
		return nil, err
	}
	const batch = 64
	inputs := make([][]bool, batch)
	for i := range inputs {
		a := tcmm.RandomBinaryMatrix(rng, cell.N, cell.N, 0.5)
		b := tcmm.RandomBinaryMatrix(rng, cell.N, cell.N, 0.5)
		if inputs[i], err = mc.Assign(a, b); err != nil {
			return nil, err
		}
	}
	ev := tcmm.NewEvaluator(mc.Circuit, cell.Workers)
	defer ev.Close()
	planes := tcmm.PackBools(inputs)

	budget := time.Duration(cell.Seconds * float64(time.Second))
	samples, start := 0, time.Now()
	for time.Since(start) < budget {
		ev.EvalPlanes(planes)
		samples += batch
	}
	rate := float64(samples) / time.Since(start).Seconds()
	return map[string]float64{
		"samples_per_sec": rate,
		"gates":           float64(mc.Circuit.Size()),
	}, nil
}

// cellE24 — one cold construction of the N-trace circuit with
// BuildWorkers=workers, plus the Uchizawa energy (gates fired) of the
// built decision circuit on a fixed seeded graph. Energy is
// deterministic given the seed, so any drift in it across runs of the
// same code is a correctness signal, not noise.
func cellE24(cell exp.Cell) (map[string]float64, error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	tc, err := tcmm.NewTrace(cell.N, 6, tcmm.Options{Alg: tcmm.Strassen(), BuildWorkers: cell.Workers})
	if err != nil {
		return nil, err
	}
	buildSec := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)

	g := tcmm.ErdosRenyi(rand.New(rand.NewSource(24)), cell.N, 0.3)
	in, err := tc.Assign(g.Adjacency())
	if err != nil {
		return nil, err
	}
	vals := tc.Circuit.Eval(in)
	return map[string]float64{
		"build_sec":    buildSec,
		"alloc_mb":     float64(after.TotalAlloc-before.TotalAlloc) / (1 << 20),
		"mallocs":      float64(after.Mallocs - before.Mallocs),
		"gates":        float64(tc.Circuit.Size()),
		"energy_gates": float64(tc.Circuit.Energy(vals)),
	}, nil
}

// cellE25 — coalesced serving throughput: `workers` closed-loop
// clients against the in-process service with MaxBatch=64, every
// response checked bit-identical to a direct evaluation.
func cellE25(cell exp.Cell) (map[string]float64, error) {
	shape := core.Shape{Op: core.OpMatMul, N: cell.N, Alg: "strassen", EntryBits: 2, Signed: true}
	fmt.Fprintf(os.Stderr, "building %s ...\n", shape.Key())
	built, err := core.BuildShape(shape, -1)
	if err != nil {
		return nil, err
	}
	c := built.Circuit()
	outs := c.Outputs()
	ev := circuit.NewEvaluator(c, 1)
	defer ev.Close()

	const nSamples = 64
	rng := rand.New(rand.NewSource(25))
	ins := make([][]bool, nSamples)
	want := make([][]bool, nSamples)
	for i := range ins {
		in := make([]bool, c.NumInputs())
		for j := range in {
			in[j] = rng.Intn(2) == 1
		}
		ins[i] = in
		vals := ev.Eval(in)
		w := make([]bool, len(outs))
		for j, o := range outs {
			w[j] = vals[o]
		}
		want[i] = w
	}

	s := serve.New(serve.Config{MaxBatch: 64})
	defer s.Close()
	if _, err := s.Built(context.Background(), shape); err != nil {
		return nil, err
	}
	var (
		done      atomic.Bool
		completed atomic.Int64
		next      atomic.Int64
		mismatch  atomic.Int64
		wg        sync.WaitGroup
	)
	start := time.Now()
	for range cell.Workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				i := int(next.Add(1)-1) % nSamples
				out, err := s.Do(context.Background(), shape, ins[i])
				if err != nil {
					mismatch.Add(1)
					return
				}
				ok := len(out) == len(want[i])
				for j := range out {
					ok = ok && out[j] == want[i][j]
				}
				if !ok {
					mismatch.Add(1)
				}
				completed.Add(1)
			}
		}()
	}
	time.Sleep(time.Duration(cell.Seconds * float64(time.Second)))
	done.Store(true)
	wg.Wait()
	if mismatch.Load() > 0 {
		return nil, fmt.Errorf("%d responses not bit-identical to direct Eval", mismatch.Load())
	}
	sec := time.Since(start).Seconds()
	snap := s.Snapshot()
	meanBatch := 0.0
	if snap.Batches > 0 {
		meanBatch = float64(snap.Samples) / float64(snap.Batches)
	}
	return map[string]float64{
		"rps":        float64(completed.Load()) / sec,
		"mean_batch": meanBatch,
	}, nil
}

// cellE26 — store round-trip economics in the default (TCS2) format:
// save, cold load on a fresh cache, warm reload, artifact bytes.
func cellE26(cell exp.Cell) (map[string]float64, error) {
	shape := core.Shape{Op: core.OpMatMul, N: cell.N, Alg: "strassen", EntryBits: 2, Signed: true}
	fmt.Fprintf(os.Stderr, "building %s ...\n", shape.Key())
	built, err := core.BuildShape(shape, -1)
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "tcbench-cell-e26-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	writer, err := store.OpenWith(dir, store.Options{})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	path, err := writer.Save(built)
	if err != nil {
		return nil, err
	}
	saveSec := time.Since(start).Seconds()
	writer.Close()
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}

	reader, err := store.OpenWith(dir, store.Options{})
	if err != nil {
		return nil, err
	}
	defer reader.Close()
	start = time.Now()
	if _, err := reader.Load(shape); err != nil {
		return nil, err
	}
	coldSec := time.Since(start).Seconds()
	start = time.Now()
	if _, err := reader.Load(shape); err != nil {
		return nil, err
	}
	warmSec := time.Since(start).Seconds()
	return map[string]float64{
		"save_sec":      saveSec,
		"load_cold_sec": coldSec,
		"load_warm_sec": warmSec,
		"bytes":         float64(fi.Size()),
	}, nil
}

// cellE27 — sharded-dispatch serving over the binary frame protocol:
// a closed-loop burst of 16 clients against Shards=workers, with
// latency quantiles; every response verified against direct Eval.
func cellE27(cell exp.Cell) (map[string]float64, error) {
	const clients = 16
	shape := core.Shape{Op: core.OpMatMul, N: cell.N, Alg: "strassen", EntryBits: 2, Signed: true}
	fmt.Fprintf(os.Stderr, "building %s ...\n", shape.Key())
	pool, err := load.NewPool(shape, 64, 27)
	if err != nil {
		return nil, err
	}
	s := serve.New(serve.Config{MaxBatch: 64, Shards: cell.Workers})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()
	client.Transport.(*http.Transport).MaxIdleConnsPerHost = clients
	if _, err := s.Built(context.Background(), shape); err != nil {
		return nil, err
	}

	var mismatch atomic.Int64
	res, err := load.Run(context.Background(), load.Options{
		Workers:  clients,
		Duration: time.Duration(cell.Seconds * float64(time.Second)),
		Seed:     27,
	}, func(ctx context.Context, rng *rand.Rand) error {
		ok, err := load.PostFrame(client, ts.URL, &pool.Samples[rng.Intn(len(pool.Samples))])
		if err != nil {
			return err
		}
		if !ok {
			mismatch.Add(1)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if res.Err != nil {
		return nil, res.Err
	}
	if mismatch.Load() > 0 {
		return nil, fmt.Errorf("%d responses not bit-identical to direct Eval", mismatch.Load())
	}
	return map[string]float64{
		"rps":     res.RPS,
		"p50_us":  float64(res.Latency.Quantile(0.50)),
		"p99_us":  float64(res.Latency.Quantile(0.99)),
		"p999_us": float64(res.Latency.Quantile(0.999)),
	}, nil
}
