package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/serve"
)

// e25: closed-loop serving throughput. 64 concurrent clients hammer one
// cached N=8 Strassen matmul circuit through internal/serve. The
// baseline server runs with MaxBatch=1 — every request is one scalar
// Eval, the one-request-per-Eval regime — and the coalesced server runs
// with MaxBatch=64, where the dispatcher packs concurrent requests into
// single bit-sliced EvalPlanes passes. Every response is checked
// bit-identical to a direct scalar evaluation of the same circuit. An
// HTTP end-to-end row (JSON marshalling + loopback TCP on top of the
// coalesced server) is included for context. Rows are written to the
// "e25" section of BENCH_serve.json (e27's rows are preserved);
// cmd/tcbench's schema test enforces speedup >= 3x.
func e25() {
	type row = e25Row
	const (
		clients  = 64
		nSamples = 256
		runFor   = 2 * time.Second
	)
	shape := core.Shape{Op: core.OpMatMul, N: 8, Alg: "strassen", EntryBits: 2, Signed: true}

	// Reference build: the inputs and their ground-truth output bits,
	// computed by direct scalar evaluation outside the service.
	fmt.Printf("building %s ...\n", shape.Key())
	built, err := core.BuildShape(shape, -1)
	if err != nil {
		panic(err)
	}
	c := built.Circuit()
	outs := c.Outputs()
	ev := circuit.NewEvaluator(c, 1)
	defer ev.Close()

	rng := rand.New(rand.NewSource(25))
	ins := make([][]bool, nSamples)
	want := make([][]bool, nSamples)
	mats := make([][2]*matrix.Matrix, nSamples)
	for i := range ins {
		a := matrix.Random(rng, 8, 8, -2, 1)
		b := matrix.Random(rng, 8, 8, -2, 1)
		mats[i] = [2]*matrix.Matrix{a, b}
		in, err := built.MatMul.Assign(a, b)
		if err != nil {
			panic(err)
		}
		ins[i] = in
		vals := ev.Eval(in)
		w := make([]bool, len(outs))
		for j, o := range outs {
			w[j] = vals[o]
		}
		want[i] = w
	}

	// run drives one closed loop: each client fires its next request the
	// moment the previous reply lands, for runFor of wall time.
	run := func(cfg serve.Config, label string) row {
		s := serve.New(cfg)
		defer s.Close()
		if _, err := s.Built(context.Background(), shape); err != nil {
			panic(err)
		}
		var (
			done      atomic.Bool
			completed atomic.Int64
			next      atomic.Int64
			identical atomic.Bool
			wg        sync.WaitGroup
		)
		identical.Store(true)
		start := time.Now()
		for range clients {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !done.Load() {
					i := int(next.Add(1)-1) % nSamples
					out, err := s.Do(context.Background(), shape, ins[i])
					if err != nil {
						panic(fmt.Sprintf("e25 %s: %v", label, err))
					}
					ok := len(out) == len(want[i])
					for j := range out {
						ok = ok && out[j] == want[i][j]
					}
					if !ok {
						identical.Store(false)
					}
					completed.Add(1)
				}
			}()
		}
		time.Sleep(runFor)
		done.Store(true)
		wg.Wait()
		sec := time.Since(start).Seconds()
		snap := s.Snapshot()
		mean := 0.0
		if snap.Batches > 0 {
			mean = float64(snap.Samples) / float64(snap.Batches)
		}
		return row{
			Mode: label, Clients: clients, MaxBatch: cfg.MaxBatch,
			Requests: completed.Load(), Seconds: sec,
			RPS:       float64(completed.Load()) / sec,
			Identical: identical.Load(),
			Batches:   snap.Batches, MeanBatch: mean,
		}
	}

	baseline := run(serve.Config{MaxBatch: 1, Linger: -1}, "per-request-eval")
	baseline.Speedup = 1
	coalesced := run(serve.Config{MaxBatch: 64}, "coalesced")
	coalesced.Speedup = coalesced.RPS / baseline.RPS
	httpRow := runHTTP(shape, mats, clients, runFor)
	httpRow.Speedup = httpRow.RPS / baseline.RPS

	rows := []row{baseline, coalesced, httpRow}

	fmt.Printf("%-18s %8s %9s %9s %10s %8s %7s %10s\n",
		"mode", "clients", "requests", "rps", "speedup", "ident", "batches", "mean-batch")
	for _, r := range rows {
		fmt.Printf("%-18s %8d %9d %9.0f %9.2fx %8v %7d %10.1f\n",
			r.Mode, r.Clients, r.Requests, r.RPS, r.Speedup, r.Identical, r.Batches, r.MeanBatch)
	}

	file := loadServeBench()
	file.E25 = rows
	file.save()
}

// runHTTP is the end-to-end context row: the same closed loop through
// httptest's loopback listener with pre-marshalled JSON bodies, so the
// delta against the in-process coalesced row is pure HTTP+JSON cost.
func runHTTP(shape core.Shape, mats [][2]*matrix.Matrix, clients int, runFor time.Duration) e25Row {
	s := serve.New(serve.Config{MaxBatch: 64})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if _, err := s.Built(context.Background(), shape); err != nil {
		panic(err)
	}

	type sample struct {
		body []byte
		want string // canonical JSON of the expected product rows
	}
	samples := make([]sample, len(mats))
	for i, ab := range mats {
		body, err := json.Marshal(map[string]any{
			"n": shape.N, "alg": shape.Alg,
			"entry_bits": shape.EntryBits, "signed": shape.Signed,
			"a": matRows(ab[0]), "b": matRows(ab[1]),
		})
		if err != nil {
			panic(err)
		}
		want, err := json.Marshal(matRows(ab[0].Mul(ab[1])))
		if err != nil {
			panic(err)
		}
		samples[i] = sample{body: body, want: string(want)}
	}

	client := ts.Client()
	client.Transport.(*http.Transport).MaxIdleConnsPerHost = clients // keepalive for every client
	var (
		done      atomic.Bool
		completed atomic.Int64
		next      atomic.Int64
		identical atomic.Bool
		wg        sync.WaitGroup
	)
	identical.Store(true)
	start := time.Now()
	for range clients {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				sm := samples[int(next.Add(1)-1)%len(samples)]
				resp, err := client.Post(ts.URL+"/v1/matmul", "application/json", bytes.NewReader(sm.body))
				if err != nil {
					panic(fmt.Sprintf("e25 http: %v", err))
				}
				var got struct {
					C json.RawMessage `json:"c"`
				}
				err = json.NewDecoder(resp.Body).Decode(&got)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					panic(fmt.Sprintf("e25 http: status %d err %v", resp.StatusCode, err))
				}
				var buf bytes.Buffer
				if err := json.Compact(&buf, got.C); err != nil || buf.String() != sm.want {
					identical.Store(false)
				}
				completed.Add(1)
			}
		}()
	}
	time.Sleep(runFor)
	done.Store(true)
	wg.Wait()
	sec := time.Since(start).Seconds()
	snap := s.Snapshot()
	mean := 0.0
	if snap.Batches > 0 {
		mean = float64(snap.Samples) / float64(snap.Batches)
	}
	return e25Row{
		Mode: "http-coalesced", Clients: clients, MaxBatch: 64,
		Requests: completed.Load(), Seconds: sec,
		RPS:       float64(completed.Load()) / sec,
		Identical: identical.Load(),
		Batches:   snap.Batches, MeanBatch: mean,
	}
}

func matRows(m *matrix.Matrix) [][]int64 {
	rows := make([][]int64, m.Rows)
	for i := range rows {
		rows[i] = m.Data[i*m.Cols : (i+1)*m.Cols : (i+1)*m.Cols]
	}
	return rows
}
