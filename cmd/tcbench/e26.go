package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/store"
)

// e26: build-once/serve-many economics of the content-addressed circuit
// store. For N=8 and N=16 Strassen matmul, a cold parallel build is
// timed against saving into and reloading from the disk cache. The
// reloaded circuit must be bit-identical: its re-encoded envelope must
// equal the original's byte for byte, and a batch of random samples
// must evaluate to the same output bits on both. Rows are written to
// BENCH_store.json; cmd/tcbench's schema test enforces load >= 5x
// faster than cold build for the N=16 row.
func e26() {
	type row struct {
		Circuit   string  `json:"circuit"`
		N         int     `json:"n"`
		Gates     int     `json:"gates"`
		Bytes     int64   `json:"bytes"`
		BuildSec  float64 `json:"build_sec"`
		SaveSec   float64 `json:"save_sec"`
		LoadSec   float64 `json:"load_sec"`
		Speedup   float64 `json:"speedup_load_vs_build"`
		Identical bool    `json:"identical"`
	}

	dir, err := os.MkdirTemp("", "tcbench-e26-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	cache, err := store.Open(dir)
	if err != nil {
		panic(err)
	}

	var rows []row
	for _, n := range []int{8, 16} {
		shape := core.Shape{Op: core.OpMatMul, N: n, Alg: "strassen", EntryBits: 2, Signed: true}
		fmt.Printf("cold build %s ...\n", shape.Key())

		start := time.Now()
		built, err := core.BuildShape(shape, -1)
		if err != nil {
			panic(err)
		}
		buildSec := time.Since(start).Seconds()

		start = time.Now()
		path, err := cache.Save(built)
		if err != nil {
			panic(err)
		}
		saveSec := time.Since(start).Seconds()
		fi, err := os.Stat(path)
		if err != nil {
			panic(err)
		}

		// Best of three loads: the first pays the page-cache fill, which
		// is real but noisy; steady-state reload is what a restarting
		// server sees on a warm machine.
		var loaded *core.Built
		loadSec := 0.0
		for i := 0; i < 3; i++ {
			start = time.Now()
			loaded, err = cache.Load(shape)
			if err != nil {
				panic(err)
			}
			if sec := time.Since(start).Seconds(); i == 0 || sec < loadSec {
				loadSec = sec
			}
		}

		rows = append(rows, row{
			Circuit: "matmul/strassen", N: n,
			Gates: built.Circuit().Size(), Bytes: fi.Size(),
			BuildSec: buildSec, SaveSec: saveSec, LoadSec: loadSec,
			Speedup:   buildSec / loadSec,
			Identical: identicalBuilt(built, loaded),
		})
	}

	fmt.Printf("%-16s %4s %9s %11s %10s %9s %9s %9s %6s\n",
		"circuit", "n", "gates", "bytes", "build-s", "save-s", "load-s", "speedup", "ident")
	for _, r := range rows {
		fmt.Printf("%-16s %4d %9d %11d %10.3f %9.3f %9.3f %8.1fx %6v\n",
			r.Circuit, r.N, r.Gates, r.Bytes, r.BuildSec, r.SaveSec, r.LoadSec, r.Speedup, r.Identical)
	}

	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		panic(err)
	}
	if err := os.WriteFile("BENCH_store.json", append(out, '\n'), 0o644); err != nil {
		panic(err)
	}
	fmt.Println("rows written to BENCH_store.json")
}

// identicalBuilt checks the two bit-identity properties the store
// guarantees: re-encoding the reloaded Built reproduces the original
// envelope byte for byte, and both circuits produce the same marked
// output bits on a random 64-sample batch.
func identicalBuilt(a, b *core.Built) bool {
	ea, err := store.Encode(a)
	if err != nil {
		return false
	}
	eb, err := store.Encode(b)
	if err != nil {
		return false
	}
	if !bytes.Equal(ea, eb) {
		return false
	}

	ca, cb := a.Circuit(), b.Circuit()
	rng := rand.New(rand.NewSource(26))
	ins := make([][]bool, 64)
	for i := range ins {
		in := make([]bool, ca.NumInputs())
		for j := range in {
			in[j] = rng.Intn(2) == 1
		}
		ins[i] = in
	}
	eva := circuit.NewEvaluator(ca, 0)
	defer eva.Close()
	evb := circuit.NewEvaluator(cb, 0)
	defer evb.Close()
	va, vb := eva.EvalBatch(ins), evb.EvalBatch(ins)
	for i := range va {
		for _, o := range ca.Outputs() {
			if va[i][o] != vb[i][o] {
				return false
			}
		}
	}
	return true
}
