package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/store"
	"repro/internal/verify"
)

// storeBenchRow is one BENCH_store.json entry — the build-once/
// serve-many economics of the circuit store, one row per (shape,
// envelope format). Timing follows BENCH_build.json conventions:
// mean/min over Repeats back-to-back runs, with GoMaxProcs/NumCPU
// recording the parallelism the build phase actually had. LoadColdSec
// is the first load a freshly opened cache performs (for TCS2 the
// mmap path: map, checksum, decode); the warm figures are steady-state
// reloads. Speedup divides the contention-free build by the best warm
// load — the restart-vs-rebuild ratio a warm server sees. BytesVsTCS1
// is the artifact's size relative to the TCS1 envelope of the same
// circuit (1.0 for the TCS1 rows themselves).
type storeBenchRow struct {
	Circuit         string  `json:"circuit"`
	N               int     `json:"n"`
	Format          string  `json:"format"`
	Gates           int     `json:"gates"`
	Bytes           int64   `json:"bytes"`
	Repeats         int     `json:"repeats"`
	GoMaxProcs      int     `json:"gomaxprocs"`
	NumCPU          int     `json:"num_cpu"`
	GitSHA          string  `json:"git_sha"`
	BuildSecMean    float64 `json:"build_sec_mean"`
	BuildSecStd     float64 `json:"build_sec_std"`
	BuildSecMin     float64 `json:"build_sec_min"`
	SaveSecMean     float64 `json:"save_sec_mean"`
	SaveSecStd      float64 `json:"save_sec_std"`
	SaveSecMin      float64 `json:"save_sec_min"`
	LoadColdSec     float64 `json:"load_cold_sec"`
	LoadWarmSecMean float64 `json:"load_warm_sec_mean"`
	LoadWarmSecStd  float64 `json:"load_warm_sec_std"`
	LoadWarmSecMin  float64 `json:"load_warm_sec_min"`
	Speedup         float64 `json:"speedup_load_vs_build"`
	BytesVsTCS1     float64 `json:"bytes_vs_tcs1"`
	Identical       bool    `json:"identical"`
	Certified       bool    `json:"certified"`
}

// e26: store round-trip economics across both envelope generations.
// For N=8 and N=16 Strassen matmul the cold parallel build is timed
// against saving into and reloading from the disk cache, once per
// format. The reloaded circuit must be bit-identical (re-encoded
// canonical envelope equal byte for byte, random batches evaluating
// to the same output bits) and must re-certify against the paper's
// bounds — for TCS2 that certification runs on the mmap-backed
// circuit, whose arenas alias the file pages. The schema test pins
// the acceptance bars on the N=16 TCS2 row: bytes <= TCS1/4,
// save <= build, warm mapped load >= 20x faster than the build.
func e26() {
	dir, err := os.MkdirTemp("", "tcbench-e26-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	maxProcs := runtime.GOMAXPROCS(0)
	fmt.Printf("GOMAXPROCS=%d NumCPU=%d\n", maxProcs, runtime.NumCPU())

	var rows []storeBenchRow
	for _, n := range []int{8, 16} {
		shape := core.Shape{Op: core.OpMatMul, N: n, Alg: "strassen", EntryBits: 2, Signed: true}
		repeats := 3
		if n >= 16 {
			repeats = 2 // the N=16 build is multi-second; two runs bound the wall clock
		}

		fmt.Printf("cold build %s x%d ...\n", shape.Key(), repeats)
		var built *core.Built
		buildSecs := make([]float64, 0, repeats)
		for i := 0; i < repeats; i++ {
			start := time.Now()
			built, err = core.BuildShape(shape, -1)
			if err != nil {
				panic(err)
			}
			buildSecs = append(buildSecs, time.Since(start).Seconds())
		}
		buildMean, buildStd, buildMin := exp.Stats(buildSecs)

		var tcs1Bytes int64
		for _, format := range []string{"tcs1", "tcs2"} {
			opts := store.Options{}
			if format == "tcs1" {
				opts.Format = store.FormatVersion
			}
			fdir := fmt.Sprintf("%s/n%d-%s", dir, n, format)
			writer, err := store.OpenWith(fdir, opts)
			if err != nil {
				panic(err)
			}

			var path string
			saveSecs := make([]float64, 0, repeats)
			for i := 0; i < repeats; i++ {
				start := time.Now()
				path, err = writer.Save(built)
				if err != nil {
					panic(err)
				}
				saveSecs = append(saveSecs, time.Since(start).Seconds())
			}
			saveMean, saveStd, saveMin := exp.Stats(saveSecs)
			fi, err := os.Stat(path)
			if err != nil {
				panic(err)
			}
			if format == "tcs1" {
				tcs1Bytes = fi.Size()
			}

			// A fresh cache over the same directory is the restart path:
			// its first load is the cold figure (for TCS2: map the file,
			// verify every segment, decode the group streams), repeated
			// loads after it are the steady state.
			reader, err := store.OpenWith(fdir, opts)
			if err != nil {
				panic(err)
			}
			start := time.Now()
			loaded, err := reader.Load(shape)
			if err != nil {
				panic(err)
			}
			loadCold := time.Since(start).Seconds()
			warmSecs := make([]float64, 0, repeats)
			for i := 0; i < repeats; i++ {
				start = time.Now()
				loaded, err = reader.Load(shape)
				if err != nil {
					panic(err)
				}
				warmSecs = append(warmSecs, time.Since(start).Seconds())
			}
			warmMean, warmStd, warmMin := exp.Stats(warmSecs)

			// Identity and certification run against the last warm load —
			// under TCS2 a circuit whose arenas alias the mapped file.
			identical := identicalBuilt(built, loaded)
			certified := false
			if _, err := verify.CertifyBuilt(loaded); err == nil {
				certified = true
			}
			reader.Close()
			writer.Close()

			rows = append(rows, storeBenchRow{
				Circuit: "matmul/strassen", N: n, Format: format,
				Gates: built.Circuit().Size(), Bytes: fi.Size(),
				Repeats: repeats, GoMaxProcs: maxProcs, NumCPU: runtime.NumCPU(),
				GitSHA:       exp.GitSHA(),
				BuildSecMean: buildMean, BuildSecStd: buildStd, BuildSecMin: buildMin,
				SaveSecMean: saveMean, SaveSecStd: saveStd, SaveSecMin: saveMin,
				LoadColdSec:     loadCold,
				LoadWarmSecMean: warmMean, LoadWarmSecStd: warmStd, LoadWarmSecMin: warmMin,
				Speedup:     buildMin / warmMin,
				BytesVsTCS1: float64(fi.Size()) / float64(tcs1Bytes),
				Identical:   identical, Certified: certified,
			})
		}
	}

	fmt.Printf("%-16s %4s %5s %9s %11s %9s %9s %9s %9s %9s %7s %6s %5s\n",
		"circuit", "n", "fmt", "gates", "bytes", "build-s", "save-s", "cold-s", "warm-s", "speedup", "vs-t1", "ident", "cert")
	for _, r := range rows {
		fmt.Printf("%-16s %4d %5s %9d %11d %9.3f %9.3f %9.3f %9.3f %8.1fx %6.1f%% %6v %5v\n",
			r.Circuit, r.N, r.Format, r.Gates, r.Bytes, r.BuildSecMean, r.SaveSecMean,
			r.LoadColdSec, r.LoadWarmSecMin, r.Speedup, r.BytesVsTCS1*100, r.Identical, r.Certified)
	}

	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		panic(err)
	}
	if err := os.WriteFile("BENCH_store.json", append(out, '\n'), 0o644); err != nil {
		panic(err)
	}
	fmt.Println("rows written to BENCH_store.json")
}

// identicalBuilt checks the two bit-identity properties the store
// guarantees: re-encoding the reloaded Built reproduces the original's
// canonical envelope byte for byte (the TCS1 codec is the canonical
// form, so this holds whichever format the reload came through), and a
// batch of random samples evaluates to the same output bits on both.
func identicalBuilt(a, b *core.Built) bool {
	ea, err := store.Encode(a)
	if err != nil {
		return false
	}
	eb, err := store.Encode(b)
	if err != nil {
		return false
	}
	if !bytes.Equal(ea, eb) {
		return false
	}

	ca, cb := a.Circuit(), b.Circuit()
	rng := rand.New(rand.NewSource(26))
	ins := make([][]bool, 64)
	for i := range ins {
		in := make([]bool, ca.NumInputs())
		for j := range in {
			in[j] = rng.Intn(2) == 1
		}
		ins[i] = in
	}
	eva := circuit.NewEvaluator(ca, 0)
	defer eva.Close()
	evb := circuit.NewEvaluator(cb, 0)
	defer evb.Close()
	va, vb := eva.EvalBatch(ins), evb.EvalBatch(ins)
	for i := range va {
		for _, o := range ca.Outputs() {
			if va[i][o] != vb[i][o] {
				return false
			}
		}
	}
	return true
}
