package main

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/load"
	"repro/internal/serve"
)

// e27: sharded-dispatch serving under a realistic load harness. The
// server runs with Shards=GOMAXPROCS per-core dispatchers (striped
// queues + work stealing); three modes are measured through
// internal/load with p50/p99/p999 latency quantiles:
//
//   - http-sharded: e25's closed-loop 64-client JSON workload on the
//     sharded server, directly comparable to e25's "http-coalesced" row
//     (speedup_vs_e25_http is against that row's committed rps).
//   - http-sharded-frame: the same closed loop over the binary /v1/eval
//     frame protocol — the marshalling tax made visible.
//   - http-zipf-open: an open-loop Poisson arrival stream at 70% of the
//     measured frame-mode capacity, shape popularity Zipf-distributed
//     over four circuits; latency is anchored at the scheduled arrival
//     (coordinated-omission-free), so the quantiles include queue delay.
//
// Every response is verified against a direct scalar evaluation. Rows
// land in the "e27" section of BENCH_serve.json; the schema test arms
// the ≥3x acceptance bar only for rows measured with GOMAXPROCS ≥ 4 —
// on smaller hosts the honest number is published and the multi-core
// bar is enforced by the CI loadgen job instead.
func e27() {
	const (
		clients  = 64
		maxBatch = 64
		runFor   = 2 * time.Second
		nSamples = 256
		zipfS    = 1.3
	)
	gmp := runtime.GOMAXPROCS(0)
	mmShape := core.Shape{Op: core.OpMatMul, N: 8, Alg: "strassen", EntryBits: 2, Signed: true}

	fmt.Printf("building %s ...\n", mmShape.Key())
	mm, err := load.NewPool(mmShape, nSamples, 27)
	if err != nil {
		panic(err)
	}

	s := serve.New(serve.Config{MaxBatch: maxBatch, Shards: 0}) // 0 = GOMAXPROCS
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()
	client.Transport.(*http.Transport).MaxIdleConnsPerHost = clients
	if _, err := s.Built(context.Background(), mmShape); err != nil {
		panic(err)
	}

	e25HTTP := 0.0
	for _, r := range loadServeBench().E25 {
		if r.Mode == "http-coalesced" {
			e25HTTP = r.RPS
		}
	}
	if e25HTTP == 0 {
		fmt.Println("e27: no e25 http-coalesced row in BENCH_serve.json; run e25 first for speedup columns")
	}

	// runMode drives one measurement: pick drives the request (returning
	// the identity verdict); closed loop when rate is 0.
	runMode := func(mode string, rate, zs float64, seed int64,
		pick func(ctx context.Context, rng *rand.Rand) (bool, error)) e27Row {
		var identical atomic.Bool
		identical.Store(true)
		res, err := load.Run(context.Background(), load.Options{
			Workers: clients, Rate: rate, Duration: runFor, Seed: seed,
		}, func(ctx context.Context, rng *rand.Rand) error {
			ok, err := pick(ctx, rng)
			if err != nil {
				return err
			}
			if !ok {
				identical.Store(false)
			}
			return nil
		})
		if err != nil {
			panic(err)
		}
		if res.Err != nil {
			panic(fmt.Sprintf("e27 %s: %v", mode, res.Err))
		}
		row := e27Row{
			Mode: mode, Shards: gmp, Clients: clients, MaxBatch: maxBatch,
			RateRPS: rate, ZipfS: zs,
			Requests: res.OK, Seconds: res.Elapsed.Seconds(), RPS: res.RPS,
			P50us:     res.Latency.Quantile(0.50),
			P99us:     res.Latency.Quantile(0.99),
			P999us:    res.Latency.Quantile(0.999),
			Identical: identical.Load(), GoMaxProcs: gmp,
		}
		if e25HTTP > 0 && rate == 0 {
			row.SpeedupVsE25HTTP = res.RPS / e25HTTP
		}
		return row
	}

	sharded := runMode("http-sharded", 0, 0, 27,
		func(ctx context.Context, rng *rand.Rand) (bool, error) {
			return load.PostJSON(client, ts.URL, mm, &mm.Samples[rng.Intn(len(mm.Samples))])
		})
	framed := runMode("http-sharded-frame", 0, 0, 28,
		func(ctx context.Context, rng *rand.Rand) (bool, error) {
			return load.PostFrame(client, ts.URL, &mm.Samples[rng.Intn(len(mm.Samples))])
		})

	// Open loop: rank 0 is the hot matmul circuit; the tail keeps three
	// cheaper circuits warm in the LRU.
	zipfShapes := []core.Shape{
		mmShape,
		{Op: core.OpCount, N: 4, Alg: "strassen"},
		{Op: core.OpTrace, N: 4, Tau: 2, Alg: "strassen"},
		{Op: core.OpMatMul, N: 4, Alg: "strassen", EntryBits: 2, Signed: true},
	}
	pools := make([]*load.Pool, len(zipfShapes))
	pools[0] = mm
	for i, sh := range zipfShapes[1:] {
		fmt.Printf("building %s ...\n", sh.Key())
		if pools[i+1], err = load.NewPool(sh, 64, int64(40+i)); err != nil {
			panic(err)
		}
		if _, err := s.Built(context.Background(), sh); err != nil {
			panic(err)
		}
	}
	cdf := make([]float64, len(zipfShapes))
	acc := 0.0
	for i, p := range load.PMF(zipfS, len(zipfShapes)) {
		acc += p
		cdf[i] = acc
	}
	rate := framed.RPS * 0.7
	open := runMode("http-zipf-open", rate, zipfS, 29,
		func(ctx context.Context, rng *rand.Rand) (bool, error) {
			rank := 0
			u := rng.Float64()
			for rank < len(cdf)-1 && u > cdf[rank] {
				rank++
			}
			pool := pools[rank]
			return load.PostFrame(client, ts.URL, &pool.Samples[rng.Intn(len(pool.Samples))])
		})

	rows := []e27Row{sharded, framed, open}
	fmt.Printf("%-18s %7s %8s %9s %9s %9s %9s %8s %8s\n",
		"mode", "shards", "clients", "rps", "p50_us", "p99_us", "p999_us", "ident", "vs-e25")
	for _, r := range rows {
		fmt.Printf("%-18s %7d %8d %9.0f %9d %9d %9d %8v %7.2fx\n",
			r.Mode, r.Shards, r.Clients, r.RPS, r.P50us, r.P99us, r.P999us, r.Identical, r.SpeedupVsE25HTTP)
	}

	file := loadServeBench() // re-read: keep e25 rows exactly as on disk
	file.E27 = rows
	file.save()
}
