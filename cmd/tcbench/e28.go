package main

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/serve"
	"repro/internal/stream"
)

// e28: the streaming triangle-monitoring service (internal/stream)
// under load — update throughput, screening latency, and the batched
// re-screen speedup, all with per-screen energy accounting. Three
// modes land in the "e28" section of BENCH_serve.json:
//
//   - update-screen-http: 64 tenant sessions behind /v1/graph, a
//     closed-loop harness posting TCG1 edge-update frames that each
//     demand an immediate screen with energy. Every screened response
//     is checked against the generator's shadow bitset recount
//     (Identical), and latency quantiles come from internal/load.
//   - screen-sequential: the per-tenant sequential path — the frozen
//     end-of-run graphs re-screened one session at a time through a
//     MaxBatch=1/no-linger server (e25's per-request-eval precedent),
//     one scalar evaluation per screen.
//   - screen-batch64: the same frozen graphs re-screened by
//     Manager.ScreenDirty, which packs the 64 dirty sessions into one
//     bit-sliced TrianglesEnergyBatch pass (64 graphs per machine
//     word).
//
// Acceptance (pinned by the schema test): every row bit-identical to
// the scalar Bitset.Triangles() oracle, the batched re-screen at
// least 4x the sequential path — a bit-slicing win, so it is armed
// even on one core — and the two re-screen modes' energy totals
// exactly equal (popcount accounting ≡ per-sample firing count).
func e28() {
	const (
		tenants  = 64
		n        = 16
		tau      = int64(3)
		updBatch = 8
		clients  = 32
		runFor   = 2 * time.Second
		rounds   = 10
	)
	gmp := runtime.GOMAXPROCS(0)
	ctx := context.Background()

	// Phase 1: live update+screen traffic over HTTP. Streams circulate
	// through a channel so each tenant's updates stay strictly ordered
	// (the version check in Check depends on it).
	srv := serve.New(serve.Config{MaxBatch: 64})
	defer srv.Close()
	m := stream.NewManager(stream.Config{Server: srv, MaxSessions: tenants})
	defer m.Close()
	ts := httptest.NewServer(stream.Mux(srv, m))
	defer ts.Close()
	client := ts.Client()
	client.Transport.(*http.Transport).MaxIdleConnsPerHost = clients

	fmt.Printf("building count n=%d and streaming %d tenant sessions ...\n", n, tenants)
	streams := make([]*load.GraphStream, tenants)
	pool := make(chan *load.GraphStream, tenants)
	for i := range streams {
		gs := load.NewGraphStream(fmt.Sprintf("tenant-%03d", i), n, tau, int64(2800+7*i))
		gs.Energy = true
		if _, err := load.PostGraph(client, ts.URL, gs.CreateRequest()); err != nil {
			panic(err)
		}
		streams[i] = gs
		pool <- gs
	}
	var ident atomic.Bool
	ident.Store(true)
	res, err := load.Run(ctx, load.Options{
		Workers: clients, Duration: runFor, Seed: 28,
	}, func(ctx context.Context, rng *rand.Rand) error {
		gs := <-pool
		defer func() { pool <- gs }()
		resp, perr := load.PostGraph(client, ts.URL, gs.NextUpdate(updBatch))
		if perr != nil {
			return perr
		}
		if cerr := gs.Check(resp); cerr != nil {
			ident.Store(false)
			fmt.Fprintf(os.Stderr, "e28: %v\n", cerr)
		}
		return nil
	})
	if err != nil {
		panic(err)
	}
	if res.Err != nil {
		panic(fmt.Sprintf("e28 update-screen-http: %v", res.Err))
	}
	httpRow := e28Row{
		Mode: "update-screen-http", Tenants: tenants, N: n, Tau: tau,
		UpdateBatch: updBatch,
		Requests:    res.OK, Seconds: res.Elapsed.Seconds(), RPS: res.RPS,
		P50us: res.Latency.Quantile(0.50), P99us: res.Latency.Quantile(0.99),
		Identical: ident.Load(), EnergyGates: m.Stats().EnergyGates, GoMaxProcs: gmp,
	}

	// Freeze the end-of-run graphs: these exact adjacencies are what
	// both re-screen modes evaluate, so their energies must agree.
	frozen := make(map[string]*graph.Bitset, tenants)
	names := make([]string, tenants)
	for i, gs := range streams {
		names[i] = gs.Tenant
		frozen[gs.Tenant] = gs.Graph()
	}
	edgeOps := func(b *graph.Bitset) []stream.EdgeOp {
		var ops []stream.EdgeOp
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if b.Has(u, v) {
					ops = append(ops, stream.EdgeOp{U: u, V: v})
				}
			}
		}
		return ops
	}
	// dirtyToggle marks a session dirty without changing its graph: an
	// insert/delete pair on one vertex pair, ordered by whether the
	// edge exists (both ops flip state, so the session dirties; the
	// net graph is unchanged).
	dirtyToggle := func(mm *stream.Manager, tenant string, b *graph.Bitset) {
		ops := []stream.EdgeOp{{U: 0, V: 1}, {U: 0, V: 1, Delete: true}}
		if b.Has(0, 1) {
			ops[0], ops[1] = ops[1], ops[0]
		}
		if _, err := mm.Update(ctx, tenant, ops, false, false); err != nil {
			panic(err)
		}
	}
	loadFrozen := func(mm *stream.Manager) {
		for _, name := range names {
			if _, err := mm.Create(ctx, name, n, tau); err != nil {
				panic(err)
			}
			if ops := edgeOps(frozen[name]); len(ops) > 0 {
				if _, err := mm.Update(ctx, name, ops, false, false); err != nil {
					panic(err)
				}
			}
		}
	}

	// Phase 2: per-tenant sequential re-screen — MaxBatch=1, no
	// linger, one scalar evaluation per screen (the e25 baseline
	// configuration).
	srvSeq := serve.New(serve.Config{MaxBatch: 1, Linger: -1})
	defer srvSeq.Close()
	mSeq := stream.NewManager(stream.Config{Server: srvSeq, MaxSessions: tenants})
	defer mSeq.Close()
	loadFrozen(mSeq)
	if _, err := mSeq.Screen(ctx, names[0], false); err != nil { // warm the path, untimed
		panic(err)
	}
	seqIdent := true
	var seqEnergy, seqScreens int64
	start := time.Now()
	for r := 0; r < rounds; r++ {
		for _, name := range names {
			sres, err := mSeq.Screen(ctx, name, true)
			if err != nil {
				panic(err)
			}
			if sres.Count != frozen[name].Triangles() {
				seqIdent = false
			}
			seqEnergy += sres.Energy
			seqScreens++
		}
	}
	seqSecs := time.Since(start).Seconds()
	seqRow := e28Row{
		Mode: "screen-sequential", Tenants: tenants, N: n, Tau: tau, Rounds: rounds,
		Requests: seqScreens, Seconds: seqSecs, RPS: float64(seqScreens) / seqSecs,
		Identical: seqIdent, EnergyGates: seqEnergy, GoMaxProcs: gmp,
	}

	// Phase 3: the batched maintenance sweep — ScreenDirty packs the
	// 64 dirty sessions into bit-sliced chunks. Sessions are re-dirtied
	// between rounds (untimed); one warmup sweep clears the load-time
	// dirtiness so every timed round screens exactly `tenants` sessions.
	srvB := serve.New(serve.Config{})
	defer srvB.Close()
	mB := stream.NewManager(stream.Config{Server: srvB, MaxSessions: tenants})
	defer mB.Close()
	loadFrozen(mB)
	if _, err := mB.ScreenDirty(ctx, false); err != nil {
		panic(err)
	}
	batchIdent := true
	var batchEnergy, batchScreens int64
	var batchElapsed time.Duration
	for r := 0; r < rounds; r++ {
		for _, name := range names {
			dirtyToggle(mB, name, frozen[name])
		}
		t0 := time.Now()
		bres, err := mB.ScreenDirty(ctx, true)
		batchElapsed += time.Since(t0)
		if err != nil {
			panic(err)
		}
		if len(bres) != tenants {
			panic(fmt.Sprintf("e28: sweep round %d screened %d sessions, want %d", r, len(bres), tenants))
		}
		for _, sres := range bres {
			if sres.Count != frozen[sres.Tenant].Triangles() {
				batchIdent = false
			}
			batchEnergy += sres.Energy
			batchScreens++
		}
	}
	batchSecs := batchElapsed.Seconds()
	batchRow := e28Row{
		Mode: "screen-batch64", Tenants: tenants, N: n, Tau: tau, Rounds: rounds,
		Requests: batchScreens, Seconds: batchSecs, RPS: float64(batchScreens) / batchSecs,
		SpeedupVsSequential: (float64(batchScreens) / batchSecs) / seqRow.RPS,
		Identical:           batchIdent, EnergyGates: batchEnergy, GoMaxProcs: gmp,
	}

	rows := []e28Row{httpRow, seqRow, batchRow}
	fmt.Printf("%-20s %8s %9s %9s %9s %8s %8s %14s\n",
		"mode", "requests", "rps", "p50_us", "p99_us", "ident", "vs-seq", "energy_gates")
	for _, r := range rows {
		fmt.Printf("%-20s %8d %9.0f %9d %9d %8v %7.2fx %14d\n",
			r.Mode, r.Requests, r.RPS, r.P50us, r.P99us, r.Identical,
			r.SpeedupVsSequential, r.EnergyGates)
	}
	if seqEnergy != batchEnergy {
		panic(fmt.Sprintf("e28: energy accounting diverged: sequential %d vs batched %d", seqEnergy, batchEnergy))
	}
	fmt.Printf("energy check: sequential and batched re-screens both fired %d gates (exact match)\n", seqEnergy)

	file := loadServeBench() // re-read: keep e25/e27 rows exactly as on disk
	file.E28 = rows
	file.save()
}
