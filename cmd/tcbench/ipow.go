package main

import "math"

// ipow computes base^exp exactly in int64 arithmetic, reporting
// overflow instead of silently rounding. The e2 table used
// int64(math.Pow(...)) here, which goes wrong twice for large δ/s:
// math.Pow computes through float64 logs (its integer results are not
// guaranteed exact even below 2^53), and past 2^63 the conversion back
// to int64 is undefined. Exponents in the tables are tiny, so the
// linear product loop is the obviously-correct choice over fast
// exponentiation (whose squarings can overflow spuriously).
func ipow(base int64, exp int) (int64, bool) {
	if base < 0 || exp < 0 {
		return 0, false
	}
	v := int64(1)
	for i := 0; i < exp; i++ {
		if base != 0 && v > math.MaxInt64/base {
			return 0, false
		}
		v *= base
	}
	return v, true
}
