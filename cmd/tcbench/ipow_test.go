package main

import (
	"math"
	"math/big"
	"testing"
)

// ipow must agree with math/big everywhere it reports ok, and must
// report !ok exactly when the true value exceeds int64 — the float
// rounding bug it replaces corrupted the e2 multinomial-identity table
// silently for larger δ/s.
func TestIpowExactVsBig(t *testing.T) {
	maxInt := new(big.Int).SetInt64(math.MaxInt64)
	for base := int64(0); base <= 30; base++ {
		for exp := 0; exp <= 45; exp++ {
			want := new(big.Int).Exp(big.NewInt(base), big.NewInt(int64(exp)), nil)
			fits := want.Cmp(maxInt) <= 0
			got, ok := ipow(base, exp)
			if ok != fits {
				t.Fatalf("ipow(%d, %d): ok=%v, want fits=%v (true value %s)", base, exp, ok, fits, want)
			}
			if ok && got != want.Int64() {
				t.Fatalf("ipow(%d, %d) = %d, want %s", base, exp, got, want)
			}
		}
	}
}

// The e2 regime the bug report names: Strassen-family parameters
// (r=7, s=12) at depths well past the original table's δ<=6.
func TestIpowPaperConstants(t *testing.T) {
	cases := []struct {
		base int64
		exp  int
		want int64
		ok   bool
	}{
		{7, 6, 117649, true},
		{12, 6, 2985984, true},
		{7, 22, 3909821048582988049, true}, // largest power of 7 in int64
		{7, 23, 0, false},
		{12, 17, 2218611106740436992, true}, // largest power of 12 in int64
		{12, 18, 0, false},
		{2, 62, 1 << 62, true},
		{2, 63, 0, false},
		{1, 1000, 1, true},
		{0, 5, 0, true},
		{0, 0, 1, true},
		{-2, 2, 0, false}, // negative bases are not in this domain
		{2, -1, 0, false},
	}
	for _, c := range cases {
		got, ok := ipow(c.base, c.exp)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("ipow(%d, %d) = (%d, %v), want (%d, %v)", c.base, c.exp, got, ok, c.want, c.ok)
		}
	}
}

// The float path this replaces really is wrong in-range: pin one case
// where int64(math.Pow) disagrees with the exact value, so the reason
// for ipow's existence stays documented and enforced.
func TestMathPowIsInexactSomewhere(t *testing.T) {
	found := false
	for base := int64(3); base <= 30 && !found; base++ {
		for exp := 1; exp <= 45; exp++ {
			exact, ok := ipow(base, exp)
			if !ok {
				break
			}
			if int64(math.Pow(float64(base), float64(exp))) != exact {
				found = true
				break
			}
		}
	}
	if !found {
		t.Skip("math.Pow happened to be exact for every in-range case on this platform")
	}
}
