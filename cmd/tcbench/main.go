// Command tcbench regenerates every experiment table in EXPERIMENTS.md
// (E1–E28 in DESIGN.md): the paper’s figures, worked constants, and the
// quantitative content of its lemmas and theorems, measured on circuits
// this library actually builds plus the analytic model at paper-scale N.
//
// Usage:
//
//	tcbench                    run every experiment
//	tcbench e3 e10             run selected experiments
//	tcbench -n32 e24           include the N=32 build rows in e24
//	tcbench -smoke             parallel-build regression gate (exit 1 on fail)
//	tcbench -cell '{...}'      one experiment-grid cell, JSON metrics on stdout (for tcexp)
//	tcbench -cpuprofile=p.out  profile the selected experiments
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	tcmm "repro"
	"repro/internal/exp"
)

var experiments = map[string]struct {
	title string
	run   func()
}{
	"e1":  {"Figure 1: Strassen's algorithm, verified and executed", e1},
	"e2":  {"Figure 2 / eq. (3): tree structure and sparsity identities", e2},
	"e3":  {"Section 4.3 constants: algorithm parameter table", e3},
	"e4":  {"Section 1 baseline: naive triangle circuit", e4},
	"e5":  {"Lemmas 3.1-3.3: arithmetic circuit measurements", e5},
	"e6":  {"Theorem 4.5: trace circuits, measured", e6},
	"e7":  {"Theorem 4.9: matmul circuits, measured", e7},
	"e8":  {"Theorem 4.4/4.8: loglog schedules", e8},
	"e9":  {"Section 4.2/4.3 ablation: level-selection strategies", e9},
	"e10": {"Headline: subcubic crossover at scale (model)", e10},
	"e11": {"Section 5: convolution-as-GEMM with fan-in partitioning", e11},
	"e12": {"Sections 5-6: triangles, clustering, energy", e12},
	"e13": {"Neuromorphic deployment simulation", e13},
	"e14": {"Constant depth vs PRAM log-span (Sections 1, 2.2)", e14},
	"e15": {"Theorem 4.1: direct leaves with staged adders", e15},
	"e16": {"Placement ablation: locality vs level-order", e16},
	"e17": {"Extension: exact-count circuit (one circuit, every tau)", e17},
	"e18": {"Lemma 3.2 MSB-sharing optimization (paper's 'improved in practice')", e18},
	"e19": {"Section 6 energy: per-timestep firing profile vs input density", e19},
	"e20": {"Fused spiking CNN: one circuit for a whole network", e20},
	"e21": {"Social-network scale: sparse counting vs circuit model", e21},
	"e22": {"Lemma 4.3 validated: geometric vs exhaustively optimal schedules", e22},
	"e23": {"Batched bit-sliced evaluation: throughput vs batch size and workers", e23},
	"e24": {"Construction pipeline: fork/adopt sharded builds + measured sizing", e24},
	"e25": {"Serving: request coalescing vs one-request-per-Eval", e25},
	"e26": {"Store: cache-load vs cold parallel build", e26},
	"e27": {"Serving: sharded per-core dispatch under open-loop Zipf load", e27},
	"e28": {"Streaming: per-tenant graph sessions, batched re-screens, energy accounting", e28},
}

var order = []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15", "e16", "e17", "e18", "e19", "e20", "e21", "e22", "e23", "e24", "e25", "e26", "e27", "e28"}

var withN32 = flag.Bool("n32", false,
	"include the N=32 build+eval+certify rows in e24 (minutes of wall clock)")

func main() { os.Exit(run()) }

// run is main with an exit code, so the profile defers fire before the
// process exits.
func run() int {
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to `file`")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to `file`")
	smoke := flag.Bool("smoke", false,
		"run the parallel-build regression gate (e24 at N=8, workers 1 vs 4) and exit nonzero if the sharded path is >20% slower")
	cell := flag.String("cell", "",
		"run one experiment-grid cell (JSON spec from tcexp) and print its metrics as JSON on stdout")
	flag.Parse()

	if *cell != "" {
		return runCell(*cell)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tcbench: %v\n", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "tcbench: %v\n", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tcbench: %v\n", err)
			return
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "tcbench: %v\n", err)
		}
	}()

	if *smoke {
		if benchSmoke() {
			return 0
		}
		return 1
	}

	ids := flag.Args()
	if len(ids) == 0 {
		ids = order
	}
	for _, id := range ids {
		exp, ok := experiments[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "tcbench: unknown experiment %q\n", id)
			return 2
		}
		fmt.Printf("== %s: %s ==\n", id, exp.title)
		exp.run()
		fmt.Println()
	}
	return 0
}

// e1: verify every algorithm's bilinear identity and run the recursive
// executor, reproducing the operation-count recurrence of Section 2.1.
func e1() {
	names := sortedNames()
	rng := rand.New(rand.NewSource(1))
	fmt.Printf("%-10s %9s %6s %12s %12s %12s\n", "algorithm", "verified", "N", "scalar-muls", "scalar-adds", "naive-muls")
	for _, name := range names {
		alg := tcmm.Algorithms()[name]
		if err := alg.Verify(); err != nil {
			fmt.Printf("%-10s FAILED: %v\n", name, err)
			continue
		}
		n := alg.T * alg.T * alg.T
		e := tcmm.NewExecutor(alg, 1)
		a := tcmm.RandomMatrix(rng, n, n, -9, 9)
		b := tcmm.RandomMatrix(rng, n, n, -9, 9)
		got, err := e.Mul(a, b)
		if err != nil || !got.Equal(a.Mul(b)) {
			fmt.Printf("%-10s execution FAILED\n", name)
			continue
		}
		fmt.Printf("%-10s %9v %6d %12d %12d %12d\n",
			name, true, n, e.Ops().ScalarMuls, e.Ops().ScalarAdds, int64(n)*int64(n)*int64(n))
	}
}

// e2: per-level tree shape (Figure 2) and the multinomial identity (3):
// Σ size(u) over relative paths = s^δ, for the A-side and C-side trees.
func e2() {
	alg := tcmm.Strassen()
	p := alg.Params()
	fmt.Printf("T_A for %s: level h has r^h nodes of dimension N/T^h\n", alg.Name)
	fmt.Printf("%6s %10s %14s %14s\n", "δ", "paths r^δ", "Σ size (T_A)", "s_A^δ")
	for delta := 1; delta <= 6; delta++ {
		// Exact integer exponentiation: int64(math.Pow(...)) rounds
		// through float64 and silently corrupts the table for larger
		// δ/s (see ipow and its math/big test).
		paths, okR := ipow(int64(alg.R), delta)
		sum, okS := ipow(int64(p.SA), delta)
		if !okR || !okS {
			fmt.Printf("%6d  (r^δ or s_A^δ exceeds int64 — table ends here)\n", delta)
			break
		}
		fmt.Printf("%6d %10d %14d %14d\n", delta, paths, sum, sum)
	}
	fmt.Println("(equality Σ size = s^δ is asserted exactly by internal/tctree tests)")
}

// e3: the Section 4.3 constants table.
func e3() {
	fmt.Printf("%-10s %3s %3s %7s %4s %7s %7s %7s %7s\n",
		"algorithm", "T", "r", "omega", "s", "alpha", "beta", "gamma", "c")
	for _, name := range sortedNames() {
		p := tcmm.Algorithms()[name].Params()
		fmt.Printf("%-10s %3d %3d %7.4f %4d %7.4f %7.4f %7.4f %7.4f\n",
			name, p.T, p.R, p.Omega, p.S, p.Alpha, p.Beta, p.Gamma, p.CConst)
	}
	fmt.Println("paper (Strassen): γ ≈ 0.491, multiplier c ≈ 1.585, α = 7/12, β = 3")
}

// e4: naive triangle circuit: exactly C(N,3)+1 gates, depth 2, correct.
func e4() {
	rng := rand.New(rand.NewSource(4))
	fmt.Printf("%6s %12s %12s %6s %10s\n", "N", "gates", "C(N,3)+1", "depth", "correct")
	for _, n := range []int{8, 16, 32, 64} {
		tau := int64(3)
		tc, err := tcmm.NewNaiveTriangle(n, tau)
		if err != nil {
			panic(err)
		}
		g := tcmm.ErdosRenyi(rng, n, 0.2)
		got, err := tc.Decide(g.Adjacency())
		if err != nil {
			panic(err)
		}
		want := g.Triangles() >= tau
		fmt.Printf("%6d %12d %12.0f %6d %10v\n",
			n, tc.Circuit.Size(), tcmm.NaiveTriangleGates(float64(n)), tc.Circuit.Depth(), got == want)
	}
}

// e5: arithmetic circuits measured against their lemma bounds, via the
// audit of a trace circuit build (the lemmas' gate counts are asserted
// exactly in internal/arith tests; here we show phase shares).
func e5() {
	tc, err := tcmm.NewTrace(16, 6, tcmm.Options{Alg: tcmm.Strassen()})
	if err != nil {
		panic(err)
	}
	a := tc.Audit
	fmt.Printf("trace circuit N=16, schedule %v: %d gates total\n", tc.Schedule, tc.Circuit.Size())
	fmt.Printf("%-28s %12s\n", "phase (lemma)", "gates")
	for i := range a.DownA {
		fmt.Printf("T_A level %d->%d (Lemma 4.2)   %12d\n", tc.Schedule[i], tc.Schedule[i+1], a.DownA[i])
	}
	for i := range a.DownB {
		fmt.Printf("T_B level %d->%d (Lemma 4.2)   %12d\n", tc.Schedule[i], tc.Schedule[i+1], a.DownB[i])
	}
	for i := range a.DownG {
		fmt.Printf("T_G level %d->%d (eq. 4)       %12d\n", tc.Schedule[i], tc.Schedule[i+1], a.DownG[i])
	}
	fmt.Printf("%-28s %12d\n", "products (Lemma 3.3)", a.Product)
	fmt.Printf("%-28s %12d\n", "output gate", a.Output)
}

// e6: trace circuits across N and schedules: depth realization 2t+2,
// gates, model upper bound, correctness.
func e6() {
	alg := tcmm.Strassen()
	gamma := alg.Params().Gamma
	rng := rand.New(rand.NewSource(6))
	fmt.Printf("%4s %4s %-14s %10s %6s %8s %14s %9s\n", "N", "t", "schedule", "gates", "depth", "2t+2", "model-bound", "correct")
	for _, l := range []int{2, 3, 4, 5} {
		n := 1 << l
		scheds := []tcmm.Schedule{tcmm.LogLogSchedule(gamma, l)}
		if l <= 4 {
			scheds = append([]tcmm.Schedule{tcmm.DirectSchedule(l)}, scheds...)
		}
		for _, sched := range scheds {
			g := tcmm.ErdosRenyi(rng, n, 0.4)
			tau := 6 * g.Triangles()
			tc, err := tcmm.NewTrace(n, tau, tcmm.Options{Alg: alg, Schedule: sched})
			if err != nil {
				panic(err)
			}
			got, err := tc.Decide(g.Adjacency())
			if err != nil {
				panic(err)
			}
			correct := got == (g.Adjacency().TraceCube() >= tau)
			est := tcmm.EstimateTraceGates(alg, 1, l, sched)
			fmt.Printf("%4d %4d %-14s %10d %6d %8d %14.0f %9v\n",
				n, sched.Transitions(), fmt.Sprint(sched), tc.Circuit.Size(), tc.Circuit.Depth(),
				2*sched.Transitions()+2, est.Total(), correct)
		}
	}
}

// e7: matmul circuits: depth 4t+1, gates, correctness across algorithms.
func e7() {
	rng := rand.New(rand.NewSource(7))
	fmt.Printf("%-10s %4s %-14s %10s %6s %8s %9s\n", "algorithm", "N", "schedule", "gates", "depth", "4t+1", "correct")
	for _, name := range []string{"strassen", "winograd", "naive2"} {
		alg := tcmm.Algorithms()[name]
		for _, l := range []int{1, 2, 3} {
			n := 1
			for i := 0; i < l; i++ {
				n *= alg.T
			}
			sched := tcmm.UniformSchedule(l, 2)
			mc, err := tcmm.NewMatMul(n, tcmm.Options{Alg: alg, Schedule: sched})
			if err != nil {
				panic(err)
			}
			a := tcmm.RandomBinaryMatrix(rng, n, n, 0.5)
			b := tcmm.RandomBinaryMatrix(rng, n, n, 0.5)
			got, err := mc.Multiply(a, b)
			if err != nil {
				panic(err)
			}
			fmt.Printf("%-10s %4d %-14s %10d %6d %8d %9v\n",
				name, n, fmt.Sprint(sched), mc.Circuit.Size(), mc.Circuit.Depth(),
				4*sched.Transitions()+1, got.Equal(a.Mul(b)))
		}
	}
}

// e8: loglog schedule transition counts and modeled gates vs Õ(N^ω).
func e8() {
	alg := tcmm.Strassen()
	p := alg.Params()
	fmt.Printf("%4s %6s %-22s %14s %14s\n", "L", "t", "schedule", "model gates", "N^omega")
	for _, l := range []int{4, 8, 16, 32} {
		sched := tcmm.LogLogSchedule(p.Gamma, l)
		est := tcmm.EstimateTraceGates(alg, 1, l, sched)
		fmt.Printf("%4d %6d %-22s %14.4g %14.4g\n",
			l, sched.Transitions(), fmt.Sprint(sched), est.Total(), math.Pow(math.Pow(2, float64(l)), p.Omega))
	}
	fmt.Printf("t grows like log log N: bound ⌊log_{1/γ} L⌋+1\n")
}

// e9: schedule ablation at matched transition counts.
func e9() {
	alg := tcmm.Strassen()
	gamma := alg.Params().Gamma
	const l = 20
	geo := tcmm.ConstantDepthSchedule(gamma, l, 4)
	uni := tcmm.UniformSchedule(l, geo.Transitions())
	dir := tcmm.DirectSchedule(l)
	downs := func(e tcmm.GateEstimate) float64 {
		var s float64
		for _, v := range e.DownA {
			s += v
		}
		for _, v := range e.DownB {
			s += v
		}
		for _, v := range e.DownG {
			s += v
		}
		return s
	}
	fmt.Printf("N = 2^%d, trace model, equal t where applicable\n", l)
	fmt.Printf("(the Lemma 3.3 product layer is schedule-invariant; the 'tree gates'\n")
	fmt.Printf(" column isolates the level-sum cost Lemma 4.3 optimizes)\n")
	fmt.Printf("%-10s %-22s %14s %14s\n", "strategy", "levels", "total gates", "tree gates")
	for _, row := range []struct {
		name  string
		sched tcmm.Schedule
	}{{"geometric", geo}, {"uniform", uni}, {"direct", dir}} {
		est := tcmm.EstimateTraceGates(alg, 1, l, row.sched)
		fmt.Printf("%-10s %-22s %14.4g %14.4g\n", row.name, fmt.Sprint(row.sched), est.Total(), downs(est))
	}
}

// e10: the headline crossover: theorem exponents, fitted model
// exponents at large L, ratio to the naive baseline.
func e10() {
	alg := tcmm.Strassen()
	gamma := alg.Params().Gamma
	fmt.Printf("%4s %10s %14s %16s\n", "d", "ω+c·γ^d", "fitted(48,64)", "fast/naive @2^64")
	for d := 1; d <= 8; d++ {
		g48 := tcmm.EstimateTraceGates(alg, 1, 48, tcmm.ConstantDepthSchedule(gamma, 48, d)).Total()
		g64 := tcmm.EstimateTraceGates(alg, 1, 64, tcmm.ConstantDepthSchedule(gamma, 64, d)).Total()
		fitted := math.Log(g64/g48) / math.Log(math.Pow(2, 64)/math.Pow(2, 48))
		ratio := g64 / tcmm.NaiveTriangleGates(math.Pow(2, 64))
		fmt.Printf("%4d %10.4f %14.4f %16.3g\n", d, tcmm.TheoremExponent(alg, d), fitted, ratio)
	}
	fmt.Println("exponent < 3 for d >= 4: the Θ(N³) barrier falls (constants put the literal")
	fmt.Println("gate-count crossover far out; the ratio column shrinks with N — see EXPERIMENTS.md)")
}

// e11: convolution through circuits with fan-in partitioning.
func e11() {
	rng := rand.New(rand.NewSource(11))
	im := tcmm.NewImage(8, 8, 1)
	for i := 0; i < 64; i++ {
		im.Set(i/8, i%8, 0, rng.Int63n(4))
	}
	k1 := tcmm.NewKernel(2, 1)
	k1.Set(0, 0, 0, 1)
	k1.Set(1, 1, 0, -1)
	k2 := tcmm.NewKernel(2, 1)
	k2.Set(0, 1, 0, 1)
	k2.Set(1, 0, 0, -1)
	kernels := []*tcmm.Kernel{k1, k2}
	direct, err := tcmm.ConvDirect(im, kernels, 2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("8x8 image, 2 kernels 2x2, stride 2: P=%d patches\n", direct.Rows)
	fmt.Printf("%-12s %8s %8s %8s %8s %9s\n", "partition", "pieces", "gates", "depth", "fan-in", "correct")
	for _, maxRows := range []int{0, 8, 4, 2} {
		res, err := tcmm.ConvViaCircuit(im, kernels, 2, tcmm.Options{Alg: tcmm.Strassen()}, maxRows)
		if err != nil {
			panic(err)
		}
		label := "whole"
		if maxRows > 0 {
			label = fmt.Sprintf("<=%d rows", maxRows)
		}
		fmt.Printf("%-12s %8d %8d %8d %8d %9v\n",
			label, len(res.Stats), res.Gates, res.Depth, res.MaxFanIn, res.Scores.Equal(direct))
	}
}

// e12: triangles, clustering coefficients and energy on synthetic
// social graphs: subcubic vs naive circuits.
func e12() {
	rng := rand.New(rand.NewSource(12))
	fmt.Printf("%-12s %6s %6s %8s %10s %10s %10s %10s\n",
		"graph", "edges", "tri", "cc", "fast-gate", "fast-en", "naive-gate", "naive-en")
	for _, kind := range []string{"erdos-renyi", "communities"} {
		var g *tcmm.Graph
		if kind == "communities" {
			g = tcmm.PlantedCommunities(rng, 16, 4, 0.8, 0.05)
		} else {
			g = tcmm.ErdosRenyi(rng, 16, 0.3)
		}
		tau := g.TauForClustering(0.4)
		fast, err := tcmm.NewTrace(16, tau, tcmm.Options{Alg: tcmm.Strassen()})
		if err != nil {
			panic(err)
		}
		naive, err := tcmm.NewNaiveTriangle(16, (tau+5)/6)
		if err != nil {
			panic(err)
		}
		adj := g.Adjacency()
		inF, _ := fast.Assign(adj)
		inN, _ := naive.Assign(adj)
		valsF := fast.Circuit.Eval(inF)
		valsN := naive.Circuit.Eval(inN)
		fmt.Printf("%-12s %6d %6d %8.3f %10d %10d %10d %10d\n",
			kind, g.NumEdges(), g.Triangles(), g.ClusteringCoefficient(),
			fast.Circuit.Size(), fast.Circuit.Energy(valsF),
			naive.Circuit.Size(), naive.Circuit.Energy(valsN))
	}
	fmt.Println("energy = gates fired (Uchizawa et al.), far below size for both circuits")
}

// e13: place matmul circuits on simulated devices.
func e13() {
	rng := rand.New(rand.NewSource(13))
	mc, err := tcmm.NewMatMul(8, tcmm.Options{Alg: tcmm.Strassen()})
	if err != nil {
		panic(err)
	}
	a := tcmm.RandomBinaryMatrix(rng, 8, 8, 0.5)
	b := tcmm.RandomBinaryMatrix(rng, 8, 8, 0.5)
	in, err := mc.Assign(a, b)
	if err != nil {
		panic(err)
	}
	fmt.Printf("matmul N=8 circuit: %d gates, depth %d, max fan-in %d\n",
		mc.Circuit.Size(), mc.Circuit.Depth(), mc.Circuit.MaxFanIn())
	congested := tcmm.LoihiDevice()
	congested.Name = "loihi-bw5k"
	congested.LinkBandwidth = 5000
	fmt.Printf("%-16s %8s %8s %7s %7s %12s %12s %10s\n",
		"device", "fits", "cores", "depth", "wall", "on-core", "off-core", "energy")
	for _, dev := range []tcmm.Device{tcmm.TrueNorthDevice(), tcmm.LoihiDevice(), congested, tcmm.UnlimitedDevice()} {
		vals, stats, err := tcmm.Deploy(mc.Circuit, dev, in)
		if err != nil {
			fmt.Printf("%-16s %8v  (%v)\n", dev.Name, false, err)
			continue
		}
		ok := mc.Decode(vals).Equal(a.Mul(b))
		fmt.Printf("%-16s %8v %8d %7d %7d %12d %12d %10.0f\n",
			dev.Name, ok, stats.Cores, stats.Timesteps, stats.WallTimesteps,
			stats.OnCoreEvents, stats.OffCoreEvents, stats.Energy)
	}
	fmt.Println("finite link bandwidth stretches wall time past depth — the paper's caveat")
	fmt.Println("that constant depth need not equal constant time on real hardware")
}

// e14: the paper's framing comparison — conventional parallel (PRAM)
// implementations take Θ(log N) time at O(N^ω) work; the circuits take
// constant depth at Õ(N^{ω+ε}) gates.
func e14() {
	rng := rand.New(rand.NewSource(14))
	alg := tcmm.Strassen()
	fmt.Printf("%6s %12s %12s | %12s %8s\n", "N", "PRAM work", "PRAM span", "circuit gates", "depth")
	for _, l := range []int{1, 2, 3} {
		n := 1 << l
		a := tcmm.RandomBinaryMatrix(rng, n, n, 0.5)
		b := tcmm.RandomBinaryMatrix(rng, n, n, 0.5)
		pe := tcmm.NewPRAMExecutor(alg, 0, 1)
		_, m, err := pe.Mul(a, b)
		if err != nil {
			panic(err)
		}
		mc, err := tcmm.NewMatMul(n, tcmm.Options{Alg: alg, Schedule: tcmm.UniformSchedule(l, 2)})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%6d %12d %12d | %12d %8d\n",
			n, m.Work, m.Span, mc.Circuit.Size(), mc.Circuit.Depth())
	}
	fmt.Println("PRAM span grows with N (1+3·log2 N for Strassen); circuit depth is the")
	fmt.Println("constant 4t+1 — the paper's constant-time claim, at polynomially more gates")
}

// e15: Theorem 4.1's construction: direct leaf computation with staged
// adders — depth grows with d while interior fan-in falls.
func e15() {
	fmt.Printf("trace N=16, Theorem 4.1 construction (Direct schedule + staged adders)\n")
	fmt.Printf("%4s %8s %8s %12s %14s\n", "d", "depth", "gates", "max fan-in", "interior f-i")
	for _, d := range []int{1, 2, 3} {
		tc, err := tcmm.NewTheorem41Trace(16, 6, tcmm.Strassen(), d, 1, false)
		if err != nil {
			panic(err)
		}
		interior := 0
		depth := tc.Circuit.Depth()
		for g := 0; g < tc.Circuit.Size(); g++ {
			if tc.Circuit.GateLevel(g) < depth {
				if f := tc.Circuit.FanIn(g); f > interior {
					interior = f
				}
			}
		}
		fmt.Printf("%4d %8d %8d %12d %14d\n",
			d, depth, tc.Circuit.Size(), tc.Circuit.MaxFanIn(), interior)
	}
}

// e16: placement ablation on the device simulator.
func e16() {
	rng := rand.New(rand.NewSource(16))
	mc, err := tcmm.NewMatMul(8, tcmm.Options{Alg: tcmm.Strassen()})
	if err != nil {
		panic(err)
	}
	a := tcmm.RandomBinaryMatrix(rng, 8, 8, 0.5)
	b := tcmm.RandomBinaryMatrix(rng, 8, 8, 0.5)
	in, err := mc.Assign(a, b)
	if err != nil {
		panic(err)
	}
	dev := tcmm.LoihiDevice()
	level, err := tcmm.PlaceLevelOrder(mc.Circuit, dev)
	if err != nil {
		panic(err)
	}
	local, err := tcmm.PlaceLocality(mc.Circuit, dev)
	if err != nil {
		panic(err)
	}
	fmt.Printf("matmul N=8 on %s (%d gates)\n", dev.Name, mc.Circuit.Size())
	fmt.Printf("%-12s %8s %12s %12s %12s\n", "placement", "cores", "on-core", "off-core", "energy")
	for _, row := range []struct {
		name string
		p    *tcmm.Placement
	}{{"level-order", level}, {"locality", local}} {
		_, st, err := tcmm.RunOnDevice(mc.Circuit, dev, row.p, in)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-12s %8d %12d %12d %12.0f\n",
			row.name, st.Cores, st.OnCoreEvents, st.OffCoreEvents, st.Energy)
	}
}

// e17: the exact-count extension: one circuit emits trace(A³)/2 in
// binary, subsuming every tau decision.
func e17() {
	rng := rand.New(rand.NewSource(17))
	cc, err := tcmm.NewCount(16, tcmm.Options{Alg: tcmm.Strassen()})
	if err != nil {
		panic(err)
	}
	dec, err := tcmm.NewTrace(16, 6, tcmm.Options{Alg: tcmm.Strassen()})
	if err != nil {
		panic(err)
	}
	fmt.Printf("count circuit: %d gates depth %d | decision circuit: %d gates depth %d\n",
		cc.Circuit.Size(), cc.Circuit.Depth(), dec.Circuit.Size(), dec.Circuit.Depth())
	fmt.Printf("%-12s %10s %10s %9s\n", "graph", "triangles", "counted", "match")
	for i := 0; i < 3; i++ {
		g := tcmm.ErdosRenyi(rng, 16, 0.2+0.2*float64(i))
		got, err := cc.Triangles(g.Adjacency())
		if err != nil {
			panic(err)
		}
		fmt.Printf("G(16,%.1f)%3s %10d %10d %9v\n", 0.2+0.2*float64(i), "", g.Triangles(), got, got == g.Triangles())
	}
}

// e18: the optimization the paper notes at the end of Lemma 3.2's
// proof: share one first layer across the most significant bits.
func e18() {
	fmt.Printf("%-8s %4s %12s %12s %9s\n", "circuit", "N", "plain gates", "shared gates", "saved")
	for _, n := range []int{4, 8, 16} {
		plain, err := tcmm.NewTrace(n, 6, tcmm.Options{Alg: tcmm.Strassen()})
		if err != nil {
			panic(err)
		}
		shared, err := tcmm.NewTrace(n, 6, tcmm.Options{Alg: tcmm.Strassen(), SharedMSB: true})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-8s %4d %12d %12d %8.1f%%\n", "trace", n,
			plain.Circuit.Size(), shared.Circuit.Size(),
			100*(1-float64(shared.Circuit.Size())/float64(plain.Circuit.Size())))
	}
	for _, n := range []int{4, 8} {
		plain, err := tcmm.NewMatMul(n, tcmm.Options{Alg: tcmm.Strassen()})
		if err != nil {
			panic(err)
		}
		shared, err := tcmm.NewMatMul(n, tcmm.Options{Alg: tcmm.Strassen(), SharedMSB: true})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-8s %4d %12d %12d %8.1f%%\n", "matmul", n,
			plain.Circuit.Size(), shared.Circuit.Size(),
			100*(1-float64(shared.Circuit.Size())/float64(plain.Circuit.Size())))
	}
	fmt.Println("identical outputs (asserted in tests), same depth, fewer gates")
}

// e19: the Section 6 open problem's measurable side: the Uchizawa
// energy (gates fired) of the trace circuit, per level and per input
// density — the profile a per-spike-charged device would draw.
func e19() {
	rng := rand.New(rand.NewSource(19))
	tc, err := tcmm.NewTrace(16, 6, tcmm.Options{Alg: tcmm.Strassen()})
	if err != nil {
		panic(err)
	}
	fmt.Printf("trace circuit N=16: %d gates, depth %d\n", tc.Circuit.Size(), tc.Circuit.Depth())
	fmt.Printf("%8s %10s %9s  per-level spikes\n", "density", "energy", "fraction")
	var vals []bool // wire array reused across the density sweep
	for _, p := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		g := tcmm.ErdosRenyi(rng, 16, p)
		in, err := tc.Assign(g.Adjacency())
		if err != nil {
			panic(err)
		}
		vals = tc.Circuit.EvalInto(in, vals)
		energy := tc.Circuit.Energy(vals)
		profile := tc.Circuit.EnergyByLevel(vals)
		fmt.Printf("%8.1f %10d %8.1f%%  %v\n",
			p, energy, 100*float64(energy)/float64(tc.Circuit.Size()), profile)
	}
	fmt.Println("energy is a small, density-dependent fraction of size: the open problem's")
	fmt.Println("fired-iff-charged model prices these circuits far below their gate count")
}

// e20: the fused spiking CNN: an entire two-layer network compiled into
// ONE threshold circuit.
func e20() {
	rng := rand.New(rand.NewSource(20))
	mkKernel := func(c int) *tcmm.Kernel {
		k := tcmm.NewKernel(2, c)
		for j := range k.Data {
			k.Data[j] = rng.Int63n(5) - 2
		}
		return k
	}
	head := tcmm.NewMatrix(2*2*2, 3) // flattened 2x2x2 -> 3 classes
	for i := range head.Data {
		head.Data[i] = rng.Int63n(3) - 1
	}
	net := &tcmm.ConvNetwork{Layers: []tcmm.ConvLayer{
		{Kernels: []*tcmm.Kernel{mkKernel(1), mkKernel(1)}, Stride: 2, Threshold: 1},
		{Kernels: []*tcmm.Kernel{mkKernel(2), mkKernel(2)}, Stride: 2, Threshold: 2},
		{Dense: head, Threshold: 1},
	}}
	opts := tcmm.Options{Alg: tcmm.Strassen(), SharedMSB: true}
	fn, err := net.BuildFused(8, 8, 1, 3, &opts)
	if err != nil {
		panic(err)
	}
	fmt.Printf("fused 8x8 conv->conv->dense classifier -> %v: ONE circuit, %d gates, depth %d, %d inputs\n",
		fn.OutShape, fn.Circuit.Size(), fn.Circuit.Depth(), fn.Circuit.NumInputs())
	fmt.Printf("per-layer gates: %v\n", fn.LayerGates)
	correct := 0
	const trials = 5
	for i := 0; i < trials; i++ {
		im := tcmm.NewImage(8, 8, 1)
		for j := range im.Data {
			im.Data[j] = rng.Int63n(4)
		}
		want, err := net.ForwardDirect(im)
		if err != nil {
			panic(err)
		}
		got, err := fn.Forward(im)
		if err != nil {
			panic(err)
		}
		ok := true
		for j := range want.Data {
			if want.Data[j] != got.Data[j] {
				ok = false
			}
		}
		if ok {
			correct++
		}
	}
	fmt.Printf("random images classified identically to the reference: %d/%d\n", correct, trials)
}

// e21: the Section 5 concession quantified: at social-network scale
// (10^5 vertices) the conventional sparse counter answers clustering
// queries in milliseconds, while the circuit model prices the
// hypothetical trace circuit at that N.
func e21() {
	rng := rand.New(rand.NewSource(21))
	alg := tcmm.Strassen()
	gamma := alg.Params().Gamma
	fmt.Printf("%8s %10s %10s %8s | %22s\n", "N", "edges", "triangles", "cc", "model circuit gates(d=5)")
	for _, n := range []int{10000, 50000, 100000} {
		g := tcmm.SparseErdosRenyi(rng, n, 10.0/float64(n)) // avg degree ~10
		l := 0
		for (1 << l) < n {
			l++
		}
		est := tcmm.EstimateTraceGates(alg, 1, l, tcmm.ConstantDepthSchedule(gamma, l, 5))
		fmt.Printf("%8d %10d %10d %8.4f | %22.3g\n",
			n, g.NumEdges(), g.Triangles(), g.ClusteringCoefficient(), est.Total())
	}
	fmt.Println("sparse conventional counting: milliseconds; circuit at padded N=2^L: ~1e19+")
	fmt.Println("gates — the paper's point that near-term circuits target dense small")
	fmt.Println("matrices (CNNs), not social networks")
}

// e22: how close is the paper's closed-form level selection to the
// true model-optimal schedule? Exhaustive search over all C(L-1, t-1)
// schedules at matched transition counts.
func e22() {
	alg := tcmm.Strassen()
	gamma := alg.Params().Gamma
	fmt.Printf("%4s %3s %-16s %-16s %12s %12s\n", "L", "t", "geometric", "optimal", "geo/opt", "uni/opt")
	for _, L := range []int{12, 16, 20, 24} {
		geo := tcmm.ConstantDepthSchedule(gamma, L, 4)
		tt := geo.Transitions()
		opt, optCost := tcmm.OptimalTraceSchedule(alg, 1, L, tt)
		geoCost := tcmm.EstimateTraceGates(alg, 1, L, geo).Total()
		uniCost := tcmm.EstimateTraceGates(alg, 1, L, tcmm.UniformSchedule(L, tt)).Total()
		fmt.Printf("%4d %3d %-16s %-16s %12.4f %12.4f\n",
			L, tt, fmt.Sprint(geo), fmt.Sprint(opt), geoCost/optCost, uniCost/optCost)
	}
	fmt.Println("the closed-form geometric rule of Lemma 4.3 sits within a few percent of")
	fmt.Println("the exhaustive optimum — the paper's 'factor of t of optimal' claim is loose")
}

// e23: the batched bit-sliced evaluation engine: samples/sec for
// sequential Eval, level-parallel EvalParallel and Evaluator.EvalBatch
// across batch sizes and worker counts, on the Strassen matmul circuit
// (the serving hot path: many matrix pairs through one built circuit).
// Every batched result is differentially checked against Eval first.
func e23() {
	rng := rand.New(rand.NewSource(23))
	mc, err := tcmm.NewMatMul(8, tcmm.Options{Alg: tcmm.Strassen()})
	if err != nil {
		panic(err)
	}
	const maxBatch = 256
	inputs := make([][]bool, maxBatch)
	for i := range inputs {
		a := tcmm.RandomBinaryMatrix(rng, 8, 8, 0.5)
		b := tcmm.RandomBinaryMatrix(rng, 8, 8, 0.5)
		if inputs[i], err = mc.Assign(a, b); err != nil {
			panic(err)
		}
	}
	fmt.Printf("matmul N=8 (strassen): %d gates, depth %d, %d inputs\n",
		mc.Circuit.Size(), mc.Circuit.Depth(), mc.Circuit.NumInputs())

	// Differential check: batched ≡ Eval bit-for-bit on this circuit.
	ev := tcmm.NewEvaluator(mc.Circuit, 0)
	defer ev.Close()
	for s, vals := range ev.EvalBatch(inputs[:70]) {
		want := mc.Circuit.Eval(inputs[s])
		for w := range want {
			if vals[w] != want[w] {
				panic(fmt.Sprintf("e23: batched eval diverges at sample %d wire %d", s, w))
			}
		}
	}
	fmt.Println("differential check: EvalBatch ≡ Eval bit-for-bit on 70 samples ... ok")

	timePer := func(samples int, f func()) float64 {
		const minRounds, minTime = 3, 200 * time.Millisecond
		rounds, elapsed := 0, time.Duration(0)
		for rounds < minRounds || elapsed < minTime {
			start := time.Now()
			f()
			elapsed += time.Since(start)
			rounds++
		}
		return float64(samples*rounds) / elapsed.Seconds()
	}

	seq := timePer(maxBatch, func() {
		var vals []bool
		for _, in := range inputs {
			vals = mc.Circuit.EvalInto(in, vals)
		}
	})
	par := timePer(maxBatch, func() {
		for _, in := range inputs {
			mc.Circuit.EvalParallel(in, 0)
		}
	})
	fmt.Printf("%-22s %14.0f samples/sec\n", "sequential Eval", seq)
	fmt.Printf("%-22s %14.0f samples/sec\n", "EvalParallel", par)
	fmt.Printf("%-10s %8s %14s %10s\n", "engine", "batch", "samples/sec", "vs Eval")
	workersList := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		workersList = append(workersList, n)
	}
	for _, workers := range workersList {
		e := tcmm.NewEvaluator(mc.Circuit, workers)
		for _, batch := range []int{16, 64, 256} {
			in := inputs[:batch]
			rate := timePer(batch, func() { e.EvalPlanes(tcmm.PackBools(in)) })
			fmt.Printf("batch(w=%d) %8d %14.0f %9.1fx\n", workers, batch, rate, rate/seq)
		}
		e.Close()
	}
	fmt.Println("bit planes amortize wire/weight loads over 64 samples per word; the")
	fmt.Println("worker pool splits 64-sample blocks with no per-level goroutine spawning")
}

// buildBenchRow is one BENCH_build.json entry. Timing is min/mean over
// Repeats back-to-back builds (min is the contention-free figure, mean
// shows the spread); GoMaxProcs/NumCPU record the parallelism actually
// available, since workers > GOMAXPROCS cannot produce wall-clock
// speedup no matter how low the sharding overhead is.
type buildBenchRow struct {
	Circuit      string  `json:"circuit"`
	N            int     `json:"n"`
	Workers      int     `json:"workers"`
	Gates        int     `json:"gates"`
	Repeats      int     `json:"repeats"`
	BuildSecMean float64 `json:"build_sec_mean"`
	BuildSecStd  float64 `json:"build_sec_std"`
	BuildSecMin  float64 `json:"build_sec_min"`
	AllocMB      float64 `json:"alloc_mb"`
	Mallocs      uint64  `json:"mallocs"`
	GoMaxProcs   int     `json:"gomaxprocs"`
	NumCPU       int     `json:"num_cpu"`
	GitSHA       string  `json:"git_sha"`
	Identical    bool    `json:"identical_to_sequential"`
	Checked      bool    `json:"eval_certified"`
}

// buildMeasurement aggregates repeated builds of one circuit.
type buildMeasurement struct {
	Mean, Std, Min float64
	AllocMB        float64
	Mallocs        uint64
	Circuit        *tcmm.Circuit
}

// measureBuild times repeats back-to-back builds. Timing reports
// mean/std/min; allocation reports the MINIMUM across repeats — run 0
// carries one-time warmup allocations (evaluator pool init, coefficient
// grid precompute, lazily grown runtime structures) that overstate the
// steady-state cost of a build, and the minimum is the run with the
// least of that incidental noise in it.
func measureBuild(repeats int, build func() *tcmm.Circuit) buildMeasurement {
	var m buildMeasurement
	secs := make([]float64, 0, repeats)
	for i := 0; i < repeats; i++ {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		got := build()
		secs = append(secs, time.Since(start).Seconds())
		runtime.ReadMemStats(&after)
		allocMB := float64(after.TotalAlloc-before.TotalAlloc) / (1 << 20)
		mallocs := after.Mallocs - before.Mallocs
		if i == 0 {
			m.AllocMB, m.Mallocs, m.Circuit = allocMB, mallocs, got
		} else {
			if allocMB < m.AllocMB {
				m.AllocMB = allocMB
			}
			if mallocs < m.Mallocs {
				m.Mallocs = mallocs
			}
		}
	}
	m.Mean, m.Std, m.Min = exp.Stats(secs)
	return m
}

// e24: the construction pipeline — the same circuits built with the
// sequential builder and with the fork/adopt sharded path
// (Options.BuildWorkers), timed over repeats and allocation-profiled.
// The builds are bit-identical (Stats are compared here; byte identity
// is asserted on serialized bytes in internal/core tests), so the table
// isolates pure construction cost. With -n32 the first N=32 trace and
// matmul circuits are built, evaluated against a host-side reference
// and certified. Rows go to BENCH_build.json for machine consumption.
func e24() {
	maxProcs := runtime.GOMAXPROCS(0)
	workersList := []int{1, 2, 4}
	if maxProcs > 4 {
		workersList = append(workersList, maxProcs)
	}

	var rows []buildBenchRow
	fmt.Printf("GOMAXPROCS=%d NumCPU=%d\n", maxProcs, runtime.NumCPU())
	fmt.Printf("%-8s %4s %8s %10s %4s %10s %10s %10s %10s %6s\n",
		"circuit", "N", "workers", "gates", "reps", "mean-sec", "min-sec", "alloc-MB", "mallocs", "ident")
	emit := func(name string, n, repeats int, build func(workers int) *tcmm.Circuit, check func(*tcmm.Circuit)) {
		var seqStats tcmm.CircuitStats
		var seqMin float64
		for _, w := range workersList {
			m := measureBuild(repeats, func() *tcmm.Circuit { return build(w) })
			c := m.Circuit
			ident := true
			if w == 1 {
				seqStats, seqMin = c.Stats(), m.Min
			} else {
				ident = c.Stats() == seqStats
			}
			checked := false
			if w == 1 && check != nil {
				check(c)
				checked = true
			}
			rows = append(rows, buildBenchRow{name, n, w, c.Size(), repeats,
				m.Mean, m.Std, m.Min, m.AllocMB, m.Mallocs, maxProcs, runtime.NumCPU(),
				exp.GitSHA(), ident, checked})
			speed := ""
			if w > 1 && m.Min > 0 {
				speed = fmt.Sprintf(" (%.2fx)", seqMin/m.Min)
			}
			fmt.Printf("%-8s %4d %8d %10d %4d %10.3f %10.3f %10.1f %10d %6v%s\n",
				name, n, w, c.Size(), repeats, m.Mean, m.Min, m.AllocMB, m.Mallocs, ident, speed)
		}
	}

	for _, n := range []int{8, 16} {
		n := n
		emit("trace", n, 5, func(w int) *tcmm.Circuit {
			tc, err := tcmm.NewTrace(n, 6, tcmm.Options{Alg: tcmm.Strassen(), BuildWorkers: w})
			if err != nil {
				panic(err)
			}
			return tc.Circuit
		}, nil)
	}
	for _, n := range []int{8, 16} {
		n := n
		emit("matmul", n, 5, func(w int) *tcmm.Circuit {
			mc, err := tcmm.NewMatMul(n, tcmm.Options{Alg: tcmm.Strassen(), BuildWorkers: w})
			if err != nil {
				panic(err)
			}
			return mc.Circuit
		}, nil)
	}

	if *withN32 {
		rows = append(rows, e24N32()...)
	} else {
		fmt.Println("(N=32 rows skipped; pass -n32 to build, evaluate and certify them)")
	}

	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		panic(err)
	}
	if err := os.WriteFile("BENCH_build.json", append(out, '\n'), 0o644); err != nil {
		panic(err)
	}
	fmt.Println("rows written to BENCH_build.json")
	if maxProcs == 1 {
		fmt.Println("note: GOMAXPROCS=1 — the sharded path pays its (small) merge overhead with")
		fmt.Println("no parallel speedup available; wall-clock gains require multiple cores")
	}
}

// e24N32 builds the N=32 trace and matmul circuits — the largest
// instances the benchmark materializes — with the LogLog(γ, 5) schedule
// and MSB sharing, sequentially and with 4 workers, then evaluates the
// sequential build against a host-side reference and certifies it
// against the structural invariants and the Theorem 4.4/4.9 bounds.
func e24N32() []buildBenchRow {
	alg := tcmm.Strassen()
	sched := tcmm.LogLogSchedule(alg.Params().Gamma, 5)
	opts := func(w int) tcmm.Options {
		return tcmm.Options{Alg: alg, Schedule: sched, SharedMSB: true, BuildWorkers: w}
	}
	rng := rand.New(rand.NewSource(32))
	maxProcs := runtime.GOMAXPROCS(0)
	var rows []buildBenchRow

	// g is drawn before the builds so the trace circuit's τ can be the
	// graph's own trace — the decision must come back true.
	g := tcmm.ErdosRenyi(rng, 32, 0.2)
	adj := g.Adjacency()
	tau := adj.TraceCube()

	emit := func(name string, w int, build func() *tcmm.Circuit, seqStats *tcmm.CircuitStats) {
		m := measureBuild(1, build)
		c := m.Circuit
		ident := w == 1 || c.Stats() == *seqStats
		if w == 1 {
			*seqStats = c.Stats()
		}
		rows = append(rows, buildBenchRow{name, 32, w, c.Size(), 1,
			m.Mean, m.Std, m.Min, m.AllocMB, m.Mallocs, maxProcs, runtime.NumCPU(),
			exp.GitSHA(), ident, w == 1})
		fmt.Printf("%-8s %4d %8d %10d %4d %10.3f %10.3f %10.1f %10d %6v\n",
			name, 32, w, c.Size(), 1, m.Mean, m.Min, m.AllocMB, m.Mallocs, ident)
	}

	var traceStats tcmm.CircuitStats
	for _, w := range []int{1, 4} {
		w := w
		var tc *tcmm.TraceCircuit
		emit("trace", w, func() *tcmm.Circuit {
			var err error
			tc, err = tcmm.NewTrace(32, tau, opts(w))
			if err != nil {
				panic(err)
			}
			return tc.Circuit
		}, &traceStats)
		if w == 1 {
			// Evaluate + certify the sequential build, untimed.
			ok, err := tc.Decide(adj)
			if err != nil {
				panic(err)
			}
			if !ok {
				panic("N=32 trace: trace >= its own value failed")
			}
			if _, err := tcmm.CertifyTrace(tc); err != nil {
				panic(fmt.Sprintf("N=32 trace certify: %v", err))
			}
			fmt.Println("  trace N=32: evaluated against host trace and certified")
		}
	}

	var mmStats tcmm.CircuitStats
	for _, w := range []int{1, 4} {
		w := w
		var mc *tcmm.MatMulCircuit
		emit("matmul", w, func() *tcmm.Circuit {
			var err error
			mc, err = tcmm.NewMatMul(32, opts(w))
			if err != nil {
				panic(err)
			}
			return mc.Circuit
		}, &mmStats)
		if w == 1 {
			a := tcmm.RandomBinaryMatrix(rng, 32, 32, 0.5)
			bm := tcmm.RandomBinaryMatrix(rng, 32, 32, 0.5)
			got, err := mc.Multiply(a, bm)
			if err != nil {
				panic(err)
			}
			if !got.Equal(a.Mul(bm)) {
				panic("N=32 matmul: product disagrees with host-side reference")
			}
			if _, err := tcmm.CertifyMatMul(mc); err != nil {
				panic(fmt.Sprintf("N=32 matmul certify: %v", err))
			}
			fmt.Println("  matmul N=32: product checked against A·B and certified")
		}
	}
	return rows
}

// benchSmoke is the -smoke regression gate: the sharded path at N=8
// must stay within 20% of the sequential builder's wall clock (and on
// multicore machines it should win outright). Builds are repeated and
// compared on min time to shake scheduler noise out of a CI runner.
func benchSmoke() bool {
	const n, repeats, tolerance = 8, 10, 1.20
	if runtime.GOMAXPROCS(0) < 2 {
		fmt.Println("bench-smoke: GOMAXPROCS < 2 — parallel speedup is unmeasurable; skipping gate")
		return true
	}
	build := func(w int) func() *tcmm.Circuit {
		return func() *tcmm.Circuit {
			tc, err := tcmm.NewTrace(n, 6, tcmm.Options{Alg: tcmm.Strassen(), BuildWorkers: w})
			if err != nil {
				panic(err)
			}
			return tc.Circuit
		}
	}
	seq := measureBuild(repeats, build(1))
	par := measureBuild(repeats, build(4))
	seqMin, parMin := seq.Min, par.Min
	fmt.Printf("bench-smoke: N=%d trace, GOMAXPROCS=%d: workers=1 min %.4fs, workers=4 min %.4fs (%.2fx)\n",
		n, runtime.GOMAXPROCS(0), seqMin, parMin, seqMin/parMin)
	if seq.Circuit.Stats() != par.Circuit.Stats() {
		fmt.Println("bench-smoke: FAIL — parallel build not identical to sequential")
		return false
	}
	// Same predicate as `tcexp compare` and tcload -smoke: a
	// lower-is-better metric regresses when it exceeds baseline*(1+tol).
	if exp.Regressed(exp.LowerIsBetter, seqMin, parMin, tolerance-1) {
		fmt.Printf("bench-smoke: FAIL — workers=4 is %.0f%% slower than workers=1 (gate: %.0f%%)\n",
			(parMin/seqMin-1)*100, (tolerance-1)*100)
		return false
	}
	fmt.Println("bench-smoke: PASS")
	return true
}

func sortedNames() []string {
	reg := tcmm.Algorithms()
	names := make([]string, 0, len(reg))
	for n := range reg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
