package main

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/exp"
)

// BENCH_serve.json holds both serving experiments keyed by experiment
// name, so e25 and e27 can be (re)run independently: each reads the
// file, replaces its own section, and writes the result back. GitSHA
// records the commit of the most recent (re)generation — serve rows
// are single closed/open-loop runs, so the provenance lives at file
// level rather than as a per-row std.
type serveBenchFile struct {
	GitSHA string   `json:"git_sha"`
	E25    []e25Row `json:"e25"`
	E27    []e27Row `json:"e27"`
	E28    []e28Row `json:"e28,omitempty"`
}

type e25Row struct {
	Mode      string  `json:"mode"`
	Clients   int     `json:"clients"`
	MaxBatch  int     `json:"max_batch"`
	Requests  int64   `json:"requests"`
	Seconds   float64 `json:"seconds"`
	RPS       float64 `json:"rps"`
	Speedup   float64 `json:"speedup_vs_baseline"`
	Identical bool    `json:"identical"`
	Batches   int64   `json:"batches"`
	MeanBatch float64 `json:"mean_batch"`
}

// e27Row is one sharded-dispatch load measurement. Closed-loop modes
// anchor latency at the call; the open-loop mode anchors at the
// scheduled Poisson arrival (coordinated-omission-free), so its
// quantiles include queue delay. GoMaxProcs records the parallelism the
// numbers were measured under — the ≥3x acceptance bar is only
// meaningful on a multi-core host (see the schema test).
type e27Row struct {
	Mode             string  `json:"mode"`
	Shards           int     `json:"shards"`
	Clients          int     `json:"clients"`
	MaxBatch         int     `json:"max_batch"`
	RateRPS          float64 `json:"rate_rps,omitempty"` // open-loop target (0 = closed loop)
	ZipfS            float64 `json:"zipf_s,omitempty"`   // shape-popularity exponent (0 = single shape)
	Requests         int64   `json:"requests"`
	Seconds          float64 `json:"seconds"`
	RPS              float64 `json:"rps"`
	P50us            int64   `json:"p50_us"`
	P99us            int64   `json:"p99_us"`
	P999us           int64   `json:"p999_us"`
	Identical        bool    `json:"identical"`
	GoMaxProcs       int     `json:"gomaxprocs"`
	SpeedupVsE25HTTP float64 `json:"speedup_vs_e25_http,omitempty"`
}

// e28Row is one streaming-service measurement (internal/stream). The
// HTTP mode carries load-harness latency quantiles and an update batch
// size; the two re-screen modes carry a round count and, on the
// batched row, the speedup over the sequential path. EnergyGates is
// the mode's total Uchizawa energy (gates fired) across every screen —
// the sequential and batched re-screen totals must match exactly.
type e28Row struct {
	Mode                string  `json:"mode"`
	Tenants             int     `json:"tenants"`
	N                   int     `json:"n"`
	Tau                 int64   `json:"tau"`
	UpdateBatch         int     `json:"update_batch,omitempty"` // HTTP mode: edge ops per frame
	Rounds              int     `json:"rounds,omitempty"`       // re-screen modes: sweeps over frozen graphs
	Requests            int64   `json:"requests"`
	Seconds             float64 `json:"seconds"`
	RPS                 float64 `json:"rps"`
	P50us               int64   `json:"p50_us,omitempty"`
	P99us               int64   `json:"p99_us,omitempty"`
	SpeedupVsSequential float64 `json:"speedup_vs_sequential,omitempty"`
	Identical           bool    `json:"identical"`
	EnergyGates         int64   `json:"energy_gates"`
	GoMaxProcs          int     `json:"gomaxprocs"`
}

const serveBenchPath = "BENCH_serve.json"

// loadServeBench reads the current file; a missing file is an empty
// one. Files written before e27 existed were a bare e25 row array —
// migrate those in place so an old checkout upgrades on the next run.
func loadServeBench() serveBenchFile {
	var f serveBenchFile
	data, err := os.ReadFile(serveBenchPath)
	if os.IsNotExist(err) {
		return f
	}
	if err != nil {
		panic(err)
	}
	if err := json.Unmarshal(data, &f); err != nil {
		if legacyErr := json.Unmarshal(data, &f.E25); legacyErr == nil {
			return f
		}
		panic(fmt.Sprintf("%s: %v (delete it and rerun e25+e27)", serveBenchPath, err))
	}
	return f
}

func (f serveBenchFile) save() {
	f.GitSHA = exp.GitSHA()
	out, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		panic(err)
	}
	if err := os.WriteFile(serveBenchPath, append(out, '\n'), 0o644); err != nil {
		panic(err)
	}
	fmt.Printf("rows written to %s\n", serveBenchPath)
}
