// Command tcexp is the reproducible experiment-grid runner: one
// command re-runs the measured experiments (E23–E27) over a JSON grid
// of (experiment, N, workers) cells, each sample in a fresh tcbench
// subprocess, and writes a timestamped results directory with
// mean/std/min per metric plus the machine metadata (GOMAXPROCS,
// NumCPU, go version, git SHA) needed to read the numbers later.
//
//	tcexp run -grid exp/smoke.json                 # writes results/<name>-<stamp>/
//	tcexp run -grid exp/smoke.json -out /tmp/r     # elsewhere
//	tcexp compare bench/baselines/smoke results/latest
//	tcexp compare -tol 0.25 old/ new/              # tighter gate
//
// `tcexp compare` exits 1 when any tracked metric regresses beyond the
// tolerance — the CI bench-compare job runs exactly that against the
// committed baselines under bench/baselines/.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/exp"
)

func nowUTC() time.Time { return time.Now().UTC() }

func main() { os.Exit(run(os.Args[1:])) }

func usage() int {
	fmt.Fprintln(os.Stderr, `usage:
  tcexp run -grid FILE [-out DIR] [-tcbench BIN]
  tcexp compare [-tol FRAC] OLD_DIR NEW_DIR`)
	return 2
}

func run(args []string) int {
	if len(args) == 0 {
		return usage()
	}
	switch args[0] {
	case "run":
		return runGrid(args[1:])
	case "compare":
		return runCompare(args[1:])
	default:
		fmt.Fprintf(os.Stderr, "tcexp: unknown command %q\n", args[0])
		return usage()
	}
}

func runGrid(args []string) int {
	fs := flag.NewFlagSet("tcexp run", flag.ExitOnError)
	gridPath := fs.String("grid", "", "experiment grid spec (JSON)")
	out := fs.String("out", "results", "parent directory for the timestamped results dir")
	tcbench := fs.String("tcbench", "", "prebuilt tcbench binary (default: go build it once into a temp dir)")
	fs.Parse(args)
	if *gridPath == "" {
		fmt.Fprintln(os.Stderr, "tcexp run: -grid is required")
		return 2
	}

	grid, err := exp.LoadGrid(*gridPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcexp: %v\n", err)
		return 2
	}

	root, err := exp.RepoRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcexp: %v\n", err)
		return 2
	}
	log := func(s string) { fmt.Fprintln(os.Stderr, s) }

	bin := *tcbench
	if bin == "" {
		tmp, err := os.MkdirTemp("", "tcexp-*")
		if err != nil {
			fmt.Fprintf(os.Stderr, "tcexp: %v\n", err)
			return 2
		}
		defer os.RemoveAll(tmp)
		log("building tcbench ...")
		if bin, err = exp.BuildTCBench(context.Background(), root, tmp); err != nil {
			fmt.Fprintf(os.Stderr, "tcexp: %v\n", err)
			return 2
		}
	}

	runner := &exp.SubprocessRunner{Bin: bin, Dir: root}
	res, err := exp.Run(context.Background(), grid, *gridPath, runner, log)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcexp: %v\n", err)
		return 1
	}
	dir, err := res.WriteDir(*out, nowUTC())
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcexp: %v\n", err)
		return 1
	}
	fmt.Print(res.Markdown())
	fmt.Printf("\nresults written to %s (results.json, results.md, results.csv)\n", dir)
	return 0
}

func runCompare(args []string) int {
	fs := flag.NewFlagSet("tcexp compare", flag.ExitOnError)
	tol := fs.Float64("tol", 0.5,
		"fractional regression tolerance (0.5 = fail when >50% worse than baseline)")
	fs.Parse(args)
	if fs.NArg() != 2 {
		return usage()
	}
	oldRes, err := exp.LoadResults(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcexp compare: baseline: %v\n", err)
		return 2
	}
	newRes, err := exp.LoadResults(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcexp compare: current: %v\n", err)
		return 2
	}
	deltas, warnings := exp.Compare(oldRes, newRes, *tol)
	for _, w := range warnings {
		fmt.Fprintf(os.Stderr, "tcexp compare: warning: %s\n", w)
	}
	fmt.Printf("baseline %s (commit %s) vs current %s (commit %s), tolerance %g%%\n\n",
		oldRes.Started, short(oldRes.Machine.GitSHA), newRes.Started, short(newRes.Machine.GitSHA), *tol*100)
	fmt.Print(exp.CompareReport(deltas, *tol))
	if reg := exp.Regressions(deltas); len(reg) > 0 {
		fmt.Fprintf(os.Stderr, "\ntcexp compare: %d metric(s) regressed beyond %g%% tolerance\n",
			len(reg), *tol*100)
		return 1
	}
	fmt.Println("\ntcexp compare: no regression beyond tolerance")
	return 0
}

func short(sha string) string {
	if len(sha) > 12 {
		return sha[:12]
	}
	return sha
}
