package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/exp"
)

// writeResults materializes a Results value as a results directory the
// compare command can load.
func writeResults(t *testing.T, r *exp.Results) string {
	t.Helper()
	dir, err := r.WriteDir(t.TempDir(), time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC))
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

func baselineResults() *exp.Results {
	return &exp.Results{
		Name: "t", Started: "2026-08-07T12:00:00Z", Grid: "g.json",
		Machine: exp.Machine{GoMaxProcs: 1, NumCPU: 1, GoVersion: "go1.24.0", GitSHA: "unknown", OS: "linux", Arch: "amd64"},
		Cells: []exp.CellResult{{
			Experiment: "e24", N: 8, Workers: 1, Repeats: 3, Warmup: 1,
			Metrics: map[string]exp.Metric{
				"build_sec": {Mean: 0.01, Std: 0.001, Min: 0.009, Samples: []float64{0.009, 0.01, 0.011}},
			},
		}},
	}
}

// TestCompareExitCodes drives the real command entry point: exit 0 on a
// clean diff, exit 1 when a synthetic 2x regression is injected, exit 2
// on unusable input.
func TestCompareExitCodes(t *testing.T) {
	base := writeResults(t, baselineResults())

	if code := run([]string{"compare", base, base}); code != 0 {
		t.Errorf("self-compare: exit %d, want 0", code)
	}

	worse := baselineResults()
	m := worse.Cells[0].Metrics["build_sec"]
	m.Mean, m.Std, m.Min = m.Mean*2, m.Std*2, m.Min*2
	for i := range m.Samples {
		m.Samples[i] *= 2
	}
	worse.Cells[0].Metrics["build_sec"] = m
	if code := run([]string{"compare", base, writeResults(t, worse)}); code != 1 {
		t.Errorf("2x regression: exit %d, want 1", code)
	}

	if code := run([]string{"compare", base, filepath.Join(t.TempDir(), "missing")}); code != 2 {
		t.Errorf("missing dir: exit %d, want 2", code)
	}
	if code := run([]string{"compare", base}); code != 2 {
		t.Errorf("one arg: exit %d, want 2", code)
	}
	if code := run([]string{"bogus"}); code != 2 {
		t.Errorf("unknown command: exit %d, want 2", code)
	}
}

// TestCompareToleranceFlag: the same 2x regression passes when -tol is
// loosened past the injected delta.
func TestCompareToleranceFlag(t *testing.T) {
	base := writeResults(t, baselineResults())
	worse := baselineResults()
	m := worse.Cells[0].Metrics["build_sec"]
	m.Mean, m.Std, m.Min = m.Mean*2, m.Std*2, m.Min*2
	worse.Cells[0].Metrics["build_sec"] = m
	worseDir := writeResults(t, worse)
	if code := run([]string{"compare", "-tol", "1.5", base, worseDir}); code != 0 {
		t.Errorf("-tol 1.5 over a 2x delta: exit %d, want 0", code)
	}
	if code := run([]string{"compare", "-tol", "0.5", base, worseDir}); code != 1 {
		t.Errorf("-tol 0.5 over a 2x delta: exit %d, want 1", code)
	}
}

// TestResultsJSONIsCanonical guards the on-disk contract the CI job and
// committed baselines rely on: results.json round-trips through the
// exp.Results schema without losing cells or metrics.
func TestResultsJSONIsCanonical(t *testing.T) {
	dir := writeResults(t, baselineResults())
	data, err := os.ReadFile(filepath.Join(dir, "results.json"))
	if err != nil {
		t.Fatal(err)
	}
	var r exp.Results
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 1 || len(r.Cells[0].Metrics) != 1 {
		t.Errorf("round trip lost data: %+v", r)
	}
}
