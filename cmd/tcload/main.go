// Command tcload is an open-loop load generator for tcserve (see
// internal/load and DESIGN.md "Sharded dispatch and the load harness").
//
//	tcload -url http://localhost:8714 -rate 2000 -duration 30s
//	tcload -url http://localhost:8714 -workers 64 -frame=false   # closed-loop JSON
//	tcload -graph -graph-tenants 64 -url http://localhost:8714   # streaming /v1/graph updates
//	tcload -smoke -url http://localhost:8714                     # CI regression gate
//	tcload -probe -url http://localhost:8714                     # exit 0 iff /healthz is 200
//
// The default -url honors TCSERVE_PORT, the same variable tcserve and
// the smoke scripts read, so a non-default port needs setting once.
//
// Shape popularity is Zipf-distributed over the rank-ordered -shapes
// list (rank 0 most popular), the arrival process is Poisson at -rate
// (0 = closed loop), and latency is measured from each request's
// scheduled arrival, so queue delay under overload shows up in the
// p99/p999 columns instead of silently throttling the generator
// (coordinated omission). Inputs are precomputed by building each shape
// locally, which also yields ground truth: with -check every response
// is verified against a direct scalar evaluation.
//
// -smoke is the CI gate: a short closed-loop frame-protocol burst whose
// throughput must reach -min-rps-frac of the committed
// BENCH_serve.json e27 baseline. It skips (exit 0) when GOMAXPROCS < 2
// — the sharded-vs-coalesced comparison is only meaningful with real
// parallelism.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/load"
	"repro/internal/stream"
)

func main() { os.Exit(run()) }

// defaultURL derives the default -url from TCSERVE_PORT so tcload,
// tcserve and the smoke scripts agree on the port from one variable.
func defaultURL() string {
	if port := os.Getenv("TCSERVE_PORT"); port != "" {
		return "http://localhost:" + port
	}
	return "http://localhost:8714"
}

func run() int {
	var (
		url      = flag.String("url", defaultURL(), "tcserve base URL (default honors TCSERVE_PORT)")
		workers  = flag.Int("workers", 64, "concurrent request workers")
		rate     = flag.Float64("rate", 0, "target arrivals/sec, Poisson (0 = closed loop)")
		duration = flag.Duration("duration", 10*time.Second, "run length (ignored when -requests is set)")
		requests = flag.Int64("requests", 0, "stop after this many requests (0 = run for -duration)")
		zipfS    = flag.Float64("zipf-s", 1.3, "shape-popularity Zipf exponent (> 1)")
		shapes   = flag.String("shapes", "matmul:8,count:4,trace:4:2",
			"rank-ordered op:n[:tau] list, most popular first")
		frame   = flag.Bool("frame", true, "binary /v1/eval protocol (false = JSON endpoints)")
		check   = flag.Bool("check", true, "verify responses against direct local evaluation")
		samples = flag.Int("samples", 64, "precomputed request samples per shape")
		seed    = flag.Int64("seed", 1, "RNG seed (workload is deterministic given the seed)")
		jsonOut = flag.Bool("json", false, "emit the result as one JSON object on stdout")
		smoke   = flag.Bool("smoke", false,
			"CI regression gate: 3s closed-loop frame burst vs the committed baseline")
		baseline = flag.String("baseline", "BENCH_serve.json", "baseline file for -smoke")
		minFrac  = flag.Float64("min-rps-frac", 0.5,
			"-smoke fails below this fraction of the baseline e27 frame-mode rps")
		probe = flag.Bool("probe", false,
			"GET -url/healthz once and exit 0/1 — a curl-free readiness probe for scripts")
		graphMode = flag.Bool("graph", false,
			"streaming mode: per-tenant /v1/graph edge updates with shadow-oracle recount checks")
		graphTenants = flag.Int("graph-tenants", 16, "-graph: concurrent tenant sessions")
		graphN       = flag.Int("graph-n", 8, "-graph: vertices per tenant graph (power of two)")
		graphTau     = flag.Int64("graph-tau", 3, "-graph: triangle-screening threshold")
		graphBatch   = flag.Int("graph-batch", 8, "-graph: edge ops per update frame")
		graphEnergy  = flag.Bool("graph-energy", true, "-graph: request per-screen energy accounting")
	)
	flag.Parse()

	if *probe {
		return probeHealth(*url)
	}

	if *graphMode {
		return graphRun(*url, graphOptions{
			tenants: *graphTenants, n: *graphN, tau: *graphTau,
			batch: *graphBatch, energy: *graphEnergy, check: *check,
			workers: *workers, rate: *rate, duration: *duration,
			requests: *requests, seed: *seed, jsonOut: *jsonOut,
		})
	}

	if *smoke {
		if gmp := runtime.GOMAXPROCS(0); gmp < 2 {
			fmt.Printf("tcload: smoke skipped: GOMAXPROCS=%d (sharded dispatch needs >= 2 cores)\n", gmp)
			return 0
		}
		*rate, *duration, *requests, *frame, *check = 0, 3*time.Second, 0, true, true
	}

	shapeList, err := parseShapes(*shapes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcload: %v\n", err)
		return 2
	}
	pools := make([]*load.Pool, len(shapeList))
	for i, sh := range shapeList {
		fmt.Fprintf(os.Stderr, "tcload: building %s ...\n", sh.Key())
		if pools[i], err = load.NewPool(sh, *samples, *seed+int64(100*i)); err != nil {
			fmt.Fprintf(os.Stderr, "tcload: build %s: %v\n", sh.Key(), err)
			return 2
		}
	}
	cdf := make([]float64, len(pools))
	if len(pools) > 1 {
		if *zipfS <= 1 {
			fmt.Fprintf(os.Stderr, "tcload: -zipf-s must be > 1 with multiple shapes\n")
			return 2
		}
		acc := 0.0
		for i, p := range load.PMF(*zipfS, len(pools)) {
			acc += p
			cdf[i] = acc
		}
	} else {
		cdf[0] = 1
	}

	// Persistent connections: one keepalive slot per worker, so steady
	// state pays no TCP/TLS setup per request.
	client := &http.Client{
		Transport: &http.Transport{MaxIdleConnsPerHost: *workers, MaxIdleConns: *workers},
		Timeout:   60 * time.Second,
	}

	var mismatches atomic.Int64
	res, err := load.Run(context.Background(), load.Options{
		Workers: *workers, Rate: *rate, Duration: *duration, Count: *requests, Seed: *seed,
	}, func(ctx context.Context, rng *rand.Rand) error {
		rank := 0
		u := rng.Float64()
		for rank < len(cdf)-1 && u > cdf[rank] {
			rank++
		}
		pool := pools[rank]
		sm := &pool.Samples[rng.Intn(len(pool.Samples))]
		var ok bool
		var perr error
		if *frame {
			ok, perr = load.PostFrame(client, *url, sm)
		} else {
			ok, perr = load.PostJSON(client, *url, pool, sm)
		}
		if perr != nil {
			return perr
		}
		if *check && !ok {
			mismatches.Add(1)
		}
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcload: %v\n", err)
		return 2
	}

	identical := mismatches.Load() == 0
	if *jsonOut {
		out, _ := json.Marshal(map[string]any{
			"sent": res.Sent, "ok": res.OK, "failed": res.Failed,
			"seconds": res.Elapsed.Seconds(), "rps": res.RPS,
			"p50_us": res.Latency.Quantile(0.50), "p99_us": res.Latency.Quantile(0.99),
			"p999_us": res.Latency.Quantile(0.999), "max_us": res.Latency.Max(),
			"identical": identical, "gomaxprocs": runtime.GOMAXPROCS(0),
		})
		fmt.Println(string(out))
	} else {
		loop := "closed"
		if *rate > 0 {
			loop = fmt.Sprintf("open @ %.0f/s", *rate)
		}
		fmt.Printf("tcload: %s loop, %d workers, %d shapes, %s\n", loop, *workers, len(pools),
			map[bool]string{true: "frame", false: "json"}[*frame])
		fmt.Printf("  sent %d  ok %d  failed %d  in %.2fs  =>  %.0f rps\n",
			res.Sent, res.OK, res.Failed, res.Elapsed.Seconds(), res.RPS)
		fmt.Printf("  latency µs: p50 %d  p99 %d  p999 %d  max %d\n",
			res.Latency.Quantile(0.50), res.Latency.Quantile(0.99),
			res.Latency.Quantile(0.999), res.Latency.Max())
		if *check {
			fmt.Printf("  identical: %v\n", identical)
		}
	}

	if res.Failed > 0 {
		fmt.Fprintf(os.Stderr, "tcload: %d requests failed (first: %v)\n", res.Failed, res.Err)
		return 1
	}
	if *check && !identical {
		fmt.Fprintf(os.Stderr, "tcload: %d responses differ from direct evaluation\n", mismatches.Load())
		return 1
	}
	if *smoke {
		return smokeVerdict(*baseline, *minFrac, res.RPS)
	}
	return 0
}

type graphOptions struct {
	tenants, n, batch, workers int
	tau, requests, seed        int64
	rate                       float64
	duration                   time.Duration
	energy, check, jsonOut     bool
}

// graphRun drives the streaming /v1/graph endpoint: each tenant session
// is owned by a GraphStream whose shadow bitset is the ground-truth
// triangle recount, and (with -check) every screened response must
// match it bit for bit. Streams circulate through a channel so a
// tenant's updates stay strictly ordered while any worker may carry
// any tenant — the same per-tenant serialization the service enforces.
func graphRun(url string, o graphOptions) int {
	if o.tenants < 1 || o.batch < 1 {
		fmt.Fprintf(os.Stderr, "tcload: -graph-tenants and -graph-batch must be >= 1\n")
		return 2
	}
	client := &http.Client{
		Transport: &http.Transport{MaxIdleConnsPerHost: o.workers, MaxIdleConns: o.workers},
		Timeout:   60 * time.Second,
	}

	pool := make(chan *load.GraphStream, o.tenants)
	for i := 0; i < o.tenants; i++ {
		gs := load.NewGraphStream(fmt.Sprintf("tenant-%03d", i), o.n, o.tau, o.seed+int64(1000*i))
		gs.Energy = o.energy
		if _, err := load.PostGraph(client, url, gs.CreateRequest()); err != nil {
			fmt.Fprintf(os.Stderr, "tcload: create %s: %v\n", gs.Tenant, err)
			return 2
		}
		pool <- gs
	}

	var mismatches atomic.Int64
	res, err := load.Run(context.Background(), load.Options{
		Workers: o.workers, Rate: o.rate, Duration: o.duration, Count: o.requests, Seed: o.seed,
	}, func(ctx context.Context, rng *rand.Rand) error {
		gs := <-pool
		defer func() { pool <- gs }()
		resp, perr := load.PostGraph(client, url, gs.NextUpdate(o.batch))
		if perr != nil {
			// The shadow already applied this batch; resync the session
			// from scratch so later checks stay meaningful.
			load.PostGraph(client, url, stream.GraphRequest{Op: stream.OpClose, Tenant: gs.Tenant})
			gs.Reset()
			load.PostGraph(client, url, gs.CreateRequest())
			return perr
		}
		if o.check {
			if cerr := gs.Check(resp); cerr != nil {
				mismatches.Add(1)
				fmt.Fprintf(os.Stderr, "tcload: %v\n", cerr)
			}
		}
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcload: %v\n", err)
		return 2
	}

	identical := mismatches.Load() == 0
	if o.jsonOut {
		out, _ := json.Marshal(map[string]any{
			"sent": res.Sent, "ok": res.OK, "failed": res.Failed,
			"seconds": res.Elapsed.Seconds(), "rps": res.RPS,
			"p50_us": res.Latency.Quantile(0.50), "p99_us": res.Latency.Quantile(0.99),
			"p999_us": res.Latency.Quantile(0.999), "max_us": res.Latency.Max(),
			"identical": identical, "tenants": o.tenants, "batch": o.batch,
			"gomaxprocs": runtime.GOMAXPROCS(0),
		})
		fmt.Println(string(out))
	} else {
		fmt.Printf("tcload: graph mode, %d tenants (n=%d τ=%d), batch %d, %d workers\n",
			o.tenants, o.n, o.tau, o.batch, o.workers)
		fmt.Printf("  sent %d  ok %d  failed %d  in %.2fs  =>  %.0f rps\n",
			res.Sent, res.OK, res.Failed, res.Elapsed.Seconds(), res.RPS)
		fmt.Printf("  latency µs: p50 %d  p99 %d  p999 %d  max %d\n",
			res.Latency.Quantile(0.50), res.Latency.Quantile(0.99),
			res.Latency.Quantile(0.999), res.Latency.Max())
		if o.check {
			fmt.Printf("  identical: %v\n", identical)
		}
	}
	if res.Failed > 0 {
		fmt.Fprintf(os.Stderr, "tcload: %d requests failed (first: %v)\n", res.Failed, res.Err)
		return 1
	}
	if o.check && !identical {
		fmt.Fprintf(os.Stderr, "tcload: %d screened responses differ from the shadow recount\n", mismatches.Load())
		return 1
	}
	return 0
}

// probeHealth is the scripts' readiness check: one short GET of
// /healthz, quiet, exit 0 iff the server answered 200. It exists so
// scripts/loadgen_smoke.sh needs no curl/wget on minimal runners — the
// tcload binary is already built there.
func probeHealth(base string) int {
	client := &http.Client{Timeout: 2 * time.Second}
	resp, err := client.Get(strings.TrimRight(base, "/") + "/healthz")
	if err != nil {
		return 1
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 1
	}
	return 0
}

// smokeVerdict compares measured throughput to the committed e27
// frame-mode baseline row.
func smokeVerdict(path string, minFrac, rps float64) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcload: smoke baseline: %v\n", err)
		return 2
	}
	var file struct {
		E27 []struct {
			Mode string  `json:"mode"`
			RPS  float64 `json:"rps"`
		} `json:"e27"`
	}
	if err := json.Unmarshal(data, &file); err != nil {
		fmt.Fprintf(os.Stderr, "tcload: smoke baseline %s: %v\n", path, err)
		return 2
	}
	base := 0.0
	for _, r := range file.E27 {
		if r.Mode == "http-sharded-frame" {
			base = r.RPS
		}
	}
	if base == 0 {
		fmt.Fprintf(os.Stderr, "tcload: smoke baseline %s has no http-sharded-frame row\n", path)
		return 2
	}
	floor := base * minFrac
	fmt.Printf("tcload: smoke: %.0f rps vs baseline %.0f (floor %.0f = %.0f%%)\n",
		rps, base, floor, minFrac*100)
	// Same predicate as `tcexp compare` and tcbench -smoke: a
	// higher-is-better metric regresses when it falls under
	// baseline*(1-tol); here tol is 1 - minFrac.
	if exp.Regressed(exp.HigherIsBetter, base, rps, 1-minFrac) {
		fmt.Fprintf(os.Stderr, "tcload: smoke FAILED: rps regression below the floor\n")
		return 1
	}
	fmt.Println("tcload: smoke passed")
	return 0
}

// parseShapes parses the rank-ordered "op:n[:tau]" list. Matmul shapes
// default to the benchmarks' 2-bit signed entries so pools agree with
// the committed e25/e27 workload.
func parseShapes(spec string) ([]core.Shape, error) {
	var out []core.Shape
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("shape %q: want op:n[:tau]", part)
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 1 {
			return nil, fmt.Errorf("shape %q: bad n", part)
		}
		sh := core.Shape{N: n, Alg: "strassen"}
		switch fields[0] {
		case "matmul":
			sh.Op, sh.EntryBits, sh.Signed = core.OpMatMul, 2, true
		case "trace":
			sh.Op = core.OpTrace
		case "count", "triangles":
			sh.Op = core.OpCount
		default:
			return nil, fmt.Errorf("shape %q: unknown op (matmul, trace, count)", part)
		}
		if len(fields) == 3 {
			if sh.Op != core.OpTrace {
				return nil, fmt.Errorf("shape %q: tau only applies to trace", part)
			}
			tau, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("shape %q: bad tau", part)
			}
			sh.Tau = tau
		}
		out = append(out, sh)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -shapes list")
	}
	return out, nil
}
