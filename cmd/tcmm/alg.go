package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	tcmm "repro"
)

// resolveAlg loads an algorithm either from the built-in registry
// (-alg name) or from a JSON file (-algfile path); the file form is
// fully verified against the bilinear identity before use.
func resolveAlg(name, file string) (*tcmm.Algorithm, error) {
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return tcmm.DecodeAlgorithm(data)
	}
	return tcmm.LookupAlgorithm(name)
}

// cmdExport writes a built-in algorithm as JSON, the interchange format
// cmdCount/cmdMatMul accept back via -algfile.
func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	algName := fs.String("alg", "strassen", "algorithm to export")
	fs.Parse(args)
	alg, err := tcmm.LookupAlgorithm(*algName)
	if err != nil {
		return err
	}
	data, err := tcmm.EncodeAlgorithm(alg)
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(append(data, '\n'))
	return err
}

// cmdCount builds the exact-count circuit and counts triangles in a
// random graph.
func cmdCount(args []string) error {
	fs := flag.NewFlagSet("count", flag.ExitOnError)
	n := fs.Int("n", 16, "vertices (power of the algorithm's T)")
	algName := fs.String("alg", "strassen", "algorithm")
	algFile := fs.String("algfile", "", "JSON algorithm file (overrides -alg)")
	d := fs.Int("d", 2, "depth parameter")
	p := fs.Float64("p", 0.3, "edge probability")
	seed := fs.Int64("seed", 1, "random seed")
	fs.Parse(args)

	alg, err := resolveAlg(*algName, *algFile)
	if err != nil {
		return err
	}
	cc, err := tcmm.NewCount(*n, tcmm.Options{Alg: alg, Depth: *d})
	if err != nil {
		return err
	}
	st := cc.Circuit.Stats()
	fmt.Printf("count circuit: N=%d alg=%s schedule=%v\n", *n, alg.Name, cc.Schedule)
	fmt.Printf("  gates=%d depth=%d (bound %d) edges=%d\n",
		st.Size, st.Depth, cc.DepthBound(), st.Edges)

	rng := rand.New(rand.NewSource(*seed))
	g := tcmm.ErdosRenyi(rng, *n, *p)
	got, err := cc.Triangles(g.Adjacency())
	if err != nil {
		return err
	}
	fmt.Printf("  G(%d, %.2f): circuit counts %d triangles (exact: %d)\n",
		*n, *p, got, g.Triangles())
	return nil
}
