package main

import (
	"os"
	"path/filepath"
	"testing"

	tcmm "repro"
)

func TestResolveAlgRegistry(t *testing.T) {
	alg, err := resolveAlg("strassen", "")
	if err != nil {
		t.Fatal(err)
	}
	if alg.R != 7 {
		t.Errorf("r = %d, want 7", alg.R)
	}
	if _, err := resolveAlg("nope", ""); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestResolveAlgFile(t *testing.T) {
	data, err := tcmm.EncodeAlgorithm(tcmm.Winograd())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "alg.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	alg, err := resolveAlg("ignored", path)
	if err != nil {
		t.Fatal(err)
	}
	if alg.Name != "winograd" {
		t.Errorf("loaded %q", alg.Name)
	}
	if _, err := resolveAlg("", filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	// A file with a broken identity must be rejected.
	bad := tcmm.Strassen()
	bad.C[0][0] = 5
	badData, err := tcmm.EncodeAlgorithm(bad)
	if err != nil {
		t.Fatal(err)
	}
	badPath := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(badPath, badData, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := resolveAlg("", badPath); err == nil {
		t.Error("algorithm violating the bilinear identity accepted")
	}
}
