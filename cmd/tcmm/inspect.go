package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	tcmm "repro"
)

// cmdInspect prints the anatomy of a saved circuit: per-level gate
// counts and a fan-in histogram — the floor plan a hardware mapping
// would start from.
func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	in := fs.String("in", "circuit.tcm", "saved circuit path")
	fs.Parse(args)

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	c, err := tcmm.ReadCircuit(f)
	if err != nil {
		return err
	}
	st := c.Stats()
	fmt.Printf("circuit: %d inputs, %d gates, depth %d, %d edges, max fan-in %d, %d outputs\n",
		st.Inputs, st.Size, st.Depth, st.Edges, st.MaxFanIn, len(c.Outputs()))

	fmt.Println("\ngates per level:")
	for lvl, n := range c.LevelSizes() {
		fmt.Printf("  level %2d: %9d %s\n", lvl+1, n, bar(n, st.Size))
	}

	// Fan-in histogram in powers of two.
	hist := map[int]int{}
	for g := 0; g < c.Size(); g++ {
		f := c.FanIn(g)
		bucket := 0
		for (1 << bucket) < f {
			bucket++
		}
		hist[bucket]++
	}
	buckets := make([]int, 0, len(hist))
	for b := range hist {
		buckets = append(buckets, b)
	}
	sort.Ints(buckets)
	fmt.Println("\nfan-in distribution:")
	for _, b := range buckets {
		lo := 0
		if b > 0 {
			lo = (1 << (b - 1)) + 1
		}
		fmt.Printf("  %7d..%-7d %9d %s\n", lo, 1<<b, hist[b], bar(hist[b], st.Size))
	}
	return nil
}

// bar renders a proportional ASCII bar.
func bar(n, total int) string {
	if total == 0 {
		return ""
	}
	w := n * 40 / total
	out := make([]byte, w)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
