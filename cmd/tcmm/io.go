package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	tcmm "repro"
)

// cmdSave builds a circuit and writes it in the binary codec, so
// expensive constructions are paid once. With -cache-dir it instead
// saves into the content-addressed store (checksummed envelope that
// also carries the decode maps, reloadable by `tcmm load` and tcserve).
func cmdSave(args []string) error {
	fs := flag.NewFlagSet("save", flag.ExitOnError)
	kind := fs.String("kind", "matmul", "matmul|trace|count")
	n := fs.Int("n", 8, "matrix dimension")
	algName := fs.String("alg", "strassen", "algorithm")
	d := fs.Int("d", 2, "depth parameter")
	bits := fs.Int("bits", 1, "entry bit width")
	signed := fs.Bool("signed", false, "allow negative entries")
	tau := fs.Int64("tau", 6, "trace threshold (trace kind only)")
	shared := fs.Bool("shared", false, "enable the MSB-sharing optimization")
	out := fs.String("out", "circuit.tcm", "output path (raw codec; ignored with -cache-dir)")
	cacheDir := fs.String("cache-dir", "", "save into this content-addressed store instead of -out")
	format := fs.String("format", "tcs2", "store envelope format: tcs2 (compact, mmap-able) or tcs1 (legacy)")
	fs.Parse(args)

	if *cacheDir != "" {
		return saveToStore(*cacheDir, shapeFromFlags(*kind, *n, *algName, *d, *bits, *signed, *tau, *shared), *format)
	}

	alg, err := tcmm.LookupAlgorithm(*algName)
	if err != nil {
		return err
	}
	opts := tcmm.Options{Alg: alg, Depth: *d, EntryBits: *bits, Signed: *signed, SharedMSB: *shared}
	var c *tcmm.Circuit
	switch *kind {
	case "matmul":
		mc, err := tcmm.NewMatMul(*n, opts)
		if err != nil {
			return err
		}
		c = mc.Circuit
	case "trace":
		tc, err := tcmm.NewTrace(*n, *tau, opts)
		if err != nil {
			return err
		}
		c = tc.Circuit
	case "count":
		cc, err := tcmm.NewCount(*n, opts)
		if err != nil {
			return err
		}
		c = cc.Circuit
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	written, err := c.WriteTo(f)
	if err != nil {
		return err
	}
	fmt.Printf("saved %s circuit: %d gates, depth %d, %d bytes -> %s\n",
		*kind, c.Size(), c.Depth(), written, *out)
	return nil
}

// cmdSim loads a saved circuit and profiles one inference on a device
// under a random input assignment of the given density.
func cmdSim(args []string) error {
	fs := flag.NewFlagSet("sim", flag.ExitOnError)
	in := fs.String("in", "circuit.tcm", "saved circuit path")
	device := fs.String("device", "loihi", "truenorth|loihi|unlimited")
	placement := fs.String("placement", "locality", "locality|levelorder")
	density := fs.Float64("density", 0.5, "input one-probability")
	bandwidth := fs.Int64("bandwidth", 0, "per-core off-chip spikes per step (0 = unlimited)")
	seed := fs.Int64("seed", 1, "random seed")
	vcd := fs.String("vcd", "", "also write the run as a VCD waveform to this path")
	fs.Parse(args)

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	c, err := tcmm.ReadCircuit(f)
	if err != nil {
		return err
	}
	var dev tcmm.Device
	switch *device {
	case "truenorth":
		dev = tcmm.TrueNorthDevice()
	case "loihi":
		dev = tcmm.LoihiDevice()
	case "unlimited":
		dev = tcmm.UnlimitedDevice()
	default:
		return fmt.Errorf("unknown device %q", *device)
	}
	dev.LinkBandwidth = *bandwidth

	var p *tcmm.Placement
	switch *placement {
	case "locality":
		p, err = tcmm.PlaceLocality(c, dev)
	case "levelorder":
		p, err = tcmm.PlaceLevelOrder(c, dev)
	default:
		return fmt.Errorf("unknown placement %q", *placement)
	}
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(*seed))
	inputs := make([]bool, c.NumInputs())
	for i := range inputs {
		inputs[i] = rng.Float64() < *density
	}
	_, stats, err := tcmm.RunOnDevice(c, dev, p, inputs)
	if err != nil {
		return err
	}
	fmt.Printf("circuit: %d gates, depth %d, %d inputs\n", c.Size(), c.Depth(), c.NumInputs())
	fmt.Printf("device %s, placement %s:\n", dev.Name, *placement)
	fmt.Printf("  cores=%d depth-steps=%d wall-steps=%d\n", stats.Cores, stats.Timesteps, stats.WallTimesteps)
	fmt.Printf("  spikes=%d on-core=%d off-core=%d energy=%.1f\n",
		stats.Spikes, stats.OnCoreEvents, stats.OffCoreEvents, stats.Energy)
	if *vcd != "" {
		if c.Size() > 200000 {
			return fmt.Errorf("circuit too large for VCD export (%d gates)", c.Size())
		}
		vf, err := os.Create(*vcd)
		if err != nil {
			return err
		}
		defer vf.Close()
		if err := c.WriteVCD(vf, "tcmm", inputs); err != nil {
			return err
		}
		fmt.Printf("  waveform written to %s\n", *vcd)
	}
	return nil
}
