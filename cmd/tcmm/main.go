// Command tcmm is the command-line interface to the threshold-circuit
// matrix multiplication library.
//
// Usage:
//
//	tcmm params                          algorithm constants table
//	tcmm verify                          verify all built-in algorithms
//	tcmm matmul  -n 8 -alg strassen ...  build + run a matmul circuit
//	tcmm trace   -n 8 -tau 6 ...         build + run a trace circuit
//	tcmm triangles -n 16 -p 0.3 -cc 0.4  graph clustering query pipeline
//	tcmm counts  -L 16 -d 4 ...          analytic gate-count model
//	tcmm neuro   -n 8 -device loihi ...  simulate neuromorphic deployment
//	tcmm dot     -n 2 ...                emit a small circuit as DOT
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"

	tcmm "repro"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "params":
		err = cmdParams()
	case "verify":
		err = cmdVerify()
	case "matmul":
		err = cmdMatMul(args)
	case "trace":
		err = cmdTrace(args)
	case "triangles":
		err = cmdTriangles(args)
	case "counts":
		err = cmdCounts(args)
	case "neuro":
		err = cmdNeuro(args)
	case "dot":
		err = cmdDot(args)
	case "count":
		err = cmdCount(args)
	case "export":
		err = cmdExport(args)
	case "save":
		err = cmdSave(args)
	case "load":
		err = cmdLoad(args)
	case "stat":
		err = cmdStat(args)
	case "sim":
		err = cmdSim(args)
	case "inspect":
		err = cmdInspect(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "tcmm: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcmm %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `tcmm — threshold circuits for matrix multiplication (SPAA'18 reproduction)

commands:
  params      print T, r, ω, sparsity, α, β, γ, c for every built-in algorithm
  verify      check the bilinear identity of every built-in algorithm
  matmul      build an N x N matmul circuit, multiply random matrices, report stats
  trace       build a trace(A³) >= τ circuit and run it on a random graph
  triangles   clustering-coefficient query on a synthetic social graph
  counts      analytic gate-count model for paper-scale N
  neuro       simulate deployment on a neuromorphic device profile
  dot         emit a small circuit in Graphviz DOT format
  count       build the exact-count circuit and count triangles
  export      write a built-in algorithm as JSON (feed back via -algfile)
  save        build a circuit and cache it on disk (binary codec or -cache-dir store)
  load        reload a circuit from a -cache-dir store (optionally -certify)
  stat        summarize a store artifact from its header alone (no load)
  sim         profile a saved circuit on a device (placement, congestion)
  inspect     print a saved circuit's level and fan-in anatomy

run 'tcmm <command> -h' for flags`)
}

func cmdParams() error {
	reg := tcmm.Algorithms()
	names := make([]string, 0, len(reg))
	for n := range reg {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("%-10s %3s %3s %7s %4s %4s %4s %7s %7s %7s %7s\n",
		"algorithm", "T", "r", "ω", "s_A", "s_B", "s_C", "α", "β", "γ", "c")
	for _, n := range names {
		p := reg[n].Params()
		fmt.Printf("%-10s %3d %3d %7.4f %4d %4d %4d %7.4f %7.4f %7.4f %7.4f\n",
			n, p.T, p.R, p.Omega, p.SA, p.SB, p.SC, p.Alpha, p.Beta, p.Gamma, p.CConst)
	}
	return nil
}

func cmdVerify() error {
	reg := tcmm.Algorithms()
	names := make([]string, 0, len(reg))
	for n := range reg {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if err := reg[n].Verify(); err != nil {
			return err
		}
		fmt.Printf("%-10s bilinear identity verified (T=%d, r=%d)\n", n, reg[n].T, reg[n].R)
	}
	return nil
}

// algFlag resolves a -alg flag value.
func algFlag(name string) (*tcmm.Algorithm, error) { return tcmm.LookupAlgorithm(name) }

func cmdMatMul(args []string) error {
	fs := flag.NewFlagSet("matmul", flag.ExitOnError)
	n := fs.Int("n", 8, "matrix dimension (power of the algorithm's T)")
	algName := fs.String("alg", "strassen", "algorithm: strassen|winograd|naive2|strassen2")
	d := fs.Int("d", 2, "depth parameter (Theorem 4.9 schedule)")
	bits := fs.Int("bits", 1, "entry bit width")
	signed := fs.Bool("signed", false, "allow negative entries")
	seed := fs.Int64("seed", 1, "random seed")
	fs.Parse(args)

	alg, err := algFlag(*algName)
	if err != nil {
		return err
	}
	mc, err := tcmm.NewMatMul(*n, tcmm.Options{Alg: alg, Depth: *d, EntryBits: *bits, Signed: *signed})
	if err != nil {
		return err
	}
	st := mc.Circuit.Stats()
	fmt.Printf("matmul circuit: N=%d alg=%s schedule=%v\n", *n, alg.Name, mc.Schedule)
	fmt.Printf("  gates=%d depth=%d (bound %d) edges=%d maxfanin=%d inputs=%d\n",
		st.Size, st.Depth, mc.DepthBound(), st.Edges, st.MaxFanIn, st.Inputs)
	fmt.Printf("  audit: downA=%v downB=%v product=%d up=%v\n",
		mc.Audit.DownA, mc.Audit.DownB, mc.Audit.Product, mc.Audit.Up)

	rng := rand.New(rand.NewSource(*seed))
	lo := int64(0)
	hi := int64(1)<<uint(*bits) - 1
	if *signed {
		lo = -hi
	}
	a := tcmm.RandomMatrix(rng, *n, *n, lo, hi)
	b := tcmm.RandomMatrix(rng, *n, *n, lo, hi)
	got, err := mc.Multiply(a, b)
	if err != nil {
		return err
	}
	fmt.Printf("  random product correct: %v\n", got.Equal(a.Mul(b)))
	return nil
}

func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	n := fs.Int("n", 8, "matrix dimension (power of the algorithm's T)")
	algName := fs.String("alg", "strassen", "algorithm")
	d := fs.Int("d", 2, "depth parameter")
	tau := fs.Int64("tau", 6, "trace threshold τ")
	p := fs.Float64("p", 0.5, "edge probability of the random test graph")
	seed := fs.Int64("seed", 1, "random seed")
	fs.Parse(args)

	alg, err := algFlag(*algName)
	if err != nil {
		return err
	}
	tc, err := tcmm.NewTrace(*n, *tau, tcmm.Options{Alg: alg, Depth: *d})
	if err != nil {
		return err
	}
	st := tc.Circuit.Stats()
	fmt.Printf("trace circuit: N=%d alg=%s τ=%d schedule=%v\n", *n, alg.Name, *tau, tc.Schedule)
	fmt.Printf("  gates=%d depth=%d (bound %d) edges=%d maxfanin=%d\n",
		st.Size, st.Depth, tc.DepthBound(), st.Edges, st.MaxFanIn)

	rng := rand.New(rand.NewSource(*seed))
	g := tcmm.ErdosRenyi(rng, *n, *p)
	adj := g.Adjacency()
	got, err := tc.Decide(adj)
	if err != nil {
		return err
	}
	trace := adj.TraceCube()
	fmt.Printf("  random graph: trace(A³)=%d (%d triangles); circuit says trace>=τ: %v (correct: %v)\n",
		trace, trace/6, got, got == (trace >= *tau))
	return nil
}

func cmdTriangles(args []string) error {
	fs := flag.NewFlagSet("triangles", flag.ExitOnError)
	n := fs.Int("n", 16, "vertices (power of 2 for the circuit)")
	p := fs.Float64("p", 0.3, "edge probability (Erdős–Rényi) or intra-community density")
	communities := fs.Int("communities", 0, "planted communities (0 = Erdős–Rényi)")
	cc := fs.Float64("cc", 0.4, "clustering-coefficient query threshold")
	seed := fs.Int64("seed", 1, "random seed")
	fs.Parse(args)

	rng := rand.New(rand.NewSource(*seed))
	var g *tcmm.Graph
	if *communities > 0 {
		g = tcmm.PlantedCommunities(rng, *n, *communities, *p, *p/10)
	} else {
		g = tcmm.ErdosRenyi(rng, *n, *p)
	}
	fmt.Printf("graph: %d vertices %d edges %d wedges %d triangles cc=%.3f\n",
		g.N, g.NumEdges(), g.Wedges(), g.Triangles(), g.ClusteringCoefficient())
	tau := g.TauForClustering(*cc)
	fmt.Printf("query: cc >= %.2f  ⟺  trace(A³) >= %d\n", *cc, tau)

	trace, err := tcmm.NewTrace(*n, tau, tcmm.Options{Alg: tcmm.Strassen()})
	if err != nil {
		return err
	}
	naive, err := tcmm.NewNaiveTriangle(*n, (tau+5)/6)
	if err != nil {
		return err
	}
	adj := g.Adjacency()
	fast, err := trace.Decide(adj)
	if err != nil {
		return err
	}
	slow, err := naive.Decide(adj)
	if err != nil {
		return err
	}
	fmt.Printf("answers: subcubic=%v naive=%v\n", fast, slow)
	fmt.Printf("subcubic: %v\nnaive:    %v\n", trace.Circuit.Stats(), naive.Circuit.Stats())
	return nil
}

func cmdCounts(args []string) error {
	fs := flag.NewFlagSet("counts", flag.ExitOnError)
	algName := fs.String("alg", "strassen", "algorithm")
	L := fs.Int("L", 16, "log_T N")
	bits := fs.Int("bits", 1, "entry bit width")
	fs.Parse(args)

	alg, err := algFlag(*algName)
	if err != nil {
		return err
	}
	p := alg.Params()
	nf := 1.0
	for i := 0; i < *L; i++ {
		nf *= float64(alg.T)
	}
	fmt.Printf("model: alg=%s N=%s^%d=%.3g bits=%d\n", alg.Name, fmt.Sprint(alg.T), *L, nf, *bits)
	fmt.Printf("naive triangle baseline: %.3g gates\n", tcmm.NaiveTriangleGates(nf))
	fmt.Printf("%4s %-26s %14s %14s %10s\n", "d", "schedule", "trace gates", "matmul gates", "exponent")
	for d := 1; d <= 8; d++ {
		sched := tcmm.ConstantDepthSchedule(p.Gamma, *L, d)
		tr := tcmm.EstimateTraceGates(alg, *bits, *L, sched).Total()
		mm := tcmm.EstimateMatMulGates(alg, *bits, *L, sched).Total()
		fmt.Printf("%4d %-26s %14.4g %14.4g %10.4f\n", d, fmt.Sprint(sched), tr, mm, tcmm.TheoremExponent(alg, d))
	}
	ll := tcmm.LogLogSchedule(p.Gamma, *L)
	fmt.Printf("%4s %-26s %14.4g %14.4g %10s\n", "ll",
		fmt.Sprint(ll), tcmm.EstimateTraceGates(alg, *bits, *L, ll).Total(),
		tcmm.EstimateMatMulGates(alg, *bits, *L, ll).Total(), "ω+o(1)")
	return nil
}

func cmdNeuro(args []string) error {
	fs := flag.NewFlagSet("neuro", flag.ExitOnError)
	n := fs.Int("n", 8, "matrix dimension")
	device := fs.String("device", "unlimited", "device profile: truenorth|loihi|unlimited")
	group := fs.Int("group", 0, "fan-in group size (0 = unbounded fan-in)")
	seed := fs.Int64("seed", 1, "random seed")
	fs.Parse(args)

	var dev tcmm.Device
	switch *device {
	case "truenorth":
		dev = tcmm.TrueNorthDevice()
	case "loihi":
		dev = tcmm.LoihiDevice()
	case "unlimited":
		dev = tcmm.UnlimitedDevice()
	default:
		return fmt.Errorf("unknown device %q", *device)
	}

	mc, err := tcmm.NewMatMul(*n, tcmm.Options{Alg: tcmm.Strassen(), GroupSize: *group})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	a := tcmm.RandomBinaryMatrix(rng, *n, *n, 0.5)
	b := tcmm.RandomBinaryMatrix(rng, *n, *n, 0.5)
	in, err := mc.Assign(a, b)
	if err != nil {
		return err
	}
	vals, stats, err := tcmm.Deploy(mc.Circuit, dev, in)
	if err != nil {
		return err
	}
	fmt.Printf("deployed %d-gate matmul circuit on %s\n", mc.Circuit.Size(), dev.Name)
	fmt.Printf("  product correct: %v\n", mc.Decode(vals).Equal(a.Mul(b)))
	fmt.Printf("  timesteps=%d cores=%d spikes=%d energy=%.1f\n",
		stats.Timesteps, stats.Cores, stats.Spikes, stats.Energy)
	fmt.Printf("  traffic: on-core=%d off-core=%d\n", stats.OnCoreEvents, stats.OffCoreEvents)
	return nil
}

func cmdDot(args []string) error {
	fs := flag.NewFlagSet("dot", flag.ExitOnError)
	n := fs.Int("n", 2, "matrix dimension (keep tiny)")
	kind := fs.String("kind", "matmul", "matmul|trace|naive")
	fs.Parse(args)

	var c *tcmm.Circuit
	switch *kind {
	case "matmul":
		mc, err := tcmm.NewMatMul(*n, tcmm.Options{Alg: tcmm.Strassen()})
		if err != nil {
			return err
		}
		c = mc.Circuit
	case "trace":
		tc, err := tcmm.NewTrace(*n, 1, tcmm.Options{Alg: tcmm.Strassen()})
		if err != nil {
			return err
		}
		c = tc.Circuit
	case "naive":
		tc, err := tcmm.NewNaiveTriangle(*n, 1)
		if err != nil {
			return err
		}
		c = tc.Circuit
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	if c.Size() > 5000 {
		return fmt.Errorf("circuit has %d gates; DOT export is for small circuits", c.Size())
	}
	return c.WriteDOT(os.Stdout, *kind)
}
