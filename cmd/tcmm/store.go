package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/store"
	"repro/internal/verify"
)

// shapeFromFlags assembles the cache key the store addresses circuits
// by. Kind strings match core.Op values; an unknown kind surfaces as a
// build error from core.BuildShape.
func shapeFromFlags(kind string, n int, alg string, d, bits int, signed bool, tau int64, shared bool) core.Shape {
	s := core.Shape{
		Op:        core.Op(kind),
		N:         n,
		Alg:       alg,
		Depth:     d,
		EntryBits: bits,
		Signed:    signed,
		SharedMSB: shared,
	}
	if s.Op == core.OpTrace {
		s.Tau = tau
	}
	return s
}

// storeOptions maps a -format flag value onto store.Options.
func storeOptions(format string) (store.Options, error) {
	switch format {
	case "", "tcs2":
		return store.Options{}, nil
	case "tcs1":
		return store.Options{Format: store.FormatVersion}, nil
	default:
		return store.Options{}, fmt.Errorf("unknown format %q (want tcs1 or tcs2)", format)
	}
}

// saveToStore builds the shaped circuit and persists it into the
// content-addressed cache (parallel build; the artifact is identical
// to a sequential one).
func saveToStore(dir string, shape core.Shape, format string) error {
	opts, err := storeOptions(format)
	if err != nil {
		return err
	}
	cache, err := store.OpenWith(dir, opts)
	if err != nil {
		return err
	}
	bt, err := core.BuildShape(shape, -1)
	if err != nil {
		return err
	}
	path, err := cache.Save(bt)
	if err != nil {
		return err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	c := bt.Circuit()
	fmt.Printf("saved %s: %d gates, depth %d, %d bytes -> %s\n",
		shape.Key(), c.Size(), c.Depth(), fi.Size(), path)
	return nil
}

// cmdLoad reloads a circuit from the content-addressed store and
// reports its anatomy; -certify additionally runs the full
// certification suite on the reloaded artifact.
func cmdLoad(args []string) error {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	kind := fs.String("kind", "matmul", "matmul|trace|count")
	n := fs.Int("n", 8, "matrix dimension")
	algName := fs.String("alg", "strassen", "algorithm")
	d := fs.Int("d", 2, "depth parameter")
	bits := fs.Int("bits", 1, "entry bit width")
	signed := fs.Bool("signed", false, "allow negative entries")
	tau := fs.Int64("tau", 6, "trace threshold (trace kind only)")
	shared := fs.Bool("shared", false, "enable the MSB-sharing optimization")
	cacheDir := fs.String("cache-dir", "", "content-addressed store directory (required)")
	certify := fs.Bool("certify", false, "run the certification suite on the reloaded circuit")
	fs.Parse(args)

	if *cacheDir == "" {
		return fmt.Errorf("-cache-dir is required")
	}
	cache, err := store.Open(*cacheDir)
	if err != nil {
		return err
	}
	shape := shapeFromFlags(*kind, *n, *algName, *d, *bits, *signed, *tau, *shared)
	bt, err := cache.Load(shape)
	if err != nil {
		return fmt.Errorf("%w (save it first: tcmm save -cache-dir %s ...)", err, *cacheDir)
	}
	c := bt.Circuit()
	st := c.Stats()
	fmt.Printf("loaded %s from %s\n", shape.Key(), cache.Path(shape))
	fmt.Printf("  gates=%d depth=%d edges=%d maxfanin=%d inputs=%d outputs=%d\n",
		st.Size, st.Depth, st.Edges, st.MaxFanIn, st.Inputs, len(c.Outputs()))
	if *certify {
		cert, err := verify.CertifyBuilt(bt)
		if err != nil {
			return err
		}
		if !cert.OK {
			return fmt.Errorf("reloaded circuit fails certification: %v", cert.Err())
		}
		fmt.Printf("  certification: OK (%d checks)\n", len(cert.Checks))
	}
	return nil
}

// cmdStat summarizes one or more on-disk artifacts from their headers
// alone — shape, dimensions, format generation and (TCS2) root digest —
// without loading, verifying or expanding the circuit.
func cmdStat(args []string) error {
	fs := flag.NewFlagSet("stat", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: tcmm stat <artifact.tcs> [more...]")
	}
	fs.Parse(args)
	if fs.NArg() == 0 {
		fs.Usage()
		return fmt.Errorf("no artifacts given")
	}
	dim := func(v int64) string {
		if v < 0 {
			return "-"
		}
		return fmt.Sprint(v)
	}
	for _, path := range fs.Args() {
		info, err := store.Stat(path)
		if err != nil {
			return err
		}
		fmt.Printf("%s: TCS%d, %d bytes\n", info.Path, info.Format, info.FileSize)
		fmt.Printf("  shape   %s\n", info.ShapeKey)
		fmt.Printf("  gates=%s groups=%s inputs=%s outputs=%s edges(stored)=%s depth=%s\n",
			dim(info.Gates), dim(info.Groups), dim(info.Inputs),
			dim(info.Outputs), dim(info.StoredEdges), dim(info.Depth))
		if info.RootDigest != "" {
			fmt.Printf("  root    sha256:%s (%d integrity segments)\n", info.RootDigest, info.Segments)
		}
	}
	return nil
}
