// Command tcserve runs the request-coalescing evaluation service over
// HTTP — JSON endpoints plus the binary /v1/eval frame protocol, with
// each circuit's dispatch sharded across -shards per-core dispatchers
// (see internal/serve and DESIGN.md "Sharded dispatch and the load
// harness").
//
//	tcserve -addr :8714 -max-batch 64 -linger 200us -cache-dir /var/cache/tc
//
// Endpoints:
//
//	POST /v1/matmul    POST /v1/trace    POST /v1/triangles
//	POST /v1/eval      (binary TCF1 frames, application/x-tcframe)
//	POST /v1/graph     (binary TCG1 frames: per-tenant streaming edge
//	                    updates + triangle screening, internal/stream)
//	GET  /v1/stats     GET  /healthz
//	GET  /debug/vars   GET  /debug/pprof/...
//
// The default -addr honors TCSERVE_PORT (":$TCSERVE_PORT"), the same
// variable tcload and the smoke scripts read.
//
// The process shuts down gracefully on SIGINT/SIGTERM: the listener
// stops accepting, in-flight HTTP requests finish, and every cached
// circuit's dispatcher drains its queued batches before exit.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/internal/store"
	"repro/internal/stream"
)

// defaultAddr derives the default listen address from TCSERVE_PORT so
// the server, tcload and the smoke scripts agree on one variable.
func defaultAddr() string {
	if port := os.Getenv("TCSERVE_PORT"); port != "" {
		return ":" + port
	}
	return ":8714"
}

func main() {
	var (
		addr        = flag.String("addr", defaultAddr(), "listen address (default honors TCSERVE_PORT)")
		maxCircuits = flag.Int("max-circuits", 8, "LRU cache size (built circuits)")
		maxBatch    = flag.Int("max-batch", 64, "max samples coalesced per evaluation")
		linger      = flag.Duration("linger", 200*time.Microsecond, "batching linger after the first request (0 = none)")
		queueDepth  = flag.Int("queue-depth", 256, "per-circuit pending-request bound across stripes (full queues answer 429)")
		shards      = flag.Int("shards", 0, "dispatcher goroutines per circuit (0 = GOMAXPROCS); striped queues + work stealing")
		buildW      = flag.Int("build-workers", -1, "circuit construction workers (-1 = GOMAXPROCS)")
		evalW       = flag.Int("eval-workers", 1, "batch evaluator workers per circuit")
		reqTimeout  = flag.Duration("request-timeout", 30*time.Second, "per-request deadline")
		drainWait   = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown bound")
		cacheDir    = flag.String("cache-dir", "", "content-addressed circuit store; LRU misses warm-start from disk (empty = build-only)")
		cacheFmt    = flag.String("cache-format", "tcs2", "store envelope format: tcs2 (compact, mmap warm-start) or tcs1 (legacy)")
		cacheNoMap  = flag.Bool("cache-no-map", false, "decode artifacts onto the heap instead of mmap (debugging)")
		maxSessions = flag.Int("stream-max-sessions", 1024, "graph-session LRU bound (oldest sessions retire)")
		maxStreamN  = flag.Int("stream-max-n", 64, "largest per-tenant graph accepted on /v1/graph")
	)
	flag.Parse()

	cfg := serve.Config{
		MaxCircuits:    *maxCircuits,
		MaxBatch:       *maxBatch,
		Linger:         *linger,
		QueueDepth:     *queueDepth,
		Shards:         *shards,
		BuildWorkers:   *buildW,
		EvalWorkers:    *evalW,
		RequestTimeout: *reqTimeout,
	}
	if *linger == 0 {
		cfg.Linger = -1 // Config treats 0 as "default"; negative disables
	}
	if *cacheDir != "" {
		opts := store.Options{NoMap: *cacheNoMap}
		switch *cacheFmt {
		case "tcs2":
			// store's default format
		case "tcs1":
			opts.Format = store.FormatVersion
		default:
			fmt.Fprintf(os.Stderr, "tcserve: unknown -cache-format %q (want tcs1 or tcs2)\n", *cacheFmt)
			os.Exit(2)
		}
		cache, err := store.OpenWith(*cacheDir, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tcserve: open cache: %v\n", err)
			os.Exit(1)
		}
		// Mapped artifacts are the server's working set; the cache stays
		// open for the life of the process, so no Close here.
		cfg.Cache = cache
		log.Printf("tcserve: circuit store at %s (%s)", cache.Dir(), *cacheFmt)
	}
	s := serve.New(cfg)
	m := stream.NewManager(stream.Config{
		Server:         s,
		MaxSessions:    *maxSessions,
		MaxN:           *maxStreamN,
		RequestTimeout: *reqTimeout,
	})

	mux := http.NewServeMux()
	mux.Handle("/", stream.Mux(s, m))
	// Diagnostics live beside the API on the same listener. The expvar
	// and pprof packages register on http.DefaultServeMux as an import
	// side effect; mounting them explicitly keeps this mux the only one
	// that serves.
	expvar.Publish("tcserve", expvar.Func(func() any { return s.Snapshot() }))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("tcserve listening on %s (max-batch=%d linger=%v queue-depth=%d shards=%d)",
		*addr, *maxBatch, *linger, *queueDepth, *shards)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("tcserve: %v, draining", sig)
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "tcserve: %v\n", err)
		s.Close()
		os.Exit(1)
	}

	// Two-stage drain: stop the HTTP edge first (in-flight handlers keep
	// their dispatcher replies), then retire the dispatchers.
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("tcserve: shutdown: %v", err)
	}
	m.Close()
	s.Close()
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("tcserve: serve: %v", err)
	}
	log.Printf("tcserve: drained, bye")
}
