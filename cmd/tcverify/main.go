// Command tcverify certifies every circuit constructor in the library:
// it builds each construction, runs the structural verifier and the
// theorem-bound certifier, optionally cross-checks the evaluation
// paths against the math/big oracle, and prints one table row per
// construction. Exit status 1 if any certificate has a violation.
//
// Usage:
//
//	tcverify [-n 4] [-rounds 2] [-no-oracle] [-json]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"text/tabwriter"

	"repro/internal/bilinear"
	"repro/internal/core"
	"repro/internal/verify"
)

// target is one constructor to certify: build returns the circuit's
// certificate, oracle (optional) runs the differential/metamorphic
// cross-checks.
type target struct {
	name   string
	cert   func() (*verify.Certificate, error)
	oracle func(rng *rand.Rand, rounds int) error
}

func targets(n int) ([]target, error) {
	strassen := bilinear.Strassen()
	mm, err := core.BuildMatMul(n, core.Options{Alg: strassen})
	if err != nil {
		return nil, err
	}
	mmSigned, err := core.BuildMatMul(n, core.Options{Alg: strassen, EntryBits: 2, Signed: true})
	if err != nil {
		return nil, err
	}
	mmWino, err := core.BuildMatMul(n, core.Options{Alg: bilinear.Winograd(), EntryBits: 2})
	if err != nil {
		return nil, err
	}
	tr, err := core.BuildTrace(n, 6, core.Options{Alg: strassen})
	if err != nil {
		return nil, err
	}
	cnt, err := core.BuildCount(n, core.Options{Alg: strassen, EntryBits: 2, Signed: true})
	if err != nil {
		return nil, err
	}
	tri, err := core.BuildNaiveTriangle(n+2, 2)
	if err != nil {
		return nil, err
	}
	rect, err := core.BuildRectMatMul(n-1, n, n/2, core.Options{Alg: strassen})
	if err != nil {
		return nil, err
	}
	t41, err := core.BuildTheorem41Trace(n, 4, strassen, 1, 1, false)
	if err != nil {
		return nil, err
	}
	return []target{
		{"matmul/strassen", func() (*verify.Certificate, error) { return verify.CertifyMatMul(mm) },
			func(rng *rand.Rand, r int) error {
				if err := verify.DifferentialMatMul(mm, rng, r); err != nil {
					return err
				}
				return verify.MetamorphicMatMul(mm, rng, r)
			}},
		{"matmul/strassen-signed", func() (*verify.Certificate, error) { return verify.CertifyMatMul(mmSigned) },
			func(rng *rand.Rand, r int) error { return verify.DifferentialMatMul(mmSigned, rng, r) }},
		{"matmul/winograd", func() (*verify.Certificate, error) { return verify.CertifyMatMul(mmWino) },
			func(rng *rand.Rand, r int) error { return verify.DifferentialMatMul(mmWino, rng, r) }},
		{"trace/strassen", func() (*verify.Certificate, error) { return verify.CertifyTrace(tr) },
			func(rng *rand.Rand, r int) error {
				if err := verify.DifferentialTrace(tr, rng, r); err != nil {
					return err
				}
				return verify.MetamorphicTrace(tr, rng, r)
			}},
		{"count/strassen", func() (*verify.Certificate, error) { return verify.CertifyCount(cnt) },
			func(rng *rand.Rand, r int) error {
				if err := verify.DifferentialCount(cnt, rng, r); err != nil {
					return err
				}
				return verify.MetamorphicCount(cnt, rng, r)
			}},
		{"triangle/naive", func() (*verify.Certificate, error) { return verify.CertifyTriangle(tri) }, nil},
		{"rect/strassen", func() (*verify.Certificate, error) { return verify.CertifyRectMatMul(rect) }, nil},
		{"theorem41/grouped", func() (*verify.Certificate, error) { return verify.CertifyTrace(t41) }, nil},
	}, nil
}

func main() {
	n := flag.Int("n", 4, "instance size (power of the algorithm's T)")
	rounds := flag.Int("rounds", 2, "oracle rounds per input family")
	noOracle := flag.Bool("no-oracle", false, "skip differential/metamorphic oracles")
	asJSON := flag.Bool("json", false, "emit full certificates as JSON")
	seed := flag.Int64("seed", 1, "oracle RNG seed")
	flag.Parse()

	tgts, err := targets(*n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcverify:", err)
		os.Exit(1)
	}
	rng := rand.New(rand.NewSource(*seed))
	failed := false

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	if !*asJSON {
		fmt.Fprintln(tw, "CONSTRUCTION\tGATES\tDEPTH\tEDGES\tCHECKS\tORACLE\tVERDICT")
	}
	for _, tg := range tgts {
		cert, err := tg.cert()
		if err != nil {
			fmt.Fprintf(os.Stderr, "tcverify: %s: %v\n", tg.name, err)
			failed = true
			continue
		}
		passed := 0
		for _, ck := range cert.Checks {
			if ck.OK {
				passed++
			}
		}
		oracle := "-"
		if !*noOracle && tg.oracle != nil {
			if err := tg.oracle(rng, *rounds); err != nil {
				oracle = "FAIL"
				failed = true
				fmt.Fprintf(os.Stderr, "tcverify: %s: oracle: %v\n", tg.name, err)
			} else {
				oracle = "ok"
			}
		}
		verdict := "ok"
		if !cert.OK {
			verdict = "FAIL"
			failed = true
			if err := cert.Err(); err != nil {
				fmt.Fprintf(os.Stderr, "tcverify: %s: %v\n", tg.name, err)
			}
		}
		if *asJSON {
			data, err := cert.JSON()
			if err != nil {
				fmt.Fprintln(os.Stderr, "tcverify:", err)
				os.Exit(1)
			}
			os.Stdout.Write(append(data, '\n'))
			continue
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d/%d\t%s\t%s\n",
			tg.name, cert.Stats.Size, cert.Stats.Depth, cert.Stats.Edges,
			passed, len(cert.Checks), oracle, verdict)
	}
	if !*asJSON {
		tw.Flush()
	}
	if failed {
		os.Exit(1)
	}
}
