package tcmm_test

import (
	"fmt"

	tcmm "repro"
)

// Build a threshold circuit for 4x4 binary matrix multiplication and
// run it.
func ExampleNewMatMul() {
	mc, err := tcmm.NewMatMul(4, tcmm.Options{Alg: tcmm.Strassen()})
	if err != nil {
		panic(err)
	}
	a := tcmm.MatrixFromRows([][]int64{
		{1, 0, 1, 0},
		{0, 1, 0, 1},
		{1, 1, 0, 0},
		{0, 0, 1, 1},
	})
	b := tcmm.MatrixFromRows([][]int64{
		{1, 1, 0, 0},
		{0, 1, 1, 0},
		{0, 0, 1, 1},
		{1, 0, 0, 1},
	})
	c, err := mc.Multiply(a, b)
	if err != nil {
		panic(err)
	}
	fmt.Println(c.Equal(a.Mul(b)))
	fmt.Println(mc.Circuit.Depth() <= mc.DepthBound())
	// Output:
	// true
	// true
}

// Decide whether a graph has at least two triangles via the trace
// circuit (trace(A³) = 6·#triangles).
func ExampleNewTrace() {
	k4 := tcmm.CompleteGraph(4) // 4 triangles
	tc, err := tcmm.NewTrace(4, 6*2, tcmm.Options{Alg: tcmm.Strassen()})
	if err != nil {
		panic(err)
	}
	atLeastTwo, err := tc.Decide(k4.Adjacency())
	if err != nil {
		panic(err)
	}
	fmt.Println(atLeastTwo)
	// Output:
	// true
}

// Inspect the circuit constants of Strassen's algorithm (Section 4.3 of
// the paper).
func ExampleAlgorithm_Params() {
	p := tcmm.Strassen().Params()
	fmt.Printf("T=%d r=%d s=%d\n", p.T, p.R, p.S)
	fmt.Printf("gamma=%.3f c=%.3f\n", p.Gamma, p.CConst)
	// Output:
	// T=2 r=7 s=12
	// gamma=0.491 c=1.585
}

// Count triangles exactly with the counting extension.
func ExampleNewCount() {
	cc, err := tcmm.NewCount(4, tcmm.Options{Alg: tcmm.Strassen()})
	if err != nil {
		panic(err)
	}
	triangles, err := cc.Triangles(tcmm.CompleteGraph(4).Adjacency())
	if err != nil {
		panic(err)
	}
	fmt.Println(triangles)
	// Output:
	// 4
}

// The paper's headline exponent: ω + c·γ^d dips below 3 once d > 3.
func ExampleTheoremExponent() {
	alg := tcmm.Strassen()
	fmt.Printf("d=1: %.3f\n", tcmm.TheoremExponent(alg, 1))
	fmt.Printf("d=4: %.3f\n", tcmm.TheoremExponent(alg, 4))
	// Output:
	// d=1: 3.585
	// d=4: 2.899
}

// Constant-depth schedules select a geometric set of tree levels.
func ExampleConstantDepthSchedule() {
	gamma := tcmm.Strassen().Params().Gamma
	fmt.Println(tcmm.ConstantDepthSchedule(gamma, 16, 3))
	// Output:
	// [0 11 15 16]
}
