// The algorithm toolkit: everything this library can do with bilinear
// fast matrix multiplication algorithms as algebraic objects —
// verification, sparsity analysis, tensor rotations, solver-backed
// completion of partial decompositions, composition, and JSON
// interchange. Every algorithm that survives these transformations is
// usable directly in the circuit builders.
//
//	go run ./examples/algorithms
package main

import (
	"fmt"
	"log"
	"math/rand"

	tcmm "repro"
)

func main() {
	// 1. The built-in registry, with the Section 4.3 circuit constants.
	fmt.Println("built-in algorithms:")
	for name, alg := range tcmm.Algorithms() {
		p := alg.Params()
		fmt.Printf("  %-10s T=%d r=%-3d ω=%.3f s=(%d,%d,%d) γ=%.3f\n",
			name, p.T, p.R, p.Omega, p.SA, p.SB, p.SC, p.Gamma)
	}

	// 2. Tensor rotations: the matrix multiplication tensor's cyclic
	// symmetry turns one verified algorithm into two more, with the
	// sparsity triple rotated.
	r1, r2, err := tcmm.AlgorithmRotations(tcmm.Strassen())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nStrassen under the tensor's cyclic symmetry:")
	for _, alg := range []*tcmm.Algorithm{tcmm.Strassen(), r1, r2} {
		p := alg.Params()
		fmt.Printf("  %-16s s=(%d,%d,%d), verifies: %v\n",
			alg.Name, p.SA, p.SB, p.SC, alg.Verify() == nil)
	}

	// 3. Completion: erase Strassen's output combinations and recover
	// them from the M expressions by exact rational solving.
	d := tcmm.AlgorithmToTensor(tcmm.Strassen())
	d.W = nil
	completed, err := tcmm.CompleteDecomposition(d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncompletion: recovered Strassen's C-combinations from its M expressions\n")
	fmt.Printf("  completed decomposition verifies: %v (rank %d)\n",
		completed.Verify() == nil, completed.Rank())

	// ... and the solver refutes impossible ranks: 2x2 multiplication
	// has no rank-6 decomposition (Strassen's 7 is optimal).
	d6 := tcmm.AlgorithmToTensor(tcmm.Strassen())
	d6.U = d6.U[:6]
	d6.V = d6.V[:6]
	d6.R = 6
	d6.W = nil
	_, err = tcmm.CompleteDecomposition(d6)
	fmt.Printf("  rank-6 completion of ⟨2,2,2⟩ refused: %v\n", err != nil)

	// 4. Composition: Strassen⊗Winograd is a T=4, r=49 algorithm.
	comp := tcmm.ComposeAlgorithms(tcmm.Strassen(), tcmm.Winograd())
	fmt.Printf("\ncomposition %s: T=%d r=%d verifies: %v\n",
		comp.Name, comp.T, comp.R, comp.Verify() == nil)

	// 5. Interchange: rotated algorithms round-trip through JSON and
	// plug straight into a circuit.
	data, err := tcmm.EncodeAlgorithm(r1)
	if err != nil {
		log.Fatal(err)
	}
	loaded, err := tcmm.DecodeAlgorithm(data)
	if err != nil {
		log.Fatal(err)
	}
	mc, err := tcmm.NewMatMul(4, tcmm.Options{Alg: loaded})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	a := tcmm.RandomBinaryMatrix(rng, 4, 4, 0.5)
	b := tcmm.RandomBinaryMatrix(rng, 4, 4, 0.5)
	got, err := mc.Multiply(a, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncircuit built from the JSON round-tripped rotation multiplies correctly: %v\n",
		got.Equal(a.Mul(b)))
}
