// Convolution-as-GEMM through threshold circuits — the paper's
// deep-learning motivation (Section 5): a convolutional layer is a
// matrix multiplication of the im2col patch matrix with the kernel
// matrix; running it as a threshold circuit keeps the work "on-chip" on
// a neuromorphic device instead of off-loading to a GPU. The example
// also demonstrates the paper's fan-in remedy: when the hardware
// supports only fan-in x, split the patch rows into independent pieces
// that run in parallel at the same depth.
//
//	go run ./examples/cnnconv
package main

import (
	"fmt"
	"log"
	"math/rand"

	tcmm "repro"
)

func main() {
	rng := rand.New(rand.NewSource(3))

	// An 8x8 single-channel image with 2-bit pixels and two 2x2 edge
	// detector kernels, stride 2: P = 16 patches, Q = 4, K = 2.
	im := tcmm.NewImage(8, 8, 1)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			im.Set(y, x, 0, rng.Int63n(4))
		}
	}
	horiz := tcmm.NewKernel(2, 1)
	horiz.Set(0, 0, 0, 1)
	horiz.Set(0, 1, 0, 1)
	horiz.Set(1, 0, 0, -1)
	horiz.Set(1, 1, 0, -1)
	vert := tcmm.NewKernel(2, 1)
	vert.Set(0, 0, 0, 1)
	vert.Set(1, 0, 0, 1)
	vert.Set(0, 1, 0, -1)
	vert.Set(1, 1, 0, -1)
	kernels := []*tcmm.Kernel{horiz, vert}

	direct, err := tcmm.ConvDirect(im, kernels, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("layer: %d patches x %d kernels\n", direct.Rows, direct.Cols)

	// One circuit over the whole patch matrix.
	whole, err := tcmm.ConvViaCircuit(im, kernels, 2, tcmm.Options{Alg: tcmm.Strassen()}, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwhole-layer circuit: scores correct=%v\n", whole.Scores.Equal(direct))
	fmt.Printf("  gates=%d depth=%d max fan-in=%d\n", whole.Gates, whole.Depth, whole.MaxFanIn)

	// Partitioned: at most 4 patch rows per piece — four independent
	// circuits that a fan-in-limited architecture can run in parallel.
	parts, err := tcmm.ConvViaCircuit(im, kernels, 2, tcmm.Options{Alg: tcmm.Strassen()}, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npartitioned (<=4 rows/piece): scores correct=%v, %d pieces\n",
		parts.Scores.Equal(direct), len(parts.Stats))
	fmt.Printf("  total gates=%d wall depth=%d max fan-in=%d\n",
		parts.Gates, parts.Depth, parts.MaxFanIn)
	for i, st := range parts.Stats {
		fmt.Printf("  piece %d: rows=%d gates=%d depth=%d fan-in=%d\n",
			i, st.Rows, st.Gates, st.Depth, st.MaxFanIn)
	}

	fmt.Printf("\nfan-in reduction: %d -> %d at equal wall-clock depth\n",
		whole.MaxFanIn, parts.MaxFanIn)

	// Feature map for the horizontal kernel (patch scores reshaped to
	// the 4x4 output grid).
	fmt.Println("\nhorizontal-edge feature map:")
	for gy := 0; gy < 4; gy++ {
		for gx := 0; gx < 4; gx++ {
			fmt.Printf("%4d", parts.Scores.At(gy*4+gx, 0))
		}
		fmt.Println()
	}

	// A two-layer spiking network: scores threshold into binary
	// activations (one threshold gate per unit — the natural
	// nonlinearity in this model), which feed a second convolution.
	pool := tcmm.NewKernel(2, 2)
	for c := 0; c < 2; c++ {
		for y := 0; y < 2; y++ {
			for x := 0; x < 2; x++ {
				pool.Set(y, x, c, 1)
			}
		}
	}
	net := &tcmm.ConvNetwork{Layers: []tcmm.ConvLayer{
		{Kernels: kernels, Stride: 2, Threshold: 2},
		{Kernels: []*tcmm.Kernel{pool}, Stride: 2, Threshold: 3},
	}}
	res, err := net.Forward(im, tcmm.Options{Alg: tcmm.Strassen()}, 4)
	if err != nil {
		log.Fatal(err)
	}
	ref, err := net.ForwardDirect(im)
	if err != nil {
		log.Fatal(err)
	}
	match := true
	for i := range ref.Data {
		if ref.Data[i] != res.Output.Data[i] {
			match = false
		}
	}
	fmt.Printf("\ntwo-layer spiking network: output %dx%dx%d, correct=%v\n",
		res.Output.H, res.Output.W, res.Output.C, match)
	for i, lr := range res.Layers {
		fmt.Printf("  layer %d: gates=%d depth=%d spikes=%d\n", i, lr.Gates, lr.Depth, lr.Spikes)
	}
	fmt.Printf("  network total: gates=%d depth=%d\n", res.Gates, res.Depth)
}
