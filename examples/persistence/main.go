// Circuit persistence: building a large threshold circuit costs far
// more than evaluating it, so production deployments build once and
// cache the compiled circuit on disk. This example builds an 8x8 matmul
// circuit, saves it with the versioned binary codec, reloads it, and
// verifies the loaded copy computes the same products.
//
//	go run ./examples/persistence
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	tcmm "repro"
)

func main() {
	start := time.Now()
	mc, err := tcmm.NewMatMul(8, tcmm.Options{Alg: tcmm.Strassen(), EntryBits: 2})
	if err != nil {
		log.Fatal(err)
	}
	buildTime := time.Since(start)
	fmt.Printf("built: %d gates, depth %d in %v\n",
		mc.Circuit.Size(), mc.Circuit.Depth(), buildTime.Round(time.Millisecond))

	path := filepath.Join(os.TempDir(), "tcmm-matmul8.bin")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	n, err := mc.Circuit.WriteTo(f)
	if err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved %d bytes to %s\n", n, path)

	f, err = os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	start = time.Now()
	loaded, err := tcmm.ReadCircuit(f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reloaded (with full structural validation) in %v\n",
		time.Since(start).Round(time.Millisecond))

	// The loaded circuit is wire-for-wire identical, so the original
	// builder's encode/decode maps still apply.
	rng := rand.New(rand.NewSource(9))
	a := tcmm.RandomMatrix(rng, 8, 8, 0, 3)
	b := tcmm.RandomMatrix(rng, 8, 8, 0, 3)
	in, err := mc.Assign(a, b)
	if err != nil {
		log.Fatal(err)
	}
	vals := loaded.EvalParallel(in, 0)
	fmt.Printf("loaded circuit multiplies correctly: %v\n",
		mc.Decode(vals).Equal(a.Mul(b)))

	// Dead-gate audit: the core constructions carry no unused gates.
	_, removed := loaded.Prune()
	fmt.Printf("dead gates: %d of %d\n", removed, loaded.Size())

	if err := os.Remove(path); err != nil {
		log.Fatal(err)
	}
}
