// Quickstart: build a threshold circuit that multiplies two 8x8 integer
// matrices (Theorem 4.9), run it, and inspect its complexity measures.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	tcmm "repro"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// Strassen's algorithm (Figure 1 of the paper) and its circuit
	// constants: sparsity s = 12, γ ≈ 0.491, c ≈ 1.585.
	alg := tcmm.Strassen()
	p := alg.Params()
	fmt.Printf("algorithm %s: T=%d r=%d ω=%.3f s=%d γ=%.3f c=%.3f\n",
		alg.Name, p.T, p.R, p.Omega, p.S, p.Gamma, p.CConst)

	// Build the matmul circuit for 8x8 matrices with 3-bit signed
	// entries, using the constant-depth schedule for d = 2.
	mc, err := tcmm.NewMatMul(8, tcmm.Options{
		Alg:       alg,
		Depth:     2,
		EntryBits: 3,
		Signed:    true,
	})
	if err != nil {
		log.Fatal(err)
	}
	st := mc.Circuit.Stats()
	fmt.Printf("circuit: %d gates, depth %d (bound %d), %d edges, max fan-in %d\n",
		st.Size, st.Depth, mc.DepthBound(), st.Edges, st.MaxFanIn)
	fmt.Printf("schedule (tree levels materialized): %v\n", mc.Schedule)

	// Multiply two random matrices through the circuit and check
	// against the exact product.
	a := tcmm.RandomMatrix(rng, 8, 8, -7, 7)
	b := tcmm.RandomMatrix(rng, 8, 8, -7, 7)
	got, err := mc.Multiply(a, b)
	if err != nil {
		log.Fatal(err)
	}
	want := a.Mul(b)
	fmt.Printf("circuit product matches exact product: %v\n", got.Equal(want))
	fmt.Printf("C[0] row: %v\n", got.Data[:8])

	// The same circuit is reusable for any input pair of this shape.
	a2 := tcmm.RandomMatrix(rng, 8, 8, -7, 7)
	got2, err := mc.Multiply(a2, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("second multiply matches: %v\n", got2.Equal(a2.Mul(b)))
}
