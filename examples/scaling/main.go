// Scaling study through the analytic gate-count model: how the
// constant-depth circuits' cost grows with N for each depth parameter
// d, where the theorem exponent ω + c·γ^d crosses below 3, and how the
// level schedules compare — the quantitative heart of the paper,
// evaluated at sizes no circuit could be materialized at.
//
//	go run ./examples/scaling
package main

import (
	"fmt"
	"math"

	tcmm "repro"
)

func main() {
	alg := tcmm.Strassen()
	p := alg.Params()

	fmt.Println("Theorem 4.5/4.9 gate exponents ω + c·γ^d (Strassen: ω≈2.807):")
	for d := 1; d <= 8; d++ {
		e := tcmm.TheoremExponent(alg, d)
		marker := ""
		if e < 3 {
			marker = "   <- subcubic"
		}
		fmt.Printf("  d=%d: %.4f%s\n", d, e, marker)
	}

	fmt.Println("\nModeled trace-circuit gates vs the naive C(N,3)+1 baseline (b=1):")
	fmt.Printf("%8s %14s %14s %14s %14s\n", "N", "naive", "d=2", "d=5", "loglog")
	for _, L := range []int{8, 12, 16, 20, 24} {
		n := math.Pow(2, float64(L))
		naive := tcmm.NaiveTriangleGates(n)
		d2 := tcmm.EstimateTraceGates(alg, 1, L, tcmm.ConstantDepthSchedule(p.Gamma, L, 2)).Total()
		d5 := tcmm.EstimateTraceGates(alg, 1, L, tcmm.ConstantDepthSchedule(p.Gamma, L, 5)).Total()
		ll := tcmm.EstimateTraceGates(alg, 1, L, tcmm.LogLogSchedule(p.Gamma, L)).Total()
		fmt.Printf("%8.0g %14.3g %14.3g %14.3g %14.3g\n", n, naive, d2, d5, ll)
	}

	fmt.Println("\nSchedule ablation at N = 2^20, equal transition count:")
	const L = 20
	geo := tcmm.ConstantDepthSchedule(p.Gamma, L, 4)
	uni := tcmm.UniformSchedule(L, geo.Transitions())
	dir := tcmm.DirectSchedule(L)
	fmt.Printf("  geometric %v : %.3g gates\n", geo, tcmm.EstimateTraceGates(alg, 1, L, geo).Total())
	fmt.Printf("  uniform   %v : %.3g gates\n", uni, tcmm.EstimateTraceGates(alg, 1, L, uni).Total())
	fmt.Printf("  direct    %v : %.3g gates\n", dir, tcmm.EstimateTraceGates(alg, 1, L, dir).Total())

	fmt.Println("\nSparsity matters more than addition count (Winograd vs Strassen, d=4, N=2^20):")
	for _, a := range []*tcmm.Algorithm{tcmm.Strassen(), tcmm.Winograd()} {
		ap := a.Params()
		sched := tcmm.ConstantDepthSchedule(ap.Gamma, L, 4)
		fmt.Printf("  %-9s s=%2d γ=%.3f : %.3g gates\n",
			a.Name, ap.S, ap.Gamma, tcmm.EstimateTraceGates(a, 1, L, sched).Total())
	}
}
