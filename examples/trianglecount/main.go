// Triangle counting on a synthetic social network (Section 5 of the
// paper): generate a community-structured graph, pick the threshold τ
// from the wedge count as the paper prescribes, and answer the
// clustering-coefficient query with both the naive Θ(N³) depth-2
// circuit and the subcubic trace circuit, comparing their resource
// profiles and energy.
//
//	go run ./examples/trianglecount
package main

import (
	"fmt"
	"log"
	"math/rand"

	tcmm "repro"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// A 16-vertex graph with 4 planted communities: dense inside,
	// sparse across — the regime where clustering coefficients signal
	// community structure (Orman, Labatut, Cherifi).
	g := tcmm.PlantedCommunities(rng, 16, 4, 0.85, 0.05)
	fmt.Printf("graph: %d vertices, %d edges, %d wedges, %d triangles\n",
		g.N, g.NumEdges(), g.Wedges(), g.Triangles())
	fmt.Printf("global clustering coefficient: %.3f\n", g.ClusteringCoefficient())

	// "Does the clustering coefficient reach 0.4?" — scale the wedge
	// count D into a trace threshold τ = 6·ceil(0.4·D/3).
	const targetCC = 0.4
	tau := g.TauForClustering(targetCC)
	fmt.Printf("τ for cc >= %.1f: trace(A³) >= %d\n", targetCC, tau)

	// Subcubic circuit (Theorem 4.5).
	trace, err := tcmm.NewTrace(16, tau, tcmm.Options{Alg: tcmm.Strassen()})
	if err != nil {
		log.Fatal(err)
	}
	adj := g.Adjacency()
	fastAns, err := trace.Decide(adj)
	if err != nil {
		log.Fatal(err)
	}

	// Naive baseline: the depth-2, C(N,3)+1-gate circuit from the
	// paper's introduction, thresholded at the triangle count τ/6.
	naive, err := tcmm.NewNaiveTriangle(16, (tau+5)/6)
	if err != nil {
		log.Fatal(err)
	}
	naiveAns, err := naive.Decide(adj)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nquery answers: subcubic=%v naive=%v (must agree)\n", fastAns, naiveAns)

	// Resource comparison. At N=16 the naive circuit is smaller — the
	// subcubic construction wins asymptotically (see cmd/tcbench e10
	// for the model projection) — but the depth/edges/energy profile of
	// both is already measurable here.
	fs := trace.Circuit.Stats()
	ns := naive.Circuit.Stats()
	fmt.Printf("\n%-10s %10s %6s %12s %10s\n", "circuit", "gates", "depth", "edges", "energy")
	for _, row := range []struct {
		name string
		st   tcmm.CircuitStats
		c    *tcmm.Circuit
		in   func() []bool
	}{
		{"subcubic", fs, trace.Circuit, func() []bool { in, _ := trace.Assign(adj); return in }},
		{"naive", ns, naive.Circuit, func() []bool { in, _ := naive.Assign(adj); return in }},
	} {
		vals := row.c.Eval(row.in())
		fmt.Printf("%-10s %10d %6d %12d %10d\n",
			row.name, row.st.Size, row.st.Depth, row.st.Edges, row.c.Energy(vals))
	}

	// Deploy the subcubic circuit on a simulated neuromorphic device.
	in, err := trace.Assign(adj)
	if err != nil {
		log.Fatal(err)
	}
	_, stats, err := tcmm.Deploy(trace.Circuit, tcmm.UnlimitedDevice(), in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nneuromorphic deployment: %d timesteps, %d cores, %d spikes, %.1f energy units\n",
		stats.Timesteps, stats.Cores, stats.Spikes, stats.Energy)
	fmt.Printf("spike traffic: %d on-core, %d off-core\n", stats.OnCoreEvents, stats.OffCoreEvents)

	// Screening many graphs against the same query is the batch
	// engine's home turf: 64 samples ride in each machine word, so one
	// circuit walk answers the whole cohort (see EXPERIMENTS.md E23).
	const cohort = 64
	adjs := make([]*tcmm.Matrix, cohort)
	for i := range adjs {
		adjs[i] = tcmm.PlantedCommunities(rng, 16, 4, 0.85, 0.05).Adjacency()
	}
	answers, err := trace.DecideBatch(adjs)
	if err != nil {
		log.Fatal(err)
	}
	energies, err := trace.EnergyBatch(adjs)
	if err != nil {
		log.Fatal(err)
	}
	pass := 0
	var minE, maxE, sumE int64
	minE = energies[0]
	for i, ok := range answers {
		if ok {
			pass++
		}
		if energies[i] < minE {
			minE = energies[i]
		}
		if energies[i] > maxE {
			maxE = energies[i]
		}
		sumE += energies[i]
	}
	fmt.Printf("\nbatched screening of %d random graphs (one bit-sliced pass):\n", cohort)
	fmt.Printf("  cc >= %.1f on %d/%d graphs; firing energy min/avg/max = %d/%d/%d gates\n",
		targetCC, pass, cohort, minE, sumE/cohort, maxE)
}
