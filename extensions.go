package tcmm

import (
	"io"
	"math/rand"

	"repro/internal/arith"
	"repro/internal/bilinear"
	"repro/internal/circuit"
	"repro/internal/conv"
	"repro/internal/core"
	"repro/internal/counting"
	"repro/internal/neuro"
	"repro/internal/pram"
	"repro/internal/sparse"
	"repro/internal/tensor"
)

// This file exposes the library's extensions beyond the paper's literal
// statements: the exact-count circuit, the Theorem 4.1 construction,
// circuit persistence and pruning, and placement strategies for the
// device simulator.

// CountCircuit computes trace(A³)/2 exactly in binary — the counting
// extension of the paper's decision circuit (depth 2t+3): one circuit
// answers every τ query and yields exact triangle counts.
type CountCircuit = core.CountCircuit

// NewCount builds the exact-trace circuit.
func NewCount(n int, opts Options) (*CountCircuit, error) { return core.BuildCount(n, opts) }

// NewTheorem41Trace builds the paper's warm-up Theorem 4.1 trace
// circuit: direct leaf computation with depth-d staged adders
// (Õ(d·N^{ω+1/d}) gates).
func NewTheorem41Trace(n int, tau int64, alg *Algorithm, d, entryBits int, signed bool) (*TraceCircuit, error) {
	return core.BuildTheorem41Trace(n, tau, alg, d, entryBits, signed)
}

// NewTheorem41MatMul builds the Theorem 4.1 matmul circuit.
func NewTheorem41MatMul(n int, alg *Algorithm, d, entryBits int, signed bool) (*MatMulCircuit, error) {
	return core.BuildTheorem41MatMul(n, alg, d, entryBits, signed)
}

// ReadCircuit deserializes a circuit written with Circuit.WriteTo,
// fully validating its structural invariants.
func ReadCircuit(r io.Reader) (*Circuit, error) { return circuit.Read(r) }

// Placement maps circuit gates to device cores.
type Placement = neuro.Placement

// PlaceLevelOrder packs gates onto cores in level order (the simple
// baseline placement).
func PlaceLevelOrder(c *Circuit, d Device) (*Placement, error) { return neuro.Place(c, d) }

// PlaceLocality places gates by consumer affinity, minimizing off-core
// spike traffic.
func PlaceLocality(c *Circuit, d Device) (*Placement, error) { return neuro.PlaceLocality(c, d) }

// RunOnDevice executes one inference under an explicit placement.
func RunOnDevice(c *Circuit, d Device, p *Placement, inputs []bool) ([]bool, DeviceStats, error) {
	return neuro.Run(c, d, p, inputs)
}

// MeshStats extends DeviceStats with 2D-mesh Manhattan-distance traffic
// accounting (cores on a ⌈√C⌉² grid, per-hop energy).
type MeshStats = neuro.MeshStats

// RunOnMesh executes one inference with mesh-distance accounting.
func RunOnMesh(c *Circuit, d Device, p *Placement, inputs []bool) ([]bool, MeshStats, error) {
	return neuro.RunMesh(c, d, p, inputs)
}

// Theorem41Options derives the Options used by the Theorem 4.1 builders
// (Direct schedule + staged adders), exposed for composition.
func Theorem41Options(alg *bilinear.Algorithm, n, d, entryBits int, signed bool) (Options, error) {
	return core.Theorem41Options(alg, n, d, entryBits, signed)
}

// PRAMExecutor is the conventional parallel (fork-join) baseline the
// paper compares its circuits against: O(log N)-span execution of a
// fast matrix multiplication with exact work/span accounting.
type PRAMExecutor = pram.Executor

// PRAMMeasures carries PRAM work (total scalar ops) and span (critical
// path) for one execution.
type PRAMMeasures = pram.Measures

// NewPRAMExecutor returns a parallel executor with the given worker
// bound (<= 0: unbounded fork-join) and recursion cutoff.
func NewPRAMExecutor(alg *Algorithm, workers, cutoff int) *PRAMExecutor {
	return pram.NewExecutor(alg, workers, cutoff)
}

// PRAMSpanBound returns the analytic critical-path length of a full
// recursion on N = T^L (for Strassen: 1 + 3·log2 N).
func PRAMSpanBound(alg *Algorithm, n int) int64 { return pram.SpanBound(alg, n) }

// TensorDecomposition is a rank decomposition of the matrix
// multiplication tensor ⟨T,T,T⟩ in trace coordinates — the "tensor
// perspective" of fast matrix multiplication the paper points to.
type TensorDecomposition = tensor.Decomposition

// AlgorithmToTensor converts a bilinear algorithm to its tensor
// decomposition.
func AlgorithmToTensor(alg *Algorithm) *TensorDecomposition { return tensor.FromAlgorithm(alg) }

// CompleteDecomposition fills in the single nil factor of a partial
// rank decomposition by exact rational linear solving and verifies the
// result — e.g. recover a fast algorithm's C-combinations from its M
// expressions. It also refutes impossible completions (the rank of
// ⟨2,2,2⟩ being 7 falls out as a corollary).
func CompleteDecomposition(d *TensorDecomposition) (*TensorDecomposition, error) {
	return tensor.Complete(d)
}

// AlgorithmRotations returns the two cyclic rotations of an algorithm
// under the matrix multiplication tensor's symmetry: automatically
// correct new algorithms with cyclically-shifted sparsity profiles
// (s_A, s_B, s_C).
func AlgorithmRotations(alg *Algorithm) (*Algorithm, *Algorithm, error) {
	return tensor.Rotations(alg)
}

// ConvLayer is one convolution + spiking-activation stage: kernel
// scores thresholded into binary activations (a linear threshold
// function per unit, so whole networks live in the circuit model).
type ConvLayer = conv.Layer

// ConvNetwork is a feed-forward stack of spiking convolution layers
// executed through threshold matmul circuits.
type ConvNetwork = conv.Network

// ConvNetworkResult aggregates a network forward pass (per-layer
// scores, activations, gates, depth, spikes).
type ConvNetworkResult = conv.NetworkResult

// FusedConvNetwork is an entire spiking convolution network compiled
// into one threshold circuit (ConvNetwork.BuildFused): image bits in,
// final activation bits out, fixed depth end to end.
type FusedConvNetwork = conv.FusedNetwork

// SparseGraph is a CSR graph for social-network-scale triangle and
// clustering analysis (10^5+ vertices) — the conventional baseline at
// sizes the paper concedes circuits cannot reach yet.
type SparseGraph = sparse.Graph

// SparseFromEdges builds a CSR graph from an edge list.
func SparseFromEdges(n int, edges [][2]int) (*SparseGraph, error) {
	return sparse.FromEdges(n, edges)
}

// SparseErdosRenyi samples G(n, p) in expected O(p·n²) time via
// geometric skipping, suitable for very sparse large graphs.
func SparseErdosRenyi(rng *rand.Rand, n int, p float64) *SparseGraph {
	return sparse.ErdosRenyi(rng, n, p)
}

// SparseFromGraph converts a dense Graph to CSR form.
func SparseFromGraph(g *Graph) *SparseGraph { return sparse.FromDense(g) }

// RectMatMulCircuit multiplies rectangular P x Q by Q x K matrices
// through a padded square circuit — the shape the convolutional
// application needs (Section 5).
type RectMatMulCircuit = core.RectMatMulCircuit

// NewRectMatMul builds the rectangular product circuit.
func NewRectMatMul(p, q, k int, opts Options) (*RectMatMulCircuit, error) {
	return core.BuildRectMatMul(p, q, k, opts)
}

// NewParity builds the classic TC0 parity circuit on n inputs (the
// single marked output is the parity bit). groupSize <= 1 gives the
// flat depth-2 block; 2 <= groupSize < n trades depth for per-gate
// fan-in and near-linear wiring, as in the sublinear constructions the
// paper cites.
func NewParity(n, groupSize int) *Circuit {
	b := circuit.NewBuilder(n)
	ws := make([]circuit.Wire, n)
	for i := range ws {
		ws[i] = b.Input(i)
	}
	b.MarkOutput(arith.Parity(b, ws, groupSize))
	return b.Build()
}

// OptimalTraceSchedule exhaustively searches all t-transition level
// schedules and returns the model-optimal one with its cost — the
// benchmark Lemma 4.3's closed-form geometric rule is judged against.
func OptimalTraceSchedule(alg *Algorithm, entryBits, height, t int) (Schedule, float64) {
	return counting.OptimalTraceSchedule(alg, entryBits, height, t)
}
