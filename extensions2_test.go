package tcmm_test

import (
	"math/rand"
	"testing"

	tcmm "repro"
)

func TestFacadeRectMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	rc, err := tcmm.NewRectMatMul(3, 5, 2, tcmm.Options{Alg: tcmm.Strassen(), EntryBits: 2})
	if err != nil {
		t.Fatal(err)
	}
	a := tcmm.RandomMatrix(rng, 3, 5, 0, 3)
	b := tcmm.RandomMatrix(rng, 5, 2, 0, 3)
	got, err := rc.Multiply(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(a.Mul(b)) {
		t.Error("rectangular facade product wrong")
	}
}

func TestFacadeParity(t *testing.T) {
	for _, g := range []int{0, 4} {
		c := tcmm.NewParity(9, g)
		in := make([]bool, 9)
		in[0], in[3], in[7] = true, true, true // odd
		if !c.OutputValues(c.Eval(in))[0] {
			t.Errorf("g=%d: parity of 3 ones should be 1", g)
		}
		in[7] = false // even
		if c.OutputValues(c.Eval(in))[0] {
			t.Errorf("g=%d: parity of 2 ones should be 0", g)
		}
	}
}

func TestFacadeMesh(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	mc, err := tcmm.NewMatMul(4, tcmm.Options{Alg: tcmm.Strassen()})
	if err != nil {
		t.Fatal(err)
	}
	a := tcmm.RandomBinaryMatrix(rng, 4, 4, 0.5)
	b := tcmm.RandomBinaryMatrix(rng, 4, 4, 0.5)
	in, err := mc.Assign(a, b)
	if err != nil {
		t.Fatal(err)
	}
	dev := tcmm.Device{Name: "mesh-test", NeuronsPerCore: 256, EnergyPerSpike: 1, EnergyPerHop: 0.5}
	p, err := tcmm.PlaceLocality(mc.Circuit, dev)
	if err != nil {
		t.Fatal(err)
	}
	vals, ms, err := tcmm.RunOnMesh(mc.Circuit, dev, p, in)
	if err != nil {
		t.Fatal(err)
	}
	if !mc.Decode(vals).Equal(a.Mul(b)) {
		t.Error("mesh run changed product")
	}
	if ms.Side < 1 || ms.TotalHops < ms.OffCoreEvents {
		t.Errorf("mesh stats implausible: %+v", ms)
	}
}

func TestFacadeSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	dense := tcmm.ErdosRenyi(rng, 30, 0.3)
	sg := tcmm.SparseFromGraph(dense)
	if sg.Triangles() != dense.Triangles() {
		t.Error("sparse/dense disagreement through facade")
	}
	g2 := tcmm.SparseErdosRenyi(rng, 1000, 0.01)
	if g2.NumEdges() == 0 {
		t.Error("sparse generator produced no edges")
	}
	eg, err := tcmm.SparseFromEdges(3, [][2]int{{0, 1}, {1, 2}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if eg.Triangles() != 1 {
		t.Error("triangle not counted")
	}
}

func TestFacadeBandwidthCongestion(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	mc, err := tcmm.NewMatMul(4, tcmm.Options{Alg: tcmm.Strassen()})
	if err != nil {
		t.Fatal(err)
	}
	a := tcmm.RandomBinaryMatrix(rng, 4, 4, 0.5)
	b := tcmm.RandomBinaryMatrix(rng, 4, 4, 0.5)
	in, err := mc.Assign(a, b)
	if err != nil {
		t.Fatal(err)
	}
	dev := tcmm.LoihiDevice()
	dev.LinkBandwidth = 100
	_, stats, err := tcmm.Deploy(mc.Circuit, dev, in)
	if err != nil {
		t.Fatal(err)
	}
	if stats.WallTimesteps <= int64(stats.Timesteps) {
		t.Errorf("congestion did not stretch wall time: %d vs %d", stats.WallTimesteps, stats.Timesteps)
	}
}
