package tcmm_test

import (
	"bytes"
	"math/rand"
	"testing"

	tcmm "repro"
)

func TestFacadeCountCircuit(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	cc, err := tcmm.NewCount(8, tcmm.Options{Alg: tcmm.Strassen()})
	if err != nil {
		t.Fatal(err)
	}
	g := tcmm.ErdosRenyi(rng, 8, 0.5)
	got, err := cc.Triangles(g.Adjacency())
	if err != nil {
		t.Fatal(err)
	}
	if got != g.Triangles() {
		t.Errorf("counted %d triangles, want %d", got, g.Triangles())
	}
}

func TestFacadeTheorem41(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a := tcmm.RandomBinaryMatrix(rng, 4, 4, 0.5)
	b := tcmm.RandomBinaryMatrix(rng, 4, 4, 0.5)
	mc, err := tcmm.NewTheorem41MatMul(4, tcmm.Strassen(), 2, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := mc.Multiply(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(a.Mul(b)) {
		t.Error("theorem 4.1 product wrong")
	}
	tc, err := tcmm.NewTheorem41Trace(4, 6, tcmm.Strassen(), 2, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	k4 := tcmm.CompleteGraph(4)
	ans, err := tc.Decide(k4.Adjacency())
	if err != nil {
		t.Fatal(err)
	}
	if !ans {
		t.Error("K4 has 24 >= 6 trace")
	}
}

// Persistence: a built matmul circuit round-trips through the binary
// codec and still multiplies correctly.
func TestFacadeCircuitPersistence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	mc, err := tcmm.NewMatMul(4, tcmm.Options{Alg: tcmm.Strassen()})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := mc.Circuit.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := tcmm.ReadCircuit(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := tcmm.RandomBinaryMatrix(rng, 4, 4, 0.5)
	b := tcmm.RandomBinaryMatrix(rng, 4, 4, 0.5)
	in, err := mc.Assign(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate through the loaded circuit, decode through the original
	// (wire numbering is identical by construction).
	vals := loaded.EvalParallel(in, 0)
	if !mc.Decode(vals).Equal(a.Mul(b)) {
		t.Error("loaded circuit computes wrong product")
	}
}

// The core constructions carry essentially no dead gates.
func TestFacadeCoreCircuitsAreLean(t *testing.T) {
	mc, err := tcmm.NewMatMul(4, tcmm.Options{Alg: tcmm.Strassen()})
	if err != nil {
		t.Fatal(err)
	}
	_, removed := mc.Circuit.Prune()
	if frac := float64(removed) / float64(mc.Circuit.Size()); frac > 0.01 {
		t.Errorf("matmul circuit has %.1f%% dead gates", 100*frac)
	}
}

// Rotated algorithms plug straight into the circuit builders and
// produce correct products — the tensor symmetry exercised end to end.
func TestFacadeRotatedAlgorithmCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	r1, r2, err := tcmm.AlgorithmRotations(tcmm.Strassen())
	if err != nil {
		t.Fatal(err)
	}
	a := tcmm.RandomBinaryMatrix(rng, 4, 4, 0.5)
	b := tcmm.RandomBinaryMatrix(rng, 4, 4, 0.5)
	want := a.Mul(b)
	for _, alg := range []*tcmm.Algorithm{r1, r2} {
		mc, err := tcmm.NewMatMul(4, tcmm.Options{Alg: alg})
		if err != nil {
			t.Fatal(err)
		}
		got, err := mc.Multiply(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Errorf("%s: circuit product wrong", alg.Name)
		}
	}
	d := tcmm.AlgorithmToTensor(tcmm.Strassen())
	if d.Rank() != 7 {
		t.Errorf("Strassen tensor rank %d, want 7", d.Rank())
	}
	if err := d.Verify(); err != nil {
		t.Error(err)
	}
}

func TestFacadePlacements(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	mc, err := tcmm.NewMatMul(8, tcmm.Options{Alg: tcmm.Strassen()})
	if err != nil {
		t.Fatal(err)
	}
	a := tcmm.RandomBinaryMatrix(rng, 8, 8, 0.5)
	b := tcmm.RandomBinaryMatrix(rng, 8, 8, 0.5)
	in, err := mc.Assign(a, b)
	if err != nil {
		t.Fatal(err)
	}
	dev := tcmm.LoihiDevice()
	level, err := tcmm.PlaceLevelOrder(mc.Circuit, dev)
	if err != nil {
		t.Fatal(err)
	}
	local, err := tcmm.PlaceLocality(mc.Circuit, dev)
	if err != nil {
		t.Fatal(err)
	}
	_, sLevel, err := tcmm.RunOnDevice(mc.Circuit, dev, level, in)
	if err != nil {
		t.Fatal(err)
	}
	_, sLocal, err := tcmm.RunOnDevice(mc.Circuit, dev, local, in)
	if err != nil {
		t.Fatal(err)
	}
	if sLocal.OffCoreEvents >= sLevel.OffCoreEvents {
		t.Errorf("locality placement did not reduce traffic: %d vs %d",
			sLocal.OffCoreEvents, sLevel.OffCoreEvents)
	}
}
