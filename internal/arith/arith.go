// Package arith implements the paper's Section 3: the elementary TC0
// arithmetic circuits from which every construction in this library is
// composed.
//
//   - Lemma 3.1: the k-th most significant bit of an integer-weighted sum
//     of bits, as a depth-2 threshold circuit with 2^k + 1 gates.
//   - Lemma 3.2: all bits of a nonnegative integer-weighted sum of
//     nonnegative numbers, depth 2.
//   - Lemma 3.3: depth-1 *representations* (not binary forms) of products
//     of two or three numbers.
//   - The (x⁺, x⁻) signed-pair convention of the "Negative numbers"
//     subsection, including signed sums, signed products and the final
//     comparison gate.
//
// The central datatype is Rep: a nonnegative integer represented as a
// weighted sum of boolean wires, x = Σ w_i·x_i with w_i > 0. Binary
// representations are the special case where the weights are distinct
// powers of two; Lemma 3.3 products produce general representations, which
// is exactly why the paper introduces the notion.
//
// One deliberate refinement over the paper's text: Lemma 3.2's proof
// truncates each summand to its j low-order bits before extracting bit j.
// We implement the equivalent reduction of each term weight mod 2^j,
// which preserves the value mod 2^j, keeps every term nonnegative, and
// works for arbitrary term weights (the paper's form assumes summands
// arrive in binary). The gate count only improves: bit j costs
// 2^{bits(n_j)+1} + 1 gates where n_j is the number of surviving terms.
package arith

import (
	"fmt"

	"repro/internal/bitio"
	"repro/internal/circuit"
)

// Term is one weighted wire of a representation. Weight must be positive;
// sign is carried by the Signed pair, never by term weights.
type Term struct {
	Wire   circuit.Wire
	Weight int64
}

// Rep represents a nonnegative integer as Σ Weight_i · wire_i over
// boolean wires. Max is a sound upper bound on the represented value
// (at most the sum of weights; possibly tighter when the producer knows
// more).
type Rep struct {
	Terms []Term
	Max   int64
}

// FromBits builds the standard binary representation over the given
// wires: bits[i] has weight 2^i.
func FromBits(bits []circuit.Wire) Rep {
	r := Rep{Terms: make([]Term, len(bits))}
	for i, w := range bits {
		r.Terms[i] = Term{Wire: w, Weight: int64(1) << uint(i)}
	}
	if len(bits) > 0 {
		r.Max = int64(1)<<uint(len(bits)) - 1
	}
	return r
}

// WeightSum returns the sum of all term weights (the attainable maximum).
func (r Rep) WeightSum() int64 {
	var s int64
	for _, t := range r.Terms {
		s = bitio.AddCheck(s, t.Weight)
	}
	return s
}

// validate panics on nonpositive weights; internal sanity check.
func (r Rep) validate() {
	for _, t := range r.Terms {
		if t.Weight <= 0 {
			panic(fmt.Sprintf("arith: nonpositive term weight %d", t.Weight))
		}
	}
}

// Scale returns the representation of c·x for c > 0 (no gates needed:
// weights scale).
func (r Rep) Scale(c int64) Rep {
	if c <= 0 {
		panic(fmt.Sprintf("arith: Scale requires positive factor, got %d", c))
	}
	out := Rep{Terms: make([]Term, len(r.Terms)), Max: bitio.MulCheck(r.Max, c)}
	for i, t := range r.Terms {
		out.Terms[i] = Term{Wire: t.Wire, Weight: bitio.MulCheck(t.Weight, c)}
	}
	return out
}

// Concat returns the representation of the sum of the given values
// (no gates needed: representations are closed under union).
func Concat(reps ...Rep) Rep {
	var out Rep
	for _, r := range reps {
		out.Terms = append(out.Terms, r.Terms...)
		out.Max = bitio.AddCheck(out.Max, r.Max)
	}
	return out
}

// Value evaluates the representation under a wire assignment (host-side;
// used by tests and output decoding, not by circuits).
func (r Rep) Value(vals []bool) int64 {
	var s int64
	for _, t := range r.Terms {
		if vals[t.Wire] {
			s += t.Weight
		}
	}
	return s
}

// ExtractBit implements Lemma 3.1: given s = Σ w_i·x_i with s ∈ [0, 2^l),
// it returns a wire computing the k-th most significant bit of s
// (1 <= k <= l) using a depth-2 circuit with exactly 2^k + 1 gates.
//
// Layer 1 computes y_i = [s >= i·2^{l-k}] for 1 <= i <= 2^k; the output
// gate computes [Σ_{i odd}(y_i − y_{i+1}) >= 1].
func ExtractBit(b *circuit.Builder, r Rep, l, k int) circuit.Wire {
	if k < 1 || k > l {
		panic(fmt.Sprintf("arith: ExtractBit k=%d out of range [1,%d]", k, l))
	}
	if l >= 62 {
		panic(fmt.Sprintf("arith: ExtractBit l=%d too large for int64 thresholds", l))
	}
	r.validate()
	wires := make([]circuit.Wire, len(r.Terms))
	weights := make([]int64, len(r.Terms))
	for i, t := range r.Terms {
		wires[i] = t.Wire
		weights[i] = t.Weight
	}
	step := int64(1) << uint(l-k)
	count := int64(1) << uint(k)
	// The y_i gates all read the same weighted sum and differ only in
	// threshold: build them as one gate group (identical circuit, shared
	// storage and evaluation).
	thresholds := make([]int64, count)
	for i := int64(1); i <= count; i++ {
		thresholds[i-1] = bitio.MulCheck(i, step)
	}
	ys := b.GateGroup(wires, weights, thresholds)
	outW := make([]int64, count)
	for i := int64(1); i <= count; i++ {
		if i%2 == 1 {
			outW[i-1] = 1
		} else {
			outW[i-1] = -1
		}
	}
	return b.Gate(ys, outW, 1)
}

// ExtractBitGateCount returns the exact number of gates ExtractBit adds:
// 2^k + 1 (Lemma 3.1's bound, met with equality).
func ExtractBitGateCount(k int) int64 {
	return (int64(1) << uint(k)) + 1
}

// SumBits implements Lemma 3.2: given a representation of a nonnegative
// integer s, it returns the standard binary representation of s, built in
// depth 2. Bit j (weight 2^{j-1}) is extracted from the weight-truncated
// sum s_j = Σ (w_i mod 2^j)·x_i via Lemma 3.1.
//
// The result's wires are genuine bits of s; bits that are provably zero
// are omitted from the returned representation.
func SumBits(b *circuit.Builder, r Rep) Rep {
	r.validate()
	if len(r.Terms) == 0 || r.Max == 0 {
		return Rep{}
	}
	L := bitio.Bits(r.Max)
	out := Rep{Max: r.Max}
	for j := 1; j <= L; j++ {
		mod := int64(1) << uint(j)
		var trunc Rep
		var maxSj int64
		for _, t := range r.Terms {
			w := t.Weight % mod
			if w == 0 {
				continue
			}
			trunc.Terms = append(trunc.Terms, Term{Wire: t.Wire, Weight: w})
			maxSj += w
		}
		if maxSj < mod/2 {
			// s_j can never reach 2^{j-1}: bit j of s is identically 0.
			continue
		}
		trunc.Max = maxSj
		l := bitio.Bits(maxSj)
		k := l - j + 1 // bit with weight 2^{j-1} is the (l-j+1)-th MSB
		bit := ExtractBit(b, trunc, l, k)
		out.Terms = append(out.Terms, Term{Wire: bit, Weight: mod / 2})
	}
	return out
}

// SumBitsGateCount predicts the exact gate count of SumBits for a given
// multiset of term weights and bound, without building anything. Tests
// assert it matches the builder, and the counting package uses it for
// large-N projections.
func SumBitsGateCount(weights []int64, max int64) int64 {
	if len(weights) == 0 || max == 0 {
		return 0
	}
	L := bitio.Bits(max)
	var gates int64
	for j := 1; j <= L; j++ {
		mod := int64(1) << uint(j)
		var maxSj int64
		for _, w := range weights {
			maxSj += w % mod
		}
		if maxSj < mod/2 {
			continue
		}
		l := bitio.Bits(maxSj)
		gates += ExtractBitGateCount(l - j + 1)
	}
	return gates
}

// Product2 implements the two-factor case of Lemma 3.3: a depth-1
// representation of x·y using |x.Terms|·|y.Terms| gates, each computing
// x_i AND y_j (threshold x_i + y_j >= 2) with weight w_i·w_j.
func Product2(b *circuit.Builder, x, y Rep) Rep {
	x.validate()
	y.validate()
	out := Rep{Max: bitio.MulCheck(x.Max, y.Max)}
	for _, tx := range x.Terms {
		for _, ty := range y.Terms {
			g := b.Gate([]circuit.Wire{tx.Wire, ty.Wire}, []int64{1, 1}, 2)
			out.Terms = append(out.Terms, Term{Wire: g, Weight: bitio.MulCheck(tx.Weight, ty.Weight)})
		}
	}
	return out
}

// Product3 implements Lemma 3.3 exactly as stated: a depth-1
// representation of x·y·z with one gate x_i + y_j + z_k >= 3 per term
// triple (m³ gates for three m-bit numbers).
func Product3(b *circuit.Builder, x, y, z Rep) Rep {
	x.validate()
	y.validate()
	z.validate()
	out := Rep{Max: bitio.MulCheck(bitio.MulCheck(x.Max, y.Max), z.Max)}
	for _, tx := range x.Terms {
		for _, ty := range y.Terms {
			for _, tz := range z.Terms {
				g := b.Gate([]circuit.Wire{tx.Wire, ty.Wire, tz.Wire}, []int64{1, 1, 1}, 3)
				w := bitio.MulCheck(bitio.MulCheck(tx.Weight, ty.Weight), tz.Weight)
				out.Terms = append(out.Terms, Term{Wire: g, Weight: w})
			}
		}
	}
	return out
}
