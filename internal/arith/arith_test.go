package arith

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitio"
	"repro/internal/circuit"
)

// buildInputRep creates a circuit with `width` input wires and a binary
// rep over them, plus the input assignment encoding value v.
func buildInputRep(width int, v int64) (*circuit.Builder, Rep, []bool) {
	b := circuit.NewBuilder(width)
	wires := make([]circuit.Wire, width)
	in := make([]bool, width)
	for i := 0; i < width; i++ {
		wires[i] = b.Input(i)
		in[i] = v&(1<<uint(i)) != 0
	}
	return b, FromBits(wires), in
}

func TestFromBitsValue(t *testing.T) {
	for v := int64(0); v < 32; v++ {
		b, rep, in := buildInputRep(5, v)
		c := b.Build()
		_ = c
		vals := make([]bool, 5)
		copy(vals, in)
		if got := rep.Value(vals); got != v {
			t.Errorf("FromBits value = %d, want %d", got, v)
		}
	}
}

// Lemma 3.1: extract each bit of a directly-presented binary number and
// compare against the integer's true bits, exhaustively for 6-bit values.
func TestExtractBitExhaustive(t *testing.T) {
	const width = 6
	for v := int64(0); v < 1<<width; v++ {
		b, rep, in := buildInputRep(width, v)
		l := width
		outs := make([]circuit.Wire, l)
		for k := 1; k <= l; k++ {
			outs[k-1] = ExtractBit(b, rep, l, k)
		}
		c := b.Build()
		vals := c.Eval(in)
		for k := 1; k <= l; k++ {
			want := v&(1<<uint(l-k)) != 0 // k-th MSB has weight 2^{l-k}
			if got := vals[outs[k-1]]; got != want {
				t.Fatalf("v=%d k=%d: got %v want %v", v, k, got, want)
			}
		}
	}
}

// Lemma 3.1 gate count: exactly 2^k + 1 gates.
func TestExtractBitGateCount(t *testing.T) {
	for k := 1; k <= 6; k++ {
		b, rep, _ := buildInputRep(6, 0)
		before := b.Size()
		ExtractBit(b, rep, 6, k)
		added := int64(b.Size() - before)
		if added != ExtractBitGateCount(k) {
			t.Errorf("k=%d: added %d gates, want 2^k+1 = %d", k, added, ExtractBitGateCount(k))
		}
	}
}

// Lemma 3.1 depth: the construction is depth 2 regardless of k.
func TestExtractBitDepth(t *testing.T) {
	b, rep, _ := buildInputRep(6, 0)
	ExtractBit(b, rep, 6, 3)
	if d := b.Build().Depth(); d != 2 {
		t.Errorf("ExtractBit depth = %d, want 2", d)
	}
}

// Lemma 3.1 on weighted (non-binary) sums: s = 3a + 5b + 2c with bits
// a, b, c. Check all MSBs for all 8 assignments.
func TestExtractBitWeighted(t *testing.T) {
	weights := []int64{3, 5, 2}
	maxS := int64(10)
	l := bitio.Bits(maxS) // 4
	for mask := 0; mask < 8; mask++ {
		b := circuit.NewBuilder(3)
		rep := Rep{Max: maxS}
		var s int64
		in := make([]bool, 3)
		for i := 0; i < 3; i++ {
			rep.Terms = append(rep.Terms, Term{Wire: b.Input(i), Weight: weights[i]})
			if mask&(1<<i) != 0 {
				in[i] = true
				s += weights[i]
			}
		}
		outs := make([]circuit.Wire, l)
		for k := 1; k <= l; k++ {
			outs[k-1] = ExtractBit(b, rep, l, k)
		}
		vals := b.Build().Eval(in)
		for k := 1; k <= l; k++ {
			want := s&(1<<uint(l-k)) != 0
			if vals[outs[k-1]] != want {
				t.Fatalf("mask=%d s=%d k=%d: wrong bit", mask, s, k)
			}
		}
	}
}

// Lemma 3.2: SumBits recovers the exact value, exhaustively over small
// weighted sums.
func TestSumBitsExhaustive(t *testing.T) {
	weights := []int64{1, 3, 4, 7, 9}
	var maxS int64
	for _, w := range weights {
		maxS += w
	}
	for mask := 0; mask < 1<<len(weights); mask++ {
		b := circuit.NewBuilder(len(weights))
		rep := Rep{Max: maxS}
		in := make([]bool, len(weights))
		var s int64
		for i, w := range weights {
			rep.Terms = append(rep.Terms, Term{Wire: b.Input(i), Weight: w})
			if mask&(1<<i) != 0 {
				in[i] = true
				s += w
			}
		}
		binRep := SumBits(b, rep)
		c := b.Build()
		vals := c.Eval(in)
		if got := binRep.Value(vals); got != s {
			t.Fatalf("mask=%d: SumBits value %d, want %d", mask, got, s)
		}
		// Every output term must be a power-of-two weight, distinct.
		seen := map[int64]bool{}
		for _, term := range binRep.Terms {
			if term.Weight&(term.Weight-1) != 0 {
				t.Fatalf("non-power-of-two output weight %d", term.Weight)
			}
			if seen[term.Weight] {
				t.Fatalf("duplicate output weight %d", term.Weight)
			}
			seen[term.Weight] = true
		}
		if c.Depth() > 2 {
			t.Fatalf("SumBits depth %d > 2", c.Depth())
		}
	}
}

// SumBits gate count matches the predictor exactly.
func TestSumBitsGateCountPrediction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(10)
		weights := make([]int64, n)
		var max int64
		for i := range weights {
			weights[i] = 1 + rng.Int63n(50)
			max += weights[i]
		}
		b := circuit.NewBuilder(n)
		rep := Rep{Max: max}
		for i, w := range weights {
			rep.Terms = append(rep.Terms, Term{Wire: b.Input(i), Weight: w})
		}
		before := b.Size()
		SumBits(b, rep)
		got := int64(b.Size() - before)
		want := SumBitsGateCount(weights, max)
		if got != want {
			t.Fatalf("trial %d: built %d gates, predictor says %d", trial, got, want)
		}
	}
}

// Property-based: SumBits is correct on random weighted sums.
func TestSumBitsProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		b := circuit.NewBuilder(n)
		rep := Rep{}
		in := make([]bool, n)
		var s int64
		for i := 0; i < n; i++ {
			w := 1 + rng.Int63n(1000)
			rep.Terms = append(rep.Terms, Term{Wire: b.Input(i), Weight: w})
			rep.Max += w
			if rng.Intn(2) == 1 {
				in[i] = true
				s += w
			}
		}
		out := SumBits(b, rep)
		vals := b.Build().Eval(in)
		return out.Value(vals) == s
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSumBitsEmpty(t *testing.T) {
	b := circuit.NewBuilder(1)
	out := SumBits(b, Rep{})
	if len(out.Terms) != 0 || b.Size() != 0 {
		t.Error("empty SumBits should produce nothing")
	}
}

// Lemma 3.3, two factors: product representation is exact; gate count is
// |x|·|y|; depth 1.
func TestProduct2(t *testing.T) {
	for x := int64(0); x < 8; x++ {
		for y := int64(0); y < 8; y++ {
			b := circuit.NewBuilder(6)
			xw := []circuit.Wire{0, 1, 2}
			yw := []circuit.Wire{3, 4, 5}
			xr := FromBits(xw)
			yr := FromBits(yw)
			before := b.Size()
			pr := Product2(b, xr, yr)
			if added := b.Size() - before; added != 9 {
				t.Fatalf("Product2 gates = %d, want 3*3 = 9", added)
			}
			in := make([]bool, 6)
			for i := 0; i < 3; i++ {
				in[i] = x&(1<<uint(i)) != 0
				in[3+i] = y&(1<<uint(i)) != 0
			}
			c := b.Build()
			if c.Depth() != 1 {
				t.Fatalf("Product2 depth = %d, want 1", c.Depth())
			}
			vals := c.Eval(in)
			if got := pr.Value(vals); got != x*y {
				t.Fatalf("%d*%d = %d, got %d", x, y, x*y, got)
			}
		}
	}
}

// Lemma 3.3, three factors: m³ gates, depth 1, exact value.
func TestProduct3(t *testing.T) {
	const m = 2
	for x := int64(0); x < 1<<m; x++ {
		for y := int64(0); y < 1<<m; y++ {
			for z := int64(0); z < 1<<m; z++ {
				b := circuit.NewBuilder(3 * m)
				xr := FromBits([]circuit.Wire{0, 1})
				yr := FromBits([]circuit.Wire{2, 3})
				zr := FromBits([]circuit.Wire{4, 5})
				before := b.Size()
				pr := Product3(b, xr, yr, zr)
				if added := b.Size() - before; added != m*m*m {
					t.Fatalf("Product3 gates = %d, want %d", added, m*m*m)
				}
				in := make([]bool, 3*m)
				for i := 0; i < m; i++ {
					in[i] = x&(1<<uint(i)) != 0
					in[m+i] = y&(1<<uint(i)) != 0
					in[2*m+i] = z&(1<<uint(i)) != 0
				}
				vals := b.Build().Eval(in)
				if got := pr.Value(vals); got != x*y*z {
					t.Fatalf("%d*%d*%d: got %d", x, y, z, got)
				}
			}
		}
	}
}

// A product representation is itself a valid SumBits input: compose
// Lemma 3.3 with Lemma 3.2 and recover the binary product.
func TestProductThenSumBits(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		x := rng.Int63n(16)
		y := rng.Int63n(16)
		b := circuit.NewBuilder(8)
		xr := FromBits([]circuit.Wire{0, 1, 2, 3})
		yr := FromBits([]circuit.Wire{4, 5, 6, 7})
		pr := Product2(b, xr, yr)
		bits := SumBits(b, pr)
		in := make([]bool, 8)
		for i := 0; i < 4; i++ {
			in[i] = x&(1<<uint(i)) != 0
			in[4+i] = y&(1<<uint(i)) != 0
		}
		c := b.Build()
		vals := c.Eval(in)
		if got := bits.Value(vals); got != x*y {
			t.Fatalf("binary product = %d, want %d", got, x*y)
		}
		if c.Depth() != 3 {
			t.Fatalf("product+sum depth = %d, want 3", c.Depth())
		}
	}
}

func TestScaleConcat(t *testing.T) {
	b := circuit.NewBuilder(4)
	r1 := FromBits([]circuit.Wire{0, 1})
	r2 := FromBits([]circuit.Wire{2, 3})
	sum := Concat(r1.Scale(3), r2)
	in := []bool{true, true, false, true} // r1 = 3, r2 = 2
	_ = b
	vals := make([]bool, 4)
	copy(vals, in)
	if got := sum.Value(vals); got != 3*3+2 {
		t.Errorf("Concat(Scale) value = %d, want 11", got)
	}
	if sum.Max != 3*3+3 {
		t.Errorf("Concat Max = %d, want 12", sum.Max)
	}
}

func TestScalePanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Scale(0) did not panic")
		}
	}()
	Rep{}.Scale(0)
}

// The paper's remark after Lemma 3.1: "if s ∉ [0, 2^l), the circuit for
// any k outputs 0" — when the sum saturates past 2^l, every first-layer
// pair y_i − y_{i+1} telescopes to zero.
func TestExtractBitOutOfRangeOutputsZero(t *testing.T) {
	// Claim l = 3 (s < 8) but feed values up to 7*3 = 21.
	weights := []int64{7, 7, 7}
	for mask := 1; mask < 8; mask++ {
		var s int64
		b := circuit.NewBuilder(3)
		rep := Rep{Max: 7} // deliberately understated bound
		in := make([]bool, 3)
		for i := 0; i < 3; i++ {
			rep.Terms = append(rep.Terms, Term{Wire: b.Input(i), Weight: weights[i]})
			if mask&(1<<i) != 0 {
				in[i] = true
				s += weights[i]
			}
		}
		outs := make([]circuit.Wire, 3)
		for k := 1; k <= 3; k++ {
			outs[k-1] = ExtractBit(b, rep, 3, k)
		}
		vals := b.Build().Eval(in)
		if s >= 8 {
			for k := 1; k <= 3; k++ {
				if vals[outs[k-1]] {
					t.Errorf("s=%d >= 2^3: bit %d fired, paper says all outputs 0", s, k)
				}
			}
		}
	}
}

func TestExtractBitBadK(t *testing.T) {
	for _, k := range []int{0, 7} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ExtractBit k=%d did not panic", k)
				}
			}()
			b, rep, _ := buildInputRep(6, 0)
			ExtractBit(b, rep, 6, k)
		}()
	}
}
