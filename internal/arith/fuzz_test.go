package arith

import (
	"math/rand"
	"testing"

	"repro/internal/circuit"
)

// FuzzSumBits: for arbitrary weight/assignment vectors, the Lemma 3.2
// circuit (both variants) recovers the exact weighted sum.
func FuzzSumBits(f *testing.F) {
	f.Add(int64(1), uint8(5))
	f.Add(int64(99), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, nRaw uint8) {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%16
		weights := make([]int64, n)
		assign := make([]bool, n)
		var want, max int64
		for i := range weights {
			weights[i] = 1 + rng.Int63n(1<<12)
			max += weights[i]
			assign[i] = rng.Intn(2) == 1
			if assign[i] {
				want += weights[i]
			}
		}
		for _, variant := range []func(*circuit.Builder, Rep) Rep{SumBits, SumBitsShared} {
			b := circuit.NewBuilder(n)
			rep := Rep{Max: max}
			for i, w := range weights {
				rep.Terms = append(rep.Terms, Term{Wire: b.Input(i), Weight: w})
			}
			out := variant(b, rep)
			c := b.Build()
			if got := out.Value(c.Eval(assign)); got != want {
				t.Fatalf("sum = %d, want %d (weights %v assign %v)", got, want, weights, assign)
			}
			if c.Depth() > 2 {
				t.Fatalf("depth %d > 2", c.Depth())
			}
		}
	})
}

// FuzzEncodeSigned: EncodeSigned/InputSigned round-trips every value in
// range and the Threshold gate agrees with direct comparison.
func FuzzEncodeSigned(f *testing.F) {
	f.Add(int64(-5), int64(3))
	f.Add(int64(100), int64(-100))
	f.Fuzz(func(t *testing.T, v, tau int64) {
		const width = 12
		v %= 1 << (width - 1)
		tau %= 1 << (width + 1)
		b := circuit.NewBuilder(2 * width)
		pos := make([]circuit.Wire, width)
		neg := make([]circuit.Wire, width)
		for i := 0; i < width; i++ {
			pos[i] = b.Input(i)
			neg[i] = b.Input(width + i)
		}
		x := InputSigned(pos, neg)
		out := Threshold(b, x, tau)
		b.MarkOutput(out)
		pb, nb := EncodeSigned(v, width)
		in := append(append([]bool{}, pb...), nb...)
		c := b.Build()
		if got := c.OutputValues(c.Eval(in))[0]; got != (v >= tau) {
			t.Fatalf("[%d >= %d] = %v", v, tau, got)
		}
	})
}
