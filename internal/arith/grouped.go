package arith

import (
	"fmt"

	"repro/internal/circuit"
)

// GroupedSumBits computes the binary representation of a nonnegative
// represented value in multiple depth-2 stages: the terms are split into
// groups of at most groupSize, each group is summed with Lemma 3.2, and
// the (much shorter) group results are concatenated and summed again,
// recursing until one group remains.
//
// A single SumBits call is the stages=1 case. More stages trade depth
// (2 per stage) for bounded first-layer fan-in — each Lemma 3.1 gate
// reads at most groupSize terms instead of all of them — which is the
// knob the paper's Section 5 fan-in discussion and the Siu-et-al.-based
// Theorem 4.1 construction both turn. Stage counts are reported by
// GroupedStages so callers can assert depth = 2·stages.
func GroupedSumBits(b *circuit.Builder, r Rep, groupSize int) Rep {
	if groupSize < 2 {
		panic(fmt.Sprintf("arith: GroupedSumBits groupSize %d < 2", groupSize))
	}
	r.validate()
	if len(r.Terms) == 0 || r.Max == 0 {
		return Rep{}
	}
	for len(r.Terms) > groupSize {
		var next Rep
		next.Max = r.Max
		for lo := 0; lo < len(r.Terms); lo += groupSize {
			hi := lo + groupSize
			if hi > len(r.Terms) {
				hi = len(r.Terms)
			}
			group := Rep{Terms: r.Terms[lo:hi]}
			group.Max = group.WeightSum()
			next.Terms = append(next.Terms, SumBits(b, group).Terms...)
		}
		if len(next.Terms) >= len(r.Terms) {
			// Grouping is no longer shrinking the representation
			// (short groups of already-binary terms); finish directly.
			return SumBits(b, next)
		}
		r = next
	}
	return SumBits(b, r)
}
