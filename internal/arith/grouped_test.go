package arith

import (
	"math/rand"
	"testing"

	"repro/internal/circuit"
)

// GroupedSumBits must agree with SumBits on value, at any group size.
func TestGroupedSumBitsCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, groupSize := range []int{2, 3, 4, 8, 16} {
		for trial := 0; trial < 20; trial++ {
			n := 1 + rng.Intn(24)
			b := circuit.NewBuilder(n)
			rep := Rep{}
			in := make([]bool, n)
			var want int64
			for i := 0; i < n; i++ {
				w := 1 + rng.Int63n(30)
				rep.Terms = append(rep.Terms, Term{Wire: b.Input(i), Weight: w})
				rep.Max += w
				if rng.Intn(2) == 1 {
					in[i] = true
					want += w
				}
			}
			out := GroupedSumBits(b, rep, groupSize)
			c := b.Build()
			vals := c.Eval(in)
			if got := out.Value(vals); got != want {
				t.Fatalf("g=%d trial=%d: got %d want %d", groupSize, trial, got, want)
			}
			// Depth grows in increments of 2 per stage.
			if c.Depth()%2 != 0 {
				t.Fatalf("g=%d: depth %d not a multiple of 2", groupSize, c.Depth())
			}
		}
	}
}

// Grouping bounds the first-layer fan-in: each Lemma 3.1 gate in stage 1
// reads at most groupSize term wires (the inputs), so gates at level 1
// have fan-in <= groupSize.
func TestGroupedSumBitsFanIn(t *testing.T) {
	const n = 64
	const groupSize = 8
	b := circuit.NewBuilder(n)
	rep := Rep{}
	for i := 0; i < n; i++ {
		rep.Terms = append(rep.Terms, Term{Wire: b.Input(i), Weight: 1})
		rep.Max++
	}
	GroupedSumBits(b, rep, groupSize)
	c := b.Build()
	for g := 0; g < c.Size(); g++ {
		if c.GateLevel(g) == 1 && c.FanIn(g) > groupSize {
			t.Fatalf("level-1 gate %d has fan-in %d > %d", g, c.FanIn(g), groupSize)
		}
	}
	// Ungrouped comparison: a single SumBits gate at level 1 reads all
	// n terms.
	b2 := circuit.NewBuilder(n)
	rep2 := Rep{}
	for i := 0; i < n; i++ {
		rep2.Terms = append(rep2.Terms, Term{Wire: b2.Input(i), Weight: 1})
		rep2.Max++
	}
	SumBits(b2, rep2)
	c2 := b2.Build()
	if c2.MaxFanIn() < n {
		t.Errorf("ungrouped max fan-in %d, expected >= %d", c2.MaxFanIn(), n)
	}
	if c.MaxFanIn() >= c2.MaxFanIn() {
		t.Errorf("grouping did not reduce max fan-in: %d vs %d", c.MaxFanIn(), c2.MaxFanIn())
	}
}

// Depth/width tradeoff: more stages (smaller groups) means more depth.
func TestGroupedSumBitsDepthTradeoff(t *testing.T) {
	depthAt := func(groupSize int) int {
		const n = 64
		b := circuit.NewBuilder(n)
		rep := Rep{}
		for i := 0; i < n; i++ {
			rep.Terms = append(rep.Terms, Term{Wire: b.Input(i), Weight: 1})
			rep.Max++
		}
		GroupedSumBits(b, rep, groupSize)
		return b.Build().Depth()
	}
	d2 := depthAt(2)
	d64 := depthAt(64)
	if d64 != 2 {
		t.Errorf("group=all depth = %d, want 2", d64)
	}
	if d2 <= d64 {
		t.Errorf("small groups should be deeper: d2=%d d64=%d", d2, d64)
	}
}

func TestGroupedSumBitsEmpty(t *testing.T) {
	b := circuit.NewBuilder(1)
	if out := GroupedSumBits(b, Rep{}, 4); len(out.Terms) != 0 {
		t.Error("empty grouped sum should be empty")
	}
}

func TestGroupedSumBitsBadGroupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("groupSize 1 did not panic")
		}
	}()
	b := circuit.NewBuilder(1)
	GroupedSumBits(b, FromBits([]circuit.Wire{0}), 1)
}
