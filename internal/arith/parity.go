package arith

import (
	"repro/internal/bitio"
	"repro/internal/circuit"
)

// Parity builds a TC0 circuit for the parity of the given wires — the
// classic result the paper cites as context ("a TC0 threshold-gate
// circuit of sublinear size to compute the parity of n bits", Siu et
// al.). Parity is the least significant bit of Σ x_i, so it falls out
// of the Lemma 3.1/3.2 machinery:
//
//   - groupSize <= 1 or >= n: one depth-2 block (Lemma 3.1 on the full
//     sum; Θ(n) first-layer gates, each reading all n inputs — Θ(n²)
//     edges);
//   - 2 <= groupSize < n: parity of block parities, recursively — depth
//     2 per stage with per-gate fan-in bounded by groupSize and
//     near-linear total wiring, the depth-for-resources trade behind
//     the sublinear constructions.
func Parity(b *circuit.Builder, wires []circuit.Wire, groupSize int) circuit.Wire {
	if len(wires) == 0 {
		return b.Const(false)
	}
	if len(wires) == 1 {
		return wires[0]
	}
	if groupSize < 2 || groupSize >= len(wires) {
		return parityBlock(b, wires)
	}
	var next []circuit.Wire
	for lo := 0; lo < len(wires); lo += groupSize {
		hi := lo + groupSize
		if hi > len(wires) {
			hi = len(wires)
		}
		if hi-lo == 1 {
			next = append(next, wires[lo])
			continue
		}
		next = append(next, parityBlock(b, wires[lo:hi]))
	}
	return Parity(b, next, groupSize)
}

// parityBlock computes the parity of up to a block of wires as the LSB
// of their sum via Lemma 3.1: k = bits(n) MSB index... the LSB of s
// with s < 2^l is the l-th most significant bit.
func parityBlock(b *circuit.Builder, wires []circuit.Wire) circuit.Wire {
	rep := Rep{Max: int64(len(wires))}
	for _, w := range wires {
		rep.Terms = append(rep.Terms, Term{Wire: w, Weight: 1})
	}
	l := bitio.Bits(rep.Max)
	return ExtractBit(b, rep, l, l)
}
