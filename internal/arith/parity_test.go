package arith

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
)

// Exhaustive parity check for small n, both block and grouped forms.
func TestParityExhaustive(t *testing.T) {
	for n := 1; n <= 10; n++ {
		for _, groupSize := range []int{0, 2, 3, 4} {
			for mask := 0; mask < 1<<n; mask++ {
				b := circuit.NewBuilder(n)
				ws := make([]circuit.Wire, n)
				in := make([]bool, n)
				for i := 0; i < n; i++ {
					ws[i] = b.Input(i)
					in[i] = mask&(1<<i) != 0
				}
				out := Parity(b, ws, groupSize)
				b.MarkOutput(out)
				c := b.Build()
				want := bits.OnesCount(uint(mask))%2 == 1
				if got := c.OutputValues(c.Eval(in))[0]; got != want {
					t.Fatalf("n=%d g=%d mask=%b: parity %v want %v", n, groupSize, mask, got, want)
				}
			}
		}
	}
}

// The grouped construction trades depth for width: smaller groups mean
// deeper circuits with smaller per-gate fan-in.
func TestParityTradeoff(t *testing.T) {
	build := func(n, g int) *circuit.Circuit {
		b := circuit.NewBuilder(n)
		ws := make([]circuit.Wire, n)
		for i := range ws {
			ws[i] = b.Input(i)
		}
		b.MarkOutput(Parity(b, ws, g))
		return b.Build()
	}
	const n = 64
	flat := build(n, 0)
	grouped := build(n, 4)
	if flat.Depth() != 2 {
		t.Errorf("flat parity depth %d, want 2", flat.Depth())
	}
	if grouped.Depth() <= flat.Depth() {
		t.Error("grouped parity should be deeper")
	}
	if grouped.MaxFanIn() >= flat.MaxFanIn() {
		t.Errorf("grouped fan-in %d not below flat %d", grouped.MaxFanIn(), flat.MaxFanIn())
	}
	// The resource the grouping shrinks is wiring: the flat block's
	// 2^{bits(n)} first-layer gates each read all n inputs (Θ(n²)
	// edges), while grouped blocks keep edges near-linear.
	if grouped.Edges() >= flat.Edges() {
		t.Errorf("grouped edges %d not below flat %d at n=%d", grouped.Edges(), flat.Edges(), n)
	}
}

// Property: random widths, group sizes and assignments.
func TestParityProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		g := rng.Intn(8)
		b := circuit.NewBuilder(n)
		ws := make([]circuit.Wire, n)
		in := make([]bool, n)
		ones := 0
		for i := 0; i < n; i++ {
			ws[i] = b.Input(i)
			if rng.Intn(2) == 1 {
				in[i] = true
				ones++
			}
		}
		out := Parity(b, ws, g)
		b.MarkOutput(out)
		c := b.Build()
		return c.OutputValues(c.Eval(in))[0] == (ones%2 == 1)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestParityDegenerate(t *testing.T) {
	b := circuit.NewBuilder(1)
	if w := Parity(b, nil, 0); b.WireLevel(w) != 1 {
		t.Error("empty parity should be a constant gate")
	}
	if w := Parity(b, []circuit.Wire{b.Input(0)}, 0); w != 0 {
		t.Error("single-wire parity should be the wire itself")
	}
}
