package arith

import (
	"repro/internal/bitio"
	"repro/internal/circuit"
)

// SumBitsShared is SumBits with the optimization the paper describes at
// the end of Lemma 3.2's proof: "this is improved in practice by
// observing that the functions y_i computed for k = bits(n) + bits(w)
// in the proof of Lemma 3.1 include those required for all the most
// significant bits of s."
//
// Once 2^j exceeds every term weight, the truncated sum s_j equals s
// itself, so all remaining output bits read the *same* weighted sum and
// need only differently-spaced selections of one shared y_i layer: one
// Lemma 3.1 first layer at the finest granularity k_max serves every
// top bit, each costing just its single output gate. Low-order bits
// (whose truncations differ) are built exactly as in SumBits.
//
// The output is bit-identical to SumBits on every input; only the gate
// count changes (tests assert both).
func SumBitsShared(b *circuit.Builder, r Rep) Rep {
	r.validate()
	if len(r.Terms) == 0 || r.Max == 0 {
		return Rep{}
	}
	var maxWeight int64
	for _, t := range r.Terms {
		if t.Weight > maxWeight {
			maxWeight = t.Weight
		}
	}
	L := bitio.Bits(r.Max)
	// jFull: first bit index at which no weight is truncated.
	jFull := bitio.Bits(maxWeight)
	out := Rep{Max: r.Max}

	// Low bits: per-bit truncated layers, exactly as SumBits.
	for j := 1; j < jFull && j <= L; j++ {
		mod := int64(1) << uint(j)
		var trunc Rep
		var maxSj int64
		for _, t := range r.Terms {
			w := t.Weight % mod
			if w == 0 {
				continue
			}
			trunc.Terms = append(trunc.Terms, Term{Wire: t.Wire, Weight: w})
			maxSj += w
		}
		if maxSj < mod/2 {
			continue
		}
		trunc.Max = maxSj
		l := bitio.Bits(maxSj)
		bit := ExtractBit(b, trunc, l, l-j+1)
		out.Terms = append(out.Terms, Term{Wire: bit, Weight: mod / 2})
	}
	if jFull > L {
		return out
	}

	// Top bits: one shared first layer over the untruncated sum.
	maxS := r.WeightSum()
	l := bitio.Bits(maxS)
	kmax := l - jFull + 1 // finest granularity needed (bit jFull)
	if kmax < 1 {
		return out
	}
	wires := make([]circuit.Wire, len(r.Terms))
	weights := make([]int64, len(r.Terms))
	for i, t := range r.Terms {
		wires[i] = t.Wire
		weights[i] = t.Weight
	}
	step := int64(1) << uint(l-kmax)
	count := int64(1) << uint(kmax)
	thresholds := make([]int64, count)
	for i := int64(1); i <= count; i++ {
		thresholds[i-1] = bitio.MulCheck(i, step)
	}
	ys := b.GateGroup(wires, weights, thresholds)

	// Output gate for bit j (weight 2^{j-1}): k = l-j+1, selecting every
	// 2^{j-jFull}-th y of the shared layer with alternating signs.
	for j := jFull; j <= L; j++ {
		stride := int64(1) << uint(j-jFull)
		k := l - j + 1
		if k < 1 {
			break
		}
		pairs := int64(1) << uint(k) // number of selected ys
		ins := make([]circuit.Wire, 0, pairs)
		ws := make([]int64, 0, pairs)
		for i := int64(1); i <= pairs; i++ {
			ins = append(ins, ys[i*stride-1])
			if i%2 == 1 {
				ws = append(ws, 1)
			} else {
				ws = append(ws, -1)
			}
		}
		bit := b.Gate(ins, ws, 1)
		out.Terms = append(out.Terms, Term{Wire: bit, Weight: int64(1) << uint(j-1)})
	}
	return out
}

// SignedSumBitsShared applies SumBitsShared to both halves.
func SignedSumBitsShared(b *circuit.Builder, s Signed) Signed {
	return Signed{Pos: SumBitsShared(b, s.Pos), Neg: SumBitsShared(b, s.Neg)}
}
