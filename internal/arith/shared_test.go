package arith

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
)

// SumBitsShared is value-identical to SumBits on exhaustive small
// domains.
func TestSharedMatchesSumBitsExhaustive(t *testing.T) {
	weights := []int64{1, 3, 4, 7, 9}
	var maxS int64
	for _, w := range weights {
		maxS += w
	}
	for mask := 0; mask < 1<<len(weights); mask++ {
		build := func(f func(*circuit.Builder, Rep) Rep) int64 {
			b := circuit.NewBuilder(len(weights))
			rep := Rep{Max: maxS}
			in := make([]bool, len(weights))
			for i, w := range weights {
				rep.Terms = append(rep.Terms, Term{Wire: b.Input(i), Weight: w})
				if mask&(1<<i) != 0 {
					in[i] = true
				}
			}
			out := f(b, rep)
			return out.Value(b.Build().Eval(in))
		}
		plain := build(SumBits)
		shared := build(SumBitsShared)
		if plain != shared {
			t.Fatalf("mask %d: shared %d != plain %d", mask, shared, plain)
		}
	}
}

// The optimization saves gates whenever several top bits exist, and
// never costs more.
func TestSharedSavesGates(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	saved := false
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(12)
		weights := make([]int64, n)
		var max int64
		for i := range weights {
			weights[i] = 1 + rng.Int63n(64)
			max += weights[i]
		}
		count := func(f func(*circuit.Builder, Rep) Rep) int {
			b := circuit.NewBuilder(n)
			rep := Rep{Max: max}
			for i, w := range weights {
				rep.Terms = append(rep.Terms, Term{Wire: b.Input(i), Weight: w})
			}
			f(b, rep)
			return b.Size()
		}
		plain := count(SumBits)
		shared := count(SumBitsShared)
		if shared > plain {
			t.Fatalf("trial %d: shared %d > plain %d gates", trial, shared, plain)
		}
		if shared < plain {
			saved = true
		}
	}
	if !saved {
		t.Error("sharing never saved a gate across 30 trials")
	}
}

// Property: value equality on random weighted sums, including
// power-of-two-only weights (binary summands).
func TestSharedProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		b := circuit.NewBuilder(n)
		rep := Rep{}
		in := make([]bool, n)
		var want int64
		for i := 0; i < n; i++ {
			var w int64
			if rng.Intn(2) == 0 {
				w = int64(1) << uint(rng.Intn(8)) // power of two
			} else {
				w = 1 + rng.Int63n(200)
			}
			rep.Terms = append(rep.Terms, Term{Wire: b.Input(i), Weight: w})
			rep.Max += w
			if rng.Intn(2) == 1 {
				in[i] = true
				want += w
			}
		}
		out := SumBitsShared(b, rep)
		return out.Value(b.Build().Eval(in)) == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestSharedEmpty(t *testing.T) {
	b := circuit.NewBuilder(1)
	if out := SumBitsShared(b, Rep{}); len(out.Terms) != 0 || b.Size() != 0 {
		t.Error("empty shared sum should be empty")
	}
}

// Depth stays 2.
func TestSharedDepth(t *testing.T) {
	b := circuit.NewBuilder(6)
	rep := Rep{}
	for i := 0; i < 6; i++ {
		rep.Terms = append(rep.Terms, Term{Wire: b.Input(i), Weight: int64(i*3 + 1)})
		rep.Max += int64(i*3 + 1)
	}
	SumBitsShared(b, rep)
	if d := b.Build().Depth(); d != 2 {
		t.Errorf("shared depth = %d, want 2", d)
	}
}
