package arith

import (
	"repro/internal/bitio"
	"repro/internal/circuit"
)

// Signed represents an integer x as x = Pos − Neg with Pos, Neg >= 0,
// the paper's (x⁺, x⁻) convention ("Negative numbers", Section 3). The
// representation is not canonical: Pos and Neg may both be nonzero.
type Signed struct {
	Pos Rep
	Neg Rep
}

// SignedFromRep wraps a nonnegative representation as a signed value.
func SignedFromRep(r Rep) Signed { return Signed{Pos: r} }

// Value evaluates the signed value under a wire assignment (host-side).
func (s Signed) Value(vals []bool) int64 {
	return s.Pos.Value(vals) - s.Neg.Value(vals)
}

// MaxMagnitude returns a bound on |value|.
func (s Signed) MaxMagnitude() int64 {
	return bitio.Max64(s.Pos.Max, s.Neg.Max)
}

// ScaledSigned is one addend of a signed linear combination: Coeff·X.
type ScaledSigned struct {
	X     Signed
	Coeff int64
}

// SignedCombine forms the signed linear combination Σ coeff_i·x_i without
// adding any gates: positive-coefficient terms contribute (Pos→Pos,
// Neg→Neg), negative-coefficient terms contribute crossed, exactly as the
// paper's s⁺/s⁻ split prescribes. Zero coefficients are skipped.
//
// The result is assembled in one pass with exact preallocation — this
// function runs once per circuit entry over thousands of addends, so
// incremental concatenation would be quadratic.
func SignedCombine(terms []ScaledSigned) Signed {
	var posN, negN int
	for _, t := range terms {
		switch {
		case t.Coeff > 0:
			posN += len(t.X.Pos.Terms)
			negN += len(t.X.Neg.Terms)
		case t.Coeff < 0:
			posN += len(t.X.Neg.Terms)
			negN += len(t.X.Pos.Terms)
		}
	}
	out := Signed{
		Pos: Rep{Terms: make([]Term, 0, posN)},
		Neg: Rep{Terms: make([]Term, 0, negN)},
	}
	appendScaled := func(dst *Rep, src Rep, c int64) {
		for _, term := range src.Terms {
			dst.Terms = append(dst.Terms, Term{Wire: term.Wire, Weight: bitio.MulCheck(term.Weight, c)})
		}
		dst.Max = bitio.AddCheck(dst.Max, bitio.MulCheck(src.Max, c))
	}
	for _, t := range terms {
		switch {
		case t.Coeff > 0:
			appendScaled(&out.Pos, t.X.Pos, t.Coeff)
			appendScaled(&out.Neg, t.X.Neg, t.Coeff)
		case t.Coeff < 0:
			appendScaled(&out.Pos, t.X.Neg, -t.Coeff)
			appendScaled(&out.Neg, t.X.Pos, -t.Coeff)
		}
	}
	return out
}

// SignedSumBits re-binarizes both halves of a signed value with two
// parallel Lemma 3.2 circuits (depth 2, applied "in parallel without
// increasing the depth of the resulting overall circuit").
func SignedSumBits(b *circuit.Builder, s Signed) Signed {
	return Signed{Pos: SumBits(b, s.Pos), Neg: SumBits(b, s.Neg)}
}

// SignedProduct2 multiplies two signed values in depth 1:
// (x⁺−x⁻)(y⁺−y⁻) = (x⁺y⁺ + x⁻y⁻) − (x⁺y⁻ + x⁻y⁺), four Lemma 3.3
// instances (the paper's constant-factor overhead for signs).
func SignedProduct2(b *circuit.Builder, x, y Signed) Signed {
	return Signed{
		Pos: Concat(Product2(b, x.Pos, y.Pos), Product2(b, x.Neg, y.Neg)),
		Neg: Concat(Product2(b, x.Pos, y.Neg), Product2(b, x.Neg, y.Pos)),
	}
}

// SignedProduct3 multiplies three signed values in depth 1: the eight
// sign combinations of Lemma 3.3's proof, four positive, four negative.
func SignedProduct3(b *circuit.Builder, x, y, z Signed) Signed {
	return Signed{
		Pos: Concat(
			Product3(b, x.Pos, y.Pos, z.Pos),
			Product3(b, x.Pos, y.Neg, z.Neg),
			Product3(b, x.Neg, y.Pos, z.Neg),
			Product3(b, x.Neg, y.Neg, z.Pos),
		),
		Neg: Concat(
			Product3(b, x.Pos, y.Pos, z.Neg),
			Product3(b, x.Pos, y.Neg, z.Pos),
			Product3(b, x.Neg, y.Pos, z.Pos),
			Product3(b, x.Neg, y.Neg, z.Neg),
		),
	}
}

// Threshold adds the final comparison gate [x >= tau] for a signed x:
// positive terms keep their weights, negative terms are negated, and tau
// becomes the gate threshold. Depth 1.
func Threshold(b *circuit.Builder, x Signed, tau int64) circuit.Wire {
	n := len(x.Pos.Terms) + len(x.Neg.Terms)
	wires := make([]circuit.Wire, 0, n)
	weights := make([]int64, 0, n)
	for _, t := range x.Pos.Terms {
		wires = append(wires, t.Wire)
		weights = append(weights, t.Weight)
	}
	for _, t := range x.Neg.Terms {
		wires = append(wires, t.Wire)
		weights = append(weights, -t.Weight)
	}
	return b.Gate(wires, weights, tau)
}

// GreaterEqual adds the single gate computing [x >= y] for two signed
// values: Σ(x⁺) − Σ(x⁻) − Σ(y⁺) + Σ(y⁻) >= 0. Depth 1.
func GreaterEqual(b *circuit.Builder, x, y Signed) circuit.Wire {
	return Threshold(b, SignedCombine([]ScaledSigned{{X: x, Coeff: 1}, {X: y, Coeff: -1}}), 0)
}

// InputSigned loads a constant-free signed input: the caller supplies
// wires holding the binary encodings of x⁺ (posBits) and x⁻ (negBits).
func InputSigned(posBits, negBits []circuit.Wire) Signed {
	return Signed{Pos: FromBits(posBits), Neg: FromBits(negBits)}
}

// EncodeSigned splits an integer into the (x⁺, x⁻) bit assignment used
// by InputSigned: x >= 0 sets posBits to the binary encoding of x,
// x < 0 sets negBits to the encoding of −x. Host-side helper for
// preparing circuit inputs.
func EncodeSigned(x int64, width int) (pos, neg []bool) {
	pos = make([]bool, width)
	neg = make([]bool, width)
	mag := x
	dst := pos
	if x < 0 {
		mag = -x
		dst = neg
	}
	if bitio.Bits(mag) > width {
		panic("arith: EncodeSigned value exceeds width")
	}
	for i := 0; i < width; i++ {
		dst[i] = mag&(1<<uint(i)) != 0
	}
	return pos, neg
}
