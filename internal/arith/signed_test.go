package arith

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
)

// signedInput builds a circuit with a signed input of the given width
// and returns the builder, the signed value, and an input assignment
// setter.
func signedInput(b *circuit.Builder, base, width int) Signed {
	pos := make([]circuit.Wire, width)
	neg := make([]circuit.Wire, width)
	for i := 0; i < width; i++ {
		pos[i] = b.Input(base + i)
		neg[i] = b.Input(base + width + i)
	}
	return InputSigned(pos, neg)
}

func TestEncodeSignedRoundTrip(t *testing.T) {
	for v := int64(-15); v <= 15; v++ {
		pos, neg := EncodeSigned(v, 4)
		var pv, nv int64
		for i := 0; i < 4; i++ {
			if pos[i] {
				pv |= 1 << uint(i)
			}
			if neg[i] {
				nv |= 1 << uint(i)
			}
		}
		if pv-nv != v {
			t.Errorf("EncodeSigned(%d) decodes to %d", v, pv-nv)
		}
		if pv != 0 && nv != 0 {
			t.Errorf("EncodeSigned(%d) set both halves", v)
		}
	}
}

func TestEncodeSignedOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("EncodeSigned(16, 4) did not panic")
		}
	}()
	EncodeSigned(16, 4)
}

// SignedCombine computes exact integer linear combinations.
func TestSignedCombineExhaustive(t *testing.T) {
	const width = 3
	coeffs := []int64{2, -3, 1}
	vals := []int64{-5, 3, -7}
	b := circuit.NewBuilder(len(vals) * 2 * width)
	xs := make([]Signed, len(vals))
	inputs := make([]bool, len(vals)*2*width)
	for i := range vals {
		xs[i] = signedInput(b, i*2*width, width)
		pos, neg := EncodeSigned(vals[i], width)
		copy(inputs[i*2*width:], pos)
		copy(inputs[i*2*width+width:], neg)
	}
	terms := make([]ScaledSigned, len(vals))
	var want int64
	for i := range vals {
		terms[i] = ScaledSigned{X: xs[i], Coeff: coeffs[i]}
		want += coeffs[i] * vals[i]
	}
	combo := SignedCombine(terms)
	c := b.Build()
	wireVals := c.Eval(inputs)
	if got := combo.Value(wireVals); got != want {
		t.Errorf("SignedCombine = %d, want %d", got, want)
	}
	if c.Size() != 0 {
		t.Errorf("SignedCombine added %d gates, want 0", c.Size())
	}
}

// SignedSumBits preserves the value and has depth 2.
func TestSignedSumBits(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 40; trial++ {
		const width = 4
		n := 1 + rng.Intn(5)
		b := circuit.NewBuilder(n * 2 * width)
		inputs := make([]bool, n*2*width)
		terms := make([]ScaledSigned, n)
		var want int64
		for i := 0; i < n; i++ {
			x := signedInput(b, i*2*width, width)
			v := rng.Int63n(31) - 15
			pos, neg := EncodeSigned(v, width)
			copy(inputs[i*2*width:], pos)
			copy(inputs[i*2*width+width:], neg)
			coeff := rng.Int63n(7) - 3
			terms[i] = ScaledSigned{X: x, Coeff: coeff}
			want += coeff * v
		}
		combined := SignedCombine(terms)
		out := SignedSumBits(b, combined)
		c := b.Build()
		wireVals := c.Eval(inputs)
		if got := out.Value(wireVals); got != want {
			t.Fatalf("trial %d: SignedSumBits = %d, want %d", trial, got, want)
		}
		if c.Depth() > 2 {
			t.Fatalf("SignedSumBits depth = %d, want <= 2", c.Depth())
		}
	}
}

// SignedProduct2/3 compute exact products of signed values.
func TestSignedProducts(t *testing.T) {
	const width = 3
	for _, vals := range [][]int64{{3, -5}, {-3, -5}, {0, 7}, {-6, 0}, {7, 7}} {
		b := circuit.NewBuilder(2 * 2 * width)
		inputs := make([]bool, 2*2*width)
		xs := make([]Signed, 2)
		for i, v := range vals {
			xs[i] = signedInput(b, i*2*width, width)
			pos, neg := EncodeSigned(v, width)
			copy(inputs[i*2*width:], pos)
			copy(inputs[i*2*width+width:], neg)
		}
		prod := SignedProduct2(b, xs[0], xs[1])
		c := b.Build()
		wv := c.Eval(inputs)
		if got := prod.Value(wv); got != vals[0]*vals[1] {
			t.Errorf("%d * %d = %d, got %d", vals[0], vals[1], vals[0]*vals[1], got)
		}
		if c.Depth() != 1 {
			t.Errorf("SignedProduct2 depth = %d", c.Depth())
		}
	}
	for _, vals := range [][]int64{{3, -5, 2}, {-1, -1, -1}, {0, 5, -5}, {7, 7, 7}} {
		b := circuit.NewBuilder(3 * 2 * width)
		inputs := make([]bool, 3*2*width)
		xs := make([]Signed, 3)
		for i, v := range vals {
			xs[i] = signedInput(b, i*2*width, width)
			pos, neg := EncodeSigned(v, width)
			copy(inputs[i*2*width:], pos)
			copy(inputs[i*2*width+width:], neg)
		}
		prod := SignedProduct3(b, xs[0], xs[1], xs[2])
		c := b.Build()
		wv := c.Eval(inputs)
		want := vals[0] * vals[1] * vals[2]
		if got := prod.Value(wv); got != want {
			t.Errorf("%v product = %d, got %d", vals, want, got)
		}
	}
}

// Threshold: [x >= tau] over the full signed range.
func TestThreshold(t *testing.T) {
	const width = 4
	for v := int64(-10); v <= 10; v++ {
		for tau := int64(-12); tau <= 12; tau += 3 {
			b := circuit.NewBuilder(2 * width)
			x := signedInput(b, 0, width)
			out := Threshold(b, x, tau)
			b.MarkOutput(out)
			pos, neg := EncodeSigned(v, width)
			inputs := append(append([]bool{}, pos...), neg...)
			c := b.Build()
			got := c.OutputValues(c.Eval(inputs))[0]
			if got != (v >= tau) {
				t.Errorf("[%d >= %d] = %v", v, tau, got)
			}
		}
	}
}

// Property: random signed pipelines (combine -> sumbits -> product ->
// threshold) agree with direct arithmetic.
func TestSignedPipelineProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const width = 3
		b := circuit.NewBuilder(4 * 2 * width)
		inputs := make([]bool, 4*2*width)
		vs := make([]int64, 4)
		xs := make([]Signed, 4)
		for i := range xs {
			xs[i] = signedInput(b, i*2*width, width)
			vs[i] = rng.Int63n(15) - 7
			pos, neg := EncodeSigned(vs[i], width)
			copy(inputs[i*2*width:], pos)
			copy(inputs[i*2*width+width:], neg)
		}
		// u = 2*x0 - x1, v = x2 + 3*x3 (rebinarized), p = u*v
		u := SignedSumBits(b, SignedCombine([]ScaledSigned{{xs[0], 2}, {xs[1], -1}}))
		w := SignedSumBits(b, SignedCombine([]ScaledSigned{{xs[2], 1}, {xs[3], 3}}))
		p := SignedProduct2(b, u, w)
		tau := rng.Int63n(41) - 20
		out := Threshold(b, p, tau)
		b.MarkOutput(out)
		c := b.Build()
		got := c.OutputValues(c.Eval(inputs))[0]
		uw := (2*vs[0] - vs[1]) * (vs[2] + 3*vs[3])
		return got == (uw >= tau)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// GreaterEqual compares two circuit-borne signed values exactly.
func TestGreaterEqual(t *testing.T) {
	const width = 4
	for x := int64(-9); x <= 9; x += 3 {
		for y := int64(-9); y <= 9; y += 2 {
			b := circuit.NewBuilder(4 * width)
			xs := signedInput(b, 0, width)
			ys := signedInput(b, 2*width, width)
			out := GreaterEqual(b, xs, ys)
			b.MarkOutput(out)
			xp, xn := EncodeSigned(x, width)
			yp, yn := EncodeSigned(y, width)
			in := append(append(append(append([]bool{}, xp...), xn...), yp...), yn...)
			c := b.Build()
			if got := c.OutputValues(c.Eval(in))[0]; got != (x >= y) {
				t.Errorf("[%d >= %d] = %v", x, y, got)
			}
			if c.Depth() != 1 {
				t.Fatalf("GreaterEqual depth %d, want 1", c.Depth())
			}
		}
	}
}

func TestMaxMagnitude(t *testing.T) {
	s := Signed{Pos: Rep{Max: 5}, Neg: Rep{Max: 9}}
	if s.MaxMagnitude() != 9 {
		t.Errorf("MaxMagnitude = %d, want 9", s.MaxMagnitude())
	}
}
