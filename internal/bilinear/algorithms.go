package bilinear

import "fmt"

// Block index helpers for T=2 coefficient vectors: row-major over
// {11, 12, 21, 22}.
const (
	b11 = 0
	b12 = 1
	b21 = 2
	b22 = 3
)

// vec2 builds a length-4 coefficient vector from (index, weight) pairs.
func vec2(pairs ...[2]int64) []int64 {
	v := make([]int64, 4)
	for _, p := range pairs {
		v[p[0]] = p[1]
	}
	return v
}

// Strassen returns Strassen's algorithm exactly as written in Figure 1
// of the paper:
//
//	M1 = A11(B12 − B22)         C11 = M3 + M4 − M5 + M7
//	M2 = (A21 + A22)B11         C12 = M1 + M5
//	M3 = (A11 + A22)(B11 + B22) C21 = M2 + M4
//	M4 = A22(B21 − B11)         C22 = M1 − M2 + M3 + M6
//	M5 = (A11 + A12)B22
//	M6 = (A21 − A11)(B11 + B12)
//	M7 = (A12 − A22)(B21 + B22)
func Strassen() *Algorithm {
	return &Algorithm{
		Name: "strassen",
		T:    2,
		R:    7,
		A: [][]int64{
			vec2([2]int64{b11, 1}),                    // M1: A11
			vec2([2]int64{b21, 1}, [2]int64{b22, 1}),  // M2: A21+A22
			vec2([2]int64{b11, 1}, [2]int64{b22, 1}),  // M3: A11+A22
			vec2([2]int64{b22, 1}),                    // M4: A22
			vec2([2]int64{b11, 1}, [2]int64{b12, 1}),  // M5: A11+A12
			vec2([2]int64{b21, 1}, [2]int64{b11, -1}), // M6: A21−A11
			vec2([2]int64{b12, 1}, [2]int64{b22, -1}), // M7: A12−A22
		},
		B: [][]int64{
			vec2([2]int64{b12, 1}, [2]int64{b22, -1}), // M1: B12−B22
			vec2([2]int64{b11, 1}),                    // M2: B11
			vec2([2]int64{b11, 1}, [2]int64{b22, 1}),  // M3: B11+B22
			vec2([2]int64{b21, 1}, [2]int64{b11, -1}), // M4: B21−B11
			vec2([2]int64{b22, 1}),                    // M5: B22
			vec2([2]int64{b11, 1}, [2]int64{b12, 1}),  // M6: B11+B12
			vec2([2]int64{b21, 1}, [2]int64{b22, 1}),  // M7: B21+B22
		},
		C: [][]int64{
			{0, 0, 1, 1, -1, 0, 1}, // C11 = M3+M4−M5+M7
			{1, 0, 0, 0, 1, 0, 0},  // C12 = M1+M5
			{0, 1, 0, 1, 0, 0, 0},  // C21 = M2+M4
			{1, -1, 1, 0, 0, 1, 0}, // C22 = M1−M2+M3+M6
		},
	}
}

// Winograd returns Winograd's 7-multiplication variant of Strassen's
// algorithm. It performs fewer additions than Strassen's when run as a
// conventional recursive algorithm (15 vs 18), but its bilinear forms are
// denser: s_A = s_B = s_C = 14 versus Strassen's 12, so it yields a
// *worse* γ for the threshold-circuit construction — a concrete instance
// of the paper's observation that its results "exploit different features
// of fast matrix multiplication techniques than those traditionally
// used".
//
//	P1 = A11·B11                      C11 = P1 + P2
//	P2 = A12·B21                      C12 = P1 + P3 + P5 + P6
//	P3 = (A11+A12−A21−A22)·B22        C21 = P1 − P4 + P6 + P7
//	P4 = A22·(B11−B12−B21+B22)        C22 = P1 + P5 + P6 + P7
//	P5 = (A21+A22)·(B12−B11)
//	P6 = (A21+A22−A11)·(B11−B12+B22)
//	P7 = (A11−A21)·(B22−B12)
func Winograd() *Algorithm {
	return &Algorithm{
		Name: "winograd",
		T:    2,
		R:    7,
		A: [][]int64{
			vec2([2]int64{b11, 1}), // P1: A11
			vec2([2]int64{b12, 1}), // P2: A12
			vec2([2]int64{b11, 1}, [2]int64{b12, 1}, [2]int64{b21, -1}, [2]int64{b22, -1}), // P3
			vec2([2]int64{b22, 1}),                                      // P4: A22
			vec2([2]int64{b21, 1}, [2]int64{b22, 1}),                    // P5: A21+A22
			vec2([2]int64{b21, 1}, [2]int64{b22, 1}, [2]int64{b11, -1}), // P6
			vec2([2]int64{b11, 1}, [2]int64{b21, -1}),                   // P7: A11−A21
		},
		B: [][]int64{
			vec2([2]int64{b11, 1}), // P1: B11
			vec2([2]int64{b21, 1}), // P2: B21
			vec2([2]int64{b22, 1}), // P3: B22
			vec2([2]int64{b11, 1}, [2]int64{b12, -1}, [2]int64{b21, -1}, [2]int64{b22, 1}), // P4
			vec2([2]int64{b12, 1}, [2]int64{b11, -1}),                                      // P5: B12−B11
			vec2([2]int64{b11, 1}, [2]int64{b12, -1}, [2]int64{b22, 1}),                    // P6
			vec2([2]int64{b22, 1}, [2]int64{b12, -1}),                                      // P7: B22−B12
		},
		C: [][]int64{
			{1, 1, 0, 0, 0, 0, 0},  // C11 = P1+P2
			{1, 0, 1, 0, 1, 1, 0},  // C12 = P1+P3+P5+P6
			{1, 0, 0, -1, 0, 1, 1}, // C21 = P1−P4+P6+P7
			{1, 0, 0, 0, 1, 1, 1},  // C22 = P1+P5+P6+P7
		},
	}
}

// Naive returns the definitional 8-multiplication algorithm for 2x2
// blocks: M_{(x,j,y)} = A_xj · B_jy, C_xy = Σ_j M_{(x,j,y)}. Its ω is 3;
// it exists as a correctness baseline and as the degenerate case γ = 0.
func Naive() *Algorithm {
	alg := &Algorithm{Name: "naive2", T: 2, R: 8}
	for x := 0; x < 2; x++ {
		for j := 0; j < 2; j++ {
			for y := 0; y < 2; y++ {
				a := make([]int64, 4)
				b := make([]int64, 4)
				a[x*2+j] = 1
				b[j*2+y] = 1
				alg.A = append(alg.A, a)
				alg.B = append(alg.B, b)
			}
		}
	}
	for x := 0; x < 2; x++ {
		for y := 0; y < 2; y++ {
			c := make([]int64, 8)
			for j := 0; j < 2; j++ {
				// product index for (x, j, y) in the loops above
				c[x*4+j*2+y] = 1
			}
			alg.C = append(alg.C, c)
		}
	}
	return alg
}

// Compose returns the tensor product of two bilinear algorithms: a
// T1·T2 x T1·T2 algorithm with r1·r2 products. Composing Strassen with
// itself yields the T=4, r=49 algorithm corresponding to taking two
// Strassen recursion levels at once; the paper's framework treats it as a
// distinct base algorithm with its own sparsity (s_A = 144, α = 49/144,
// β = 9, identical γ — a useful self-consistency check).
func Compose(a1, a2 *Algorithm) *Algorithm {
	T := a1.T * a2.T
	R := a1.R * a2.R
	out := &Algorithm{
		Name: fmt.Sprintf("%s⊗%s", a1.Name, a2.Name),
		T:    T,
		R:    R,
	}
	// Composite block index: (i1, i2) x (j1, j2) -> (i1*T2+i2)*T + (j1*T2+j2).
	blockIndex := func(i1, j1, i2, j2 int) int {
		return (i1*a2.T+i2)*T + (j1*a2.T + j2)
	}
	for k1 := 0; k1 < a1.R; k1++ {
		for k2 := 0; k2 < a2.R; k2++ {
			av := make([]int64, T*T)
			bv := make([]int64, T*T)
			for i1 := 0; i1 < a1.T; i1++ {
				for j1 := 0; j1 < a1.T; j1++ {
					w1a := a1.A[k1][i1*a1.T+j1]
					w1b := a1.B[k1][i1*a1.T+j1]
					for i2 := 0; i2 < a2.T; i2++ {
						for j2 := 0; j2 < a2.T; j2++ {
							idx := blockIndex(i1, j1, i2, j2)
							if w1a != 0 {
								av[idx] = w1a * a2.A[k2][i2*a2.T+j2]
							}
							if w1b != 0 {
								bv[idx] = w1b * a2.B[k2][i2*a2.T+j2]
							}
						}
					}
				}
			}
			out.A = append(out.A, av)
			out.B = append(out.B, bv)
		}
	}
	for x1 := 0; x1 < a1.T; x1++ {
		for y1 := 0; y1 < a1.T; y1++ {
			for x2 := 0; x2 < a2.T; x2++ {
				for y2 := 0; y2 < a2.T; y2++ {
					cv := make([]int64, R)
					for k1 := 0; k1 < a1.R; k1++ {
						w1 := a1.C[x1*a1.T+y1][k1]
						if w1 == 0 {
							continue
						}
						for k2 := 0; k2 < a2.R; k2++ {
							cv[k1*a2.R+k2] = w1 * a2.C[x2*a2.T+y2][k2]
						}
					}
					out.C = append(out.C, cv)
				}
			}
		}
	}
	// Reorder C to row-major over composite (x, y): the loop above emits
	// in (x1, y1, x2, y2) order but composite row is x1*T2+x2 and column
	// y1*T2+y2, so re-index.
	ordered := make([][]int64, T*T)
	idx := 0
	for x1 := 0; x1 < a1.T; x1++ {
		for y1 := 0; y1 < a1.T; y1++ {
			for x2 := 0; x2 < a2.T; x2++ {
				for y2 := 0; y2 < a2.T; y2++ {
					x := x1*a2.T + x2
					y := y1*a2.T + y2
					ordered[x*T+y] = out.C[idx]
					idx++
				}
			}
		}
	}
	out.C = ordered
	return out
}

// Registry returns the built-in verified algorithms keyed by name,
// including the composed Strassen⊗Strassen (T=4, r=49).
func Registry() map[string]*Algorithm {
	s := Strassen()
	return map[string]*Algorithm{
		"strassen":  s,
		"winograd":  Winograd(),
		"naive2":    Naive(),
		"strassen2": renamed(Compose(s, Strassen()), "strassen2"),
	}
}

func renamed(alg *Algorithm, name string) *Algorithm {
	alg.Name = name
	return alg
}

// Lookup returns a registered algorithm by name.
func Lookup(name string) (*Algorithm, error) {
	alg, ok := Registry()[name]
	if !ok {
		return nil, fmt.Errorf("bilinear: unknown algorithm %q", name)
	}
	return alg, nil
}
