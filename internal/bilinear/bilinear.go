// Package bilinear represents fast matrix multiplication algorithms in
// the form the paper assumes (Section 2.3): an algorithm that multiplies
// two T x T matrices using r scalar multiplications
//
//	M_k = (Σ_{ij} u_k[i,j] A_ij) * (Σ_{pq} v_k[p,q] B_pq),   1 <= k <= r
//	C_xy = Σ_k c_xy[k] M_k,                                   x,y in [T]
//
// together with the sparsity parameters of Definition 2.1 and the derived
// constants ω, α, β, γ, c of Section 4.3 that drive the threshold-circuit
// constructions.
//
// The package ships verified descriptions of Strassen's algorithm
// (Figure 1 of the paper), Winograd's 7-multiplication variant, the naive
// 8-multiplication algorithm, and arbitrary tensor compositions of these
// (e.g. Strassen⊗Strassen with T=4, r=49). Every algorithm can be checked
// against the exact bilinear identity with Verify.
package bilinear

import (
	"fmt"
	"math"

	"repro/internal/bitio"
)

// Algorithm is a bilinear fast matrix multiplication algorithm over
// T x T matrices using R scalar products.
//
// Coefficient layout: A[k] and B[k] are length T*T vectors over the block
// grid in row-major order; C[x*T+y] is a length-R vector giving the
// weights of M_1..M_R in output block (x, y).
type Algorithm struct {
	Name string    `json:"name"`
	T    int       `json:"t"`
	R    int       `json:"r"`
	A    [][]int64 `json:"a"` // R x T²: A-side linear forms
	B    [][]int64 `json:"b"` // R x T²: B-side linear forms
	C    [][]int64 `json:"c"` // T² x R: output combinations
}

// Validate checks structural well-formedness (shapes only, not the
// bilinear identity; see Verify for that).
func (alg *Algorithm) Validate() error {
	if alg.T < 2 || alg.T > 64 {
		return fmt.Errorf("bilinear: %s: T = %d outside [2, 64]", alg.Name, alg.T)
	}
	if alg.R < 1 || alg.R > int(bitio.Pow(alg.T, 3)) {
		// More than T³ products is never useful (the naive algorithm
		// achieves T³), and the cap bounds Verify's T⁶·R work on
		// untrusted inputs.
		return fmt.Errorf("bilinear: %s: R = %d outside [1, T³]", alg.Name, alg.R)
	}
	t2 := alg.T * alg.T
	if len(alg.A) != alg.R || len(alg.B) != alg.R {
		return fmt.Errorf("bilinear: %s: want %d A/B forms, have %d/%d", alg.Name, alg.R, len(alg.A), len(alg.B))
	}
	for k := 0; k < alg.R; k++ {
		if len(alg.A[k]) != t2 || len(alg.B[k]) != t2 {
			return fmt.Errorf("bilinear: %s: form %d has wrong width", alg.Name, k)
		}
	}
	if len(alg.C) != t2 {
		return fmt.Errorf("bilinear: %s: want %d C expressions, have %d", alg.Name, t2, len(alg.C))
	}
	for e := 0; e < t2; e++ {
		if len(alg.C[e]) != alg.R {
			return fmt.Errorf("bilinear: %s: C expression %d has width %d, want %d", alg.Name, e, len(alg.C[e]), alg.R)
		}
	}
	return nil
}

// Verify checks the exact bilinear identity: for all block indices,
//
//	Σ_k C[x,y][k] * A[k][i,j] * B[k][p,q]  ==  [j==p && x==i && y==q].
//
// This is verification "by substitution and expansion" as Figure 1's
// caption describes, done exactly over the integers.
func (alg *Algorithm) Verify() error {
	if err := alg.Validate(); err != nil {
		return err
	}
	T := alg.T
	for x := 0; x < T; x++ {
		for y := 0; y < T; y++ {
			for i := 0; i < T; i++ {
				for j := 0; j < T; j++ {
					for p := 0; p < T; p++ {
						for q := 0; q < T; q++ {
							var sum int64
							for k := 0; k < alg.R; k++ {
								sum += alg.C[x*T+y][k] * alg.A[k][i*T+j] * alg.B[k][p*T+q]
							}
							var want int64
							if j == p && x == i && y == q {
								want = 1
							}
							if sum != want {
								return fmt.Errorf("bilinear: %s: identity fails at C[%d,%d] term A[%d,%d]B[%d,%d]: got %d want %d",
									alg.Name, x, y, i, j, p, q, sum, want)
							}
						}
					}
				}
			}
		}
	}
	return nil
}

// MaxWeight returns the largest absolute coefficient appearing anywhere
// in the algorithm. Strassen/Winograd/naive use only {-1,0,1}; tensor
// compositions of them do too. The circuit constructions accept any
// integer weights (the w_i of Lemma 3.2).
func (alg *Algorithm) MaxWeight() int64 {
	var mx int64
	scan := func(rows [][]int64) {
		for _, row := range rows {
			for _, w := range row {
				if a := bitio.Abs(w); a > mx {
					mx = a
				}
			}
		}
	}
	scan(alg.A)
	scan(alg.B)
	scan(alg.C)
	return mx
}

// Params holds Definition 2.1's sparsity measures and the Section 4.3
// derived constants for one algorithm.
type Params struct {
	T int // base matrix dimension
	R int // number of scalar multiplications

	Omega float64 // ω = log_T r, exponent of the arithmetic operation count

	SA int // s_A = Σ_k a_k, a_k = #distinct A-blocks in M_k
	SB int // s_B = Σ_k b_k
	SC int // s_C = Σ_k c_k, c_k = #C-expressions containing M_k
	S  int // s = max{s_A, s_B, s_C} (Definition 2.1)

	// A/B-side tree constants (Section 4.3): α = r/s_A, β = s_A/T².
	Alpha float64
	Beta  float64
	// C-side (T_AB) constants (Section 4.4): α_C = r/s_C, β_C = s_C/T².
	AlphaC float64
	BetaC  float64

	// γ = log_β(1/α) with 0 < γ < 1 whenever r > T² (αβ > 1). For
	// Strassen γ ≈ 0.491. GammaC is the analogous C-side value.
	Gamma  float64
	GammaC float64

	// c = log_T(αβ)/(1−γ), the multiplier of γ^d in the gate-count
	// exponent of Theorems 4.5 and 4.9. For Strassen c ≈ 1.585.
	CConst float64
}

// SparsityA returns a_k for each product: the number of distinct blocks
// of A appearing in M_k.
func (alg *Algorithm) SparsityA() []int {
	return countNonzero(alg.A)
}

// SparsityB returns b_k for each product.
func (alg *Algorithm) SparsityB() []int {
	return countNonzero(alg.B)
}

// SparsityC returns c_k for each product: the number of C expressions in
// which M_k appears with a nonzero weight.
func (alg *Algorithm) SparsityC() []int {
	out := make([]int, alg.R)
	for _, expr := range alg.C {
		for k, w := range expr {
			if w != 0 {
				out[k]++
			}
		}
	}
	return out
}

// CPrime returns c'_j for each of the T² output expressions: the number
// of M terms appearing in expression j (appendix, proof of Lemma 4.6).
// Σ_j c'_j = s_C.
func (alg *Algorithm) CPrime() []int {
	return countNonzero(alg.C)
}

func countNonzero(rows [][]int64) []int {
	out := make([]int, len(rows))
	for i, row := range rows {
		for _, w := range row {
			if w != 0 {
				out[i]++
			}
		}
	}
	return out
}

// Params computes all sparsity measures and derived constants.
func (alg *Algorithm) Params() Params {
	sum := func(xs []int) int {
		s := 0
		for _, x := range xs {
			s += x
		}
		return s
	}
	sa := sum(alg.SparsityA())
	sb := sum(alg.SparsityB())
	sc := sum(alg.SparsityC())
	s := sa
	if sb > s {
		s = sb
	}
	if sc > s {
		s = sc
	}
	t2 := float64(alg.T * alg.T)
	p := Params{
		T:     alg.T,
		R:     alg.R,
		Omega: math.Log(float64(alg.R)) / math.Log(float64(alg.T)),
		SA:    sa, SB: sb, SC: sc, S: s,
		Alpha:  float64(alg.R) / float64(sa),
		Beta:   float64(sa) / t2,
		AlphaC: float64(alg.R) / float64(sc),
		BetaC:  float64(sc) / t2,
	}
	p.Gamma = gamma(p.Alpha, p.Beta)
	p.GammaC = gamma(p.AlphaC, p.BetaC)
	if p.Gamma > 0 && p.Gamma < 1 {
		p.CConst = math.Log(p.Alpha*p.Beta) / math.Log(float64(alg.T)) / (1 - p.Gamma)
	}
	return p
}

// gamma computes log_β(1/α), clamped to [0, 1). When α = 1 (every product
// touches one block per level, as in the naive algorithm) the schedule
// degenerates and γ = 0.
func gamma(alpha, beta float64) float64 {
	if beta <= 1 || alpha >= 1 {
		return 0
	}
	g := math.Log(1/alpha) / math.Log(beta)
	if g < 0 {
		return 0
	}
	if g >= 1 {
		return math.Nextafter(1, 0)
	}
	return g
}

// Subcubic reports whether the algorithm is genuinely fast in the
// paper's sense: r > T², equivalently αβ > 1, equivalently ω < 3 ... no:
// r > T² means ω > 2; fast means r < T³. Subcubic returns r < T³ (ω < 3)
// and Nontrivial returns r > T² (the condition Lemma 4.3's analysis
// requires, see the remark before Lemma 4.3).
func (alg *Algorithm) Subcubic() bool {
	return int64(alg.R) < bitio.Pow(alg.T, 3)
}

// Nontrivial reports r > T², the assumption under which γ ∈ (0,1) and
// the level-selection theorems are stated.
func (alg *Algorithm) Nontrivial() bool {
	return int64(alg.R) > bitio.Pow(alg.T, 2)
}
