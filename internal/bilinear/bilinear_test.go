package bilinear

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

// Every registered algorithm must satisfy the exact bilinear identity —
// this is the machine-checked version of Figure 1's caption: "One can
// verify by substitution and expansion that the entries of C are set to
// the proper expressions involving entries of A and B."
func TestRegistryVerifies(t *testing.T) {
	for name, alg := range Registry() {
		if err := alg.Verify(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	alg := Strassen()
	alg.C[0][0] = 1 // corrupt C11
	if err := alg.Verify(); err == nil {
		t.Error("Verify accepted a corrupted Strassen")
	}
}

func TestValidateCatchesShapeErrors(t *testing.T) {
	cases := []func(*Algorithm){
		func(a *Algorithm) { a.T = 1 },
		func(a *Algorithm) { a.R = 0 },
		func(a *Algorithm) { a.T = 1000 },
		func(a *Algorithm) { a.R = 9 }, // > T³ = 8
	}
	cases = append(cases, []func(*Algorithm){
		func(a *Algorithm) { a.A = a.A[:3] },
		func(a *Algorithm) { a.B[2] = a.B[2][:1] },
		func(a *Algorithm) { a.C = a.C[:2] },
		func(a *Algorithm) { a.C[1] = a.C[1][:3] },
	}...)
	for i, corrupt := range cases {
		alg := Strassen()
		corrupt(alg)
		if err := alg.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted malformed algorithm", i)
		}
	}
}

// Strassen sparsity from the paper: s_A = 12, α = 7/12, β = 3,
// γ ≈ 0.491, c ≈ 1.585 (Sections 4.3 and the Theorem 4.5 proof).
func TestStrassenParams(t *testing.T) {
	p := Strassen().Params()
	if p.SA != 12 || p.SB != 12 || p.SC != 12 || p.S != 12 {
		t.Errorf("Strassen sparsity = A:%d B:%d C:%d, want 12 each", p.SA, p.SB, p.SC)
	}
	if math.Abs(p.Alpha-7.0/12.0) > 1e-12 {
		t.Errorf("alpha = %v, want 7/12", p.Alpha)
	}
	if math.Abs(p.Beta-3) > 1e-12 {
		t.Errorf("beta = %v, want 3", p.Beta)
	}
	if math.Abs(p.Gamma-0.4906) > 5e-4 {
		t.Errorf("gamma = %v, want ≈0.491", p.Gamma)
	}
	if math.Abs(p.CConst-1.585) > 5e-3 {
		t.Errorf("c = %v, want ≈1.585", p.CConst)
	}
	if math.Abs(p.Omega-math.Log2(7)) > 1e-12 {
		t.Errorf("omega = %v, want log2 7", p.Omega)
	}
}

// Strassen's c'_j values from the appendix: c'_1 = 4, c'_2 = 2,
// c'_3 = 2, c'_4 = 4, summing to s_C = 12.
func TestStrassenCPrime(t *testing.T) {
	cp := Strassen().CPrime()
	want := []int{4, 2, 2, 4}
	for i := range want {
		if cp[i] != want[i] {
			t.Errorf("c'_%d = %d, want %d", i+1, cp[i], want[i])
		}
	}
}

// Winograd's variant is denser: s = 14 > 12, hence worse γ — the
// circuit-relevant cost differs from the classic addition count.
func TestWinogradSparsity(t *testing.T) {
	p := Winograd().Params()
	if p.SA != 14 || p.SB != 14 || p.SC != 14 {
		t.Errorf("Winograd sparsity = A:%d B:%d C:%d, want 14 each", p.SA, p.SB, p.SC)
	}
	sp := Strassen().Params()
	if p.Gamma <= sp.Gamma {
		t.Errorf("Winograd gamma %v should exceed Strassen gamma %v", p.Gamma, sp.Gamma)
	}
}

func TestNaiveParams(t *testing.T) {
	p := Naive().Params()
	if p.SA != 8 || p.SB != 8 || p.SC != 8 {
		t.Errorf("naive sparsity = %d/%d/%d, want 8", p.SA, p.SB, p.SC)
	}
	if p.Gamma != 0 {
		t.Errorf("naive gamma = %v, want 0", p.Gamma)
	}
	if math.Abs(p.Omega-3) > 1e-12 {
		t.Errorf("naive omega = %v, want 3", p.Omega)
	}
	if Naive().Subcubic() {
		t.Error("naive should not be subcubic")
	}
	if !Strassen().Subcubic() || !Strassen().Nontrivial() {
		t.Error("strassen should be subcubic and nontrivial")
	}
}

// Composition: Strassen⊗Strassen has T=4, r=49, s_A = 12² = 144 and the
// same γ as Strassen (sparsity is multiplicative under tensoring, and
// log_{β²}(1/α²) = log_β(1/α)).
func TestComposeParams(t *testing.T) {
	c := Compose(Strassen(), Strassen())
	if c.T != 4 || c.R != 49 {
		t.Fatalf("composed T=%d r=%d, want 4, 49", c.T, c.R)
	}
	p := c.Params()
	if p.SA != 144 || p.SB != 144 || p.SC != 144 {
		t.Errorf("composed sparsity = %d/%d/%d, want 144", p.SA, p.SB, p.SC)
	}
	sp := Strassen().Params()
	if math.Abs(p.Gamma-sp.Gamma) > 1e-9 {
		t.Errorf("composed gamma %v != strassen gamma %v", p.Gamma, sp.Gamma)
	}
	if math.Abs(p.Omega-sp.Omega) > 1e-9 {
		t.Errorf("composed omega %v != strassen omega %v", p.Omega, sp.Omega)
	}
}

func TestComposeVerifies(t *testing.T) {
	// Heterogeneous composition exercises the index arithmetic.
	cases := []*Algorithm{
		Compose(Strassen(), Naive()),
		Compose(Naive(), Strassen()),
		Compose(Winograd(), Strassen()),
	}
	for _, alg := range cases {
		if err := alg.Verify(); err != nil {
			t.Errorf("%s: %v", alg.Name, err)
		}
	}
}

// Executor correctness: every algorithm, every cutoff, vs naive product.
func TestExecutorMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for name, alg := range Registry() {
		for _, n := range []int{alg.T, alg.T * alg.T} {
			for _, cutoff := range []int{1, 2} {
				e := NewExecutor(alg, cutoff)
				for trial := 0; trial < 10; trial++ {
					a := matrix.Random(rng, n, n, -9, 9)
					b := matrix.Random(rng, n, n, -9, 9)
					got, err := e.Mul(a, b)
					if err != nil {
						t.Fatalf("%s n=%d: %v", name, n, err)
					}
					if !got.Equal(a.Mul(b)) {
						t.Fatalf("%s n=%d cutoff=%d: product mismatch", name, n, cutoff)
					}
				}
			}
		}
	}
}

func TestExecutorLargerPower(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	e := NewExecutor(Strassen(), 1)
	a := matrix.Random(rng, 16, 16, -5, 5)
	b := matrix.Random(rng, 16, 16, -5, 5)
	got, err := e.Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(a.Mul(b)) {
		t.Fatal("16x16 Strassen product mismatch")
	}
}

// Property-based: Strassen executor agrees with naive on random
// matrices of random power-of-two sizes.
func TestExecutorProperty(t *testing.T) {
	e := NewExecutor(Strassen(), 1)
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(3)) // 2, 4, 8
		a := matrix.Random(rng, n, n, -20, 20)
		b := matrix.Random(rng, n, n, -20, 20)
		got, err := e.Mul(a, b)
		return err == nil && got.Equal(a.Mul(b))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Scalar multiplication counts: full recursion on N = 2^l performs
// exactly 7^l base products (paper Section 2.1: 7^{log2 N} = N^{log2 7}).
func TestScalarMulCount(t *testing.T) {
	e := NewExecutor(Strassen(), 1)
	rng := rand.New(rand.NewSource(2))
	a := matrix.Random(rng, 8, 8, -3, 3)
	b := matrix.Random(rng, 8, 8, -3, 3)
	if _, err := e.Mul(a, b); err != nil {
		t.Fatal(err)
	}
	if e.Ops().ScalarMuls != 343 {
		t.Errorf("8x8 Strassen scalar muls = %d, want 7^3 = 343", e.Ops().ScalarMuls)
	}
	if ScalarMulsFor(Strassen(), 8) != 343 {
		t.Error("ScalarMulsFor wrong")
	}
	// Strassen does fewer multiplications than naive even at 2x2.
	e.Reset()
	a2 := matrix.Random(rng, 2, 2, -3, 3)
	b2 := matrix.Random(rng, 2, 2, -3, 3)
	if _, err := e.Mul(a2, b2); err != nil {
		t.Fatal(err)
	}
	if e.Ops().ScalarMuls != 7 {
		t.Errorf("2x2 scalar muls = %d, want 7", e.Ops().ScalarMuls)
	}
	if e.Ops().ScalarAdds != 18 {
		t.Errorf("2x2 scalar adds = %d, want 18 (the paper's 18·(N/2)² term)", e.Ops().ScalarAdds)
	}
}

func TestExecutorErrors(t *testing.T) {
	e := NewExecutor(Strassen(), 1)
	if _, err := e.Mul(matrix.New(2, 3), matrix.New(3, 2)); err == nil {
		t.Error("non-square inputs accepted")
	}
	if _, err := e.Mul(matrix.New(3, 3), matrix.New(3, 3)); err == nil {
		t.Error("non-power-of-T dimension accepted")
	}
}

func TestMulPadded(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	e := NewExecutor(Strassen(), 1)
	for _, n := range []int{1, 3, 5, 6, 7} {
		a := matrix.Random(rng, n, n, -9, 9)
		b := matrix.Random(rng, n, n, -9, 9)
		got, err := e.MulPadded(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(a.Mul(b)) {
			t.Errorf("padded product mismatch at n=%d", n)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	data, err := Encode(Strassen())
	if err != nil {
		t.Fatal(err)
	}
	alg, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if alg.T != 2 || alg.R != 7 {
		t.Error("round trip lost shape")
	}
	if err := alg.Verify(); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsBadAlgorithms(t *testing.T) {
	if _, err := Decode([]byte(`{"name":"x"`)); err == nil {
		t.Error("syntactically invalid JSON accepted")
	}
	bad := Strassen()
	bad.C[0][0] = 9 // breaks the identity but not the shape
	data, err := Encode(bad)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(data); err == nil {
		t.Error("Decode accepted an algorithm violating the bilinear identity")
	}
}

func TestLookup(t *testing.T) {
	if _, err := Lookup("strassen"); err != nil {
		t.Error(err)
	}
	if _, err := Lookup("does-not-exist"); err == nil {
		t.Error("Lookup accepted unknown name")
	}
}

func TestMaxWeight(t *testing.T) {
	if Strassen().MaxWeight() != 1 {
		t.Errorf("Strassen max weight = %d, want 1", Strassen().MaxWeight())
	}
}
