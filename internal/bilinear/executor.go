package bilinear

import (
	"fmt"

	"repro/internal/bitio"
	"repro/internal/matrix"
)

// OpCount tallies the arithmetic work of a conventional (non-circuit)
// execution of a fast matrix multiplication algorithm. The paper's
// recurrence for Strassen is T(N) = 7·T(N/2) + 18·(N/2)², giving
// O(N^{log2 7}) scalar multiplications and additions.
type OpCount struct {
	ScalarMuls int64 // base-case scalar multiplications (r^l when cutoff=1)
	ScalarAdds int64 // scalar additions/subtractions in linear passes
}

// Total returns the total arithmetic operation count.
func (o OpCount) Total() int64 { return o.ScalarMuls + o.ScalarAdds }

// Executor runs a bilinear algorithm as a conventional recursive
// divide-and-conquer matrix multiplication, the baseline the circuits
// are compared against.
type Executor struct {
	Alg *Algorithm
	// Cutoff is the dimension at or below which the recursion switches
	// to the naive cubic product. Cutoff 1 performs the full r^l scalar
	// products. Values below 1 are treated as 1.
	Cutoff int

	ops OpCount
}

// NewExecutor returns an executor for alg with the given base-case
// cutoff.
func NewExecutor(alg *Algorithm, cutoff int) *Executor {
	if cutoff < 1 {
		cutoff = 1
	}
	return &Executor{Alg: alg, Cutoff: cutoff}
}

// Ops returns the operation counts accumulated since the last Reset.
func (e *Executor) Ops() OpCount { return e.ops }

// Reset clears the accumulated operation counts.
func (e *Executor) Reset() { e.ops = OpCount{} }

// Mul multiplies two n x n matrices where n must be a power of
// e.Alg.T (use matrix.Pad otherwise). It returns the exact product.
func (e *Executor) Mul(a, b *matrix.Matrix) (*matrix.Matrix, error) {
	if a.Rows != a.Cols || b.Rows != b.Cols || a.Rows != b.Rows {
		return nil, fmt.Errorf("bilinear: Mul requires equal square matrices, got %dx%d and %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols)
	}
	n := a.Rows
	if n == 0 {
		return matrix.New(0, 0), nil
	}
	if !bitio.IsPow(e.Alg.T, n) && n != 1 {
		return nil, fmt.Errorf("bilinear: dimension %d is not a power of T=%d (pad first)", n, e.Alg.T)
	}
	return e.mul(a, b), nil
}

func (e *Executor) mul(a, b *matrix.Matrix) *matrix.Matrix {
	n := a.Rows
	if n <= e.Cutoff {
		e.ops.ScalarMuls += int64(n) * int64(n) * int64(n)
		e.ops.ScalarAdds += int64(n) * int64(n) * int64(n-1)
		return a.Mul(b)
	}
	T := e.Alg.T
	half := n / T

	// Extract blocks once.
	ablocks := make([]*matrix.Matrix, T*T)
	bblocks := make([]*matrix.Matrix, T*T)
	for i := 0; i < T; i++ {
		for j := 0; j < T; j++ {
			ablocks[i*T+j] = a.Block(i, j, half)
			bblocks[i*T+j] = b.Block(i, j, half)
		}
	}

	// Compute the r products of weighted block sums.
	products := make([]*matrix.Matrix, e.Alg.R)
	for k := 0; k < e.Alg.R; k++ {
		as := e.combine(ablocks, e.Alg.A[k], half)
		bs := e.combine(bblocks, e.Alg.B[k], half)
		products[k] = e.mul(as, bs)
	}

	// Combine products into output blocks.
	out := matrix.New(n, n)
	for x := 0; x < T; x++ {
		for y := 0; y < T; y++ {
			out.SetBlock(x, y, e.combine(products, e.Alg.C[x*T+y], half))
		}
	}
	return out
}

// combine returns the weighted sum of blocks with the given coefficient
// vector, counting scalar additions.
func (e *Executor) combine(blocks []*matrix.Matrix, coef []int64, size int) *matrix.Matrix {
	sum := matrix.New(size, size)
	terms := 0
	for i, w := range coef {
		if w == 0 {
			continue
		}
		sum.AddInPlace(blocks[i], w)
		terms++
	}
	if terms > 1 {
		e.ops.ScalarAdds += int64(terms-1) * int64(size) * int64(size)
	}
	return sum
}

// MulPadded multiplies two equal-size square matrices of arbitrary
// dimension by padding up to the next power of T and shrinking the
// result.
func (e *Executor) MulPadded(a, b *matrix.Matrix) (*matrix.Matrix, error) {
	if a.Rows != a.Cols || b.Rows != b.Cols || a.Rows != b.Rows {
		return nil, fmt.Errorf("bilinear: MulPadded requires equal square matrices")
	}
	n := a.Rows
	if n == 0 {
		return matrix.New(0, 0), nil
	}
	target := int(bitio.Pow(e.Alg.T, bitio.CeilLog(e.Alg.T, n)))
	c, err := e.Mul(a.Pad(target), b.Pad(target))
	if err != nil {
		return nil, err
	}
	return c.Shrink(n, n), nil
}

// ScalarMulsFor returns the number of base-case scalar multiplications a
// full recursion (cutoff 1) performs on N = T^l: r^l = N^{log_T r}.
func ScalarMulsFor(alg *Algorithm, n int) int64 {
	l := bitio.Log(alg.T, n)
	return bitio.Pow(alg.R, l)
}
