package bilinear

import "testing"

// FuzzDecode: arbitrary bytes must never panic the algorithm decoder,
// and anything it accepts must satisfy the bilinear identity (Decode
// verifies by construction — this pins that the check cannot be
// bypassed by odd JSON).
func FuzzDecode(f *testing.F) {
	if data, err := Encode(Strassen()); err == nil {
		f.Add(data)
	}
	if data, err := Encode(Naive()); err == nil {
		f.Add(data)
	}
	f.Add([]byte(`{"name":"x","t":2,"r":1,"a":[[1,0,0,0]],"b":[[1,0,0,0]],"c":[[1],[0],[0],[0]]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		alg, err := Decode(data)
		if err != nil {
			return
		}
		if err := alg.Verify(); err != nil {
			t.Fatalf("Decode accepted an invalid algorithm: %v", err)
		}
	})
}
