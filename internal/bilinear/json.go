package bilinear

import (
	"encoding/json"
	"fmt"
)

// MarshalJSON-compatible persistence lives on the Algorithm struct tags;
// this file adds validated decode helpers so external algorithm files can
// be plugged into the circuit builders safely.

// Decode parses an Algorithm from JSON, validates its shape, and verifies
// the exact bilinear identity. Malformed or incorrect algorithms are
// rejected — a circuit built from a wrong algorithm would silently
// compute the wrong product.
func Decode(data []byte) (*Algorithm, error) {
	var alg Algorithm
	if err := json.Unmarshal(data, &alg); err != nil {
		return nil, fmt.Errorf("bilinear: decode: %w", err)
	}
	if err := alg.Verify(); err != nil {
		return nil, err
	}
	return &alg, nil
}

// Encode serializes an algorithm to indented JSON.
func Encode(alg *Algorithm) ([]byte, error) {
	if err := alg.Validate(); err != nil {
		return nil, err
	}
	return json.MarshalIndent(alg, "", "  ")
}
