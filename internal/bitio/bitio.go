// Package bitio provides the small integer and bit-width helpers used
// throughout the threshold-circuit constructions.
//
// The central function is Bits, the paper's bits(m) (Section 2.3): the
// minimum number of binary digits needed to write the nonnegative integer
// m, i.e. the least l with m < 2^l.
package bitio

import (
	"fmt"
	"math"
	"math/bits"
)

// Bits returns the paper's bits(m): the least l such that m < 2^l.
// Bits(0) = 0, Bits(1) = 1, Bits(2) = 2, Bits(3) = 2, Bits(4) = 3.
// It panics if m is negative, matching the paper's restriction to
// nonnegative integers.
func Bits(m int64) int {
	if m < 0 {
		panic(fmt.Sprintf("bitio.Bits: negative argument %d", m))
	}
	return bits.Len64(uint64(m))
}

// Pow returns base**exp for nonnegative exp, panicking on overflow of
// int64. Circuit constructions use it for T^h and r^h level counts where
// silent wraparound would corrupt gate-count accounting.
func Pow(base, exp int) int64 {
	if exp < 0 {
		panic(fmt.Sprintf("bitio.Pow: negative exponent %d", exp))
	}
	result := int64(1)
	b := int64(base)
	for i := 0; i < exp; i++ {
		result = MulCheck(result, b)
	}
	return result
}

// MulCheck multiplies two int64 values, panicking iff the mathematical
// product does not fit in int64 — exact overflow semantics: every
// representable product is returned, including magnitudes in
// (2^62, 2^63) and math.MinInt64 itself (e.g. MinInt64 * 1, or
// 2^32 * -2^31). Callers use MulCheck purely as an overflow guard on
// gate counts, weight scalings and threshold arithmetic; none depend on
// a cutoff below the true int64 range, so admitting the formerly
// rejected band only widens the legal domain.
func MulCheck(a, b int64) int64 {
	hi, lo := bits.Mul64(mag64(a), mag64(b))
	if neg := (a < 0) != (b < 0); neg {
		// Negative product: representable iff |a·b| <= 2^63.
		if hi != 0 || lo > 1<<63 {
			panic(fmt.Sprintf("bitio.MulCheck: overflow multiplying %d * %d", a, b))
		}
		// lo == 2^63 converts to MinInt64; negating smaller magnitudes
		// is exact. Either way -int64(lo) is the two's-complement result.
		return -int64(lo)
	}
	// Nonnegative product: representable iff |a·b| <= 2^63 - 1.
	if hi != 0 || lo > math.MaxInt64 {
		panic(fmt.Sprintf("bitio.MulCheck: overflow multiplying %d * %d", a, b))
	}
	return int64(lo)
}

// AddCheck adds two int64 values, panicking iff the mathematical sum
// does not fit in int64 (exact: a same-sign wraparound always crosses
// zero, and mixed signs can never overflow).
func AddCheck(a, b int64) int64 {
	s := a + b
	if (a > 0 && b > 0 && s <= 0) || (a < 0 && b < 0 && s >= 0) {
		panic(fmt.Sprintf("bitio.AddCheck: overflow adding %d + %d", a, b))
	}
	return s
}

// mag64 returns |a| as a uint64, exact for every int64 including
// math.MinInt64 (whose magnitude 2^63 has no int64 representation).
func mag64(a int64) uint64 {
	if a < 0 {
		return -uint64(a)
	}
	return uint64(a)
}

// CeilLog returns the least integer l with base^l >= n, for base >= 2 and
// n >= 1. It is used to pad matrix dimensions up to a power of T.
func CeilLog(base, n int) int {
	if base < 2 {
		panic(fmt.Sprintf("bitio.CeilLog: base %d < 2", base))
	}
	if n < 1 {
		panic(fmt.Sprintf("bitio.CeilLog: n %d < 1", n))
	}
	l := 0
	p := int64(1)
	for p < int64(n) {
		p *= int64(base)
		l++
	}
	return l
}

// IsPow reports whether n is an exact power of base (base >= 2), i.e.
// n = base^l for some integer l >= 0.
func IsPow(base, n int) bool {
	if base < 2 || n < 1 {
		return false
	}
	for n%base == 0 {
		n /= base
	}
	return n == 1
}

// Log returns l such that base^l = n exactly, panicking if n is not an
// exact power of base. Circuit builders require N = T^l.
func Log(base, n int) int {
	if !IsPow(base, n) {
		panic(fmt.Sprintf("bitio.Log: %d is not a power of %d", n, base))
	}
	l := 0
	for n > 1 {
		n /= base
		l++
	}
	return l
}

// Abs returns the absolute value of a. It panics for math.MinInt64,
// whose magnitude is not representable in int64: the historical
// two's-complement wraparound returned a *negative* "absolute value"
// that silently corrupted every magnitude comparison downstream
// (weight-budget checks, Bits(Abs(v)) width computations).
func Abs(a int64) int64 {
	if a == math.MinInt64 {
		panic("bitio.Abs: |math.MinInt64| is not representable in int64")
	}
	if a < 0 {
		return -a
	}
	return a
}

// Max returns the larger of a and b.
func Max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Min returns the smaller of a and b.
func Min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Max64 returns the larger of a and b.
func Max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Binomial returns C(n, k) as an int64, panicking on overflow. The naive
// triangle-counting circuit has exactly C(N,3)+1 gates.
func Binomial(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	result := int64(1)
	for i := 0; i < k; i++ {
		result = MulCheck(result, int64(n-i))
		result /= int64(i + 1)
	}
	return result
}
