package bitio

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func TestBits(t *testing.T) {
	cases := []struct {
		m    int64
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{255, 8}, {256, 9}, {1023, 10}, {1024, 11},
		{math.MaxInt64, 63},
	}
	for _, c := range cases {
		if got := Bits(c.m); got != c.want {
			t.Errorf("Bits(%d) = %d, want %d", c.m, got, c.want)
		}
	}
}

// Bits(m) is the least l with m < 2^l: check the defining property.
func TestBitsDefiningProperty(t *testing.T) {
	prop := func(m int64) bool {
		if m < 0 {
			m = -m
		}
		m %= 1 << 40
		l := Bits(m)
		// m < 2^l and (l == 0 or m >= 2^(l-1))
		if m >= int64(1)<<uint(l) {
			return false
		}
		if l > 0 && m < int64(1)<<uint(l-1) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestBitsPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Bits(-1) did not panic")
		}
	}()
	Bits(-1)
}

func TestPow(t *testing.T) {
	cases := []struct {
		base, exp int
		want      int64
	}{
		{2, 0, 1}, {2, 10, 1024}, {7, 3, 343}, {3, 4, 81}, {49, 2, 2401},
	}
	for _, c := range cases {
		if got := Pow(c.base, c.exp); got != c.want {
			t.Errorf("Pow(%d,%d) = %d, want %d", c.base, c.exp, got, c.want)
		}
	}
}

func TestPowOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Pow(7, 40) did not panic on overflow")
		}
	}()
	Pow(7, 40)
}

func TestCeilLog(t *testing.T) {
	cases := []struct {
		base, n, want int
	}{
		{2, 1, 0}, {2, 2, 1}, {2, 3, 2}, {2, 4, 2}, {2, 5, 3},
		{3, 1, 0}, {3, 3, 1}, {3, 4, 2}, {3, 9, 2}, {3, 10, 3},
		{7, 343, 3}, {7, 344, 4},
	}
	for _, c := range cases {
		if got := CeilLog(c.base, c.n); got != c.want {
			t.Errorf("CeilLog(%d,%d) = %d, want %d", c.base, c.n, got, c.want)
		}
	}
}

func TestIsPowAndLog(t *testing.T) {
	if !IsPow(2, 16) || !IsPow(3, 27) || !IsPow(7, 1) {
		t.Error("IsPow false negative")
	}
	if IsPow(2, 12) || IsPow(3, 10) || IsPow(2, 0) {
		t.Error("IsPow false positive")
	}
	if Log(2, 16) != 4 || Log(3, 27) != 3 || Log(5, 1) != 0 {
		t.Error("Log wrong")
	}
}

func TestLogPanicsOnNonPower(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Log(2, 10) did not panic")
		}
	}()
	Log(2, 10)
}

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{3, 3, 1}, {4, 3, 4}, {10, 3, 120}, {64, 3, 41664},
		{5, 0, 1}, {5, 5, 1}, {5, 6, 0}, {5, -1, 0},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got != c.want {
			t.Errorf("Binomial(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

// Pascal's rule as a property test.
func TestBinomialPascal(t *testing.T) {
	prop := func(n, k uint8) bool {
		nn := int(n%40) + 1
		kk := int(k) % (nn + 1)
		if kk == 0 {
			return Binomial(nn, 0) == 1
		}
		return Binomial(nn, kk) == Binomial(nn-1, kk-1)+Binomial(nn-1, kk)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestMulAddCheck(t *testing.T) {
	if MulCheck(-3, 4) != -12 || MulCheck(-3, -4) != 12 {
		t.Error("MulCheck sign handling wrong")
	}
	if AddCheck(1<<40, 1<<40) != 1<<41 {
		t.Error("AddCheck wrong")
	}
}

// MulCheck must implement exact int64 overflow semantics: every
// representable product is returned — including magnitudes in
// (2^62, 2^63), which the historical conservative cutoff rejected, and
// math.MinInt64 itself — and the first unrepresentable value in every
// direction panics.
func TestMulCheckBoundaries(t *testing.T) {
	ok := []struct {
		a, b, want int64
	}{
		{0, 0, 0},
		{0, math.MinInt64, 0},
		{math.MinInt64, 0, 0},
		{1, math.MaxInt64, math.MaxInt64},
		{math.MaxInt64, 1, math.MaxInt64},
		{-1, math.MaxInt64, -math.MaxInt64},
		{1, math.MinInt64, math.MinInt64},
		{math.MinInt64, 1, math.MinInt64},
		{-1, -math.MaxInt64, math.MaxInt64},
		// The band (2^62, 2^63) the old cutoff wrongly rejected.
		{1, 1<<62 + 1, 1<<62 + 1},
		{3, 1 << 61, 3 << 61},                   // 3·2^61 = 1.5·2^62
		{-3, 1 << 61, -(3 << 61)},               //
		{1 << 31, 1 << 31, 1 << 62},             //
		{-(1 << 31), 1 << 32, math.MinInt64},    // exactly -2^63
		{1 << 32, -(1 << 31), math.MinInt64},    //
		{-(1 << 21), 1 << 42, math.MinInt64},    //
		{7, 1317624576693539401, math.MaxInt64}, // 7·(MaxInt64/7), MaxInt64 % 7 == 0
		{-7, 1317624576693539401, -math.MaxInt64} /**/}
	for _, c := range ok {
		if got := MulCheck(c.a, c.b); got != c.want {
			t.Errorf("MulCheck(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	overflow := [][2]int64{
		{math.MinInt64, -1}, // |MinInt64| not representable
		{-1, math.MinInt64},
		{math.MinInt64, math.MinInt64},
		{math.MinInt64, 2},
		{math.MaxInt64, 2},
		{2, math.MaxInt64},
		{1 << 32, 1 << 31},       // +2^63 is one past MaxInt64
		{-(1 << 31), -(1 << 32)}, //
		{1 << 32, 1<<31 + 1},     //
		{3037000500, 3037000500}, // floor(sqrt 2^63)+1 squared
		{math.MaxInt64, math.MaxInt64}}
	for _, c := range overflow {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MulCheck(%d, %d) did not panic", c[0], c[1])
				}
			}()
			MulCheck(c[0], c[1])
		}()
	}
}

// MulCheck agrees with big-integer multiplication on random operands:
// returns the exact product when it fits in int64, panics otherwise.
func TestMulCheckMatchesBigInt(t *testing.T) {
	prop := func(a, b int64) bool {
		want := new(big.Int).Mul(big.NewInt(a), big.NewInt(b))
		fits := want.IsInt64()
		got, panicked := func() (r int64, p bool) {
			defer func() {
				if recover() != nil {
					p = true
				}
			}()
			return MulCheck(a, b), false
		}()
		if fits {
			return !panicked && got == want.Int64()
		}
		return panicked
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// AddCheck boundary table: the extreme representable sums and the first
// overflow on either side, including both MinInt64 corners.
func TestAddCheckBoundaries(t *testing.T) {
	ok := []struct {
		a, b, want int64
	}{
		{math.MaxInt64, 0, math.MaxInt64},
		{math.MinInt64, 0, math.MinInt64},
		{math.MaxInt64, math.MinInt64, -1},
		{math.MinInt64, math.MaxInt64, -1},
		{math.MaxInt64 - 1, 1, math.MaxInt64},
		{math.MinInt64 + 1, -1, math.MinInt64},
		{1 << 62, 1<<62 - 1, math.MaxInt64},
		{-(1 << 62), -(1 << 62), math.MinInt64}}
	for _, c := range ok {
		if got := AddCheck(c.a, c.b); got != c.want {
			t.Errorf("AddCheck(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	overflow := [][2]int64{
		{math.MaxInt64, 1},
		{1, math.MaxInt64},
		{math.MinInt64, -1},
		{-1, math.MinInt64},
		{math.MinInt64, math.MinInt64},
		{math.MaxInt64, math.MaxInt64},
		{1 << 62, 1 << 62}}
	for _, c := range overflow {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AddCheck(%d, %d) did not panic", c[0], c[1])
				}
			}()
			AddCheck(c[0], c[1])
		}()
	}
}

// Abs(MinInt64) must panic rather than return the wrapped negative
// value that would corrupt magnitude comparisons.
func TestAbsMinInt64Panics(t *testing.T) {
	if Abs(math.MaxInt64) != math.MaxInt64 || Abs(-math.MaxInt64) != math.MaxInt64 {
		t.Error("Abs wrong at ±MaxInt64")
	}
	defer func() {
		if recover() == nil {
			t.Error("Abs(math.MinInt64) did not panic")
		}
	}()
	Abs(math.MinInt64)
}

func TestMinMax(t *testing.T) {
	if Max(1, 2) != 2 || Min(1, 2) != 1 || Max64(3, 4) != 4 || Abs(-5) != 5 {
		t.Error("min/max/abs helpers wrong")
	}
}
