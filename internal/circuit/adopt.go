package circuit

// Fork returns a shard builder rooted at the receiver's current wire
// frontier: the fork sees every wire the parent has created so far as an
// input (same ids), and — unlike a detached NewBuilder snapshot — it
// resolves those wires to their true topological levels by delegating to
// the parent's tables. Gates added to the fork therefore carry their
// final, absolute levels, which is what lets Adopt merge the fork back
// with a verbatim group-table copy instead of re-deriving levels by
// walking every stored edge.
//
// Contract: between Fork and the matching Adopt the parent's gate tables
// must not change except through other forks being adopted *after* this
// fork's gates are complete — concretely, the parallel construction
// engine forks all shards of a stage first, builds them concurrently
// (the parent is only read), and adopts them in index order. Forks of
// forks are fine: level lookups chase the parent chain.
func (b *Builder) Fork() *Builder {
	if b.built {
		panic("circuit: builder reused after Build")
	}
	sb := NewBuilder(b.NumWires())
	sb.parent = b
	return sb
}

// Adopt moves every gate of a fork into the builder as a bulk arena
// append with index rebasing: wires below the fork point keep their ids,
// fork-created gate wires shift to the builder's current frontier, and
// the group table — including the levels the fork already computed
// against the parent's true wire levels — copies verbatim with offset
// spans. Compared to Build+Splice this skips the fork's Build (rightsize
// copy, edge cache, level-group index) and Splice's per-edge level
// rescan: each arena is touched exactly once, in one streaming pass.
//
// The fork is consumed: it must have been created by Fork on this
// builder, and it cannot be used again afterwards. Adopting forks in
// shard-index order yields arenas bit-identical to building the shards'
// gates sequentially in that order, which the parallel construction
// tests pin on serialized bytes.
func (b *Builder) Adopt(f *Builder) {
	if b.built {
		panic("circuit: builder reused after Build")
	}
	if f.built {
		panic("circuit: fork adopted twice (or used after Build)")
	}
	if f.parent != b {
		panic("circuit: Adopt of a builder that is not a fork of this builder")
	}
	f.built = true // consume

	fork := Wire(f.c.numInputs) // fork point: first fork-created wire id
	delta := b.numWires - fork  // rebase distance for fork gate wires
	posBase := int64(len(b.c.wires))
	gateBase := int32(len(b.c.thresholds))
	groupBase := int32(len(b.c.groups))

	// Wires: bulk append, then rebase the fresh (cache-hot) span in
	// place. Wires below the fork point are parent wires and keep their
	// ids — that is the zero-copy handoff: no input map, no validation
	// pass, the fork's numbering is already the builder's below the
	// fork point.
	b.c.wires = append(b.c.wires, f.c.wires...)
	for i, w := range b.c.wires[posBase:] {
		if w >= fork {
			b.c.wires[posBase+int64(i)] = w + delta
		}
	}
	b.c.weights = append(b.c.weights, f.c.weights...)
	b.c.thresholds = append(b.c.thresholds, f.c.thresholds...)
	ggBase := len(b.c.gateGroup)
	b.c.gateGroup = append(b.c.gateGroup, f.c.gateGroup...)
	for i := range b.c.gateGroup[ggBase:] {
		b.c.gateGroup[ggBase+i] += groupBase
	}
	for _, gr := range f.c.groups {
		b.c.groups = append(b.c.groups, group{
			inStart:   gr.inStart + posBase,
			inEnd:     gr.inEnd + posBase,
			wOff:      gr.wOff + posBase, // forks are canonical: stays parallel
			gateStart: gr.gateStart + gateBase,
			gateCount: gr.gateCount,
			level:     gr.level, // already absolute: Fork levels are final
		})
	}
	if f.c.depth > b.c.depth {
		b.c.depth = f.c.depth
	}
	b.numWires += int32(len(f.c.thresholds))
	for _, o := range f.c.outputs {
		if o >= fork {
			o += delta
		}
		b.c.outputs = append(b.c.outputs, o)
	}
	f.c = Circuit{} // release the fork's arena references
}

// StoredEdges returns the number of stored input-span positions so far
// (the physical arena length Splice/Adopt append to). Together with Size
// and NumGroups this is the builder-side footprint triple the parallel
// construction engine measures on one shard job to pre-size the others.
func (b *Builder) StoredEdges() int64 { return int64(len(b.c.wires)) }

// NumGroups returns the number of gate groups added so far.
func (b *Builder) NumGroups() int { return len(b.c.groups) }
