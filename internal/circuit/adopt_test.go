package circuit

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// emitJob appends nOps random gates/groups that read either the shared
// pre-stage wires or the job's own earlier outputs — the shape of one
// shard job's gate stream (stage jobs never read other jobs' gates).
// Inputs are drawn by *index* into the pools, so replaying the same rng
// in a fork and in the sequential builder emits logically identical
// gates even though the fork's local wire ids differ until Adopt.
func emitJob(b *Builder, rng *rand.Rand, nOps int, shared []Wire) {
	var local []Wire
	for i := 0; i < nOps; i++ {
		fanin := 1 + rng.Intn(4)
		ins := make([]Wire, fanin)
		ws := make([]int64, fanin)
		for j := range ins {
			pool := shared
			if len(local) > 0 && rng.Intn(2) == 1 {
				pool = local
			}
			ins[j] = pool[rng.Intn(len(pool))]
			ws[j] = int64(rng.Intn(9) - 4)
		}
		if rng.Intn(3) == 0 {
			ts := make([]int64, 1+rng.Intn(3))
			for j := range ts {
				ts[j] = int64(rng.Intn(7) - 3)
			}
			local = append(local, b.GateGroup(ins, ws, ts)...)
		} else {
			local = append(local, b.Gate(ins, ws, int64(rng.Intn(7)-3)))
		}
	}
}

// wireRange returns the wires [0, n) — a shared input pool.
func wireRange(n int) []Wire {
	ws := make([]Wire, n)
	for i := range ws {
		ws[i] = Wire(i)
	}
	return ws
}

func serialized(t *testing.T, c *Circuit) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// Forking shards at one frontier and adopting them in index order is
// bit-identical to emitting the same gate streams sequentially — the
// invariant the parallel construction engine rests on. Exercised across
// random host prefixes and shard counts, including empty shards.
func TestForkAdoptBitIdentical(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nin := 2 + rng.Intn(5)
		hostOps := rng.Intn(12)
		shards := 1 + rng.Intn(5)
		shardOps := make([]int, shards)
		shardSeed := make([]int64, shards)
		for i := range shardOps {
			shardOps[i] = rng.Intn(10) // 0 is a legal (empty) shard
			shardSeed[i] = rng.Int63()
		}
		hostSeed := rng.Int63()

		seq := NewBuilder(nin)
		emitJob(seq, rand.New(rand.NewSource(hostSeed)), hostOps, wireRange(nin))
		frontier := wireRange(seq.NumWires())
		for i := range shardOps {
			emitJob(seq, rand.New(rand.NewSource(shardSeed[i])), shardOps[i], frontier)
		}
		if seq.NumWires() > nin {
			seq.MarkOutput(Wire(seq.NumWires() - 1))
		}
		want := serialized(t, seq.Build())

		par := NewBuilder(nin)
		emitJob(par, rand.New(rand.NewSource(hostSeed)), hostOps, wireRange(nin))
		forks := make([]*Builder, shards)
		for i := range forks {
			forks[i] = par.Fork()
			emitJob(forks[i], rand.New(rand.NewSource(shardSeed[i])), shardOps[i], frontier)
		}
		for _, f := range forks {
			par.Adopt(f)
		}
		if par.NumWires() > nin {
			par.MarkOutput(Wire(par.NumWires() - 1))
		}
		got := serialized(t, par.Build())
		return bytes.Equal(want, got)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Forks of forks: a two-level fork tree (stage fork with chunk forks
// inside, as downSweeps nests shardStage) collapses to the sequential
// bytes when the chunks are adopted into the stage and the stage into
// the host, each in index order.
func TestForkAdoptNested(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nin := 2 + rng.Intn(4)
		hostSeed, aSeed, bSeed, cSeed := rng.Int63(), rng.Int63(), rng.Int63(), rng.Int63()

		seq := NewBuilder(nin)
		emitJob(seq, rand.New(rand.NewSource(hostSeed)), 6, wireRange(nin))
		hostFrontier := wireRange(seq.NumWires())
		emitJob(seq, rand.New(rand.NewSource(aSeed)), 5, hostFrontier)
		innerFrontier := wireRange(seq.NumWires())
		emitJob(seq, rand.New(rand.NewSource(bSeed)), 5, innerFrontier)
		emitJob(seq, rand.New(rand.NewSource(cSeed)), 5, innerFrontier)
		want := serialized(t, seq.Build())

		par := NewBuilder(nin)
		emitJob(par, rand.New(rand.NewSource(hostSeed)), 6, wireRange(nin))
		stage := par.Fork()
		emitJob(stage, rand.New(rand.NewSource(aSeed)), 5, hostFrontier)
		inner1 := stage.Fork()
		emitJob(inner1, rand.New(rand.NewSource(bSeed)), 5, innerFrontier)
		inner2 := stage.Fork()
		emitJob(inner2, rand.New(rand.NewSource(cSeed)), 5, innerFrontier)
		stage.Adopt(inner1)
		stage.Adopt(inner2)
		par.Adopt(stage)
		got := serialized(t, par.Build())
		return bytes.Equal(want, got)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Gates created in a fork carry their final absolute levels (the parent
// chain resolves host wire levels), so depth and per-gate levels match
// the sequential build even when the fork reads deep host wires.
func TestForkLevelsAbsolute(t *testing.T) {
	b := NewBuilder(1)
	w := b.Input(0)
	for i := 0; i < 4; i++ {
		w = b.Gate([]Wire{w}, []int64{1}, 1) // depth-4 chain
	}
	f := b.Fork()
	if got := f.WireLevel(w); got != 4 {
		t.Fatalf("fork sees host wire at level %d, want 4", got)
	}
	fw := f.Gate([]Wire{w}, []int64{1}, 1)
	if got := f.WireLevel(fw); got != 5 {
		t.Fatalf("fork gate level %d, want 5", got)
	}
	b.Adopt(f)
	c := b.Build()
	if c.Depth() != 5 {
		t.Errorf("depth %d after adopt, want 5", c.Depth())
	}
	if got := c.GateLevel(c.Size() - 1); got != 5 {
		t.Errorf("adopted gate level %d, want 5", got)
	}
}

// Outputs marked inside a fork arrive rebased in the parent's numbering
// and in marking order.
func TestAdoptRemapsOutputs(t *testing.T) {
	b := NewBuilder(2)
	host := b.Gate([]Wire{0, 1}, []int64{1, 1}, 1)
	f1 := b.Fork()
	f1.Gate([]Wire{host}, []int64{1}, 1)
	f2 := b.Fork()
	fg := f2.Gate([]Wire{host}, []int64{1}, 1)
	f2.MarkOutput(host) // parent wire: keeps its id
	f2.MarkOutput(fg)   // fork gate: rebases past f1's adopted gate
	b.Adopt(f1)
	b.Adopt(f2)
	c := b.Build()
	// 2 inputs + host gate (wire 2) + f1's gate (wire 3) + f2's (wire 4).
	outs := c.Outputs()
	if len(outs) != 2 || outs[0] != host || outs[1] != Wire(4) {
		t.Errorf("outputs %v, want [%d 4]", outs, host)
	}
}

// Adopt consumes the fork and enforces its provenance.
func TestAdoptPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func()
	}{
		{"adopt non-fork", func() {
			b := NewBuilder(1)
			b.Adopt(NewBuilder(1))
		}},
		{"adopt another builder's fork", func() {
			b1, b2 := NewBuilder(1), NewBuilder(1)
			b2.Adopt(b1.Fork())
		}},
		{"adopt twice", func() {
			b := NewBuilder(1)
			f := b.Fork()
			b.Adopt(f)
			b.Adopt(f)
		}},
		{"adopt built fork", func() {
			b := NewBuilder(1)
			f := b.Fork()
			f.Build()
			b.Adopt(f)
		}},
		{"adopt after Build", func() {
			b := NewBuilder(1)
			f := b.Fork()
			b.Build()
			b.Adopt(f)
		}},
		{"fork after Build", func() {
			b := NewBuilder(1)
			b.Build()
			b.Fork()
		}},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", c.name)
				}
			}()
			c.f()
		}()
	}
}

// The footprint accessors track the builder arenas exactly — they are
// what the engine measures on one job to pre-size the other shards.
func TestFootprintAccessors(t *testing.T) {
	b := NewBuilder(3)
	if b.StoredEdges() != 0 || b.NumGroups() != 0 {
		t.Fatalf("fresh builder footprint %d/%d, want 0/0", b.StoredEdges(), b.NumGroups())
	}
	b.Gate([]Wire{0, 1}, []int64{1, 1}, 1)
	b.GateGroup([]Wire{0, 1, 2}, []int64{1, 1, 1}, []int64{1, 2})
	if b.StoredEdges() != 5 {
		t.Errorf("StoredEdges %d, want 5", b.StoredEdges())
	}
	if b.NumGroups() != 2 {
		t.Errorf("NumGroups %d, want 2", b.NumGroups())
	}
	if b.Size() != 3 {
		t.Errorf("Size %d, want 3", b.Size())
	}
}
