// Batched, bit-sliced circuit evaluation.
//
// Every serving workload this library targets — Monte Carlo energy
// estimation, triangle queries over many graphs, matmul over many
// matrix pairs — evaluates the *same* circuit on many independent input
// vectors. Evaluator amortizes the per-sample cost by packing 64
// samples into one uint64 word per wire (a "bit plane") and evaluating
// gate-major: each incoming wire's plane is loaded once per 64 samples
// instead of once per sample, the weight array is streamed once per
// group instead of once per gate evaluation, and scratch memory (plane
// arena, per-sample accumulators, counter planes) is allocated once per
// Evaluator instead of once per call.
//
// Two accumulation paths feed the shared threshold step:
//
//   - unit path: when every weight in a group's span is in {-1, 0, +1}
//     (the dominant case for Strassen/Winograd coefficient layers), the
//     positive and negative contributions are counted with bit-sliced
//     carry-save adders — amortized O(1) word operations per incoming
//     plane, independent of how many samples fire.
//
//   - general path: arbitrary weights are scattered into 64 per-sample
//     int64 accumulators by trailing-zero iteration over the plane (or
//     its complement when more than half the samples fire), so the cost
//     is proportional to min(firing, quiet) samples, never 64.
//
// Parallelism reuses one persistent worker pool across levels and
// calls: batches spanning several 64-sample blocks are split
// block-parallel (blocks are fully independent), while a single block
// falls back to level-by-level gate-group parallelism exactly like
// EvalParallel. workers == 1 stays fully sequential — no pool is ever
// created, no goroutine is ever woken.
package circuit

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"
)

// Planes is a batch of wire assignments in bit-packed form: sample s of
// wire w is bit s%64 of the word for block s/64. Storage is block-major
// (all wires of one 64-sample block are contiguous), which is the order
// the evaluation engine touches them in.
type Planes struct {
	numWires int
	batch    int
	words    []uint64 // [block][wire] -> words[blk*numWires+wire]
}

// NewPlanes returns an all-false plane batch for the given number of
// wires and samples.
func NewPlanes(numWires, batch int) *Planes {
	if numWires < 0 || batch < 0 {
		panic(fmt.Sprintf("circuit: invalid plane shape %d wires x %d samples", numWires, batch))
	}
	return &Planes{
		numWires: numWires,
		batch:    batch,
		words:    make([]uint64, planeBlocks(batch)*numWires),
	}
}

// PackBools packs per-sample boolean rows (each of equal length) into
// bit planes. It is the input-side constructor for EvalPlanes.
func PackBools(rows [][]bool) *Planes {
	if len(rows) == 0 {
		return &Planes{}
	}
	p := NewPlanes(len(rows[0]), len(rows))
	for s, row := range rows {
		if len(row) != p.numWires {
			panic(fmt.Sprintf("circuit: row %d has %d values, want %d", s, len(row), p.numWires))
		}
		base := (s / 64) * p.numWires
		bit := uint64(1) << uint(s%64)
		for w, v := range row {
			if v {
				p.words[base+w] |= bit
			}
		}
	}
	return p
}

// Reset reshapes p to hold numWires x batch all-false planes, reusing
// the existing word storage when it is large enough. Zeroing the words
// re-establishes the zero-tail invariant (bits at and past the batch
// size in the final partial block are 0) that PackBools guarantees and
// every consumer of partial batches relies on, so a Planes recycled
// across coalesced serving batches of different sizes can never leak a
// previous batch's samples into the padding lanes.
func (p *Planes) Reset(numWires, batch int) {
	if numWires < 0 || batch < 0 {
		panic(fmt.Sprintf("circuit: invalid plane shape %d wires x %d samples", numWires, batch))
	}
	need := planeBlocks(batch) * numWires
	if cap(p.words) < need {
		p.words = make([]uint64, need)
	} else {
		p.words = p.words[:need]
		for i := range p.words {
			p.words[i] = 0
		}
	}
	p.numWires = numWires
	p.batch = batch
}

// SetRow sets sample s to the given boolean row. Bits are written in
// both directions (false clears), so rows may be overwritten freely;
// combined with Reset this is the fan-in path the request coalescer
// uses to assemble a ragged batch without per-batch allocation.
func (p *Planes) SetRow(s int, row []bool) {
	if s < 0 || s >= p.batch {
		panic(fmt.Sprintf("circuit: sample %d out of range [0,%d)", s, p.batch))
	}
	if len(row) != p.numWires {
		panic(fmt.Sprintf("circuit: row has %d values, want %d", len(row), p.numWires))
	}
	base := (s / 64) * p.numWires
	bit := uint64(1) << uint(s%64)
	for w, v := range row {
		if v {
			p.words[base+w] |= bit
		} else {
			p.words[base+w] &^= bit
		}
	}
}

// planeBlocks returns the number of 64-sample blocks covering batch.
func planeBlocks(batch int) int { return (batch + 63) / 64 }

// NumWires returns the number of wires per sample.
func (p *Planes) NumWires() int { return p.numWires }

// Batch returns the number of samples.
func (p *Planes) Batch() int { return p.batch }

// Get returns the value of wire w for sample s.
func (p *Planes) Get(w Wire, s int) bool {
	if s < 0 || s >= p.batch {
		panic(fmt.Sprintf("circuit: sample %d out of range [0,%d)", s, p.batch))
	}
	return p.words[(s/64)*p.numWires+int(w)]>>uint(s%64)&1 == 1
}

// Assignment extracts sample s as a flat []bool wire assignment,
// appending into dst (pass nil to allocate). The result is layout-
// compatible with Circuit.Eval's return value.
func (p *Planes) Assignment(s int, dst []bool) []bool {
	if cap(dst) < p.numWires {
		dst = make([]bool, p.numWires)
	}
	dst = dst[:p.numWires]
	base := (s / 64) * p.numWires
	shift := uint(s % 64)
	for w := range dst {
		dst[w] = p.words[base+w]>>shift&1 == 1
	}
	return dst
}

// Gather builds a new plane batch holding only the given wires, in
// order — the zero-copy-pipeline primitive: gather one circuit's output
// wires to feed them as the next circuit's input planes.
func (p *Planes) Gather(wires []Wire) *Planes {
	return p.GatherInto(nil, wires)
}

// GatherInto is Gather with a reusable destination: dst is reshaped
// (reusing its storage when possible) and filled with the selected wire
// planes. Pass nil to allocate. Gathered planes inherit p's zero tails,
// so the fan-out side of a coalesced batch never sees padding samples.
func (p *Planes) GatherInto(dst *Planes, wires []Wire) *Planes {
	if dst == nil {
		dst = &Planes{}
	}
	nblk := planeBlocks(p.batch)
	dst.numWires = len(wires)
	dst.batch = p.batch
	if need := nblk * len(wires); cap(dst.words) < need {
		dst.words = make([]uint64, need)
	} else {
		dst.words = dst.words[:need]
	}
	for blk := 0; blk < nblk; blk++ {
		src := p.words[blk*p.numWires:]
		out := dst.words[blk*len(wires):]
		for i, w := range wires {
			out[i] = src[w]
		}
	}
	return dst
}

// Clone returns an independent copy (the Planes returned by EvalPlanes
// borrows the evaluator's arena; Clone detaches it).
func (p *Planes) Clone() *Planes {
	return &Planes{numWires: p.numWires, batch: p.batch, words: append([]uint64(nil), p.words...)}
}

// CountTrue returns, per sample, how many of the wires in [lo, hi)
// are true — the popcount reduction behind batched energy accounting.
func (p *Planes) CountTrue(lo, hi Wire) []int64 {
	out := make([]int64, p.batch)
	for blk := 0; blk < planeBlocks(p.batch); blk++ {
		src := p.words[blk*p.numWires:]
		base := blk * 64
		for w := lo; w < hi; w++ {
			for x := src[w]; x != 0; x &= x - 1 {
				s := base + bits.TrailingZeros64(x)
				out[s]++ // tail bits are zero-masked, so s < batch
			}
		}
	}
	return out
}

// EnergyBatch returns the per-sample energy (number of firing gates,
// the Uchizawa et al. measure) from a full wire-plane batch as produced
// by Evaluator.EvalPlanes.
func (c *Circuit) EnergyBatch(p *Planes) []int64 {
	if p.numWires != c.numInputs+c.Size() {
		panic(fmt.Sprintf("circuit: planes hold %d wires, circuit has %d", p.numWires, c.numInputs+c.Size()))
	}
	return p.CountTrue(Wire(c.numInputs), Wire(c.numInputs+c.Size()))
}

// EnergyLevelsBatch returns the per-sample firing-gate counts at each
// level 1..Depth — the batched form of EnergyByLevel, and the
// firing-count hook behind the serving layer's energy-budget mode.
// out[l][s] is the number of level-(l+1) gates firing for sample s;
// summing a sample's column reproduces EnergyBatch exactly (both are
// popcounts over the same gate planes, so batched and per-sample energy
// accounting can never disagree).
func (c *Circuit) EnergyLevelsBatch(p *Planes) [][]int64 {
	if p.numWires != c.numInputs+c.Size() {
		panic(fmt.Sprintf("circuit: planes hold %d wires, circuit has %d", p.numWires, c.numInputs+c.Size()))
	}
	out := make([][]int64, c.depth)
	for l := range out {
		out[l] = make([]int64, p.batch)
	}
	nblk := planeBlocks(p.batch)
	for gi := range c.groups {
		gr := &c.groups[gi]
		lvl := out[gr.level-1]
		lo := c.numInputs + int(gr.gateStart)
		hi := lo + int(gr.gateCount)
		for blk := 0; blk < nblk; blk++ {
			src := p.words[blk*p.numWires:]
			base := blk * 64
			for w := lo; w < hi; w++ {
				for x := src[w]; x != 0; x &= x - 1 {
					lvl[base+bits.TrailingZeros64(x)]++ // tail bits are zero-masked
				}
			}
		}
	}
	return out
}

// poolTask is one unit of work for the persistent pool: fn receives the
// executing worker's id so it can use per-worker scratch.
type poolTask struct {
	fn func(worker int)
	wg *sync.WaitGroup
}

// workerPool is a fixed set of goroutines that persist across levels
// and calls, replacing the per-level goroutine spawning of
// EvalParallel. It exists only for workers >= 2.
type workerPool struct {
	tasks chan poolTask
	once  sync.Once
}

func newWorkerPool(workers int) *workerPool {
	p := &workerPool{tasks: make(chan poolTask)}
	for id := 0; id < workers; id++ {
		go func(id int) {
			for t := range p.tasks {
				t.fn(id)
				t.wg.Done()
			}
		}(id)
	}
	return p
}

func (p *workerPool) submit(wg *sync.WaitGroup, fn func(worker int)) {
	wg.Add(1)
	p.tasks <- poolTask{fn: fn, wg: wg}
}

func (p *workerPool) close() { p.once.Do(func() { close(p.tasks) }) }

// Evaluator is a reusable batch-evaluation engine for one circuit.
// Construct once per circuit, evaluate any number of batches; scratch
// (plane arena, accumulators, counter planes, worker pool) is owned by
// the evaluator and reused across calls. An Evaluator must not be used
// from multiple goroutines concurrently (it parallelizes internally).
type Evaluator struct {
	c       *Circuit
	workers int
	pool    *workerPool // nil iff workers == 1

	arena Planes // full wire planes, grown to the largest batch seen

	// Per-slot scratch, indexed by pool-worker id; slot `workers` is the
	// calling goroutine's (used on every sequential path).
	accs [][]int64  // 64 per-sample sum accumulators
	cnts [][]uint64 // 2*cntPlanes carry-save counter planes (pos, neg)

	cntPlanes int    // planes per carry-save counter
	unitGroup []bool // group -> all span weights in {-1,0,+1}

	scratch []bool // wire array reused by Eval (single sample)
}

// NewEvaluator builds an evaluation engine for c. workers <= 0 selects
// GOMAXPROCS; workers == 1 is fully sequential (no worker pool, no
// goroutines). Call Close when done to release the pool (a finalizer
// backstops forgotten Closes).
func NewEvaluator(c *Circuit, workers int) *Evaluator {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Evaluator{
		c:         c,
		workers:   workers,
		cntPlanes: bits.Len64(uint64(c.MaxFanIn())) + 1,
		unitGroup: make([]bool, len(c.groups)),
	}
	for gi := range c.groups {
		gr := &c.groups[gi]
		// The unit path pays off once the carry-save machinery beats
		// direct scatter; tiny spans stay on the general path.
		if gr.inEnd-gr.inStart < 4 {
			continue
		}
		unit := true
		for _, w := range c.weights[gr.wOff : gr.wOff+(gr.inEnd-gr.inStart)] {
			if w < -1 || w > 1 {
				unit = false
				break
			}
		}
		e.unitGroup[gi] = unit
	}
	e.accs = make([][]int64, workers+1)
	e.cnts = make([][]uint64, workers+1)
	for i := range e.accs {
		e.accs[i] = make([]int64, 64)
		e.cnts[i] = make([]uint64, 2*e.cntPlanes)
	}
	if workers > 1 {
		e.pool = newWorkerPool(workers)
		runtime.SetFinalizer(e, func(ev *Evaluator) { ev.pool.close() })
	}
	return e
}

// Circuit returns the circuit this evaluator was built for.
func (e *Evaluator) Circuit() *Circuit { return e.c }

// Close releases the worker pool. The evaluator must not be used after
// Close. Safe to call multiple times; a no-op for workers == 1.
func (e *Evaluator) Close() {
	if e.pool != nil {
		e.pool.close()
		runtime.SetFinalizer(e, nil)
	}
}

// Eval evaluates a single input vector, reusing the evaluator's
// scratch wire array: semantically identical to Circuit.Eval but free
// of per-call allocation. The returned slice is valid until the next
// Eval call on this evaluator.
func (e *Evaluator) Eval(inputs []bool) []bool {
	e.scratch = e.c.EvalInto(inputs, e.scratch)
	return e.scratch
}

// EvalBatch evaluates one input vector per row and returns the full
// wire assignment per row, bit-for-bit identical to calling
// Circuit.Eval on each row. Rows beyond the first may be processed on
// pool workers; results are freshly allocated and safe to retain.
func (e *Evaluator) EvalBatch(inputs [][]bool) [][]bool {
	if len(inputs) == 0 {
		return nil
	}
	p := e.EvalPlanes(PackBools(inputs))
	out := make([][]bool, len(inputs))
	for s := range out {
		out[s] = p.Assignment(s, nil)
	}
	return out
}

// EvalPlanes evaluates a packed input batch (numWires == NumInputs)
// and returns the packed planes of every wire. The result borrows the
// evaluator's arena: it is valid until the next Eval*/Close call on
// this evaluator — Clone it to retain, Gather to pipeline outputs into
// another circuit's inputs without unpacking.
func (e *Evaluator) EvalPlanes(in *Planes) *Planes {
	c := e.c
	if in.numWires != c.numInputs {
		panic(fmt.Sprintf("circuit: %d input planes supplied, want %d", in.numWires, c.numInputs))
	}
	nw := c.numInputs + c.Size()
	nblk := planeBlocks(in.batch)
	e.arena.numWires = nw
	e.arena.batch = in.batch
	if need := nblk * nw; cap(e.arena.words) < need {
		e.arena.words = make([]uint64, need)
	} else {
		e.arena.words = e.arena.words[:need]
	}
	// Copy the input planes into the arena block by block. PackBools
	// leaves tail bits (samples >= batch) zero; evalBlock preserves that
	// invariant for gate planes via tail masking.
	for blk := 0; blk < nblk; blk++ {
		copy(e.arena.words[blk*nw:blk*nw+c.numInputs], in.words[blk*in.numWires:(blk+1)*in.numWires])
	}

	switch {
	case e.pool == nil:
		for blk := 0; blk < nblk; blk++ {
			e.evalBlock(blk, e.workers)
		}
	case nblk > 1:
		// Blocks are independent: split them across the pool with no
		// level barriers at all.
		var wg sync.WaitGroup
		chunk := (nblk + e.workers - 1) / e.workers
		for lo := 0; lo < nblk; lo += chunk {
			lo, hi := lo, min(lo+chunk, nblk)
			e.pool.submit(&wg, func(worker int) {
				for blk := lo; blk < hi; blk++ {
					e.evalBlock(blk, worker)
				}
			})
		}
		wg.Wait()
	default:
		e.evalBlockParallel(0)
	}
	return &e.arena
}

// evalBlock evaluates every gate group of one 64-sample block
// sequentially, using scratch slot `slot`.
func (e *Evaluator) evalBlock(blk, slot int) {
	planes, mask := e.blockPlanes(blk)
	for gi := range e.c.groups {
		e.evalGroupPlanes(int32(gi), planes, mask, slot)
	}
}

// evalBlockParallel evaluates one block level by level, fanning large
// levels across the persistent pool (the single-block analogue of
// EvalParallel, without per-level goroutine spawning).
func (e *Evaluator) evalBlockParallel(blk int) {
	planes, mask := e.blockPlanes(blk)
	var wg sync.WaitGroup
	for _, gis := range e.c.levelGroups {
		if len(gis) < seqLevelFactor*e.workers {
			for _, gi := range gis {
				e.evalGroupPlanes(gi, planes, mask, e.workers)
			}
			continue
		}
		chunk := (len(gis) + e.workers - 1) / e.workers
		for lo := 0; lo < len(gis); lo += chunk {
			part := gis[lo:min(lo+chunk, len(gis))]
			e.pool.submit(&wg, func(worker int) {
				for _, gi := range part {
					e.evalGroupPlanes(gi, planes, mask, worker)
				}
			})
		}
		wg.Wait()
	}
}

// blockPlanes returns block blk's wire-plane slice and its tail mask
// (all-ones except for the final partial block, where bits at and past
// the batch size are forced to zero).
func (e *Evaluator) blockPlanes(blk int) ([]uint64, uint64) {
	nw := e.arena.numWires
	planes := e.arena.words[blk*nw : (blk+1)*nw]
	mask := ^uint64(0)
	if rem := e.arena.batch - blk*64; rem < 64 {
		mask = 1<<uint(rem) - 1
	}
	return planes, mask
}

// evalGroupPlanes is the batched analogue of evalGroup: compute the 64
// per-sample weighted sums of one group's shared span, then apply every
// member gate's threshold, writing one output plane per gate.
func (e *Evaluator) evalGroupPlanes(gi int32, planes []uint64, mask uint64, slot int) {
	c := e.c
	gr := &c.groups[gi]
	acc := e.accs[slot]
	for i := range acc {
		acc[i] = 0
	}
	wires := c.wires[gr.inStart:gr.inEnd]
	ws := c.weights[gr.wOff : gr.wOff+int64(len(wires))]
	wb := gr.wireBase
	var base int64 // weight mass applied to every sample
	if e.unitGroup[gi] {
		// Unit path: carry-save popcount of the +1 and -1 planes.
		pos := e.cnts[slot][:e.cntPlanes]
		neg := e.cnts[slot][e.cntPlanes:]
		usedP, usedN := 0, 0
		for i, rw := range wires {
			x := planes[wb+rw]
			if x == 0 {
				continue
			}
			switch ws[i] {
			case 1:
				usedP = csAdd(pos, x, usedP)
			case -1:
				usedN = csAdd(neg, x, usedN)
			}
		}
		for j := 0; j < usedP; j++ {
			w := int64(1) << uint(j)
			for x := pos[j]; x != 0; x &= x - 1 {
				acc[bits.TrailingZeros64(x)] += w
			}
			pos[j] = 0
		}
		for j := 0; j < usedN; j++ {
			w := int64(1) << uint(j)
			for x := neg[j]; x != 0; x &= x - 1 {
				acc[bits.TrailingZeros64(x)] -= w
			}
			neg[j] = 0
		}
	} else {
		// General path: scatter each weight into the per-sample
		// accumulators, iterating whichever of plane/complement has
		// fewer set bits.
		for i, rw := range wires {
			x := planes[wb+rw]
			if x == 0 {
				continue
			}
			w := ws[i]
			if x == ^uint64(0) {
				base += w
				continue
			}
			if bits.OnesCount64(x) > 32 {
				base += w
				for y := ^x; y != 0; y &= y - 1 {
					acc[bits.TrailingZeros64(y)] -= w
				}
			} else {
				for ; x != 0; x &= x - 1 {
					acc[bits.TrailingZeros64(x)] += w
				}
			}
		}
	}
	if base != 0 {
		for s := range acc {
			acc[s] += base
		}
	}
	outBase := c.numInputs + int(gr.gateStart)
	for k := int32(0); k < gr.gateCount; k++ {
		t := c.thresholds[gr.gateStart+k]
		var out uint64
		for s := 0; s < 64; s++ {
			// Branchless sum >= t: sign bit of (sum - t) selects 0/1.
			out |= uint64(1+((acc[s]-t)>>63)) << uint(s)
		}
		planes[outBase+int(k)] = out & mask
	}
}

// csAdd adds bit plane x into the carry-save counter planes cnt,
// returning the updated number of planes in use. Amortized O(1) word
// operations per call (binary-counter argument).
func csAdd(cnt []uint64, x uint64, used int) int {
	j := 0
	for carry := x; carry != 0; j++ {
		old := cnt[j]
		cnt[j] = old ^ carry
		carry = old & carry
	}
	if j > used {
		return j
	}
	return used
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
