package circuit

import (
	"math/rand"
	"testing"
)

// randomBatch draws B random input assignments for c.
func randomBatch(rng *rand.Rand, c *Circuit, b int) [][]bool {
	in := make([][]bool, b)
	for s := range in {
		row := make([]bool, c.NumInputs())
		for i := range row {
			row[i] = rng.Intn(2) == 1
		}
		in[s] = row
	}
	return in
}

// checkBatchAgainstEval asserts EvalBatch ≡ Eval ≡ EvalParallel
// bit-for-bit on the given batch, for the given worker count.
func checkBatchAgainstEval(t *testing.T, c *Circuit, inputs [][]bool, workers int) {
	t.Helper()
	e := NewEvaluator(c, workers)
	defer e.Close()
	got := e.EvalBatch(inputs)
	if len(got) != len(inputs) {
		t.Fatalf("EvalBatch returned %d rows, want %d", len(got), len(inputs))
	}
	for s, in := range inputs {
		want := c.Eval(in)
		par := c.EvalParallel(in, workers)
		for w := range want {
			if want[w] != par[w] {
				t.Fatalf("sample %d wire %d: EvalParallel=%v Eval=%v", s, w, par[w], want[w])
			}
			if got[s][w] != want[w] {
				t.Fatalf("sample %d wire %d (workers=%d): EvalBatch=%v Eval=%v",
					s, w, workers, got[s][w], want[w])
			}
		}
	}
}

// The engine must agree with Eval at every batch size around the
// 64-sample word boundary, for random circuits, sequential and pooled.
func TestEvalBatchMatchesEval(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(rng)
		for _, b := range []int{1, 2, 63, 64, 65, 130} {
			for _, workers := range []int{1, 4} {
				checkBatchAgainstEval(t, c, randomBatch(rng, c, b), workers)
			}
		}
	}
}

// Zero-fan-in gates (constants) and multi-gate groups with an empty
// input span are the degenerate groups the engine must not trip on.
func TestEvalBatchEmptyGroups(t *testing.T) {
	b := NewBuilder(2)
	tru := b.Const(true)
	fls := b.Const(false)
	// A whole group with an empty span: fires iff 0 >= threshold.
	consts := b.GateGroup(nil, nil, []int64{-1, 0, 1})
	out := b.Gate([]Wire{b.Input(0), b.Input(1), tru, fls, consts[0], consts[2]},
		[]int64{2, -3, 1, 5, 1, 1}, 1)
	b.MarkOutput(out)
	c := b.Build()
	rng := rand.New(rand.NewSource(9))
	for _, batch := range []int{1, 63, 64, 65} {
		checkBatchAgainstEval(t, c, randomBatch(rng, c, batch), 1)
		checkBatchAgainstEval(t, c, randomBatch(rng, c, batch), 3)
	}
}

// Unit-weight groups take the carry-save path; weights outside
// {-1,0,1} in the same circuit take the general path. Exercise both at
// fan-ins that stress the counter planes.
func TestEvalBatchUnitWeightPath(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const nin = 80
	b := NewBuilder(nin)
	ins := make([]Wire, nin)
	unit := make([]int64, nin)
	mixed := make([]int64, nin)
	for i := range ins {
		ins[i] = b.Input(i)
		unit[i] = int64(rng.Intn(3) - 1) // {-1,0,1}
		mixed[i] = int64(rng.Intn(17) - 8)
	}
	u := b.GateGroup(ins, unit, []int64{-3, -1, 0, 1, 2, 5})
	g := b.GateGroup(ins, mixed, []int64{-7, 0, 9})
	comb := b.Gate([]Wire{u[0], u[3], u[5], g[0], g[2]}, []int64{1, 1, -1, 1, -1}, 1)
	b.MarkOutput(comb)
	c := b.Build()
	for _, batch := range []int{1, 64, 65, 200} {
		checkBatchAgainstEval(t, c, randomBatch(rng, c, batch), 1)
		checkBatchAgainstEval(t, c, randomBatch(rng, c, batch), 4)
	}
}

// EvalInto must match Eval and reuse the supplied storage.
func TestEvalInto(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := randomCircuit(rng)
	var scratch []bool
	for trial := 0; trial < 10; trial++ {
		in := randomBatch(rng, c, 1)[0]
		want := c.Eval(in)
		scratch = c.EvalInto(in, scratch)
		if len(scratch) != len(want) {
			t.Fatalf("EvalInto length %d, want %d", len(scratch), len(want))
		}
		for w := range want {
			if scratch[w] != want[w] {
				t.Fatalf("trial %d wire %d: EvalInto=%v Eval=%v", trial, w, scratch[w], want[w])
			}
		}
	}
	prev := &scratch[0]
	scratch = c.EvalInto(randomBatch(rng, c, 1)[0], scratch)
	if &scratch[0] != prev {
		t.Fatal("EvalInto reallocated despite sufficient capacity")
	}
}

// Evaluator.Eval reuses its scratch across calls.
func TestEvaluatorSingleEval(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := randomCircuit(rng)
	e := NewEvaluator(c, 1)
	defer e.Close()
	for trial := 0; trial < 5; trial++ {
		in := randomBatch(rng, c, 1)[0]
		want := c.Eval(in)
		got := e.Eval(in)
		for w := range want {
			if got[w] != want[w] {
				t.Fatalf("wire %d: Evaluator.Eval=%v Eval=%v", w, got[w], want[w])
			}
		}
	}
}

// The packed-plane pipeline: pack, evaluate, gather outputs, per-sample
// energy — all consistent with the scalar path.
func TestEvalPlanesPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := randomCircuit(rng)
	const batch = 97
	inputs := randomBatch(rng, c, batch)
	e := NewEvaluator(c, 2)
	defer e.Close()
	p := e.EvalPlanes(PackBools(inputs))
	if p.Batch() != batch || p.NumWires() != c.NumInputs()+c.Size() {
		t.Fatalf("planes shape %dx%d", p.NumWires(), p.Batch())
	}
	energies := c.EnergyBatch(p)
	outs := p.Gather(c.Outputs())
	var scratch []bool
	for s, in := range inputs {
		want := c.Eval(in)
		scratch = p.Assignment(s, scratch)
		for w := range want {
			if scratch[w] != want[w] {
				t.Fatalf("sample %d wire %d: planes=%v Eval=%v", s, w, scratch[w], want[w])
			}
			if p.Get(Wire(w), s) != want[w] {
				t.Fatalf("sample %d wire %d: Get mismatch", s, w)
			}
		}
		if want := c.Energy(want); energies[s] != want {
			t.Fatalf("sample %d: EnergyBatch=%d Energy=%d", s, energies[s], want)
		}
		ov := c.OutputValues(want)
		for i := range ov {
			if outs.Get(Wire(i), s) != ov[i] {
				t.Fatalf("sample %d output %d: Gather mismatch", s, i)
			}
		}
	}
}

// The per-level firing-count hook: EnergyLevelsBatch must match the
// scalar EnergyByLevel on every sample, and its per-sample column sums
// must reproduce EnergyBatch exactly — the equality the serving layer's
// energy-budget mode relies on. Ragged batches straddle the word
// boundary.
func TestEnergyLevelsBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	c := randomCircuit(rng)
	e := NewEvaluator(c, 2)
	defer e.Close()
	for _, batch := range []int{1, 63, 64, 65} {
		inputs := randomBatch(rng, c, batch)
		p := e.EvalPlanes(PackBools(inputs))
		byLevel := c.EnergyLevelsBatch(p)
		if len(byLevel) != c.Depth() {
			t.Fatalf("batch %d: %d levels, want depth %d", batch, len(byLevel), c.Depth())
		}
		totals := c.EnergyBatch(p)
		for s, in := range inputs {
			vals := c.Eval(in)
			want := c.EnergyByLevel(vals)
			var sum int64
			for l := range byLevel {
				if byLevel[l][s] != want[l] {
					t.Fatalf("batch %d sample %d level %d: EnergyLevelsBatch=%d EnergyByLevel=%d",
						batch, s, l+1, byLevel[l][s], want[l])
				}
				sum += byLevel[l][s]
			}
			if sum != totals[s] || sum != c.Energy(vals) {
				t.Fatalf("batch %d sample %d: level sum %d vs EnergyBatch %d vs Energy %d",
					batch, s, sum, totals[s], c.Energy(vals))
			}
		}
	}
}

// An evaluator is reusable across batches of different sizes, and the
// arena-borrowing contract (result invalidated by the next call) is
// honored by Clone.
func TestEvaluatorReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	c := randomCircuit(rng)
	e := NewEvaluator(c, 2)
	defer e.Close()
	first := randomBatch(rng, c, 70)
	kept := e.EvalPlanes(PackBools(first)).Clone()
	for _, batch := range []int{1, 64, 3, 129} {
		checkEvaluatorBatch(t, e, c, randomBatch(rng, c, batch))
	}
	// The clone still matches the first batch after all that reuse.
	for s, in := range first {
		want := c.Eval(in)
		for w := range want {
			if kept.Get(Wire(w), s) != want[w] {
				t.Fatalf("clone corrupted: sample %d wire %d", s, w)
			}
		}
	}
}

func checkEvaluatorBatch(t *testing.T, e *Evaluator, c *Circuit, inputs [][]bool) {
	t.Helper()
	got := e.EvalBatch(inputs)
	for s, in := range inputs {
		want := c.Eval(in)
		for w := range want {
			if got[s][w] != want[w] {
				t.Fatalf("sample %d wire %d: batch=%v want=%v", s, w, got[s][w], want[w])
			}
		}
	}
}

func TestEvalBatchEmptyAndMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := randomCircuit(rng)
	e := NewEvaluator(c, 1)
	defer e.Close()
	if out := e.EvalBatch(nil); out != nil {
		t.Fatalf("EvalBatch(nil) = %v, want nil", out)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("EvalBatch accepted a row of the wrong width")
		}
	}()
	e.EvalBatch([][]bool{make([]bool, c.NumInputs()+1)})
}
