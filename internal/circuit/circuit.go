// Package circuit implements the boolean threshold-circuit model the
// paper computes in: directed acyclic circuits of McCulloch-Pitts gates,
// each with unbounded fan-in, integer weights w_i and an integer
// threshold t, firing iff Σ w_i·y_i >= t.
//
// The representation is a flat arena tuned for circuits with millions of
// gates. Gates are organized into *groups* sharing one input span: the
// constructions of Lemma 3.1 create 2^k gates that read the same
// weighted sum and differ only in threshold, so the span (and the sum,
// during evaluation) is shared. Grouping changes neither the gate count
// nor any complexity measure — Edges() counts every gate's fan-in
// individually, exactly as the paper would — it only deduplicates
// storage and work.
//
// Wires are numbered 0..NumInputs-1 for circuit inputs and NumInputs+g
// for the output of gate g; gates may only reference wires created
// before them, so every circuit is acyclic by construction.
//
// The package provides the complexity measures the paper studies — size
// (gate count), depth, edges and fan-in — plus the energy measure of
// Uchizawa et al. discussed in Section 6 (a gate is charged one unit iff
// it fires).
package circuit

import (
	"fmt"
	"runtime"
	"sync"
)

// Wire identifies an input or a gate output. Inputs occupy
// [0, NumInputs); the output of gate g is Wire(NumInputs + g).
type Wire = int32

// group is a set of consecutive gates sharing one input span, differing
// only in threshold.
//
// Builder-built circuits store wires and weights as parallel arrays:
// wOff == inStart and wireBase == 0 for every group. Circuits assembled
// from the TCS2 compact format (see Assemble) share spans between
// groups instead — inStart/inEnd select a *relative* wire pattern that
// many groups reference, wireBase rebases it to absolute wire ids, and
// wOff selects an independently deduplicated weight span of the same
// length. Every reader of a span must therefore go through the
// (wireBase, wOff) indirection; the hot paths keep the canonical case
// branch-free because the arithmetic degenerates to the old indexing.
type group struct {
	inStart, inEnd int64 // span into wires (relative ids when wireBase != 0)
	wOff           int64 // weight span offset (== inStart when parallel)
	gateStart      int32 // first gate index
	gateCount      int32
	level          int32
	wireBase       Wire // added to every stored wire id in the span
}

// Circuit is an immutable threshold circuit produced by a Builder.
type Circuit struct {
	numInputs int

	wires      []Wire
	weights    []int64
	groups     []group
	thresholds []int64 // per gate
	gateGroup  []int32 // gate -> group index

	depth       int
	edges       int64     // cached Σ fan-in·gateCount, set by Build/Read
	storedEdges int64     // cached Σ span length, set by Build/Read/Assemble
	shared      bool      // spans are dictionary-shared (set by Assemble)
	levelGroups [][]int32 // group indices by level

	outputs []Wire
}

// NumInputs returns the number of circuit input wires.
func (c *Circuit) NumInputs() int { return c.numInputs }

// Size returns the total number of gates, the paper's "size" measure.
func (c *Circuit) Size() int { return len(c.thresholds) }

// Depth returns the length of the longest input-to-output path measured
// in gates, the paper's "depth" measure.
func (c *Circuit) Depth() int { return c.depth }

// Edges returns the total number of connections, the paper's "edges":
// every gate contributes its full fan-in, whether or not its input span
// is shared with other gates in storage. The sum is computed once when
// the circuit is finalized (Build or Read) and cached; Stats and the
// verification walkers hit this in hot loops.
func (c *Circuit) Edges() int64 { return c.edges }

// computeEdges derives the edge count from the group table.
func (c *Circuit) computeEdges() int64 {
	var e int64
	for _, g := range c.groups {
		e += int64(g.inEnd-g.inStart) * int64(g.gateCount)
	}
	return e
}

// StoredEdges returns the number of physically stored connections after
// gate-group span sharing (a storage statistic, not a circuit-complexity
// measure): the sum of span lengths over all groups. For builder-built
// circuits this equals len(wires); circuits assembled from the compact
// format dedup further (many groups share one pattern), and reporting
// the span sum keeps Stats identical across representations of the same
// circuit.
func (c *Circuit) StoredEdges() int64 { return c.storedEdges }

// computeStoredEdges derives the stored-edge count from the group table.
func (c *Circuit) computeStoredEdges() int64 {
	var e int64
	for _, g := range c.groups {
		e += g.inEnd - g.inStart
	}
	return e
}

// MaxFanIn returns the maximum number of inputs to any gate.
func (c *Circuit) MaxFanIn() int {
	mx := int64(0)
	for _, g := range c.groups {
		if f := g.inEnd - g.inStart; f > mx {
			mx = f
		}
	}
	return int(mx)
}

// Outputs returns the designated output wires in marking order.
func (c *Circuit) Outputs() []Wire { return c.outputs }

// GateLevel returns the topological level of gate g (inputs are level 0).
func (c *Circuit) GateLevel(g int) int { return int(c.groups[c.gateGroup[g]].level) }

// FanIn returns the fan-in of gate g.
func (c *Circuit) FanIn(g int) int {
	gr := c.groups[c.gateGroup[g]]
	return int(gr.inEnd - gr.inStart)
}

// LevelSizes returns the number of gates at each level 1..Depth.
func (c *Circuit) LevelSizes() []int {
	sizes := make([]int, c.depth)
	for _, gr := range c.groups {
		sizes[gr.level-1] += int(gr.gateCount)
	}
	return sizes
}

// Builder constructs circuits. Gates must be added after all wires they
// reference, which makes cycles unrepresentable.
type Builder struct {
	c        Circuit
	numWires int32
	built    bool

	// parent is non-nil for shard builders created by Fork: wires below
	// numInputs are the parent's, and their levels resolve through it.
	parent *Builder

	// Memoized constant wires (see Const); -1 = not yet minted.
	constTrue  Wire
	constFalse Wire
}

// NewBuilder returns a builder for a circuit with numInputs input wires.
func NewBuilder(numInputs int) *Builder {
	b := &Builder{constTrue: -1, constFalse: -1}
	b.c.numInputs = numInputs
	b.numWires = int32(numInputs)
	return b
}

// NumWires returns the number of wires that exist so far: the circuit
// inputs plus one output wire per gate added.
func (b *Builder) NumWires() int { return int(b.numWires) }

// Reserve pre-sizes the builder's arenas for a circuit of at least the
// given totals: gates (thresholds and group membership), edges (stored
// input-span positions) and groups. Callers that know the construction's
// size bound up front — e.g. from the counting model's theorem bounds —
// avoid every intermediate reallocation/copy of the append-grown arenas.
// Estimates may overshoot freely: Build right-sizes slack away. Zero or
// smaller-than-current values are ignored.
func (b *Builder) Reserve(gates int, edges int64, groups int) {
	if b.built {
		panic("circuit: builder reused after Build")
	}
	if gates > cap(b.c.thresholds) {
		t := make([]int64, len(b.c.thresholds), gates)
		copy(t, b.c.thresholds)
		b.c.thresholds = t
		gg := make([]int32, len(b.c.gateGroup), gates)
		copy(gg, b.c.gateGroup)
		b.c.gateGroup = gg
	}
	if int(edges) > cap(b.c.wires) {
		w := make([]Wire, len(b.c.wires), edges)
		copy(w, b.c.wires)
		b.c.wires = w
		ws := make([]int64, len(b.c.weights), edges)
		copy(ws, b.c.weights)
		b.c.weights = ws
	}
	if groups > cap(b.c.groups) {
		g := make([]group, len(b.c.groups), groups)
		copy(g, b.c.groups)
		b.c.groups = g
	}
}

// Input returns the wire for circuit input i.
func (b *Builder) Input(i int) Wire {
	if i < 0 || i >= b.c.numInputs {
		panic(fmt.Sprintf("circuit: input %d out of range [0,%d)", i, b.c.numInputs))
	}
	return Wire(i)
}

// Gate appends a threshold gate computing Σ weights[i]·wire(inputs[i]) >=
// threshold and returns its output wire. inputs must reference existing
// wires. A gate with no inputs is a constant: it fires iff 0 >= threshold.
func (b *Builder) Gate(inputs []Wire, weights []int64, threshold int64) Wire {
	return b.GateGroup(inputs, weights, []int64{threshold})[0]
}

// GateGroup appends len(thresholds) gates that all compute the same
// weighted input sum and compare it against the respective thresholds.
// The input span is stored once. Returns the output wires in threshold
// order.
func (b *Builder) GateGroup(inputs []Wire, weights []int64, thresholds []int64) []Wire {
	if b.built {
		panic("circuit: builder reused after Build")
	}
	if len(inputs) != len(weights) {
		panic(fmt.Sprintf("circuit: %d inputs but %d weights", len(inputs), len(weights)))
	}
	if len(thresholds) == 0 {
		panic("circuit: GateGroup with no thresholds")
	}
	lvl := int32(0)
	for _, w := range inputs {
		if w < 0 || w >= b.numWires {
			panic(fmt.Sprintf("circuit: gate references wire %d, have %d wires", w, b.numWires))
		}
		if wl := b.wireLevel(w); wl > lvl {
			lvl = wl
		}
	}
	start := int64(len(b.c.wires))
	b.c.wires = append(b.c.wires, inputs...)
	b.c.weights = append(b.c.weights, weights...)
	gidx := int32(len(b.c.groups))
	gateStart := int32(len(b.c.thresholds))
	b.c.groups = append(b.c.groups, group{
		inStart:   start,
		inEnd:     int64(len(b.c.wires)),
		wOff:      start,
		gateStart: gateStart,
		gateCount: int32(len(thresholds)),
		level:     lvl + 1,
	})
	if int(lvl+1) > b.c.depth {
		b.c.depth = int(lvl + 1)
	}
	outs := make([]Wire, len(thresholds))
	for i, t := range thresholds {
		b.c.thresholds = append(b.c.thresholds, t)
		b.c.gateGroup = append(b.c.gateGroup, gidx)
		outs[i] = b.numWires
		b.numWires++
	}
	return outs
}

func (b *Builder) wireLevel(w Wire) int32 {
	if int(w) < b.c.numInputs {
		if b.parent != nil {
			// Fork: the wire belongs to (an ancestor of) the parent
			// builder, whose tables are read-only while forks build.
			return b.parent.wireLevel(w)
		}
		return 0
	}
	return b.c.groups[b.c.gateGroup[int(w)-b.c.numInputs]].level
}

// WireLevel returns the level of any existing wire (0 for inputs).
func (b *Builder) WireLevel(w Wire) int { return int(b.wireLevel(w)) }

// Const returns a constant wire: a zero-fan-in gate firing iff v. The
// gate is minted once per builder and polarity; repeated calls return
// the same wire, so compositions that sprinkle constants (padding,
// masked entries) pay at most two gates per circuit.
func (b *Builder) Const(v bool) Wire {
	if v {
		if b.constTrue < 0 {
			b.constTrue = b.Gate(nil, nil, 0) // 0 >= 0: always fires
		}
		return b.constTrue
	}
	if b.constFalse < 0 {
		b.constFalse = b.Gate(nil, nil, 1) // 0 >= 1: never fires
	}
	return b.constFalse
}

// MarkOutput designates w as a circuit output. Outputs may be marked in
// any order and read back from Circuit.Outputs in that order.
func (b *Builder) MarkOutput(w Wire) {
	if w < 0 || w >= b.numWires {
		panic(fmt.Sprintf("circuit: output wire %d does not exist", w))
	}
	b.c.outputs = append(b.c.outputs, w)
}

// Size returns the number of gates added so far.
func (b *Builder) Size() int { return len(b.c.thresholds) }

// Build finalizes the circuit. The builder must not be reused.
//
// Arenas whose capacity exceeds their length by more than 25% are
// reallocated exactly, so neither append growth nor an overshooting
// Reserve estimate leaves dead capacity pinned inside the circuit.
func (b *Builder) Build() *Circuit {
	if b.built {
		panic("circuit: Build called twice")
	}
	b.built = true
	c := b.c
	c.wires = rightsize(c.wires)
	c.weights = rightsize(c.weights)
	c.thresholds = rightsize(c.thresholds)
	c.gateGroup = rightsize(c.gateGroup)
	c.groups = rightsize(c.groups)
	c.edges = c.computeEdges()
	c.storedEdges = int64(len(c.wires))
	c.levelGroups = make([][]int32, c.depth)
	for gi, gr := range c.groups {
		c.levelGroups[gr.level-1] = append(c.levelGroups[gr.level-1], int32(gi))
	}
	b.c = Circuit{} // release the builder's reference
	return &c
}

// rightsize trims a slice's capacity to its length when the slack
// exceeds 25% (one memmove against megabytes of retained dead arena).
func rightsize[E any](s []E) []E {
	if cap(s)-len(s) <= len(s)/4 {
		return s
	}
	out := make([]E, len(s))
	copy(out, s)
	return out
}

// Eval evaluates the circuit sequentially on the given input assignment
// and returns the value of every wire. It panics if len(inputs) differs
// from NumInputs.
func (c *Circuit) Eval(inputs []bool) []bool {
	vals := c.newWireVals(inputs)
	for gi := range c.groups {
		c.evalGroup(int32(gi), vals)
	}
	return vals
}

// EvalInto is Eval with caller-owned storage: vals is reused when its
// capacity suffices (pass the previous call's return value), so
// repeated single-sample evaluations of the same circuit allocate
// nothing. Pass nil on the first call.
func (c *Circuit) EvalInto(inputs, vals []bool) []bool {
	if len(inputs) != c.numInputs {
		panic(fmt.Sprintf("circuit: %d inputs supplied, want %d", len(inputs), c.numInputs))
	}
	n := c.numInputs + c.Size()
	if cap(vals) < n {
		vals = make([]bool, n)
	}
	vals = vals[:n]
	copy(vals, inputs)
	for gi := range c.groups {
		c.evalGroup(int32(gi), vals)
	}
	return vals
}

func (c *Circuit) newWireVals(inputs []bool) []bool {
	if len(inputs) != c.numInputs {
		panic(fmt.Sprintf("circuit: %d inputs supplied, want %d", len(inputs), c.numInputs))
	}
	vals := make([]bool, c.numInputs+c.Size())
	copy(vals, inputs)
	return vals
}

// evalGroup computes the shared weighted sum once and applies every
// member gate's threshold.
func (c *Circuit) evalGroup(gi int32, vals []bool) {
	gr := &c.groups[gi]
	wires := c.wires[gr.inStart:gr.inEnd]
	ws := c.weights[gr.wOff : gr.wOff+int64(len(wires))]
	wb := gr.wireBase
	var sum int64
	for i, w := range wires {
		if vals[wb+w] {
			sum += ws[i]
		}
	}
	base := c.numInputs + int(gr.gateStart)
	for k := int32(0); k < gr.gateCount; k++ {
		vals[base+int(k)] = sum >= c.thresholds[gr.gateStart+k]
	}
}

// seqLevelFactor tunes the sequential fallback shared by EvalParallel
// and Evaluator's single-block mode: a level with fewer than
// seqLevelFactor*workers gate groups is evaluated on the calling
// goroutine, because fan-out/join overhead (goroutine handoff, cache
// transfer of the shared wire array) exceeds the work of a handful of
// group evaluations. 4 keeps every worker's chunk at least a few
// groups long once fan-out does happen.
const seqLevelFactor = 4

// EvalParallel evaluates the circuit level-by-level, fanning each level's
// gate groups across workers goroutines (default GOMAXPROCS when
// workers <= 0). Gates within a level are independent by construction,
// so this is the circuit-model notion of constant-time parallel
// execution: wall-clock steps equal depth.
func (c *Circuit) EvalParallel(inputs []bool, workers int) []bool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	vals := c.newWireVals(inputs)
	var wg sync.WaitGroup
	for _, gis := range c.levelGroups {
		if len(gis) < seqLevelFactor*workers {
			for _, gi := range gis {
				c.evalGroup(gi, vals)
			}
			continue
		}
		chunk := (len(gis) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			if lo >= len(gis) {
				break
			}
			hi := lo + chunk
			if hi > len(gis) {
				hi = len(gis)
			}
			wg.Add(1)
			go func(part []int32) {
				defer wg.Done()
				for _, gi := range part {
					c.evalGroup(gi, vals)
				}
			}(gis[lo:hi])
		}
		wg.Wait()
	}
	return vals
}

// OutputValues extracts the designated outputs from a wire assignment
// returned by Eval or EvalParallel.
func (c *Circuit) OutputValues(vals []bool) []bool {
	out := make([]bool, len(c.outputs))
	for i, w := range c.outputs {
		out[i] = vals[w]
	}
	return out
}

// Energy returns the number of gates that fire under the given wire
// assignment — the energy measure of Uchizawa, Douglas and Maass that
// Section 6 poses as an open problem for these circuits.
func (c *Circuit) Energy(vals []bool) int64 {
	var e int64
	for g := 0; g < c.Size(); g++ {
		if vals[c.numInputs+g] {
			e++
		}
	}
	return e
}

// EnergyByLevel returns the number of firing gates at each level
// 1..Depth under the given wire assignment — the per-timestep power
// profile a neuromorphic deployment would draw.
func (c *Circuit) EnergyByLevel(vals []bool) []int64 {
	out := make([]int64, c.depth)
	for _, gr := range c.groups {
		base := c.numInputs + int(gr.gateStart)
		for k := int32(0); k < gr.gateCount; k++ {
			if vals[base+int(k)] {
				out[gr.level-1]++
			}
		}
	}
	return out
}

// Stats bundles the complexity measures of a circuit. Edges is the
// paper's semantic measure (every gate charged its full fan-in);
// StoredEdges is the physical count after gate-group span sharing, so
// StoredEdges <= Edges always, with equality iff no group has more than
// one member gate.
type Stats struct {
	Inputs      int
	Size        int
	Depth       int
	Edges       int64
	StoredEdges int64
	MaxFanIn    int
}

// Stats returns the circuit's complexity measures.
func (c *Circuit) Stats() Stats {
	return Stats{
		Inputs:      c.numInputs,
		Size:        c.Size(),
		Depth:       c.Depth(),
		Edges:       c.Edges(),
		StoredEdges: c.StoredEdges(),
		MaxFanIn:    c.MaxFanIn(),
	}
}

func (s Stats) String() string {
	base := fmt.Sprintf("gates=%d depth=%d edges=%d maxfanin=%d inputs=%d",
		s.Size, s.Depth, s.Edges, s.MaxFanIn, s.Inputs)
	if s.StoredEdges != 0 && s.StoredEdges != s.Edges {
		// Grouped gates share input spans: the semantic edge count the
		// paper prices and the stored count diverge. Show both so a
		// reader never mistakes the storage figure for the complexity
		// measure.
		base += fmt.Sprintf(" (stored-edges=%d)", s.StoredEdges)
	}
	return base
}

// GateSpec describes one gate for inspection/export.
type GateSpec struct {
	Inputs    []Wire
	Weights   []int64
	Threshold int64
	Level     int
}

// VisitEdges calls f for every semantic edge (gate, source wire,
// weight), expanding shared spans so each gate's full fan-in is visited.
// Iteration order is by gate, then input position.
func (c *Circuit) VisitEdges(f func(gate int, src Wire, weight int64)) {
	for gi := range c.groups {
		gr := &c.groups[gi]
		wires := c.wires[gr.inStart:gr.inEnd]
		ws := c.weights[gr.wOff : gr.wOff+int64(len(wires))]
		for k := int32(0); k < gr.gateCount; k++ {
			g := int(gr.gateStart + k)
			for i, w := range wires {
				f(g, gr.wireBase+w, ws[i])
			}
		}
	}
}

// Threshold returns the threshold of gate g without copying its span.
func (c *Circuit) Threshold(g int) int64 { return c.thresholds[g] }

// VisitGates calls f once per gate in ascending gate order with the
// gate's input span, weights, threshold and level. The inputs and
// weights slices are borrowed from the circuit's arena (shared between
// member gates of one group) and must not be modified or retained.
// This is the allocation-free inspection primitive the verification
// layer walks circuits with; use Gate for an owned copy.
func (c *Circuit) VisitGates(f func(g int, inputs []Wire, weights []int64, threshold int64, level int)) {
	// For dictionary-shared circuits the stored span holds relative wire
	// ids; materialize absolute ids into one per-call scratch buffer
	// (reused across groups) so the callback contract — borrowed slices,
	// valid only during the call — is unchanged.
	var scratch []Wire
	if c.shared {
		scratch = make([]Wire, c.MaxFanIn())
	}
	for gi := range c.groups {
		gr := &c.groups[gi]
		ins := c.wires[gr.inStart:gr.inEnd:gr.inEnd]
		if gr.wireBase != 0 {
			abs := scratch[:len(ins)]
			for i, w := range ins {
				abs[i] = gr.wireBase + w
			}
			ins = abs
		}
		n := gr.inEnd - gr.inStart
		ws := c.weights[gr.wOff : gr.wOff+n : gr.wOff+n]
		for k := int32(0); k < gr.gateCount; k++ {
			g := int(gr.gateStart + k)
			f(g, ins, ws, c.thresholds[g], int(gr.level))
		}
	}
}

// WithThreshold returns a copy of the circuit with gate g's threshold
// replaced by t. Everything else (spans, weights, groups, outputs) is
// shared with the receiver, so the copy is cheap even for millions of
// gates. This is the fault-injection primitive behind the certification
// tests and the neuromorphic robustness experiments: a tampered or
// drifted threshold is exactly the hardware fault a deployed gate
// suffers, and the verification layer must catch the ones that matter.
func (c *Circuit) WithThreshold(g int, t int64) *Circuit {
	if g < 0 || g >= c.Size() {
		panic(fmt.Sprintf("circuit: WithThreshold gate %d out of range [0,%d)", g, c.Size()))
	}
	cc := *c
	cc.thresholds = append([]int64(nil), c.thresholds...)
	cc.thresholds[g] = t
	return &cc
}

// Gate returns a copy of gate g's description.
func (c *Circuit) Gate(g int) GateSpec {
	gr := c.groups[c.gateGroup[g]]
	n := gr.inEnd - gr.inStart
	spec := GateSpec{
		Inputs:    append([]Wire(nil), c.wires[gr.inStart:gr.inEnd]...),
		Weights:   append([]int64(nil), c.weights[gr.wOff:gr.wOff+n]...),
		Threshold: c.thresholds[g],
		Level:     int(gr.level),
	}
	if gr.wireBase != 0 {
		for i := range spec.Inputs {
			spec.Inputs[i] += gr.wireBase
		}
	}
	return spec
}
