package circuit

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// Build the paper's introductory example: gate g_ijk fires iff
// x_ij + x_ik + x_jk >= 3 (an AND of three edge variables).
func buildAnd3() *Circuit {
	b := NewBuilder(3)
	g := b.Gate([]Wire{0, 1, 2}, []int64{1, 1, 1}, 3)
	b.MarkOutput(g)
	return b.Build()
}

func TestAnd3(t *testing.T) {
	c := buildAnd3()
	for mask := 0; mask < 8; mask++ {
		in := []bool{mask&1 != 0, mask&2 != 0, mask&4 != 0}
		got := c.OutputValues(c.Eval(in))[0]
		want := mask == 7
		if got != want {
			t.Errorf("mask %03b: got %v want %v", mask, got, want)
		}
	}
	if c.Size() != 1 || c.Depth() != 1 || c.Edges() != 3 || c.MaxFanIn() != 3 {
		t.Errorf("stats wrong: %v", c.Stats())
	}
}

// Majority-of-5 via a single threshold gate.
func TestMajority(t *testing.T) {
	b := NewBuilder(5)
	g := b.Gate([]Wire{0, 1, 2, 3, 4}, []int64{1, 1, 1, 1, 1}, 3)
	b.MarkOutput(g)
	c := b.Build()
	for mask := 0; mask < 32; mask++ {
		in := make([]bool, 5)
		ones := 0
		for i := 0; i < 5; i++ {
			in[i] = mask&(1<<i) != 0
			if in[i] {
				ones++
			}
		}
		if got := c.OutputValues(c.Eval(in))[0]; got != (ones >= 3) {
			t.Errorf("mask %05b: got %v", mask, got)
		}
	}
}

// Negative weights: x0 - x1 >= 1 computes x0 AND NOT x1.
func TestNegativeWeights(t *testing.T) {
	b := NewBuilder(2)
	g := b.Gate([]Wire{0, 1}, []int64{1, -1}, 1)
	b.MarkOutput(g)
	c := b.Build()
	cases := map[[2]bool]bool{
		{false, false}: false,
		{true, false}:  true,
		{false, true}:  false,
		{true, true}:   false,
	}
	for in, want := range cases {
		if got := c.OutputValues(c.Eval(in[:]))[0]; got != want {
			t.Errorf("%v: got %v want %v", in, got, want)
		}
	}
}

func TestConstGates(t *testing.T) {
	b := NewBuilder(1)
	one := b.Const(true)
	zero := b.Const(false)
	b.MarkOutput(one)
	b.MarkOutput(zero)
	c := b.Build()
	out := c.OutputValues(c.Eval([]bool{false}))
	if !out[0] || out[1] {
		t.Errorf("constants wrong: %v", out)
	}
	if c.Depth() != 1 {
		t.Errorf("constants should be level 1, depth = %d", c.Depth())
	}
}

// Two-layer parity of two bits (XOR): layer 1 computes OR and AND,
// layer 2 computes OR - AND >= 1.
func buildXor() *Circuit {
	b := NewBuilder(2)
	or := b.Gate([]Wire{0, 1}, []int64{1, 1}, 1)
	and := b.Gate([]Wire{0, 1}, []int64{1, 1}, 2)
	out := b.Gate([]Wire{or, and}, []int64{1, -1}, 1)
	b.MarkOutput(out)
	return b.Build()
}

func TestXorDepthLevels(t *testing.T) {
	c := buildXor()
	if c.Depth() != 2 || c.Size() != 3 {
		t.Fatalf("depth=%d size=%d, want 2, 3", c.Depth(), c.Size())
	}
	for mask := 0; mask < 4; mask++ {
		in := []bool{mask&1 != 0, mask&2 != 0}
		want := in[0] != in[1]
		if got := c.OutputValues(c.Eval(in))[0]; got != want {
			t.Errorf("xor(%v) = %v", in, got)
		}
	}
	sizes := c.LevelSizes()
	if len(sizes) != 2 || sizes[0] != 2 || sizes[1] != 1 {
		t.Errorf("level sizes = %v, want [2 1]", sizes)
	}
	if c.GateLevel(0) != 1 || c.GateLevel(2) != 2 {
		t.Error("gate levels wrong")
	}
}

// EvalParallel must agree with Eval on random circuits.
func TestEvalParallelAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		nin := 4 + rng.Intn(8)
		b := NewBuilder(nin)
		nGates := 50 + rng.Intn(400)
		for g := 0; g < nGates; g++ {
			avail := int32(nin + g)
			fanin := 1 + rng.Intn(6)
			ins := make([]Wire, fanin)
			ws := make([]int64, fanin)
			for i := range ins {
				ins[i] = Wire(rng.Int31n(avail))
				ws[i] = int64(rng.Intn(7) - 3)
			}
			w := b.Gate(ins, ws, int64(rng.Intn(5)-2))
			if g%7 == 0 {
				b.MarkOutput(w)
			}
		}
		c := b.Build()
		for e := 0; e < 5; e++ {
			in := make([]bool, nin)
			for i := range in {
				in[i] = rng.Intn(2) == 1
			}
			seq := c.Eval(in)
			par := c.EvalParallel(in, 4)
			for w := range seq {
				if seq[w] != par[w] {
					t.Fatalf("trial %d: wire %d differs", trial, w)
				}
			}
		}
	}
}

func TestEnergy(t *testing.T) {
	c := buildXor()
	// Input (1,0): OR fires, AND doesn't, XOR fires -> energy 2.
	vals := c.Eval([]bool{true, false})
	if e := c.Energy(vals); e != 2 {
		t.Errorf("energy = %d, want 2", e)
	}
	// Input (1,1): OR, AND fire, XOR doesn't -> energy 2.
	if e := c.Energy(c.Eval([]bool{true, true})); e != 2 {
		t.Errorf("energy = %d, want 2", e)
	}
	// Input (0,0): nothing fires.
	if e := c.Energy(c.Eval([]bool{false, false})); e != 0 {
		t.Errorf("energy = %d, want 0", e)
	}
}

// EnergyByLevel sums to Energy and respects level sizes.
func TestEnergyByLevel(t *testing.T) {
	c := buildXor()
	vals := c.Eval([]bool{true, false})
	byLevel := c.EnergyByLevel(vals)
	if len(byLevel) != c.Depth() {
		t.Fatalf("profile length %d != depth %d", len(byLevel), c.Depth())
	}
	var sum int64
	for lvl, e := range byLevel {
		sum += e
		if e > int64(c.LevelSizes()[lvl]) {
			t.Errorf("level %d energy %d exceeds its gate count", lvl+1, e)
		}
	}
	if sum != c.Energy(vals) {
		t.Errorf("per-level sum %d != total energy %d", sum, c.Energy(vals))
	}
	// (1,0): OR fires at level 1, XOR at level 2.
	if byLevel[0] != 1 || byLevel[1] != 1 {
		t.Errorf("profile %v, want [1 1]", byLevel)
	}
}

func TestBuilderPanics(t *testing.T) {
	cases := []func(){
		func() { NewBuilder(2).Gate([]Wire{5}, []int64{1}, 0) },    // future wire
		func() { NewBuilder(2).Gate([]Wire{0}, []int64{1, 2}, 0) }, // arity mismatch
		func() { NewBuilder(2).Input(2) },                          // bad input
		func() { NewBuilder(2).MarkOutput(2) },                     // nonexistent output
		func() { NewBuilder(2).Gate([]Wire{-1}, []int64{1}, 0) },   // negative wire
		func() { buildXor().Eval([]bool{true}) },                   // wrong input count
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

// Depth is 1 + max input level — chain of gates has depth = length.
func TestDepthChain(t *testing.T) {
	b := NewBuilder(1)
	w := b.Input(0)
	for i := 0; i < 10; i++ {
		w = b.Gate([]Wire{w}, []int64{1}, 1) // identity gate
	}
	b.MarkOutput(w)
	c := b.Build()
	if c.Depth() != 10 {
		t.Errorf("depth = %d, want 10", c.Depth())
	}
	// Identity chain preserves the input.
	if got := c.OutputValues(c.Eval([]bool{true}))[0]; !got {
		t.Error("identity chain lost the signal")
	}
}

// Property: gate g's level always exceeds the level of each of its
// inputs, on randomly built circuits.
func TestLevelInvariant(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nin := 2 + rng.Intn(5)
		b := NewBuilder(nin)
		n := 20 + rng.Intn(100)
		for g := 0; g < n; g++ {
			avail := int32(nin + g)
			fanin := 1 + rng.Intn(4)
			ins := make([]Wire, fanin)
			ws := make([]int64, fanin)
			for i := range ins {
				ins[i] = Wire(rng.Int31n(avail))
				ws[i] = 1
			}
			b.Gate(ins, ws, 1)
		}
		c := b.Build()
		for g := 0; g < c.Size(); g++ {
			spec := c.Gate(g)
			for _, in := range spec.Inputs {
				inLvl := 0
				if int(in) >= c.NumInputs() {
					inLvl = c.GateLevel(int(in) - c.NumInputs())
				}
				if spec.Level <= inLvl {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestGateSpecAndStatsString(t *testing.T) {
	c := buildXor()
	spec := c.Gate(2)
	if spec.Threshold != 1 || len(spec.Inputs) != 2 || spec.Level != 2 {
		t.Errorf("GateSpec wrong: %+v", spec)
	}
	if !strings.Contains(c.Stats().String(), "gates=3") {
		t.Error("Stats.String missing gate count")
	}
}

func TestWriteDOT(t *testing.T) {
	var sb strings.Builder
	if err := buildXor().WriteDOT(&sb, "xor"); err != nil {
		t.Fatal(err)
	}
	s := sb.String()
	for _, frag := range []string{"digraph", "x0", "x1", "g2", "doublecircle", "-1"} {
		if !strings.Contains(s, frag) {
			t.Errorf("DOT output missing %q", frag)
		}
	}
}

func TestEvalParallelSmallLevels(t *testing.T) {
	// Exercise the inline path (levels smaller than 4*workers).
	c := buildXor()
	seq := c.Eval([]bool{true, false})
	par := c.EvalParallel([]bool{true, false}, 8)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatal("parallel small-level mismatch")
		}
	}
}
