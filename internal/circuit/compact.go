package circuit

import "fmt"

// This file is the circuit-side half of the TCS2 compact format (the
// envelope, segment directory and hashing live in internal/store): a
// raw-parts constructor for circuits whose wire and weight arenas are
// shared dictionaries — possibly aliasing a read-only file mapping —
// and a group-granular visitor the encoder walks to discover those
// dictionaries in the first place.
//
// The representation trick: the constructions of Lemmas 3.1/4.2 stamp
// out the same gate pattern at every block position, so across a
// multi-million-group circuit the *shape* of an input span (its wire
// ids relative to the first one) and its weight vector repeat massively
// — at N=16 the 333k groups of the Strassen matmul circuit share 23k
// relative wire patterns and 1.8k weight spans. Storing each pattern
// once and giving every group a (pattern, wireBase, weight-span)
// reference shrinks the stored arenas ~5x below the parallel layout,
// and because the patterns are raw little-endian arrays they can be
// used in place from an mmap with no per-load decode of the hot data.

// RawGroup describes one gate group in dictionary form: the wire span
// [InStart, InEnd) indexes the shared relative-pattern arena and is
// rebased by WireBase; WOff locates an equal-length weight span.
type RawGroup struct {
	InStart, InEnd int64 // relative wire pattern in Raw.Wires
	WOff           int64 // weight span offset in Raw.Weights
	GateCount      int32
	Level          int32
	WireBase       Wire // added to every pattern value
}

// Raw bundles the pre-parsed parts of a compact circuit. Wires and
// Weights may alias read-only storage (an mmap'd file): Assemble never
// writes to them, and neither does any method of the resulting Circuit.
// Thresholds, Groups and Outputs are owned by the circuit.
type Raw struct {
	NumInputs  int
	Wires      []Wire  // concatenated relative patterns (shared, read-only)
	Weights    []int64 // concatenated weight spans (shared, read-only)
	Thresholds []int64 // per gate, in gate order
	Groups     []RawGroup
	Outputs    []Wire
}

// Assemble validates r and builds a dictionary-shared Circuit around
// its arenas. Validation guarantees memory safety of every evaluation
// and inspection path — span and weight offsets in bounds, every
// resolved wire id within [0, wires-so-far) so acyclicity and index
// safety hold, outputs in range — at O(dictionary + groups) cost, not
// O(expanded edges): per-pattern wire extrema are computed once per
// distinct span and reused by every group referencing it. Deeper
// semantic invariants (declared levels matching the recomputed
// levelization) are *not* re-derived here; they are covered by the
// integrity envelope in internal/store and, on demand, by the
// verification layer's structural walkers, exactly like a TCM1 load
// trusts its checksummed file for everything validate() doesn't check.
func Assemble(r Raw) (*Circuit, error) {
	if r.NumInputs < 0 {
		return nil, fmt.Errorf("circuit: assemble: negative input count %d", r.NumInputs)
	}
	if int64(r.NumInputs)+int64(len(r.Thresholds)) > int64(1)<<31-1 {
		return nil, fmt.Errorf("circuit: assemble: %d wires overflow int32", int64(r.NumInputs)+int64(len(r.Thresholds)))
	}
	nw := int64(len(r.Wires))
	nwt := int64(len(r.Weights))
	maxLevel := int32(0)

	// Wire extrema per distinct span, shared across the groups that
	// reference it — the pass that keeps validation off the expanded
	// edge list.
	type span struct{ lo, hi int64 }
	extrema := make(map[span][2]int64)

	c := &Circuit{numInputs: r.NumInputs, shared: true}
	c.groups = make([]group, len(r.Groups))
	c.thresholds = r.Thresholds
	c.wires = r.Wires
	c.weights = r.Weights
	c.gateGroup = make([]int32, len(r.Thresholds))

	gateStart := int32(0)
	for gi, rg := range r.Groups {
		if rg.GateCount < 1 {
			return nil, fmt.Errorf("circuit: assemble: group %d has %d gates", gi, rg.GateCount)
		}
		if rg.Level < 1 || int(rg.Level) > len(r.Groups) {
			return nil, fmt.Errorf("circuit: assemble: group %d has level %d", gi, rg.Level)
		}
		if rg.InStart < 0 || rg.InEnd < rg.InStart || rg.InEnd > nw {
			return nil, fmt.Errorf("circuit: assemble: group %d has bad span [%d,%d)", gi, rg.InStart, rg.InEnd)
		}
		n := rg.InEnd - rg.InStart
		if rg.WOff < 0 || rg.WOff+n > nwt {
			return nil, fmt.Errorf("circuit: assemble: group %d has bad weight span [%d,%d)", gi, rg.WOff, rg.WOff+n)
		}
		if int64(gateStart)+int64(rg.GateCount) > int64(len(r.Thresholds)) {
			return nil, fmt.Errorf("circuit: assemble: groups cover more than %d gates", len(r.Thresholds))
		}
		if n > 0 {
			key := span{rg.InStart, rg.InEnd}
			mm, ok := extrema[key]
			if !ok {
				mm = [2]int64{int64(r.Wires[rg.InStart]), int64(r.Wires[rg.InStart])}
				for _, w := range r.Wires[rg.InStart+1 : rg.InEnd] {
					if int64(w) < mm[0] {
						mm[0] = int64(w)
					}
					if int64(w) > mm[1] {
						mm[1] = int64(w)
					}
				}
				extrema[key] = mm
			}
			// Every resolved id must name an input or an earlier gate:
			// that is both the acyclicity invariant and the bounds check
			// evaluation relies on.
			lo := int64(rg.WireBase) + mm[0]
			hi := int64(rg.WireBase) + mm[1]
			if lo < 0 || hi >= int64(r.NumInputs)+int64(gateStart) {
				return nil, fmt.Errorf("circuit: assemble: group %d references wire range [%d,%d] outside [0,%d)",
					gi, lo, hi, int64(r.NumInputs)+int64(gateStart))
			}
		}
		c.groups[gi] = group{
			inStart:   rg.InStart,
			inEnd:     rg.InEnd,
			wOff:      rg.WOff,
			gateStart: gateStart,
			gateCount: rg.GateCount,
			level:     rg.Level,
			wireBase:  rg.WireBase,
		}
		for g := gateStart; g < gateStart+rg.GateCount; g++ {
			c.gateGroup[g] = int32(gi)
		}
		gateStart += rg.GateCount
		if rg.Level > maxLevel {
			maxLevel = rg.Level
		}
		c.storedEdges += n
	}
	if int(gateStart) != len(r.Thresholds) {
		return nil, fmt.Errorf("circuit: assemble: groups cover %d gates, have %d", gateStart, len(r.Thresholds))
	}
	maxWire := Wire(r.NumInputs + len(r.Thresholds))
	for _, o := range r.Outputs {
		if o < 0 || o >= maxWire {
			return nil, fmt.Errorf("circuit: assemble: output wire %d out of range", o)
		}
	}
	c.outputs = r.Outputs
	c.depth = int(maxLevel)
	c.edges = c.computeEdges()
	c.levelGroups = make([][]int32, c.depth)
	for gi, gr := range c.groups {
		c.levelGroups[gr.level-1] = append(c.levelGroups[gr.level-1], int32(gi))
	}
	return c, nil
}

// GroupView is one gate group as seen by the compact encoder: the
// stored wire span exactly as the arena holds it (relative ids when
// WireBase != 0 — note RawWires[i]+WireBase is the absolute id, so
// RawWires[i]-RawWires[0] is base-independent and pattern identity is
// preserved across representations), plus the weight and threshold
// spans. All slices are borrowed; do not modify or retain.
type GroupView struct {
	RawWires   []Wire
	WireBase   Wire
	Weights    []int64
	Thresholds []int64
	Level      int
}

// VisitGroups calls f once per gate group in creation order. This is
// the encoder-side walk: group granularity (not gate granularity, as
// VisitGates) is what exposes the span sharing the compact format
// deduplicates.
func (c *Circuit) VisitGroups(f func(gv GroupView)) {
	for gi := range c.groups {
		gr := &c.groups[gi]
		n := gr.inEnd - gr.inStart
		f(GroupView{
			RawWires:   c.wires[gr.inStart:gr.inEnd:gr.inEnd],
			WireBase:   gr.wireBase,
			Weights:    c.weights[gr.wOff : gr.wOff+n : gr.wOff+n],
			Thresholds: c.thresholds[gr.gateStart : gr.gateStart+gr.gateCount : int64(gr.gateStart)+int64(gr.gateCount)],
			Level:      int(gr.level),
		})
	}
}
