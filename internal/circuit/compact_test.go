package circuit

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// dictify converts a canonical circuit into Raw dictionary form the way
// the TCS2 encoder does: relative wire patterns and weight spans are
// deduplicated, groups keep (pattern, base, weight-span) references.
func dictify(t *testing.T, c *Circuit) Raw {
	t.Helper()
	r := Raw{NumInputs: c.NumInputs()}
	patIdx := map[string]int64{}  // pattern key -> offset in r.Wires
	spanIdx := map[string]int64{} // weight key -> offset in r.Weights
	c.VisitGroups(func(gv GroupView) {
		var base Wire
		rel := make([]Wire, len(gv.RawWires))
		if len(gv.RawWires) > 0 {
			base = gv.WireBase + gv.RawWires[0]
			for i, w := range gv.RawWires {
				rel[i] = gv.WireBase + w - base
			}
		}
		pk := fmt.Sprint(rel)
		off, ok := patIdx[pk]
		if !ok {
			off = int64(len(r.Wires))
			patIdx[pk] = off
			r.Wires = append(r.Wires, rel...)
		}
		wk := fmt.Sprint(gv.Weights)
		wOff, ok := spanIdx[wk]
		if !ok {
			wOff = int64(len(r.Weights))
			spanIdx[wk] = wOff
			r.Weights = append(r.Weights, gv.Weights...)
		}
		r.Groups = append(r.Groups, RawGroup{
			InStart:   off,
			InEnd:     off + int64(len(rel)),
			WOff:      wOff,
			GateCount: int32(len(gv.Thresholds)),
			Level:     int32(gv.Level),
			WireBase:  base,
		})
		r.Thresholds = append(r.Thresholds, gv.Thresholds...)
	})
	r.Outputs = append([]Wire(nil), c.Outputs()...)
	return r
}

// testCircuit builds a small circuit with heavy pattern repetition
// (the structure dictionary sharing exploits), constants (empty spans),
// negative and non-unit weights, and multi-gate groups.
func testCircuit(t *testing.T) *Circuit {
	t.Helper()
	b := NewBuilder(8)
	tw := b.Const(true)
	var layer1 []Wire
	for i := 0; i < 4; i++ {
		ws := b.GateGroup(
			[]Wire{b.Input(2 * i), b.Input(2*i + 1), tw},
			[]int64{1, -1, 2},
			[]int64{0, 1, 2},
		)
		layer1 = append(layer1, ws...)
	}
	var layer2 []Wire
	for i := 0; i+3 < len(layer1); i += 2 {
		layer2 = append(layer2, b.Gate(
			[]Wire{layer1[i], layer1[i+1], layer1[i+3]},
			[]int64{3, -7, 5},
			1,
		))
	}
	out := b.Gate(layer2, []int64{1, 1, 1, 1, 1}, 2)
	b.MarkOutput(out)
	b.MarkOutput(layer1[0])
	return b.Build()
}

func TestAssembleEquivalence(t *testing.T) {
	c := testCircuit(t)
	sc, err := Assemble(dictify(t, c))
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if got, want := sc.Stats(), c.Stats(); got != want {
		t.Fatalf("Stats diverge: got %+v want %+v", got, want)
	}
	if len(sc.wires) >= len(c.wires) {
		t.Errorf("dictionary form did not shrink: %d stored vs %d parallel", len(sc.wires), len(c.wires))
	}

	rng := rand.New(rand.NewSource(7))
	var rows [][]bool
	for s := 0; s < 130; s++ {
		in := make([]bool, c.NumInputs())
		for i := range in {
			in[i] = rng.Intn(2) == 1
		}
		rows = append(rows, in)
		want := c.Eval(in)
		if got := sc.Eval(in); !reflect.DeepEqual(got, want) {
			t.Fatalf("Eval diverges on sample %d", s)
		}
		if got := sc.EvalParallel(in, 3); !reflect.DeepEqual(got, want) {
			t.Fatalf("EvalParallel diverges on sample %d", s)
		}
	}
	ev, sev := NewEvaluator(c, 2), NewEvaluator(sc, 2)
	defer ev.Close()
	defer sev.Close()
	want := ev.EvalPlanes(PackBools(rows))
	got := sev.EvalPlanes(PackBools(rows))
	if !reflect.DeepEqual(got.words, want.words) {
		t.Fatal("EvalPlanes diverges")
	}

	// Inspection surfaces must see identical gates.
	type gate struct {
		ins []Wire
		ws  []int64
		th  int64
		lvl int
	}
	collect := func(cc *Circuit) []gate {
		var out []gate
		cc.VisitGates(func(g int, ins []Wire, ws []int64, th int64, lvl int) {
			out = append(out, gate{append([]Wire(nil), ins...), append([]int64(nil), ws...), th, lvl})
		})
		return out
	}
	if !reflect.DeepEqual(collect(sc), collect(c)) {
		t.Fatal("VisitGates diverges")
	}
	for g := 0; g < c.Size(); g++ {
		if !reflect.DeepEqual(sc.Gate(g), c.Gate(g)) {
			t.Fatalf("Gate(%d) diverges", g)
		}
	}

	// Re-serialization must canonicalize back to the exact TCM1 bytes.
	var cb, scb bytes.Buffer
	if _, err := c.WriteTo(&cb); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.WriteTo(&scb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cb.Bytes(), scb.Bytes()) {
		t.Fatal("shared circuit serializes differently from canonical")
	}
	if ab := sc.AppendBinary(nil); !bytes.Equal(ab, cb.Bytes()) {
		t.Fatal("AppendBinary diverges from WriteTo")
	}
	if got, want := int64(len(cb.Bytes())), c.EncodedSize(); got != want {
		t.Fatalf("EncodedSize %d, wrote %d bytes", want, got)
	}

	// Splicing a shared circuit must equal splicing the canonical one.
	splice := func(src *Circuit) *Circuit {
		sb := NewBuilder(src.NumInputs())
		outs := sb.Splice(src, nil)
		for _, o := range outs {
			sb.MarkOutput(o)
		}
		return sb.Build()
	}
	a, bb := splice(c), splice(sc)
	var ab2, bb2 bytes.Buffer
	if _, err := a.WriteTo(&ab2); err != nil {
		t.Fatal(err)
	}
	if _, err := bb.WriteTo(&bb2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab2.Bytes(), bb2.Bytes()) {
		t.Fatal("spliceShared result differs from canonical splice")
	}
}

func TestAssembleRejectsBadParts(t *testing.T) {
	c := testCircuit(t)
	base := dictify(t, c)
	mutate := func(f func(*Raw)) Raw {
		r := base
		r.Groups = append([]RawGroup(nil), base.Groups...)
		r.Outputs = append([]Wire(nil), base.Outputs...)
		f(&r)
		return r
	}
	cases := map[string]Raw{
		"span past arena":  mutate(func(r *Raw) { r.Groups[0].InEnd = int64(len(r.Wires)) + 1 }),
		"negative span":    mutate(func(r *Raw) { r.Groups[2].InStart = -1 }),
		"weights past end": mutate(func(r *Raw) { r.Groups[2].WOff = int64(len(r.Weights)) }),
		"zero gate count":  mutate(func(r *Raw) { r.Groups[1].GateCount = 0 }),
		"level zero":       mutate(func(r *Raw) { r.Groups[1].Level = 0 }),
		"level absurd":     mutate(func(r *Raw) { r.Groups[1].Level = 1 << 30 }),
		"forward wire":     mutate(func(r *Raw) { r.Groups[1].WireBase = Wire(r.NumInputs) + 40 }),
		"negative wire":    mutate(func(r *Raw) { r.Groups[2].WireBase = -100 }),
		"output range":     mutate(func(r *Raw) { r.Outputs[0] = Wire(r.NumInputs + len(r.Thresholds)) }),
		"gate overflow":    mutate(func(r *Raw) { r.Groups[0].GateCount = int32(len(r.Thresholds)) + 1 }),
	}
	for name, r := range cases {
		if _, err := Assemble(r); err == nil {
			t.Errorf("%s: Assemble accepted corrupt parts", name)
		}
	}
	if _, err := Assemble(base); err != nil {
		t.Errorf("pristine parts rejected: %v", err)
	}
}
