package circuit

import (
	"fmt"
	"io"
)

// WriteDOT renders the circuit in Graphviz DOT format for inspection.
// Intended for small circuits (the quickstart example and docs); a
// million-gate circuit produces a DOT file of the same order.
func (c *Circuit) WriteDOT(w io.Writer, name string) error {
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=BT;\n", name); err != nil {
		return err
	}
	for i := 0; i < c.numInputs; i++ {
		if _, err := fmt.Fprintf(w, "  x%d [shape=box,label=\"x%d\"];\n", i, i); err != nil {
			return err
		}
	}
	isOut := make(map[Wire]bool, len(c.outputs))
	for _, o := range c.outputs {
		isOut[o] = true
	}
	for g := 0; g < c.Size(); g++ {
		spec := c.Gate(g)
		shape := "ellipse"
		if isOut[Wire(c.numInputs+g)] {
			shape = "doublecircle"
		}
		if _, err := fmt.Fprintf(w, "  g%d [shape=%s,label=\">=%d\"];\n", g, shape, spec.Threshold); err != nil {
			return err
		}
		for i, src := range spec.Inputs {
			var from string
			if int(src) < c.numInputs {
				from = fmt.Sprintf("x%d", src)
			} else {
				from = fmt.Sprintf("g%d", int(src)-c.numInputs)
			}
			label := ""
			if spec.Weights[i] != 1 {
				label = fmt.Sprintf(" [label=\"%d\"]", spec.Weights[i])
			}
			if _, err := fmt.Fprintf(w, "  %s -> g%d%s;\n", from, g, label); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
