package circuit

import "fmt"

// Embed copies every gate of src into the builder, substituting the
// given wires for src's inputs (inputMap[i] replaces src input i). It
// returns the wires now carrying src's marked outputs, in marking
// order.
//
// Embedding lets separately-built circuits compose into one: feed one
// circuit's outputs into another's inputs and the result is a single
// flat threshold circuit whose depth is the sum along the composition
// chain. Gate groups and their shared spans are preserved.
func (b *Builder) Embed(src *Circuit, inputMap []Wire) []Wire {
	if len(inputMap) != src.numInputs {
		panic(fmt.Sprintf("circuit: Embed needs %d input wires, got %d", src.numInputs, len(inputMap)))
	}
	for _, w := range inputMap {
		if w < 0 || w >= b.numWires {
			panic(fmt.Sprintf("circuit: Embed input wire %d does not exist", w))
		}
	}
	// old wire -> new wire
	remap := make([]Wire, src.numInputs+src.Size())
	copy(remap, inputMap)

	span := make([]Wire, 0, 64)
	weights := make([]int64, 0, 64)
	for gi := range src.groups {
		gr := &src.groups[gi]
		span = span[:0]
		weights = weights[:0]
		for p := gr.inStart; p < gr.inEnd; p++ {
			span = append(span, remap[src.wires[p]])
			weights = append(weights, src.weights[p])
		}
		thresholds := src.thresholds[gr.gateStart : gr.gateStart+gr.gateCount]
		outs := b.GateGroup(span, weights, thresholds)
		for k := int32(0); k < gr.gateCount; k++ {
			remap[src.numInputs+int(gr.gateStart+k)] = outs[k]
		}
	}
	outs := make([]Wire, len(src.outputs))
	for i, o := range src.outputs {
		outs[i] = remap[o]
	}
	return outs
}
