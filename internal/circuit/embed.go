package circuit

// Embed copies every gate of src into the builder, substituting the
// given wires for src's inputs (inputMap[i] replaces src input i). It
// returns the wires now carrying src's marked outputs, in marking
// order.
//
// Embedding lets separately-built circuits compose into one: feed one
// circuit's outputs into another's inputs and the result is a single
// flat threshold circuit whose depth is the sum along the composition
// chain. Gate groups and their shared spans are preserved.
//
// Deprecated: Embed is now a thin wrapper over Splice, which performs
// the same composition as a bulk arena copy (O(stored edges), no
// per-gate revalidation) and additionally accepts a nil inputMap for
// identity re-attachment. New code should call Splice directly; Embed
// remains for callers that prefer the historical name.
func (b *Builder) Embed(src *Circuit, inputMap []Wire) []Wire {
	if inputMap == nil {
		// Embed never accepted nil; keep its strict arity contract.
		inputMap = []Wire{}
	}
	return b.Splice(src, inputMap)
}
