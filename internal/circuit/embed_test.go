package circuit

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Chain two XOR circuits: xor(xor(a,b), c) is 3-input parity.
func TestEmbedChain(t *testing.T) {
	xor := buildXor()
	b := NewBuilder(3)
	mid := b.Embed(xor, []Wire{b.Input(0), b.Input(1)})
	out := b.Embed(xor, []Wire{mid[0], b.Input(2)})
	b.MarkOutput(out[0])
	c := b.Build()
	if c.Size() != 2*xor.Size() {
		t.Errorf("size %d, want %d", c.Size(), 2*xor.Size())
	}
	if c.Depth() != 2*xor.Depth() {
		t.Errorf("depth %d, want %d", c.Depth(), 2*xor.Depth())
	}
	for mask := 0; mask < 8; mask++ {
		in := []bool{mask&1 != 0, mask&2 != 0, mask&4 != 0}
		want := in[0] != in[1] != in[2]
		if got := c.OutputValues(c.Eval(in))[0]; got != want {
			t.Errorf("parity(%v) = %v", in, got)
		}
	}
}

// Embedding preserves behaviour gate-for-gate on random circuits: an
// identity embedding evaluates identically.
func TestEmbedIdentityProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := randomCircuit(rng)
		b := NewBuilder(src.NumInputs())
		ins := make([]Wire, src.NumInputs())
		for i := range ins {
			ins[i] = b.Input(i)
		}
		outs := b.Embed(src, ins)
		for _, o := range outs {
			b.MarkOutput(o)
		}
		c := b.Build()
		if c.Size() != src.Size() || c.Depth() != src.Depth() || c.Edges() != src.Edges() {
			return false
		}
		for trial := 0; trial < 3; trial++ {
			in := make([]bool, src.NumInputs())
			for i := range in {
				in[i] = rng.Intn(2) == 1
			}
			want := src.OutputValues(src.Eval(in))
			got := c.OutputValues(c.Eval(in))
			for i := range want {
				if want[i] != got[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Embedding into a circuit with pre-existing gates keeps levels
// consistent (depth = host wire level + embedded depth).
func TestEmbedDepthStacking(t *testing.T) {
	xor := buildXor()
	b := NewBuilder(2)
	// A depth-3 identity chain in the host first.
	w := b.Input(0)
	for i := 0; i < 3; i++ {
		w = b.Gate([]Wire{w}, []int64{1}, 1)
	}
	outs := b.Embed(xor, []Wire{w, b.Input(1)})
	b.MarkOutput(outs[0])
	c := b.Build()
	if c.Depth() != 3+xor.Depth() {
		t.Errorf("depth %d, want %d", c.Depth(), 3+xor.Depth())
	}
	// Function: xor(chained a, b) = xor(a, b).
	for mask := 0; mask < 4; mask++ {
		in := []bool{mask&1 != 0, mask&2 != 0}
		want := in[0] != in[1]
		if got := c.OutputValues(c.Eval(in))[0]; got != want {
			t.Errorf("mask %d wrong", mask)
		}
	}
}

func TestEmbedPanics(t *testing.T) {
	xor := buildXor()
	cases := []func(){
		func() { NewBuilder(2).Embed(xor, []Wire{0}) },     // wrong arity
		func() { NewBuilder(2).Embed(xor, []Wire{0, 99}) }, // missing wire
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}
