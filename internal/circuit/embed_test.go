package circuit

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// Chain two XOR circuits via Splice: xor(xor(a,b), c) is 3-input
// parity.
func TestSpliceChain(t *testing.T) {
	xor := buildXor()
	b := NewBuilder(3)
	mid := b.Splice(xor, []Wire{b.Input(0), b.Input(1)})
	out := b.Splice(xor, []Wire{mid[0], b.Input(2)})
	b.MarkOutput(out[0])
	c := b.Build()
	if c.Size() != 2*xor.Size() {
		t.Errorf("size %d, want %d", c.Size(), 2*xor.Size())
	}
	if c.Depth() != 2*xor.Depth() {
		t.Errorf("depth %d, want %d", c.Depth(), 2*xor.Depth())
	}
	for mask := 0; mask < 8; mask++ {
		in := []bool{mask&1 != 0, mask&2 != 0, mask&4 != 0}
		want := in[0] != in[1] != in[2]
		if got := c.OutputValues(c.Eval(in))[0]; got != want {
			t.Errorf("parity(%v) = %v", in, got)
		}
	}
}

// Splicing into a circuit with pre-existing gates keeps levels
// consistent (depth = host wire level + spliced depth).
func TestSpliceDepthStacking(t *testing.T) {
	xor := buildXor()
	b := NewBuilder(2)
	// A depth-3 identity chain in the host first.
	w := b.Input(0)
	for i := 0; i < 3; i++ {
		w = b.Gate([]Wire{w}, []int64{1}, 1)
	}
	outs := b.Splice(xor, []Wire{w, b.Input(1)})
	b.MarkOutput(outs[0])
	c := b.Build()
	if c.Depth() != 3+xor.Depth() {
		t.Errorf("depth %d, want %d", c.Depth(), 3+xor.Depth())
	}
	// Function: xor(chained a, b) = xor(a, b).
	for mask := 0; mask < 4; mask++ {
		in := []bool{mask&1 != 0, mask&2 != 0}
		want := in[0] != in[1]
		if got := c.OutputValues(c.Eval(in))[0]; got != want {
			t.Errorf("mask %d wrong", mask)
		}
	}
}

// Embed is deprecated and must remain exactly a thin alias for Splice:
// identical returned wires and a bit-identical built circuit on random
// (src, inputMap) pairs. Internal callers have all moved to Splice;
// this test is what keeps the alias honest until external callers can.
func TestEmbedIsSpliceAlias(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := randomCircuit(rng)
		build := func(compose func(*Builder, *Circuit, []Wire) []Wire) (*Circuit, []Wire) {
			b := NewBuilder(src.NumInputs() + 2)
			// A little host context so the map is not the identity.
			extra := b.Gate([]Wire{b.Input(0)}, []int64{1}, 1)
			ins := make([]Wire, src.NumInputs())
			for i := range ins {
				if i == 0 {
					ins[i] = extra
				} else {
					ins[i] = b.Input(rng.Intn(src.NumInputs() + 2))
				}
			}
			outs := compose(b, src, ins)
			for _, o := range outs {
				b.MarkOutput(o)
			}
			return b.Build(), outs
		}
		// Reset rng before each build so both draw the same inputMap.
		rng = rand.New(rand.NewSource(seed + 1))
		ce, outsE := build(func(b *Builder, s *Circuit, m []Wire) []Wire { return b.Embed(s, m) })
		rng = rand.New(rand.NewSource(seed + 1))
		cs, outsS := build(func(b *Builder, s *Circuit, m []Wire) []Wire { return b.Splice(s, m) })
		if len(outsE) != len(outsS) {
			return false
		}
		for i := range outsE {
			if outsE[i] != outsS[i] {
				return false
			}
		}
		var be, bs bytes.Buffer
		if _, err := ce.WriteTo(&be); err != nil {
			return false
		}
		if _, err := cs.WriteTo(&bs); err != nil {
			return false
		}
		return bytes.Equal(be.Bytes(), bs.Bytes())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Embed keeps its historical strict-arity contract: a nil inputMap is
// an arity error (unlike Splice, where nil means identity).
func TestEmbedNilInputMapPanics(t *testing.T) {
	xor := buildXor()
	b := NewBuilder(2)
	defer func() {
		if recover() == nil {
			t.Error("Embed(src, nil) did not panic")
		}
	}()
	b.Embed(xor, nil)
}

func TestEmbedPanics(t *testing.T) {
	xor := buildXor()
	cases := []func(){
		func() { NewBuilder(2).Embed(xor, []Wire{0}) },     // wrong arity
		func() { NewBuilder(2).Embed(xor, []Wire{0, 99}) }, // missing wire
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}
