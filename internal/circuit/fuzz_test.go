package circuit

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzRead ensures the circuit deserializer never panics or produces an
// invalid circuit from arbitrary bytes: it either errors or yields a
// circuit whose invariants hold (Eval on a zero input must not panic).
func FuzzRead(f *testing.F) {
	// Seed with valid circuits of a few shapes.
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(rng)
		var buf bytes.Buffer
		if _, err := c.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("TCM1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Read(bytes.NewReader(data))
		cb, errB := ReadBytes(data)
		if errB == nil && err != nil {
			// ReadBytes is strictly stricter than Read (it additionally
			// rejects trailing bytes); it must never accept what the
			// streaming decoder rejects.
			t.Fatalf("ReadBytes accepted input Read rejected: %v", err)
		}
		if err != nil {
			return
		}
		if c.NumInputs() > 1<<20 || c.Size() > 1<<22 {
			t.Skip("implausibly huge accepted circuit; skip evaluation")
		}
		in := make([]bool, c.NumInputs())
		vals := c.Eval(in)
		c.OutputValues(vals)
		_ = c.Energy(vals)
		_ = c.Stats()
		if errB == nil {
			vb := cb.Eval(in)
			for i := range vals {
				if vals[i] != vb[i] {
					t.Fatal("Read and ReadBytes decoded different circuits")
				}
			}
		}
	})
}

// randomUnitCircuit is randomCircuit restricted to weights in {-1, 0,
// +1} with fan-in >= 4: every group qualifies for the evaluator's
// carry-save unit-weight fast path, which randomCircuit's mixed
// weights rarely exercise.
func randomUnitCircuit(rng *rand.Rand) *Circuit {
	nin := 4 + rng.Intn(6)
	b := NewBuilder(nin)
	nOps := 10 + rng.Intn(40)
	var last Wire = 0
	for i := 0; i < nOps; i++ {
		avail := int32(nin + b.Size())
		fanin := 4 + rng.Intn(8)
		ins := make([]Wire, fanin)
		ws := make([]int64, fanin)
		for j := range ins {
			ins[j] = Wire(rng.Int31n(avail))
			ws[j] = int64(rng.Intn(3) - 1)
		}
		if rng.Intn(3) == 0 {
			nT := 1 + rng.Intn(4)
			ts := make([]int64, nT)
			for j := range ts {
				ts[j] = int64(rng.Intn(7) - 3)
			}
			outs := b.GateGroup(ins, ws, ts)
			last = outs[len(outs)-1]
		} else {
			last = b.Gate(ins, ws, int64(rng.Intn(5)-2))
		}
	}
	b.MarkOutput(last)
	return b.Build()
}

// FuzzEvalBatch: the bit-sliced batch engine must be bit-for-bit
// identical to scalar Eval and EvalParallel on random circuits and
// random batches, across the 64-sample word boundary and both the
// sequential and pooled configurations. Negative seeds select the
// all-unit-weight circuit family (the carry-save fast path); the
// checked-in corpus under testdata/fuzz pins both families at batch
// sizes 1, 63, 64 and 65.
func FuzzEvalBatch(f *testing.F) {
	f.Add(int64(1), uint8(0))
	f.Add(int64(2), uint8(62))
	f.Add(int64(3), uint8(63))
	f.Add(int64(4), uint8(64))
	f.Add(int64(-1), uint8(0))
	f.Add(int64(-2), uint8(62))
	f.Add(int64(-3), uint8(63))
	f.Add(int64(-4), uint8(64))
	f.Fuzz(func(t *testing.T, seed int64, rawBatch uint8) {
		batch := int(rawBatch)%130 + 1
		rng := rand.New(rand.NewSource(seed))
		var c *Circuit
		if seed < 0 {
			c = randomUnitCircuit(rng)
		} else {
			c = randomCircuit(rng)
		}
		inputs := make([][]bool, batch)
		for s := range inputs {
			row := make([]bool, c.NumInputs())
			for i := range row {
				row[i] = rng.Intn(2) == 1
			}
			inputs[s] = row
		}
		for _, workers := range []int{1, 3} {
			e := NewEvaluator(c, workers)
			got := e.EvalBatch(inputs)
			for s, in := range inputs {
				want := c.Eval(in)
				par := c.EvalParallel(in, workers)
				for w := range want {
					if par[w] != want[w] {
						t.Fatalf("sample %d wire %d: EvalParallel diverges from Eval", s, w)
					}
					if got[s][w] != want[w] {
						t.Fatalf("sample %d wire %d workers %d: EvalBatch=%v Eval=%v",
							s, w, workers, got[s][w], want[w])
					}
				}
			}
			e.Close()
		}
	})
}

// FuzzRoundTrip: every circuit the builder can produce must round-trip
// bit-exactly.
func FuzzRoundTrip(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(42))
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(rng)
		var buf bytes.Buffer
		if _, err := c.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		c2, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		in := make([]bool, c.NumInputs())
		for i := range in {
			in[i] = rng.Intn(2) == 1
		}
		a := c.Eval(in)
		b := c2.Eval(in)
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("round trip changed behaviour")
			}
		}
	})
}
