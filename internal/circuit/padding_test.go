package circuit

import (
	"math/rand"
	"testing"
)

// paddingAuditCircuit builds a circuit engineered to expose padding
// leaks in the final partial 64-sample block:
//
//   - an always-firing unit-path group (span >= 4, weights all +1,
//     thresholds 0 and negative): its true output plane is all-ones, so
//     any failure to mask the tail produces 1-bits in padding lanes;
//   - a general-path group with weights outside {-1,0,+1}, including a
//     wide span designed to trip the >32-firing-samples complement
//     optimization (base += w; subtract over ^x), whose ^x iteration
//     deliberately walks the tail lanes;
//   - a second level reading both, so a leaked pad bit in level 1 would
//     also corrupt carry-save sums and thresholds downstream.
func paddingAuditCircuit(t *testing.T) *Circuit {
	t.Helper()
	const n = 40
	b := NewBuilder(n)
	ins := make([]Wire, n)
	for i := range ins {
		ins[i] = b.Input(i)
	}
	// Unit path: all-+1 weights; thresholds 0 and -3 always fire, n+1
	// never fires, and n/2 depends on the sample.
	unitW := make([]int64, n)
	for i := range unitW {
		unitW[i] = 1
	}
	unit := b.GateGroup(ins, unitW, []int64{0, -3, int64(n) / 2, int64(n) + 1})
	// General path: mixed magnitudes; threshold -1000 always fires (its
	// plane is all-ones in a full block), 0 is sample-dependent.
	genW := make([]int64, n)
	for i := range genW {
		genW[i] = int64(i%7) - 3 // in [-3, 3], not all unit
	}
	gen := b.GateGroup(ins, genW, []int64{-1000, 0, 7})
	// Level 2 consumes every level-1 plane with non-unit weights so any
	// tail garbage above would feed straight into these sums.
	l2in := append(append([]Wire{}, unit...), gen...)
	l2w := []int64{5, -2, 3, 1, 2, -4, 1}
	top := b.GateGroup(l2in, l2w, []int64{1, 4, -2})
	for _, w := range top {
		b.MarkOutput(w)
	}
	for _, w := range unit {
		b.MarkOutput(w)
	}
	return b.Build()
}

// randomRows returns batch random input rows for c.
func randomRows(rng *rand.Rand, c *Circuit, batch int) [][]bool {
	rows := make([][]bool, batch)
	for s := range rows {
		row := make([]bool, c.NumInputs())
		for i := range row {
			row[i] = rng.Intn(2) == 1
		}
		rows[s] = row
	}
	return rows
}

// assertZeroTails fails if any wire plane of the final partial block
// has a bit set at or past the batch size.
func assertZeroTails(t *testing.T, p *Planes) {
	t.Helper()
	rem := p.batch % 64
	if rem == 0 && p.batch > 0 {
		return // no partial block
	}
	mask := uint64(1)<<uint(rem) - 1
	blk := p.batch / 64
	for w := 0; w < p.numWires; w++ {
		if word := p.words[blk*p.numWires+w]; word&^mask != 0 {
			t.Fatalf("batch %d: wire %d pad bits leaked: %#x (mask %#x)", p.batch, w, word&^mask, mask)
		}
	}
}

// The coalescing server evaluates ragged batches (whatever drained from
// the queue), so padding lanes in the final 64-sample word must never
// influence results nor escape in output planes. Pin that at the batch
// sizes that exercise every edge: single sample, one-short of a block,
// exactly one block, one block plus one, and two blocks minus one.
func TestEvalPlanesPaddingAudit(t *testing.T) {
	c := paddingAuditCircuit(t)
	ev := NewEvaluator(c, 1)
	defer ev.Close()
	rng := rand.New(rand.NewSource(42))
	for _, batch := range []int{1, 63, 64, 65, 127} {
		rows := randomRows(rng, c, batch)
		p := ev.EvalPlanes(PackBools(rows))

		// (a) every pad bit of every wire plane is zero.
		assertZeroTails(t, p)

		// (b) every sample is bit-identical to the direct single-sample
		// evaluation — padding never altered a real lane.
		for s, row := range rows {
			want := c.Eval(row)
			got := p.Assignment(s, nil)
			for w := range want {
				if got[w] != want[w] {
					t.Fatalf("batch %d sample %d wire %d: batched %v, direct %v", batch, s, w, got[w], want[w])
				}
			}
		}

		// (c) popcount reductions see only real samples: the threshold-0
		// unit gate always fires, so its CountTrue is exactly batch, not
		// rounded up to a word multiple.
		alwaysOn := c.Outputs()[3] // first wire of the unit group
		counts := p.CountTrue(alwaysOn, alwaysOn+1)
		var total int64
		for _, v := range counts {
			total += v
		}
		if total != int64(batch) {
			t.Fatalf("batch %d: always-firing gate counted %d times", batch, total)
		}
	}
}

// Reset+SetRow must re-establish the zero-tail invariant when a Planes
// is recycled across batches of shrinking size — the exact reuse
// pattern of the serve dispatcher. An all-true larger batch followed by
// a smaller one is the adversarial case: stale 1-bits would sit
// precisely in the new batch's padding lanes.
func TestPlanesResetSetRowReuse(t *testing.T) {
	c := paddingAuditCircuit(t)
	ev := NewEvaluator(c, 1)
	defer ev.Close()
	rng := rand.New(rand.NewSource(7))
	var in Planes
	allTrue := make([]bool, c.NumInputs())
	for i := range allTrue {
		allTrue[i] = true
	}
	// Seed the storage with 127 all-true samples, then shrink.
	in.Reset(c.NumInputs(), 127)
	for s := 0; s < 127; s++ {
		in.SetRow(s, allTrue)
	}
	for _, batch := range []int{127, 65, 64, 63, 1} {
		rows := randomRows(rng, c, batch)
		in.Reset(c.NumInputs(), batch)
		assertZeroTails(t, &in)
		for s, row := range rows {
			in.SetRow(s, row)
		}
		assertZeroTails(t, &in)
		p := ev.EvalPlanes(&in)
		assertZeroTails(t, p)
		for s, row := range rows {
			want := c.Eval(row)
			got := p.Assignment(s, nil)
			for w := range want {
				if got[w] != want[w] {
					t.Fatalf("reuse batch %d sample %d wire %d: batched %v, direct %v", batch, s, w, got[w], want[w])
				}
			}
		}
	}
}

// SetRow overwrites in both directions: flipping a previously-true row
// to a sparse one must clear the stale bits.
func TestPlanesSetRowOverwrites(t *testing.T) {
	var p Planes
	p.Reset(3, 65)
	p.SetRow(64, []bool{true, true, true})
	p.SetRow(64, []bool{false, true, false})
	if p.Get(0, 64) || !p.Get(1, 64) || p.Get(2, 64) {
		t.Fatal("SetRow did not overwrite previous row values")
	}
	assertZeroTails(t, &p)
}

// GatherInto must reuse destination storage across ragged batches
// without leaking either stale words or pad bits.
func TestGatherIntoReuse(t *testing.T) {
	c := paddingAuditCircuit(t)
	ev := NewEvaluator(c, 1)
	defer ev.Close()
	rng := rand.New(rand.NewSource(99))
	var dst *Planes
	for _, batch := range []int{127, 63, 65, 1, 64} {
		rows := randomRows(rng, c, batch)
		p := ev.EvalPlanes(PackBools(rows))
		dst = p.GatherInto(dst, c.Outputs())
		if dst.NumWires() != len(c.Outputs()) || dst.Batch() != batch {
			t.Fatalf("GatherInto shape %dx%d, want %dx%d", dst.NumWires(), dst.Batch(), len(c.Outputs()), batch)
		}
		assertZeroTails(t, dst)
		fresh := p.Gather(c.Outputs())
		for s := 0; s < batch; s++ {
			for i := range c.Outputs() {
				if dst.Get(Wire(i), s) != fresh.Get(Wire(i), s) {
					t.Fatalf("batch %d sample %d output %d: GatherInto disagrees with Gather", batch, s, i)
				}
			}
		}
	}
}
