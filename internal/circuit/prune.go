package circuit

// Prune returns an equivalent circuit containing only the gates
// reachable backwards from the designated outputs, together with the
// number of gates removed. Circuits built by the core constructions are
// nearly dead-free (tests pin this), but user-assembled or transformed
// circuits may carry unused scaffolding.
//
// Pruning is group-aware: a group's shared input span is kept once if
// any member survives; dead members of a surviving group are dropped
// individually.
func (c *Circuit) Prune() (*Circuit, int) {
	live := make([]bool, c.Size())
	stack := make([]int32, 0, len(c.outputs))
	for _, o := range c.outputs {
		if int(o) >= c.numInputs {
			g := o - int32(c.numInputs)
			if !live[g] {
				live[g] = true
				stack = append(stack, g)
			}
		}
	}
	for len(stack) > 0 {
		g := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		gr := c.groups[c.gateGroup[g]]
		for p := gr.inStart; p < gr.inEnd; p++ {
			w := gr.wireBase + c.wires[p]
			if int(w) < c.numInputs {
				continue
			}
			src := w - int32(c.numInputs)
			if !live[src] {
				live[src] = true
				stack = append(stack, src)
			}
		}
	}

	removed := 0
	for _, l := range live {
		if !l {
			removed++
		}
	}
	if removed == 0 {
		return c, 0
	}

	b := NewBuilder(c.numInputs)
	// old wire -> new wire (inputs map to themselves).
	remap := make([]Wire, c.numInputs+c.Size())
	for i := 0; i < c.numInputs; i++ {
		remap[i] = Wire(i)
	}
	for gi := range c.groups {
		gr := c.groups[gi]
		var thresholds []int64
		var members []int32
		for k := int32(0); k < gr.gateCount; k++ {
			g := gr.gateStart + k
			if live[g] {
				thresholds = append(thresholds, c.thresholds[g])
				members = append(members, g)
			}
		}
		if len(thresholds) == 0 {
			continue
		}
		span := int(gr.inEnd - gr.inStart)
		inputs := make([]Wire, span)
		weights := make([]int64, span)
		for i := 0; i < span; i++ {
			inputs[i] = remap[gr.wireBase+c.wires[gr.inStart+int64(i)]]
			weights[i] = c.weights[gr.wOff+int64(i)]
		}
		outs := b.GateGroup(inputs, weights, thresholds)
		for i, g := range members {
			remap[int32(c.numInputs)+g] = outs[i]
		}
	}
	for _, o := range c.outputs {
		b.MarkOutput(remap[o])
	}
	return b.Build(), removed
}
