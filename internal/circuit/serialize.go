package circuit

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary circuit format, versioned: circuits with millions of gates
// round-trip in tens of milliseconds, so a built matmul circuit can be
// cached on disk instead of reconstructed (see internal/store for the
// checksummed envelope and the content-addressed cache on top).
//
// Layout (little endian):
//
//	magic "TCM1" | numInputs | numGroups | numGates | numWires(stored)
//	per group: inStart inEnd gateStart gateCount level
//	wires[] | weights[] | thresholds[] | gateGroup[] | numOutputs | outputs[]
//
// Counts and weights are int64; wire ids and gate groups are int32. The
// encoder and decoder use manual little-endian loops over bulk byte
// buffers rather than encoding/binary's reflective slice path — the
// difference between ~100 MB/s and multiple GB/s, which is what makes a
// disk cache load an order of magnitude cheaper than a rebuild.

const magic = "TCM1"

const (
	// headerLimit rejects absurd gate/wire counts before any allocation.
	headerLimit = int64(1) << 34
	// chunkElems bounds per-step allocation when decoding from a stream
	// whose true length is unknown: a hostile header claiming 2^34 gates
	// fails at EOF with bounded memory instead of OOMing up front.
	chunkElems = 1 << 16
)

// WriteTo serializes the circuit. It implements io.WriterTo.
func (c *Circuit) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	cw := &countWriter{w: bw}
	e := &encoder{w: cw, buf: make([]byte, 0, 1<<16)}
	c.encodeTo(e)
	e.flush()
	if e.err == nil {
		e.err = bw.Flush()
	}
	return cw.n, e.err
}

// EncodedSize returns the exact number of bytes WriteTo/AppendBinary
// produce, so callers can pre-size buffers and avoid every intermediate
// growth copy — at N=16 scale the difference between one 440 MB
// allocation and a doubling chain over the same bytes.
func (c *Circuit) EncodedSize() int64 {
	return 4 + 4*8 + // magic + header
		int64(len(c.groups))*40 +
		c.storedEdges*(4+8) + // wires + weights, expanded
		int64(len(c.thresholds))*(8+4) + // thresholds + gateGroup
		8 + int64(len(c.outputs))*4
}

// AppendBinary appends the TCM1 encoding to dst and returns the
// extended slice, growing dst at most once (to EncodedSize) up front.
func (c *Circuit) AppendBinary(dst []byte) []byte {
	if need := c.EncodedSize(); int64(cap(dst)-len(dst)) < need {
		grown := make([]byte, len(dst), int64(len(dst))+need)
		copy(grown, dst)
		dst = grown
	}
	e := &encoder{buf: dst} // nil writer: appends in place, never flushes
	c.encodeTo(e)
	return e.buf
}

// encodeTo writes the TCM1 body. Dictionary-shared circuits (Assemble)
// are expanded back to the canonical parallel layout — group spans are
// re-tiled cumulatively and each span's wires/weights written through
// the (wireBase, wOff) indirection — so the bytes are identical to
// serializing the equivalent builder-built circuit. For canonical
// circuits the bulk-array path below produces those same bytes without
// the per-group walk.
func (c *Circuit) encodeTo(e *encoder) {
	e.raw([]byte(magic))
	e.i64(int64(c.numInputs), int64(len(c.groups)), int64(len(c.thresholds)), c.storedEdges)
	if !c.shared {
		for _, g := range c.groups {
			e.i64(g.inStart, g.inEnd, int64(g.gateStart), int64(g.gateCount), int64(g.level))
		}
		e.i32s(c.wires)
		e.i64s(c.weights)
	} else {
		var off int64
		for _, g := range c.groups {
			n := g.inEnd - g.inStart
			e.i64(off, off+n, int64(g.gateStart), int64(g.gateCount), int64(g.level))
			off += n
		}
		for gi := range c.groups {
			g := &c.groups[gi]
			if g.wireBase == 0 {
				e.i32s(c.wires[g.inStart:g.inEnd])
			} else {
				for _, w := range c.wires[g.inStart:g.inEnd] {
					e.i32(g.wireBase + w)
				}
			}
		}
		for gi := range c.groups {
			g := &c.groups[gi]
			e.i64s(c.weights[g.wOff : g.wOff+(g.inEnd-g.inStart)])
		}
	}
	e.i64s(c.thresholds)
	e.i32s(c.gateGroup)
	e.i64(int64(len(c.outputs)))
	e.i32s(c.outputs)
}

// encoder batches little-endian values into a byte buffer and flushes
// it to w whenever it fills. All methods are no-ops after an error.
type encoder struct {
	w   io.Writer
	buf []byte
	err error
}

func (e *encoder) flush() {
	if e.err == nil && len(e.buf) > 0 {
		_, e.err = e.w.Write(e.buf)
	}
	e.buf = e.buf[:0]
}

func (e *encoder) room(n int) bool {
	if e.w != nil && len(e.buf)+n > cap(e.buf) {
		e.flush()
	}
	return e.err == nil
}

func (e *encoder) raw(p []byte) {
	if e.room(len(p)) {
		e.buf = append(e.buf, p...)
	}
}

func (e *encoder) i64(vs ...int64) {
	for _, v := range vs {
		if !e.room(8) {
			return
		}
		e.buf = binary.LittleEndian.AppendUint64(e.buf, uint64(v))
	}
}

func (e *encoder) i32(v int32) {
	if e.room(4) {
		e.buf = binary.LittleEndian.AppendUint32(e.buf, uint32(v))
	}
}

func (e *encoder) i64s(vs []int64) {
	for _, v := range vs {
		if !e.room(8) {
			return
		}
		e.buf = binary.LittleEndian.AppendUint64(e.buf, uint64(v))
	}
}

func (e *encoder) i32s(vs []int32) {
	for _, v := range vs {
		if !e.room(4) {
			return
		}
		e.buf = binary.LittleEndian.AppendUint32(e.buf, uint32(v))
	}
}

// Read deserializes a circuit written by WriteTo, validating structural
// invariants so a corrupted stream cannot produce an inconsistent
// circuit. It consumes exactly the circuit's bytes from r. Slices grow
// chunk by chunk as data actually arrives, so a lying header fails at
// EOF with bounded memory; when the whole payload is already in memory
// ReadBytes is faster (exact allocations, length checked up front).
func Read(r io.Reader) (*Circuit, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	scratch := make([]byte, 8*chunkElems)

	head := scratch[:4]
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("circuit: read magic: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("circuit: bad magic %q", head)
	}
	readI64s := func(dst []int64) error {
		b := scratch[:8*len(dst)]
		if _, err := io.ReadFull(br, b); err != nil {
			return err
		}
		for i := range dst {
			dst[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
		}
		return nil
	}

	var header [4]int64
	if err := readI64s(header[:]); err != nil {
		return nil, fmt.Errorf("circuit: read header: %w", err)
	}
	numInputs, numGroups, numGates, numWires := header[0], header[1], header[2], header[3]
	if err := checkHeader(numInputs, numGroups, numGates, numWires); err != nil {
		return nil, err
	}

	// Never allocate on the header's say-so alone (see chunkElems).
	readWires := func(n int64) ([]Wire, error) {
		var out []Wire
		for n > 0 {
			step := n
			if step > chunkElems {
				step = chunkElems
			}
			b := scratch[:4*step]
			if _, err := io.ReadFull(br, b); err != nil {
				return nil, err
			}
			buf := make([]Wire, step)
			for i := range buf {
				buf[i] = Wire(binary.LittleEndian.Uint32(b[4*i:]))
			}
			out = append(out, buf...)
			n -= step
		}
		return out, nil
	}
	readInt64s := func(n int64) ([]int64, error) {
		var out []int64
		for n > 0 {
			step := n
			if step > chunkElems {
				step = chunkElems
			}
			buf := make([]int64, step)
			if err := readI64s(buf); err != nil {
				return nil, err
			}
			out = append(out, buf...)
			n -= step
		}
		return out, nil
	}

	c := &Circuit{numInputs: int(numInputs)}
	for i := int64(0); i < numGroups; i++ {
		var g [5]int64
		if err := readI64s(g[:]); err != nil {
			return nil, fmt.Errorf("circuit: read group %d: %w", i, err)
		}
		c.groups = append(c.groups, group{
			inStart: g[0], inEnd: g[1], wOff: g[0],
			gateStart: int32(g[2]), gateCount: int32(g[3]), level: int32(g[4]),
		})
	}
	var err error
	if c.wires, err = readWires(numWires); err != nil {
		return nil, fmt.Errorf("circuit: read wires: %w", err)
	}
	if c.weights, err = readInt64s(numWires); err != nil {
		return nil, fmt.Errorf("circuit: read weights: %w", err)
	}
	if c.thresholds, err = readInt64s(numGates); err != nil {
		return nil, fmt.Errorf("circuit: read thresholds: %w", err)
	}
	if c.gateGroup, err = readWires(numGates); err != nil { // int32s, same shape as wires
		return nil, fmt.Errorf("circuit: read gate groups: %w", err)
	}
	var nOut [1]int64
	if err := readI64s(nOut[:]); err != nil {
		return nil, fmt.Errorf("circuit: read output count: %w", err)
	}
	if nOut[0] < 0 || nOut[0] > numInputs+numGates {
		return nil, fmt.Errorf("circuit: implausible output count %d", nOut[0])
	}
	if c.outputs, err = readWires(nOut[0]); err != nil {
		return nil, fmt.Errorf("circuit: read outputs: %w", err)
	}
	if err := c.finish(); err != nil {
		return nil, err
	}
	return c, nil
}

// ReadBytes deserializes a circuit from an in-memory buffer holding
// exactly the bytes WriteTo produced. Unlike Read it checks the claimed
// element counts against len(data) before allocating, so every slice is
// allocated exactly once at its final size — the fast path for the
// on-disk circuit cache, where the checksummed envelope already holds
// the payload in memory.
func ReadBytes(data []byte) (*Circuit, error) {
	d := &sliceDecoder{data: data}
	if !d.has(4) || string(data[:4]) != magic {
		if len(data) >= 4 {
			return nil, fmt.Errorf("circuit: bad magic %q", data[:4])
		}
		return nil, fmt.Errorf("circuit: bad magic: truncated")
	}
	d.off = 4

	numInputs := d.i64()
	numGroups := d.i64()
	numGates := d.i64()
	numWires := d.i64()
	if d.err != nil {
		return nil, fmt.Errorf("circuit: read header: %w", d.err)
	}
	if err := checkHeader(numInputs, numGroups, numGates, numWires); err != nil {
		return nil, err
	}
	// Byte budget: groups + wires + weights + thresholds + gateGroup +
	// output count must fit in what's actually present, so the exact
	// allocations below never trust the header alone. Counts are bounded
	// by headerLimit (2^34), so the sum stays far from int64 overflow.
	need := numGroups*40 + numWires*(4+8) + numGates*(8+4) + 8
	if int64(len(data)-d.off) < need {
		return nil, fmt.Errorf("circuit: truncated: header claims %d bytes, have %d", need, len(data)-d.off)
	}

	c := &Circuit{numInputs: int(numInputs)}
	c.groups = make([]group, numGroups)
	for i := range c.groups {
		g := group{
			inStart: d.i64(), inEnd: d.i64(),
			gateStart: int32(d.i64()), gateCount: int32(d.i64()), level: int32(d.i64()),
		}
		g.wOff = g.inStart
		c.groups[i] = g
	}
	c.wires = d.i32s(numWires)
	c.weights = d.i64s(numWires)
	c.thresholds = d.i64s(numGates)
	c.gateGroup = d.i32s(numGates)
	nOut := d.i64()
	if d.err != nil {
		return nil, fmt.Errorf("circuit: decode: %w", d.err)
	}
	if nOut < 0 || nOut > numInputs+numGates || int64(len(data)-d.off) < nOut*4 {
		return nil, fmt.Errorf("circuit: implausible output count %d", nOut)
	}
	c.outputs = d.i32s(nOut)
	if d.err != nil {
		return nil, fmt.Errorf("circuit: read outputs: %w", d.err)
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("circuit: %d trailing bytes after circuit payload", len(data)-d.off)
	}
	if err := c.finish(); err != nil {
		return nil, err
	}
	return c, nil
}

// checkHeader rejects implausible counts shared by both decoders.
func checkHeader(numInputs, numGroups, numGates, numWires int64) error {
	if numInputs < 0 || numGroups < 0 || numGates < 0 || numWires < 0 ||
		numGroups > numGates || numGates > headerLimit || numWires > headerLimit || numInputs > headerLimit {
		return fmt.Errorf("circuit: implausible header [%d %d %d %d]", numInputs, numGroups, numGates, numWires)
	}
	return nil
}

// sliceDecoder reads little-endian values out of a byte slice. All
// methods return zero values after the first error.
type sliceDecoder struct {
	data []byte
	off  int
	err  error
}

func (d *sliceDecoder) has(n int) bool {
	if d.err != nil {
		return false
	}
	if len(d.data)-d.off < n {
		d.err = io.ErrUnexpectedEOF
		return false
	}
	return true
}

func (d *sliceDecoder) i64() int64 {
	if !d.has(8) {
		return 0
	}
	v := int64(binary.LittleEndian.Uint64(d.data[d.off:]))
	d.off += 8
	return v
}

func (d *sliceDecoder) i64s(n int64) []int64 {
	if !d.has(int(n * 8)) {
		return nil
	}
	out := make([]int64, n)
	b := d.data[d.off:]
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	d.off += int(n * 8)
	return out
}

func (d *sliceDecoder) i32s(n int64) []int32 {
	if !d.has(int(n * 4)) {
		return nil
	}
	out := make([]int32, n)
	b := d.data[d.off:]
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	d.off += int(n * 4)
	return out
}

// finish validates a freshly decoded circuit and rebuilds the derived
// state Build computes (depth, cached edge count, level index).
func (c *Circuit) finish() error {
	if err := c.validate(); err != nil {
		return err
	}
	c.edges = c.computeEdges()
	c.storedEdges = int64(len(c.wires))
	for _, g := range c.groups {
		if int(g.level) > c.depth {
			c.depth = int(g.level)
		}
	}
	c.levelGroups = make([][]int32, c.depth)
	for gi, gr := range c.groups {
		c.levelGroups[gr.level-1] = append(c.levelGroups[gr.level-1], int32(gi))
	}
	return nil
}

// validate checks the invariants Build guarantees by construction.
func (c *Circuit) validate() error {
	nw := int64(len(c.wires))
	covered := int32(0)
	for i, g := range c.groups {
		if g.inStart < 0 || g.inEnd < g.inStart || g.inEnd > nw {
			return fmt.Errorf("circuit: group %d has bad span [%d,%d)", i, g.inStart, g.inEnd)
		}
		if g.gateStart != covered || g.gateCount < 1 {
			return fmt.Errorf("circuit: group %d gates not contiguous", i)
		}
		if g.level < 1 {
			return fmt.Errorf("circuit: group %d has level %d", i, g.level)
		}
		covered += g.gateCount
	}
	if int(covered) != len(c.thresholds) {
		return fmt.Errorf("circuit: groups cover %d gates, have %d", covered, len(c.thresholds))
	}
	for g, gi := range c.gateGroup {
		if gi < 0 || int(gi) >= len(c.groups) {
			return fmt.Errorf("circuit: gate %d in unknown group %d", g, gi)
		}
		gr := c.groups[gi]
		if int32(g) < gr.gateStart || int32(g) >= gr.gateStart+gr.gateCount {
			return fmt.Errorf("circuit: gate %d outside its group's range", g)
		}
	}
	maxWire := int32(c.numInputs + len(c.thresholds))
	for i, g := range c.groups {
		for p := g.inStart; p < g.inEnd; p++ {
			w := c.wires[p]
			if w < 0 || w >= maxWire {
				return fmt.Errorf("circuit: group %d references wire %d out of range", i, w)
			}
			// Acyclicity: inputs must precede the group's first gate.
			if int(w) >= c.numInputs && int(w)-c.numInputs >= int(g.gateStart) {
				return fmt.Errorf("circuit: group %d references non-earlier wire %d", i, w)
			}
			// Level consistency.
			wl := int32(0)
			if int(w) >= c.numInputs {
				wl = c.groups[c.gateGroup[int(w)-c.numInputs]].level
			}
			if wl >= g.level {
				return fmt.Errorf("circuit: group %d level %d not above input level %d", i, g.level, wl)
			}
		}
	}
	for _, o := range c.outputs {
		if o < 0 || o >= maxWire {
			return fmt.Errorf("circuit: output wire %d out of range", o)
		}
	}
	return nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (cw *countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}
