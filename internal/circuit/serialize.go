package circuit

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary circuit format, versioned: circuits with millions of gates
// round-trip in a few hundred milliseconds, so a built matmul circuit
// can be cached on disk instead of reconstructed.
//
// Layout (little endian):
//
//	magic "TCM1" | numInputs | numGroups | numGates | numWires(stored)
//	per group: inStart inEnd gateStart gateCount level
//	wires[] | weights[] | thresholds[] | gateGroup[] | numOutputs | outputs[]

const magic = "TCM1"

// WriteTo serializes the circuit. It implements io.WriterTo.
func (c *Circuit) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &countWriter{w: bw}
	write := func(v any) error { return binary.Write(cw, binary.LittleEndian, v) }

	if _, err := cw.Write([]byte(magic)); err != nil {
		return cw.n, err
	}
	header := []int64{
		int64(c.numInputs), int64(len(c.groups)), int64(len(c.thresholds)), int64(len(c.wires)),
	}
	if err := write(header); err != nil {
		return cw.n, err
	}
	for _, g := range c.groups {
		if err := write([]int64{g.inStart, g.inEnd, int64(g.gateStart), int64(g.gateCount), int64(g.level)}); err != nil {
			return cw.n, err
		}
	}
	for _, arr := range []any{c.wires, c.weights, c.thresholds, c.gateGroup} {
		if err := write(arr); err != nil {
			return cw.n, err
		}
	}
	if err := write(int64(len(c.outputs))); err != nil {
		return cw.n, err
	}
	if err := write(c.outputs); err != nil {
		return cw.n, err
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// Read deserializes a circuit written by WriteTo, validating structural
// invariants so a corrupted stream cannot produce an inconsistent
// circuit.
func Read(r io.Reader) (*Circuit, error) {
	br := bufio.NewReader(r)
	read := func(v any) error { return binary.Read(br, binary.LittleEndian, v) }

	head := make([]byte, 4)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("circuit: read magic: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("circuit: bad magic %q", head)
	}
	var header [4]int64
	if err := read(&header); err != nil {
		return nil, fmt.Errorf("circuit: read header: %w", err)
	}
	numInputs, numGroups, numGates, numWires := header[0], header[1], header[2], header[3]
	const limit = int64(1) << 34
	if numInputs < 0 || numGroups < 0 || numGates < 0 || numWires < 0 ||
		numGroups > numGates || numGates > limit || numWires > limit || numInputs > limit {
		return nil, fmt.Errorf("circuit: implausible header %v", header)
	}

	// Never allocate on the header's say-so alone: a hostile stream can
	// claim 2^34 gates. Slices grow chunk by chunk as data actually
	// arrives, so a lying header fails at EOF with bounded memory.
	const chunk = 1 << 16
	readWires := func(n int64) ([]Wire, error) {
		var out []Wire
		for n > 0 {
			step := n
			if step > chunk {
				step = chunk
			}
			buf := make([]Wire, step)
			if err := read(buf); err != nil {
				return nil, err
			}
			out = append(out, buf...)
			n -= step
		}
		return out, nil
	}
	readInt64s := func(n int64) ([]int64, error) {
		var out []int64
		for n > 0 {
			step := n
			if step > chunk {
				step = chunk
			}
			buf := make([]int64, step)
			if err := read(buf); err != nil {
				return nil, err
			}
			out = append(out, buf...)
			n -= step
		}
		return out, nil
	}

	c := &Circuit{numInputs: int(numInputs)}
	for i := int64(0); i < numGroups; i++ {
		var g [5]int64
		if err := read(&g); err != nil {
			return nil, fmt.Errorf("circuit: read group %d: %w", i, err)
		}
		c.groups = append(c.groups, group{
			inStart: g[0], inEnd: g[1],
			gateStart: int32(g[2]), gateCount: int32(g[3]), level: int32(g[4]),
		})
	}
	var err error
	if c.wires, err = readWires(numWires); err != nil {
		return nil, fmt.Errorf("circuit: read wires: %w", err)
	}
	if c.weights, err = readInt64s(numWires); err != nil {
		return nil, fmt.Errorf("circuit: read weights: %w", err)
	}
	if c.thresholds, err = readInt64s(numGates); err != nil {
		return nil, fmt.Errorf("circuit: read thresholds: %w", err)
	}
	gg, err := readWires(numGates) // int32s, same shape as wires
	if err != nil {
		return nil, fmt.Errorf("circuit: read gate groups: %w", err)
	}
	c.gateGroup = gg
	var nOut int64
	if err := read(&nOut); err != nil {
		return nil, fmt.Errorf("circuit: read output count: %w", err)
	}
	if nOut < 0 || nOut > numInputs+numGates {
		return nil, fmt.Errorf("circuit: implausible output count %d", nOut)
	}
	if c.outputs, err = readWires(nOut); err != nil {
		return nil, fmt.Errorf("circuit: read outputs: %w", err)
	}
	if err := c.validate(); err != nil {
		return nil, err
	}
	// Rebuild derived state.
	c.edges = c.computeEdges()
	for _, g := range c.groups {
		if int(g.level) > c.depth {
			c.depth = int(g.level)
		}
	}
	c.levelGroups = make([][]int32, c.depth)
	for gi, gr := range c.groups {
		c.levelGroups[gr.level-1] = append(c.levelGroups[gr.level-1], int32(gi))
	}
	return c, nil
}

// validate checks the invariants Build guarantees by construction.
func (c *Circuit) validate() error {
	nw := int64(len(c.wires))
	covered := int32(0)
	for i, g := range c.groups {
		if g.inStart < 0 || g.inEnd < g.inStart || g.inEnd > nw {
			return fmt.Errorf("circuit: group %d has bad span [%d,%d)", i, g.inStart, g.inEnd)
		}
		if g.gateStart != covered || g.gateCount < 1 {
			return fmt.Errorf("circuit: group %d gates not contiguous", i)
		}
		if g.level < 1 {
			return fmt.Errorf("circuit: group %d has level %d", i, g.level)
		}
		covered += g.gateCount
	}
	if int(covered) != len(c.thresholds) {
		return fmt.Errorf("circuit: groups cover %d gates, have %d", covered, len(c.thresholds))
	}
	for g, gi := range c.gateGroup {
		if gi < 0 || int(gi) >= len(c.groups) {
			return fmt.Errorf("circuit: gate %d in unknown group %d", g, gi)
		}
		gr := c.groups[gi]
		if int32(g) < gr.gateStart || int32(g) >= gr.gateStart+gr.gateCount {
			return fmt.Errorf("circuit: gate %d outside its group's range", g)
		}
	}
	maxWire := int32(c.numInputs + len(c.thresholds))
	for i, g := range c.groups {
		for p := g.inStart; p < g.inEnd; p++ {
			w := c.wires[p]
			if w < 0 || w >= maxWire {
				return fmt.Errorf("circuit: group %d references wire %d out of range", i, w)
			}
			// Acyclicity: inputs must precede the group's first gate.
			if int(w) >= c.numInputs && int(w)-c.numInputs >= int(g.gateStart) {
				return fmt.Errorf("circuit: group %d references non-earlier wire %d", i, w)
			}
			// Level consistency.
			wl := int32(0)
			if int(w) >= c.numInputs {
				wl = c.groups[c.gateGroup[int(w)-c.numInputs]].level
			}
			if wl >= g.level {
				return fmt.Errorf("circuit: group %d level %d not above input level %d", i, g.level, wl)
			}
		}
	}
	for _, o := range c.outputs {
		if o < 0 || o >= maxWire {
			return fmt.Errorf("circuit: output wire %d out of range", o)
		}
	}
	return nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (cw *countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}
