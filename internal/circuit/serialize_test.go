package circuit

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomCircuit builds a random layered circuit with some gate groups
// and marked outputs.
func randomCircuit(rng *rand.Rand) *Circuit {
	nin := 2 + rng.Intn(6)
	b := NewBuilder(nin)
	nOps := 10 + rng.Intn(60)
	var last Wire = 0
	for i := 0; i < nOps; i++ {
		avail := int32(nin + b.Size())
		fanin := 1 + rng.Intn(5)
		ins := make([]Wire, fanin)
		ws := make([]int64, fanin)
		for j := range ins {
			ins[j] = Wire(rng.Int31n(avail))
			ws[j] = int64(rng.Intn(9) - 4)
		}
		if rng.Intn(3) == 0 {
			nT := 1 + rng.Intn(4)
			ts := make([]int64, nT)
			for j := range ts {
				ts[j] = int64(rng.Intn(7) - 3)
			}
			outs := b.GateGroup(ins, ws, ts)
			last = outs[len(outs)-1]
		} else {
			last = b.Gate(ins, ws, int64(rng.Intn(7)-3))
		}
		if rng.Intn(4) == 0 {
			b.MarkOutput(last)
		}
	}
	b.MarkOutput(last)
	return b.Build()
}

// Serialization round-trips: identical structure and identical behaviour
// on random inputs.
func TestSerializeRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(rng)
		var buf bytes.Buffer
		if _, err := c.WriteTo(&buf); err != nil {
			return false
		}
		c2, err := Read(&buf)
		if err != nil {
			return false
		}
		if c2.Size() != c.Size() || c2.Depth() != c.Depth() ||
			c2.Edges() != c.Edges() || c2.NumInputs() != c.NumInputs() ||
			len(c2.Outputs()) != len(c.Outputs()) {
			return false
		}
		for trial := 0; trial < 3; trial++ {
			in := make([]bool, c.NumInputs())
			for i := range in {
				in[i] = rng.Intn(2) == 1
			}
			v1 := c.Eval(in)
			v2 := c2.Eval(in)
			for i := range v1 {
				if v1[i] != v2[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Corrupted streams are rejected, not mis-loaded.
func TestReadRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := randomCircuit(rng)
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Truncations at every eighth byte.
	for cut := 0; cut < len(good); cut += 8 {
		if _, err := Read(bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Bad magic.
	bad := append([]byte{}, good...)
	bad[0] = 'X'
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	// Flip wire references to out-of-range values: validate must catch
	// at least the blatant case of a huge wire id.
	bad = append([]byte{}, good...)
	// Header is 4 magic + 4*8 bytes; groups follow (5*8 each). Corrupt a
	// group's span start to a negative number.
	if len(bad) > 44 {
		for i := 36; i < 44; i++ {
			bad[i] = 0xff
		}
		if _, err := Read(bytes.NewReader(bad)); err == nil {
			t.Error("corrupted group span accepted")
		}
	}
}

// Prune removes gates unreachable from outputs and preserves output
// behaviour.
func TestPruneRemovesDeadGates(t *testing.T) {
	b := NewBuilder(2)
	useful := b.Gate([]Wire{0, 1}, []int64{1, 1}, 2)
	for i := 0; i < 10; i++ {
		b.Gate([]Wire{0}, []int64{1}, 1) // dead
	}
	out := b.Gate([]Wire{useful}, []int64{1}, 1)
	b.MarkOutput(out)
	c := b.Build()
	pruned, removed := c.Prune()
	if removed != 10 {
		t.Errorf("removed %d gates, want 10", removed)
	}
	if pruned.Size() != 2 {
		t.Errorf("pruned size %d, want 2", pruned.Size())
	}
	for mask := 0; mask < 4; mask++ {
		in := []bool{mask&1 != 0, mask&2 != 0}
		want := c.OutputValues(c.Eval(in))
		got := pruned.OutputValues(pruned.Eval(in))
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("mask %d: pruned output differs", mask)
			}
		}
	}
}

// Pruning a group keeps the shared span once and drops dead members.
func TestPrunePartialGroup(t *testing.T) {
	b := NewBuilder(3)
	outs := b.GateGroup([]Wire{0, 1, 2}, []int64{1, 1, 1}, []int64{1, 2, 3})
	final := b.Gate([]Wire{outs[0], outs[2]}, []int64{1, 1}, 2) // outs[1] dead
	b.MarkOutput(final)
	c := b.Build()
	pruned, removed := c.Prune()
	if removed != 1 {
		t.Fatalf("removed %d, want 1", removed)
	}
	for mask := 0; mask < 8; mask++ {
		in := []bool{mask&1 != 0, mask&2 != 0, mask&4 != 0}
		if c.OutputValues(c.Eval(in))[0] != pruned.OutputValues(pruned.Eval(in))[0] {
			t.Fatalf("mask %d differs after partial-group prune", mask)
		}
	}
}

// Prune on a fully-live circuit is the identity (and returns the same
// instance).
func TestPruneNoDead(t *testing.T) {
	b := NewBuilder(2)
	g := b.Gate([]Wire{0, 1}, []int64{1, 1}, 1)
	b.MarkOutput(g)
	c := b.Build()
	pruned, removed := c.Prune()
	if removed != 0 || pruned != c {
		t.Error("prune of live circuit should be a no-op")
	}
}

// Property: pruning never changes designated outputs.
func TestPruneProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(rng)
		pruned, _ := c.Prune()
		for trial := 0; trial < 3; trial++ {
			in := make([]bool, c.NumInputs())
			for i := range in {
				in[i] = rng.Intn(2) == 1
			}
			a := c.OutputValues(c.Eval(in))
			b := pruned.OutputValues(pruned.Eval(in))
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// ReadBytes is the exact-allocation decoder the on-disk store uses; it
// must agree with the streaming Read on every valid payload, and a
// decode→re-encode cycle must be byte-identical (the store asserts
// round-trips on serialized bytes).
func TestReadBytesParity(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(rng)
		var buf bytes.Buffer
		if _, err := c.WriteTo(&buf); err != nil {
			return false
		}
		c2, err := ReadBytes(buf.Bytes())
		if err != nil {
			t.Logf("ReadBytes: %v", err)
			return false
		}
		var buf2 bytes.Buffer
		if _, err := c2.WriteTo(&buf2); err != nil {
			return false
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Log("re-serialization not byte-identical")
			return false
		}
		c3, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		in := make([]bool, c.NumInputs())
		for i := range in {
			in[i] = rng.Intn(2) == 1
		}
		v1, v2, v3 := c.Eval(in), c2.Eval(in), c3.Eval(in)
		for i := range v1 {
			if v1[i] != v2[i] || v1[i] != v3[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// ReadBytes rejects truncations, trailing garbage and corrupted
// headers rather than mis-loading.
func TestReadBytesRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := randomCircuit(rng)
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	for cut := 0; cut < len(good); cut += 7 {
		if _, err := ReadBytes(good[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := ReadBytes(append(append([]byte{}, good...), 0)); err == nil {
		t.Error("trailing byte accepted")
	}
	bad := append([]byte{}, good...)
	bad[0] = 'X'
	if _, err := ReadBytes(bad); err == nil {
		t.Error("bad magic accepted")
	}
	// A header lying about the wire count must fail the byte budget, not
	// allocate.
	bad = append([]byte{}, good...)
	for i := 28; i < 36; i++ { // numWires field
		bad[i] = 0x7f
	}
	if _, err := ReadBytes(bad); err == nil {
		t.Error("lying header accepted")
	}
}
