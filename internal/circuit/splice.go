package circuit

import "fmt"

// Splice block-copies every gate of src into the builder, substituting
// the given wires for src's inputs (inputMap[i] replaces src input i),
// and returns the wires now carrying src's marked outputs, in marking
// order. A nil inputMap means the identity mapping: src input i is fed
// by the builder's existing wire i (src.NumInputs() must not exceed
// NumWires()), which is the zero-allocation path for re-attaching a
// sub-circuit that was built against a snapshot of this builder's wires.
//
// Unlike the historical per-gate Embed loop, Splice appends src's wire,
// weight, threshold and group arenas wholesale and then applies a single
// offset/remap pass over the copied span — O(stored edges) memmove-style
// work with no per-gate span assembly or revalidation. Gate groups and
// their shared input spans are preserved exactly, so Stats/Edges of the
// spliced region match src's, and levels are re-derived against the
// mapped input wires exactly as GateGroup would have (the composition's
// depth is the sum along the chain).
//
// Splice is deterministic: splicing the same circuits in the same order
// yields an arena bit-identical to building their gates directly in
// that order, which is what lets the parallel core builders produce
// circuits indistinguishable from the sequential ones.
func (b *Builder) Splice(src *Circuit, inputMap []Wire) []Wire {
	if b.built {
		panic("circuit: builder reused after Build")
	}
	nIn := int32(src.numInputs)
	if inputMap == nil {
		if nIn > b.numWires {
			panic(fmt.Sprintf("circuit: identity Splice needs %d wires, have %d", nIn, b.numWires))
		}
	} else {
		if len(inputMap) != src.numInputs {
			panic(fmt.Sprintf("circuit: Splice needs %d input wires, got %d", src.numInputs, len(inputMap)))
		}
		for _, w := range inputMap {
			if w < 0 || w >= b.numWires {
				panic(fmt.Sprintf("circuit: Splice input wire %d does not exist", w))
			}
		}
	}

	// Circuits assembled from the compact format store spans as shared
	// relative patterns; those cannot be block-copied (the remap below is
	// per-value, not a uniform shift), so they are re-expanded gate group
	// by gate group. The result is a canonical parallel-arena region,
	// identical to what splicing the equivalent builder-built circuit
	// produces.
	if src.shared {
		return b.spliceShared(src, inputMap)
	}

	// Levels of the wires standing in for src's inputs.
	inLevel := make([]int32, src.numInputs)
	for i := range inLevel {
		if inputMap == nil {
			inLevel[i] = b.wireLevel(Wire(i))
		} else {
			inLevel[i] = b.wireLevel(inputMap[i])
		}
	}

	posBase := int64(len(b.c.wires)) // span offset for copied groups
	gateBase := int32(len(b.c.thresholds))
	groupBase := int32(len(b.c.groups))
	wireBase := b.numWires // new wire id of src gate 0

	// Bulk arena copies. Only the wire ids need remapping; weights,
	// thresholds and group membership copy verbatim (membership gets a
	// constant offset).
	b.c.wires = append(b.c.wires, src.wires...)
	spliced := b.c.wires[posBase:]
	if inputMap == nil {
		for i, w := range spliced {
			if w >= nIn {
				spliced[i] = wireBase + (w - nIn)
			}
		}
	} else {
		for i, w := range spliced {
			if w < nIn {
				spliced[i] = inputMap[w]
			} else {
				spliced[i] = wireBase + (w - nIn)
			}
		}
	}
	b.c.weights = append(b.c.weights, src.weights...)
	b.c.thresholds = append(b.c.thresholds, src.thresholds...)
	ggBase := len(b.c.gateGroup)
	b.c.gateGroup = append(b.c.gateGroup, src.gateGroup...)
	for i := range b.c.gateGroup[ggBase:] {
		b.c.gateGroup[ggBase+i] += groupBase
	}

	// Group table: offset spans and recompute levels in one pass. Gates
	// only reference earlier wires, so by the time group k is placed,
	// every spliced group it reads already has its final level.
	for gi := range src.groups {
		gr := &src.groups[gi]
		lvl := int32(0)
		for p := gr.inStart; p < gr.inEnd; p++ {
			w := src.wires[p]
			var wl int32
			if w < nIn {
				wl = inLevel[w]
			} else {
				wl = b.c.groups[groupBase+src.gateGroup[w-nIn]].level
			}
			if wl > lvl {
				lvl = wl
			}
		}
		b.c.groups = append(b.c.groups, group{
			inStart:   gr.inStart + posBase,
			inEnd:     gr.inEnd + posBase,
			wOff:      gr.wOff + posBase, // canonical src: stays parallel
			gateStart: gr.gateStart + gateBase,
			gateCount: gr.gateCount,
			level:     lvl + 1,
		})
		if int(lvl+1) > b.c.depth {
			b.c.depth = int(lvl + 1)
		}
	}
	b.numWires += int32(src.Size())

	outs := make([]Wire, len(src.outputs))
	for i, o := range src.outputs {
		switch {
		case o >= nIn:
			outs[i] = wireBase + (o - nIn)
		case inputMap == nil:
			outs[i] = o
		default:
			outs[i] = inputMap[o]
		}
	}
	return outs
}

// spliceShared re-expands a dictionary-shared circuit through GateGroup,
// one group at a time. Slower than the block copy (per-value remap and
// span re-append are unavoidable once spans alias a pattern dictionary)
// but it canonicalizes the copied region, so everything downstream —
// Adopt parity, serialization, further splices — sees an ordinary
// parallel arena.
func (b *Builder) spliceShared(src *Circuit, inputMap []Wire) []Wire {
	nIn := int32(src.numInputs)
	gateWire := make([]Wire, src.Size()) // src gate -> new wire
	mapW := func(w Wire) Wire {
		if w < nIn {
			if inputMap == nil {
				return w
			}
			return inputMap[w]
		}
		return gateWire[w-nIn]
	}
	scratch := make([]Wire, src.MaxFanIn())
	for gi := range src.groups {
		gr := &src.groups[gi]
		n := gr.inEnd - gr.inStart
		ins := scratch[:n]
		for i, w := range src.wires[gr.inStart:gr.inEnd] {
			ins[i] = mapW(gr.wireBase + w)
		}
		outs := b.GateGroup(ins,
			src.weights[gr.wOff:gr.wOff+n],
			src.thresholds[gr.gateStart:gr.gateStart+gr.gateCount])
		copy(gateWire[gr.gateStart:], outs)
	}
	outs := make([]Wire, len(src.outputs))
	for i, o := range src.outputs {
		outs[i] = mapW(o)
	}
	return outs
}
