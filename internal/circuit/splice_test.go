package circuit

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// Chain two XOR circuits via Splice: xor(xor(a,b), c) is 3-input
// parity.
func TestSpliceChain(t *testing.T) {
	xor := buildXor()
	b := NewBuilder(3)
	mid := b.Splice(xor, []Wire{b.Input(0), b.Input(1)})
	out := b.Splice(xor, []Wire{mid[0], b.Input(2)})
	b.MarkOutput(out[0])
	c := b.Build()
	if c.Size() != 2*xor.Size() {
		t.Errorf("size %d, want %d", c.Size(), 2*xor.Size())
	}
	if c.Depth() != 2*xor.Depth() {
		t.Errorf("depth %d, want %d", c.Depth(), 2*xor.Depth())
	}
	for mask := 0; mask < 8; mask++ {
		in := []bool{mask&1 != 0, mask&2 != 0, mask&4 != 0}
		want := in[0] != in[1] != in[2]
		if got := c.OutputValues(c.Eval(in))[0]; got != want {
			t.Errorf("parity(%v) = %v", in, got)
		}
	}
}

// Splicing into a circuit with pre-existing gates keeps levels
// consistent (depth = host wire level + spliced depth).
func TestSpliceDepthStacking(t *testing.T) {
	xor := buildXor()
	b := NewBuilder(2)
	// A depth-3 identity chain in the host first.
	w := b.Input(0)
	for i := 0; i < 3; i++ {
		w = b.Gate([]Wire{w}, []int64{1}, 1)
	}
	outs := b.Splice(xor, []Wire{w, b.Input(1)})
	b.MarkOutput(outs[0])
	c := b.Build()
	if c.Depth() != 3+xor.Depth() {
		t.Errorf("depth %d, want %d", c.Depth(), 3+xor.Depth())
	}
	// Function: xor(chained a, b) = xor(a, b).
	for mask := 0; mask < 4; mask++ {
		in := []bool{mask&1 != 0, mask&2 != 0}
		want := in[0] != in[1]
		if got := c.OutputValues(c.Eval(in))[0]; got != want {
			t.Errorf("mask %d wrong", mask)
		}
	}
}

// Splicing a sub-circuit built against a snapshot of the host's wires
// (nil inputMap) is bit-identical to building the same gates directly
// on the host — the mechanism external circuit composition (conv,
// fused networks) relies on; the core builders use Fork/Adopt.
func TestSpliceIdentityBitIdentical(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nin := 2 + rng.Intn(5)

		// Reference: one builder, gates emitted straight through.
		emit := func(b *Builder, rng *rand.Rand, nOps int) {
			for i := 0; i < nOps; i++ {
				avail := int32(b.NumWires())
				fanin := 1 + rng.Intn(4)
				ins := make([]Wire, fanin)
				ws := make([]int64, fanin)
				for j := range ins {
					ins[j] = Wire(rng.Int31n(avail))
					ws[j] = int64(rng.Intn(9) - 4)
				}
				if rng.Intn(3) == 0 {
					ts := make([]int64, 1+rng.Intn(3))
					for j := range ts {
						ts[j] = int64(rng.Intn(7) - 3)
					}
					b.GateGroup(ins, ws, ts)
				} else {
					b.Gate(ins, ws, int64(rng.Intn(7)-3))
				}
			}
		}
		hostOps := 5 + rng.Intn(10)
		subOps := 5 + rng.Intn(10)
		hostSeed, subSeed := rng.Int63(), rng.Int63()

		seq := NewBuilder(nin)
		emit(seq, rand.New(rand.NewSource(hostSeed)), hostOps)
		emit(seq, rand.New(rand.NewSource(subSeed)), subOps)
		seq.MarkOutput(Wire(seq.NumWires() - 1))
		want := seq.Build()

		spl := NewBuilder(nin)
		emit(spl, rand.New(rand.NewSource(hostSeed)), hostOps)
		snapshot := spl.NumWires()
		sub := NewBuilder(snapshot)
		emit(sub, rand.New(rand.NewSource(subSeed)), subOps)
		spl.Splice(sub.Build(), nil)
		spl.MarkOutput(Wire(spl.NumWires() - 1))
		got := spl.Build()

		var wb, gb bytes.Buffer
		if _, err := want.WriteTo(&wb); err != nil {
			return false
		}
		if _, err := got.WriteTo(&gb); err != nil {
			return false
		}
		return bytes.Equal(wb.Bytes(), gb.Bytes())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Splice with an explicit inputMap must agree with the historical Embed
// contract: same wires, same stats, same function.
func TestSpliceMatchesEmbedSemantics(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := randomCircuit(rng)
		b := NewBuilder(src.NumInputs())
		ins := make([]Wire, src.NumInputs())
		for i := range ins {
			ins[i] = b.Input(i)
		}
		outs := b.Splice(src, ins)
		for _, o := range outs {
			b.MarkOutput(o)
		}
		c := b.Build()
		if c.Size() != src.Size() || c.Depth() != src.Depth() ||
			c.Edges() != src.Edges() || c.Stats().StoredEdges != src.Stats().StoredEdges {
			return false
		}
		for trial := 0; trial < 3; trial++ {
			in := make([]bool, src.NumInputs())
			for i := range in {
				in[i] = rng.Intn(2) == 1
			}
			want := src.OutputValues(src.Eval(in))
			got := c.OutputValues(c.Eval(in))
			for i := range want {
				if want[i] != got[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSplicePanics(t *testing.T) {
	xor := buildXor()
	cases := []struct {
		name string
		f    func()
	}{
		{"wrong arity", func() { NewBuilder(2).Splice(xor, []Wire{0}) }},
		{"missing wire", func() { NewBuilder(2).Splice(xor, []Wire{0, 99}) }},
		{"negative wire", func() { NewBuilder(2).Splice(xor, []Wire{0, -1}) }},
		{"identity too few wires", func() { NewBuilder(1).Splice(xor, nil) }},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", c.name)
				}
			}()
			c.f()
		}()
	}
}

// Const is memoized: any number of requests mints at most one gate per
// polarity, so constant-heavy constructions stop paying a gate per use.
func TestConstMemoized(t *testing.T) {
	b := NewBuilder(1)
	wTrue := b.Const(true)
	wFalse := b.Const(false)
	for i := 0; i < 10; i++ {
		if got := b.Const(true); got != wTrue {
			t.Fatalf("Const(true) moved: %d then %d", wTrue, got)
		}
		if got := b.Const(false); got != wFalse {
			t.Fatalf("Const(false) moved: %d then %d", wFalse, got)
		}
	}
	if b.Size() != 2 {
		t.Errorf("20 Const calls minted %d gates, want 2", b.Size())
	}
	c := b.Build()
	vals := c.Eval([]bool{false})
	if !vals[wTrue] || vals[wFalse] {
		t.Errorf("const values wrong: true=%v false=%v", vals[wTrue], vals[wFalse])
	}
}

// Edges is computed once at Build and must stay consistent with a fresh
// recomputation across every way a Circuit is produced.
func TestEdgesCacheConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		c := randomCircuit(rng)
		if c.Edges() != c.computeEdges() {
			t.Fatalf("Build: Edges %d != recompute %d", c.Edges(), c.computeEdges())
		}
		var buf bytes.Buffer
		if _, err := c.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		rt, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if rt.Edges() != rt.computeEdges() || rt.Edges() != c.Edges() {
			t.Fatalf("Read: Edges %d recompute %d original %d",
				rt.Edges(), rt.computeEdges(), c.Edges())
		}
		p, _ := c.Prune()
		if p.Edges() != p.computeEdges() {
			t.Fatalf("Prune: Edges %d != recompute %d", p.Edges(), p.computeEdges())
		}
	}
}

// Reserve pre-sizes the arenas: a build that stays within the
// reservation never reallocates them (the backing arrays are stable),
// and the whole build does measurably fewer allocations than the
// append-doubling path.
func TestReservePreventsGrowth(t *testing.T) {
	const gates = 2000
	b := NewBuilder(4)
	b.Reserve(gates, 3*gates, gates)
	wires0 := &b.c.wires[:1][0]
	thresh0 := &b.c.thresholds[:1][0]
	groups0 := &b.c.groups[:1][0]

	w := []Wire{0, 1, 2}
	ws := []int64{1, 1, 1}
	for i := 0; i < gates; i++ {
		b.Gate(w, ws, 2)
	}
	if &b.c.wires[0] != wires0 || &b.c.thresholds[0] != thresh0 || &b.c.groups[0] != groups0 {
		t.Error("arenas moved despite sufficient Reserve")
	}
	c := b.Build()
	if c.Size() != gates {
		t.Fatalf("size %d, want %d", c.Size(), gates)
	}
	if c.Edges() != 3*gates {
		t.Fatalf("edges %d, want %d", c.Edges(), 3*gates)
	}

	build := func(reserve bool) float64 {
		return testing.AllocsPerRun(3, func() {
			bb := NewBuilder(4)
			if reserve {
				bb.Reserve(gates, 3*gates, gates)
			}
			for i := 0; i < gates; i++ {
				bb.Gate(w, ws, 2)
			}
			bb.MarkOutput(Wire(bb.NumWires() - 1))
			bb.Build()
		})
	}
	with, without := build(true), build(false)
	// Per-gate slices dominate both counts equally; Reserve must at
	// least shave the ~50 append-doubling reallocations.
	if with >= without {
		t.Errorf("Reserve did not reduce allocations: with=%v without=%v", with, without)
	}
}

// Build right-sizes over-reserved arenas so a generous Reserve does not
// pin dead capacity in the final immutable circuit.
func TestBuildRightsizesOverReserve(t *testing.T) {
	b := NewBuilder(2)
	b.Reserve(100000, 300000, 100000)
	b.Gate([]Wire{0, 1}, []int64{1, 1}, 1)
	b.MarkOutput(2)
	c := b.Build()
	if got := cap(c.thresholds); got > 2 {
		t.Errorf("threshold arena capacity %d retained after Build of 1 gate", got)
	}
	if got := cap(c.wires); got > 4 {
		t.Errorf("wire arena capacity %d retained after Build of 2 stored edges", got)
	}
}

// NumWires tracks inputs + gates as construction proceeds.
func TestNumWires(t *testing.T) {
	b := NewBuilder(3)
	if b.NumWires() != 3 {
		t.Fatalf("fresh builder NumWires %d, want 3", b.NumWires())
	}
	b.Gate([]Wire{0}, []int64{1}, 1)
	b.GateGroup([]Wire{0, 1}, []int64{1, 1}, []int64{1, 2})
	if b.NumWires() != 6 {
		t.Fatalf("NumWires %d after 3 gates, want 6", b.NumWires())
	}
}
