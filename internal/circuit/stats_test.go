package circuit

import (
	"strings"
	"testing"
)

// threeGateCircuit builds the canonical grouped/ungrouped mix: one
// group of two gates sharing a 2-wire span, plus one single gate
// reading 3 wires. Semantic edges: 2*2 + 3 = 7; stored edges: 2 + 3 = 5.
func threeGateCircuit(t *testing.T) *Circuit {
	t.Helper()
	b := NewBuilder(3)
	pair := b.GateGroup([]Wire{0, 1}, []int64{1, 1}, []int64{1, 2})
	b.Gate([]Wire{pair[0], pair[1], 2}, []int64{1, -1, 1}, 1)
	b.MarkOutput(Wire(3 + 2))
	return b.Build()
}

// The semantic edge count (every gate charged its full fan-in, the
// paper's measure) and the stored count (span sharing) must both be
// pinned: the verifier cross-checks them and Stats reports both.
func TestEdgesVsStoredEdgesPinned(t *testing.T) {
	c := threeGateCircuit(t)
	if got := c.Edges(); got != 7 {
		t.Errorf("Edges() = %d, want 7 (2 gates x 2-wire shared span + 1 gate x 3 wires)", got)
	}
	if got := c.StoredEdges(); got != 5 {
		t.Errorf("StoredEdges() = %d, want 5 (shared span stored once)", got)
	}
	st := c.Stats()
	if st.Edges != 7 || st.StoredEdges != 5 {
		t.Errorf("Stats edges=%d stored=%d, want 7/5", st.Edges, st.StoredEdges)
	}
	if st.StoredEdges > st.Edges {
		t.Errorf("stored edges %d exceed semantic edges %d", st.StoredEdges, st.Edges)
	}
}

// Stats.String must surface the discrepancy when grouping makes the
// two counts diverge, and stay quiet when they agree.
func TestStatsStringStoredEdges(t *testing.T) {
	grouped := threeGateCircuit(t).Stats()
	if s := grouped.String(); !strings.Contains(s, "edges=7") || !strings.Contains(s, "stored-edges=5") {
		t.Errorf("grouped Stats.String() = %q, want both edges=7 and stored-edges=5", s)
	}

	b := NewBuilder(2)
	b.MarkOutput(b.Gate([]Wire{0, 1}, []int64{1, 1}, 2))
	flat := b.Build().Stats()
	if s := flat.String(); strings.Contains(s, "stored-edges") {
		t.Errorf("ungrouped Stats.String() = %q, want no stored-edges suffix", s)
	}
}

// VisitGates must enumerate every gate once, in order, with the same
// data Gate returns, without allocating copies of shared spans.
func TestVisitGates(t *testing.T) {
	c := threeGateCircuit(t)
	var seen []int
	c.VisitGates(func(g int, ins []Wire, ws []int64, th int64, level int) {
		seen = append(seen, g)
		spec := c.Gate(g)
		if len(ins) != len(spec.Inputs) || len(ws) != len(spec.Weights) {
			t.Fatalf("gate %d: span %d/%d wires, Gate says %d/%d", g, len(ins), len(ws), len(spec.Inputs), len(spec.Weights))
		}
		for i := range ins {
			if ins[i] != spec.Inputs[i] || ws[i] != spec.Weights[i] {
				t.Fatalf("gate %d input %d: visit (%d,%d) vs Gate (%d,%d)", g, i, ins[i], ws[i], spec.Inputs[i], spec.Weights[i])
			}
		}
		if th != spec.Threshold || th != c.Threshold(g) {
			t.Fatalf("gate %d: threshold %d vs Gate %d vs Threshold() %d", g, th, spec.Threshold, c.Threshold(g))
		}
		if level != spec.Level {
			t.Fatalf("gate %d: level %d vs Gate %d", g, level, spec.Level)
		}
	})
	if len(seen) != c.Size() {
		t.Fatalf("visited %d gates, circuit has %d", len(seen), c.Size())
	}
	for i, g := range seen {
		if g != i {
			t.Fatalf("gate %d visited at position %d; want ascending order", g, i)
		}
	}
}

// WithThreshold must change exactly one gate's behaviour and leave the
// receiver untouched.
func TestWithThreshold(t *testing.T) {
	c := threeGateCircuit(t)
	in := []bool{true, true, false}
	orig := c.Eval(in)

	// Gate 1 (second member of the group) originally fires iff sum >= 2.
	mut := c.WithThreshold(1, 100)
	got := mut.Eval(in)
	if got[3+1] {
		t.Error("tampered gate still fires with unreachable threshold")
	}
	if again := c.Eval(in); again[3+1] != orig[3+1] {
		t.Error("WithThreshold mutated the receiver")
	}
	if mut.Threshold(1) != 100 || c.Threshold(1) == 100 {
		t.Error("threshold not isolated between copies")
	}
}
