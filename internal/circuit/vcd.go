package circuit

import (
	"fmt"
	"io"
)

// WriteVCD dumps an evaluation as a Value Change Dump waveform, the
// interchange format hardware waveform viewers (GTKWave et al.) read.
// Time is the circuit's own notion of time: timestep 0 applies the
// inputs, timestep L clocks level-L gates — matching the one-level-per-
// tick execution of a neuromorphic deployment.
//
// Wires are named x<i> for inputs and g<i> for gates; outputs
// additionally appear under out<i> aliases. Intended for small-to-
// medium circuits (the file carries one change record per wire).
func (c *Circuit) WriteVCD(w io.Writer, name string, inputs []bool) error {
	vals := c.Eval(inputs)

	// VCD identifier codes: printable ASCII starting at '!'.
	ident := func(i int) string {
		const lo, hi = 33, 127
		var buf []byte
		for {
			buf = append(buf, byte(lo+i%(hi-lo)))
			i /= (hi - lo)
			if i == 0 {
				break
			}
		}
		return string(buf)
	}

	if _, err := fmt.Fprintf(w, "$timescale 1ns $end\n$scope module %s $end\n", name); err != nil {
		return err
	}
	for i := 0; i < c.numInputs; i++ {
		if _, err := fmt.Fprintf(w, "$var wire 1 %s x%d $end\n", ident(i), i); err != nil {
			return err
		}
	}
	for g := 0; g < c.Size(); g++ {
		if _, err := fmt.Fprintf(w, "$var wire 1 %s g%d $end\n", ident(c.numInputs+g), g); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, "$upscope $end\n$enddefinitions $end"); err != nil {
		return err
	}

	// Timestep 0: all wires start low, then inputs switch.
	if _, err := fmt.Fprintln(w, "#0"); err != nil {
		return err
	}
	for i := 0; i < c.numInputs; i++ {
		bit := '0'
		if vals[i] {
			bit = '1'
		}
		if _, err := fmt.Fprintf(w, "%c%s\n", bit, ident(i)); err != nil {
			return err
		}
	}
	for g := 0; g < c.Size(); g++ {
		if _, err := fmt.Fprintf(w, "0%s\n", ident(c.numInputs+g)); err != nil {
			return err
		}
	}
	// One tick per level: gates at level l change at time l.
	for lvl := 1; lvl <= c.depth; lvl++ {
		if _, err := fmt.Fprintf(w, "#%d\n", lvl); err != nil {
			return err
		}
		for _, gi := range c.levelGroups[lvl-1] {
			gr := c.groups[gi]
			for k := int32(0); k < gr.gateCount; k++ {
				g := int(gr.gateStart + k)
				if vals[c.numInputs+g] {
					if _, err := fmt.Fprintf(w, "1%s\n", ident(c.numInputs+g)); err != nil {
						return err
					}
				}
			}
		}
	}
	_, err := fmt.Fprintf(w, "#%d\n", c.depth+1)
	return err
}

// EqualFunction exhaustively checks that two circuits with the same
// input count compute identical designated outputs on every assignment.
// Only feasible for small input counts; it refuses more than 24 inputs.
func EqualFunction(a, b *Circuit) (bool, error) {
	if a.NumInputs() != b.NumInputs() {
		return false, fmt.Errorf("circuit: input counts differ: %d vs %d", a.NumInputs(), b.NumInputs())
	}
	if len(a.Outputs()) != len(b.Outputs()) {
		return false, fmt.Errorf("circuit: output counts differ: %d vs %d", len(a.Outputs()), len(b.Outputs()))
	}
	n := a.NumInputs()
	if n > 24 {
		return false, fmt.Errorf("circuit: %d inputs too many for exhaustive check", n)
	}
	in := make([]bool, n)
	var va, vb []bool // wire arrays reused across the 2^n evaluations
	for mask := 0; mask < 1<<uint(n); mask++ {
		for i := 0; i < n; i++ {
			in[i] = mask&(1<<uint(i)) != 0
		}
		va = a.EvalInto(in, va)
		vb = b.EvalInto(in, vb)
		oa := a.OutputValues(va)
		ob := b.OutputValues(vb)
		for i := range oa {
			if oa[i] != ob[i] {
				return false, nil
			}
		}
	}
	return true, nil
}
