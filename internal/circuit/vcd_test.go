package circuit

import (
	"strings"
	"testing"
)

func TestWriteVCD(t *testing.T) {
	c := buildXor()
	var sb strings.Builder
	if err := c.WriteVCD(&sb, "xor", []bool{true, false}); err != nil {
		t.Fatal(err)
	}
	s := sb.String()
	for _, frag := range []string{
		"$timescale", "$scope module xor", "$var wire 1", "x0", "g2",
		"$enddefinitions", "#0", "#1", "#2",
	} {
		if !strings.Contains(s, frag) {
			t.Errorf("VCD missing %q", frag)
		}
	}
	// Input (1,0): OR fires at #1, XOR at #2 — both '1' records exist
	// after the respective timestamps.
	or := strings.Index(s, "#1\n")
	xor := strings.Index(s, "#2\n")
	if or < 0 || xor < 0 || or > xor {
		t.Error("timestep ordering wrong")
	}
	if !strings.Contains(s[or:xor], "1") {
		t.Error("level-1 firing not recorded at #1")
	}
}

func TestEqualFunction(t *testing.T) {
	a := buildXor()
	b := buildXor()
	eq, err := EqualFunction(a, b)
	if err != nil || !eq {
		t.Errorf("identical circuits not equal: %v %v", eq, err)
	}
	// An AND circuit differs from XOR.
	bb := NewBuilder(2)
	bb.MarkOutput(bb.Gate([]Wire{0, 1}, []int64{1, 1}, 2))
	and := bb.Build()
	eq, err = EqualFunction(a, and)
	if err != nil || eq {
		t.Errorf("xor == and reported: %v %v", eq, err)
	}
	// Pruned circuits are equal to their originals.
	big := NewBuilder(3)
	u := big.Gate([]Wire{0, 1}, []int64{1, 1}, 1)
	big.Gate([]Wire{2}, []int64{1}, 1) // dead
	big.MarkOutput(u)
	c := big.Build()
	pruned, _ := c.Prune()
	eq, err = EqualFunction(c, pruned)
	if err != nil || !eq {
		t.Errorf("prune changed function: %v %v", eq, err)
	}
}

func TestEqualFunctionErrors(t *testing.T) {
	a := buildXor()
	bb := NewBuilder(3)
	bb.MarkOutput(bb.Gate([]Wire{0}, []int64{1}, 1))
	threeIn := bb.Build()
	if _, err := EqualFunction(a, threeIn); err == nil {
		t.Error("input mismatch accepted")
	}
	wide := NewBuilder(30)
	wide.MarkOutput(wide.Gate([]Wire{0}, []int64{1}, 1))
	w1 := wide.Build()
	wide2 := NewBuilder(30)
	wide2.MarkOutput(wide2.Gate([]Wire{0}, []int64{1}, 1))
	w2 := wide2.Build()
	if _, err := EqualFunction(w1, w2); err == nil {
		t.Error("30-input exhaustive check accepted")
	}
	b2 := NewBuilder(2)
	b2.MarkOutput(b2.Gate([]Wire{0}, []int64{1}, 1))
	b2.MarkOutput(b2.Input(1))
	two := b2.Build()
	if _, err := EqualFunction(a, two); err == nil {
		t.Error("output-count mismatch accepted")
	}
}
