// Package conv implements the paper's motivating deep-learning
// application (Section 5): convolutional layers computed as matrix
// multiplication ("why GEMM is at the heart of deep learning").
//
// An n x n image with ℓ channels and K kernels of size q x q x ℓ applied
// at a given stride becomes a P x Q patch matrix (P patches, Q = q·q·ℓ
// kernel elements) times a Q x K kernel matrix; the P x K product scores
// every patch against every kernel. The package provides the im2col
// transformation, a direct-convolution reference, the threshold-circuit
// GEMM path, and the fan-in-limited row partitioning the paper sketches
// ("if the particular architecture can only support fan-in x, we can
// break the matrix multiplication into independent pieces... These can
// run in parallel, so they have the same depth").
package conv

import (
	"fmt"

	"repro/internal/bitio"
	"repro/internal/core"
	"repro/internal/matrix"
)

// Image is an H x W image with C channels, row-major with channel
// innermost: Data[(y*W+x)*C + c].
type Image struct {
	H, W, C int
	Data    []int64
}

// NewImage allocates a zero image.
func NewImage(h, w, c int) *Image {
	return &Image{H: h, W: w, C: c, Data: make([]int64, h*w*c)}
}

// At returns pixel (y, x) channel c.
func (im *Image) At(y, x, c int) int64 { return im.Data[(y*im.W+x)*im.C+c] }

// Set assigns pixel (y, x) channel c.
func (im *Image) Set(y, x, c int, v int64) { im.Data[(y*im.W+x)*im.C+c] = v }

// Kernel is a q x q x C filter, laid out like Image.
type Kernel struct {
	Q, C int
	Data []int64
}

// NewKernel allocates a zero kernel.
func NewKernel(q, c int) *Kernel {
	return &Kernel{Q: q, C: c, Data: make([]int64, q*q*c)}
}

// At returns weight (y, x, c).
func (k *Kernel) At(y, x, c int) int64 { return k.Data[(y*k.Q+x)*k.C+c] }

// Set assigns weight (y, x, c).
func (k *Kernel) Set(y, x, c int, v int64) { k.Data[(y*k.Q+x)*k.C+c] = v }

// Patches returns the number of patch positions per axis for kernel
// size q and the given stride, and the total patch count P.
func (im *Image) Patches(q, stride int) (perAxisY, perAxisX, total int, err error) {
	if q < 1 || q > im.H || q > im.W {
		return 0, 0, 0, fmt.Errorf("conv: kernel size %d does not fit %dx%d image", q, im.H, im.W)
	}
	if stride < 1 {
		return 0, 0, 0, fmt.Errorf("conv: stride %d < 1", stride)
	}
	perAxisY = (im.H-q)/stride + 1
	perAxisX = (im.W-q)/stride + 1
	return perAxisY, perAxisX, perAxisY * perAxisX, nil
}

// Im2Col builds the P x Q patch matrix: row p lists the q·q·C pixels of
// patch p in kernel layout order.
func Im2Col(im *Image, q, stride int) (*matrix.Matrix, error) {
	py, px, total, err := im.Patches(q, stride)
	if err != nil {
		return nil, err
	}
	qq := q * q * im.C
	out := matrix.New(total, qq)
	p := 0
	for gy := 0; gy < py; gy++ {
		for gx := 0; gx < px; gx++ {
			col := 0
			for y := 0; y < q; y++ {
				for x := 0; x < q; x++ {
					for c := 0; c < im.C; c++ {
						out.Set(p, col, im.At(gy*stride+y, gx*stride+x, c))
						col++
					}
				}
			}
			p++
		}
	}
	return out, nil
}

// KernelMatrix builds the Q x K matrix whose column k is kernel k's
// weights in the same layout Im2Col uses.
func KernelMatrix(kernels []*Kernel) (*matrix.Matrix, error) {
	if len(kernels) == 0 {
		return nil, fmt.Errorf("conv: no kernels")
	}
	q, c := kernels[0].Q, kernels[0].C
	qq := q * q * c
	out := matrix.New(qq, len(kernels))
	for k, kn := range kernels {
		if kn.Q != q || kn.C != c {
			return nil, fmt.Errorf("conv: kernel %d has shape (%d,%d), want (%d,%d)", k, kn.Q, kn.C, q, c)
		}
		for i, v := range kn.Data {
			out.Set(i, k, v)
		}
	}
	return out, nil
}

// Direct computes the convolution scores by definition: the P x K matrix
// of patch-kernel dot products. This is the reference the GEMM paths are
// checked against.
func Direct(im *Image, kernels []*Kernel, stride int) (*matrix.Matrix, error) {
	if len(kernels) == 0 {
		return nil, fmt.Errorf("conv: no kernels")
	}
	q := kernels[0].Q
	py, px, total, err := im.Patches(q, stride)
	if err != nil {
		return nil, err
	}
	out := matrix.New(total, len(kernels))
	for k, kn := range kernels {
		p := 0
		for gy := 0; gy < py; gy++ {
			for gx := 0; gx < px; gx++ {
				var dot int64
				for y := 0; y < q; y++ {
					for x := 0; x < q; x++ {
						for c := 0; c < im.C; c++ {
							dot += im.At(gy*stride+y, gx*stride+x, c) * kn.At(y, x, c)
						}
					}
				}
				out.Set(p, k, dot)
				p++
			}
		}
	}
	return out, nil
}

// GEMM computes the convolution as Im2Col(image) x KernelMatrix(kernels)
// with exact integer arithmetic (the conventional baseline).
func GEMM(im *Image, kernels []*Kernel, stride int) (*matrix.Matrix, error) {
	patches, err := Im2Col(im, kernels[0].Q, stride)
	if err != nil {
		return nil, err
	}
	km, err := KernelMatrix(kernels)
	if err != nil {
		return nil, err
	}
	return patches.Mul(km), nil
}

// CircuitResult carries the circuit-path output together with the
// circuit's complexity measures, for the fan-in experiments.
type CircuitResult struct {
	Scores   *matrix.Matrix
	Stats    []CircuitStats // one per partition piece
	MaxFanIn int
	Depth    int
	Gates    int64
}

// CircuitStats records one piece's measures.
type CircuitStats struct {
	Rows     int
	Gates    int
	Depth    int
	MaxFanIn int
}

// ViaCircuit computes the convolution through a threshold matmul
// circuit. maxRows <= 0 runs one circuit over all patches; maxRows > 0
// partitions the patch matrix into row blocks of at most maxRows
// (Section 5's fan-in-limiting decomposition) and runs an independent
// circuit per block — identical depth, bounded instance size.
//
// The rectangular P x Q by Q x K product is embedded into square
// power-of-T matrices, the standard padding.
func ViaCircuit(im *Image, kernels []*Kernel, stride int, opts core.Options, maxRows int) (*CircuitResult, error) {
	patches, err := Im2Col(im, kernels[0].Q, stride)
	if err != nil {
		return nil, err
	}
	km, err := KernelMatrix(kernels)
	if err != nil {
		return nil, err
	}
	if opts.EntryBits == 0 {
		need := bitio.Max64(patches.MaxAbs(), km.MaxAbs())
		opts.EntryBits = bitio.Bits(need)
		if opts.EntryBits == 0 {
			opts.EntryBits = 1
		}
	}
	if km.MaxAbs() > 0 && !opts.Signed {
		// Kernels routinely carry negative weights.
		opts.Signed = true
	}

	P := patches.Rows
	if maxRows <= 0 || maxRows > P {
		maxRows = P
	}
	result := &CircuitResult{Scores: matrix.New(P, km.Cols)}
	// Cache circuits by padded size: partition pieces share shapes.
	circuits := map[int]*core.MatMulCircuit{}
	for lo := 0; lo < P; lo += maxRows {
		hi := lo + maxRows
		if hi > P {
			hi = P
		}
		rows := hi - lo
		dims := []int{rows, patches.Cols, km.Cols}
		side := 1
		for _, d := range dims {
			if d > side {
				side = d
			}
		}
		padded := int(bitio.Pow(opts.Alg.T, bitio.CeilLog(opts.Alg.T, side)))
		mc, ok := circuits[padded]
		if !ok {
			mc, err = core.BuildMatMul(padded, opts)
			if err != nil {
				return nil, err
			}
			circuits[padded] = mc
		}
		block := matrix.New(rows, patches.Cols)
		for r := 0; r < rows; r++ {
			copy(block.Data[r*patches.Cols:(r+1)*patches.Cols],
				patches.Data[(lo+r)*patches.Cols:(lo+r+1)*patches.Cols])
		}
		prod, err := mc.Multiply(padSquare(block, padded), padSquare(km, padded))
		if err != nil {
			return nil, err
		}
		for r := 0; r < rows; r++ {
			for k := 0; k < km.Cols; k++ {
				result.Scores.Set(lo+r, k, prod.At(r, k))
			}
		}
		st := mc.Circuit.Stats()
		result.Stats = append(result.Stats, CircuitStats{
			Rows: rows, Gates: st.Size, Depth: st.Depth, MaxFanIn: st.MaxFanIn,
		})
		result.Gates += int64(st.Size)
		if st.Depth > result.Depth {
			result.Depth = st.Depth
		}
		if st.MaxFanIn > result.MaxFanIn {
			result.MaxFanIn = st.MaxFanIn
		}
	}
	return result, nil
}

// padSquare embeds an arbitrary rectangular matrix into the top-left of
// an n x n zero matrix.
func padSquare(m *matrix.Matrix, n int) *matrix.Matrix {
	out := matrix.New(n, n)
	for i := 0; i < m.Rows; i++ {
		copy(out.Data[i*n:i*n+m.Cols], m.Data[i*m.Cols:(i+1)*m.Cols])
	}
	return out
}
