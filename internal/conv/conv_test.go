package conv

import (
	"math/rand"
	"testing"

	"repro/internal/bilinear"
	"repro/internal/core"
)

// randomImage fills an image with small nonnegative pixel values.
func randomImage(rng *rand.Rand, h, w, c int, max int64) *Image {
	im := NewImage(h, w, c)
	for i := range im.Data {
		im.Data[i] = rng.Int63n(max + 1)
	}
	return im
}

// randomKernels draws signed kernel weights.
func randomKernels(rng *rand.Rand, k, q, c int, span int64) []*Kernel {
	out := make([]*Kernel, k)
	for i := range out {
		kn := NewKernel(q, c)
		for j := range kn.Data {
			kn.Data[j] = rng.Int63n(2*span+1) - span
		}
		out[i] = kn
	}
	return out
}

// GEMM (im2col) equals direct convolution across shapes, strides and
// channel counts.
func TestGEMMMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct{ h, w, c, q, stride, k int }{
		{4, 4, 1, 2, 1, 2},
		{4, 4, 1, 2, 2, 3},
		{6, 6, 2, 3, 3, 2},
		{5, 7, 1, 3, 2, 1},
		{8, 8, 3, 2, 2, 4},
	}
	for _, cse := range cases {
		im := randomImage(rng, cse.h, cse.w, cse.c, 3)
		ks := randomKernels(rng, cse.k, cse.q, cse.c, 2)
		direct, err := Direct(im, ks, cse.stride)
		if err != nil {
			t.Fatal(err)
		}
		gemm, err := GEMM(im, ks, cse.stride)
		if err != nil {
			t.Fatal(err)
		}
		if !gemm.Equal(direct) {
			t.Errorf("%+v: GEMM != direct", cse)
		}
	}
}

func TestIm2ColShape(t *testing.T) {
	im := NewImage(6, 6, 2)
	patches, err := Im2Col(im, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if patches.Rows != 4 || patches.Cols != 18 {
		t.Errorf("patch matrix %dx%d, want 4x18", patches.Rows, patches.Cols)
	}
}

func TestIm2ColValues(t *testing.T) {
	im := NewImage(3, 3, 1)
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			im.Set(y, x, 0, int64(y*3+x))
		}
	}
	patches, err := Im2Col(im, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Patch (0,0) covers pixels 0,1,3,4; patch (1,1) covers 4,5,7,8.
	want0 := []int64{0, 1, 3, 4}
	want3 := []int64{4, 5, 7, 8}
	for i := range want0 {
		if patches.At(0, i) != want0[i] {
			t.Errorf("patch 0 col %d = %d, want %d", i, patches.At(0, i), want0[i])
		}
		if patches.At(3, i) != want3[i] {
			t.Errorf("patch 3 col %d = %d, want %d", i, patches.At(3, i), want3[i])
		}
	}
}

// The circuit path computes the same scores as direct convolution.
func TestViaCircuitMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	im := randomImage(rng, 4, 4, 1, 3)
	ks := randomKernels(rng, 2, 2, 1, 2)
	direct, err := Direct(im, ks, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ViaCircuit(im, ks, 2, core.Options{Alg: bilinear.Strassen()}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Scores.Equal(direct) {
		t.Errorf("circuit conv wrong:\n%v\nwant\n%v", res.Scores, direct)
	}
	if res.Depth == 0 || res.Gates == 0 || len(res.Stats) != 1 {
		t.Errorf("missing stats: %+v", res)
	}
}

// Row partitioning (Section 5's fan-in decomposition). The paper's
// scenario: Q and K are constants, P (the patch count) is the dimension
// that grows, so splitting the patch rows shrinks each piece. Pieces run
// in parallel, so wall-clock depth does not grow, and per-gate fan-in
// drops.
func TestViaCircuitPartitioned(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	im := randomImage(rng, 8, 8, 1, 3)
	ks := randomKernels(rng, 2, 2, 1, 2)
	direct, err := Direct(im, ks, 2) // P = 16 patches, Q = 4, K = 2
	if err != nil {
		t.Fatal(err)
	}
	whole, err := ViaCircuit(im, ks, 2, core.Options{Alg: bilinear.Strassen()}, 0)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := ViaCircuit(im, ks, 2, core.Options{Alg: bilinear.Strassen()}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !whole.Scores.Equal(direct) || !parts.Scores.Equal(direct) {
		t.Fatal("partitioned or whole scores wrong")
	}
	if len(parts.Stats) != 4 {
		t.Errorf("expected 4 pieces, got %d", len(parts.Stats))
	}
	// Pieces run in parallel: wall depth <= whole depth; fan-in shrinks.
	if parts.Depth > whole.Depth {
		t.Errorf("partitioned depth %d > whole depth %d", parts.Depth, whole.Depth)
	}
	if parts.MaxFanIn >= whole.MaxFanIn {
		t.Errorf("partitioning did not reduce fan-in: %d vs %d", parts.MaxFanIn, whole.MaxFanIn)
	}
}

func TestErrors(t *testing.T) {
	im := NewImage(4, 4, 1)
	if _, err := Im2Col(im, 5, 1); err == nil {
		t.Error("oversized kernel accepted")
	}
	if _, err := Im2Col(im, 2, 0); err == nil {
		t.Error("zero stride accepted")
	}
	if _, err := KernelMatrix(nil); err == nil {
		t.Error("empty kernel list accepted")
	}
	mixed := []*Kernel{NewKernel(2, 1), NewKernel(3, 1)}
	if _, err := KernelMatrix(mixed); err == nil {
		t.Error("mixed kernel shapes accepted")
	}
	if _, err := Direct(im, nil, 1); err == nil {
		t.Error("Direct with no kernels accepted")
	}
}

// Image and kernel accessors round-trip.
func TestAccessors(t *testing.T) {
	im := NewImage(2, 3, 2)
	im.Set(1, 2, 1, 42)
	if im.At(1, 2, 1) != 42 {
		t.Error("image accessor broken")
	}
	k := NewKernel(2, 2)
	k.Set(1, 0, 1, -7)
	if k.At(1, 0, 1) != -7 {
		t.Error("kernel accessor broken")
	}
}
