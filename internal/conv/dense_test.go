package conv

import (
	"math/rand"
	"testing"

	"repro/internal/bilinear"
	"repro/internal/core"
	"repro/internal/matrix"
)

// classifierNet: conv (8x8 -> 4x4x2) -> dense head (32 -> 3 classes).
func classifierNet(rng *rand.Rand) *Network {
	kernels := make([]*Kernel, 2)
	for i := range kernels {
		k := NewKernel(2, 1)
		for j := range k.Data {
			k.Data[j] = rng.Int63n(5) - 2
		}
		kernels[i] = k
	}
	head := matrix.New(4*4*2, 3)
	for i := range head.Data {
		head.Data[i] = rng.Int63n(3) - 1
	}
	return &Network{Layers: []Layer{
		{Kernels: kernels, Stride: 2, Threshold: 1},
		{Dense: head, Threshold: 2},
	}}
}

// The conv+dense pipeline matches the direct reference both layerwise
// and fused.
func TestDenseHeadMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	nw := classifierNet(rng)
	shapes, err := nw.Validate(8, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if shapes[1] != [3]int{1, 1, 3} {
		t.Fatalf("head output shape %v, want (1,1,3)", shapes[1])
	}
	im := randomImage(rng, 8, 8, 1, 3)
	want, err := nw.ForwardDirect(im)
	if err != nil {
		t.Fatal(err)
	}
	got, err := nw.Forward(im, core.Options{Alg: bilinear.Strassen()}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if want.Data[i] != got.Output.Data[i] {
			t.Fatalf("class activation %d differs", i)
		}
	}
	if len(got.Layers) != 2 {
		t.Error("layer stats missing")
	}
}

// The fused single-circuit build supports the dense head too.
func TestDenseHeadFused(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	nw := classifierNet(rng)
	opts := core.Options{Alg: bilinear.Strassen(), SharedMSB: true}
	fn, err := nw.BuildFused(8, 8, 1, 3, &opts)
	if err != nil {
		t.Fatal(err)
	}
	if fn.OutShape != [3]int{1, 1, 3} {
		t.Fatalf("fused output shape %v", fn.OutShape)
	}
	for trial := 0; trial < 3; trial++ {
		im := randomImage(rng, 8, 8, 1, 3)
		want, err := nw.ForwardDirect(im)
		if err != nil {
			t.Fatal(err)
		}
		got, err := fn.Forward(im)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Data {
			if want.Data[i] != got.Data[i] {
				t.Fatalf("trial %d: fused class %d differs", trial, i)
			}
		}
	}
}

// Dense shape mismatches are rejected at validation.
func TestDenseValidation(t *testing.T) {
	bad := &Network{Layers: []Layer{
		{Dense: matrix.New(10, 2), Threshold: 0}, // input is 8*8*1=64
	}}
	if _, err := bad.Validate(8, 8, 1); err == nil {
		t.Error("dense shape mismatch accepted")
	}
	rng := rand.New(rand.NewSource(103))
	im := randomImage(rng, 8, 8, 1, 3)
	if _, err := bad.ForwardDirect(im); err == nil {
		t.Error("direct forward accepted bad dense shape")
	}
	if _, err := bad.Forward(im, core.Options{Alg: bilinear.Strassen()}, 0); err == nil {
		t.Error("circuit forward accepted bad dense shape")
	}
}
