package conv

import (
	"fmt"

	"repro/internal/arith"
	"repro/internal/bilinear"
	"repro/internal/bitio"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/matrix"
)

// FusedNetwork compiles an entire spiking convolution network into ONE
// threshold circuit: image pixel bits in, final-layer activation bits
// out. Each layer's GEMM circuit is spliced in (circuit.Builder.Splice)
// with its kernel-matrix inputs tied to constant wires, patch
// extraction is pure rewiring, and each activation is a single
// threshold gate — so the whole network is a fixed-depth threshold
// circuit, the deployment story the paper's deep-learning section
// sketches.
type FusedNetwork struct {
	Circuit *circuit.Circuit
	Net     *Network
	H, W, C int // input image shape
	// PixelBits is the bit width of each input pixel (unsigned);
	// inputs are laid out pixel-major, bit-minor, matching Image.Data.
	PixelBits int
	// Outputs are the final layer's activation wires in Image.Data
	// order of the output shape.
	Outputs []circuit.Wire
	// OutShape is the final activation image shape.
	OutShape [3]int
	// LayerGates attributes gates to layers (embedded GEMM + activations).
	LayerGates []int64
}

// BuildFused compiles the network for inputs of shape (h, w, c) with
// unsigned pixels bounded by maxPixel.
func (nw *Network) BuildFused(h, w, c int, maxPixel int64, alg *core.Options) (*FusedNetwork, error) {
	if _, err := nw.Validate(h, w, c); err != nil {
		return nil, err
	}
	if maxPixel < 1 {
		return nil, fmt.Errorf("conv: maxPixel %d < 1", maxPixel)
	}
	pixelBits := bitio.Bits(maxPixel)
	fn := &FusedNetwork{Net: nw, H: h, W: w, C: c, PixelBits: pixelBits}

	b := circuit.NewBuilder(h * w * c * pixelBits)
	zero := b.Const(false)
	one := b.Const(true)

	// Current layer input: per "pixel", its bit wires (little endian)
	// and the current shape.
	curBits := make([][]circuit.Wire, h*w*c)
	for p := 0; p < h*w*c; p++ {
		bits := make([]circuit.Wire, pixelBits)
		for k := 0; k < pixelBits; k++ {
			bits[k] = b.Input(p*pixelBits + k)
		}
		curBits[p] = bits
	}
	curH, curW, curC := h, w, c
	curMax := maxPixel

	for li, layer := range nw.Layers {
		before := int64(b.Size())
		var km *matrix.Matrix
		var err error
		var py, px, P, Q, K int
		if layer.isDense() {
			km = layer.Dense
			py, px = 1, 1
			P, Q, K = 1, curH*curW*curC, km.Cols
		} else {
			km, err = KernelMatrix(layer.Kernels)
			if err != nil {
				return nil, err
			}
			q := layer.Kernels[0].Q
			py = (curH-q)/layer.Stride + 1
			px = (curW-q)/layer.Stride + 1
			P = py * px
			Q = q * q * curC
			K = km.Cols
		}

		// Configure the layer's GEMM circuit.
		opts := core.Options{Alg: algOf(alg), SharedMSB: sharedOf(alg)}
		need := bitio.Max64(curMax, km.MaxAbs())
		opts.EntryBits = bitio.Bits(need)
		if opts.EntryBits == 0 {
			opts.EntryBits = 1
		}
		opts.Signed = km.MaxAbs() > 0 // kernels may be negative
		side := P
		if Q > side {
			side = Q
		}
		if K > side {
			side = K
		}
		padded := int(bitio.Pow(opts.Alg.T, bitio.CeilLog(opts.Alg.T, side)))
		mc, err := core.BuildMatMul(padded, opts)
		if err != nil {
			return nil, err
		}

		// Wire the embedded circuit's inputs.
		per := opts.EntryBits
		if opts.Signed {
			per *= 2
		}
		inputMap := make([]circuit.Wire, mc.Circuit.NumInputs())
		for i := range inputMap {
			inputMap[i] = zero
		}
		// A plane: patch matrix entries (conv) or the flattened
		// activation vector (dense).
		if layer.isDense() {
			for col := 0; col < Q; col++ {
				bits := curBits[col]
				base := col * per
				for k := 0; k < len(bits) && k < opts.EntryBits; k++ {
					inputMap[base+k] = bits[k]
				}
			}
		} else {
			q := layer.Kernels[0].Q
			for p := 0; p < P; p++ {
				gy, gx := p/px, p%px
				col := 0
				for y := 0; y < q; y++ {
					for x := 0; x < q; x++ {
						for ch := 0; ch < curC; ch++ {
							pix := ((gy*layer.Stride+y)*curW + (gx*layer.Stride + x)) * curC
							bits := curBits[pix+ch]
							base := (p*padded + col) * per
							for k := 0; k < len(bits) && k < opts.EntryBits; k++ {
								inputMap[base+k] = bits[k]
							}
							col++
						}
					}
				}
			}
		}
		// B plane: kernel matrix constants.
		bBase := padded * padded * per
		for r := 0; r < Q; r++ {
			for cc := 0; cc < K; cc++ {
				v := km.At(r, cc)
				mag := v
				negOff := 0
				if v < 0 {
					mag = -v
					negOff = opts.EntryBits
				}
				base := bBase + (r*padded+cc)*per + negOff
				for k := 0; k < opts.EntryBits; k++ {
					if mag&(1<<uint(k)) != 0 {
						inputMap[base+k] = one
					}
				}
			}
		}

		outs := b.Splice(mc.Circuit, inputMap)

		// Rebuild the score representations against the remapped wires
		// and apply the activation threshold per patch/kernel.
		remapped := mc.RemapReps(outs)

		nextBits := make([][]circuit.Wire, P*K)
		for p := 0; p < P; p++ {
			for kk := 0; kk < K; kk++ {
				score := remapped[p*padded+kk]
				act := arith.Threshold(b, score, layer.Threshold)
				// Activation image layout: (gy, gx, kernel channel).
				nextBits[p*K+kk] = []circuit.Wire{act}
			}
		}
		curBits = nextBits
		curH, curW, curC = py, px, K
		curMax = 1
		fn.LayerGates = append(fn.LayerGates, int64(b.Size())-before)
		_ = li
	}

	fn.OutShape = [3]int{curH, curW, curC}
	fn.Outputs = make([]circuit.Wire, len(curBits))
	for i, bits := range curBits {
		fn.Outputs[i] = bits[0]
		b.MarkOutput(bits[0])
	}
	fn.Circuit = b.Build()
	return fn, nil
}

// algOf / sharedOf unpack the options carrier.
func algOf(o *core.Options) *bilinear.Algorithm {
	if o == nil || o.Alg == nil {
		panic("conv: BuildFused requires Options with Alg set")
	}
	return o.Alg
}

func sharedOf(o *core.Options) bool {
	return o != nil && o.SharedMSB
}

// Assign encodes an input image as the fused circuit's input vector.
func (fn *FusedNetwork) Assign(im *Image) ([]bool, error) {
	if im.H != fn.H || im.W != fn.W || im.C != fn.C {
		return nil, fmt.Errorf("conv: image shape (%d,%d,%d), want (%d,%d,%d)",
			im.H, im.W, im.C, fn.H, fn.W, fn.C)
	}
	in := make([]bool, fn.Circuit.NumInputs())
	for p, v := range im.Data {
		if v < 0 {
			return nil, fmt.Errorf("conv: fused network inputs must be nonnegative, got %d", v)
		}
		if bitio.Bits(v) > fn.PixelBits {
			return nil, fmt.Errorf("conv: pixel %d exceeds %d bits", v, fn.PixelBits)
		}
		for k := 0; k < fn.PixelBits; k++ {
			in[p*fn.PixelBits+k] = v&(1<<uint(k)) != 0
		}
	}
	return in, nil
}

// Forward runs the fused circuit and returns the final activation image.
func (fn *FusedNetwork) Forward(im *Image) (*Image, error) {
	in, err := fn.Assign(im)
	if err != nil {
		return nil, err
	}
	vals := fn.Circuit.EvalParallel(in, 0)
	out := NewImage(fn.OutShape[0], fn.OutShape[1], fn.OutShape[2])
	for i, w := range fn.Outputs {
		if vals[w] {
			out.Data[i] = 1
		}
	}
	return out, nil
}
