package conv

import (
	"math/rand"
	"testing"

	"repro/internal/bilinear"
	"repro/internal/core"
)

// The fused single-circuit network computes the same activations as the
// direct reference, across random kernels and inputs.
func TestFusedMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 2; trial++ {
		nw := twoLayerNet(rng)
		opts := core.Options{Alg: bilinear.Strassen()}
		fn, err := nw.BuildFused(8, 8, 1, 3, &opts)
		if err != nil {
			t.Fatal(err)
		}
		for e := 0; e < 3; e++ {
			im := randomImage(rng, 8, 8, 1, 3)
			want, err := nw.ForwardDirect(im)
			if err != nil {
				t.Fatal(err)
			}
			got, err := fn.Forward(im)
			if err != nil {
				t.Fatal(err)
			}
			if got.H != want.H || got.W != want.W || got.C != want.C {
				t.Fatalf("shape (%d,%d,%d) != (%d,%d,%d)", got.H, got.W, got.C, want.H, want.W, want.C)
			}
			for i := range want.Data {
				if want.Data[i] != got.Data[i] {
					t.Fatalf("trial %d eval %d: activation %d differs", trial, e, i)
				}
			}
		}
	}
}

// The fused circuit is ONE circuit: constant depth end-to-end, with
// per-layer gate attribution summing to the total (minus the two
// constant wires).
func TestFusedStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	nw := twoLayerNet(rng)
	opts := core.Options{Alg: bilinear.Strassen()}
	fn, err := nw.BuildFused(8, 8, 1, 3, &opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(fn.LayerGates) != 2 {
		t.Fatalf("layer gates %v", fn.LayerGates)
	}
	var sum int64
	for _, g := range fn.LayerGates {
		sum += g
	}
	if sum+2 != int64(fn.Circuit.Size()) { // +2 constant wires
		t.Errorf("layer gates %d + 2 != size %d", sum, fn.Circuit.Size())
	}
	// Depth: two embedded GEMMs (each <= 4t+1, +1 for constant-wire
	// skew) plus one activation gate per layer, chained.
	if fn.Circuit.Depth() > 2*(4*2+1+1)+2 {
		t.Errorf("fused depth %d suspiciously large", fn.Circuit.Depth())
	}
	if fn.Circuit.Depth() < 8 {
		t.Errorf("fused depth %d suspiciously small for two layers", fn.Circuit.Depth())
	}
	if len(fn.Outputs) != fn.OutShape[0]*fn.OutShape[1]*fn.OutShape[2] {
		t.Error("output wires do not match output shape")
	}
}

// SharedMSB flows through the fused build and still matches.
func TestFusedSharedMSB(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	nw := twoLayerNet(rng)
	plainOpts := core.Options{Alg: bilinear.Strassen()}
	sharedOpts := core.Options{Alg: bilinear.Strassen(), SharedMSB: true}
	plain, err := nw.BuildFused(8, 8, 1, 3, &plainOpts)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := nw.BuildFused(8, 8, 1, 3, &sharedOpts)
	if err != nil {
		t.Fatal(err)
	}
	if shared.Circuit.Size() >= plain.Circuit.Size() {
		t.Errorf("shared %d >= plain %d", shared.Circuit.Size(), plain.Circuit.Size())
	}
	im := randomImage(rng, 8, 8, 1, 3)
	a, err := plain.Forward(im)
	if err != nil {
		t.Fatal(err)
	}
	b, err := shared.Forward(im)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("shared fused output differs")
		}
	}
}

func TestFusedErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	nw := twoLayerNet(rng)
	opts := core.Options{Alg: bilinear.Strassen()}
	if _, err := nw.BuildFused(8, 8, 1, 0, &opts); err == nil {
		t.Error("maxPixel 0 accepted")
	}
	if _, err := nw.BuildFused(3, 3, 1, 3, &opts); err == nil {
		t.Error("shape that does not fit accepted")
	}
	fn, err := nw.BuildFused(8, 8, 1, 3, &opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fn.Forward(NewImage(4, 4, 1)); err == nil {
		t.Error("wrong image shape accepted")
	}
	big := NewImage(8, 8, 1)
	big.Data[0] = 9 // exceeds maxPixel=3 (2 bits)
	if _, err := fn.Forward(big); err == nil {
		t.Error("overflowing pixel accepted")
	}
	neg := NewImage(8, 8, 1)
	neg.Data[0] = -1
	if _, err := fn.Forward(neg); err == nil {
		t.Error("negative pixel accepted")
	}
}
