package conv

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/matrix"
)

// Layer is one spiking-activation stage of a network: scores are
// thresholded into binary activations, the natural nonlinearity on
// threshold-gate hardware (one gate per unit: the activation
// [score >= Threshold] is itself a linear threshold function, so an
// entire network is expressible in the circuit model; the paper's
// convolutional motivation composed to several layers).
//
// A layer is either convolutional (Kernels + Stride set) or dense
// (Dense set): a dense layer flattens its H x W x C input into a
// 1 x (H·W·C) vector and multiplies by the (H·W·C) x K weight matrix —
// the classifier head of a typical CNN.
type Layer struct {
	Kernels   []*Kernel
	Stride    int
	Dense     *matrix.Matrix // fully-connected weights; nil for conv layers
	Threshold int64          // activation fires iff score >= Threshold
}

// isDense reports the layer kind.
func (l *Layer) isDense() bool { return l.Dense != nil }

// Network is a feed-forward stack of spiking convolution layers.
type Network struct {
	Layers []Layer
}

// LayerResult records one layer's execution.
type LayerResult struct {
	Scores      *matrix.Matrix // P x K pre-activation scores
	Activations *Image         // binary activation image feeding the next layer
	Gates       int64          // matmul circuit gates
	Depth       int            // matmul circuit depth + 1 activation level
	Spikes      int64          // activations that fired
}

// NetworkResult aggregates a forward pass.
type NetworkResult struct {
	Layers []LayerResult
	Output *Image // final activation image
	Gates  int64  // total gates across all layer circuits
	Depth  int    // total circuit depth (layers execute sequentially)
}

// Forward runs the network on an image through threshold matmul
// circuits (ViaCircuit per layer; maxRows partitions as in Section 5).
// Activations are binary, so every layer past the first runs with
// 1-bit inputs.
func (nw *Network) Forward(im *Image, opts core.Options, maxRows int) (*NetworkResult, error) {
	if len(nw.Layers) == 0 {
		return nil, fmt.Errorf("conv: empty network")
	}
	res := &NetworkResult{}
	cur := im
	for li, layer := range nw.Layers {
		var scores *matrix.Matrix
		var gates int64
		var depth, px int
		var py int
		switch {
		case layer.isDense():
			vec := matrix.New(1, len(cur.Data))
			copy(vec.Data, cur.Data)
			if layer.Dense.Rows != vec.Cols {
				return nil, fmt.Errorf("conv: dense layer %d wants %d inputs, image has %d",
					li, layer.Dense.Rows, vec.Cols)
			}
			layerOpts := opts
			layerOpts.EntryBits = bitsFor(vec, layer.Dense)
			layerOpts.Signed = layer.Dense.MaxAbs() > 0
			rc, err := core.BuildRectMatMul(1, vec.Cols, layer.Dense.Cols, layerOpts)
			if err != nil {
				return nil, fmt.Errorf("conv: dense layer %d: %w", li, err)
			}
			scores, err = rc.Multiply(vec, layer.Dense)
			if err != nil {
				return nil, fmt.Errorf("conv: dense layer %d: %w", li, err)
			}
			st := rc.Inner.Circuit.Stats()
			gates, depth = int64(st.Size), st.Depth
			py, px = 1, 1
		case len(layer.Kernels) > 0:
			layerOpts := opts
			layerOpts.EntryBits = 0 // re-derive per layer from actual ranges
			cr, err := ViaCircuit(cur, layer.Kernels, layer.Stride, layerOpts, maxRows)
			if err != nil {
				return nil, fmt.Errorf("conv: layer %d: %w", li, err)
			}
			scores = cr.Scores
			gates, depth = cr.Gates, cr.Depth
			var err2 error
			py, px, _, err2 = cur.Patches(layer.Kernels[0].Q, layer.Stride)
			if err2 != nil {
				return nil, err2
			}
		default:
			return nil, fmt.Errorf("conv: layer %d has neither kernels nor dense weights", li)
		}

		channels := scores.Cols
		act := NewImage(py, px, channels)
		lr := LayerResult{Scores: scores, Gates: gates, Depth: depth + 1}
		for p := 0; p < scores.Rows; p++ {
			for k := 0; k < channels; k++ {
				if scores.At(p, k) >= layer.Threshold {
					act.Set(p/px, p%px, k, 1)
					lr.Spikes++
				}
			}
		}
		lr.Activations = act
		res.Layers = append(res.Layers, lr)
		res.Gates += lr.Gates + int64(scores.Rows*channels) // + activation gates
		res.Depth += lr.Depth
		cur = act
	}
	res.Output = cur
	return res, nil
}

// bitsFor sizes EntryBits to cover both operands.
func bitsFor(a, b *matrix.Matrix) int {
	need := a.MaxAbs()
	if m := b.MaxAbs(); m > need {
		need = m
	}
	bits := 0
	for (int64(1) << uint(bits)) <= need {
		bits++
	}
	if bits == 0 {
		bits = 1
	}
	return bits
}

// ForwardDirect is the exact reference: the same network computed with
// plain integer arithmetic.
func (nw *Network) ForwardDirect(im *Image) (*Image, error) {
	if len(nw.Layers) == 0 {
		return nil, fmt.Errorf("conv: empty network")
	}
	cur := im
	for li, layer := range nw.Layers {
		var scores *matrix.Matrix
		var py, px int
		if layer.isDense() {
			vec := matrix.New(1, len(cur.Data))
			copy(vec.Data, cur.Data)
			if layer.Dense.Rows != vec.Cols {
				return nil, fmt.Errorf("conv: dense layer %d wants %d inputs, image has %d",
					li, layer.Dense.Rows, vec.Cols)
			}
			scores = vec.Mul(layer.Dense)
			py, px = 1, 1
		} else {
			var err error
			scores, err = Direct(cur, layer.Kernels, layer.Stride)
			if err != nil {
				return nil, fmt.Errorf("conv: layer %d: %w", li, err)
			}
			py, px, _, err = cur.Patches(layer.Kernels[0].Q, layer.Stride)
			if err != nil {
				return nil, err
			}
		}
		act := NewImage(py, px, scores.Cols)
		for p := 0; p < scores.Rows; p++ {
			for k := 0; k < scores.Cols; k++ {
				if scores.At(p, k) >= layer.Threshold {
					act.Set(p/px, p%px, k, 1)
				}
			}
		}
		cur = act
	}
	return cur, nil
}

// Validate checks the network's shapes compose over an input of the
// given dimensions, returning the per-layer output sizes.
func (nw *Network) Validate(h, w, c int) ([][3]int, error) {
	var shapes [][3]int
	for li, layer := range nw.Layers {
		if layer.isDense() {
			if layer.Dense.Rows != h*w*c {
				return nil, fmt.Errorf("conv: dense layer %d wants %d inputs, gets %d", li, layer.Dense.Rows, h*w*c)
			}
			h, w, c = 1, 1, layer.Dense.Cols
			shapes = append(shapes, [3]int{h, w, c})
			continue
		}
		if len(layer.Kernels) == 0 {
			return nil, fmt.Errorf("conv: layer %d has neither kernels nor dense weights", li)
		}
		q := layer.Kernels[0].Q
		for ki, k := range layer.Kernels {
			if k.Q != q || k.C != c {
				return nil, fmt.Errorf("conv: layer %d kernel %d has shape (q=%d,c=%d), want (q=%d,c=%d)",
					li, ki, k.Q, k.C, q, c)
			}
		}
		if layer.Stride < 1 || q > h || q > w {
			return nil, fmt.Errorf("conv: layer %d does not fit %dx%d input", li, h, w)
		}
		h = (h-q)/layer.Stride + 1
		w = (w-q)/layer.Stride + 1
		c = len(layer.Kernels)
		shapes = append(shapes, [3]int{h, w, c})
	}
	return shapes, nil
}
