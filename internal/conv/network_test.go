package conv

import (
	"math/rand"
	"testing"

	"repro/internal/bilinear"
	"repro/internal/core"
)

// twoLayerNet builds a small 2-layer spiking network: 8x8 input ->
// (2x2 kernels, stride 2) -> 4x4x2 activations -> (2x2 kernels,
// stride 2) -> 2x2x2 output.
func twoLayerNet(rng *rand.Rand) *Network {
	l1 := make([]*Kernel, 2)
	for i := range l1 {
		k := NewKernel(2, 1)
		for j := range k.Data {
			k.Data[j] = rng.Int63n(5) - 2
		}
		l1[i] = k
	}
	l2 := make([]*Kernel, 2)
	for i := range l2 {
		k := NewKernel(2, 2)
		for j := range k.Data {
			k.Data[j] = rng.Int63n(3) - 1
		}
		l2[i] = k
	}
	return &Network{Layers: []Layer{
		{Kernels: l1, Stride: 2, Threshold: 1},
		{Kernels: l2, Stride: 2, Threshold: 2},
	}}
}

// The circuit forward pass matches the direct reference exactly,
// layer activations included.
func TestNetworkForwardMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 3; trial++ {
		nw := twoLayerNet(rng)
		im := randomImage(rng, 8, 8, 1, 3)
		want, err := nw.ForwardDirect(im)
		if err != nil {
			t.Fatal(err)
		}
		got, err := nw.Forward(im, core.Options{Alg: bilinear.Strassen()}, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Data {
			if want.Data[i] != got.Output.Data[i] {
				t.Fatalf("trial %d: activation %d differs", trial, i)
			}
		}
		if len(got.Layers) != 2 || got.Gates == 0 || got.Depth == 0 {
			t.Errorf("missing network stats: %+v", got)
		}
		// Layer depths accumulate (+1 activation each).
		if got.Depth != got.Layers[0].Depth+got.Layers[1].Depth {
			t.Error("network depth is not the sum of layer depths")
		}
	}
}

// Partitioned execution gives identical activations.
func TestNetworkForwardPartitioned(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	nw := twoLayerNet(rng)
	im := randomImage(rng, 8, 8, 1, 3)
	whole, err := nw.Forward(im, core.Options{Alg: bilinear.Strassen()}, 0)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := nw.Forward(im, core.Options{Alg: bilinear.Strassen()}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range whole.Output.Data {
		if whole.Output.Data[i] != parts.Output.Data[i] {
			t.Fatal("partitioned network output differs")
		}
	}
}

// Activations are binary and spike counts match.
func TestNetworkActivationsBinary(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	nw := twoLayerNet(rng)
	im := randomImage(rng, 8, 8, 1, 3)
	res, err := nw.Forward(im, core.Options{Alg: bilinear.Strassen()}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for li, lr := range res.Layers {
		var ones int64
		for _, v := range lr.Activations.Data {
			if v != 0 && v != 1 {
				t.Fatalf("layer %d: non-binary activation %d", li, v)
			}
			ones += v
		}
		if ones != lr.Spikes {
			t.Errorf("layer %d: spikes %d != activation ones %d", li, lr.Spikes, ones)
		}
	}
}

func TestNetworkValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	nw := twoLayerNet(rng)
	shapes, err := nw.Validate(8, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(shapes) != 2 || shapes[0] != [3]int{4, 4, 2} || shapes[1] != [3]int{2, 2, 2} {
		t.Errorf("shapes = %v", shapes)
	}
	// Channel mismatch is caught.
	bad := &Network{Layers: []Layer{{Kernels: []*Kernel{NewKernel(2, 3)}, Stride: 1}}}
	if _, err := bad.Validate(8, 8, 1); err == nil {
		t.Error("channel mismatch accepted")
	}
	// Oversized kernel is caught.
	big := &Network{Layers: []Layer{{Kernels: []*Kernel{NewKernel(9, 1)}, Stride: 1}}}
	if _, err := big.Validate(8, 8, 1); err == nil {
		t.Error("oversized kernel accepted")
	}
	empty := &Network{}
	if _, err := empty.Forward(randomImage(rng, 4, 4, 1, 1), core.Options{Alg: bilinear.Strassen()}, 0); err == nil {
		t.Error("empty network accepted")
	}
}
