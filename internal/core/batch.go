package core

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/matrix"
)

// This file threads the batched, bit-sliced evaluation engine
// (circuit.Evaluator) through the paper's circuit constructions: many
// independent (A, B) pairs, graphs or adjacency matrices evaluated
// against one built circuit amortize wire/weight loads 64 samples at a
// time. Each circuit wrapper caches one lazily-built evaluator; the
// wrappers are not safe for concurrent use (the evaluator parallelizes
// internally instead).

// BatchEvaluator returns the circuit's cached batch engine, building
// it on first use with GOMAXPROCS workers.
func (mc *MatMulCircuit) BatchEvaluator() *circuit.Evaluator {
	if mc.ev == nil {
		mc.ev = circuit.NewEvaluator(mc.Circuit, 0)
	}
	return mc.ev
}

// MultiplyBatch computes as[i]·bs[i] for every pair through one batched
// circuit evaluation. Results are bit-for-bit those of Multiply.
func (mc *MatMulCircuit) MultiplyBatch(as, bs []*matrix.Matrix) ([]*matrix.Matrix, error) {
	if len(as) != len(bs) {
		return nil, fmt.Errorf("core: %d left matrices vs %d right", len(as), len(bs))
	}
	inputs := make([][]bool, len(as))
	for i := range as {
		in, err := mc.Assign(as[i], bs[i])
		if err != nil {
			return nil, err
		}
		inputs[i] = in
	}
	p := mc.BatchEvaluator().EvalPlanes(circuit.PackBools(inputs))
	out := make([]*matrix.Matrix, len(as))
	var scratch []bool
	for s := range out {
		scratch = p.Assignment(s, scratch)
		out[s] = mc.Decode(scratch)
	}
	return out, nil
}

// BatchEvaluator returns the circuit's cached batch engine.
func (tc *TraceCircuit) BatchEvaluator() *circuit.Evaluator {
	if tc.ev == nil {
		tc.ev = circuit.NewEvaluator(tc.Circuit, 0)
	}
	return tc.ev
}

// DecideBatch answers trace(A³) >= τ for every matrix in one batched
// evaluation, reading the single output wire straight from the packed
// planes (no per-sample wire arrays are materialized).
func (tc *TraceCircuit) DecideBatch(as []*matrix.Matrix) ([]bool, error) {
	inputs := make([][]bool, len(as))
	for i, a := range as {
		in, err := tc.Assign(a)
		if err != nil {
			return nil, err
		}
		inputs[i] = in
	}
	if len(inputs) == 0 {
		return nil, nil
	}
	p := tc.BatchEvaluator().EvalPlanes(circuit.PackBools(inputs))
	out := make([]bool, len(as))
	for s := range out {
		out[s] = p.Get(tc.output, s)
	}
	return out, nil
}

// EnergyBatch evaluates the circuit on every adjacency matrix and
// returns the per-sample energy (firing gates) — the batched form of
// the Section 6 Monte Carlo energy measurements, computed by popcount
// over the packed gate planes.
func (tc *TraceCircuit) EnergyBatch(as []*matrix.Matrix) ([]int64, error) {
	inputs := make([][]bool, len(as))
	for i, a := range as {
		in, err := tc.Assign(a)
		if err != nil {
			return nil, err
		}
		inputs[i] = in
	}
	if len(inputs) == 0 {
		return nil, nil
	}
	p := tc.BatchEvaluator().EvalPlanes(circuit.PackBools(inputs))
	return tc.Circuit.EnergyBatch(p), nil
}

// BatchEvaluator returns the circuit's cached batch engine.
func (cc *CountCircuit) BatchEvaluator() *circuit.Evaluator {
	if cc.ev == nil {
		cc.ev = circuit.NewEvaluator(cc.Circuit, 0)
	}
	return cc.ev
}

// TrianglesBatch counts triangles for every adjacency matrix in one
// batched evaluation.
func (cc *CountCircuit) TrianglesBatch(adjs []*matrix.Matrix) ([]int64, error) {
	inputs := make([][]bool, len(adjs))
	for i, a := range adjs {
		in, err := cc.Assign(a)
		if err != nil {
			return nil, err
		}
		inputs[i] = in
	}
	if len(inputs) == 0 {
		return nil, nil
	}
	p := cc.BatchEvaluator().EvalPlanes(circuit.PackBools(inputs))
	out := make([]int64, len(adjs))
	var scratch []bool
	for s := range out {
		scratch = p.Assignment(s, scratch)
		half := cc.halfTrace.Value(scratch)
		if half < 0 || half%3 != 0 {
			return nil, fmt.Errorf("core: half-trace %d of batch sample %d is not a triangle multiple", half, s)
		}
		out[s] = half / 3
	}
	return out, nil
}

// TrianglesEnergyBatch counts triangles AND tallies Uchizawa energy
// (firing gates) for every adjacency matrix from a single batched
// evaluation pass — the serving layer's energy-budget mode pays one
// EvalPlanes for both answers. The energy of sample s is identical to
// what the scalar Energy path reports for the same assignment: both
// are popcounts over the same gate values.
func (cc *CountCircuit) TrianglesEnergyBatch(adjs []*matrix.Matrix) (counts, energy []int64, err error) {
	inputs := make([][]bool, len(adjs))
	for i, a := range adjs {
		in, err := cc.Assign(a)
		if err != nil {
			return nil, nil, err
		}
		inputs[i] = in
	}
	if len(inputs) == 0 {
		return nil, nil, nil
	}
	p := cc.BatchEvaluator().EvalPlanes(circuit.PackBools(inputs))
	energy = cc.Circuit.EnergyBatch(p)
	counts = make([]int64, len(adjs))
	var scratch []bool
	for s := range counts {
		scratch = p.Assignment(s, scratch)
		half := cc.halfTrace.Value(scratch)
		if half < 0 || half%3 != 0 {
			return nil, nil, fmt.Errorf("core: half-trace %d of batch sample %d is not a triangle multiple", half, s)
		}
		counts[s] = half / 3
	}
	return counts, energy, nil
}
