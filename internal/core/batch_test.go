package core

import (
	"math/rand"
	"testing"

	"repro/internal/bilinear"
	"repro/internal/circuit"
	"repro/internal/graph"
	"repro/internal/matrix"
)

// Every circuit variant the builders can produce must evaluate
// identically through the batch engine and the scalar path. This is
// the construction-level differential check complementing the random-
// circuit fuzz in internal/circuit.
func TestEvalBatchMatchesEvalOnVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	variants := []struct {
		name string
		opts Options
		lo   int64
	}{
		{"binary", Options{Alg: bilinear.Strassen()}, 0},
		{"signed", Options{Alg: bilinear.Strassen(), EntryBits: 2, Signed: true}, -3},
		{"multibit", Options{Alg: bilinear.Winograd(), EntryBits: 3}, 0},
		{"grouped", Options{Alg: bilinear.Strassen(), GroupSize: 4}, 0},
		{"sharedmsb", Options{Alg: bilinear.Strassen(), SharedMSB: true}, 0},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			mc, err := BuildMatMul(4, v.opts)
			if err != nil {
				t.Fatal(err)
			}
			const batch = 67 // crosses the 64-sample word boundary
			inputs := make([][]bool, batch)
			hi := int64(1)<<uint(mc.Opts.EntryBits) - 1
			for s := range inputs {
				a := matrix.Random(rng, 4, 4, v.lo, hi)
				b := matrix.Random(rng, 4, 4, v.lo, hi)
				in, err := mc.Assign(a, b)
				if err != nil {
					t.Fatal(err)
				}
				inputs[s] = in
			}
			e := mc.BatchEvaluator()
			got := e.EvalBatch(inputs)
			for s, in := range inputs {
				want := mc.Circuit.Eval(in)
				for w := range want {
					if got[s][w] != want[w] {
						t.Fatalf("variant %s sample %d wire %d: batch=%v eval=%v",
							v.name, s, w, got[s][w], want[w])
					}
				}
			}
		})
	}
}

// MultiplyBatch over many random pairs equals both Multiply and the
// integer reference product.
func TestMultiplyBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	mc, err := BuildMatMul(4, Options{Alg: bilinear.Strassen()})
	if err != nil {
		t.Fatal(err)
	}
	const batch = 70
	as := make([]*matrix.Matrix, batch)
	bs := make([]*matrix.Matrix, batch)
	for i := range as {
		as[i] = matrix.RandomBinary(rng, 4, 4, 0.5)
		bs[i] = matrix.RandomBinary(rng, 4, 4, 0.5)
	}
	got, err := mc.MultiplyBatch(as, bs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		want := as[i].Mul(bs[i])
		if !got[i].Equal(want) {
			t.Fatalf("pair %d: batch product wrong", i)
		}
		single, err := mc.Multiply(as[i], bs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !got[i].Equal(single) {
			t.Fatalf("pair %d: batch disagrees with Multiply", i)
		}
	}
	if _, err := mc.MultiplyBatch(as, bs[:1]); err == nil {
		t.Fatal("mismatched batch lengths accepted")
	}
}

// DecideBatch and EnergyBatch over many random graphs match the scalar
// Decide / Energy per sample.
func TestTraceDecideAndEnergyBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	tc, err := BuildTrace(8, 12, Options{Alg: bilinear.Strassen()})
	if err != nil {
		t.Fatal(err)
	}
	const batch = 66
	adjs := make([]*matrix.Matrix, batch)
	for i := range adjs {
		adjs[i] = graph.ErdosRenyi(rng, 8, 0.2+0.6*float64(i)/batch).Adjacency()
	}
	decisions, err := tc.DecideBatch(adjs)
	if err != nil {
		t.Fatal(err)
	}
	energies, err := tc.EnergyBatch(adjs)
	if err != nil {
		t.Fatal(err)
	}
	for i, adj := range adjs {
		want, err := tc.Decide(adj)
		if err != nil {
			t.Fatal(err)
		}
		if decisions[i] != want {
			t.Fatalf("graph %d: DecideBatch=%v Decide=%v", i, decisions[i], want)
		}
		if ref := adj.TraceCube() >= tc.Tau; want != ref {
			t.Fatalf("graph %d: circuit decision %v vs reference %v", i, want, ref)
		}
		in, err := tc.Assign(adj)
		if err != nil {
			t.Fatal(err)
		}
		if wantE := tc.Circuit.Energy(tc.Circuit.Eval(in)); energies[i] != wantE {
			t.Fatalf("graph %d: EnergyBatch=%d Energy=%d", i, energies[i], wantE)
		}
	}
	if out, err := tc.DecideBatch(nil); err != nil || out != nil {
		t.Fatalf("empty batch: %v %v", out, err)
	}
}

// TrianglesBatch equals the per-graph exact count.
func TestTrianglesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	cc, err := BuildCount(8, Options{Alg: bilinear.Strassen()})
	if err != nil {
		t.Fatal(err)
	}
	const batch = 65
	adjs := make([]*matrix.Matrix, batch)
	want := make([]int64, batch)
	for i := range adjs {
		g := graph.ErdosRenyi(rng, 8, 0.5)
		adjs[i] = g.Adjacency()
		want[i] = g.Triangles()
	}
	got, err := cc.TrianglesBatch(adjs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("graph %d: counted %d triangles, want %d", i, got[i], want[i])
		}
	}
}

// TrianglesEnergyBatch must agree with TrianglesBatch on counts and
// with the scalar Energy path on per-sample firing-gate totals — the
// exact-equality contract the serving layer's energy accounting
// depends on. Ragged batch sizes straddle the word boundary.
func TestTrianglesEnergyBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	cc, err := BuildCount(8, Options{Alg: bilinear.Strassen()})
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{1, 63, 64, 65} {
		adjs := make([]*matrix.Matrix, batch)
		want := make([]int64, batch)
		for i := range adjs {
			g := graph.ErdosRenyi(rng, 8, 0.4)
			adjs[i] = g.Adjacency()
			want[i] = g.Triangles()
		}
		counts, energy, err := cc.TrianglesEnergyBatch(adjs)
		if err != nil {
			t.Fatal(err)
		}
		if len(counts) != batch || len(energy) != batch {
			t.Fatalf("batch %d: got %d counts, %d energies", batch, len(counts), len(energy))
		}
		for i := range counts {
			if counts[i] != want[i] {
				t.Fatalf("batch %d graph %d: counted %d triangles, want %d", batch, i, counts[i], want[i])
			}
			in, err := cc.Assign(adjs[i])
			if err != nil {
				t.Fatal(err)
			}
			if scalar := cc.Circuit.Energy(cc.Circuit.Eval(in)); energy[i] != scalar {
				t.Fatalf("batch %d graph %d: batched energy %d, scalar energy %d", batch, i, energy[i], scalar)
			}
		}
	}
	if c, e, err := cc.TrianglesEnergyBatch(nil); err != nil || c != nil || e != nil {
		t.Fatalf("empty batch: %v %v %v", c, e, err)
	}
}

// permuteMatrix returns P·A·Pᵀ: entry (i, j) moves to (perm[i], perm[j]).
func permuteMatrix(a *matrix.Matrix, perm []int) *matrix.Matrix {
	out := matrix.New(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			out.Set(perm[i], perm[j], a.At(i, j))
		}
	}
	return out
}

// Metamorphic: relabeling a graph's vertices cannot change its triangle
// count, so a batch holding one graph and many relabeled copies must
// come back constant — and identical to the per-sample scalar count.
func TestTrianglesBatchPermutationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	cc, err := BuildCount(8, Options{Alg: bilinear.Strassen()})
	if err != nil {
		t.Fatal(err)
	}
	base := graph.ErdosRenyi(rng, 8, 0.5).Adjacency()
	const batch = 65
	adjs := make([]*matrix.Matrix, batch)
	adjs[0] = base
	for i := 1; i < batch; i++ {
		adjs[i] = permuteMatrix(base, rng.Perm(8))
	}
	got, err := cc.TrianglesBatch(adjs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != got[0] {
			t.Fatalf("relabeled copy %d counts %d triangles, original %d", i, got[i], got[0])
		}
		single, err := cc.Triangles(adjs[i])
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != single {
			t.Fatalf("graph %d: TrianglesBatch=%d, scalar Triangles=%d", i, got[i], single)
		}
	}
}

// Metamorphic: MultiplyBatch must satisfy A·I = A and (A·B)ᵀ = Bᵀ·Aᵀ
// within one batch, and agree with scalar Multiply on every sample.
func TestMultiplyBatchMetamorphic(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	mc, err := BuildMatMul(4, Options{Alg: bilinear.Strassen(), EntryBits: 2, Signed: true})
	if err != nil {
		t.Fatal(err)
	}
	const pairs = 33 // 2 rows per pair crosses the 64-sample boundary
	id := matrix.Identity(4)
	as := make([]*matrix.Matrix, 0, 2*pairs)
	bs := make([]*matrix.Matrix, 0, 2*pairs)
	for i := 0; i < pairs; i++ {
		a := matrix.Random(rng, 4, 4, -3, 3)
		b := matrix.Random(rng, 4, 4, -3, 3)
		// Row 2i: A·B. Row 2i+1: Bᵀ·Aᵀ, whose transpose must equal row 2i.
		as = append(as, a, b.Transpose())
		bs = append(bs, b, a.Transpose())
	}
	as[0], bs[0] = matrix.Random(rng, 4, 4, -3, 3), id
	as[1], bs[1] = id, as[0].Transpose()
	got, err := mc.MultiplyBatch(as, bs)
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].Equal(as[0]) {
		t.Fatal("A·I != A")
	}
	for i := 0; i < len(got); i += 2 {
		if !got[i].Transpose().Equal(got[i+1]) {
			t.Fatalf("pair %d: (A·B)ᵀ != Bᵀ·Aᵀ", i/2)
		}
		for _, s := range []int{i, i + 1} {
			single, err := mc.Multiply(as[s], bs[s])
			if err != nil {
				t.Fatal(err)
			}
			if !got[s].Equal(single) {
				t.Fatalf("sample %d: batch disagrees with scalar Multiply", s)
			}
		}
	}
}

// The cached evaluator persists across batch calls (pool reuse).
func TestBatchEvaluatorCached(t *testing.T) {
	tc, err := BuildTrace(4, 2, Options{Alg: bilinear.Strassen()})
	if err != nil {
		t.Fatal(err)
	}
	e1 := tc.BatchEvaluator()
	e2 := tc.BatchEvaluator()
	if e1 != e2 {
		t.Fatal("BatchEvaluator rebuilt the engine")
	}
	if e1.Circuit() != tc.Circuit {
		t.Fatal("evaluator bound to the wrong circuit")
	}
	var _ *circuit.Evaluator = e1
}
