// Package core implements the paper's primary contribution: constant-
// depth, subcubic-size threshold circuits for matrix multiplication and
// for deciding trace(A³) >= τ (Section 4).
//
// The constructions follow the paper exactly:
//
//   - BuildMatMul (Theorems 4.8/4.9): top-down sweeps of T_A and T_B
//     compute the leaf scalars on the scheduled levels only (depth 2 per
//     transition, Lemma 4.2), a depth-1 Lemma 3.3 layer multiplies
//     corresponding leaves, and a bottom-up sweep of T_AB (Lemma 4.6)
//     assembles the product. Realized depth is 4t+1 for a schedule with
//     t transitions; with the Theorem 4.9 schedule t <= d.
//
//   - BuildTrace (Theorems 4.4/4.5): sweeps of T_A, T_B and the dual
//     tree T_G (the third linear form of equation 4) run in parallel,
//     a depth-1 triple-product layer computes p_q·q_q, and one output
//     gate compares Σ_q leafA_q·leafB_q·leafG_q = trace(A³)/2 with
//     ceil(τ/2). Realized depth is 2t+2.
//
//   - BuildNaiveTriangle: the Θ(N³) depth-2 baseline of Section 1, with
//     exactly C(N,3) + 1 gates.
//
// Every builder records a per-phase gate audit so experiments can
// attribute cost to tree transitions exactly as Lemmas 4.2/4.3/4.6/4.7
// do.
package core

import (
	"fmt"

	"repro/internal/arith"
	"repro/internal/bilinear"
	"repro/internal/bitio"
	"repro/internal/circuit"
	"repro/internal/matrix"
	"repro/internal/tctree"
)

// Options configures circuit construction.
type Options struct {
	// Alg is the bilinear fast matrix multiplication algorithm; it must
	// satisfy the bilinear identity (use bilinear.Verify).
	Alg *bilinear.Algorithm
	// Schedule lists the tree levels to materialize; nil selects the
	// Theorem 4.5/4.9 constant-depth schedule for Depth d.
	Schedule tctree.Schedule
	// Depth is the d parameter used when Schedule is nil (default 2).
	Depth int
	// EntryBits is the number of bits b per input entry magnitude
	// (default 1: binary matrices).
	EntryBits int
	// Signed enables negative inputs: each entry gets a second input
	// plane for x⁻ (the paper's signed convention). Unsigned inputs
	// spend no gates on the empty negative halves.
	Signed bool
	// GroupSize, when >= 2, bounds the fan-in of every Lemma 3.2
	// summation by multi-stage grouping (arith.GroupedSumBits). Depth
	// guarantees then grow by the extra stages; used for the Section 5
	// fan-in-limited deployments. 0 or 1 means single-stage (faithful to
	// the paper).
	GroupSize int
	// SharedMSB enables the paper's end-of-Lemma-3.2 optimization:
	// sharing one Lemma 3.1 first layer across all most-significant
	// output bits. Identical circuit function, fewer gates. Ignored when
	// GroupSize is active.
	SharedMSB bool
	// BuildWorkers sets the construction parallelism of BuildMatMul,
	// BuildTrace and BuildCount: the independent tree down-sweeps build
	// concurrently, and each transition's node blocks plus the r^ℓ leaf
	// products are sharded across per-worker builder forks that are
	// adopted back in deterministic index order (see circuit.Fork/Adopt).
	// The resulting circuit is bit-identical to the sequential build
	// (same Stats, same serialized bytes). 0 or 1 means sequential; a
	// negative value means GOMAXPROCS.
	BuildWorkers int
}

func (o *Options) fill() error {
	if o.Alg == nil {
		return fmt.Errorf("core: Options.Alg is required")
	}
	if err := o.Alg.Validate(); err != nil {
		return err
	}
	if o.EntryBits == 0 {
		o.EntryBits = 1
	}
	if o.EntryBits < 0 || o.EntryBits > 20 {
		return fmt.Errorf("core: EntryBits %d out of range [1,20]", o.EntryBits)
	}
	if o.Depth == 0 {
		o.Depth = 2
	}
	if o.Depth < 1 {
		return fmt.Errorf("core: Depth %d < 1", o.Depth)
	}
	return nil
}

// schedule resolves the schedule for tree height L.
func (o *Options) schedule(L int) (tctree.Schedule, error) {
	s := o.Schedule
	if s == nil {
		s = tctree.ConstantDepth(o.Alg.Params().Gamma, L, o.Depth)
	}
	if err := s.Validate(L); err != nil {
		return nil, err
	}
	return s, nil
}

// Audit attributes gate counts to construction phases.
type Audit struct {
	// DownA[i], DownB[i], DownG[i] are the gates spent computing the
	// (i+1)-th scheduled level of the respective tree (Lemma 4.2).
	DownA, DownB, DownG []int64
	// Product is the Lemma 3.3 layer.
	Product int64
	// Up[i] is the gates spent computing T_AB level h_i from level
	// h_{i+1} (Lemma 4.6), indexed from the leaves down to the root.
	Up []int64
	// Output is the final comparison gate (trace only).
	Output int64
}

// Total returns the total audited gates.
func (a Audit) Total() int64 {
	t := a.Product + a.Output
	for _, v := range a.DownA {
		t += v
	}
	for _, v := range a.DownB {
		t += v
	}
	for _, v := range a.DownG {
		t += v
	}
	for _, v := range a.Up {
		t += v
	}
	return t
}

// sumBits applies the configured summation strategy.
func (o *Options) sumBits(b *circuit.Builder, s arith.Signed) arith.Signed {
	if o.GroupSize >= 2 {
		return arith.Signed{
			Pos: arith.GroupedSumBits(b, s.Pos, o.GroupSize),
			Neg: arith.GroupedSumBits(b, s.Neg, o.GroupSize),
		}
	}
	if o.SharedMSB {
		return arith.SignedSumBitsShared(b, s)
	}
	return arith.SignedSumBits(b, s)
}

// levelData carries the materialized matrices of one scheduled level:
// nodes[pathIdx] holds the dim x dim entries row-major.
type levelData struct {
	h     int
	dim   int
	nodes [][]arith.Signed
}

// gridNZ is a precomputed nonzero of a coefficient grid.
type gridNZ struct {
	bi, bj int
	coef   int64
}

// downSweep materializes the scheduled levels of a tree top-down,
// returning the leaf scalars (level L) and appending per-transition gate
// counts to *audit. Each transition's (parent, relative path) node jobs
// are independent — they read only the previous level — so with
// workers > 1 they are sharded across builder forks (see parallel.go);
// the job decomposition below emits gates in the same order either way.
func (o *Options) downSweep(b *circuit.Builder, tree *tctree.Tree, sched tctree.Schedule,
	root []arith.Signed, n int, audit *[]int64, workers int) []arith.Signed {

	T := tree.Alg.T
	r := tree.Alg.R
	cur := levelData{h: 0, dim: n, nodes: [][]arith.Signed{root}}
	for i := 1; i < len(sched); i++ {
		h := sched[i]
		delta := h - cur.h
		m := n / int(bitio.Pow(T, h))
		paths := int(bitio.Pow(r, delta))

		// Precompute the nonzeros of every relative-path grid. Each
		// path's grid is independent, so the precompute shards across
		// the workers too (it is pure arithmetic, no gates).
		nzs := make([][]gridNZ, paths)
		parallelFor(workers, paths, func(idx int) {
			g := tree.CoefGrid(tctree.Path(r, delta, int64(idx)))
			var list []gridNZ
			for bi := 0; bi < g.Dim; bi++ {
				for bj := 0; bj < g.Dim; bj++ {
					if w := g.At(bi, bj); w != 0 {
						list = append(list, gridNZ{bi, bj, w})
					}
				}
			}
			nzs[idx] = list
		})

		before := int64(b.Size())
		prev := cur
		nodes := shardStage(b, workers, len(prev.nodes)*paths, func(sb *circuit.Builder, job int) []arith.Signed {
			parent := prev.nodes[job/paths]
			nz := nzs[job%paths]
			entries := make([]arith.Signed, m*m)
			terms := make([]arith.ScaledSigned, 0, 16)
			for row := 0; row < m; row++ {
				for col := 0; col < m; col++ {
					terms = terms[:0]
					for _, z := range nz {
						pe := parent[(z.bi*m+row)*prev.dim+(z.bj*m+col)]
						terms = append(terms, arith.ScaledSigned{X: pe, Coeff: z.coef})
					}
					entries[row*m+col] = o.sumBits(sb, arith.SignedCombine(terms))
				}
			}
			return entries
		})
		*audit = append(*audit, int64(b.Size())-before)
		cur = levelData{h: h, dim: m, nodes: nodes}
	}
	// At level L the matrices are 1x1 scalars.
	leaves := make([]arith.Signed, len(cur.nodes))
	for i, node := range cur.nodes {
		leaves[i] = node[0]
	}
	return leaves
}

// upSweep assembles T_AB bottom-up from the leaf products, returning the
// root's n x n entries. Each transition decomposes into independent
// (node, block X, block Y) jobs matching the sequential emission order,
// so workers > 1 shards them across builder forks (see parallel.go).
func (o *Options) upSweep(b *circuit.Builder, alg *bilinear.Algorithm, sched tctree.Schedule,
	products []arith.Signed, n int, audit *[]int64, workers int) []arith.Signed {

	tg := tctree.NewTreeG(alg)
	T := alg.T
	r := alg.R

	cur := levelData{h: sched[len(sched)-1], dim: 1, nodes: make([][]arith.Signed, len(products))}
	for i, p := range products {
		cur.nodes[i] = []arith.Signed{p}
	}

	for i := len(sched) - 2; i >= 0; i-- {
		h := sched[i]
		delta := cur.h - h
		mp := n / int(bitio.Pow(T, h)) // node dimension at level h
		paths := int(bitio.Pow(r, delta))
		d := mp / cur.dim // block-grid dimension T^delta

		// Invert the grids: for each block (X, Y), which descendant
		// paths contribute with what weight (Lemma 4.6's size(u_l)).
		// Workers build private inversions over contiguous path ranges;
		// concatenating them in range order preserves the ascending
		// path order a sequential enumeration produces, so the gate
		// emission downstream is unchanged.
		perBlock := make([][]gridNZ, d*d) // reuse gridNZ: bi=path index
		chunks := workers
		if chunks > paths {
			chunks = paths
		}
		if chunks < 1 {
			chunks = 1
		}
		parts := make([][][]gridNZ, chunks)
		parallelFor(chunks, chunks, func(ci int) {
			lo, hi := ci*paths/chunks, (ci+1)*paths/chunks
			local := make([][]gridNZ, d*d)
			for idx := lo; idx < hi; idx++ {
				g := tg.CoefGrid(tctree.Path(r, delta, int64(idx)))
				for X := 0; X < d; X++ {
					for Y := 0; Y < d; Y++ {
						if w := g.At(X, Y); w != 0 {
							local[X*d+Y] = append(local[X*d+Y], gridNZ{bi: idx, coef: w})
						}
					}
				}
			}
			parts[ci] = local
		})
		for _, local := range parts {
			for e, l := range local {
				perBlock[e] = append(perBlock[e], l...)
			}
		}

		before := int64(b.Size())
		count := len(cur.nodes) / paths
		prev := cur
		blocks := shardStage(b, workers, count*d*d, func(sb *circuit.Builder, job int) []arith.Signed {
			ni := job / (d * d)
			X := (job / d) % d
			Y := job % d
			childBase := ni * paths
			contrib := perBlock[X*d+Y]
			entries := make([]arith.Signed, prev.dim*prev.dim)
			terms := make([]arith.ScaledSigned, 0, 16)
			for row := 0; row < prev.dim; row++ {
				for col := 0; col < prev.dim; col++ {
					terms = terms[:0]
					for _, c := range contrib {
						ce := prev.nodes[childBase+c.bi][row*prev.dim+col]
						terms = append(terms, arith.ScaledSigned{X: ce, Coeff: c.coef})
					}
					entries[row*prev.dim+col] = o.sumBits(sb, arith.SignedCombine(terms))
				}
			}
			return entries
		})
		next := levelData{h: h, dim: mp, nodes: make([][]arith.Signed, count)}
		for ni := 0; ni < count; ni++ {
			entries := make([]arith.Signed, mp*mp)
			for X := 0; X < d; X++ {
				for Y := 0; Y < d; Y++ {
					blk := blocks[(ni*d+X)*d+Y]
					for row := 0; row < prev.dim; row++ {
						for col := 0; col < prev.dim; col++ {
							entries[(X*prev.dim+row)*mp+(Y*prev.dim+col)] = blk[row*prev.dim+col]
						}
					}
				}
			}
			next.nodes[ni] = entries
		}
		*audit = append(*audit, int64(b.Size())-before)
		cur = next
	}
	return cur.nodes[0]
}

// inputMatrix wires up the input planes for one matrix and returns its
// entries as signed values. Layout (per matrix): for each entry in
// row-major order, EntryBits wires for x⁺, then (if Signed) EntryBits
// wires for x⁻.
func (o *Options) inputMatrix(b *circuit.Builder, base, n int) []arith.Signed {
	per := o.perEntry()
	entries := make([]arith.Signed, n*n)
	for e := 0; e < n*n; e++ {
		pos := make([]circuit.Wire, o.EntryBits)
		for k := 0; k < o.EntryBits; k++ {
			pos[k] = b.Input(base + e*per + k)
		}
		var neg []circuit.Wire
		if o.Signed {
			neg = make([]circuit.Wire, o.EntryBits)
			for k := 0; k < o.EntryBits; k++ {
				neg[k] = b.Input(base + e*per + o.EntryBits + k)
			}
		}
		entries[e] = arith.InputSigned(pos, neg)
	}
	return entries
}

// perEntry returns input wires consumed per matrix entry.
func (o *Options) perEntry() int {
	if o.Signed {
		return 2 * o.EntryBits
	}
	return o.EntryBits
}

// encodeMatrix writes matrix m into the input assignment at base,
// following inputMatrix's layout.
func (o *Options) encodeMatrix(dst []bool, base int, m *matrix.Matrix) error {
	per := o.perEntry()
	for e, v := range m.Data {
		if v < 0 && !o.Signed {
			return fmt.Errorf("core: negative entry %d requires Options.Signed", v)
		}
		if bitio.Bits(bitio.Abs(v)) > o.EntryBits {
			return fmt.Errorf("core: entry %d exceeds EntryBits=%d", v, o.EntryBits)
		}
		pos, neg := arith.EncodeSigned(v, o.EntryBits)
		copy(dst[base+e*per:], pos)
		if o.Signed {
			copy(dst[base+e*per+o.EntryBits:], neg)
		}
	}
	return nil
}

// ceilDiv returns ceil(a/b) for b > 0 and any integer a.
func ceilDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a > 0) == (b > 0) {
		q++
	}
	return q
}
