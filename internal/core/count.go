package core

import (
	"fmt"

	"repro/internal/arith"
	"repro/internal/bitio"
	"repro/internal/circuit"
	"repro/internal/matrix"
	"repro/internal/tctree"
)

// CountCircuit is the natural extension of the paper's trace decision
// circuit: instead of one threshold gate comparing Σ_q p_q·q_q =
// trace(A³)/2 against τ, a final Lemma 3.2 bank emits the sum itself in
// binary (as a signed pair), so a single circuit answers *every* τ
// query at once and yields the exact triangle count. Depth is 2t+3:
// one extra level versus Theorem 4.5's decision circuit.
type CountCircuit struct {
	Circuit  *circuit.Circuit
	N        int
	Opts     Options
	Schedule tctree.Schedule
	Audit    Audit

	halfTrace arith.Signed // binary representation of trace(A³)/2

	ev *circuit.Evaluator // lazily-built batch engine (see batch.go)
}

// BuildCount constructs the exact-trace circuit. The output is the
// signed binary value S = trace(A³)/2; for an adjacency matrix the
// triangle count is S/3.
func BuildCount(n int, opts Options) (*CountCircuit, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	if n < 1 || !isPowOrOne(opts.Alg.T, n) {
		return nil, fmt.Errorf("core: N=%d is not a power of T=%d", n, opts.Alg.T)
	}
	L := bitio.Log(opts.Alg.T, n)
	sched, err := opts.schedule(L)
	if err != nil {
		return nil, err
	}

	per := opts.perEntry()
	b := circuit.NewBuilder(n * n * per)
	rootA := opts.inputMatrix(b, 0, n)
	rootG := make([]arith.Signed, n*n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			rootG[i*n+j] = rootA[i*n+j]
		}
	}

	workers := opts.buildWorkers()
	cc := &CountCircuit{N: n, Opts: opts, Schedule: sched}
	lv := opts.downSweeps(b, sched, n, workers, []sweep{
		{tree: tctree.NewTreeA(opts.Alg), root: rootA, audit: &cc.Audit.DownA},
		{tree: tctree.NewTreeB(opts.Alg), root: rootA, audit: &cc.Audit.DownB},
		{tree: tctree.NewTreeG(opts.Alg), root: rootG, audit: &cc.Audit.DownG},
	})
	leavesA, leavesB, leavesG := lv[0], lv[1], lv[2]

	before := int64(b.Size())
	prod := shardStage(b, workers, len(leavesA), func(sb *circuit.Builder, q int) []arith.Signed {
		return []arith.Signed{arith.SignedProduct3(sb, leavesA[q], leavesB[q], leavesG[q])}
	})
	terms := make([]arith.ScaledSigned, 0, len(prod))
	for q := range prod {
		terms = append(terms, arith.ScaledSigned{X: prod[q][0], Coeff: 1})
	}
	cc.Audit.Product = int64(b.Size()) - before

	before = int64(b.Size())
	cc.halfTrace = opts.sumBits(b, arith.SignedCombine(terms))
	cc.Audit.Output = int64(b.Size()) - before
	for _, t := range cc.halfTrace.Pos.Terms {
		b.MarkOutput(t.Wire)
	}
	for _, t := range cc.halfTrace.Neg.Terms {
		b.MarkOutput(t.Wire)
	}
	cc.Circuit = b.Build()
	return cc, nil
}

// Assign encodes matrix A as a circuit input assignment.
func (cc *CountCircuit) Assign(a *matrix.Matrix) ([]bool, error) {
	if a.Rows != cc.N || a.Cols != cc.N {
		return nil, fmt.Errorf("core: input must be %dx%d", cc.N, cc.N)
	}
	in := make([]bool, cc.Circuit.NumInputs())
	if err := cc.Opts.encodeMatrix(in, 0, a); err != nil {
		return nil, err
	}
	return in, nil
}

// HalfTrace runs the circuit and returns trace(A³)/2.
func (cc *CountCircuit) HalfTrace(a *matrix.Matrix) (int64, error) {
	in, err := cc.Assign(a)
	if err != nil {
		return 0, err
	}
	vals := cc.Circuit.EvalParallel(in, 0)
	return cc.halfTrace.Value(vals), nil
}

// DecodeOutputs reads trace(A³)/2 from the marked-output values alone:
// outs[i] must be the value of Circuit.Outputs()[i] (per the marking
// order: the half-trace's positive terms then its negative terms).
func (cc *CountCircuit) DecodeOutputs(outs []bool) int64 {
	idx := 0
	var v int64
	for _, t := range cc.halfTrace.Pos.Terms {
		if outs[idx] {
			v += t.Weight
		}
		idx++
	}
	for _, t := range cc.halfTrace.Neg.Terms {
		if outs[idx] {
			v -= t.Weight
		}
		idx++
	}
	return v
}

// DecodeTriangles converts marked-output values to an exact triangle
// count, validating the adjacency-matrix invariant like Triangles.
func (cc *CountCircuit) DecodeTriangles(outs []bool) (int64, error) {
	half := cc.DecodeOutputs(outs)
	if half < 0 || half%3 != 0 {
		return 0, fmt.Errorf("core: half-trace %d is not a triangle multiple; input is not a simple adjacency matrix", half)
	}
	return half / 3, nil
}

// Triangles runs the circuit on a graph adjacency matrix and returns
// the exact triangle count trace(A³)/6.
func (cc *CountCircuit) Triangles(adj *matrix.Matrix) (int64, error) {
	half, err := cc.HalfTrace(adj)
	if err != nil {
		return 0, err
	}
	if half < 0 || half%3 != 0 {
		return 0, fmt.Errorf("core: half-trace %d is not a triangle multiple; input is not a simple adjacency matrix", half)
	}
	return half / 3, nil
}

// DepthBound returns the construction's guarantee 2t+3 (one Lemma 3.2
// bank past the decision circuit's 2t+2).
func (cc *CountCircuit) DepthBound() int {
	return 2*cc.Schedule.Transitions() + 3
}
