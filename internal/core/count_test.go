package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bilinear"
	"repro/internal/matrix"
	"repro/internal/tctree"
)

// The count circuit recovers trace(A³)/2 exactly on adjacency matrices.
func TestCountCircuitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, n := range []int{4, 8} {
		cc, err := BuildCount(n, Options{Alg: bilinear.Strassen()})
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 5; trial++ {
			adj := randomAdjacency(rng, n, 0.5)
			got, err := cc.HalfTrace(adj)
			if err != nil {
				t.Fatal(err)
			}
			if want := adj.TraceCube() / 2; got != want {
				t.Fatalf("n=%d trial=%d: half trace %d, want %d", n, trial, got, want)
			}
			tri, err := cc.Triangles(adj)
			if err != nil {
				t.Fatal(err)
			}
			if want := adj.TraceCube() / 6; tri != want {
				t.Fatalf("triangles %d, want %d", tri, want)
			}
		}
	}
}

// One count circuit answers every τ query the decision circuit answers.
func TestCountSubsumesDecision(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	const n = 8
	cc, err := BuildCount(n, Options{Alg: bilinear.Strassen()})
	if err != nil {
		t.Fatal(err)
	}
	adj := randomAdjacency(rng, n, 0.4)
	half, err := cc.HalfTrace(adj)
	if err != nil {
		t.Fatal(err)
	}
	for _, tau := range []int64{0, 2, 2 * half, 2*half + 1, 2*half + 6} {
		dec, err := BuildTrace(n, tau, Options{Alg: bilinear.Strassen()})
		if err != nil {
			t.Fatal(err)
		}
		got, err := dec.Decide(adj)
		if err != nil {
			t.Fatal(err)
		}
		if got != (2*half >= tau) {
			t.Errorf("tau=%d: decision circuit disagrees with count", tau)
		}
	}
}

// Signed matrices: the count circuit reports negative half-traces.
func TestCountSignedMatrices(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	cc, err := BuildCount(4, Options{Alg: bilinear.Strassen(), EntryBits: 2, Signed: true})
	if err != nil {
		t.Fatal(err)
	}
	sawNegative := false
	for trial := 0; trial < 20; trial++ {
		a := matrix.New(4, 4)
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				v := rng.Int63n(7) - 3
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		got, err := cc.HalfTrace(a)
		if err != nil {
			t.Fatal(err)
		}
		want := a.TraceCube() / 2
		if got != want {
			t.Fatalf("trial %d: half trace %d, want %d", trial, got, want)
		}
		if want < 0 {
			sawNegative = true
		}
	}
	if !sawNegative {
		t.Log("no negative trace sampled; widen the trial count if this recurs")
	}
}

// Depth realization: 2t+3 without grouping.
func TestCountDepth(t *testing.T) {
	for _, sched := range []tctree.Schedule{
		tctree.Direct(3),
		tctree.Uniform(3, 2),
	} {
		cc, err := BuildCount(8, Options{Alg: bilinear.Strassen(), Schedule: sched})
		if err != nil {
			t.Fatal(err)
		}
		tt := sched.Transitions()
		if got := cc.Circuit.Depth(); got != 2*tt+3 {
			t.Errorf("sched %v: depth %d, want 2t+3 = %d", sched, got, 2*tt+3)
		}
		if cc.Circuit.Depth() > cc.DepthBound() {
			t.Error("depth bound violated")
		}
	}
}

// Triangles rejects non-graph inputs where the half-trace betrays them.
func TestCountTrianglesRejectsNonGraph(t *testing.T) {
	cc, err := BuildCount(4, Options{Alg: bilinear.Strassen(), EntryBits: 2, Signed: true})
	if err != nil {
		t.Fatal(err)
	}
	// A weighted symmetric matrix whose half-trace is not divisible by 3.
	a := matrix.New(4, 4)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(0, 2, 1)
	a.Set(2, 0, 1)
	a.Set(1, 2, 1)
	a.Set(2, 1, 1)
	// trace(A³)/2 = product of weights over the triangle * 3... compute:
	half := a.TraceCube() / 2
	if half%3 == 0 {
		t.Skip("sample matrix happens to be triangle-multiple; adjust weights")
	}
	if _, err := cc.Triangles(a); err == nil {
		t.Error("non-graph matrix accepted by Triangles")
	}
}

func TestCountAuditComplete(t *testing.T) {
	cc, err := BuildCount(8, Options{Alg: bilinear.Strassen()})
	if err != nil {
		t.Fatal(err)
	}
	if cc.Audit.Total() != int64(cc.Circuit.Size()) {
		t.Errorf("audit %d != size %d", cc.Audit.Total(), cc.Circuit.Size())
	}
}

func TestCountErrors(t *testing.T) {
	if _, err := BuildCount(3, Options{Alg: bilinear.Strassen()}); err == nil {
		t.Error("N=3 accepted")
	}
	cc, err := BuildCount(4, Options{Alg: bilinear.Strassen()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cc.HalfTrace(matrix.New(2, 2)); err != nil {
	} else {
		t.Error("wrong-size input accepted")
	}
}

// Property: count equals reference on random graphs.
func TestCountProperty(t *testing.T) {
	cc, err := BuildCount(4, Options{Alg: bilinear.Winograd()})
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		adj := randomAdjacency(rng, 4, rng.Float64())
		got, err := cc.HalfTrace(adj)
		return err == nil && got == adj.TraceCube()/2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
