package core

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenStats is the serialized complexity profile pinned per circuit:
// the Stats measures plus the per-level gate distribution. Any builder
// change that alters gate counts, depth, edges or levelization shows up
// as a golden diff and must be acknowledged with -update.
type goldenStats struct {
	Stats      string `json:"stats"` // Stats.String(), the human-facing line
	Inputs     int    `json:"inputs"`
	Size       int    `json:"size"`
	Depth      int    `json:"depth"`
	Edges      int64  `json:"edges"`
	Stored     int64  `json:"stored_edges"`
	MaxFanIn   int    `json:"max_fan_in"`
	LevelSizes []int  `json:"level_sizes"`
	DepthBound int    `json:"depth_bound"`
}

// The Strassen builders' complexity measures — matmul, trace and count
// at N=4/8 — are pinned against golden files: these numbers back the
// paper-comparison tables, so a drift is either a regression or a
// deliberate change to re-baseline with
// `go test ./internal/core -run StatsGolden -update`.
func TestStatsGolden(t *testing.T) {
	var cases []Shape
	for _, n := range []int{4, 8} {
		cases = append(cases,
			Shape{Op: OpMatMul, N: n, Alg: "strassen"},
			Shape{Op: OpTrace, N: n, Tau: 6, Alg: "strassen"},
			Shape{Op: OpCount, N: n, Alg: "strassen"},
		)
	}
	for _, shape := range cases {
		t.Run(fmt.Sprintf("%s_n%d", shape.Op, shape.N), func(t *testing.T) {
			bt, err := BuildShape(shape, 0)
			if err != nil {
				t.Fatal(err)
			}
			c := bt.Circuit()
			var depthBound int
			switch {
			case bt.MatMul != nil:
				depthBound = bt.MatMul.DepthBound()
			case bt.Trace != nil:
				depthBound = bt.Trace.DepthBound()
			case bt.Count != nil:
				depthBound = bt.Count.DepthBound()
			}
			st := c.Stats()
			got, err := json.MarshalIndent(goldenStats{
				Stats:      st.String(),
				Inputs:     st.Inputs,
				Size:       st.Size,
				Depth:      st.Depth,
				Edges:      st.Edges,
				Stored:     st.StoredEdges,
				MaxFanIn:   st.MaxFanIn,
				LevelSizes: c.LevelSizes(),
				DepthBound: depthBound,
			}, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", fmt.Sprintf("%s_strassen_n%d_stats.golden", shape.Op, shape.N))
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create the baseline)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("stats drifted from %s:\ngot:\n%s\nwant:\n%s\n(re-baseline with -update if intended)", path, got, want)
			}
		})
	}
}
