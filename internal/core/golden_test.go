package core

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bilinear"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenStats is the serialized complexity profile pinned per circuit:
// the Stats measures plus the per-level gate distribution. Any builder
// change that alters gate counts, depth, edges or levelization shows up
// as a golden diff and must be acknowledged with -update.
type goldenStats struct {
	Stats      string `json:"stats"` // Stats.String(), the human-facing line
	Inputs     int    `json:"inputs"`
	Size       int    `json:"size"`
	Depth      int    `json:"depth"`
	Edges      int64  `json:"edges"`
	Stored     int64  `json:"stored_edges"`
	MaxFanIn   int    `json:"max_fan_in"`
	LevelSizes []int  `json:"level_sizes"`
	DepthBound int    `json:"depth_bound"`
}

// The Strassen matmul builders' complexity measures are pinned against
// golden files: these numbers back the paper-comparison tables, so a
// drift is either a regression or a deliberate change to re-baseline
// with `go test ./internal/core -run StatsGolden -update`.
func TestStatsGolden(t *testing.T) {
	for _, n := range []int{4, 8} {
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			mc, err := BuildMatMul(n, Options{Alg: bilinear.Strassen()})
			if err != nil {
				t.Fatal(err)
			}
			st := mc.Circuit.Stats()
			got, err := json.MarshalIndent(goldenStats{
				Stats:      st.String(),
				Inputs:     st.Inputs,
				Size:       st.Size,
				Depth:      st.Depth,
				Edges:      st.Edges,
				Stored:     st.StoredEdges,
				MaxFanIn:   st.MaxFanIn,
				LevelSizes: mc.Circuit.LevelSizes(),
				DepthBound: mc.DepthBound(),
			}, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", fmt.Sprintf("matmul_strassen_n%d_stats.golden", n))
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create the baseline)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("stats drifted from %s:\ngot:\n%s\nwant:\n%s\n(re-baseline with -update if intended)", path, got, want)
			}
		})
	}
}
