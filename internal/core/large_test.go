package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/bilinear"
	"repro/internal/circuit"
	"repro/internal/matrix"
	"repro/internal/tctree"
)

// N=32 trace circuit: the largest instance the suite materializes.
// Multi-level schedule, several million gates, still exact.
func TestTrace32(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-gate build")
	}
	rng := rand.New(rand.NewSource(91))
	alg := bilinear.Strassen()
	sched := tctree.LogLog(alg.Params().Gamma, 5) // L = 5
	adj := randomAdjacency(rng, 32, 0.2)
	want := adj.TraceCube()
	tc, err := BuildTrace(32, want, Options{Alg: alg, Schedule: sched, SharedMSB: true})
	if err != nil {
		t.Fatal(err)
	}
	if tc.Circuit.Depth() != 2*sched.Transitions()+2 {
		t.Errorf("depth %d, want %d", tc.Circuit.Depth(), 2*sched.Transitions()+2)
	}
	got, err := tc.Decide(adj)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("trace >= its own value failed at N=32")
	}
	t.Logf("N=32 trace: %d gates, depth %d, schedule %v",
		tc.Circuit.Size(), tc.Circuit.Depth(), sched)
}

// N=64 trace circuit: ~49 million gates, built and evaluated exactly.
// Run explicitly (skipped by -short and by default timeouts permitting):
// demonstrates the library's scale ceiling on a laptop-class machine.
func TestTrace64(t *testing.T) {
	if testing.Short() {
		t.Skip("49M-gate build (~40s, ~6GB)")
	}
	rng := rand.New(rand.NewSource(94))
	alg := bilinear.Strassen()
	sched := tctree.LogLog(alg.Params().Gamma, 6)
	adj := randomAdjacency(rng, 64, 0.1)
	want := adj.TraceCube()
	tc, err := BuildTrace(64, want, Options{Alg: alg, Schedule: sched, SharedMSB: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := tc.Decide(adj)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("trace >= its own value failed at N=64")
	}
	t.Logf("N=64 trace: %d gates, depth %d, schedule %v",
		tc.Circuit.Size(), tc.Circuit.Depth(), sched)
}

// The paper's bound (2): every entry of a matrix at tree level h needs
// at most b + bits(T^{2h}) bits. Our builders track exact Max bounds;
// pin that every output entry representation of the N=8 matmul circuit
// respects the bound at the root (h = 0 of T_AB, magnitude <= N·(2^b-1)²).
func TestWidthBound2(t *testing.T) {
	mc, err := BuildMatMul(8, Options{Alg: bilinear.Strassen(), EntryBits: 3, Signed: true})
	if err != nil {
		t.Fatal(err)
	}
	// |C_ij| <= N · (2^b - 1)² = 8·49 = 392; the tracked bounds on the
	// signed halves may be looser than the value bound but must stay
	// within the construction's own guarantee: products of leaf bounds
	// combined over s_C^L contributions. Sanity ceiling: 2^20.
	for _, rep := range mc.EntryReps() {
		if rep.Pos.Max > 1<<20 || rep.Neg.Max > 1<<20 {
			t.Fatalf("entry bound blew past the (2)-style ceiling: pos %d neg %d",
				rep.Pos.Max, rep.Neg.Max)
		}
		if rep.Pos.Max < 392 && rep.Neg.Max < 392 {
			t.Fatalf("entry bound %d/%d below the attainable magnitude 392 — unsound",
				rep.Pos.Max, rep.Neg.Max)
		}
	}
}

// A 300k-gate circuit survives the binary codec bit-exactly.
func TestLargeSerializeRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("large round trip")
	}
	rng := rand.New(rand.NewSource(96))
	tc, err := BuildTrace(16, 6, Options{Alg: bilinear.Strassen()})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tc.Circuit.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := circuit.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Size() != tc.Circuit.Size() || loaded.Edges() != tc.Circuit.Edges() {
		t.Fatal("round trip changed structure")
	}
	adj := randomAdjacency(rng, 16, 0.4)
	in, err := tc.Assign(adj)
	if err != nil {
		t.Fatal(err)
	}
	a := tc.Circuit.Eval(in)
	b := loaded.Eval(in)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("round trip changed behaviour")
		}
	}
}

// Cross-validation triangle: circuit product == parallel executor
// product == naive product, all three computed independently.
func TestCircuitVsExecutorCrossValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	alg := bilinear.Strassen()
	mc, err := BuildMatMul(8, Options{Alg: alg, EntryBits: 2, Signed: true})
	if err != nil {
		t.Fatal(err)
	}
	exec := bilinear.NewExecutor(alg, 1)
	for trial := 0; trial < 5; trial++ {
		a := matrix.Random(rng, 8, 8, -3, 3)
		b := matrix.Random(rng, 8, 8, -3, 3)
		naive := a.Mul(b)
		fromExec, err := exec.Mul(a, b)
		if err != nil {
			t.Fatal(err)
		}
		fromCircuit, err := mc.Multiply(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !fromExec.Equal(naive) || !fromCircuit.Equal(naive) {
			t.Fatalf("trial %d: three-way validation failed", trial)
		}
	}
}

// MatMul with N=16 and a 3-transition schedule: deeper pipelines stay
// exact (the largest matmul instance in the suite).
func TestMatMul16MultiLevel(t *testing.T) {
	if testing.Short() {
		t.Skip("large build")
	}
	rng := rand.New(rand.NewSource(93))
	sched := tctree.Schedule{0, 2, 3, 4}
	mc, err := BuildMatMul(16, Options{Alg: bilinear.Strassen(), Schedule: sched, SharedMSB: true})
	if err != nil {
		t.Fatal(err)
	}
	if mc.Circuit.Depth() != 4*3+1 {
		t.Errorf("depth %d, want 13", mc.Circuit.Depth())
	}
	a := matrix.RandomBinary(rng, 16, 16, 0.5)
	b := matrix.RandomBinary(rng, 16, 16, 0.5)
	got, err := mc.Multiply(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(a.Mul(b)) {
		t.Error("16x16 multi-level product wrong")
	}
	t.Logf("N=16 matmul: %d gates, depth %d", mc.Circuit.Size(), mc.Circuit.Depth())
}
