package core

import (
	"fmt"

	"repro/internal/arith"
	"repro/internal/bitio"
	"repro/internal/circuit"
	"repro/internal/matrix"
	"repro/internal/tctree"
)

// MatMulCircuit is a threshold circuit computing C = AB for N x N
// integer matrices (Theorems 4.8 and 4.9).
type MatMulCircuit struct {
	Circuit  *circuit.Circuit
	N        int
	Opts     Options
	Schedule tctree.Schedule
	Audit    Audit

	// entries[i*N+j] is the signed bit representation of C_ij; its wires
	// index into evaluation results.
	entries []arith.Signed

	ev *circuit.Evaluator // lazily-built batch engine (see batch.go)
}

// BuildMatMul constructs the matrix product circuit for N x N inputs
// (N must be a power of Alg.T).
//
// Input layout: matrix A's planes first, then matrix B's, each as
// described by Options (EntryBits wires for x⁺ per entry, then EntryBits
// for x⁻ when Signed).
func BuildMatMul(n int, opts Options) (*MatMulCircuit, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	if n < 1 || !isPowOrOne(opts.Alg.T, n) {
		return nil, fmt.Errorf("core: N=%d is not a power of T=%d", n, opts.Alg.T)
	}
	L := bitio.Log(opts.Alg.T, n)
	sched, err := opts.schedule(L)
	if err != nil {
		return nil, err
	}

	per := opts.perEntry()
	b := circuit.NewBuilder(2 * n * n * per)
	rootA := opts.inputMatrix(b, 0, n)
	rootB := opts.inputMatrix(b, n*n*per, n)

	workers := opts.buildWorkers()
	mc := &MatMulCircuit{N: n, Opts: opts, Schedule: sched}
	lv := opts.downSweeps(b, sched, n, workers, []sweep{
		{tree: tctree.NewTreeA(opts.Alg), root: rootA, audit: &mc.Audit.DownA},
		{tree: tctree.NewTreeB(opts.Alg), root: rootB, audit: &mc.Audit.DownB},
	})
	leavesA, leavesB := lv[0], lv[1]

	before := int64(b.Size())
	prod := shardStage(b, workers, len(leavesA), func(sb *circuit.Builder, q int) []arith.Signed {
		return []arith.Signed{arith.SignedProduct2(sb, leavesA[q], leavesB[q])}
	})
	products := make([]arith.Signed, len(prod))
	for q := range prod {
		products[q] = prod[q][0]
	}
	mc.Audit.Product = int64(b.Size()) - before

	mc.entries = opts.upSweep(b, opts.Alg, sched, products, n, &mc.Audit.Up, workers)

	// Mark every output bit so the circuit interface is self-describing.
	for _, e := range mc.entries {
		for _, t := range e.Pos.Terms {
			b.MarkOutput(t.Wire)
		}
		for _, t := range e.Neg.Terms {
			b.MarkOutput(t.Wire)
		}
	}
	mc.Circuit = b.Build()
	return mc, nil
}

func isPowOrOne(base, n int) bool {
	return n == 1 || bitio.IsPow(base, n)
}

// Assign encodes an (A, B) input pair as a circuit input assignment.
func (mc *MatMulCircuit) Assign(a, b *matrix.Matrix) ([]bool, error) {
	if a.Rows != mc.N || a.Cols != mc.N || b.Rows != mc.N || b.Cols != mc.N {
		return nil, fmt.Errorf("core: inputs must be %dx%d", mc.N, mc.N)
	}
	in := make([]bool, mc.Circuit.NumInputs())
	per := mc.Opts.perEntry()
	if err := mc.Opts.encodeMatrix(in, 0, a); err != nil {
		return nil, err
	}
	if err := mc.Opts.encodeMatrix(in, mc.N*mc.N*per, b); err != nil {
		return nil, err
	}
	return in, nil
}

// Decode reads the product matrix from an evaluation result.
func (mc *MatMulCircuit) Decode(vals []bool) *matrix.Matrix {
	out := matrix.New(mc.N, mc.N)
	for e, s := range mc.entries {
		out.Data[e] = s.Value(vals)
	}
	return out
}

// DecodeOutputs reads the product matrix from the marked-output values
// alone: outs[i] must be the value of Circuit.Outputs()[i], as produced
// by e.g. Planes.GatherInto over the output wires. Equivalent to Decode
// on a full wire assignment, but the caller only materializes the
// handful of output bits instead of every wire — the difference between
// copying hundreds of bools and tens of kilobytes per served request.
func (mc *MatMulCircuit) DecodeOutputs(outs []bool) *matrix.Matrix {
	out := matrix.New(mc.N, mc.N)
	idx := 0
	for e, s := range mc.entries {
		var v int64
		for _, t := range s.Pos.Terms {
			if outs[idx] {
				v += t.Weight
			}
			idx++
		}
		for _, t := range s.Neg.Terms {
			if outs[idx] {
				v -= t.Weight
			}
			idx++
		}
		out.Data[e] = v
	}
	return out
}

// Multiply runs the circuit end to end: encode, evaluate (in parallel),
// decode.
func (mc *MatMulCircuit) Multiply(a, b *matrix.Matrix) (*matrix.Matrix, error) {
	in, err := mc.Assign(a, b)
	if err != nil {
		return nil, err
	}
	return mc.Decode(mc.Circuit.EvalParallel(in, 0)), nil
}

// DepthBound returns the Theorem 4.9 depth guarantee 4t+1 for the
// realized schedule; Circuit.Depth() never exceeds it.
func (mc *MatMulCircuit) DepthBound() int {
	return 4*mc.Schedule.Transitions() + 1
}

// EntryReps exposes the signed output representations of C's entries in
// row-major order (wires in this circuit's own numbering). Advanced
// composition API: the marked outputs enumerate exactly these terms —
// for each entry, positive terms then negative terms — so after
// circuit.Builder.Splice the representations can be rebuilt against the
// remapped output wires with RemapReps.
func (mc *MatMulCircuit) EntryReps() []arith.Signed { return mc.entries }

// RemapReps rebuilds the entry representations against the output wires
// returned by splicing this circuit into a host builder: outs must be
// the slice circuit.Builder.Splice returned, whose order matches the
// marking order documented on EntryReps (per entry: positive terms then
// negative terms).
func (mc *MatMulCircuit) RemapReps(outs []circuit.Wire) []arith.Signed {
	idx := 0
	remapped := make([]arith.Signed, len(mc.entries))
	for e, rep := range mc.entries {
		var s arith.Signed
		s.Pos.Terms = make([]arith.Term, len(rep.Pos.Terms))
		for i, t := range rep.Pos.Terms {
			s.Pos.Terms[i] = arith.Term{Wire: outs[idx], Weight: t.Weight}
			idx++
		}
		s.Pos.Max = rep.Pos.Max
		s.Neg.Terms = make([]arith.Term, len(rep.Neg.Terms))
		for i, t := range rep.Neg.Terms {
			s.Neg.Terms[i] = arith.Term{Wire: outs[idx], Weight: t.Weight}
			idx++
		}
		s.Neg.Max = rep.Neg.Max
		remapped[e] = s
	}
	if idx != len(outs) {
		panic(fmt.Sprintf("core: RemapReps consumed %d wires, got %d", idx, len(outs)))
	}
	return remapped
}
