package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bilinear"
	"repro/internal/bitio"
	"repro/internal/matrix"
	"repro/internal/tctree"
)

// The matmul circuit computes exact products: every algorithm, binary
// inputs, N = T and T².
func TestMatMulBinaryAllAlgorithms(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for name, alg := range bilinear.Registry() {
		for _, l := range []int{1, 2} {
			if alg.T == 4 && l == 2 {
				continue // 16x16 composed case covered separately
			}
			n := int(bitio.Pow(alg.T, l))
			mc, err := BuildMatMul(n, Options{Alg: alg})
			if err != nil {
				t.Fatalf("%s n=%d: %v", name, n, err)
			}
			for trial := 0; trial < 5; trial++ {
				a := matrix.RandomBinary(rng, n, n, 0.5)
				bm := matrix.RandomBinary(rng, n, n, 0.5)
				got, err := mc.Multiply(a, bm)
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(a.Mul(bm)) {
					t.Fatalf("%s n=%d trial=%d: wrong product\nA\n%v B\n%v got\n%v want\n%v",
						name, n, trial, a, bm, got, a.Mul(bm))
				}
			}
		}
	}
}

// Signed multi-bit entries.
func TestMatMulSignedEntries(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	mc, err := BuildMatMul(4, Options{Alg: bilinear.Strassen(), EntryBits: 3, Signed: true})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		a := matrix.Random(rng, 4, 4, -7, 7)
		b := matrix.Random(rng, 4, 4, -7, 7)
		got, err := mc.Multiply(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(a.Mul(b)) {
			t.Fatalf("trial %d: wrong signed product", trial)
		}
	}
}

// Depth realization: 4t+1 exactly, and within the Theorem 4.9 bound
// 4d+1 when using the default schedule.
func TestMatMulDepth(t *testing.T) {
	for _, l := range []int{1, 2, 3} {
		n := 1 << l
		for _, sched := range []tctree.Schedule{
			tctree.Direct(l),
			tctree.Uniform(l, 2),
			tctree.LogLog(bilinear.Strassen().Params().Gamma, l),
		} {
			mc, err := BuildMatMul(n, Options{Alg: bilinear.Strassen(), Schedule: sched})
			if err != nil {
				t.Fatal(err)
			}
			tt := sched.Transitions()
			if got := mc.Circuit.Depth(); got != 4*tt+1 {
				t.Errorf("n=%d sched=%v: depth %d, want 4t+1 = %d", n, sched, got, 4*tt+1)
			}
			if mc.Circuit.Depth() > mc.DepthBound() {
				t.Errorf("depth exceeds bound")
			}
		}
	}
}

// Correctness is schedule-independent: all schedules give the same
// product.
func TestMatMulScheduleIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 8
	const l = 3
	a := matrix.Random(rng, n, n, 0, 3)
	b := matrix.Random(rng, n, n, 0, 3)
	want := a.Mul(b)
	for _, sched := range []tctree.Schedule{
		{0, 3},
		{0, 1, 3},
		{0, 2, 3},
		{0, 1, 2, 3},
	} {
		mc, err := BuildMatMul(n, Options{Alg: bilinear.Strassen(), Schedule: sched, EntryBits: 2})
		if err != nil {
			t.Fatalf("%v: %v", sched, err)
		}
		got, err := mc.Multiply(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Errorf("schedule %v: wrong product", sched)
		}
		_ = l
	}
}

// 16x16 via the composed T=4 algorithm and via Strassen agree.
func TestMatMul16Composed(t *testing.T) {
	if testing.Short() {
		t.Skip("large circuit")
	}
	rng := rand.New(rand.NewSource(4))
	a := matrix.RandomBinary(rng, 16, 16, 0.4)
	b := matrix.RandomBinary(rng, 16, 16, 0.4)
	want := a.Mul(b)

	alg4, err := bilinear.Lookup("strassen2")
	if err != nil {
		t.Fatal(err)
	}
	mc, err := BuildMatMul(16, Options{Alg: alg4})
	if err != nil {
		t.Fatal(err)
	}
	got, err := mc.Multiply(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Error("composed-algorithm product wrong")
	}
}

// Property-based: random small instances across random schedules.
func TestMatMulProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := 1 + rng.Intn(2)
		n := 1 << l
		scheds := []tctree.Schedule{tctree.Direct(l), tctree.Uniform(l, l)}
		sched := scheds[rng.Intn(len(scheds))]
		bits := 1 + rng.Intn(2)
		signed := rng.Intn(2) == 1
		mc, err := BuildMatMul(n, Options{
			Alg: bilinear.Strassen(), Schedule: sched, EntryBits: bits, Signed: signed,
		})
		if err != nil {
			return false
		}
		lo := int64(0)
		hi := int64(1)<<uint(bits) - 1
		if signed {
			lo = -hi
		}
		a := matrix.Random(rng, n, n, lo, hi)
		b := matrix.Random(rng, n, n, lo, hi)
		got, err := mc.Multiply(a, b)
		return err == nil && got.Equal(a.Mul(b))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// The audit accounts for every gate.
func TestMatMulAuditComplete(t *testing.T) {
	mc, err := BuildMatMul(4, Options{Alg: bilinear.Strassen()})
	if err != nil {
		t.Fatal(err)
	}
	if got := mc.Audit.Total(); got != int64(mc.Circuit.Size()) {
		t.Errorf("audit total %d != circuit size %d", got, mc.Circuit.Size())
	}
	if len(mc.Audit.DownA) != mc.Schedule.Transitions() {
		t.Errorf("audit has %d down-A transitions, want %d", len(mc.Audit.DownA), mc.Schedule.Transitions())
	}
	if len(mc.Audit.Up) != mc.Schedule.Transitions() {
		t.Errorf("audit has %d up transitions, want %d", len(mc.Audit.Up), mc.Schedule.Transitions())
	}
}

// Errors: wrong sizes, invalid options.
func TestMatMulErrors(t *testing.T) {
	if _, err := BuildMatMul(3, Options{Alg: bilinear.Strassen()}); err == nil {
		t.Error("N=3 accepted for T=2")
	}
	if _, err := BuildMatMul(4, Options{}); err == nil {
		t.Error("missing algorithm accepted")
	}
	if _, err := BuildMatMul(4, Options{Alg: bilinear.Strassen(), EntryBits: 99}); err == nil {
		t.Error("absurd EntryBits accepted")
	}
	if _, err := BuildMatMul(4, Options{Alg: bilinear.Strassen(), Schedule: tctree.Schedule{0, 1}}); err == nil {
		t.Error("schedule not reaching L accepted")
	}
	mc, err := BuildMatMul(2, Options{Alg: bilinear.Strassen()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mc.Multiply(matrix.New(4, 4), matrix.New(4, 4)); err == nil {
		t.Error("wrong input size accepted")
	}
	if _, err := mc.Multiply(matrix.FromRows([][]int64{{2, 0}, {0, 0}}), matrix.New(2, 2)); err == nil {
		t.Error("entry exceeding EntryBits accepted")
	}
	if _, err := mc.Multiply(matrix.FromRows([][]int64{{-1, 0}, {0, 0}}), matrix.New(2, 2)); err == nil {
		t.Error("negative entry accepted without Signed")
	}
}

// N=1 degenerates to a single scalar product.
func TestMatMulScalar(t *testing.T) {
	mc, err := BuildMatMul(1, Options{Alg: bilinear.Strassen(), EntryBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.FromRows([][]int64{{13}})
	b := matrix.FromRows([][]int64{{11}})
	got, err := mc.Multiply(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got.At(0, 0) != 143 {
		t.Errorf("1x1 product = %d, want 143", got.At(0, 0))
	}
}

// Grouped summation (fan-in limiting) preserves correctness.
func TestMatMulGrouped(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	mc, err := BuildMatMul(4, Options{Alg: bilinear.Strassen(), GroupSize: 3, EntryBits: 2})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		a := matrix.Random(rng, 4, 4, 0, 3)
		b := matrix.Random(rng, 4, 4, 0, 3)
		got, err := mc.Multiply(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(a.Mul(b)) {
			t.Fatal("grouped product wrong")
		}
	}
}
