package core

import (
	"runtime"
	"sync"

	"repro/internal/arith"
	"repro/internal/circuit"
	"repro/internal/tctree"
)

// This file is the parallel construction engine behind
// Options.BuildWorkers. Every construction phase of the paper's circuits
// is a sequence of *independent* jobs — the r^ℓ bilinear leaf products,
// the per-node blocks of a down-sweep transition (Lemma 4.2), the
// per-block sums of an up-sweep transition (Lemma 4.6) — whose gates the
// sequential builder happens to emit in job-index order. The engine
// exploits exactly that: job 0 of a stage runs in the main builder
// (preserving the sequential emission prefix and measuring the per-job
// arena footprint), the remaining jobs are sharded into contiguous
// chunks that build concurrently in pre-sized circuit.Fork builders,
// and the chunks are adopted back in index order. circuit.Adopt is a
// bulk arena append with index rebasing — no intermediate Build, no
// per-edge level rescan — so the result is bit-identical to the
// sequential build (same wire ids, same groups, same Stats, same
// serialized bytes), which the equivalence tests and golden files pin.

// buildWorkers resolves Options.BuildWorkers: <= 0 and 1 mean the
// sequential builder, except that a negative value selects GOMAXPROCS.
func (o *Options) buildWorkers() int {
	w := o.BuildWorkers
	if w < 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// offsetRep rewires a representation produced inside a chunk fork into
// main-builder numbering: wires below the fork frontier are shared and
// keep their id, fork gate wires shift to where Adopt placed them.
func offsetRep(r *arith.Rep, snapshot int, gateBase circuit.Wire) {
	for i := range r.Terms {
		if int(r.Terms[i].Wire) >= snapshot {
			r.Terms[i].Wire = gateBase + (r.Terms[i].Wire - circuit.Wire(snapshot))
		}
	}
}

func offsetSigned(s *arith.Signed, snapshot int, gateBase circuit.Wire) {
	offsetRep(&s.Pos, snapshot, gateBase)
	offsetRep(&s.Neg, snapshot, gateBase)
}

// footprint is the builder arena cost of a span of jobs: the triple the
// engine measures on job 0 to pre-size the shards of the remaining jobs.
type footprint struct {
	gates  int
	edges  int64
	groups int
}

func measure(b *circuit.Builder) footprint {
	return footprint{gates: b.Size(), edges: b.StoredEdges(), groups: b.NumGroups()}
}

func (f footprint) minus(g footprint) footprint {
	return footprint{gates: f.gates - g.gates, edges: f.edges - g.edges, groups: f.groups - g.groups}
}

// scale returns the footprint of n jobs sized like this one-job
// footprint, with headroom for job-to-job variance (grid nonzero counts
// differ between relative paths). Undershoot is harmless — the arenas
// append-grow past the reservation.
func (f footprint) scale(n int, headroomPct int) footprint {
	h := int64(100 + headroomPct)
	return footprint{
		gates:  int(int64(f.gates) * int64(n) * h / 100),
		edges:  f.edges * int64(n) * h / 100,
		groups: int(int64(f.groups) * int64(n) * h / 100),
	}
}

// reserveMore grows b's arenas by the given footprint beyond their
// current lengths. Reservation never changes arena contents, so the
// serialized bytes are unaffected (Build right-sizes any overshoot).
func reserveMore(b *circuit.Builder, f footprint) {
	cur := measure(b)
	b.Reserve(cur.gates+f.gates, cur.edges+f.edges, cur.groups+f.groups)
}

// shardStage runs jobs [0, n) against the builder, bit-identically to
// executing run(b, 0), run(b, 1), … in order, and returns each job's
// produced signed values (in the main builder's wire numbering).
//
// Job 0 always runs in the main builder; its measured arena delta sizes
// the reservations for the rest of the stage. With workers > 1 the
// remaining jobs split into at most `workers` contiguous chunks, each
// chunk builds concurrently in a pre-sized Fork of the main builder
// (the fork resolves shared wire levels through the frozen parent), and
// the finished forks are adopted back in chunk order — a bulk arena
// move, not a copy through an intermediate Circuit. run must only read
// shared state (the previous level's nodes, coefficient grids, Options)
// and only touch the builder it is handed.
func shardStage(b *circuit.Builder, workers, n int, run func(sb *circuit.Builder, job int) []arith.Signed) [][]arith.Signed {
	out := make([][]arith.Signed, n)
	if n == 0 {
		return out
	}
	before := measure(b)
	out[0] = run(b, 0)
	perJob := measure(b).minus(before)
	if n == 1 {
		return out
	}
	if workers <= 1 {
		reserveMore(b, perJob.scale(n-1, 25))
		for i := 1; i < n; i++ {
			out[i] = run(b, i)
		}
		return out
	}
	rest := n - 1 // jobs [1, n) build in forks
	chunks := workers
	if chunks > rest {
		chunks = rest
	}
	snapshot := b.NumWires()
	forks := make([]*circuit.Builder, chunks)
	panics := make([]any, chunks)
	var wg sync.WaitGroup
	for ci := 0; ci < chunks; ci++ {
		lo, hi := 1+ci*rest/chunks, 1+(ci+1)*rest/chunks
		f := b.Fork()
		forks[ci] = f
		wg.Add(1)
		go func(f *circuit.Builder, ci, lo, hi int) {
			defer wg.Done()
			defer func() { panics[ci] = recover() }()
			fp := perJob.scale(hi-lo, 25)
			f.Reserve(fp.gates, fp.edges, fp.groups)
			for i := lo; i < hi; i++ {
				out[i] = run(f, i)
			}
		}(f, ci, lo, hi)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
	// One exact reservation for the whole merge, then adopt in chunk
	// order: each adoption is a single streaming append per arena.
	var total footprint
	for _, f := range forks {
		fp := measure(f)
		total.gates += fp.gates
		total.edges += fp.edges
		total.groups += fp.groups
	}
	reserveMore(b, total)
	for ci, f := range forks {
		lo, hi := 1+ci*rest/chunks, 1+(ci+1)*rest/chunks
		gateBase := circuit.Wire(b.NumWires())
		b.Adopt(f)
		forks[ci] = nil
		for i := lo; i < hi; i++ {
			for j := range out[i] {
				offsetSigned(&out[i][j], snapshot, gateBase)
			}
		}
	}
	return out
}

// parallelFor runs f(0), …, f(n-1) across workers goroutines in
// contiguous index chunks, propagating the first panic. The iterations
// must be independent (each writes only its own slot of shared output).
// It is the engine's helper for pure precompute that used to run
// sequentially between gate stages — coefficient-grid nonzeros — not
// for gate emission, which goes through shardStage.
func parallelFor(workers, n int, f func(i int)) {
	if workers <= 1 || n < 2 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	chunks := workers
	if chunks > n {
		chunks = n
	}
	panics := make([]any, chunks)
	var wg sync.WaitGroup
	for ci := 0; ci < chunks; ci++ {
		lo, hi := ci*n/chunks, (ci+1)*n/chunks
		wg.Add(1)
		go func(ci, lo, hi int) {
			defer wg.Done()
			defer func() { panics[ci] = recover() }()
			for i := lo; i < hi; i++ {
				f(i)
			}
		}(ci, lo, hi)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
}

// sweep is one independent tree down-sweep of a build: T_A, T_B or T_G
// with its root entries and audit destination.
type sweep struct {
	tree  *tctree.Tree
	root  []arith.Signed
	audit *[]int64
}

// downSweeps materializes the given independent tree sweeps. With
// workers > 1 each sweep builds concurrently in its own Fork of the
// main builder (internally sharding its transitions across the
// per-sweep share of the workers — forks of the sweep fork), and the
// sweeps are adopted into b in spec order, which is exactly the order
// the sequential builder emits them — the result is bit-identical
// either way. Returned leaves are in b's numbering.
func (o *Options) downSweeps(b *circuit.Builder, sched tctree.Schedule, n, workers int, sweeps []sweep) [][]arith.Signed {
	leaves := make([][]arith.Signed, len(sweeps))
	if workers <= 1 || len(sweeps) < 2 {
		for i, s := range sweeps {
			leaves[i] = o.downSweep(b, s.tree, sched, s.root, n, s.audit, workers)
		}
		return leaves
	}
	per := workers / len(sweeps)
	if per < 1 {
		per = 1
	}
	snapshot := b.NumWires()
	forks := make([]*circuit.Builder, len(sweeps))
	panics := make([]any, len(sweeps))
	var wg sync.WaitGroup
	for i := range sweeps {
		f := b.Fork()
		forks[i] = f
		wg.Add(1)
		go func(f *circuit.Builder, i int) {
			defer wg.Done()
			defer func() { panics[i] = recover() }()
			s := sweeps[i]
			leaves[i] = o.downSweep(f, s.tree, sched, s.root, n, s.audit, per)
		}(f, i)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
	var total footprint
	for _, f := range forks {
		fp := measure(f)
		total.gates += fp.gates
		total.edges += fp.edges
		total.groups += fp.groups
	}
	reserveMore(b, total)
	for i, f := range forks {
		gateBase := circuit.Wire(b.NumWires())
		b.Adopt(f)
		forks[i] = nil
		for j := range leaves[i] {
			offsetSigned(&leaves[i][j], snapshot, gateBase)
		}
	}
	return leaves
}
