package core

import (
	"runtime"
	"sync"

	"repro/internal/arith"
	"repro/internal/circuit"
	"repro/internal/tctree"
)

// This file is the parallel construction engine behind
// Options.BuildWorkers. Every construction phase of the paper's circuits
// is a sequence of *independent* jobs — the r^ℓ bilinear leaf products,
// the per-node blocks of a down-sweep transition (Lemma 4.2), the
// per-block sums of an up-sweep transition (Lemma 4.6) — whose gates the
// sequential builder happens to emit in job-index order. The engine
// exploits exactly that: jobs are sharded into contiguous chunks, each
// chunk builds its gates into a private sub-builder against a snapshot
// of the main builder's wires, and the chunks are spliced back in index
// order. Because circuit.Splice is a deterministic arena append, the
// result is bit-identical to the sequential build — same wire ids, same
// groups, same Stats, same serialized bytes — which the equivalence
// tests and golden files pin.

// buildWorkers resolves Options.BuildWorkers: <= 0 and 1 mean the
// sequential builder, except that a negative value selects GOMAXPROCS.
func (o *Options) buildWorkers() int {
	w := o.BuildWorkers
	if w < 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// offsetRep rewires a representation produced inside a chunk sub-builder
// into main-builder numbering: wires below the snapshot size are shared
// and keep their id, gate output wires shift by the splice offset.
func offsetRep(r *arith.Rep, snapshot int, gateBase circuit.Wire) {
	for i := range r.Terms {
		if int(r.Terms[i].Wire) >= snapshot {
			r.Terms[i].Wire = gateBase + (r.Terms[i].Wire - circuit.Wire(snapshot))
		}
	}
}

func offsetSigned(s *arith.Signed, snapshot int, gateBase circuit.Wire) {
	offsetRep(&s.Pos, snapshot, gateBase)
	offsetRep(&s.Neg, snapshot, gateBase)
}

// shardStage runs jobs [0, n) against the builder, bit-identically to
// executing run(b, 0), run(b, 1), … in order, and returns each job's
// produced signed values (in the main builder's wire numbering).
//
// With workers > 1 the jobs are split into at most `workers` contiguous
// chunks; each chunk runs concurrently in a sub-builder whose inputs
// are a snapshot of every wire the main builder has so far, and the
// finished chunks are spliced back in chunk order. run must only read
// shared state (the previous level's nodes, coefficient grids, Options)
// and only touch the builder it is handed.
func shardStage(b *circuit.Builder, workers, n int, run func(sb *circuit.Builder, job int) []arith.Signed) [][]arith.Signed {
	out := make([][]arith.Signed, n)
	if workers <= 1 || n < 2 {
		for i := 0; i < n; i++ {
			out[i] = run(b, i)
		}
		return out
	}
	chunks := workers
	if chunks > n {
		chunks = n
	}
	snapshot := b.NumWires()
	circs := make([]*circuit.Circuit, chunks)
	panics := make([]any, chunks)
	var wg sync.WaitGroup
	for ci := 0; ci < chunks; ci++ {
		lo, hi := ci*n/chunks, (ci+1)*n/chunks
		wg.Add(1)
		go func(ci, lo, hi int) {
			defer wg.Done()
			defer func() { panics[ci] = recover() }()
			sb := circuit.NewBuilder(snapshot)
			for i := lo; i < hi; i++ {
				out[i] = run(sb, i)
			}
			circs[ci] = sb.Build()
		}(ci, lo, hi)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
	for ci := 0; ci < chunks; ci++ {
		lo, hi := ci*n/chunks, (ci+1)*n/chunks
		gateBase := circuit.Wire(b.NumWires())
		b.Splice(circs[ci], nil)
		circs[ci] = nil // release the chunk arena as soon as it is copied
		for i := lo; i < hi; i++ {
			for j := range out[i] {
				offsetSigned(&out[i][j], snapshot, gateBase)
			}
		}
	}
	return out
}

// sweep is one independent tree down-sweep of a build: T_A, T_B or T_G
// with its root entries and audit destination.
type sweep struct {
	tree  *tctree.Tree
	root  []arith.Signed
	audit *[]int64
}

// downSweeps materializes the given independent tree sweeps. With
// workers > 1 each sweep builds concurrently in its own sub-builder
// (internally sharding its transitions across the per-sweep share of
// the workers) and the sweeps are spliced into b in spec order, which
// is exactly the order the sequential builder emits them — the result
// is bit-identical either way. Returned leaves are in b's numbering.
func (o *Options) downSweeps(b *circuit.Builder, sched tctree.Schedule, n, workers int, sweeps []sweep) [][]arith.Signed {
	leaves := make([][]arith.Signed, len(sweeps))
	if workers <= 1 || len(sweeps) < 2 {
		for i, s := range sweeps {
			leaves[i] = o.downSweep(b, s.tree, sched, s.root, n, s.audit, workers)
		}
		return leaves
	}
	per := workers / len(sweeps)
	if per < 1 {
		per = 1
	}
	snapshot := b.NumWires()
	circs := make([]*circuit.Circuit, len(sweeps))
	panics := make([]any, len(sweeps))
	var wg sync.WaitGroup
	for i := range sweeps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { panics[i] = recover() }()
			sb := circuit.NewBuilder(snapshot)
			s := sweeps[i]
			leaves[i] = o.downSweep(sb, s.tree, sched, s.root, n, s.audit, per)
			circs[i] = sb.Build()
		}(i)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
	for i := range sweeps {
		gateBase := circuit.Wire(b.NumWires())
		b.Splice(circs[i], nil)
		circs[i] = nil
		for j := range leaves[i] {
			offsetSigned(&leaves[i][j], snapshot, gateBase)
		}
	}
	return leaves
}
