package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/arith"
	"repro/internal/bilinear"
	"repro/internal/circuit"
	"repro/internal/matrix"
)

// serializeBytes captures the full arena state of a circuit — wires,
// weights, thresholds, groups, outputs — so two circuits compare equal
// iff they are bit-identical, not merely isomorphic.
func serializeBytes(t *testing.T, c *circuit.Circuit) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatalf("serialize: %v", err)
	}
	return buf.Bytes()
}

// checkStructural round-trips the circuit through the serializer, whose
// Read path re-validates every levelization and span invariant. (The
// full verify.Structural walk lives in parallel_verify_test.go — the
// verify package imports core, so it cannot be used from an in-package
// test.)
func checkStructural(t *testing.T, c *circuit.Circuit, label string) {
	t.Helper()
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatalf("%s: serialize: %v", label, err)
	}
	if _, err := circuit.Read(&buf); err != nil {
		t.Fatalf("%s: round-trip validation failed: %v", label, err)
	}
}

// TestParallelMatMulBitIdentical is the tentpole invariant: a build with
// BuildWorkers > 1 must produce a circuit byte-for-byte identical to the
// sequential build — same wire ids, same groups, same audit, same
// serialized arenas — so golden files, Stats and certificates are
// oblivious to how the circuit was constructed.
func TestParallelMatMulBitIdentical(t *testing.T) {
	alg := bilinear.Strassen()
	for _, n := range []int{2, 4, 8} {
		seq, err := BuildMatMul(n, Options{Alg: alg})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 4, 16} {
			par, err := BuildMatMul(n, Options{Alg: alg, BuildWorkers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if seq.Circuit.Stats() != par.Circuit.Stats() {
				t.Fatalf("n=%d workers=%d: stats diverge: seq %+v par %+v",
					n, workers, seq.Circuit.Stats(), par.Circuit.Stats())
			}
			if !reflect.DeepEqual(seq.Audit, par.Audit) {
				t.Errorf("n=%d workers=%d: audit diverges: seq %+v par %+v",
					n, workers, seq.Audit, par.Audit)
			}
			if !bytes.Equal(serializeBytes(t, seq.Circuit), serializeBytes(t, par.Circuit)) {
				t.Fatalf("n=%d workers=%d: serialized circuits differ", n, workers)
			}
			checkStructural(t, par.Circuit, "parallel matmul")
		}
	}
}

func TestParallelTraceBitIdentical(t *testing.T) {
	alg := bilinear.Strassen()
	for _, n := range []int{2, 4, 8} {
		seq, err := BuildTrace(n, 6, Options{Alg: alg})
		if err != nil {
			t.Fatal(err)
		}
		par, err := BuildTrace(n, 6, Options{Alg: alg, BuildWorkers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq.Audit, par.Audit) {
			t.Errorf("n=%d: audit diverges: seq %+v par %+v", n, seq.Audit, par.Audit)
		}
		if !bytes.Equal(serializeBytes(t, seq.Circuit), serializeBytes(t, par.Circuit)) {
			t.Fatalf("n=%d: serialized circuits differ", n)
		}
		checkStructural(t, par.Circuit, "parallel trace")
	}
}

func TestParallelCountBitIdentical(t *testing.T) {
	alg := bilinear.Strassen()
	seq, err := BuildCount(4, Options{Alg: alg})
	if err != nil {
		t.Fatal(err)
	}
	par, err := BuildCount(4, Options{Alg: alg, BuildWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serializeBytes(t, seq.Circuit), serializeBytes(t, par.Circuit)) {
		t.Fatal("serialized circuits differ")
	}
	checkStructural(t, par.Circuit, "parallel count")
}

// TestParallelMatMulEvaluates exercises the parallel-built circuit end
// to end: since the arenas are bit-identical this is implied by the
// tests above, but it pins the user-visible contract directly.
func TestParallelMatMulEvaluates(t *testing.T) {
	alg := bilinear.Strassen()
	rng := rand.New(rand.NewSource(7))
	mc, err := BuildMatMul(4, Options{Alg: alg, EntryBits: 3, Signed: true, BuildWorkers: -1})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		a := matrix.Random(rng, 4, 4, -3, 3)
		b := matrix.Random(rng, 4, 4, -3, 3)
		got, err := mc.Multiply(a, b)
		if err != nil {
			t.Fatal(err)
		}
		want := a.Mul(b)
		if !got.Equal(want) {
			t.Fatalf("trial %d: circuit product wrong:\ngot  %v\nwant %v", trial, got, want)
		}
	}
}

// TestParallelTraceDecides pins the decision semantics of a circuit
// built with the concurrent path on a graph with a known triangle count.
func TestParallelTraceDecides(t *testing.T) {
	alg := bilinear.Strassen()
	// K4 has 4 triangles: trace(A³) = 24.
	adj := matrix.New(4, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j {
				adj.Set(i, j, 1)
			}
		}
	}
	for tau, want := range map[int64]bool{24: true, 25: false, 1: true} {
		tc, err := BuildTrace(4, tau, Options{Alg: alg, BuildWorkers: 3})
		if err != nil {
			t.Fatal(err)
		}
		got, err := tc.Decide(adj)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("tau=%d: got %v want %v", tau, got, want)
		}
	}
}

// TestShardStageRaggedBitIdentical drives shardStage directly with
// ragged job counts around the chunk boundaries (1, 63, 64, 65) and
// worker counts both below and far above the job count. Every
// configuration must produce serialized bytes identical to the
// sequential run AND hand back the same rebased wires — the fork/adopt
// merge contract at its rawest.
func TestShardStageRaggedBitIdentical(t *testing.T) {
	runJobs := func(workers, jobs int) ([]byte, []circuit.Wire) {
		b := circuit.NewBuilder(4)
		// Host context so fork wires start past a nontrivial frontier.
		host := b.Gate([]circuit.Wire{0, 1}, []int64{1, 1}, 1)
		out := shardStage(b, workers, jobs, func(sb *circuit.Builder, job int) []arith.Signed {
			// Ragged: job j emits 1 + j%3 gates with job-dependent
			// weights/thresholds, reading shared frontier wires only.
			w := host
			for g := 0; g <= job%3; g++ {
				w = sb.Gate([]circuit.Wire{0, w}, []int64{1, int64(job%5) - 2}, int64(job%4))
			}
			return []arith.Signed{{Pos: arith.Rep{Terms: []arith.Term{{Wire: w, Weight: 1}}, Max: 1}}}
		})
		wires := make([]circuit.Wire, 0, jobs)
		for _, sigs := range out {
			for _, s := range sigs {
				for _, tm := range s.Pos.Terms {
					b.MarkOutput(tm.Wire)
					wires = append(wires, tm.Wire)
				}
			}
		}
		return serializeBytes(t, b.Build()), wires
	}
	for _, jobs := range []int{1, 63, 64, 65} {
		wantBytes, wantWires := runJobs(1, jobs)
		for _, workers := range []int{2, 4, 7, 64, 128} {
			gotBytes, gotWires := runJobs(workers, jobs)
			if !bytes.Equal(wantBytes, gotBytes) {
				t.Fatalf("jobs=%d workers=%d: serialized circuits differ from sequential", jobs, workers)
			}
			if !reflect.DeepEqual(wantWires, gotWires) {
				t.Fatalf("jobs=%d workers=%d: rebased output wires differ: %v vs %v",
					jobs, workers, gotWires, wantWires)
			}
		}
	}
}

// TestBuildWorkersResolution pins the Options knob semantics.
func TestBuildWorkersResolution(t *testing.T) {
	for _, c := range []struct {
		in      int
		atLeast int
	}{{0, 1}, {1, 1}, {8, 8}, {-1, 1}} {
		o := &Options{BuildWorkers: c.in}
		if got := o.buildWorkers(); got < c.atLeast {
			t.Errorf("BuildWorkers=%d resolved to %d, want >= %d", c.in, got, c.atLeast)
		}
	}
	if got := (&Options{BuildWorkers: 1}).buildWorkers(); got != 1 {
		t.Errorf("BuildWorkers=1 resolved to %d", got)
	}
}
