// External test package: verify imports core, so the structural walk of
// parallel-built circuits has to live outside package core.
package core_test

import (
	"testing"

	"repro/internal/bilinear"
	"repro/internal/core"
	"repro/internal/verify"
)

// TestParallelBuildsPassStructuralVerify runs the full structural
// verifier over circuits produced by the concurrent construction path.
func TestParallelBuildsPassStructuralVerify(t *testing.T) {
	alg := bilinear.Strassen()
	opts := core.Options{Alg: alg, BuildWorkers: 4}

	mc, err := core.BuildMatMul(4, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Structural(mc.Circuit, verify.StructuralOptions{RequireOutputs: true}).Err(); err != nil {
		t.Errorf("parallel matmul: %v", err)
	}

	tc, err := core.BuildTrace(8, 6, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Structural(tc.Circuit, verify.StructuralOptions{RequireOutputs: true}).Err(); err != nil {
		t.Errorf("parallel trace: %v", err)
	}

	cc, err := core.BuildCount(4, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Structural(cc.Circuit, verify.StructuralOptions{RequireOutputs: true}).Err(); err != nil {
		t.Errorf("parallel count: %v", err)
	}
}
