package core

import (
	"fmt"

	"repro/internal/arith"
	"repro/internal/bitio"
	"repro/internal/circuit"
	"repro/internal/tctree"
)

// The flat circuit serializes itself (circuit.WriteTo/ReadBytes), but a
// *Built* is more than its gates: the typed wrappers carry the decode
// maps — per-entry signed output representations for matmul, the
// half-trace representation for count, the decision wire for trace —
// plus the realized schedule and the per-phase gate audit. BuiltMeta is
// exactly that residue, exported so internal/store can persist a Built
// and restore it without rebuilding. RestoreBuilt cross-checks the
// metadata against the circuit's marked outputs, so a corrupted or
// mismatched metadata section is rejected rather than producing a
// wrapper that silently mis-decodes.

// BuiltMeta is the serializable typed-wrapper state of a Built beyond
// the flat circuit itself.
type BuiltMeta struct {
	// Schedule is the realized tree-level schedule.
	Schedule tctree.Schedule
	// Audit is the per-phase gate attribution recorded at build time.
	Audit Audit
	// Reps are the signed output representations: the N*N matrix entries
	// for OpMatMul (row-major), the single half-trace value for OpCount,
	// empty for OpTrace.
	Reps []arith.Signed
	// Output is OpTrace's decision wire; zero otherwise.
	Output circuit.Wire
}

// Meta extracts the wrapper state needed to restore b later.
func (b *Built) Meta() BuiltMeta {
	switch {
	case b.MatMul != nil:
		return BuiltMeta{Schedule: b.MatMul.Schedule, Audit: b.MatMul.Audit, Reps: b.MatMul.entries}
	case b.Trace != nil:
		return BuiltMeta{Schedule: b.Trace.Schedule, Audit: b.Trace.Audit, Output: b.Trace.output}
	case b.Count != nil:
		return BuiltMeta{Schedule: b.Count.Schedule, Audit: b.Count.Audit,
			Reps: []arith.Signed{b.Count.halfTrace}}
	}
	panic("core: empty Built")
}

// RestoreBuilt reassembles the typed wrapper for shape around an
// already-deserialized circuit. It validates that the metadata is
// consistent with both the shape (entry counts, input layout, schedule)
// and the circuit (every rep wire must exist, and the reps' term
// enumeration must match the circuit's marked outputs exactly — the
// order DecodeOutputs depends on). The restored Built is
// indistinguishable from a freshly constructed one.
func RestoreBuilt(s Shape, c *circuit.Circuit, m BuiltMeta) (*Built, error) {
	opts, err := s.Options(0)
	if err != nil {
		return nil, err
	}
	if err := opts.fill(); err != nil {
		return nil, err
	}
	if s.N < 1 || !isPowOrOne(opts.Alg.T, s.N) {
		return nil, fmt.Errorf("core: restore: N=%d is not a power of T=%d", s.N, opts.Alg.T)
	}
	if err := m.Schedule.Validate(bitio.Log(opts.Alg.T, s.N)); err != nil {
		return nil, fmt.Errorf("core: restore: %w", err)
	}

	per := opts.perEntry()
	matrices := 1
	if s.Op == OpMatMul {
		matrices = 2
	}
	if want := matrices * s.N * s.N * per; c.NumInputs() != want {
		return nil, fmt.Errorf("core: restore: circuit has %d inputs, shape %s needs %d",
			c.NumInputs(), s.Key(), want)
	}

	bt := &Built{Shape: s}
	switch s.Op {
	case OpMatMul:
		if len(m.Reps) != s.N*s.N {
			return nil, fmt.Errorf("core: restore: %d entry reps, want %d", len(m.Reps), s.N*s.N)
		}
		if err := checkReps(c, m.Reps); err != nil {
			return nil, fmt.Errorf("core: restore: %w", err)
		}
		bt.MatMul = &MatMulCircuit{Circuit: c, N: s.N, Opts: opts, Schedule: m.Schedule,
			Audit: m.Audit, entries: m.Reps}
	case OpTrace:
		if len(m.Reps) != 0 {
			return nil, fmt.Errorf("core: restore: trace circuit carries %d reps, want 0", len(m.Reps))
		}
		outs := c.Outputs()
		if len(outs) != 1 || outs[0] != m.Output {
			return nil, fmt.Errorf("core: restore: trace output wire %d does not match circuit outputs %v",
				m.Output, outs)
		}
		bt.Trace = &TraceCircuit{Circuit: c, N: s.N, Tau: s.Tau, Opts: opts, Schedule: m.Schedule,
			Audit: m.Audit, output: m.Output}
	case OpCount:
		if len(m.Reps) != 1 {
			return nil, fmt.Errorf("core: restore: %d count reps, want 1", len(m.Reps))
		}
		if err := checkReps(c, m.Reps); err != nil {
			return nil, fmt.Errorf("core: restore: %w", err)
		}
		bt.Count = &CountCircuit{Circuit: c, N: s.N, Opts: opts, Schedule: m.Schedule,
			Audit: m.Audit, halfTrace: m.Reps[0]}
	default:
		return nil, fmt.Errorf("core: restore: unknown op %q", s.Op)
	}
	return bt, nil
}

// checkReps verifies that the signed representations reference only
// wires the circuit has, carry positive weights, and enumerate — per
// rep, positive terms then negative terms — exactly the circuit's
// marked outputs in order. DecodeOutputs walks the reps in that order
// against Outputs(), so this equality is precisely what makes a
// restored wrapper decode correctly.
func checkReps(c *circuit.Circuit, reps []arith.Signed) error {
	outs := c.Outputs()
	idx := 0
	check := func(r arith.Rep) error {
		for _, t := range r.Terms {
			if t.Weight <= 0 {
				return fmt.Errorf("rep term on wire %d has non-positive weight %d", t.Wire, t.Weight)
			}
			if idx >= len(outs) {
				return fmt.Errorf("reps enumerate more than the circuit's %d outputs", len(outs))
			}
			if t.Wire != outs[idx] {
				return fmt.Errorf("rep term %d is wire %d, circuit output is %d", idx, t.Wire, outs[idx])
			}
			idx++
		}
		if r.Max < 0 {
			return fmt.Errorf("rep has negative magnitude bound %d", r.Max)
		}
		return nil
	}
	for _, s := range reps {
		if err := check(s.Pos); err != nil {
			return err
		}
		if err := check(s.Neg); err != nil {
			return err
		}
	}
	if idx != len(outs) {
		return fmt.Errorf("reps enumerate %d output terms, circuit marks %d", idx, len(outs))
	}
	return nil
}
