package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/arith"
	"repro/internal/circuit"
	"repro/internal/matrix"
)

// reserialize round-trips the flat circuit through the binary codec,
// simulating what the store does to the gates.
func reserialize(t *testing.T, c *circuit.Circuit) *circuit.Circuit {
	t.Helper()
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	c2, err := circuit.ReadBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	return c2
}

// Meta→RestoreBuilt round-trips every op: the restored wrapper must
// behave identically to the original on real inputs.
func TestRestoreBuiltRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))

	t.Run("matmul", func(t *testing.T) {
		shape := Shape{Op: OpMatMul, N: 4, Alg: "strassen", EntryBits: 2, Signed: true}
		bt, err := BuildShape(shape, 0)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := RestoreBuilt(shape, reserialize(t, bt.Circuit()), bt.Meta())
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 4; trial++ {
			a := matrix.Random(rng, 4, 4, -2, 2)
			b := matrix.Random(rng, 4, 4, -2, 2)
			want, err := bt.MatMul.Multiply(a, b)
			if err != nil {
				t.Fatal(err)
			}
			got, err := rt.MatMul.Multiply(a, b)
			if err != nil {
				t.Fatal(err)
			}
			if !want.Equal(got) {
				t.Fatalf("restored matmul differs:\n%v\nvs\n%v", want, got)
			}
		}
		if rt.MatMul.DepthBound() != bt.MatMul.DepthBound() {
			t.Error("depth bound not preserved")
		}
		if rt.MatMul.Audit.Total() != bt.MatMul.Audit.Total() {
			t.Error("audit not preserved")
		}
	})

	t.Run("trace", func(t *testing.T) {
		shape := Shape{Op: OpTrace, N: 4, Tau: 6, Alg: "strassen"}
		bt, err := BuildShape(shape, 0)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := RestoreBuilt(shape, reserialize(t, bt.Circuit()), bt.Meta())
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 4; trial++ {
			adj := randomAdjacency(rng, 4, 0.6)
			want, err := bt.Trace.Decide(adj)
			if err != nil {
				t.Fatal(err)
			}
			got, err := rt.Trace.Decide(adj)
			if err != nil {
				t.Fatal(err)
			}
			if want != got {
				t.Fatalf("restored trace decision differs on %v", adj)
			}
		}
	})

	t.Run("count", func(t *testing.T) {
		shape := Shape{Op: OpCount, N: 4, Alg: "strassen"}
		bt, err := BuildShape(shape, 0)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := RestoreBuilt(shape, reserialize(t, bt.Circuit()), bt.Meta())
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 4; trial++ {
			adj := randomAdjacency(rng, 4, 0.6)
			want, err := bt.Count.Triangles(adj)
			if err != nil {
				t.Fatal(err)
			}
			got, err := rt.Count.Triangles(adj)
			if err != nil {
				t.Fatal(err)
			}
			if want != got {
				t.Fatalf("restored count %d, want %d", got, want)
			}
		}
	})
}

// Corrupted or mismatched metadata must be rejected by RestoreBuilt's
// consistency checks, never silently accepted.
func TestRestoreBuiltRejectsMismatches(t *testing.T) {
	shape := Shape{Op: OpMatMul, N: 4, Alg: "strassen"}
	bt, err := BuildShape(shape, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := bt.Circuit()
	good := bt.Meta()

	cases := []struct {
		name   string
		shape  Shape
		mutate func(*BuiltMeta)
	}{
		{"wrong op", Shape{Op: OpCount, N: 4, Alg: "strassen"}, nil},
		{"wrong n", Shape{Op: OpMatMul, N: 8, Alg: "strassen"}, nil},
		// A wrong algorithm with the same T and input layout (e.g.
		// naive2) is structurally indistinguishable; binding the shape to
		// the payload is the store's job (fingerprint + checksummed
		// envelope). Layout-changing mismatches must still be caught:
		{"wrong entry bits", Shape{Op: OpMatMul, N: 4, Alg: "strassen", EntryBits: 2}, nil},
		{"wrong signedness", Shape{Op: OpMatMul, N: 4, Alg: "strassen", Signed: true}, nil},
		{"dropped rep", shape, func(m *BuiltMeta) { m.Reps = m.Reps[:len(m.Reps)-1] }},
		{"swapped wires", shape, func(m *BuiltMeta) {
			r := &m.Reps[0].Pos.Terms
			if len(*r) < 2 {
				t.Fatal("need two terms")
			}
			(*r)[0], (*r)[1] = (*r)[1], (*r)[0]
		}},
		{"negative weight", shape, func(m *BuiltMeta) { m.Reps[0].Pos.Terms[0].Weight = -1 }},
		{"out-of-range wire", shape, func(m *BuiltMeta) {
			m.Reps[0].Pos.Terms[0].Wire = circuit.Wire(c.NumInputs() + c.Size() + 10)
		}},
		{"bad schedule", shape, func(m *BuiltMeta) { m.Schedule = append(m.Schedule[:0:0], 0, 7) }},
		{"extra terms", shape, func(m *BuiltMeta) {
			m.Reps[0].Pos.Terms = append(m.Reps[0].Pos.Terms, arith.Term{Wire: 0, Weight: 1})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			meta := good
			if tc.mutate != nil {
				// Deep-copy the reps so mutations don't leak across cases.
				meta.Reps = make([]arith.Signed, len(good.Reps))
				for i, r := range good.Reps {
					meta.Reps[i] = arith.Signed{
						Pos: arith.Rep{Terms: append([]arith.Term(nil), r.Pos.Terms...), Max: r.Pos.Max},
						Neg: arith.Rep{Terms: append([]arith.Term(nil), r.Neg.Terms...), Max: r.Neg.Max},
					}
				}
				meta.Schedule = append(meta.Schedule[:0:0], good.Schedule...)
				tc.mutate(&meta)
			}
			if _, err := RestoreBuilt(tc.shape, c, meta); err == nil {
				t.Error("mismatch accepted")
			}
		})
	}
}
