package core

import (
	"fmt"

	"repro/internal/bitio"
	"repro/internal/matrix"
)

// RectMatMulCircuit multiplies rectangular matrices — a P x Q by Q x K
// product — through a square padded circuit, the standard embedding the
// paper's convolutional application needs (P patches by Q kernel
// elements by K kernels, Section 5).
type RectMatMulCircuit struct {
	Inner   *MatMulCircuit
	P, Q, K int
	Padded  int
}

// BuildRectMatMul pads the P x Q x K shape up to the next power of
// Alg.T and builds the square circuit once.
func BuildRectMatMul(p, q, k int, opts Options) (*RectMatMulCircuit, error) {
	if p < 1 || q < 1 || k < 1 {
		return nil, fmt.Errorf("core: invalid rectangular shape %dx%dx%d", p, q, k)
	}
	if err := opts.fill(); err != nil {
		return nil, err
	}
	side := p
	if q > side {
		side = q
	}
	if k > side {
		side = k
	}
	padded := int(bitio.Pow(opts.Alg.T, bitio.CeilLog(opts.Alg.T, side)))
	inner, err := BuildMatMul(padded, opts)
	if err != nil {
		return nil, err
	}
	return &RectMatMulCircuit{Inner: inner, P: p, Q: q, K: k, Padded: padded}, nil
}

// Multiply computes A (P x Q) times B (Q x K) through the circuit.
func (rc *RectMatMulCircuit) Multiply(a, b *matrix.Matrix) (*matrix.Matrix, error) {
	if a.Rows != rc.P || a.Cols != rc.Q {
		return nil, fmt.Errorf("core: A is %dx%d, want %dx%d", a.Rows, a.Cols, rc.P, rc.Q)
	}
	if b.Rows != rc.Q || b.Cols != rc.K {
		return nil, fmt.Errorf("core: B is %dx%d, want %dx%d", b.Rows, b.Cols, rc.Q, rc.K)
	}
	prod, err := rc.Inner.Multiply(padTo(a, rc.Padded), padTo(b, rc.Padded))
	if err != nil {
		return nil, err
	}
	out := matrix.New(rc.P, rc.K)
	for i := 0; i < rc.P; i++ {
		for j := 0; j < rc.K; j++ {
			out.Set(i, j, prod.At(i, j))
		}
	}
	return out, nil
}

// padTo embeds a rectangular matrix into the top-left of an n x n zero
// matrix.
func padTo(m *matrix.Matrix, n int) *matrix.Matrix {
	out := matrix.New(n, n)
	for i := 0; i < m.Rows; i++ {
		copy(out.Data[i*n:i*n+m.Cols], m.Data[i*m.Cols:(i+1)*m.Cols])
	}
	return out
}
