package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bilinear"
	"repro/internal/matrix"
)

func TestRectMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	cases := [][3]int{{3, 5, 2}, {1, 7, 1}, {6, 2, 6}, {5, 5, 5}, {16, 4, 2}}
	for _, c := range cases {
		p, q, k := c[0], c[1], c[2]
		rc, err := BuildRectMatMul(p, q, k, Options{Alg: bilinear.Strassen(), EntryBits: 2, Signed: true})
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 3; trial++ {
			a := matrix.Random(rng, p, q, -3, 3)
			b := matrix.Random(rng, q, k, -3, 3)
			got, err := rc.Multiply(a, b)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(a.Mul(b)) {
				t.Fatalf("%v: rectangular product wrong", c)
			}
		}
	}
}

func TestRectMatMulErrors(t *testing.T) {
	if _, err := BuildRectMatMul(0, 1, 1, Options{Alg: bilinear.Strassen()}); err == nil {
		t.Error("zero dimension accepted")
	}
	rc, err := BuildRectMatMul(2, 3, 4, Options{Alg: bilinear.Strassen(), EntryBits: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rc.Multiply(matrix.New(3, 3), matrix.New(3, 4)); err == nil {
		t.Error("wrong A shape accepted")
	}
	if _, err := rc.Multiply(matrix.New(2, 3), matrix.New(4, 4)); err == nil {
		t.Error("wrong B shape accepted")
	}
}

// Property: random rectangular shapes.
func TestRectMatMulProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(5)
		q := 1 + rng.Intn(5)
		k := 1 + rng.Intn(5)
		rc, err := BuildRectMatMul(p, q, k, Options{Alg: bilinear.Strassen()})
		if err != nil {
			return false
		}
		a := matrix.RandomBinary(rng, p, q, 0.5)
		b := matrix.RandomBinary(rng, q, k, 0.5)
		got, err := rc.Multiply(a, b)
		return err == nil && got.Equal(a.Mul(b))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
