package core

import (
	"fmt"

	"repro/internal/bilinear"
	"repro/internal/circuit"
)

// Op identifies a circuit family served by shape-keyed construction.
type Op string

const (
	OpMatMul Op = "matmul" // BuildMatMul: C = AB
	OpTrace  Op = "trace"  // BuildTrace: trace(A³) >= τ
	OpCount  Op = "count"  // BuildCount: exact trace(A³)/2
)

// Shape is a value-comparable description of one buildable circuit:
// the (op, N, algorithm, Options) tuple the serving layer caches on.
// Two equal Shapes build bit-identical circuits (construction is
// deterministic, and BuildWorkers — deliberately absent here — never
// changes the result, only the build speed), so a Shape is a sound
// cache key for built circuits.
type Shape struct {
	Op  Op     `json:"op"`
	N   int    `json:"n"`
	Tau int64  `json:"tau,omitempty"` // OpTrace threshold; ignored otherwise
	Alg string `json:"alg"`           // algorithm name, see AlgorithmByName

	// The Options fields that shape the circuit. Schedule is always the
	// ConstantDepth(Depth) schedule: ad-hoc level lists are not
	// expressible as a flat key.
	Depth     int  `json:"depth,omitempty"`
	EntryBits int  `json:"entry_bits,omitempty"`
	Signed    bool `json:"signed,omitempty"`
	SharedMSB bool `json:"shared_msb,omitempty"`
	GroupSize int  `json:"group_size,omitempty"`
}

// Key returns a canonical string form of the shape, stable across
// processes — usable as a map key (Shape itself is comparable, but the
// string form also names cache entries in logs and metrics).
func (s Shape) Key() string {
	return fmt.Sprintf("%s/n%d/tau%d/%s/d%d/b%d/s%v/m%v/g%d",
		s.Op, s.N, s.Tau, s.Alg, s.Depth, s.EntryBits, s.Signed, s.SharedMSB, s.GroupSize)
}

// AlgorithmByName resolves the bilinear algorithms buildable by name.
// The registry holds the base algorithms; Kronecker powers and custom
// coefficient sets require constructing Options directly.
func AlgorithmByName(name string) (*bilinear.Algorithm, error) {
	switch name {
	case "strassen":
		return bilinear.Strassen(), nil
	case "winograd":
		return bilinear.Winograd(), nil
	case "naive2":
		return bilinear.Naive(), nil
	}
	return nil, fmt.Errorf("core: unknown algorithm %q (want strassen, winograd or naive2)", name)
}

// Options resolves the shape into construction options. buildWorkers
// parallelizes construction without affecting the built circuit.
func (s Shape) Options(buildWorkers int) (Options, error) {
	alg, err := AlgorithmByName(s.Alg)
	if err != nil {
		return Options{}, err
	}
	return Options{
		Alg:          alg,
		Depth:        s.Depth,
		EntryBits:    s.EntryBits,
		Signed:       s.Signed,
		SharedMSB:    s.SharedMSB,
		GroupSize:    s.GroupSize,
		BuildWorkers: buildWorkers,
	}, nil
}

// Built is a shape-built circuit with its typed wrapper: exactly one of
// MatMul/Trace/Count is non-nil, matching Shape.Op.
type Built struct {
	Shape  Shape
	MatMul *MatMulCircuit
	Trace  *TraceCircuit
	Count  *CountCircuit
}

// BuildShape constructs the circuit a shape describes. buildWorkers
// sets Options.BuildWorkers (0/1 sequential, negative GOMAXPROCS); it
// is not part of the cache key because every worker count builds the
// same circuit.
func BuildShape(s Shape, buildWorkers int) (*Built, error) {
	opts, err := s.Options(buildWorkers)
	if err != nil {
		return nil, err
	}
	bt := &Built{Shape: s}
	switch s.Op {
	case OpMatMul:
		bt.MatMul, err = BuildMatMul(s.N, opts)
	case OpTrace:
		bt.Trace, err = BuildTrace(s.N, s.Tau, opts)
	case OpCount:
		bt.Count, err = BuildCount(s.N, opts)
	default:
		return nil, fmt.Errorf("core: unknown op %q (want matmul, trace or count)", s.Op)
	}
	if err != nil {
		return nil, err
	}
	return bt, nil
}

// Circuit returns the underlying flat threshold circuit.
func (b *Built) Circuit() *circuit.Circuit {
	switch {
	case b.MatMul != nil:
		return b.MatMul.Circuit
	case b.Trace != nil:
		return b.Trace.Circuit
	case b.Count != nil:
		return b.Count.Circuit
	}
	panic("core: empty Built")
}
