package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/bilinear"
	"repro/internal/circuit"
	"repro/internal/graph"
	"repro/internal/matrix"
)

// BuildShape must construct, for each op, exactly the circuit the
// direct builders produce: same serialized bytes, same typed wrapper
// behaviour. Worker count must not change the result.
func TestBuildShapeMatchesDirectBuilders(t *testing.T) {
	serialize := func(c *circuit.Circuit) []byte {
		var buf bytes.Buffer
		if _, err := c.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	opts := Options{Alg: mustAlg(t, "strassen"), EntryBits: 2, Signed: true}

	mm, err := BuildMatMul(4, opts)
	if err != nil {
		t.Fatal(err)
	}
	bt, err := BuildShape(Shape{Op: OpMatMul, N: 4, Alg: "strassen", EntryBits: 2, Signed: true}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if bt.MatMul == nil || bt.Trace != nil || bt.Count != nil {
		t.Fatal("BuildShape(matmul) populated wrong wrapper")
	}
	if !bytes.Equal(serialize(mm.Circuit), serialize(bt.Circuit())) {
		t.Error("shape-built matmul differs from direct build")
	}

	trOpts := Options{Alg: mustAlg(t, "strassen")}
	tr, err := BuildTrace(4, 6, trOpts)
	if err != nil {
		t.Fatal(err)
	}
	bt, err = BuildShape(Shape{Op: OpTrace, N: 4, Tau: 6, Alg: "strassen"}, -1)
	if err != nil {
		t.Fatal(err)
	}
	if bt.Trace == nil {
		t.Fatal("BuildShape(trace) missing wrapper")
	}
	if !bytes.Equal(serialize(tr.Circuit), serialize(bt.Circuit())) {
		t.Error("shape-built trace differs from direct build (workers=-1)")
	}

	ccOpts := Options{Alg: mustAlg(t, "strassen")}
	cc, err := BuildCount(4, ccOpts)
	if err != nil {
		t.Fatal(err)
	}
	bt, err = BuildShape(Shape{Op: OpCount, N: 4, Alg: "strassen"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if bt.Count == nil {
		t.Fatal("BuildShape(count) missing wrapper")
	}
	if !bytes.Equal(serialize(cc.Circuit), serialize(bt.Circuit())) {
		t.Error("shape-built count differs from direct build (workers=2)")
	}
}

func mustAlg(t *testing.T, name string) *bilinear.Algorithm {
	t.Helper()
	alg, err := AlgorithmByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return alg
}

func TestBuildShapeErrors(t *testing.T) {
	if _, err := BuildShape(Shape{Op: "transpose", N: 4, Alg: "strassen"}, 1); err == nil {
		t.Error("unknown op accepted")
	}
	if _, err := BuildShape(Shape{Op: OpMatMul, N: 4, Alg: "coppersmith"}, 1); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := BuildShape(Shape{Op: OpMatMul, N: 3, Alg: "strassen"}, 1); err == nil {
		t.Error("non-power N accepted")
	}
}

// Shape keys must distinguish every field that changes the circuit.
func TestShapeKeyDistinguishes(t *testing.T) {
	base := Shape{Op: OpMatMul, N: 4, Alg: "strassen", EntryBits: 1}
	variants := []Shape{
		{Op: OpTrace, N: 4, Alg: "strassen", EntryBits: 1},
		{Op: OpMatMul, N: 8, Alg: "strassen", EntryBits: 1},
		{Op: OpMatMul, N: 4, Alg: "winograd", EntryBits: 1},
		{Op: OpMatMul, N: 4, Alg: "strassen", EntryBits: 2},
		{Op: OpMatMul, N: 4, Alg: "strassen", EntryBits: 1, Signed: true},
		{Op: OpMatMul, N: 4, Alg: "strassen", EntryBits: 1, SharedMSB: true},
		{Op: OpMatMul, N: 4, Alg: "strassen", EntryBits: 1, GroupSize: 4},
		{Op: OpMatMul, N: 4, Alg: "strassen", EntryBits: 1, Depth: 3},
		{Op: OpTrace, N: 4, Tau: 12, Alg: "strassen", EntryBits: 1},
	}
	seen := map[string]bool{base.Key(): true}
	for _, v := range variants {
		if seen[v.Key()] {
			t.Errorf("key collision: %s", v.Key())
		}
		seen[v.Key()] = true
	}
}

// DecodeOutputs on gathered output planes must agree with the full-
// assignment Decode for every op — the invariant the serving layer's
// fan-out path rests on.
func TestDecodeOutputsMatchesFullDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(5))

	mm, err := BuildMatMul(4, Options{Alg: mustAlg(t, "strassen"), EntryBits: 2, Signed: true})
	if err != nil {
		t.Fatal(err)
	}
	outs := mm.Circuit.Outputs()
	for trial := 0; trial < 5; trial++ {
		a := matrix.Random(rng, 4, 4, -3, 3)
		b := matrix.Random(rng, 4, 4, -3, 3)
		in, err := mm.Assign(a, b)
		if err != nil {
			t.Fatal(err)
		}
		vals := mm.Circuit.Eval(in)
		want := mm.Decode(vals)
		outVals := make([]bool, len(outs))
		for i, w := range outs {
			outVals[i] = vals[w]
		}
		if got := mm.DecodeOutputs(outVals); !got.Equal(want) {
			t.Fatalf("matmul DecodeOutputs disagrees with Decode:\n%v\nvs\n%v", got, want)
		}
		if !want.Equal(a.Mul(b)) {
			t.Fatal("reference product wrong")
		}
	}

	tr, err := BuildTrace(8, 6, Options{Alg: mustAlg(t, "strassen")})
	if err != nil {
		t.Fatal(err)
	}
	trOuts := tr.Circuit.Outputs()
	if len(trOuts) != 1 {
		t.Fatalf("trace circuit marks %d outputs, want 1", len(trOuts))
	}
	cc, err := BuildCount(8, Options{Alg: mustAlg(t, "strassen")})
	if err != nil {
		t.Fatal(err)
	}
	ccOuts := cc.Circuit.Outputs()
	for trial := 0; trial < 5; trial++ {
		adj := graph.ErdosRenyi(rng, 8, 0.5).Adjacency()

		want, err := tr.Decide(adj)
		if err != nil {
			t.Fatal(err)
		}
		in, _ := tr.Assign(adj)
		vals := tr.Circuit.Eval(in)
		if got := tr.DecodeOutputs([]bool{vals[trOuts[0]]}); got != want {
			t.Fatalf("trace DecodeOutputs %v, Decide %v", got, want)
		}

		wantTri, err := cc.Triangles(adj)
		if err != nil {
			t.Fatal(err)
		}
		in, _ = cc.Assign(adj)
		vals = cc.Circuit.Eval(in)
		outVals := make([]bool, len(ccOuts))
		for i, w := range ccOuts {
			outVals[i] = vals[w]
		}
		gotTri, err := cc.DecodeTriangles(outVals)
		if err != nil {
			t.Fatal(err)
		}
		if gotTri != wantTri {
			t.Fatalf("count DecodeTriangles %d, Triangles %d", gotTri, wantTri)
		}
	}
}

// RemapReps against the circuit's own outputs reproduces EntryReps —
// the identity case every Splice-composition builds on.
func TestRemapRepsIdentity(t *testing.T) {
	mm, err := BuildMatMul(2, Options{Alg: mustAlg(t, "strassen"), EntryBits: 2, Signed: true})
	if err != nil {
		t.Fatal(err)
	}
	remapped := mm.RemapReps(mm.Circuit.Outputs())
	reps := mm.EntryReps()
	for e := range reps {
		for i, tm := range reps[e].Pos.Terms {
			if remapped[e].Pos.Terms[i] != tm {
				t.Fatalf("entry %d pos term %d changed under identity remap", e, i)
			}
		}
		for i, tm := range reps[e].Neg.Terms {
			if remapped[e].Neg.Terms[i] != tm {
				t.Fatalf("entry %d neg term %d changed under identity remap", e, i)
			}
		}
	}
}
