package core

import (
	"math/rand"
	"testing"

	"repro/internal/bilinear"
	"repro/internal/matrix"
)

// SharedMSB builds smaller circuits that compute identical results.
func TestSharedMSBOption(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	plain, err := BuildMatMul(8, Options{Alg: bilinear.Strassen(), EntryBits: 2})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := BuildMatMul(8, Options{Alg: bilinear.Strassen(), EntryBits: 2, SharedMSB: true})
	if err != nil {
		t.Fatal(err)
	}
	if shared.Circuit.Size() >= plain.Circuit.Size() {
		t.Errorf("shared %d gates >= plain %d", shared.Circuit.Size(), plain.Circuit.Size())
	}
	if shared.Circuit.Depth() != plain.Circuit.Depth() {
		t.Errorf("depth changed: %d vs %d", shared.Circuit.Depth(), plain.Circuit.Depth())
	}
	for trial := 0; trial < 5; trial++ {
		a := matrix.Random(rng, 8, 8, 0, 3)
		b := matrix.Random(rng, 8, 8, 0, 3)
		want := a.Mul(b)
		g1, err := plain.Multiply(a, b)
		if err != nil {
			t.Fatal(err)
		}
		g2, err := shared.Multiply(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !g1.Equal(want) || !g2.Equal(want) {
			t.Fatal("shared/plain product mismatch")
		}
	}
}

func TestSharedMSBTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	adj := randomAdjacency(rng, 8, 0.5)
	tau := adj.TraceCube()
	plain, err := BuildTrace(8, tau, Options{Alg: bilinear.Strassen()})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := BuildTrace(8, tau, Options{Alg: bilinear.Strassen(), SharedMSB: true})
	if err != nil {
		t.Fatal(err)
	}
	if shared.Circuit.Size() >= plain.Circuit.Size() {
		t.Errorf("shared %d gates >= plain %d", shared.Circuit.Size(), plain.Circuit.Size())
	}
	a1, err := plain.Decide(adj)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := shared.Decide(adj)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 || !a1 {
		t.Error("shared trace circuit disagrees")
	}
}
