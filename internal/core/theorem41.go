package core

import (
	"fmt"
	"math"

	"repro/internal/bilinear"
	"repro/internal/bitio"
	"repro/internal/tctree"
)

// Theorem 4.1 is the paper's warm-up result: a depth-O(d) circuit with
// Õ(d·N^{ω+1/d}) gates obtained by computing the leaves directly (the
// Direct schedule) with depth-d multi-stage adders in place of the
// depth-2 Lemma 3.2 circuits. The paper does not prove it ("our main
// results give superior results"); this file realizes its trade with
// the grouped adder: group size N^{1/d}-flavoured staging bounds the
// per-gate fan-in while the Direct schedule keeps the level structure
// trivial.

// Theorem41Options derives the Options for the Theorem 4.1 construction
// for an N = T^L instance with depth parameter d: the Direct schedule
// plus grouped summation with group size ~ (N·entryBits)^{1/d}.
func Theorem41Options(alg *bilinear.Algorithm, n, d, entryBits int, signed bool) (Options, error) {
	if d < 1 {
		return Options{}, fmt.Errorf("core: Theorem41Options d=%d < 1", d)
	}
	if n < 1 || !isPowOrOne(alg.T, n) {
		return Options{}, fmt.Errorf("core: N=%d is not a power of T=%d", n, alg.T)
	}
	if entryBits == 0 {
		entryBits = 1
	}
	L := bitio.Log(alg.T, n)
	// The widest leaf sum has about n·entryBits terms; d stages of
	// grouping need groups of about that count's d-th root.
	terms := float64(n * entryBits)
	group := int(math.Ceil(math.Pow(terms, 1/float64(d))))
	if group < 2 {
		group = 2
	}
	return Options{
		Alg:       alg,
		Schedule:  tctree.Direct(L),
		EntryBits: entryBits,
		Signed:    signed,
		GroupSize: group,
	}, nil
}

// BuildTheorem41Trace constructs the Theorem 4.1 form of the trace
// circuit: direct leaf computation with depth-d staged adders.
func BuildTheorem41Trace(n int, tau int64, alg *bilinear.Algorithm, d, entryBits int, signed bool) (*TraceCircuit, error) {
	opts, err := Theorem41Options(alg, n, d, entryBits, signed)
	if err != nil {
		return nil, err
	}
	return BuildTrace(n, tau, opts)
}

// BuildTheorem41MatMul constructs the Theorem 4.1 form of the matmul
// circuit.
func BuildTheorem41MatMul(n int, alg *bilinear.Algorithm, d, entryBits int, signed bool) (*MatMulCircuit, error) {
	opts, err := Theorem41Options(alg, n, d, entryBits, signed)
	if err != nil {
		return nil, err
	}
	return BuildMatMul(n, opts)
}
