package core

import (
	"math/rand"
	"testing"

	"repro/internal/bilinear"
	"repro/internal/matrix"
)

// Theorem 4.1 circuits stay correct at every d.
func TestTheorem41Correct(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const n = 8
	adj := randomAdjacency(rng, n, 0.5)
	want := adj.TraceCube()
	for d := 1; d <= 3; d++ {
		tc, err := BuildTheorem41Trace(n, want, bilinear.Strassen(), d, 1, false)
		if err != nil {
			t.Fatal(err)
		}
		got, err := tc.Decide(adj)
		if err != nil {
			t.Fatal(err)
		}
		if !got {
			t.Errorf("d=%d: trace >= itself failed", d)
		}
	}
	a := matrix.RandomBinary(rng, 4, 4, 0.5)
	b := matrix.RandomBinary(rng, 4, 4, 0.5)
	for d := 1; d <= 3; d++ {
		mc, err := BuildTheorem41MatMul(4, bilinear.Strassen(), d, 1, false)
		if err != nil {
			t.Fatal(err)
		}
		got, err := mc.Multiply(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(a.Mul(b)) {
			t.Errorf("d=%d: product wrong", d)
		}
	}
}

// The Theorem 4.1 trade: larger d means smaller group size, hence
// deeper circuits with smaller interior fan-in.
func TestTheorem41DepthFanInTrade(t *testing.T) {
	const n = 16
	interiorFanIn := func(tc *TraceCircuit) int {
		mx := 0
		depth := tc.Circuit.Depth()
		for g := 0; g < tc.Circuit.Size(); g++ {
			if tc.Circuit.GateLevel(g) < depth {
				if f := tc.Circuit.FanIn(g); f > mx {
					mx = f
				}
			}
		}
		return mx
	}
	var prevDepth, prevFanIn int
	for i, d := range []int{1, 3} {
		tc, err := BuildTheorem41Trace(n, 1, bilinear.Strassen(), d, 1, false)
		if err != nil {
			t.Fatal(err)
		}
		depth := tc.Circuit.Depth()
		fan := interiorFanIn(tc)
		if i == 1 {
			if depth <= prevDepth {
				t.Errorf("d=3 depth %d not above d=1 depth %d", depth, prevDepth)
			}
			if fan >= prevFanIn {
				t.Errorf("d=3 interior fan-in %d not below d=1's %d", fan, prevFanIn)
			}
		}
		prevDepth, prevFanIn = depth, fan
	}
}

func TestTheorem41Errors(t *testing.T) {
	if _, err := Theorem41Options(bilinear.Strassen(), 8, 0, 1, false); err == nil {
		t.Error("d=0 accepted")
	}
	if _, err := Theorem41Options(bilinear.Strassen(), 3, 1, 1, false); err == nil {
		t.Error("N=3 accepted")
	}
}
