package core

import (
	"fmt"

	"repro/internal/arith"
	"repro/internal/bitio"
	"repro/internal/circuit"
	"repro/internal/matrix"
	"repro/internal/tctree"
)

// TraceCircuit is a threshold circuit deciding trace(A³) >= τ for an
// N x N integer matrix A (Theorems 4.4 and 4.5). For a graph adjacency
// matrix, trace(A³) = 6·(#triangles), so the circuit answers "does G
// have at least ceil(τ/6) triangles?" when τ is chosen accordingly.
type TraceCircuit struct {
	Circuit  *circuit.Circuit
	N        int
	Tau      int64
	Opts     Options
	Schedule tctree.Schedule
	Audit    Audit

	output circuit.Wire
	ev     *circuit.Evaluator // lazily-built batch engine (see batch.go)
}

// BuildTrace constructs the trace-threshold circuit. The single input
// matrix A feeds three parallel tree sweeps: T_A, T_B (both on A) and
// T_G on the strict-upper-triangle mask G (G_ij = A_ij for i < j), which
// computes the third linear form of equation (4). The output gate
// compares Σ_q leafA_q·leafB_q·leafG_q = trace(A³)/2 against ceil(τ/2).
func BuildTrace(n int, tau int64, opts Options) (*TraceCircuit, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	if n < 1 || !isPowOrOne(opts.Alg.T, n) {
		return nil, fmt.Errorf("core: N=%d is not a power of T=%d", n, opts.Alg.T)
	}
	L := bitio.Log(opts.Alg.T, n)
	sched, err := opts.schedule(L)
	if err != nil {
		return nil, err
	}

	per := opts.perEntry()
	b := circuit.NewBuilder(n * n * per)
	rootA := opts.inputMatrix(b, 0, n)

	// The masked root G shares A's input wires above the diagonal and is
	// zero elsewhere — no gates needed.
	rootG := make([]arith.Signed, n*n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			rootG[i*n+j] = rootA[i*n+j]
		}
	}

	workers := opts.buildWorkers()
	tc := &TraceCircuit{N: n, Tau: tau, Opts: opts, Schedule: sched}
	lv := opts.downSweeps(b, sched, n, workers, []sweep{
		{tree: tctree.NewTreeA(opts.Alg), root: rootA, audit: &tc.Audit.DownA},
		{tree: tctree.NewTreeB(opts.Alg), root: rootA, audit: &tc.Audit.DownB},
		{tree: tctree.NewTreeG(opts.Alg), root: rootG, audit: &tc.Audit.DownG},
	})
	leavesA, leavesB, leavesG := lv[0], lv[1], lv[2]

	before := int64(b.Size())
	prod := shardStage(b, workers, len(leavesA), func(sb *circuit.Builder, q int) []arith.Signed {
		return []arith.Signed{arith.SignedProduct3(sb, leavesA[q], leavesB[q], leavesG[q])}
	})
	terms := make([]arith.ScaledSigned, 0, len(prod))
	for q := range prod {
		terms = append(terms, arith.ScaledSigned{X: prod[q][0], Coeff: 1})
	}
	tc.Audit.Product = int64(b.Size()) - before

	// trace(A³) >= τ  ⟺  trace/2 >= ceil(τ/2) since the sum is integral.
	before = int64(b.Size())
	tc.output = arith.Threshold(b, arith.SignedCombine(terms), ceilDiv(tau, 2))
	tc.Audit.Output = int64(b.Size()) - before
	b.MarkOutput(tc.output)
	tc.Circuit = b.Build()
	return tc, nil
}

// Assign encodes matrix A as a circuit input assignment.
func (tc *TraceCircuit) Assign(a *matrix.Matrix) ([]bool, error) {
	if a.Rows != tc.N || a.Cols != tc.N {
		return nil, fmt.Errorf("core: input must be %dx%d", tc.N, tc.N)
	}
	in := make([]bool, tc.Circuit.NumInputs())
	if err := tc.Opts.encodeMatrix(in, 0, a); err != nil {
		return nil, err
	}
	return in, nil
}

// Decide runs the circuit on A and reports whether trace(A³) >= τ.
func (tc *TraceCircuit) Decide(a *matrix.Matrix) (bool, error) {
	in, err := tc.Assign(a)
	if err != nil {
		return false, err
	}
	vals := tc.Circuit.EvalParallel(in, 0)
	return vals[tc.output], nil
}

// DecodeOutputs reads the decision from the marked-output values alone
// (outs[i] is the value of Circuit.Outputs()[i]; the trace circuit
// marks exactly one output, the comparison gate).
func (tc *TraceCircuit) DecodeOutputs(outs []bool) bool {
	return outs[0]
}

// DepthBound returns the realized construction's depth guarantee 2t+2
// (within Theorem 4.5's stated 2d+5).
func (tc *TraceCircuit) DepthBound() int {
	return 2*tc.Schedule.Transitions() + 2
}

// TriangleCircuit is the depth-2, C(N,3)+1-gate baseline of Section 1:
// inputs x_ij (i < j) are edge indicators; gate g_ijk fires iff all
// three edges of triangle {i,j,k} are present; the output gate fires iff
// at least tau triangles exist.
type TriangleCircuit struct {
	Circuit *circuit.Circuit
	N       int
	Tau     int64
	output  circuit.Wire
}

// BuildNaiveTriangle constructs the baseline triangle-threshold circuit
// for graphs on n vertices.
func BuildNaiveTriangle(n int, tau int64) (*TriangleCircuit, error) {
	if n < 3 {
		return nil, fmt.Errorf("core: naive triangle circuit needs n >= 3, got %d", n)
	}
	numEdges := n * (n - 1) / 2
	b := circuit.NewBuilder(numEdges)

	edge := func(i, j int) circuit.Wire {
		if i > j {
			i, j = j, i
		}
		// Index of (i, j), i < j, in row-major upper-triangle order.
		return circuit.Wire(i*(2*n-i-1)/2 + (j - i - 1))
	}

	var ys []circuit.Wire
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for k := j + 1; k < n; k++ {
				y := b.Gate(
					[]circuit.Wire{edge(i, j), edge(i, k), edge(j, k)},
					[]int64{1, 1, 1}, 3)
				ys = append(ys, y)
			}
		}
	}
	weights := make([]int64, len(ys))
	for i := range weights {
		weights[i] = 1
	}
	out := b.Gate(ys, weights, tau)
	b.MarkOutput(out)
	tcirc := &TriangleCircuit{Circuit: b.Build(), N: n, Tau: tau, output: out}
	return tcirc, nil
}

// Assign encodes a graph adjacency matrix (symmetric 0/1, zero diagonal)
// as the circuit's edge-variable assignment.
func (t *TriangleCircuit) Assign(adj *matrix.Matrix) ([]bool, error) {
	if adj.Rows != t.N || adj.Cols != t.N {
		return nil, fmt.Errorf("core: adjacency must be %dx%d", t.N, t.N)
	}
	if !adj.IsSymmetric() {
		return nil, fmt.Errorf("core: adjacency matrix must be symmetric")
	}
	in := make([]bool, t.Circuit.NumInputs())
	idx := 0
	for i := 0; i < t.N; i++ {
		if adj.At(i, i) != 0 {
			return nil, fmt.Errorf("core: self-loop at vertex %d", i)
		}
		for j := i + 1; j < t.N; j++ {
			switch adj.At(i, j) {
			case 0:
			case 1:
				in[idx] = true
			default:
				return nil, fmt.Errorf("core: adjacency entry (%d,%d) = %d is not 0/1", i, j, adj.At(i, j))
			}
			idx++
		}
	}
	return in, nil
}

// Decide reports whether the graph has at least Tau triangles.
func (t *TriangleCircuit) Decide(adj *matrix.Matrix) (bool, error) {
	in, err := t.Assign(adj)
	if err != nil {
		return false, err
	}
	vals := t.Circuit.EvalParallel(in, 0)
	return vals[t.output], nil
}
