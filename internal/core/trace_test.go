package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bilinear"
	"repro/internal/bitio"
	"repro/internal/matrix"
	"repro/internal/tctree"
)

// randomAdjacency returns a random symmetric 0/1 matrix with zero
// diagonal.
func randomAdjacency(rng *rand.Rand, n int, p float64) *matrix.Matrix {
	a := matrix.New(n, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				a.Set(i, j, 1)
				a.Set(j, i, 1)
			}
		}
	}
	return a
}

// The trace circuit answers trace(A³) >= τ exactly, swept across τ
// values bracketing the true trace.
func TestTraceThresholdSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{4, 8} {
		for trial := 0; trial < 3; trial++ {
			a := randomAdjacency(rng, n, 0.5)
			want := a.TraceCube()
			for _, tau := range []int64{0, 1, want - 2, want - 1, want, want + 1, want + 2, 3 * want} {
				tc, err := BuildTrace(n, tau, Options{Alg: bilinear.Strassen()})
				if err != nil {
					t.Fatal(err)
				}
				got, err := tc.Decide(a)
				if err != nil {
					t.Fatal(err)
				}
				if got != (want >= tau) {
					t.Fatalf("n=%d trace=%d tau=%d: got %v", n, want, tau, got)
				}
			}
		}
	}
}

// Signed integer matrices (not just adjacency): the trace circuit
// handles negative entries and negative traces.
func TestTraceSignedMatrices(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 5; trial++ {
		n := 4
		a := matrix.New(n, n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				v := rng.Int63n(7) - 3
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		want := a.TraceCube()
		for _, tau := range []int64{want - 1, want, want + 1, 0, -50, 50} {
			tc, err := BuildTrace(n, tau, Options{Alg: bilinear.Strassen(), EntryBits: 2, Signed: true})
			if err != nil {
				t.Fatal(err)
			}
			got, err := tc.Decide(a)
			if err != nil {
				t.Fatal(err)
			}
			if got != (want >= tau) {
				t.Fatalf("trial=%d trace=%d tau=%d: got %v", trial, want, tau, got)
			}
		}
	}
}

// Asymmetric matrices: trace(A³) is well-defined for any square A; the
// circuit must not assume symmetry.
//
// Note: the equation-(4) identity Σ_{i<j} A_ij·(A²)_ij = trace(A³)/2
// requires symmetry, but the paper's problem statement (Section 2.3)
// only needs A symmetric for the triangle application. Our circuit
// implements the identity, so it documents and enforces the symmetric
// case; this test pins that behaviour.
func TestTraceRequiresSymmetricSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	// For symmetric matrices the circuit is exact (covered above); here
	// we verify the documented identity directly: on an asymmetric
	// matrix the circuit computes Σ_{i<j} A_ij(A·A)_ij·2 thresholding,
	// which differs from trace(A³) in general. We only check the
	// circuit is internally consistent with the identity it implements.
	n := 4
	a := matrix.Random(rng, n, n, 0, 1)
	c := a.Mul(a)
	var half int64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			half += a.At(i, j) * c.At(i, j)
		}
	}
	implemented := 2 * half
	for _, tau := range []int64{implemented, implemented + 1} {
		tc, err := BuildTrace(n, tau, Options{Alg: bilinear.Strassen()})
		if err != nil {
			t.Fatal(err)
		}
		got, err := tc.Decide(a)
		if err != nil {
			t.Fatal(err)
		}
		if got != (implemented >= tau) {
			t.Fatalf("tau=%d: circuit disagrees with its defining identity", tau)
		}
	}
}

// Depth realization: 2t+2 exactly, within Theorem 4.5's 2d+5.
func TestTraceDepth(t *testing.T) {
	gamma := bilinear.Strassen().Params().Gamma
	for _, l := range []int{1, 2, 3} {
		n := 1 << l
		for _, sched := range []tctree.Schedule{
			tctree.Direct(l),
			tctree.Uniform(l, 2),
			tctree.LogLog(gamma, l),
		} {
			tc, err := BuildTrace(n, 1, Options{Alg: bilinear.Strassen(), Schedule: sched})
			if err != nil {
				t.Fatal(err)
			}
			tt := sched.Transitions()
			if got := tc.Circuit.Depth(); got != 2*tt+2 {
				t.Errorf("n=%d sched=%v: depth %d, want 2t+2 = %d", n, sched, got, 2*tt+2)
			}
		}
	}
	// Default schedule honors Theorem 4.5: depth <= 2d+5.
	for d := 1; d <= 3; d++ {
		tc, err := BuildTrace(8, 1, Options{Alg: bilinear.Strassen(), Depth: d})
		if err != nil {
			t.Fatal(err)
		}
		if tc.Circuit.Depth() > 2*d+5 {
			t.Errorf("d=%d: depth %d exceeds theorem bound %d", d, tc.Circuit.Depth(), 2*d+5)
		}
	}
}

// Triangle counting through the trace circuit: trace(A³) = 6Δ.
func TestTraceCountsTriangles(t *testing.T) {
	// K4 has 4 triangles: trace = 24.
	k4 := matrix.New(4, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j {
				k4.Set(i, j, 1)
			}
		}
	}
	for _, c := range []struct {
		tau  int64
		want bool
	}{{24, true}, {25, false}, {6, true}, {0, true}} {
		tc, err := BuildTrace(4, c.tau, Options{Alg: bilinear.Strassen()})
		if err != nil {
			t.Fatal(err)
		}
		got, err := tc.Decide(k4)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("K4 tau=%d: got %v want %v", c.tau, got, c.want)
		}
	}
}

// Winograd-based trace circuit agrees with Strassen-based one.
func TestTraceAlgorithmIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	a := randomAdjacency(rng, 4, 0.6)
	want := a.TraceCube()
	for _, algName := range []string{"strassen", "winograd", "naive2"} {
		alg, err := bilinear.Lookup(algName)
		if err != nil {
			t.Fatal(err)
		}
		tc, err := BuildTrace(4, want, Options{Alg: alg})
		if err != nil {
			t.Fatal(err)
		}
		got, err := tc.Decide(a)
		if err != nil {
			t.Fatal(err)
		}
		if !got {
			t.Errorf("%s: trace >= its own value should hold", algName)
		}
	}
}

// The naive triangle circuit has exactly C(N,3)+1 gates and depth 2
// (Section 1), and decides correctly.
func TestNaiveTriangleStructure(t *testing.T) {
	for _, n := range []int{3, 5, 8, 12} {
		tc, err := BuildNaiveTriangle(n, 2)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := int64(tc.Circuit.Size()), bitio.Binomial(n, 3)+1; got != want {
			t.Errorf("n=%d: size %d, want C(n,3)+1 = %d", n, got, want)
		}
		if tc.Circuit.Depth() != 2 {
			t.Errorf("n=%d: depth %d, want 2", n, tc.Circuit.Depth())
		}
	}
}

func TestNaiveTriangleDecides(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(6)
		adj := randomAdjacency(rng, n, 0.5)
		triangles := adj.TraceCube() / 6
		for _, tau := range []int64{0, 1, triangles, triangles + 1} {
			tc, err := BuildNaiveTriangle(n, tau)
			if err != nil {
				t.Fatal(err)
			}
			got, err := tc.Decide(adj)
			if err != nil {
				t.Fatal(err)
			}
			if got != (triangles >= tau) {
				t.Fatalf("n=%d Δ=%d tau=%d: got %v", n, triangles, tau, got)
			}
		}
	}
}

// Naive circuit and subcubic trace circuit agree on the same queries:
// Δ >= k  ⟺  trace >= 6k.
func TestNaiveVsSubcubicAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 5; trial++ {
		const n = 8
		adj := randomAdjacency(rng, n, 0.4)
		for _, k := range []int64{1, 2, 5, 10} {
			naive, err := BuildNaiveTriangle(n, k)
			if err != nil {
				t.Fatal(err)
			}
			fast, err := BuildTrace(n, 6*k, Options{Alg: bilinear.Strassen()})
			if err != nil {
				t.Fatal(err)
			}
			a1, err := naive.Decide(adj)
			if err != nil {
				t.Fatal(err)
			}
			a2, err := fast.Decide(adj)
			if err != nil {
				t.Fatal(err)
			}
			if a1 != a2 {
				t.Fatalf("trial=%d k=%d: naive=%v fast=%v", trial, k, a1, a2)
			}
		}
	}
}

// Property test: random adjacency, random tau.
func TestTraceProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4
		a := randomAdjacency(rng, n, 0.3+0.4*rng.Float64())
		tau := rng.Int63n(40) - 5
		tc, err := BuildTrace(n, tau, Options{Alg: bilinear.Strassen()})
		if err != nil {
			return false
		}
		got, err := tc.Decide(a)
		return err == nil && got == (a.TraceCube() >= tau)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTraceAuditComplete(t *testing.T) {
	tc, err := BuildTrace(8, 6, Options{Alg: bilinear.Strassen()})
	if err != nil {
		t.Fatal(err)
	}
	if tc.Audit.Total() != int64(tc.Circuit.Size()) {
		t.Errorf("audit %d != size %d", tc.Audit.Total(), tc.Circuit.Size())
	}
	if tc.Audit.Output != 1 {
		t.Errorf("output phase = %d gates, want 1", tc.Audit.Output)
	}
}

func TestTraceErrors(t *testing.T) {
	if _, err := BuildTrace(3, 1, Options{Alg: bilinear.Strassen()}); err == nil {
		t.Error("N=3 accepted for T=2")
	}
	if _, err := BuildNaiveTriangle(2, 1); err == nil {
		t.Error("n=2 naive triangle accepted")
	}
	tc, err := BuildNaiveTriangle(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tc.Decide(matrix.FromRows([][]int64{{0, 1}, {1, 0}})); err == nil {
		t.Error("wrong-size adjacency accepted")
	}
	asym := matrix.New(4, 4)
	asym.Set(0, 1, 1)
	if _, err := tc.Decide(asym); err == nil {
		t.Error("asymmetric adjacency accepted")
	}
	loop := matrix.New(4, 4)
	loop.Set(0, 0, 1)
	if _, err := tc.Decide(loop); err == nil {
		t.Error("self-loop accepted")
	}
	big := matrix.New(4, 4)
	big.Set(0, 1, 2)
	big.Set(1, 0, 2)
	if _, err := tc.Decide(big); err == nil {
		t.Error("non-binary adjacency accepted")
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{4, 2, 2}, {5, 2, 3}, {-5, 2, -2}, {-4, 2, -2}, {0, 2, 0}, {1, 2, 1},
	}
	for _, c := range cases {
		if got := ceilDiv(c.a, c.b); got != c.want {
			t.Errorf("ceilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
