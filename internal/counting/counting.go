// Package counting is the analytic gate-count model: it predicts, in
// closed form, the number of gates the core builders create, for
// instances far beyond what can be materialized (N up to 2^20 and more).
//
// The model replays the construction symbolically. Each Lemma 3.2
// summation is costed by the exact rule the builder uses (bit j costs
// 2^{bits(maxS_j)-j+1} + 1 gates when maxS_j >= 2^{j-1}), applied to
// worst-case weight multisets:
//
//   - entry widths follow the paper's bound (2): W(h) = b + 2h·log2 T;
//   - per-node linear-form sizes follow the exact distributions of
//     size(u) = Π a_{k_i} (equation (3)) and of the T_AB block
//     contribution counts Π c'_{e_i} (equation (5)), aggregated as
//     products of the per-step label multisets;
//   - both halves of every signed pair are charged.
//
// The result is a sound upper bound on the builders' measured gate
// counts (asserted by tests where both exist) whose growth exponent
// reproduces the paper's Õ(N^{ω + c·γ^d}) claims.
package counting

import (
	"math"

	"repro/internal/bilinear"
	"repro/internal/tctree"
)

// weightClass is cnt occurrences of the weight 2^pow in a summation's
// weight multiset.
type weightClass struct {
	pow int
	cnt float64
}

type multiset []weightClass

// binaryNumber is the weight multiset of one W-bit binary summand.
func binaryNumber(w int) multiset {
	ms := make(multiset, w)
	for p := 0; p < w; p++ {
		ms[p] = weightClass{pow: p, cnt: 1}
	}
	return ms
}

// productRep is the weight multiset of a Lemma 3.3 two-factor signed
// product representation: both sign halves of each factor have width w,
// and each signed half of the result is the union of two w x w grids
// (pos·pos ∪ neg·neg), giving 2·(number of (i,j) with i+j = p) weights
// at power p.
func productRep(w int) multiset {
	ms := make(multiset, 0, 2*w-1)
	for p := 0; p <= 2*w-2; p++ {
		lo := p - (w - 1)
		if lo < 0 {
			lo = 0
		}
		hi := p
		if hi > w-1 {
			hi = w - 1
		}
		ms = append(ms, weightClass{pow: p, cnt: 2 * float64(hi-lo+1)})
	}
	return ms
}

// scale multiplies every count by c (c summands of the same shape).
func (ms multiset) scale(c float64) multiset {
	out := make(multiset, len(ms))
	for i, wc := range ms {
		out[i] = weightClass{pow: wc.pow, cnt: wc.cnt * c}
	}
	return out
}

// bitsF is the real-number analogue of bitio.Bits: floor(log2 x) + 1
// for x >= 1, 0 for x < 1.
func bitsF(x float64) int {
	if x < 1 {
		return 0
	}
	return int(math.Floor(math.Log2(x))) + 1
}

// sumCost prices one signed half of a Lemma 3.2 summation over the given
// weight multiset, using exactly the builder's per-bit rule.
func sumCost(ms multiset) float64 {
	var max float64
	for _, wc := range ms {
		max += wc.cnt * math.Pow(2, float64(wc.pow))
	}
	if max < 1 {
		return 0
	}
	L := bitsF(max)
	var gates float64
	for j := 1; j <= L; j++ {
		var maxSj float64
		for _, wc := range ms {
			if wc.pow < j {
				maxSj += wc.cnt * math.Pow(2, float64(wc.pow))
			}
		}
		if maxSj < math.Pow(2, float64(j-1)) {
			continue
		}
		k := bitsF(maxSj) - j + 1
		gates += math.Pow(2, float64(k)) + 1
	}
	return gates
}

// labelDist returns the distribution of Π labels over all paths of
// length delta: product value -> number of paths. Label products stay
// compact because real algorithms use few distinct labels. Values and
// counts are float64 so the model reaches depths far beyond int64
// range; products of small labels stay exact well past 2^53 when they
// are powers of two (Strassen) and are approximate otherwise, which is
// immaterial for a cost model.
func labelDist(labels []int, delta int) map[float64]float64 {
	dist := map[float64]float64{1: 1}
	for i := 0; i < delta; i++ {
		next := make(map[float64]float64, len(dist)*2)
		for v, c := range dist {
			for _, lab := range labels {
				next[v*float64(lab)] += c
			}
		}
		dist = next
	}
	return dist
}

// Estimate itemizes predicted gates by construction phase, mirroring
// core.Audit.
type Estimate struct {
	DownA, DownB, DownG []float64
	Product             float64
	Up                  []float64
	Output              float64
}

// Total returns the predicted total gate count.
func (e Estimate) Total() float64 {
	t := e.Product + e.Output
	for _, v := range e.DownA {
		t += v
	}
	for _, v := range e.DownB {
		t += v
	}
	for _, v := range e.DownG {
		t += v
	}
	for _, v := range e.Up {
		t += v
	}
	return t
}

// width returns the paper's bound (2) on entry magnitude bits at tree
// level h: b + bits of T^{2h}.
func width(alg *bilinear.Algorithm, b, h int) int {
	return b + bitsF(math.Pow(float64(alg.T), 2*float64(h))-0.5)
}

// downCost prices one down-sweep transition h' -> h of a tree with the
// given edge labels: r^h' parent groups x per-class path counts x m²
// entries x two signed halves.
func downCost(alg *bilinear.Algorithm, labels []int, b, L, hPrev, h int) float64 {
	delta := h - hPrev
	w := width(alg, b, hPrev)
	m := math.Pow(float64(alg.T), float64(L-h)) // matrix dim at level h
	parents := math.Pow(float64(alg.R), float64(hPrev))
	var total float64
	for size, cnt := range labelDist(labels, delta) {
		if size == 0 {
			continue
		}
		perEntry := 2 * sumCost(binaryNumber(w).scale(size))
		total += cnt * parents * m * m * perEntry
	}
	return total
}

// cPrimeLabels returns the per-output-expression term counts c'_e of the
// algorithm (the up-sweep / T_G labels).
func cPrimeLabels(alg *bilinear.Algorithm) []int {
	return alg.CPrime()
}

// EstimateTrace predicts the gate count of core.BuildTrace for
// N = T^L with entryBits-bit inputs under the given schedule.
func EstimateTrace(alg *bilinear.Algorithm, entryBits, L int, sched tctree.Schedule) Estimate {
	var e Estimate
	ta := tctree.NewTreeA(alg).StepNonzeros()
	tb := tctree.NewTreeB(alg).StepNonzeros()
	tg := tctree.NewTreeG(alg).StepNonzeros()
	for i := 1; i < len(sched); i++ {
		e.DownA = append(e.DownA, downCost(alg, ta, entryBits, L, sched[i-1], sched[i]))
		e.DownB = append(e.DownB, downCost(alg, tb, entryBits, L, sched[i-1], sched[i]))
		e.DownG = append(e.DownG, downCost(alg, tg, entryBits, L, sched[i-1], sched[i]))
	}
	// Product layer: 8·W³ gates per leaf (Lemma 3.3 with signs).
	w := float64(width(alg, entryBits, L))
	leaves := math.Pow(float64(alg.R), float64(L))
	e.Product = leaves * 8 * w * w * w
	e.Output = 1
	return e
}

// productRep3 is the weight multiset of a Lemma 3.3 three-factor signed
// product representation: each signed half of the result is the union
// of four w x w x w grids (the four sign combinations of one parity),
// giving 4·#{(i,j,k) ∈ [0,w)³ : i+j+k = p} weights at power p.
func productRep3(w int) multiset {
	counts := make([]float64, 3*w-2)
	for i := 0; i < w; i++ {
		for j := 0; j < w; j++ {
			for k := 0; k < w; k++ {
				counts[i+j+k]++
			}
		}
	}
	ms := make(multiset, len(counts))
	for p, c := range counts {
		ms[p] = weightClass{pow: p, cnt: 4 * c}
	}
	return ms
}

// EstimateCount predicts the gate count of core.BuildCount: identical
// to the trace estimate except the single output comparison gate is
// replaced by a Lemma 3.2 bank binarizing the combined half-trace
// representation (r^L three-factor product representations, both signed
// halves charged).
func EstimateCount(alg *bilinear.Algorithm, entryBits, L int, sched tctree.Schedule) Estimate {
	e := EstimateTrace(alg, entryBits, L, sched)
	w := width(alg, entryBits, L)
	leaves := math.Pow(float64(alg.R), float64(L))
	e.Output = 2 * sumCost(productRep3(w).scale(leaves))
	return e
}

// EstimateMatMul predicts the gate count of core.BuildMatMul.
func EstimateMatMul(alg *bilinear.Algorithm, entryBits, L int, sched tctree.Schedule) Estimate {
	var e Estimate
	ta := tctree.NewTreeA(alg).StepNonzeros()
	tb := tctree.NewTreeB(alg).StepNonzeros()
	for i := 1; i < len(sched); i++ {
		e.DownA = append(e.DownA, downCost(alg, ta, entryBits, L, sched[i-1], sched[i]))
		e.DownB = append(e.DownB, downCost(alg, tb, entryBits, L, sched[i-1], sched[i]))
	}
	wLeaf := width(alg, entryBits, L)
	leaves := math.Pow(float64(alg.R), float64(L))
	// Product layer: 4·W² per leaf (two signed halves, two grids each).
	e.Product = leaves * 4 * float64(wLeaf) * float64(wLeaf)

	// Up-sweep: transitions from the leaves back to the root.
	labels := cPrimeLabels(alg)
	maxLabel := 0
	for _, l := range labels {
		if l > maxLabel {
			maxLabel = l
		}
	}
	// Width of T_AB entries at the current (child) level; leaves hold
	// two-factor products of leaf scalars.
	childWidth := 2 * wLeaf
	childIsProductRep := true
	for i := len(sched) - 2; i >= 0; i-- {
		h := sched[i]
		delta := sched[i+1] - h
		m := math.Pow(float64(alg.T), float64(L-sched[i+1])) // child dim
		nodes := math.Pow(float64(alg.R), float64(h))
		var total float64
		for size, cnt := range labelDist(labels, delta) {
			if size == 0 {
				continue
			}
			var ms multiset
			if childIsProductRep {
				ms = productRep(wLeaf).scale(size)
			} else {
				ms = binaryNumber(childWidth).scale(size)
			}
			// cnt blocks of m x m entries in each of the nodes.
			total += nodes * cnt * m * m * 2 * sumCost(ms)
		}
		e.Up = append(e.Up, total)
		// New entries are sums of at most maxLabel^delta child values.
		childWidth += delta * bitsF(float64(maxLabel))
		childIsProductRep = false
	}
	return e
}

// NaiveTriangleGates returns the baseline circuit size C(N,3) + 1 as a
// float (Section 1).
func NaiveTriangleGates(n float64) float64 {
	return n*(n-1)*(n-2)/6 + 1
}

// NaiveMatMulGates prices the definitional depth-3 threshold circuit for
// N x N, b-bit matrix product: N³ signed two-factor products (4b² gates
// each) plus N² output summations over N product representations.
func NaiveMatMulGates(n float64, b int) float64 {
	products := n * n * n * 4 * float64(b) * float64(b)
	perEntry := 2 * sumCost(productRep(b).scale(n))
	return products + n*n*perEntry
}

// FittedExponent estimates the empirical growth exponent of counts
// between two sizes: log(g2/g1) / log(N2/N1).
func FittedExponent(g1, g2, n1, n2 float64) float64 {
	return math.Log(g2/g1) / math.Log(n2/n1)
}

// TheoremExponent returns the paper's headline gate-count exponent for
// depth parameter d: ω + c·γ^d (Theorems 4.5 / 4.9).
func TheoremExponent(alg *bilinear.Algorithm, d int) float64 {
	p := alg.Params()
	return p.Omega + p.CConst*math.Pow(p.Gamma, float64(d))
}
