package counting

import (
	"math"
	"testing"

	"repro/internal/bilinear"
	"repro/internal/tctree"
)

// The headline claim, exactly as the paper states it: the gate exponent
// ω + c·γ^d drops below 3 precisely for d > 3 with Strassen's constants.
func TestTheoremCrossoverAtD4(t *testing.T) {
	alg := bilinear.Strassen()
	for d := 1; d <= 2; d++ {
		if e := TheoremExponent(alg, d); e <= 3 {
			t.Errorf("d=%d: theorem exponent %v, expected > 3", d, e)
		}
	}
	// With the exact constants (γ ≈ 0.4906, c ≈ 1.585), d=3 lands
	// marginally below 3 (≈ 2.9945); the paper states the safe claim
	// "for d > 3". Record the borderline value, assert d >= 4 firmly.
	t.Logf("d=3: theorem exponent %v (borderline)", TheoremExponent(alg, 3))
	for d := 4; d <= 8; d++ {
		if e := TheoremExponent(alg, d); e >= 3 {
			t.Errorf("d=%d: theorem exponent %v, expected < 3 (paper: d > 3 suffices)", d, e)
		}
	}
}

// The model's fitted exponent — which, unlike the theorem's Õ, still
// carries the polylog factors of the Lemma 3.2/3.3 circuits — also drops
// below 3 at large N for d >= 4, and exceeds 3 for d = 1.
func TestModelFittedExponent(t *testing.T) {
	alg := bilinear.Strassen()
	gamma := alg.Params().Gamma
	exponentAt := func(d int) float64 {
		const l1, l2 = 48, 64
		g1 := EstimateTrace(alg, 1, l1, tctree.ConstantDepth(gamma, l1, d)).Total()
		g2 := EstimateTrace(alg, 1, l2, tctree.ConstantDepth(gamma, l2, d)).Total()
		return FittedExponent(g1, g2, math.Pow(2, l1), math.Pow(2, l2))
	}
	if e1 := exponentAt(1); e1 <= 3 {
		t.Errorf("d=1 fitted exponent %v, expected > 3", e1)
	}
	for d := 4; d <= 6; d++ {
		if ed := exponentAt(d); ed >= 3 {
			t.Errorf("d=%d fitted exponent %v, expected < 3", d, ed)
		}
	}
}

// The matmul model also crosses below 3 for d >= 4 at large L
// (Theorem 4.9's side of the headline).
func TestMatMulFittedExponent(t *testing.T) {
	alg := bilinear.Strassen()
	gamma := alg.Params().Gamma
	exponentAt := func(d int) float64 {
		const l1, l2 = 48, 64
		g1 := EstimateMatMul(alg, 1, l1, tctree.ConstantDepth(gamma, l1, d)).Total()
		g2 := EstimateMatMul(alg, 1, l2, tctree.ConstantDepth(gamma, l2, d)).Total()
		return FittedExponent(g1, g2, math.Pow(2, l1), math.Pow(2, l2))
	}
	if e1 := exponentAt(1); e1 <= 3 {
		t.Errorf("matmul d=1 fitted %v, expected > 3", e1)
	}
	for d := 4; d <= 6; d++ {
		if ed := exponentAt(d); ed >= 3 {
			t.Errorf("matmul d=%d fitted %v, expected < 3", d, ed)
		}
	}
}

// Fitted exponents track the theorem's ω + c·γ^d within the polylog
// drag (the Õ factors contribute a slowly-vanishing positive offset).
func TestExponentTracksTheorem(t *testing.T) {
	alg := bilinear.Strassen()
	gamma := alg.Params().Gamma
	omega := alg.Params().Omega
	const l1, l2 = 48, 64
	for d := 1; d <= 8; d++ {
		g1 := EstimateTrace(alg, 1, l1, tctree.ConstantDepth(gamma, l1, d)).Total()
		g2 := EstimateTrace(alg, 1, l2, tctree.ConstantDepth(gamma, l2, d)).Total()
		fitted := FittedExponent(g1, g2, math.Pow(2, l1), math.Pow(2, l2))
		theorem := TheoremExponent(alg, d)
		if fitted < omega-0.05 {
			t.Errorf("d=%d: fitted exponent %v below ω=%v", d, fitted, omega)
		}
		// The theorem exponent is an upper bound (schedule ceilings often
		// land better); the fitted value may sit below it but not far
		// above (only polylog drag is allowed on top).
		if fitted > theorem+0.35 {
			t.Errorf("d=%d: fitted %v exceeds theorem %v by more than the polylog drag", d, fitted, theorem)
		}
	}
}

// LogLog schedule: fitted exponent essentially ω (the Õ(N^ω) claim of
// Theorem 4.4).
func TestLogLogExponent(t *testing.T) {
	alg := bilinear.Strassen()
	gamma := alg.Params().Gamma
	omega := alg.Params().Omega
	const l1, l2 = 16, 20
	g1 := EstimateTrace(alg, 1, l1, tctree.LogLog(gamma, l1)).Total()
	g2 := EstimateTrace(alg, 1, l2, tctree.LogLog(gamma, l2)).Total()
	fitted := FittedExponent(g1, g2, math.Pow(2, l1), math.Pow(2, l2))
	if fitted > omega+0.25 || fitted < omega-0.05 {
		t.Errorf("loglog fitted exponent %v, want ≈ ω = %v", fitted, omega)
	}
}

// Ablation (E9): at equal transition counts, the geometric schedule
// needs fewer gates than the uniform one, and both beat the direct jump,
// at large N.
func TestScheduleAblation(t *testing.T) {
	alg := bilinear.Strassen()
	gamma := alg.Params().Gamma
	const l = 20
	geo := tctree.ConstantDepth(gamma, l, 4)
	uni := tctree.Uniform(l, geo.Transitions())
	direct := tctree.Direct(l)
	gGeo := EstimateTrace(alg, 1, l, geo).Total()
	gUni := EstimateTrace(alg, 1, l, uni).Total()
	gDir := EstimateTrace(alg, 1, l, direct).Total()
	if gGeo >= gUni {
		t.Errorf("geometric %v >= uniform %v", gGeo, gUni)
	}
	if gUni >= gDir {
		t.Errorf("uniform %v >= direct %v", gUni, gDir)
	}
}

// The naive baseline formulas.
func TestNaiveFormulas(t *testing.T) {
	if got := NaiveTriangleGates(64); got != 41664+1 {
		t.Errorf("NaiveTriangleGates(64) = %v, want 41665", got)
	}
	// Naive matmul grows like N³.
	e := FittedExponent(NaiveMatMulGates(1<<10, 1), NaiveMatMulGates(1<<14, 1), 1<<10, 1<<14)
	if math.Abs(e-3) > 0.05 {
		t.Errorf("naive matmul exponent %v, want ≈ 3", e)
	}
}

// The subcubic-vs-naive comparison: the constant factors and polylogs of
// the construction put the literal gate-count crossover far out, but the
// ratio fast/naive must shrink steadily with N once d >= 4 — the
// asymptotic content of "O(N^{3-ε}) beats Θ(N³)". The model exhibits
// exactly that, and the projected crossover N is finite.
func TestBeatsNaiveAsymptotically(t *testing.T) {
	alg := bilinear.Strassen()
	gamma := alg.Params().Gamma
	ratio := func(l, d int) float64 {
		fast := EstimateTrace(alg, 1, l, tctree.ConstantDepth(gamma, l, d)).Total()
		return fast / NaiveTriangleGates(math.Pow(2, float64(l)))
	}
	const d = 5
	r32, r48, r64 := ratio(32, d), ratio(48, d), ratio(64, d)
	if !(r64 < r48 && r48 < r32) {
		t.Errorf("fast/naive ratio not shrinking: 2^32:%v 2^48:%v 2^64:%v", r32, r48, r64)
	}
	// Project the crossover from the L=48..64 slope: with exponent gap
	// g = 3 - fitted, crossover at log2 N* ≈ 64 + log2(r64)/g.
	fitted := FittedExponent(
		EstimateTrace(alg, 1, 48, tctree.ConstantDepth(gamma, 48, d)).Total(),
		EstimateTrace(alg, 1, 64, tctree.ConstantDepth(gamma, 64, d)).Total(),
		math.Pow(2, 48), math.Pow(2, 64))
	gap := 3 - fitted
	if gap <= 0 {
		t.Fatalf("no exponent gap at d=%d: fitted %v", d, fitted)
	}
	crossL := 64 + math.Log2(r64)/gap
	if math.IsInf(crossL, 0) || math.IsNaN(crossL) || crossL < 64 {
		t.Errorf("projected crossover log2(N*) = %v, expected finite and > 64", crossL)
	}
	t.Logf("d=%d: ratios 2^32:%.1f 2^48:%.1f 2^64:%.1f, fitted %.3f, projected crossover at N ≈ 2^%.0f",
		d, r32, r48, r64, fitted, crossL)
}

// Winograd's larger sparsity costs it in the model: at the same d,
// Strassen's trace circuit needs fewer gates at scale.
func TestSparsityMattersAtScale(t *testing.T) {
	s := bilinear.Strassen()
	w := bilinear.Winograd()
	const l, d = 20, 4
	gs := EstimateTrace(s, 1, l, tctree.ConstantDepth(s.Params().Gamma, l, d)).Total()
	gw := EstimateTrace(w, 1, l, tctree.ConstantDepth(w.Params().Gamma, l, d)).Total()
	if gs >= gw {
		t.Errorf("Strassen %v >= Winograd %v at d=%d, N=2^%d", gs, gw, d, l)
	}
}

func TestSumCostMatchesBuilderRule(t *testing.T) {
	// binaryNumber(3) scaled by 5 = five 3-bit summands: compare against
	// arith.SumBitsGateCount via explicit expansion.
	ms := binaryNumber(3).scale(5)
	got := sumCost(ms)
	// Explicit weights: 5 copies each of 1, 2, 4 -> max 35.
	want := float64(sumBitsRef([]int64{1, 1, 1, 1, 1, 2, 2, 2, 2, 2, 4, 4, 4, 4, 4}, 35))
	if got != want {
		t.Errorf("sumCost = %v, want %v", got, want)
	}
}

// sumBitsRef mirrors arith.SumBitsGateCount for the test without
// importing it (avoiding an import cycle is not an issue here, but the
// duplication keeps the reference independent).
func sumBitsRef(weights []int64, max int64) int64 {
	var gates int64
	L := bitsF(float64(max))
	for j := 1; j <= L; j++ {
		mod := int64(1) << uint(j)
		var maxSj int64
		for _, w := range weights {
			maxSj += w % mod
		}
		if maxSj < mod/2 {
			continue
		}
		l := bitsF(float64(maxSj))
		gates += (int64(1) << uint(l-j+1)) + 1
	}
	return gates
}

func TestTheoremExponentValues(t *testing.T) {
	alg := bilinear.Strassen()
	// ω + c·γ^d for d=4: ≈ 2.807 + 1.585·0.491^4 ≈ 2.899 < 3.
	if e := TheoremExponent(alg, 4); e >= 3 || e < 2.8 {
		t.Errorf("theorem exponent at d=4 = %v, expected in [2.8, 3)", e)
	}
	if e := TheoremExponent(alg, 1); e <= 3 {
		t.Errorf("theorem exponent at d=1 = %v, expected > 3", e)
	}
}
