// External test package: these tests materialize circuits via
// internal/core, which itself imports counting for Builder.Reserve
// pre-sizing, so an in-package test would create an import cycle.
package counting_test

import (
	"testing"

	"repro/internal/bilinear"
	"repro/internal/core"
	"repro/internal/counting"
	"repro/internal/tctree"
)

// The model is a sound upper bound on measured gate counts, phase by
// phase, where circuits can be materialized.
func TestModelUpperBoundsTrace(t *testing.T) {
	alg := bilinear.Strassen()
	gamma := alg.Params().Gamma
	for _, l := range []int{1, 2, 3} {
		n := 1 << l
		for _, sched := range []tctree.Schedule{
			tctree.Direct(l),
			tctree.LogLog(gamma, l),
		} {
			tc, err := core.BuildTrace(n, 1, core.Options{Alg: alg, Schedule: sched})
			if err != nil {
				t.Fatal(err)
			}
			est := counting.EstimateTrace(alg, 1, l, sched)
			if got, bound := float64(tc.Circuit.Size()), est.Total(); got > bound {
				t.Errorf("n=%d sched=%v: measured %v > model %v", n, sched, got, bound)
			}
			// Phase-wise soundness for the down sweeps.
			for i := range est.DownA {
				if float64(tc.Audit.DownA[i]) > est.DownA[i] {
					t.Errorf("n=%d sched=%v: down-A[%d] measured %d > model %v",
						n, sched, i, tc.Audit.DownA[i], est.DownA[i])
				}
			}
			if float64(tc.Audit.Product) > est.Product {
				t.Errorf("n=%d sched=%v: product measured %d > model %v",
					n, sched, tc.Audit.Product, est.Product)
			}
		}
	}
}

func TestModelUpperBoundsMatMul(t *testing.T) {
	alg := bilinear.Strassen()
	for _, l := range []int{1, 2} {
		n := 1 << l
		sched := tctree.Uniform(l, l)
		mc, err := core.BuildMatMul(n, core.Options{Alg: alg, Schedule: sched})
		if err != nil {
			t.Fatal(err)
		}
		est := counting.EstimateMatMul(alg, 1, l, sched)
		if got, bound := float64(mc.Circuit.Size()), est.Total(); got > bound {
			t.Errorf("n=%d: measured %v > model %v", n, got, bound)
		}
		// The model should not be absurdly loose either (within 100x at
		// these tiny sizes; width bounds dominate the slack).
		if est.Total() > 100*float64(mc.Circuit.Size()) {
			t.Errorf("n=%d: model %v is over 100x measured %d", n, est.Total(), mc.Circuit.Size())
		}
	}
}
