package counting

import (
	"math"

	"repro/internal/bilinear"
	"repro/internal/tctree"
)

// OptimalTraceSchedule exhaustively searches all increasing level
// schedules 0 = h_0 < h_1 < ... < h_t = L with exactly t transitions
// and returns the one minimizing the modeled trace-circuit gate count,
// together with that count. It answers a question the paper leaves
// implicit: how close is the closed-form geometric rule
// h_i = ⌈(1-γ^i)ρ⌉ of Lemma 4.3 to the true (model-)optimal level
// selection? (E22 quantifies the gap: small.)
//
// The search space is C(L-1, t-1) schedules; feasible for the L ≤ 32,
// t ≤ 5 regime the experiments use.
func OptimalTraceSchedule(alg *bilinear.Algorithm, entryBits, L, t int) (tctree.Schedule, float64) {
	best := math.Inf(1)
	var bestSched tctree.Schedule

	sched := make([]int, t+1)
	sched[0] = 0
	sched[t] = L
	var rec func(pos, next int)
	rec = func(pos, next int) {
		if pos == t {
			s := make(tctree.Schedule, t+1)
			copy(s, sched)
			if total := EstimateTrace(alg, entryBits, L, s).Total(); total < best {
				best = total
				bestSched = s
			}
			return
		}
		// Choose h_pos strictly between sched[pos-1] and L, leaving room
		// for the remaining transitions.
		for h := sched[pos-1] + 1; h <= L-(t-pos); h++ {
			sched[pos] = h
			rec(pos+1, h+1)
		}
	}
	if t == 1 {
		s := tctree.Schedule{0, L}
		return s, EstimateTrace(alg, entryBits, L, s).Total()
	}
	rec(1, 1)
	return bestSched, best
}

// ScheduleGap reports how far a schedule's modeled cost sits above the
// optimum with the same transition count: cost(s) / cost(optimal).
func ScheduleGap(alg *bilinear.Algorithm, entryBits, L int, s tctree.Schedule) float64 {
	_, opt := OptimalTraceSchedule(alg, entryBits, L, s.Transitions())
	return EstimateTrace(alg, entryBits, L, s).Total() / opt
}
