package counting

import (
	"testing"

	"repro/internal/bilinear"
	"repro/internal/tctree"
)

// The exhaustive optimum is a valid schedule and never beats itself.
func TestOptimalScheduleValid(t *testing.T) {
	alg := bilinear.Strassen()
	for _, c := range []struct{ L, t int }{{8, 2}, {12, 3}, {16, 3}, {20, 4}} {
		s, cost := OptimalTraceSchedule(alg, 1, c.L, c.t)
		if err := s.Validate(c.L); err != nil {
			t.Fatalf("L=%d t=%d: %v", c.L, c.t, err)
		}
		if s.Transitions() != c.t {
			t.Errorf("L=%d: optimum has %d transitions, want %d", c.L, s.Transitions(), c.t)
		}
		if cost <= 0 {
			t.Errorf("L=%d: nonpositive optimal cost", c.L)
		}
		if got := EstimateTrace(alg, 1, c.L, s).Total(); got != cost {
			t.Errorf("L=%d: reported optimum %v != re-evaluated %v", c.L, cost, got)
		}
	}
}

// The paper's geometric rule is near-optimal: within 25% of the
// exhaustive optimum at matched transition counts, and strictly better
// than uniform (which in turn beats nothing-in-between pathologies).
func TestGeometricNearOptimal(t *testing.T) {
	alg := bilinear.Strassen()
	gamma := alg.Params().Gamma
	for _, L := range []int{12, 16, 20} {
		geo := tctree.ConstantDepth(gamma, L, 4)
		tt := geo.Transitions()
		gapGeo := ScheduleGap(alg, 1, L, geo)
		gapUni := ScheduleGap(alg, 1, L, tctree.Uniform(L, tt))
		if gapGeo > 1.25 {
			t.Errorf("L=%d: geometric gap %.3f exceeds 1.25", L, gapGeo)
		}
		if gapGeo > gapUni {
			t.Errorf("L=%d: geometric gap %.3f worse than uniform %.3f", L, gapGeo, gapUni)
		}
		if gapGeo < 1 || gapUni < 1 {
			t.Errorf("L=%d: gap below 1 is impossible (geo %.3f uni %.3f)", L, gapGeo, gapUni)
		}
	}
}

// Degenerate t=1 case.
func TestOptimalSingleTransition(t *testing.T) {
	s, _ := OptimalTraceSchedule(bilinear.Strassen(), 1, 10, 1)
	if len(s) != 2 || s[0] != 0 || s[1] != 10 {
		t.Errorf("t=1 optimum %v, want [0 10]", s)
	}
}
