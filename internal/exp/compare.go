package exp

import (
	"fmt"
	"strings"
)

// Direction says which way a metric is supposed to move.
type Direction int

const (
	LowerIsBetter Direction = iota
	HigherIsBetter
)

func (d Direction) String() string {
	if d == HigherIsBetter {
		return "higher"
	}
	return "lower"
}

// MetricDirection classifies a metric by name. Throughput and speedup
// metrics go up; everything else the cells emit — seconds, latency
// quantiles, allocation, artifact bytes, gate counts — goes down.
func MetricDirection(name string) Direction {
	switch {
	case strings.HasSuffix(name, "_per_sec"),
		strings.HasSuffix(name, "rps"),
		strings.HasPrefix(name, "speedup"):
		return HigherIsBetter
	default:
		return LowerIsBetter
	}
}

// Regressed is the one regression predicate every gate in this repo
// applies: a lower-is-better metric regresses when it exceeds the
// baseline by more than tol (fractional), a higher-is-better metric
// when it falls more than tol below it. tcbench -smoke (parallel vs
// sequential build), tcload -smoke (rps vs the committed e27 row) and
// `tcexp compare` all route through here, so "regression" means the
// same inequality everywhere. A non-positive baseline can't anchor a
// relative comparison and never regresses.
func Regressed(dir Direction, baseline, got, tol float64) bool {
	if baseline <= 0 {
		return false
	}
	if dir == HigherIsBetter {
		return got < baseline*(1-tol)
	}
	return got > baseline*(1+tol)
}

// Delta is one metric's old-vs-new comparison. Ratio is new/old of the
// compared statistic (min for lower-is-better — the contention-free
// figure — mean for throughput, whose per-run means are the stabler
// statistic).
type Delta struct {
	Cell      string
	Metric    string
	Direction Direction
	Old, New  float64
	Ratio     float64
	Regressed bool
}

// Compare matches cells by key and evaluates every shared metric
// against the tolerance. It returns all deltas (for the report) plus
// warnings for cells or metrics present on one side only and for
// machine-metadata mismatches that make timing comparisons soft.
func Compare(old, new *Results, tol float64) (deltas []Delta, warnings []string) {
	if old.Machine.NumCPU != new.Machine.NumCPU || old.Machine.GoMaxProcs != new.Machine.GoMaxProcs {
		warnings = append(warnings, fmt.Sprintf(
			"machines differ: baseline GOMAXPROCS=%d/%d cpus, current GOMAXPROCS=%d/%d cpus — absolute timings are comparable only in direction",
			old.Machine.GoMaxProcs, old.Machine.NumCPU, new.Machine.GoMaxProcs, new.Machine.NumCPU))
	}
	oldCells := make(map[string]CellResult, len(old.Cells))
	for _, c := range old.Cells {
		oldCells[c.Key()] = c
	}
	seen := make(map[string]bool)
	for _, nc := range new.Cells {
		key := nc.Key()
		seen[key] = true
		oc, ok := oldCells[key]
		if !ok {
			warnings = append(warnings, fmt.Sprintf("cell %s: no baseline (new cell?)", key))
			continue
		}
		for _, name := range metricNames(nc.Metrics) {
			om, ok := oc.Metrics[name]
			if !ok {
				warnings = append(warnings, fmt.Sprintf("cell %s: metric %q has no baseline", key, name))
				continue
			}
			nm := nc.Metrics[name]
			dir := MetricDirection(name)
			ov, nv := om.Min, nm.Min
			if dir == HigherIsBetter {
				ov, nv = om.Mean, nm.Mean
			}
			d := Delta{
				Cell: key, Metric: name, Direction: dir,
				Old: ov, New: nv,
				Regressed: Regressed(dir, ov, nv, tol),
			}
			if ov != 0 {
				d.Ratio = nv / ov
			}
			deltas = append(deltas, d)
		}
		for _, name := range metricNames(oc.Metrics) {
			if _, ok := nc.Metrics[name]; !ok {
				warnings = append(warnings, fmt.Sprintf("cell %s: baseline metric %q missing from new run", key, name))
			}
		}
	}
	for _, oc := range old.Cells {
		if !seen[oc.Key()] {
			warnings = append(warnings, fmt.Sprintf("cell %s: in baseline but not in new run", oc.Key()))
		}
	}
	return deltas, warnings
}

// Regressions filters the deltas that tripped the tolerance.
func Regressions(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}

// CompareReport renders the deltas as an aligned text table, worst
// ratio first within each verdict class.
func CompareReport(deltas []Delta, tol float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %-22s %-7s %12s %12s %8s  %s\n",
		"cell", "metric", "want", "baseline", "current", "ratio", "verdict")
	for _, d := range deltas {
		verdict := "ok"
		if d.Regressed {
			verdict = fmt.Sprintf("REGRESSED (>%g%% tolerance)", tol*100)
		}
		fmt.Fprintf(&b, "%-18s %-22s %-7s %12s %12s %7.2fx  %s\n",
			d.Cell, d.Metric, d.Direction.String(), fnum(d.Old), fnum(d.New), d.Ratio, verdict)
	}
	return b.String()
}
