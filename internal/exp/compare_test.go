package exp

import (
	"strings"
	"testing"
)

// doubled returns a deep copy of the fixture with one lower-is-better
// metric (e24/n8/w2 build_sec) doubled and one higher-is-better metric
// (e27/n8/w2 rps) halved — both 2x moves in the bad direction.
func regressedFixture() *Results {
	r := fixtureResults()
	cells := make([]CellResult, len(r.Cells))
	for i, c := range r.Cells {
		m := make(map[string]Metric, len(c.Metrics))
		for k, v := range c.Metrics {
			s := append([]float64(nil), v.Samples...)
			m[k] = Metric{Mean: v.Mean, Std: v.Std, Min: v.Min, Samples: s}
		}
		c.Metrics = m
		cells[i] = c
	}
	r.Cells = cells
	scale := func(key, metric string, f float64) {
		for i := range r.Cells {
			if r.Cells[i].Key() != key {
				continue
			}
			m := r.Cells[i].Metrics[metric]
			m.Mean *= f
			m.Std *= f
			m.Min *= f
			for j := range m.Samples {
				m.Samples[j] *= f
			}
			r.Cells[i].Metrics[metric] = m
		}
	}
	scale("e24/n8/w2", "build_sec", 2)
	scale("e27/n8/w2", "rps", 0.5)
	return r
}

// TestCompareSelf: identical runs never regress, at any tolerance.
func TestCompareSelf(t *testing.T) {
	old := fixtureResults()
	deltas, warnings := Compare(old, fixtureResults(), 0)
	if len(warnings) != 0 {
		t.Errorf("unexpected warnings: %v", warnings)
	}
	if reg := Regressions(deltas); len(reg) != 0 {
		t.Errorf("self-compare regressed: %+v", reg)
	}
	for _, d := range deltas {
		if d.Ratio != 1 {
			t.Errorf("%s/%s: ratio %g, want 1", d.Cell, d.Metric, d.Ratio)
		}
	}
}

// TestCompareSyntheticRegression is the gate's core promise: a 2x move
// in the bad direction — slower build, halved throughput — trips the
// gate in both metric directions, and only the doctored metrics trip.
// (At tol 0.4: build_sec 2x = +100% > 40%; rps halved = -50% > 40%.)
func TestCompareSyntheticRegression(t *testing.T) {
	deltas, _ := Compare(fixtureResults(), regressedFixture(), 0.4)
	reg := Regressions(deltas)
	want := map[string]bool{
		"e24/n8/w2 build_sec": true,
		"e27/n8/w2 rps":       true,
	}
	got := map[string]bool{}
	for _, d := range reg {
		got[d.Cell+" "+d.Metric] = true
	}
	if len(got) != len(want) {
		t.Fatalf("regressions %v, want exactly %v", got, want)
	}
	for k := range want {
		if !got[k] {
			t.Errorf("missing expected regression %s", k)
		}
	}
	// The inequality is strict: a halved throughput sits exactly on the
	// 50% line and does NOT regress at tol 0.5, while the doubled build
	// time (+100%) still does.
	if reg := Regressions(mustDeltas(Compare(fixtureResults(), regressedFixture(), 0.5))); len(reg) != 1 {
		t.Errorf("tol 0.5: %d regressions, want 1 (build_sec only)", len(reg))
	}
	// A 2x regression survives only tolerances past its own delta.
	if reg := Regressions(mustDeltas(Compare(fixtureResults(), regressedFixture(), 1.5))); len(reg) != 0 {
		t.Errorf("tol 1.5: %d regressions, want 0", len(reg))
	}
}

func mustDeltas(d []Delta, _ []string) []Delta { return d }

// TestCompareWarnings: machine mismatch and one-sided cells/metrics are
// warnings, not silent drops.
func TestCompareWarnings(t *testing.T) {
	old := fixtureResults()
	new_ := fixtureResults()
	new_.Machine.NumCPU = 4
	new_.Machine.GoMaxProcs = 4
	new_.Cells = new_.Cells[:2] // drop e27 from the new run
	delete(new_.Cells[0].Metrics, "gates")
	deltas, warnings := Compare(old, new_, 0.5)
	wantSubstrings := []string{"machines differ", "e27/n8/w2", `metric "gates" missing`}
	all := strings.Join(warnings, "\n")
	for _, sub := range wantSubstrings {
		if !strings.Contains(all, sub) {
			t.Errorf("warnings missing %q:\n%s", sub, all)
		}
	}
	if reg := Regressions(deltas); len(reg) != 0 {
		t.Errorf("warnings leaked into regressions: %+v", reg)
	}
}
