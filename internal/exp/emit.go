package exp

import (
	"fmt"
	"sort"
	"strings"
)

// Markdown renders the results as one GitHub table per experiment,
// ready to paste into EXPERIMENTS.md: a row per (n, workers) cell, a
// mean±std column and a min column per metric.
func (r *Results) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n\n", r.Name)
	fmt.Fprintf(&b, "started %s · commit %s · go %s · GOMAXPROCS=%d NumCPU=%d (%s/%s)\n",
		r.Started, shortSHA(r.Machine.GitSHA), r.Machine.GoVersion,
		r.Machine.GoMaxProcs, r.Machine.NumCPU, r.Machine.OS, r.Machine.Arch)
	for _, exp := range r.experiments() {
		cells := r.cellsOf(exp)
		names := metricNames(cells[0].Metrics)
		fmt.Fprintf(&b, "\n## %s\n\n", exp)
		b.WriteString("| n | workers | repeats |")
		for _, name := range names {
			fmt.Fprintf(&b, " %s (mean±std) | %s (min) |", name, name)
		}
		b.WriteString("\n|---|---|---|")
		for range names {
			b.WriteString("---|---|")
		}
		b.WriteString("\n")
		for _, c := range cells {
			fmt.Fprintf(&b, "| %d | %d | %d |", c.N, c.Workers, c.Repeats)
			for _, name := range names {
				m := c.Metrics[name]
				fmt.Fprintf(&b, " %s ± %s | %s |", fnum(m.Mean), fnum(m.Std), fnum(m.Min))
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// CSV renders the results in long form — one line per (cell, metric) —
// the shape spreadsheet pivots and trend plots want.
func (r *Results) CSV() string {
	var b strings.Builder
	b.WriteString("experiment,n,workers,repeats,metric,mean,std,min\n")
	for _, c := range r.Cells {
		for _, name := range metricNames(c.Metrics) {
			m := c.Metrics[name]
			fmt.Fprintf(&b, "%s,%d,%d,%d,%s,%s,%s,%s\n",
				c.Experiment, c.N, c.Workers, c.Repeats, name,
				fnum(m.Mean), fnum(m.Std), fnum(m.Min))
		}
	}
	return b.String()
}

// experiments returns the distinct experiment ids in first-seen order.
func (r *Results) experiments() []string {
	var order []string
	seen := map[string]bool{}
	for _, c := range r.Cells {
		if !seen[c.Experiment] {
			seen[c.Experiment] = true
			order = append(order, c.Experiment)
		}
	}
	return order
}

// cellsOf returns the experiment's cells ordered by (n, workers).
func (r *Results) cellsOf(exp string) []CellResult {
	var cells []CellResult
	for _, c := range r.Cells {
		if c.Experiment == exp {
			cells = append(cells, c)
		}
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].N != cells[j].N {
			return cells[i].N < cells[j].N
		}
		return cells[i].Workers < cells[j].Workers
	})
	return cells
}

// fnum formats a measurement compactly without scientific surprises
// for the magnitudes the grids produce (seconds, MB, rps, µs).
func fnum(v float64) string {
	s := fmt.Sprintf("%.6g", v)
	return s
}

func shortSHA(sha string) string {
	if len(sha) > 12 {
		return sha[:12]
	}
	return sha
}
