package exp

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// fixtureResults is a fixed two-experiment Results value the golden
// emitter tests render. Everything in it is pinned — machine included —
// so the goldens are byte-stable across machines and commits.
func fixtureResults() *Results {
	return &Results{
		Name:    "golden",
		Started: "2026-08-07T12:00:00Z",
		Grid:    "exp/golden.json",
		Machine: Machine{
			GoMaxProcs: 1, NumCPU: 1, GoVersion: "go1.24.0",
			GitSHA: "dd01628160e3a1b2c3d4e5f60718293a4b5c6d7e",
			OS:     "linux", Arch: "amd64",
		},
		Cells: []CellResult{
			{
				Experiment: "e24", N: 16, Workers: 1, Repeats: 3, Warmup: 1,
				Metrics: map[string]Metric{
					"build_sec": {Mean: 0.125, Std: 0.0025, Min: 0.1225, Samples: []float64{0.1225, 0.125, 0.1275}},
					"gates":     {Mean: 181000, Std: 0, Min: 181000, Samples: []float64{181000, 181000, 181000}},
				},
			},
			{
				// Out of (n, workers) order on purpose: the Markdown
				// emitter must sort rows, the CSV preserves run order.
				Experiment: "e24", N: 8, Workers: 2, Repeats: 3, Warmup: 1,
				Metrics: map[string]Metric{
					"build_sec": {Mean: 0.008, Std: 0.0005, Min: 0.0075, Samples: []float64{0.0085, 0.008, 0.0075}},
					"gates":     {Mean: 22716, Std: 0, Min: 22716, Samples: []float64{22716, 22716, 22716}},
				},
			},
			{
				Experiment: "e27", N: 8, Workers: 2, Repeats: 3, Warmup: 1,
				Metrics: map[string]Metric{
					"rps":    {Mean: 150.5, Std: 12.25, Min: 140, Samples: []float64{140, 147.5, 164}},
					"p99_us": {Mean: 113110, Std: 1000, Min: 112110, Samples: []float64{112110, 113110, 114110}},
				},
			},
		},
	}
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/exp -update` to create it)", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from the golden file.\n--- got ---\n%s\n--- want ---\n%s\n(re-bless with `go test ./internal/exp -update` if the change is intended)",
			name, got, want)
	}
}

func TestMarkdownGolden(t *testing.T) {
	checkGolden(t, "golden.md", fixtureResults().Markdown())
}

func TestCSVGolden(t *testing.T) {
	checkGolden(t, "golden.csv", fixtureResults().CSV())
}
