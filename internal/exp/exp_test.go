package exp

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestStats(t *testing.T) {
	cases := []struct {
		name           string
		in             []float64
		mean, std, min float64
	}{
		{"empty", nil, 0, 0, 0},
		{"single", []float64{4.5}, 4.5, 0, 4.5},
		{"pair", []float64{2, 4}, 3, math.Sqrt2, 2},
		{"triple", []float64{1, 2, 3}, 2, 1, 1},
		{"constant", []float64{7, 7, 7, 7}, 7, 0, 7},
	}
	for _, c := range cases {
		mean, std, min := Stats(c.in)
		if math.Abs(mean-c.mean) > 1e-12 || math.Abs(std-c.std) > 1e-12 || min != c.min {
			t.Errorf("%s: Stats(%v) = (%g, %g, %g), want (%g, %g, %g)",
				c.name, c.in, mean, std, min, c.mean, c.std, c.min)
		}
	}
}

func TestGridExpand(t *testing.T) {
	g := &Grid{
		Name: "t", Repeats: 3, Warmup: 1, CellSeconds: 0.25,
		Cells: []CellSpec{
			{Experiment: "e24", N: []int{8, 16}, Workers: []int{1, 2}},
			{Experiment: "e26", N: []int{8}}, // empty workers axis -> w=1
		},
	}
	if err := g.validate(); err != nil {
		t.Fatal(err)
	}
	cells := g.Expand()
	wantKeys := []string{
		"e24/n8/w1", "e24/n8/w2", "e24/n16/w1", "e24/n16/w2", "e26/n8/w1",
	}
	if len(cells) != len(wantKeys) {
		t.Fatalf("Expand: %d cells, want %d", len(cells), len(wantKeys))
	}
	for i, c := range cells {
		if c.Key() != wantKeys[i] {
			t.Errorf("cell %d key %q, want %q", i, c.Key(), wantKeys[i])
		}
		if c.Repeats != 3 || c.Warmup != 1 || c.Seconds != 0.25 {
			t.Errorf("cell %s did not inherit grid defaults: %+v", c.Key(), c)
		}
	}
}

func TestGridOverrides(t *testing.T) {
	w := 0
	g := &Grid{
		Name: "t", Repeats: 3, Warmup: 2,
		Cells: []CellSpec{
			{Experiment: "e23", N: []int{8}, Repeats: 5, Warmup: &w},
		},
	}
	if err := g.validate(); err != nil {
		t.Fatal(err)
	}
	c := g.Expand()[0]
	if c.Repeats != 5 || c.Warmup != 0 {
		t.Errorf("per-spec overrides ignored: repeats=%d warmup=%d, want 5, 0", c.Repeats, c.Warmup)
	}
}

func TestGridValidateRejects(t *testing.T) {
	bad := []Grid{
		{Repeats: 3, Cells: []CellSpec{{Experiment: "e24", N: []int{8}}}},            // no name
		{Name: "t", Repeats: 1, Cells: []CellSpec{{Experiment: "e24", N: []int{8}}}}, // repeats < 2
		{Name: "t", Cells: []CellSpec{{Experiment: "e99", N: []int{8}}}},             // unknown experiment
		{Name: "t", Cells: []CellSpec{{Experiment: "e24"}}},                          // empty n axis
		{Name: "t", Cells: []CellSpec{{Experiment: "e24", N: []int{0}}}},             // bad n
		{Name: "t", Cells: []CellSpec{{Experiment: "e24", N: []int{8}, Workers: []int{0}}}},
		{Name: "t"}, // no cells
	}
	for i := range bad {
		if err := bad[i].validate(); err == nil {
			t.Errorf("grid %d: validate accepted an invalid grid: %+v", i, bad[i])
		}
	}
}

func TestLoadGridDefaults(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.json")
	spec := `{"name": "d", "cells": [{"experiment": "e24", "n": [8]}]}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := LoadGrid(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.Repeats != 3 || g.CellSeconds != 0.5 {
		t.Errorf("defaults not applied: repeats=%d cell_seconds=%g, want 3, 0.5", g.Repeats, g.CellSeconds)
	}
}

func TestMetricDirection(t *testing.T) {
	higher := []string{"samples_per_sec", "rps", "speedup_load_vs_build"}
	lower := []string{"build_sec", "p99_us", "alloc_mb", "mallocs", "gates", "bytes", "energy_gates", "mean_batch"}
	for _, n := range higher {
		if MetricDirection(n) != HigherIsBetter {
			t.Errorf("MetricDirection(%q) = lower, want higher", n)
		}
	}
	for _, n := range lower {
		if MetricDirection(n) != LowerIsBetter {
			t.Errorf("MetricDirection(%q) = higher, want lower", n)
		}
	}
}

func TestRegressed(t *testing.T) {
	cases := []struct {
		dir            Direction
		base, got, tol float64
		want           bool
	}{
		{LowerIsBetter, 1.0, 1.49, 0.5, false}, // within tolerance
		{LowerIsBetter, 1.0, 1.51, 0.5, true},  // beyond it
		{LowerIsBetter, 1.0, 0.5, 0.5, false},  // improvement
		{HigherIsBetter, 100, 51, 0.5, false},
		{HigherIsBetter, 100, 49, 0.5, true},
		{HigherIsBetter, 100, 200, 0.5, false},
		{LowerIsBetter, 0, 1e9, 0.5, false}, // no baseline anchor
		{HigherIsBetter, -1, 0, 0.5, false},
	}
	for i, c := range cases {
		if got := Regressed(c.dir, c.base, c.got, c.tol); got != c.want {
			t.Errorf("case %d: Regressed(%v, %g, %g, %g) = %v, want %v",
				i, c.dir, c.base, c.got, c.tol, got, c.want)
		}
	}
}

func TestWellFormedSHA(t *testing.T) {
	good := []string{"unknown", "dd01628", "dd01628160e3a1b2c3d4e5f60718293a4b5c6d7e"}
	bad := []string{"", "xyz", "DD01628", "dd0162", "dd01628160e3a1b2c3d4e5f60718293a4b5c6d7e0"}
	for _, s := range good {
		if !WellFormedSHA(s) {
			t.Errorf("WellFormedSHA(%q) = false, want true", s)
		}
	}
	for _, s := range bad {
		if WellFormedSHA(s) {
			t.Errorf("WellFormedSHA(%q) = true, want false", s)
		}
	}
}
