// Package exp is the reproducible experiment-grid runner behind
// cmd/tcexp (see DESIGN.md "Experiment grid and regression tracking").
//
// A grid is a small JSON file naming the axes to sweep: which
// experiments (the measured subset e23–e27 of EXPERIMENTS.md), which
// problem sizes N, which worker/shard counts, how many repeats, and how
// many leading warmup runs to discard. The runner executes every cell
// sample in a fresh subprocess (`tcbench -cell`), so no run inherits a
// warmed allocator, a populated page cache entry, or a grown heap from
// its predecessor, aggregates the samples into mean/std/min, and writes
// a timestamped results directory with the machine metadata needed to
// interpret the numbers later (GOMAXPROCS, NumCPU, go version, git
// SHA). Compare diffs two such directories and reports every tracked
// metric that regressed beyond a tolerance — the arithmetic every CI
// regression gate in this repo shares (see Regressed).
package exp

import (
	"encoding/json"
	"fmt"
	"os"
)

// Grid is the parsed experiment-grid spec. Repeats/Warmup/CellSeconds
// are defaults every cell inherits unless it overrides them.
type Grid struct {
	// Name labels the results directory (`<name>-<timestamp>`).
	Name string `json:"name"`
	// Repeats is the number of measured samples per cell, after the
	// warmup discards. Must be >= 2 so std is defined.
	Repeats int `json:"repeats"`
	// Warmup runs execute exactly like measured ones but are discarded:
	// they absorb the first-touch costs (binary page-in, disk cache
	// population) that would otherwise pollute sample 0.
	Warmup int `json:"warmup"`
	// CellSeconds is the measurement budget handed to each subprocess
	// run for throughput-style cells (e23/e25/e27 loops).
	CellSeconds float64 `json:"cell_seconds"`
	// Cells are the axis specs, expanded by Expand.
	Cells []CellSpec `json:"cells"`
}

// CellSpec is one line of the grid: an experiment swept over the cross
// product of its N and Workers axes.
type CellSpec struct {
	Experiment string `json:"experiment"`
	N          []int  `json:"n"`
	Workers    []int  `json:"workers"`
	Repeats    int    `json:"repeats,omitempty"`
	Warmup     *int   `json:"warmup,omitempty"`
}

// Cell is one fully expanded grid point.
type Cell struct {
	Experiment string  `json:"experiment"`
	N          int     `json:"n"`
	Workers    int     `json:"workers"`
	Repeats    int     `json:"repeats"`
	Warmup     int     `json:"warmup"`
	Seconds    float64 `json:"seconds,omitempty"`
}

// Key identifies a cell across runs — compare matches on it.
func (c Cell) Key() string {
	return fmt.Sprintf("%s/n%d/w%d", c.Experiment, c.N, c.Workers)
}

// Experiments the runner knows how to execute in a cell subprocess.
// These are the measured (wall-clock) experiments; e1–e22 are
// table/model reproductions with no timing content to track.
var knownExperiments = map[string]bool{
	"e23": true, "e24": true, "e25": true, "e26": true, "e27": true,
}

// LoadGrid reads and validates a grid spec file.
func LoadGrid(path string) (*Grid, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var g Grid
	if err := json.Unmarshal(data, &g); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if err := g.validate(); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &g, nil
}

func (g *Grid) validate() error {
	if g.Name == "" {
		return fmt.Errorf("grid has no name")
	}
	if g.Repeats == 0 {
		g.Repeats = 3
	}
	if g.Repeats < 2 {
		return fmt.Errorf("repeats %d < 2: std needs at least two samples", g.Repeats)
	}
	if g.Warmup < 0 {
		return fmt.Errorf("negative warmup %d", g.Warmup)
	}
	if g.CellSeconds == 0 {
		g.CellSeconds = 0.5
	}
	if g.CellSeconds < 0 {
		return fmt.Errorf("negative cell_seconds %g", g.CellSeconds)
	}
	if len(g.Cells) == 0 {
		return fmt.Errorf("grid has no cells")
	}
	for i, cs := range g.Cells {
		if !knownExperiments[cs.Experiment] {
			return fmt.Errorf("cell %d: unknown experiment %q (want e23..e27)", i, cs.Experiment)
		}
		if len(cs.N) == 0 {
			return fmt.Errorf("cell %d (%s): empty n axis", i, cs.Experiment)
		}
		for _, n := range cs.N {
			if n < 1 {
				return fmt.Errorf("cell %d (%s): bad n %d", i, cs.Experiment, n)
			}
		}
		for _, w := range cs.Workers {
			if w < 1 {
				return fmt.Errorf("cell %d (%s): bad workers %d", i, cs.Experiment, w)
			}
		}
		if cs.Repeats == 1 {
			return fmt.Errorf("cell %d (%s): repeats 1 < 2", i, cs.Experiment)
		}
	}
	return nil
}

// Expand flattens the grid into its cells: the cross product of each
// spec's N and Workers axes, with per-spec repeat/warmup overrides
// applied. An empty workers axis means workers=1.
func (g *Grid) Expand() []Cell {
	var cells []Cell
	for _, cs := range g.Cells {
		workers := cs.Workers
		if len(workers) == 0 {
			workers = []int{1}
		}
		repeats := g.Repeats
		if cs.Repeats > 0 {
			repeats = cs.Repeats
		}
		warmup := g.Warmup
		if cs.Warmup != nil {
			warmup = *cs.Warmup
		}
		for _, n := range cs.N {
			for _, w := range workers {
				cells = append(cells, Cell{
					Experiment: cs.Experiment, N: n, Workers: w,
					Repeats: repeats, Warmup: warmup, Seconds: g.CellSeconds,
				})
			}
		}
	}
	return cells
}
