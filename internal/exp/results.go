package exp

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"sync"
	"time"
)

// Machine records the environment a results directory was measured on —
// the metadata without which a wall-clock number is uninterpretable
// across PRs (a 1-core container and a 4-core hosted runner disagree on
// every parallel row for reasons that have nothing to do with the code).
type Machine struct {
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	GoVersion  string `json:"go_version"`
	GitSHA     string `json:"git_sha"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
}

// CurrentMachine captures the running process's environment.
func CurrentMachine() Machine {
	return Machine{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		GitSHA:     GitSHA(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
	}
}

var (
	gitSHAOnce sync.Once
	gitSHAVal  string
)

// GitSHA returns the current commit hash, or "unknown" outside a git
// checkout (an extracted release tarball, a stripped CI cache). The
// value is cached: the answer cannot change within one process.
func GitSHA() string {
	gitSHAOnce.Do(func() {
		out, err := exec.Command("git", "rev-parse", "HEAD").Output()
		sha := strings.TrimSpace(string(out))
		if err != nil || !gitSHARe.MatchString(sha) {
			gitSHAVal = "unknown"
			return
		}
		gitSHAVal = sha
	})
	return gitSHAVal
}

var gitSHARe = regexp.MustCompile(`^[0-9a-f]{7,40}$`)

// WellFormedSHA reports whether s looks like a git object name (or the
// explicit "unknown" marker GitSHA degrades to). Schema tests use it.
func WellFormedSHA(s string) bool {
	return s == "unknown" || gitSHARe.MatchString(s)
}

// Metric is one aggregated measurement: Stats over the post-warmup
// samples, with the samples themselves kept so a later reader can
// re-derive any other statistic.
type Metric struct {
	Mean    float64   `json:"mean"`
	Std     float64   `json:"std"`
	Min     float64   `json:"min"`
	Samples []float64 `json:"samples"`
}

// CellResult is one grid point's aggregated metrics.
type CellResult struct {
	Experiment string            `json:"experiment"`
	N          int               `json:"n"`
	Workers    int               `json:"workers"`
	Repeats    int               `json:"repeats"`
	Warmup     int               `json:"warmup"`
	Metrics    map[string]Metric `json:"metrics"`
}

// Key matches CellResults across runs; it mirrors Cell.Key.
func (c CellResult) Key() string {
	return fmt.Sprintf("%s/n%d/w%d", c.Experiment, c.N, c.Workers)
}

// Results is the content of one results directory (results.json).
type Results struct {
	Name    string       `json:"name"`
	Started string       `json:"started"` // RFC 3339
	Grid    string       `json:"grid"`    // path of the grid spec this ran
	Machine Machine      `json:"machine"`
	Cells   []CellResult `json:"cells"`
}

const resultsFile = "results.json"

// WriteDir materializes the results as a timestamped directory
// `<name>-<stamp>` under parent — results.json (machine-read: compare,
// schema tests), results.md (paste into EXPERIMENTS.md), results.csv
// (spreadsheets, trend plots) — and repoints the `latest` symlink at
// it, so scripts can address "the run that just happened" without
// parsing timestamps. Returns the directory path.
func (r *Results) WriteDir(parent string, now time.Time) (string, error) {
	stamp := now.UTC().Format("20060102-150405")
	dir := filepath.Join(parent, fmt.Sprintf("%s-%s", r.Name, stamp))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(filepath.Join(dir, resultsFile), append(out, '\n'), 0o644); err != nil {
		return "", err
	}
	if err := os.WriteFile(filepath.Join(dir, "results.md"), []byte(r.Markdown()), 0o644); err != nil {
		return "", err
	}
	if err := os.WriteFile(filepath.Join(dir, "results.csv"), []byte(r.CSV()), 0o644); err != nil {
		return "", err
	}
	latest := filepath.Join(parent, "latest")
	_ = os.Remove(latest)
	// Relative target so the parent directory can be moved or archived
	// wholesale; a failed symlink (exotic filesystems) is not fatal.
	_ = os.Symlink(filepath.Base(dir), latest)
	return dir, nil
}

// LoadResults reads a results directory (or a results.json path
// directly, or a `latest` symlink to either).
func LoadResults(path string) (*Results, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if fi.IsDir() {
		path = filepath.Join(path, resultsFile)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Results
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &r, nil
}
