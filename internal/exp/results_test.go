package exp

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// fakeRunner returns deterministic metrics whose value encodes the
// per-cell run index, so tests can see exactly which runs were kept.
// Run 0 of every cell reports a poisoned 1000.0 — if warmup discard
// breaks, the samples (and the min) give it away immediately.
type fakeRunner struct {
	calls map[string]int
}

func (f *fakeRunner) RunCell(_ context.Context, c Cell) (map[string]float64, error) {
	if f.calls == nil {
		f.calls = make(map[string]int)
	}
	run := f.calls[c.Key()]
	f.calls[c.Key()]++
	v := 1000.0 // the warmup run: cold-start pollution a real cell would show
	if run > 0 {
		v = 1.0 + 0.1*float64(run)
	}
	return map[string]float64{
		"build_sec": v,
		"rps":       100 * float64(c.Workers),
	}, nil
}

func testGrid(t *testing.T) *Grid {
	t.Helper()
	g := &Grid{
		Name: "schema", Repeats: 3, Warmup: 1, CellSeconds: 0.1,
		Cells: []CellSpec{
			{Experiment: "e24", N: []int{8}, Workers: []int{1, 2}},
		},
	}
	if err := g.validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

// TestResultsDirSchema is the results-directory contract: a grid run
// written with WriteDir and read back with LoadResults has >= 2 repeats
// per cell, a std and full sample list for every metric, non-empty
// machine metadata, and a well-formed git SHA.
func TestResultsDirSchema(t *testing.T) {
	g := testGrid(t)
	res, err := Run(context.Background(), g, "grid.json", &fakeRunner{}, nil)
	if err != nil {
		t.Fatal(err)
	}

	parent := t.TempDir()
	now := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	dir, err := res.WriteDir(parent, now)
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(parent, "schema-20260807-120000"); dir != want {
		t.Errorf("results dir %q, want %q", dir, want)
	}
	for _, name := range []string{"results.json", "results.md", "results.csv"} {
		if fi, err := os.Stat(filepath.Join(dir, name)); err != nil || fi.Size() == 0 {
			t.Errorf("%s: missing or empty (err=%v)", name, err)
		}
	}

	got, err := LoadResults(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "schema" || got.Grid != "grid.json" {
		t.Errorf("round trip lost identity: name=%q grid=%q", got.Name, got.Grid)
	}
	if _, err := time.Parse(time.RFC3339, got.Started); err != nil {
		t.Errorf("started %q is not RFC 3339: %v", got.Started, err)
	}

	m := got.Machine
	if m.GoMaxProcs < 1 || m.NumCPU < 1 || m.GoVersion == "" || m.OS == "" || m.Arch == "" {
		t.Errorf("machine metadata incomplete: %+v", m)
	}
	if !WellFormedSHA(m.GitSHA) {
		t.Errorf("machine git SHA %q is not well-formed", m.GitSHA)
	}

	if len(got.Cells) != 2 {
		t.Fatalf("%d cells, want 2", len(got.Cells))
	}
	for _, c := range got.Cells {
		if c.Repeats < 2 {
			t.Errorf("cell %s: repeats %d < 2 (std undefined)", c.Key(), c.Repeats)
		}
		if len(c.Metrics) == 0 {
			t.Errorf("cell %s: no metrics", c.Key())
		}
		for name, met := range c.Metrics {
			if len(met.Samples) != c.Repeats {
				t.Errorf("cell %s metric %s: %d samples, want %d (one per measured repeat)",
					c.Key(), name, len(met.Samples), c.Repeats)
			}
			for _, s := range met.Samples {
				if s >= 1000 {
					t.Errorf("cell %s metric %s: warmup sample %g leaked into the measured set",
						c.Key(), name, s)
				}
			}
			mean, std, min := Stats(met.Samples)
			if met.Mean != mean || met.Std != std || met.Min != min {
				t.Errorf("cell %s metric %s: stored (%g, %g, %g) != Stats(samples) (%g, %g, %g)",
					c.Key(), name, met.Mean, met.Std, met.Min, mean, std, min)
			}
		}
	}
}

// TestLatestSymlink: WriteDir repoints `latest` at the newest run, and
// LoadResults follows it.
func TestLatestSymlink(t *testing.T) {
	g := testGrid(t)
	res, err := Run(context.Background(), g, "grid.json", &fakeRunner{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	parent := t.TempDir()
	if _, err := res.WriteDir(parent, time.Date(2026, 8, 7, 11, 0, 0, 0, time.UTC)); err != nil {
		t.Fatal(err)
	}
	dir2, err := res.WriteDir(parent, time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC))
	if err != nil {
		t.Fatal(err)
	}
	target, err := os.Readlink(filepath.Join(parent, "latest"))
	if err != nil {
		t.Skipf("symlinks unavailable: %v", err)
	}
	if target != filepath.Base(dir2) {
		t.Errorf("latest -> %q, want %q", target, filepath.Base(dir2))
	}
	if _, err := LoadResults(filepath.Join(parent, "latest")); err != nil {
		t.Errorf("LoadResults(latest): %v", err)
	}
}

// TestRunMissingMetric: a cell whose runs disagree on the metric set is
// an error, not a silent short sample list.
func TestRunMissingMetric(t *testing.T) {
	g := testGrid(t)
	r := &flakyMetricsRunner{}
	if _, err := Run(context.Background(), g, "grid.json", r, nil); err == nil {
		t.Error("Run accepted a metric present in only some runs")
	}
}

type flakyMetricsRunner struct{ n int }

func (f *flakyMetricsRunner) RunCell(_ context.Context, c Cell) (map[string]float64, error) {
	f.n++
	m := map[string]float64{"build_sec": 1}
	if f.n%2 == 0 {
		m["rps"] = 100 // appears in half the runs only
	}
	return m, nil
}
