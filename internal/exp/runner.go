package exp

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"time"
)

// A Runner executes one cell sample and returns its scalar metrics.
// The production implementation is SubprocessRunner; tests inject
// deterministic fakes.
type Runner interface {
	RunCell(ctx context.Context, c Cell) (map[string]float64, error)
}

// SubprocessRunner executes each sample as `<Bin> -cell <json>` in a
// fresh process. Process-per-sample is the point of the design: every
// sample starts from a cold allocator, an empty page-cache footprint
// and an unscheduled runtime, so the std column measures the machine,
// not the accumulated state of sample i-1.
type SubprocessRunner struct {
	Bin string // tcbench binary (see BuildTCBench)
	Dir string // working directory for the subprocess
	// Log, when non-nil, receives the subprocess's stderr (progress
	// chatter); stdout is reserved for the JSON result line.
	Log func(string)
}

// RunCell runs one sample. The subprocess prints exactly one JSON
// object on stdout: {"metrics": {...}}.
func (r *SubprocessRunner) RunCell(ctx context.Context, c Cell) (map[string]float64, error) {
	spec, err := json.Marshal(c)
	if err != nil {
		return nil, err
	}
	cmd := exec.CommandContext(ctx, r.Bin, "-cell", string(spec))
	cmd.Dir = r.Dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("cell %s: %v\nstderr:\n%s", c.Key(), err, stderr.String())
	}
	if r.Log != nil && stderr.Len() > 0 {
		sc := bufio.NewScanner(&stderr)
		for sc.Scan() {
			r.Log("  " + sc.Text())
		}
	}
	var out struct {
		Metrics map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &out); err != nil {
		return nil, fmt.Errorf("cell %s: bad subprocess output %q: %v", c.Key(), stdout.String(), err)
	}
	if len(out.Metrics) == 0 {
		return nil, fmt.Errorf("cell %s: subprocess returned no metrics", c.Key())
	}
	return out.Metrics, nil
}

// BuildTCBench compiles cmd/tcbench once into dir and returns the
// binary path — one compile amortized over every cell sample, instead
// of `go run`'s per-invocation link-and-copy.
func BuildTCBench(ctx context.Context, repoRoot, dir string) (string, error) {
	bin := filepath.Join(dir, "tcbench")
	cmd := exec.CommandContext(ctx, "go", "build", "-o", bin, "./cmd/tcbench")
	cmd.Dir = repoRoot
	if out, err := cmd.CombinedOutput(); err != nil {
		return "", fmt.Errorf("go build ./cmd/tcbench: %v\n%s", err, out)
	}
	return bin, nil
}

// Run executes every cell of the grid — warmup discards first, then
// the measured repeats — and aggregates per-metric Stats. Progress
// lines go through log (may be nil).
func Run(ctx context.Context, g *Grid, gridPath string, r Runner, log func(string)) (*Results, error) {
	if log == nil {
		log = func(string) {}
	}
	cells := g.Expand()
	res := &Results{
		Name:    g.Name,
		Started: time.Now().UTC().Format(time.RFC3339),
		Grid:    gridPath,
		Machine: CurrentMachine(),
	}
	for i, cell := range cells {
		log(fmt.Sprintf("[%d/%d] %s: %d warmup + %d measured runs",
			i+1, len(cells), cell.Key(), cell.Warmup, cell.Repeats))
		samples := make(map[string][]float64)
		for run := 0; run < cell.Warmup+cell.Repeats; run++ {
			m, err := r.RunCell(ctx, cell)
			if err != nil {
				return nil, err
			}
			if run < cell.Warmup {
				continue
			}
			for k, v := range m {
				samples[k] = append(samples[k], v)
			}
		}
		metrics := make(map[string]Metric, len(samples))
		for k, vs := range samples {
			if len(vs) != cell.Repeats {
				return nil, fmt.Errorf("cell %s: metric %q present in %d/%d runs",
					cell.Key(), k, len(vs), cell.Repeats)
			}
			mean, std, min := Stats(vs)
			metrics[k] = Metric{Mean: mean, Std: std, Min: min, Samples: vs}
		}
		res.Cells = append(res.Cells, CellResult{
			Experiment: cell.Experiment, N: cell.N, Workers: cell.Workers,
			Repeats: cell.Repeats, Warmup: cell.Warmup, Metrics: metrics,
		})
	}
	return res, nil
}

// metricNames returns a cell's metric names, sorted, so every emitter
// and comparison walks them in one deterministic order.
func metricNames(m map[string]Metric) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// repoRootFromWd walks up from the working directory to the go.mod
// root, so tcexp works from any subdirectory of the checkout.
func RepoRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
