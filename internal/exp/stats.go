package exp

import "math"

// Stats reduces one metric's samples to the three figures every table
// in this repo reports: mean (the headline), std (the spread — sample
// standard deviation, n-1 denominator), and min (the contention-free
// figure, the best the hardware did). A single sample has std 0.
func Stats(samples []float64) (mean, std, min float64) {
	if len(samples) == 0 {
		return 0, 0, 0
	}
	min = samples[0]
	for _, s := range samples {
		mean += s
		if s < min {
			min = s
		}
	}
	mean /= float64(len(samples))
	if len(samples) < 2 {
		return mean, 0, min
	}
	var ss float64
	for _, s := range samples {
		d := s - mean
		ss += d * d
	}
	std = math.Sqrt(ss / float64(len(samples)-1))
	return mean, std, min
}
