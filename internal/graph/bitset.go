package graph

import (
	"fmt"
	"math/bits"

	"repro/internal/matrix"
)

// Bitset is a mutable adjacency bitset for one simple undirected graph
// on vertices 0..N-1: row u is a []uint64 bit plane of u's neighbors.
// It is the per-tenant session state of the streaming service and —
// via its popcount Triangles — the scalar recount oracle the circuit
// path is differentially checked against. Word-level AND+popcount
// makes the oracle O(N²·N/64), cheap enough to run on every screen.
//
// Bitset does no locking; the caller serializes access.
type Bitset struct {
	n     int
	words int      // words per row: ceil(n/64)
	rows  []uint64 // n*words, row-major
}

// NewBitset returns an empty graph on n vertices.
func NewBitset(n int) *Bitset {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	w := (n + 63) / 64
	return &Bitset{n: n, words: w, rows: make([]uint64, n*w)}
}

// N returns the vertex count.
func (b *Bitset) N() int { return b.n }

// Set sets the undirected edge {u, v} present (on=true) or absent and
// reports whether the graph changed. Self-loops and out-of-range
// vertices are rejected with an error, never a panic: edges arrive
// from untrusted network frames.
func (b *Bitset) Set(u, v int, on bool) (changed bool, err error) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return false, fmt.Errorf("graph: edge {%d,%d} out of range for n=%d", u, v, b.n)
	}
	if u == v {
		return false, fmt.Errorf("graph: self-loop at %d", u)
	}
	wu, mu := u*b.words+v/64, uint64(1)<<(v%64)
	wv, mv := v*b.words+u/64, uint64(1)<<(u%64)
	if on {
		changed = b.rows[wu]&mu == 0
		b.rows[wu] |= mu
		b.rows[wv] |= mv
	} else {
		changed = b.rows[wu]&mu != 0
		b.rows[wu] &^= mu
		b.rows[wv] &^= mv
	}
	return changed, nil
}

// Has reports whether {u, v} is an edge.
func (b *Bitset) Has(u, v int) bool {
	if u < 0 || u >= b.n || v < 0 || v >= b.n || u == v {
		return false
	}
	return b.rows[u*b.words+v/64]&(1<<(v%64)) != 0
}

// Edges returns |E|.
func (b *Bitset) Edges() int64 {
	var total int
	for _, w := range b.rows {
		total += bits.OnesCount64(w)
	}
	return int64(total / 2)
}

// Triangles counts triangles exactly: for each edge {u,v} with u<v,
// the common neighbors are popcount(row[u] AND row[v]); every triangle
// is counted once per edge, i.e. three times in total.
func (b *Bitset) Triangles() int64 {
	var triple int64
	for u := 0; u < b.n; u++ {
		ru := b.rows[u*b.words : (u+1)*b.words]
		for vw, w := range ru {
			for x := w; x != 0; x &= x - 1 {
				v := vw*64 + bits.TrailingZeros64(x)
				if v <= u {
					continue
				}
				rv := b.rows[v*b.words : (v+1)*b.words]
				for k := range ru {
					triple += int64(bits.OnesCount64(ru[k] & rv[k]))
				}
			}
		}
	}
	return triple / 3
}

// Matrix materializes the adjacency as the symmetric 0/1 matrix the
// count circuit's Assign expects.
func (b *Bitset) Matrix() *matrix.Matrix {
	m := matrix.New(b.n, b.n)
	for u := 0; u < b.n; u++ {
		row := b.rows[u*b.words : (u+1)*b.words]
		for vw, w := range row {
			for x := w; x != 0; x &= x - 1 {
				m.Set(u, vw*64+bits.TrailingZeros64(x), 1)
			}
		}
	}
	return m
}

// Clone returns an independent copy.
func (b *Bitset) Clone() *Bitset {
	c := &Bitset{n: b.n, words: b.words, rows: make([]uint64, len(b.rows))}
	copy(c.rows, b.rows)
	return c
}
