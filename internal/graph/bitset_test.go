package graph

import (
	"math/rand"
	"testing"
)

// A Bitset built by random insert/delete churn must agree with the
// enumeration Graph on edges, membership, and triangle count — the
// oracle-vs-oracle check that lets Bitset.Triangles serve as the
// recount oracle for the streaming service.
func TestBitsetMatchesGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 2, 5, 8, 63, 64, 65, 70} {
		b := NewBitset(n)
		g := New(n)
		ops := 4 * n * n
		for i := 0; i < ops; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				if _, err := b.Set(u, v, true); err == nil {
					t.Fatalf("n=%d: self-loop {%d,%d} accepted", n, u, v)
				}
				continue
			}
			on := rng.Intn(3) != 0 // bias toward insertion
			changed, err := b.Set(u, v, on)
			if err != nil {
				t.Fatalf("n=%d: Set(%d,%d,%v): %v", n, u, v, on, err)
			}
			if changed != (g.HasEdge(u, v) != on) {
				t.Fatalf("n=%d: Set(%d,%d,%v) changed=%v, graph had edge=%v",
					n, u, v, on, changed, g.HasEdge(u, v))
			}
			if on {
				g.AddEdge(u, v)
			} else {
				g.RemoveEdge(u, v)
			}
		}
		if b.Edges() != g.NumEdges() {
			t.Fatalf("n=%d: Edges=%d, graph says %d", n, b.Edges(), g.NumEdges())
		}
		if bt, gt := b.Triangles(), g.Triangles(); bt != gt {
			t.Fatalf("n=%d: Triangles=%d, graph says %d", n, bt, gt)
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if b.Has(u, v) != g.HasEdge(u, v) {
					t.Fatalf("n=%d: Has(%d,%d)=%v, graph says %v", n, u, v, b.Has(u, v), g.HasEdge(u, v))
				}
			}
		}
		fg, err := FromAdjacency(b.Matrix())
		if err != nil {
			t.Fatalf("n=%d: Matrix not a valid adjacency: %v", n, err)
		}
		if fg.Triangles() != g.Triangles() {
			t.Fatalf("n=%d: materialized matrix disagrees", n)
		}
	}
}

func TestBitsetBounds(t *testing.T) {
	b := NewBitset(4)
	for _, e := range [][2]int{{-1, 0}, {0, 4}, {4, 0}, {2, 2}} {
		if _, err := b.Set(e[0], e[1], true); err == nil {
			t.Fatalf("Set(%d,%d) accepted", e[0], e[1])
		}
		if b.Has(e[0], e[1]) {
			t.Fatalf("Has(%d,%d) true", e[0], e[1])
		}
	}
	if b.Edges() != 0 {
		t.Fatalf("rejected edges mutated the graph: %d edges", b.Edges())
	}
	c := b.Clone()
	if _, err := c.Set(0, 1, true); err != nil {
		t.Fatal(err)
	}
	if b.Has(0, 1) {
		t.Fatal("Clone aliases the original")
	}
}
