// Package graph is the social-network-analysis substrate of Section 5:
// simple undirected graphs, generators for synthetic social networks,
// exact triangle and wedge counting, and the global clustering
// coefficient used to pick the threshold τ for the trace circuit.
//
// The paper's motivating question is "does G have at least τ triangles?"
// with τ chosen as a function of the wedge count D ("usually they
// compute the total number of wedges D in O(N) time and set τ to some
// function of D").
package graph

import (
	"fmt"
	"math/rand"

	"repro/internal/bitio"
	"repro/internal/matrix"
)

// Graph is a simple undirected graph on vertices 0..N-1.
type Graph struct {
	N   int
	adj *matrix.Matrix // symmetric 0/1, zero diagonal
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	return &Graph{N: n, adj: matrix.New(n, n)}
}

// FromAdjacency wraps a symmetric 0/1 matrix with zero diagonal.
func FromAdjacency(adj *matrix.Matrix) (*Graph, error) {
	if adj.Rows != adj.Cols {
		return nil, fmt.Errorf("graph: adjacency must be square, got %dx%d", adj.Rows, adj.Cols)
	}
	if !adj.IsSymmetric() {
		return nil, fmt.Errorf("graph: adjacency must be symmetric")
	}
	for i := 0; i < adj.Rows; i++ {
		if adj.At(i, i) != 0 {
			return nil, fmt.Errorf("graph: self-loop at vertex %d", i)
		}
		for j := 0; j < adj.Cols; j++ {
			if v := adj.At(i, j); v != 0 && v != 1 {
				return nil, fmt.Errorf("graph: entry (%d,%d) = %d is not 0/1", i, j, v)
			}
		}
	}
	return &Graph{N: adj.Rows, adj: adj.Clone()}, nil
}

// AddEdge inserts the undirected edge {u, v}; self-loops are rejected.
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at %d", u))
	}
	g.adj.Set(u, v, 1)
	g.adj.Set(v, u, 1)
}

// RemoveEdge deletes the undirected edge {u, v} if present.
func (g *Graph) RemoveEdge(u, v int) {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at %d", u))
	}
	g.adj.Set(u, v, 0)
	g.adj.Set(v, u, 0)
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool { return u != v && g.adj.At(u, v) == 1 }

// Adjacency returns a copy of the adjacency matrix.
func (g *Graph) Adjacency() *matrix.Matrix { return g.adj.Clone() }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int64 {
	var m int64
	for i := 0; i < g.N; i++ {
		for j := i + 1; j < g.N; j++ {
			m += g.adj.At(i, j)
		}
	}
	return m
}

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int64 {
	var d int64
	for j := 0; j < g.N; j++ {
		d += g.adj.At(v, j)
	}
	return d
}

// Triangles counts triangles by direct enumeration over ordered triples
// (the Θ(N³) reference the naive circuit implements).
func (g *Graph) Triangles() int64 {
	var t int64
	for i := 0; i < g.N; i++ {
		for j := i + 1; j < g.N; j++ {
			if g.adj.At(i, j) == 0 {
				continue
			}
			for k := j + 1; k < g.N; k++ {
				if g.adj.At(i, k) == 1 && g.adj.At(j, k) == 1 {
					t++
				}
			}
		}
	}
	return t
}

// TrianglesViaTrace counts triangles as trace(A³)/6 (Section 2.3),
// cross-checking the enumeration path.
func (g *Graph) TrianglesViaTrace() int64 {
	return g.adj.TraceCube() / 6
}

// Wedges returns the number of length-2 paths: Σ_v C(deg(v), 2) — the
// quantity D the paper says is computed in O(N) time (given degrees) to
// pick τ.
func (g *Graph) Wedges() int64 {
	var w int64
	for v := 0; v < g.N; v++ {
		d := g.Degree(v)
		w = bitio.AddCheck(w, d*(d-1)/2)
	}
	return w
}

// ClusteringCoefficient returns the global clustering coefficient
// (transitivity) 3Δ/D, the fraction of wedges that close into
// triangles. Zero-wedge graphs report 0.
func (g *Graph) ClusteringCoefficient() float64 {
	w := g.Wedges()
	if w == 0 {
		return 0
	}
	return 3 * float64(g.Triangles()) / float64(w)
}

// TauForClustering returns the trace threshold τ = 6·ceil(cc·D/3) such
// that "trace(A³) >= τ" asks whether the global clustering coefficient
// is at least cc — the paper's recipe of scaling the wedge count.
func (g *Graph) TauForClustering(cc float64) int64 {
	d := g.Wedges()
	triangles := int64(float64(d) * cc / 3)
	if float64(triangles)*3 < float64(d)*cc {
		triangles++
	}
	return 6 * triangles
}

// ErdosRenyi samples G(n, p).
func ErdosRenyi(rng *rand.Rand, n int, p float64) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// PlantedCommunities samples a two-level benchmark graph in the spirit
// of the BTER model the paper cites (Seshadhri, Kolda, Pinar): vertices
// are split into `communities` equal blocks, with intra-block edge
// probability pIn and inter-block probability pOut. pIn >> pOut yields
// the high clustering coefficients the paper associates with community
// structure.
func PlantedCommunities(rng *rand.Rand, n, communities int, pIn, pOut float64) *Graph {
	if communities < 1 {
		panic(fmt.Sprintf("graph: need at least one community, got %d", communities))
	}
	g := New(n)
	block := func(v int) int { return v * communities / n }
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p := pOut
			if block(i) == block(j) {
				p = pIn
			}
			if rng.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// BarabasiAlbert samples a preferential-attachment graph: starting from
// a small seed clique, each new vertex attaches to m distinct existing
// vertices chosen with probability proportional to degree. The result
// has the heavy-tailed degree distribution typical of the social
// networks Section 5 discusses (hubs sit at the center of many wedges,
// driving the clustering-coefficient denominators).
func BarabasiAlbert(rng *rand.Rand, n, m int) *Graph {
	if m < 1 {
		panic(fmt.Sprintf("graph: BarabasiAlbert m=%d < 1", m))
	}
	g := New(n)
	seed := m + 1
	if seed > n {
		seed = n
	}
	// Seed clique and the degree-weighted endpoint pool.
	var pool []int
	for i := 0; i < seed; i++ {
		for j := i + 1; j < seed; j++ {
			g.AddEdge(i, j)
			pool = append(pool, i, j)
		}
	}
	for v := seed; v < n; v++ {
		chosen := map[int]bool{}
		for len(chosen) < m {
			var u int
			if len(pool) == 0 {
				u = rng.Intn(v)
			} else {
				u = pool[rng.Intn(len(pool))]
			}
			if u != v {
				chosen[u] = true
			}
		}
		for u := range chosen {
			g.AddEdge(v, u)
			pool = append(pool, v, u)
		}
	}
	return g
}

// MaxDegree returns the largest vertex degree.
func (g *Graph) MaxDegree() int64 {
	var mx int64
	for v := 0; v < g.N; v++ {
		if d := g.Degree(v); d > mx {
			mx = d
		}
	}
	return mx
}

// Complete returns K_n.
func Complete(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

// Cycle returns the n-cycle (triangle-free for n > 3).
func Cycle(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}
