package graph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

func TestCompleteGraphCounts(t *testing.T) {
	for _, n := range []int{3, 4, 5, 8} {
		g := Complete(n)
		nn := int64(n)
		if got, want := g.NumEdges(), nn*(nn-1)/2; got != want {
			t.Errorf("K%d edges = %d, want %d", n, got, want)
		}
		if got, want := g.Triangles(), nn*(nn-1)*(nn-2)/6; got != want {
			t.Errorf("K%d triangles = %d, want %d", n, got, want)
		}
		if cc := g.ClusteringCoefficient(); cc != 1 {
			t.Errorf("K%d clustering = %v, want 1", n, cc)
		}
	}
}

func TestCycleTriangleFree(t *testing.T) {
	for _, n := range []int{4, 5, 6, 10} {
		g := Cycle(n)
		if g.Triangles() != 0 {
			t.Errorf("C%d has %d triangles", n, g.Triangles())
		}
		if g.NumEdges() != int64(n) {
			t.Errorf("C%d edges = %d", n, g.NumEdges())
		}
		if g.Wedges() != int64(n) {
			t.Errorf("C%d wedges = %d, want %d", n, g.Wedges(), n)
		}
	}
	if Cycle(3).Triangles() != 1 {
		t.Error("C3 is a triangle")
	}
}

// Enumeration and trace counting agree on random graphs.
func TestTrianglesMatchTrace(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(15)
		g := ErdosRenyi(rng, n, rng.Float64())
		return g.Triangles() == g.TrianglesViaTrace()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDegreeSum(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := ErdosRenyi(rng, 20, 0.3)
	var sum int64
	for v := 0; v < g.N; v++ {
		sum += g.Degree(v)
	}
	if sum != 2*g.NumEdges() {
		t.Errorf("handshake lemma violated: Σdeg=%d, 2|E|=%d", sum, 2*g.NumEdges())
	}
}

func TestErdosRenyiDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := ErdosRenyi(rng, 60, 0.25)
	maxEdges := int64(60 * 59 / 2)
	density := float64(g.NumEdges()) / float64(maxEdges)
	if density < 0.15 || density > 0.35 {
		t.Errorf("G(60, .25) density = %v, implausible", density)
	}
	if g0 := ErdosRenyi(rng, 20, 0); g0.NumEdges() != 0 {
		t.Error("p=0 graph has edges")
	}
	if g1 := ErdosRenyi(rng, 20, 1); g1.NumEdges() != 190 {
		t.Error("p=1 graph is not complete")
	}
}

// Community structure raises the clustering coefficient, the Section 5
// premise (Orman et al.: high clustering implies community structure).
func TestPlantedCommunitiesClustering(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// Compare a community graph against an Erdős–Rényi graph of similar
	// density, averaged over several samples.
	var ccCom, ccER float64
	const trials = 5
	for i := 0; i < trials; i++ {
		com := PlantedCommunities(rng, 48, 6, 0.8, 0.02)
		den := float64(com.NumEdges()) / float64(48*47/2)
		er := ErdosRenyi(rng, 48, den)
		ccCom += com.ClusteringCoefficient()
		ccER += er.ClusteringCoefficient()
	}
	if ccCom <= ccER*2 {
		t.Errorf("community clustering %v not clearly above ER %v", ccCom/trials, ccER/trials)
	}
}

// τ selection: thresholding trace(A³) at TauForClustering(cc) answers
// "is the clustering coefficient at least cc".
func TestTauForClustering(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		g := ErdosRenyi(rng, 16, 0.2+0.6*rng.Float64())
		if g.Wedges() == 0 {
			continue
		}
		cc := g.ClusteringCoefficient()
		trace := g.Adjacency().TraceCube()
		for _, target := range []float64{cc * 0.5, cc * 0.99, cc * 1.01, cc * 2} {
			tau := g.TauForClustering(target)
			// trace >= tau should hold iff cc >= target (up to the
			// integer ceiling in tau).
			got := trace >= tau
			want := cc >= target
			if got != want {
				// The ceiling can flip exact-boundary cases; recheck.
				if target != cc {
					t.Errorf("trial %d: cc=%v target=%v tau=%d trace=%d: got %v want %v",
						trial, cc, target, tau, trace, got, want)
				}
			}
		}
	}
}

// Barabási–Albert: right edge count, hub-dominated degrees.
func TestBarabasiAlbert(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const n, m = 200, 3
	g := BarabasiAlbert(rng, n, m)
	seed := m + 1
	wantEdges := int64(seed*(seed-1)/2 + (n-seed)*m)
	if g.NumEdges() != wantEdges {
		t.Errorf("edges = %d, want %d", g.NumEdges(), wantEdges)
	}
	avg := 2 * float64(g.NumEdges()) / float64(n)
	if hub := float64(g.MaxDegree()); hub < 3*avg {
		t.Errorf("max degree %v not hub-like vs average %v", hub, avg)
	}
	// Every vertex participates (min degree >= m for non-seed vertices).
	for v := seed; v < n; v++ {
		if g.Degree(v) < int64(m) {
			t.Fatalf("vertex %d has degree %d < m", v, g.Degree(v))
		}
	}
}

func TestBarabasiAlbertSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	// n smaller than the seed clique degenerates gracefully.
	g := BarabasiAlbert(rng, 2, 3)
	if g.NumEdges() != 1 {
		t.Errorf("K2 expected, got %d edges", g.NumEdges())
	}
	defer func() {
		if recover() == nil {
			t.Error("m=0 did not panic")
		}
	}()
	BarabasiAlbert(rng, 5, 0)
}

func TestFromAdjacencyValidation(t *testing.T) {
	if _, err := FromAdjacency(matrix.New(2, 3)); err == nil {
		t.Error("non-square accepted")
	}
	asym := matrix.New(3, 3)
	asym.Set(0, 1, 1)
	if _, err := FromAdjacency(asym); err == nil {
		t.Error("asymmetric accepted")
	}
	loop := matrix.New(3, 3)
	loop.Set(1, 1, 1)
	if _, err := FromAdjacency(loop); err == nil {
		t.Error("self-loop accepted")
	}
	weighted := matrix.New(3, 3)
	weighted.Set(0, 1, 2)
	weighted.Set(1, 0, 2)
	if _, err := FromAdjacency(weighted); err == nil {
		t.Error("weighted accepted")
	}
	ok := matrix.New(3, 3)
	ok.Set(0, 1, 1)
	ok.Set(1, 0, 1)
	g, err := FromAdjacency(ok)
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) || g.HasEdge(0, 2) || g.HasEdge(1, 1) {
		t.Error("edges wrong after FromAdjacency")
	}
}

func TestAddEdgeSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("self-loop AddEdge did not panic")
		}
	}()
	New(3).AddEdge(1, 1)
}

// Adjacency returns a copy: mutating it does not corrupt the graph.
func TestAdjacencyIsCopy(t *testing.T) {
	g := Complete(4)
	adj := g.Adjacency()
	adj.Set(0, 1, 0)
	if !g.HasEdge(0, 1) {
		t.Error("Adjacency leaked internal state")
	}
}
