package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/serve"
)

// PostFrame sends one binary /v1/eval request and checks the reply bits
// against the sample's ground truth. The bool is the identity verdict;
// transport failures and non-200 statuses are errors.
func PostFrame(client *http.Client, baseURL string, sm *Sample) (bool, error) {
	resp, err := client.Post(baseURL+"/v1/eval", serve.FrameContentType, bytes.NewReader(sm.Frame))
	if err != nil {
		return false, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return false, err
	}
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("load: %s: status %d: %s", baseURL+"/v1/eval", resp.StatusCode, body)
	}
	out, err := serve.DecodeFrameResponse(body)
	if err != nil {
		return false, err
	}
	return sm.BitsEqual(out), nil
}

// PostJSON sends one JSON request to the pool's endpoint and checks the
// response value against the sample's ground truth.
func PostJSON(client *http.Client, baseURL string, p *Pool, sm *Sample) (bool, error) {
	resp, err := client.Post(baseURL+p.Path, "application/json", bytes.NewReader(sm.JSONBody))
	if err != nil {
		return false, err
	}
	var got map[string]json.RawMessage
	err = json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("load: %s: status %d err %v", baseURL+p.Path, resp.StatusCode, err)
	}
	var buf bytes.Buffer
	if err := json.Compact(&buf, got[p.RespKey]); err != nil {
		return false, err
	}
	return buf.String() == sm.WantJSON, nil
}
