package load

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"

	"repro/internal/graph"
	"repro/internal/serve"
	"repro/internal/stream"
)

// GraphStream is one tenant's update-traffic generator for the
// /v1/graph streaming endpoint. It draws random edge insert/delete
// batches and mirrors every accepted batch onto a shadow bitset — the
// ground-truth triangle recount every screened response is checked
// against. Not safe for concurrent use: one stream per worker, which
// matches the per-tenant serialization of the service itself.
type GraphStream struct {
	Tenant string
	N      int
	Tau    int64
	Energy bool // request energy accounting on screens

	rng     *rand.Rand
	shadow  *graph.Bitset
	version uint64
}

// NewGraphStream returns a generator for one tenant's session.
func NewGraphStream(tenant string, n int, tau int64, seed int64) *GraphStream {
	return &GraphStream{
		Tenant: tenant, N: n, Tau: tau,
		rng:    rand.New(rand.NewSource(seed)),
		shadow: graph.NewBitset(n),
	}
}

// CreateRequest is the frame that opens this tenant's session.
func (g *GraphStream) CreateRequest() stream.GraphRequest {
	return stream.GraphRequest{Op: stream.OpCreate, Tenant: g.Tenant, N: g.N, Tau: g.Tau}
}

// NextUpdate draws a batch of random edge mutations, applies them to
// the shadow, and returns the update+screen frame. Call Check on the
// response; on a non-OK response (eviction), call Reset and re-create.
func (g *GraphStream) NextUpdate(batch int) stream.GraphRequest {
	ops := make([]stream.EdgeOp, 0, batch)
	for len(ops) < batch {
		u, v := g.rng.Intn(g.N), g.rng.Intn(g.N)
		if u == v {
			continue
		}
		op := stream.EdgeOp{U: u, V: v, Delete: g.rng.Intn(4) == 0}
		if _, err := g.shadow.Set(op.U, op.V, !op.Delete); err != nil {
			panic(err) // unreachable: ops are drawn in range
		}
		ops = append(ops, op)
	}
	g.version++
	return stream.GraphRequest{
		Op: stream.OpUpdate, Tenant: g.Tenant, Ops: ops,
		Screen: true, Energy: g.Energy,
	}
}

// WantCount is the shadow oracle's current triangle count.
func (g *GraphStream) WantCount() int64 { return g.shadow.Triangles() }

// Graph is an independent copy of the shadow adjacency — the frozen
// ground truth benchmarks replay into fresh sessions.
func (g *GraphStream) Graph() *graph.Bitset { return g.shadow.Clone() }

// Check verifies a screened response against the shadow oracle:
// triangle count, edge count, version, and the τ decision.
func (g *GraphStream) Check(resp stream.GraphResponse) error {
	if !resp.Screened {
		return fmt.Errorf("load: tenant %s: response not screened", g.Tenant)
	}
	if want := g.shadow.Triangles(); resp.Count != want {
		return fmt.Errorf("load: tenant %s v%d: screened %d triangles, oracle %d",
			g.Tenant, g.version, resp.Count, want)
	}
	if want := g.shadow.Edges(); resp.Edges != want {
		return fmt.Errorf("load: tenant %s v%d: %d edges, oracle %d",
			g.Tenant, g.version, resp.Edges, want)
	}
	if resp.Version != g.version {
		return fmt.Errorf("load: tenant %s: version %d, want %d", g.Tenant, resp.Version, g.version)
	}
	if resp.Decision != (resp.Count >= g.Tau) {
		return fmt.Errorf("load: tenant %s: decision %v for count %d, τ=%d",
			g.Tenant, resp.Decision, resp.Count, g.Tau)
	}
	if g.Energy && (!resp.HasEnergy || resp.Energy <= 0) {
		return fmt.Errorf("load: tenant %s: energy accounting requested but response carries %d (has=%v)",
			g.Tenant, resp.Energy, resp.HasEnergy)
	}
	return nil
}

// Reset forgets the shadow state (after an eviction) so the tenant can
// re-create and replay from an empty graph.
func (g *GraphStream) Reset() {
	g.shadow = graph.NewBitset(g.N)
	g.version = 0
}

// PostGraph sends one /v1/graph frame and decodes the response. A
// non-200 status is an error carrying the status code in its text.
func PostGraph(client *http.Client, baseURL string, req stream.GraphRequest) (stream.GraphResponse, error) {
	frame, err := stream.EncodeGraphRequest(req)
	if err != nil {
		return stream.GraphResponse{}, err
	}
	resp, err := client.Post(baseURL+"/v1/graph", serve.FrameContentType, bytes.NewReader(frame))
	if err != nil {
		return stream.GraphResponse{}, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return stream.GraphResponse{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return stream.GraphResponse{}, fmt.Errorf("load: %s %s: status %d: %s",
			req.Op, baseURL+"/v1/graph", resp.StatusCode, body)
	}
	return stream.DecodeGraphResponse(body)
}
