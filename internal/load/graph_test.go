package load

import (
	"net/http/httptest"
	"testing"

	"repro/internal/serve"
	"repro/internal/stream"
)

// TestGraphStreamAgainstService drives the real /v1/graph endpoint with
// the generator and lets Check compare every screened response to the
// shadow oracle — the same differential the tcload -graph mode applies
// under load.
func TestGraphStreamAgainstService(t *testing.T) {
	srv := serve.New(serve.Config{})
	defer srv.Close()
	m := stream.NewManager(stream.Config{Server: srv})
	defer m.Close()
	ts := httptest.NewServer(stream.Mux(srv, m))
	defer ts.Close()
	client := ts.Client()

	gs := NewGraphStream("tenant-0", 8, 2, 42)
	gs.Energy = true
	if _, err := PostGraph(client, ts.URL, gs.CreateRequest()); err != nil {
		t.Fatalf("create: %v", err)
	}
	for round := 0; round < 10; round++ {
		resp, err := PostGraph(client, ts.URL, gs.NextUpdate(6))
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := gs.Check(resp); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}

	// Duplicate create surfaces the HTTP status in the error.
	if _, err := PostGraph(client, ts.URL, gs.CreateRequest()); err == nil {
		t.Fatal("duplicate create accepted")
	}

	// Reset forgets the shadow; after close + re-create the oracle
	// tracks the fresh empty session again.
	if _, err := PostGraph(client, ts.URL, stream.GraphRequest{Op: stream.OpClose, Tenant: gs.Tenant}); err != nil {
		t.Fatalf("close: %v", err)
	}
	gs.Reset()
	if _, err := PostGraph(client, ts.URL, gs.CreateRequest()); err != nil {
		t.Fatalf("re-create: %v", err)
	}
	resp, err := PostGraph(client, ts.URL, gs.NextUpdate(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := gs.Check(resp); err != nil {
		t.Fatal(err)
	}
}

// Check must reject responses that disagree with the shadow.
func TestGraphStreamCheckRejects(t *testing.T) {
	gs := NewGraphStream("t", 8, 1, 7)
	gs.NextUpdate(5)
	good := stream.GraphResponse{
		Screened: true, Version: 1,
		Edges: gs.shadow.Edges(), Count: gs.shadow.Triangles(),
	}
	good.Decision = good.Count >= gs.Tau
	if err := gs.Check(good); err != nil {
		t.Fatalf("consistent response rejected: %v", err)
	}
	for name, mut := range map[string]func(r *stream.GraphResponse){
		"unscreened":    func(r *stream.GraphResponse) { r.Screened = false },
		"wrong count":   func(r *stream.GraphResponse) { r.Count++; r.Decision = r.Count >= gs.Tau },
		"wrong edges":   func(r *stream.GraphResponse) { r.Edges++ },
		"wrong version": func(r *stream.GraphResponse) { r.Version++ },
		"bad decision":  func(r *stream.GraphResponse) { r.Decision = !r.Decision },
	} {
		bad := good
		mut(&bad)
		if err := gs.Check(bad); err == nil {
			t.Fatalf("%s: accepted %+v", name, bad)
		}
	}
	// Energy demanded but absent.
	gs.Energy = true
	if err := gs.Check(good); err == nil {
		t.Fatal("missing energy accepted")
	}
}
