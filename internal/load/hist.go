// Package load is the measurement half of the serving story: an
// open-loop load generator (Poisson arrivals, Zipf-distributed shape
// popularity) with log-linear latency histograms, shared by the
// cmd/tcload CLI and tcbench's E27 experiment. The runner measures
// latency from each request's *scheduled* arrival time, not from when a
// worker got around to sending it, so a slow server cannot hide queue
// delay by slowing the generator down (the coordinated-omission trap of
// closed-loop harnesses).
package load

import (
	"math"
	"math/bits"
)

const (
	// histSubBits sub-buckets per octave bound quantile resolution:
	// 3 bits = 8 sub-buckets = at most 12.5% relative error per bucket.
	histSubBits = 3
	histLinear  = 1 << histSubBits // values below this resolve exactly
	// histMaxK is the last tracked octave: values of 2^32 and above
	// (over an hour, in microseconds) saturate into one overflow bucket.
	histMaxK    = 31
	histBuckets = histLinear + (histMaxK-histSubBits+1)*histLinear + 1
)

// Hist is a log-linear histogram of non-negative int64 observations
// (microseconds, by convention): exact below 8, then 8 sub-buckets per
// power of two, then a saturating overflow bucket. It is not
// goroutine-safe — each worker owns one and the results are Merged.
type Hist struct {
	buckets [histBuckets]int64
	count   int64
	sum     int64
	min     int64
	max     int64
}

// Observe records one value. Negative values clamp to zero; values at
// or above 2^32 saturate into the overflow bucket (their exact value
// still feeds Max and Sum, so an overflow quantile reports the observed
// maximum rather than a fictional bound).
func (h *Hist) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketIndex(v)]++
}

func bucketIndex(v int64) int {
	if v < histLinear {
		return int(v)
	}
	k := bits.Len64(uint64(v)) - 1 // 2^k <= v < 2^(k+1)
	if k > histMaxK {
		return histBuckets - 1
	}
	sub := int(v>>(uint(k)-histSubBits)) - histLinear
	return histLinear + (k-histSubBits)*histLinear + sub
}

// bucketUpper is the largest value a bucket can hold (the quantile
// estimate for hits in that bucket).
func bucketUpper(i int) int64 {
	if i < histLinear {
		return int64(i)
	}
	j := i - histLinear
	k := histSubBits + j/histLinear
	sub := int64(j % histLinear)
	width := int64(1) << (uint(k) - histSubBits)
	return (histLinear+sub)*width + width - 1
}

// Count returns the number of observations.
func (h *Hist) Count() int64 { return h.count }

// Max returns the largest observation (0 when empty).
func (h *Hist) Max() int64 { return h.max }

// Min returns the smallest observation (0 when empty).
func (h *Hist) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Mean returns the exact arithmetic mean (0 when empty).
func (h *Hist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns an upper estimate of the q-quantile: the upper bound
// of the bucket holding the ceil(q·count)-th smallest observation,
// clamped to the observed maximum (so a quantile never exceeds any real
// observation, single samples resolve exactly, and overflow hits report
// the true max). An empty histogram reports 0; q outside [0,1] clamps.
func (h *Hist) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.count)))
	if target < 1 {
		target = 1
	}
	if target > h.count {
		target = h.count
	}
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i]
		if cum >= target {
			if i == histBuckets-1 {
				return h.max
			}
			if v := bucketUpper(i); v < h.max {
				return v
			}
			return h.max
		}
	}
	return h.max // unreachable: cum totals h.count
}

// Merge folds o into h bucket-wise; exact counts, sums and extremes are
// preserved, so per-worker histograms merge into the run total without
// loss.
func (h *Hist) Merge(o *Hist) {
	if o.count == 0 {
		return
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
}
