package load

import (
	"math"
	"math/rand"
	"testing"
)

func TestHistEmpty(t *testing.T) {
	var h Hist
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if v := h.Quantile(q); v != 0 {
			t.Errorf("empty histogram Quantile(%g) = %d, want 0", q, v)
		}
	}
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Errorf("empty histogram stats: count=%d mean=%g min=%d max=%d",
			h.Count(), h.Mean(), h.Min(), h.Max())
	}
}

func TestHistSingleSample(t *testing.T) {
	// A single observation is every quantile, exactly — the max clamp
	// makes even coarse buckets resolve a lone sample.
	for _, v := range []int64{0, 1, 7, 8, 100, 123456, 1 << 30} {
		var h Hist
		h.Observe(v)
		for _, q := range []float64{0, 0.5, 0.999, 1} {
			if got := h.Quantile(q); got != v {
				t.Errorf("single sample %d: Quantile(%g) = %d", v, q, got)
			}
		}
		if h.Min() != v || h.Max() != v || h.Mean() != float64(v) {
			t.Errorf("single sample %d: min=%d max=%d mean=%g", v, h.Min(), h.Max(), h.Mean())
		}
	}
}

// Bucket-boundary values: exact powers of two and their neighbours land
// in buckets whose bounds contain them, and the quantile estimate never
// errs by more than the documented 12.5% (values < 8 are exact).
func TestHistBucketBoundaries(t *testing.T) {
	for _, v := range []int64{0, 1, 7, 8, 9, 15, 16, 17, 31, 32, 63, 64, 65,
		1023, 1024, 1025, 1<<20 - 1, 1 << 20, 1<<20 + 1} {
		i := bucketIndex(v)
		up := bucketUpper(i)
		if up < v {
			t.Errorf("value %d: bucket %d upper bound %d below the value", v, i, up)
		}
		if i > 0 && bucketUpper(i-1) >= v {
			t.Errorf("value %d: previous bucket %d already holds it (upper %d)", v, i-1, bucketUpper(i-1))
		}
		if v < histLinear && up != v {
			t.Errorf("small value %d resolved to %d, want exact", v, up)
		}
		if v >= histLinear && float64(up-v) > 0.125*float64(v) {
			t.Errorf("value %d: upper bound %d is over 12.5%% away", v, up)
		}
	}
	// Quantiles over a known population stay within the resolution
	// bound of the true order statistic.
	var h Hist
	for v := int64(1); v <= 10000; v++ {
		h.Observe(v)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		truth := int64(math.Ceil(q * 10000))
		got := h.Quantile(q)
		if got < truth || float64(got-truth) > 0.125*float64(truth) {
			t.Errorf("uniform 1..10000: Quantile(%g) = %d, true %d", q, got, truth)
		}
	}
}

func TestHistOverflowSaturates(t *testing.T) {
	var h Hist
	huge := int64(1)<<40 + 12345 // way past the 2^32 tracked range
	h.Observe(huge)
	h.Observe(huge * 2)
	h.Observe(3)
	if h.Count() != 3 {
		t.Fatalf("count %d, want 3", h.Count())
	}
	// Both giants share the saturating bucket; the quantile there
	// reports the observed max, not a fictional bucket bound.
	if got := h.Quantile(0.99); got != huge*2 {
		t.Errorf("overflow Quantile(0.99) = %d, want observed max %d", got, huge*2)
	}
	if got := h.Quantile(0.01); got != 3 {
		t.Errorf("Quantile(0.01) = %d, want 3", got)
	}
	if h.Max() != huge*2 {
		t.Errorf("max %d, want %d", h.Max(), huge*2)
	}
	// Negative observations clamp to zero rather than corrupting state.
	h.Observe(-5)
	if h.Min() != 0 {
		t.Errorf("min after negative observe = %d, want 0", h.Min())
	}
}

// Merging per-dispatcher histograms must be lossless: the merged view
// equals the histogram that would have observed every sample directly.
func TestHistMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var whole Hist
	parts := make([]Hist, 4)
	for i := 0; i < 20000; i++ {
		v := int64(rng.ExpFloat64() * 5000)
		whole.Observe(v)
		parts[i%len(parts)].Observe(v)
	}
	var merged Hist
	for i := range parts {
		merged.Merge(&parts[i])
	}
	var empty Hist
	merged.Merge(&empty) // merging an empty histogram is a no-op
	if merged.Count() != whole.Count() || merged.Min() != whole.Min() ||
		merged.Max() != whole.Max() || merged.Mean() != whole.Mean() {
		t.Errorf("merged stats diverge: count %d/%d min %d/%d max %d/%d mean %g/%g",
			merged.Count(), whole.Count(), merged.Min(), whole.Min(),
			merged.Max(), whole.Max(), merged.Mean(), whole.Mean())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
		if m, w := merged.Quantile(q), whole.Quantile(q); m != w {
			t.Errorf("Quantile(%g): merged %d, whole %d", q, m, w)
		}
	}
	if merged.buckets != whole.buckets {
		t.Error("merged bucket array differs from direct observation")
	}
}
