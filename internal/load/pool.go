package load

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/serve"
)

// Sample is one precomputed request for a shape: the binary /v1/eval
// frame, the equivalent JSON body, and ground truth for both protocols
// from a direct scalar evaluation done at pool-build time — so checking
// a response under load costs a comparison, not an evaluation.
type Sample struct {
	Frame    []byte // /v1/eval request body
	WantBits []bool // expected marked-output bits (Circuit.Outputs order)
	JSONBody []byte // request body for Path
	WantJSON string // canonical JSON of the expected value under RespKey
}

// Pool is a shape's request material for a load run.
type Pool struct {
	Shape   core.Shape
	Path    string // JSON endpoint ("/v1/matmul", "/v1/trace", "/v1/triangles")
	RespKey string // JSON response field holding the checked value
	Samples []Sample
}

// NewPool builds the shape's circuit once and precomputes n seeded
// random request samples with their expected answers.
func NewPool(sh core.Shape, n int, seed int64) (*Pool, error) {
	built, err := core.BuildShape(sh, -1)
	if err != nil {
		return nil, err
	}
	c := built.Circuit()
	outs := c.Outputs()
	ev := circuit.NewEvaluator(c, 1)
	defer ev.Close()
	rng := rand.New(rand.NewSource(seed))

	pool := &Pool{Shape: sh, Samples: make([]Sample, n)}
	switch sh.Op {
	case core.OpMatMul:
		pool.Path, pool.RespKey = "/v1/matmul", "c"
	case core.OpTrace:
		pool.Path, pool.RespKey = "/v1/trace", "decision"
	case core.OpCount:
		pool.Path, pool.RespKey = "/v1/triangles", "count"
	default:
		return nil, fmt.Errorf("load: unknown op %q", sh.Op)
	}

	for i := range pool.Samples {
		sm := &pool.Samples[i]
		var in []bool
		var want any
		body := map[string]any{
			"n": sh.N, "alg": sh.Alg,
		}
		if sh.Depth != 0 {
			body["depth"] = sh.Depth
		}
		if sh.GroupSize != 0 {
			body["group_size"] = sh.GroupSize
		}
		switch sh.Op {
		case core.OpMatMul:
			a := matrix.Random(rng, sh.N, sh.N, -2, 1)
			b := matrix.Random(rng, sh.N, sh.N, -2, 1)
			if in, err = built.MatMul.Assign(a, b); err != nil {
				return nil, err
			}
			body["entry_bits"], body["signed"] = sh.EntryBits, sh.Signed
			if sh.SharedMSB {
				body["shared_msb"] = true
			}
			body["a"], body["b"] = matJSONRows(a), matJSONRows(b)
			want = matJSONRows(a.Mul(b))
		case core.OpTrace:
			adj := graph.ErdosRenyi(rng, sh.N, 0.5).Adjacency()
			if in, err = built.Trace.Assign(adj); err != nil {
				return nil, err
			}
			body["tau"], body["a"] = sh.Tau, matJSONRows(adj)
			dec, err := built.Trace.Decide(adj)
			if err != nil {
				return nil, err
			}
			want = dec
		case core.OpCount:
			adj := graph.ErdosRenyi(rng, sh.N, 0.5).Adjacency()
			if in, err = built.Count.Assign(adj); err != nil {
				return nil, err
			}
			body["adj"] = matJSONRows(adj)
			cnt, err := built.Count.Triangles(adj)
			if err != nil {
				return nil, err
			}
			want = cnt
		}
		if sm.Frame, err = serve.EncodeFrame(sh, in); err != nil {
			return nil, err
		}
		if sm.JSONBody, err = json.Marshal(body); err != nil {
			return nil, err
		}
		wantJSON, err := json.Marshal(want)
		if err != nil {
			return nil, err
		}
		sm.WantJSON = string(wantJSON)
		vals := ev.Eval(in)
		sm.WantBits = make([]bool, len(outs))
		for j, o := range outs {
			sm.WantBits[j] = vals[o]
		}
	}
	return pool, nil
}

// BitsEqual reports whether decoded output bits match the sample.
func (sm *Sample) BitsEqual(out []bool) bool {
	if len(out) != len(sm.WantBits) {
		return false
	}
	for i := range out {
		if out[i] != sm.WantBits[i] {
			return false
		}
	}
	return true
}

func matJSONRows(m *matrix.Matrix) [][]int64 {
	rows := make([][]int64, m.Rows)
	for i := range rows {
		rows[i] = m.Data[i*m.Cols : (i+1)*m.Cols : (i+1)*m.Cols]
	}
	return rows
}
