package load

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Options configures one load run.
type Options struct {
	// Workers is the number of concurrent request executors (default 1).
	Workers int
	// Rate is the target arrival rate in requests/second. Positive
	// rates run the open loop: a Poisson pacer schedules arrivals on an
	// ideal timeline and latency is measured from the scheduled instant.
	// Zero runs the closed loop: each worker fires its next request the
	// moment the previous reply lands (the e25 regime), and latency is
	// the call duration.
	Rate float64
	// Duration bounds the run by wall clock; Count bounds it by request
	// total. At least one must be set; whichever trips first stops the
	// run.
	Duration time.Duration
	Count    int64
	// Seed makes worker RNG streams (and through them, shape choices)
	// deterministic. Worker w draws from Seed+w; the pacer from Seed-1.
	Seed int64
}

// Result is one run's aggregate outcome.
type Result struct {
	Sent    int64         // requests issued
	OK      int64         // successful replies
	Failed  int64         // errored replies
	Elapsed time.Duration // first send to last reply
	RPS     float64       // OK replies per elapsed second
	Latency Hist          // microseconds; see Options.Rate for the anchor
	Err     error         // first failure, for diagnosis
}

// Run drives do under the configured loop shape. do receives a
// per-worker seeded RNG (for workload choices like Zipf shape picks);
// it must be safe for concurrent calls. The context cancels the run
// early; in-flight requests finish and are counted.
func Run(ctx context.Context, opts Options, do func(ctx context.Context, rng *rand.Rand) error) (Result, error) {
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	if opts.Duration <= 0 && opts.Count <= 0 {
		return Result{}, fmt.Errorf("load: need a Duration or Count bound")
	}
	// The Duration bound stops issuing new requests; in-flight ones run
	// to completion under the caller's context so the tail is measured,
	// not truncated.
	loopCtx := ctx
	if opts.Duration > 0 {
		var cancel context.CancelFunc
		loopCtx, cancel = context.WithTimeout(ctx, opts.Duration)
		defer cancel()
	}

	type worker struct {
		hist           Hist
		sent, ok, fail int64
		err            error
	}
	workers := make([]worker, opts.Workers)
	var budget chan struct{}
	if opts.Count > 0 {
		budget = make(chan struct{}, opts.Count)
		for i := int64(0); i < opts.Count; i++ {
			budget <- struct{}{}
		}
		close(budget)
	}
	takeBudget := func() bool {
		if budget == nil {
			return true
		}
		_, ok := <-budget
		return ok
	}

	start := time.Now()
	var wg sync.WaitGroup

	if opts.Rate > 0 {
		// Open loop: the pacer emits scheduled arrival instants on an
		// ideal Poisson timeline (exponential gaps, mean 1/rate). The
		// timeline never waits for workers — if they fall behind, the
		// arrivals channel backs up and each late start still measures
		// from its scheduled instant, charging the backlog to the server
		// instead of silently thinning the load.
		arrivals := make(chan time.Time, 4*opts.Workers)
		prng := rand.New(rand.NewSource(opts.Seed - 1))
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(arrivals)
			next := start
			for takeBudget() {
				next = next.Add(time.Duration(prng.ExpFloat64() / opts.Rate * float64(time.Second)))
				if d := time.Until(next); d > 0 {
					select {
					case <-time.After(d):
					case <-loopCtx.Done():
						return
					}
				}
				select {
				case arrivals <- next:
				case <-loopCtx.Done():
					return
				}
			}
		}()
		for w := range workers {
			wg.Add(1)
			go func(w *worker, rng *rand.Rand) {
				defer wg.Done()
				for scheduled := range arrivals {
					w.sent++
					err := do(ctx, rng)
					w.hist.Observe(time.Since(scheduled).Microseconds())
					if err != nil {
						w.fail++
						if w.err == nil {
							w.err = err
						}
					} else {
						w.ok++
					}
				}
			}(&workers[w], rand.New(rand.NewSource(opts.Seed+int64(w))))
		}
	} else {
		// Closed loop: back-to-back requests per worker.
		for w := range workers {
			wg.Add(1)
			go func(w *worker, rng *rand.Rand) {
				defer wg.Done()
				for loopCtx.Err() == nil && takeBudget() {
					w.sent++
					t0 := time.Now()
					err := do(ctx, rng)
					w.hist.Observe(time.Since(t0).Microseconds())
					if err != nil {
						w.fail++
						if w.err == nil {
							w.err = err
						}
					} else {
						w.ok++
					}
				}
			}(&workers[w], rand.New(rand.NewSource(opts.Seed+int64(w))))
		}
	}
	wg.Wait()

	var res Result
	res.Elapsed = time.Since(start)
	for w := range workers {
		res.Sent += workers[w].sent
		res.OK += workers[w].ok
		res.Failed += workers[w].fail
		res.Latency.Merge(&workers[w].hist)
		if res.Err == nil {
			res.Err = workers[w].err
		}
	}
	if sec := res.Elapsed.Seconds(); sec > 0 {
		res.RPS = float64(res.OK) / sec
	}
	return res, nil
}
