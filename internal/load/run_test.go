package load

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

func TestRunClosedLoopCount(t *testing.T) {
	res, err := Run(context.Background(), Options{Workers: 4, Count: 40, Seed: 1},
		func(ctx context.Context, rng *rand.Rand) error {
			time.Sleep(time.Millisecond)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != 40 || res.OK != 40 || res.Failed != 0 {
		t.Fatalf("sent/ok/failed = %d/%d/%d, want 40/40/0", res.Sent, res.OK, res.Failed)
	}
	if res.Latency.Count() != 40 {
		t.Fatalf("latency count %d, want 40", res.Latency.Count())
	}
	// Closed-loop latency anchors at the call, so the 1ms sleep is a
	// floor for every observation.
	if min := res.Latency.Min(); min < 900 {
		t.Errorf("min latency %dµs below the 1ms service floor", min)
	}
	if res.RPS <= 0 {
		t.Errorf("rps %.1f, want positive", res.RPS)
	}
}

func TestRunOpenLoopDuration(t *testing.T) {
	res, err := Run(context.Background(), Options{
		Workers: 4, Rate: 2000, Duration: 300 * time.Millisecond, Seed: 2,
	}, func(ctx context.Context, rng *rand.Rand) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 {
		t.Fatal("open loop sent nothing")
	}
	if res.OK != res.Sent || res.Latency.Count() != res.Sent {
		t.Fatalf("ok=%d latency=%d, want both %d", res.OK, res.Latency.Count(), res.Sent)
	}
	// ~600 scheduled arrivals; allow wide slop for a loaded CI box, but
	// an unpaced runner would send tens of thousands.
	if res.Sent > 1800 {
		t.Errorf("sent %d requests in 300ms at rate 2000/s: pacer not pacing", res.Sent)
	}
}

// The coordinated-omission property: with one worker and a 5ms service
// time at a 1kHz schedule, arrivals outrun service 5x, so scheduled-
// time latency must grow far beyond the 5ms a closed-loop (or
// send-time-anchored) harness would report.
func TestRunOpenLoopMeasuresBacklog(t *testing.T) {
	res, err := Run(context.Background(), Options{
		Workers: 1, Rate: 1000, Count: 50, Seed: 3,
	}, func(ctx context.Context, rng *rand.Rand) error {
		time.Sleep(5 * time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != 50 {
		t.Fatalf("sent %d, want 50", res.Sent)
	}
	// The 50th request is scheduled at ~50ms but served at ~250ms; even
	// with generous scheduling slop the p99 must dwarf the service time.
	if p99 := res.Latency.Quantile(0.99); p99 < 50000 {
		t.Errorf("open-loop p99 %dµs does not include queue delay (service 5000µs)", p99)
	}
}

func TestRunErrorsSurfaced(t *testing.T) {
	boom := errors.New("boom")
	res, err := Run(context.Background(), Options{Workers: 2, Count: 10, Seed: 4},
		func(ctx context.Context, rng *rand.Rand) error { return boom })
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 10 || res.OK != 0 {
		t.Fatalf("failed/ok = %d/%d, want 10/0", res.Failed, res.OK)
	}
	if !errors.Is(res.Err, boom) {
		t.Errorf("first error %v, want boom", res.Err)
	}
	if _, err := Run(context.Background(), Options{}, func(context.Context, *rand.Rand) error { return nil }); err == nil {
		t.Error("unbounded run accepted; want an error")
	}
}
