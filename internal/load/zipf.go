package load

import (
	"fmt"
	"math"
	"math/rand"
)

// Zipf draws ranks 0..n-1 with P(rank = k) ∝ 1/(1+k)^s — the standard
// skewed-popularity model for cache workloads (a few shapes take most
// of the traffic; the tail stays warm). Seeded and fully deterministic:
// two Zipfs built from the same (seed, s, n) produce identical streams.
type Zipf struct {
	z *rand.Zipf
	n int
}

// NewZipf builds a generator over n ranks with exponent s > 1 (the
// stdlib sampler's domain; s→1⁺ approaches the classical harmonic
// distribution, larger s concentrates mass on rank 0).
func NewZipf(seed int64, s float64, n int) (*Zipf, error) {
	if n < 1 {
		return nil, fmt.Errorf("load: zipf needs at least 1 rank, got %d", n)
	}
	if s <= 1 {
		return nil, fmt.Errorf("load: zipf exponent must be > 1, got %g", s)
	}
	return &Zipf{
		z: rand.NewZipf(rand.New(rand.NewSource(seed)), s, 1, uint64(n-1)),
		n: n,
	}, nil
}

// Next draws the next rank in [0, n).
func (z *Zipf) Next() int { return int(z.z.Uint64()) }

// N returns the number of ranks.
func (z *Zipf) N() int { return z.n }

// PMF returns the theoretical probability of each rank for exponent s
// over n ranks: P(k) = (1+k)^(-s) / Σ_j (1+j)^(-s), matching the
// sampler's v=1 parameterization. This is what the statistical
// acceptance test (and any calibration of -zipf-s) compares observed
// frequencies against.
func PMF(s float64, n int) []float64 {
	p := make([]float64, n)
	var z float64
	for k := range p {
		p[k] = math.Pow(1+float64(k), -s)
		z += p[k]
	}
	for k := range p {
		p[k] /= z
	}
	return p
}
