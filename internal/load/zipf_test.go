package load

import (
	"math"
	"testing"
)

func TestZipfDeterministic(t *testing.T) {
	a, err := NewZipf(42, 1.2, 16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewZipf(42, 1.2, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		av, bv := a.Next(), b.Next()
		if av != bv {
			t.Fatalf("draw %d: seeds agree but values differ (%d vs %d)", i, av, bv)
		}
		if av < 0 || av >= 16 {
			t.Fatalf("draw %d: rank %d out of [0,16)", i, av)
		}
	}
	c, err := NewZipf(43, 1.2, 16)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < 1000; i++ {
		if a.Next() != c.Next() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical 1000-draw streams")
	}
}

func TestZipfRejectsBadParams(t *testing.T) {
	if _, err := NewZipf(1, 1.0, 8); err == nil {
		t.Error("s=1.0 accepted; the sampler requires s > 1")
	}
	if _, err := NewZipf(1, 2, 0); err == nil {
		t.Error("n=0 accepted")
	}
}

// Statistical acceptance: observed rank frequencies from a seeded run
// must match the theoretical PMF — a chi-squared test at p ≈ 0.001 plus
// a top-rank mass check, both deterministic because the stream is.
func TestZipfMatchesTheory(t *testing.T) {
	const (
		n       = 8
		s       = 1.5
		samples = 200000
	)
	z, err := NewZipf(7, s, n)
	if err != nil {
		t.Fatal(err)
	}
	obs := make([]int64, n)
	for i := 0; i < samples; i++ {
		obs[z.Next()]++
	}
	pmf := PMF(s, n)
	sum := 0.0
	for _, p := range pmf {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("PMF sums to %g, want 1", sum)
	}

	// Chi-squared with n-1 = 7 degrees of freedom; 24.32 is the 0.999
	// quantile, so a correct sampler fails this with p ≈ 0.001 — and the
	// fixed seed makes the outcome reproducible, not flaky.
	chi2 := 0.0
	for k := 0; k < n; k++ {
		expect := pmf[k] * samples
		if expect < 5 {
			t.Fatalf("rank %d expected count %.1f too small for chi-squared", k, expect)
		}
		d := float64(obs[k]) - expect
		chi2 += d * d / expect
	}
	if chi2 > 24.32 {
		t.Errorf("chi-squared %.2f exceeds the 7-dof 0.999 quantile 24.32; obs=%v", chi2, obs)
	}

	// Top-rank mass: rank 0 should carry its theoretical share within a
	// percentage point at this sample size.
	got := float64(obs[0]) / samples
	if math.Abs(got-pmf[0]) > 0.01 {
		t.Errorf("rank-0 mass %.4f, theory %.4f", got, pmf[0])
	}
}
