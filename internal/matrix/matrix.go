// Package matrix implements dense integer matrices and the exact
// reference arithmetic against which every threshold circuit in this
// library is validated.
//
// All entries are int64. The paper's circuits operate on N x N integer
// matrices with O(log N)-bit entries; at the sizes this library
// materializes circuits for, int64 arithmetic is exact and overflow is
// guarded explicitly.
package matrix

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/bitio"
)

// Matrix is a dense row-major integer matrix.
type Matrix struct {
	Rows, Cols int
	Data       []int64 // len == Rows*Cols, row-major
}

// New returns a zero Rows x Cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix.New: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]int64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]int64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("matrix.FromRows: ragged row %d: len %d != %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns the (i, j) entry.
func (m *Matrix) At(i, j int) int64 {
	m.check(i, j)
	return m.Data[i*m.Cols+j]
}

// Set assigns the (i, j) entry.
func (m *Matrix) Set(i, j int, v int64) {
	m.check(i, j)
	m.Data[i*m.Cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Equal reports whether m and o have identical shape and entries.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i, v := range m.Data {
		if v != o.Data[i] {
			return false
		}
	}
	return true
}

// Add returns m + o.
func (m *Matrix) Add(o *Matrix) *Matrix {
	m.sameShape(o, "Add")
	r := New(m.Rows, m.Cols)
	for i := range m.Data {
		r.Data[i] = bitio.AddCheck(m.Data[i], o.Data[i])
	}
	return r
}

// Sub returns m - o.
func (m *Matrix) Sub(o *Matrix) *Matrix {
	m.sameShape(o, "Sub")
	r := New(m.Rows, m.Cols)
	for i := range m.Data {
		r.Data[i] = bitio.AddCheck(m.Data[i], -o.Data[i])
	}
	return r
}

// Scale returns c * m.
func (m *Matrix) Scale(c int64) *Matrix {
	r := New(m.Rows, m.Cols)
	for i := range m.Data {
		r.Data[i] = bitio.MulCheck(m.Data[i], c)
	}
	return r
}

// AddInPlace adds w*o into m (m += w*o). Used by the bilinear executor's
// linear-combination passes.
func (m *Matrix) AddInPlace(o *Matrix, w int64) {
	m.sameShape(o, "AddInPlace")
	for i := range m.Data {
		m.Data[i] = bitio.AddCheck(m.Data[i], bitio.MulCheck(o.Data[i], w))
	}
}

func (m *Matrix) sameShape(o *Matrix, op string) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic(fmt.Sprintf("matrix.%s: shape mismatch %dx%d vs %dx%d", op, m.Rows, m.Cols, o.Rows, o.Cols))
	}
}

// Mul returns the product m * o computed by the naive cubic algorithm.
// This is the exact reference for all circuit outputs.
func (m *Matrix) Mul(o *Matrix) *Matrix {
	if m.Cols != o.Rows {
		panic(fmt.Sprintf("matrix.Mul: inner dimension mismatch %d vs %d", m.Cols, o.Rows))
	}
	r := New(m.Rows, o.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.Data[i*m.Cols+k]
			if a == 0 {
				continue
			}
			for j := 0; j < o.Cols; j++ {
				r.Data[i*o.Cols+j] = bitio.AddCheck(r.Data[i*o.Cols+j], bitio.MulCheck(a, o.Data[k*o.Cols+j]))
			}
		}
	}
	return r
}

// Trace returns the sum of the diagonal entries of a square matrix.
func (m *Matrix) Trace() int64 {
	if m.Rows != m.Cols {
		panic(fmt.Sprintf("matrix.Trace: non-square %dx%d", m.Rows, m.Cols))
	}
	var t int64
	for i := 0; i < m.Rows; i++ {
		t = bitio.AddCheck(t, m.At(i, i))
	}
	return t
}

// TraceCube returns trace(m^3), the quantity the paper's trace circuit
// thresholds. For a graph adjacency matrix this equals 6 * #triangles.
func (m *Matrix) TraceCube() int64 {
	return m.Mul(m).Mul(m).Trace()
}

// Block returns a copy of the (bi, bj) block when m is partitioned into a
// grid of size x size blocks. m.Rows and m.Cols must be divisible by size.
func (m *Matrix) Block(bi, bj, size int) *Matrix {
	if m.Rows%size != 0 || m.Cols%size != 0 {
		panic(fmt.Sprintf("matrix.Block: %dx%d not divisible into %d-blocks", m.Rows, m.Cols, size))
	}
	r := New(size, size)
	for i := 0; i < size; i++ {
		copy(r.Data[i*size:(i+1)*size], m.Data[(bi*size+i)*m.Cols+bj*size:(bi*size+i)*m.Cols+bj*size+size])
	}
	return r
}

// SetBlock writes block b at block coordinates (bi, bj) of m.
func (m *Matrix) SetBlock(bi, bj int, b *Matrix) {
	size := b.Rows
	if b.Rows != b.Cols {
		panic("matrix.SetBlock: block must be square")
	}
	for i := 0; i < size; i++ {
		copy(m.Data[(bi*size+i)*m.Cols+bj*size:(bi*size+i)*m.Cols+bj*size+size], b.Data[i*size:(i+1)*size])
	}
}

// Pad returns a copy of m zero-padded to n x n. n must be at least
// max(m.Rows, m.Cols). The circuits require N = T^l; Pad supplies the
// standard embedding.
func (m *Matrix) Pad(n int) *Matrix {
	if n < m.Rows || n < m.Cols {
		panic(fmt.Sprintf("matrix.Pad: target %d smaller than %dx%d", n, m.Rows, m.Cols))
	}
	r := New(n, n)
	for i := 0; i < m.Rows; i++ {
		copy(r.Data[i*n:i*n+m.Cols], m.Data[i*m.Cols:(i+1)*m.Cols])
	}
	return r
}

// Shrink returns the top-left rows x cols corner of m, undoing Pad.
func (m *Matrix) Shrink(rows, cols int) *Matrix {
	if rows > m.Rows || cols > m.Cols {
		panic(fmt.Sprintf("matrix.Shrink: target %dx%d larger than %dx%d", rows, cols, m.Rows, m.Cols))
	}
	r := New(rows, cols)
	for i := 0; i < rows; i++ {
		copy(r.Data[i*cols:(i+1)*cols], m.Data[i*m.Cols:i*m.Cols+cols])
	}
	return r
}

// MaxAbs returns the maximum absolute value over all entries.
func (m *Matrix) MaxAbs() int64 {
	var mx int64
	for _, v := range m.Data {
		if a := bitio.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// EntryBits returns the number of bits needed for the largest-magnitude
// entry, i.e. bits(MaxAbs()). The circuit builders size their signed bit
// planes from this.
func (m *Matrix) EntryBits() int {
	b := bitio.Bits(m.MaxAbs())
	if b == 0 {
		return 1 // a zero matrix still occupies one bit plane
	}
	return b
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Random returns a rows x cols matrix with entries drawn uniformly from
// [lo, hi] using rng.
func Random(rng *rand.Rand, rows, cols int, lo, hi int64) *Matrix {
	if hi < lo {
		panic(fmt.Sprintf("matrix.Random: empty range [%d,%d]", lo, hi))
	}
	m := New(rows, cols)
	span := hi - lo + 1
	for i := range m.Data {
		m.Data[i] = lo + rng.Int63n(span)
	}
	return m
}

// RandomBinary returns a rows x cols 0/1 matrix where each entry is 1
// with probability p.
func RandomBinary(rng *rand.Rand, rows, cols int, p float64) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		if rng.Float64() < p {
			m.Data[i] = 1
		}
	}
	return m
}

// IsSymmetric reports whether m is square and equal to its transpose.
func (m *Matrix) IsSymmetric() bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if m.At(i, j) != m.At(j, i) {
				return false
			}
		}
	}
	return true
}

// Transpose returns the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	r := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			r.Set(j, i, m.At(i, j))
		}
	}
	return r
}
