package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZero(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("shape = %dx%d", m.Rows, m.Cols)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Errorf("entry (%d,%d) = %d, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestFromRowsAndEqual(t *testing.T) {
	m := FromRows([][]int64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Error("FromRows layout wrong")
	}
	if !m.Equal(m.Clone()) {
		t.Error("clone not equal")
	}
	if m.Equal(New(2, 2)) {
		t.Error("distinct matrices reported equal")
	}
	if m.Equal(New(2, 3)) {
		t.Error("different shapes reported equal")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ragged FromRows did not panic")
		}
	}()
	FromRows([][]int64{{1, 2}, {3}})
}

func TestIdentityMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := Random(rng, 5, 5, -9, 9)
	if !m.Mul(Identity(5)).Equal(m) || !Identity(5).Mul(m).Equal(m) {
		t.Error("identity is not multiplicative identity")
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]int64{{1, 2}, {3, 4}})
	b := FromRows([][]int64{{5, 6}, {7, 8}})
	want := FromRows([][]int64{{19, 22}, {43, 50}})
	if !a.Mul(b).Equal(want) {
		t.Errorf("Mul wrong:\n%v", a.Mul(b))
	}
}

func TestMulRectangular(t *testing.T) {
	a := FromRows([][]int64{{1, 2, 3}})      // 1x3
	b := FromRows([][]int64{{4}, {5}, {6}})  // 3x1
	if got := a.Mul(b).At(0, 0); got != 32 { // 4+10+18
		t.Errorf("dot product = %d, want 32", got)
	}
	if got := b.Mul(a); got.Rows != 3 || got.Cols != 3 || got.At(2, 2) != 18 {
		t.Errorf("outer product wrong: %v", got)
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromRows([][]int64{{1, -2}, {3, 4}})
	b := FromRows([][]int64{{10, 20}, {30, 40}})
	if !a.Add(b).Sub(b).Equal(a) {
		t.Error("Add then Sub is not identity")
	}
	if a.Scale(-3).At(0, 1) != 6 {
		t.Error("Scale wrong")
	}
	c := a.Clone()
	c.AddInPlace(b, 2)
	if c.At(1, 1) != 84 {
		t.Errorf("AddInPlace = %d, want 84", c.At(1, 1))
	}
}

// Matrix multiplication distributes over addition: (A+B)C = AC + BC.
func TestMulDistributes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(6)
		a := Random(rng, n, n, -5, 5)
		b := Random(rng, n, n, -5, 5)
		c := Random(rng, n, n, -5, 5)
		if !a.Add(b).Mul(c).Equal(a.Mul(c).Add(b.Mul(c))) {
			t.Fatalf("distribution failed at n=%d", n)
		}
	}
}

// Associativity: (AB)C = A(BC).
func TestMulAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(5)
		a := Random(rng, n, n, -4, 4)
		b := Random(rng, n, n, -4, 4)
		c := Random(rng, n, n, -4, 4)
		if !a.Mul(b).Mul(c).Equal(a.Mul(b.Mul(c))) {
			t.Fatalf("associativity failed at n=%d", n)
		}
	}
}

func TestTrace(t *testing.T) {
	m := FromRows([][]int64{{1, 9}, {9, 2}})
	if m.Trace() != 3 {
		t.Errorf("Trace = %d, want 3", m.Trace())
	}
}

// trace(A^3) for the triangle graph K3 adjacency matrix is 6 (one
// triangle counted 6 ways).
func TestTraceCubeTriangle(t *testing.T) {
	k3 := FromRows([][]int64{
		{0, 1, 1},
		{1, 0, 1},
		{1, 1, 0},
	})
	if got := k3.TraceCube(); got != 6 {
		t.Errorf("trace(K3^3) = %d, want 6", got)
	}
}

func TestBlockRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := Random(rng, 8, 8, -9, 9)
	r := New(8, 8)
	for bi := 0; bi < 2; bi++ {
		for bj := 0; bj < 2; bj++ {
			r.SetBlock(bi, bj, m.Block(bi, bj, 4))
		}
	}
	if !r.Equal(m) {
		t.Error("block decomposition round trip failed")
	}
}

func TestBlockValues(t *testing.T) {
	m := FromRows([][]int64{
		{1, 2, 3, 4},
		{5, 6, 7, 8},
		{9, 10, 11, 12},
		{13, 14, 15, 16},
	})
	b := m.Block(1, 0, 2)
	want := FromRows([][]int64{{9, 10}, {13, 14}})
	if !b.Equal(want) {
		t.Errorf("Block(1,0,2) =\n%v want\n%v", b, want)
	}
}

func TestPadShrink(t *testing.T) {
	m := FromRows([][]int64{{1, 2}, {3, 4}})
	p := m.Pad(4)
	if p.Rows != 4 || p.At(3, 3) != 0 || p.At(1, 1) != 4 {
		t.Error("Pad wrong")
	}
	if !p.Shrink(2, 2).Equal(m) {
		t.Error("Shrink does not undo Pad")
	}
}

// Padding preserves products: (A pad) * (B pad) shrunk = A*B.
func TestPadPreservesProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(6)
		a := Random(rng, n, n, -9, 9)
		b := Random(rng, n, n, -9, 9)
		got := a.Pad(8).Mul(b.Pad(8)).Shrink(n, n)
		if !got.Equal(a.Mul(b)) {
			t.Fatalf("pad product mismatch at n=%d", n)
		}
	}
}

func TestMaxAbsEntryBits(t *testing.T) {
	m := FromRows([][]int64{{0, -7}, {3, 4}})
	if m.MaxAbs() != 7 {
		t.Errorf("MaxAbs = %d", m.MaxAbs())
	}
	if m.EntryBits() != 3 {
		t.Errorf("EntryBits = %d, want 3", m.EntryBits())
	}
	if New(2, 2).EntryBits() != 1 {
		t.Error("zero matrix EntryBits should be 1")
	}
}

func TestTransposeSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := Random(rng, 4, 6, -9, 9)
	if !m.Transpose().Transpose().Equal(m) {
		t.Error("double transpose is not identity")
	}
	s := m.Mul(m.Transpose())
	if !s.IsSymmetric() {
		t.Error("M*M^T should be symmetric")
	}
	if m.IsSymmetric() {
		t.Error("non-square matrix reported symmetric")
	}
}

func TestRandomBinaryRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := RandomBinary(rng, 20, 20, 0.5)
	ones := 0
	for _, v := range m.Data {
		if v != 0 && v != 1 {
			t.Fatalf("non-binary entry %d", v)
		}
		if v == 1 {
			ones++
		}
	}
	if ones == 0 || ones == 400 {
		t.Error("binary matrix suspiciously uniform")
	}
}

func TestRandomRange(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := Random(r, 5, 5, -3, 3)
		for _, v := range m.Data {
			if v < -3 || v > 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch did not panic")
		}
	}()
	New(2, 3).Mul(New(2, 3))
}

func TestTraceNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-square trace did not panic")
		}
	}()
	New(2, 3).Trace()
}
