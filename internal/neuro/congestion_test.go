package neuro

import (
	"math/rand"
	"testing"

	"repro/internal/bilinear"
	"repro/internal/core"
	"repro/internal/matrix"
)

// With unlimited bandwidth, wall time equals depth ("constant time" in
// the circuit sense); with a finite link bandwidth, congestion stretches
// wall time past depth — the paper's practicality caveat, measured.
func TestCongestionStretchesWallTime(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	mc, err := core.BuildMatMul(8, core.Options{Alg: bilinear.Strassen()})
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.RandomBinary(rng, 8, 8, 0.5)
	b := matrix.RandomBinary(rng, 8, 8, 0.5)
	in, err := mc.Assign(a, b)
	if err != nil {
		t.Fatal(err)
	}

	free := Loihiish() // LinkBandwidth 0: unlimited
	_, sFree, err := Deploy(mc.Circuit, free, in)
	if err != nil {
		t.Fatal(err)
	}
	if sFree.WallTimesteps != int64(sFree.Timesteps) {
		t.Errorf("unlimited bandwidth: wall %d != depth %d", sFree.WallTimesteps, sFree.Timesteps)
	}

	tight := free
	tight.LinkBandwidth = 1000
	_, sTight, err := Deploy(mc.Circuit, tight, in)
	if err != nil {
		t.Fatal(err)
	}
	if sTight.WallTimesteps <= int64(sTight.Timesteps) {
		t.Errorf("bandwidth 1000: wall %d should exceed depth %d", sTight.WallTimesteps, sTight.Timesteps)
	}

	// More bandwidth, less stall; functional results identical.
	looser := free
	looser.LinkBandwidth = 100000
	_, sLoose, err := Deploy(mc.Circuit, looser, in)
	if err != nil {
		t.Fatal(err)
	}
	if sLoose.WallTimesteps > sTight.WallTimesteps {
		t.Errorf("more bandwidth increased wall time: %d vs %d", sLoose.WallTimesteps, sTight.WallTimesteps)
	}
	if sLoose.Spikes != sTight.Spikes || sLoose.OffCoreEvents != sTight.OffCoreEvents {
		t.Error("bandwidth changed functional statistics")
	}
}

// Locality placement reduces congestion stalls too (less off-core
// traffic per core per level).
func TestLocalityReducesWallTime(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	mc, err := core.BuildMatMul(8, core.Options{Alg: bilinear.Strassen()})
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.RandomBinary(rng, 8, 8, 0.5)
	b := matrix.RandomBinary(rng, 8, 8, 0.5)
	in, err := mc.Assign(a, b)
	if err != nil {
		t.Fatal(err)
	}
	dev := Loihiish()
	dev.LinkBandwidth = 5000

	level, err := Place(mc.Circuit, dev)
	if err != nil {
		t.Fatal(err)
	}
	local, err := PlaceLocality(mc.Circuit, dev)
	if err != nil {
		t.Fatal(err)
	}
	// The two runs share one wire array via the allocation-free path.
	scratch, sLevel, err := RunInto(mc.Circuit, dev, level, in, make([]bool, 0))
	if err != nil {
		t.Fatal(err)
	}
	_, sLocal, err := RunInto(mc.Circuit, dev, local, in, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if sLocal.WallTimesteps > sLevel.WallTimesteps {
		t.Errorf("locality wall %d > level-order wall %d", sLocal.WallTimesteps, sLevel.WallTimesteps)
	}
}

// The tiny circuit saturates nothing even at bandwidth 1 per level from
// inputs... rather: with bandwidth 1 every off-core event costs a step.
func TestCongestionTinyExact(t *testing.T) {
	c := tinyCircuit()
	d := Unlimited()
	d.LinkBandwidth = 1
	// Input (1,0): input wire 0 fires and feeds both level-1 gates
	// (2 off-core events at level 0, same source core -1); level 1's
	// OR fires and feeds XOR on the same core (on-core, 0 stall).
	_, stats, err := Deploy(c, d, []bool{true, false})
	if err != nil {
		t.Fatal(err)
	}
	// Level 0 sends 2 events at bandwidth 1 -> 2 steps; level 1 sends
	// on-core only -> 1 step. Total 3.
	if stats.WallTimesteps != 3 {
		t.Errorf("wall = %d, want 3", stats.WallTimesteps)
	}
}
