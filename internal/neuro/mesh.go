package neuro

import (
	"fmt"
	"math"

	"repro/internal/circuit"
)

// MeshStats extends RunStats with 2D-mesh distance accounting: cores
// are laid out on a ⌈√C⌉ x ⌈√C⌉ grid (TrueNorth and Loihi are physical
// core meshes), each off-core delivery pays its Manhattan distance in
// hops, and inputs enter at an I/O port adjacent to core 0.
type MeshStats struct {
	RunStats
	Side       int // mesh side length
	TotalHops  int64
	MaxHops    int64
	MeshEnergy float64 // EnergyPerSpike·spikes + EnergyPerHop·TotalHops
}

// RunMesh executes one inference with mesh-distance accounting. The
// functional results are identical to Run; only the traffic pricing
// differs (per-hop instead of per-event).
func RunMesh(c *circuit.Circuit, d Device, p *Placement, inputs []bool) ([]bool, MeshStats, error) {
	vals, base, err := Run(c, d, p, inputs)
	if err != nil {
		return nil, MeshStats{}, err
	}
	ms := MeshStats{RunStats: base}
	ms.Side = int(math.Ceil(math.Sqrt(float64(p.NumCores))))
	if ms.Side < 1 {
		ms.Side = 1
	}

	pos := func(core int32) (int, int) {
		if core < 0 {
			// I/O port just outside the mesh, adjacent to core 0.
			return -1, 0
		}
		return int(core) % ms.Side, int(core) / ms.Side
	}
	coreOfWire := func(w circuit.Wire) int32 {
		if int(w) < c.NumInputs() {
			return -1
		}
		return p.CoreOf[int(w)-c.NumInputs()]
	}
	c.VisitEdges(func(gate int, src circuit.Wire, _ int64) {
		if !vals[src] {
			return
		}
		sc := coreOfWire(src)
		dc := p.CoreOf[gate]
		if sc == dc {
			return
		}
		sx, sy := pos(sc)
		dx, dy := pos(dc)
		hops := int64(abs(sx-dx) + abs(sy-dy))
		ms.TotalHops += hops
		if hops > ms.MaxHops {
			ms.MaxHops = hops
		}
	})
	ms.MeshEnergy = d.EnergyPerSpike*float64(ms.Spikes) + d.EnergyPerHop*float64(ms.TotalHops)
	return vals, ms, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// DescribeMesh returns a human-readable mesh summary for CLI output.
func (ms MeshStats) DescribeMesh() string {
	return fmt.Sprintf("%dx%d mesh, %d cores, %d total hops (max %d), energy %.1f",
		ms.Side, ms.Side, ms.Cores, ms.TotalHops, ms.MaxHops, ms.MeshEnergy)
}
