package neuro

import (
	"math/rand"
	"testing"

	"repro/internal/bilinear"
	"repro/internal/core"
	"repro/internal/matrix"
)

func TestMeshStatsBasic(t *testing.T) {
	c := tinyCircuit()
	d := Device{Name: "grid", NeuronsPerCore: 1, EnergyPerSpike: 1, EnergyPerHop: 1}
	p, err := Place(c, d)
	if err != nil {
		t.Fatal(err)
	}
	vals, ms, err := RunMesh(c, d, p, []bool{true, false})
	if err != nil {
		t.Fatal(err)
	}
	if !vals[c.NumInputs()+2] {
		t.Error("mesh run changed function")
	}
	// 3 cores -> 2x2 mesh.
	if ms.Side != 2 {
		t.Errorf("side = %d, want 2", ms.Side)
	}
	if ms.TotalHops <= 0 || ms.MaxHops <= 0 || ms.MaxHops > 4 {
		t.Errorf("hops: total=%d max=%d", ms.TotalHops, ms.MaxHops)
	}
	if ms.MeshEnergy <= 0 {
		t.Error("mesh energy missing")
	}
	if ms.DescribeMesh() == "" {
		t.Error("empty description")
	}
}

// Hop totals upper-bound: every off-core event travels at most the mesh
// diameter (2·(side-1)), plus 1 for the external I/O port.
func TestMeshHopsBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	mc, err := core.BuildMatMul(8, core.Options{Alg: bilinear.Strassen()})
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.RandomBinary(rng, 8, 8, 0.5)
	b := matrix.RandomBinary(rng, 8, 8, 0.5)
	in, err := mc.Assign(a, b)
	if err != nil {
		t.Fatal(err)
	}
	d := Loihiish()
	p, err := PlaceLocality(mc.Circuit, d)
	if err != nil {
		t.Fatal(err)
	}
	_, ms, err := RunMesh(mc.Circuit, d, p, in)
	if err != nil {
		t.Fatal(err)
	}
	diameter := int64(2*(ms.Side-1) + 1)
	if ms.MaxHops > diameter {
		t.Errorf("max hops %d exceed diameter %d", ms.MaxHops, diameter)
	}
	if ms.TotalHops < ms.OffCoreEvents {
		t.Errorf("total hops %d below off-core events %d (each costs >= 1)", ms.TotalHops, ms.OffCoreEvents)
	}
	if ms.TotalHops > ms.OffCoreEvents*diameter {
		t.Errorf("total hops %d exceed events x diameter", ms.TotalHops)
	}
}

// Locality placement also wins on mesh distance.
func TestMeshLocalityWins(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	mc, err := core.BuildMatMul(8, core.Options{Alg: bilinear.Strassen()})
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.RandomBinary(rng, 8, 8, 0.5)
	b := matrix.RandomBinary(rng, 8, 8, 0.5)
	in, err := mc.Assign(a, b)
	if err != nil {
		t.Fatal(err)
	}
	d := Loihiish()
	level, err := Place(mc.Circuit, d)
	if err != nil {
		t.Fatal(err)
	}
	local, err := PlaceLocality(mc.Circuit, d)
	if err != nil {
		t.Fatal(err)
	}
	_, msLevel, err := RunMesh(mc.Circuit, d, level, in)
	if err != nil {
		t.Fatal(err)
	}
	_, msLocal, err := RunMesh(mc.Circuit, d, local, in)
	if err != nil {
		t.Fatal(err)
	}
	if msLocal.TotalHops >= msLevel.TotalHops {
		t.Errorf("locality hops %d >= level-order %d", msLocal.TotalHops, msLevel.TotalHops)
	}
}
