// Package neuro simulates deploying threshold circuits on a
// neuromorphic computing device of the kind the paper targets
// (TrueNorth, SpiNNaker, Loihi): a mesh of cores, each hosting a bounded
// number of neurons with a bounded synaptic fan-in, executing one
// circuit level per discrete timestep.
//
// We have no such hardware, so this substrate simulates the deployment
// concerns the paper discusses: constant depth equals constant
// timesteps (Section 1), hardware fan-in limits (Section 5), and the
// firing-based energy model of Uchizawa et al. (Section 6). The
// simulator validates a circuit against a device profile, places gates
// onto cores, propagates spikes level by level, and accounts for energy
// and on-/off-core synapse traffic.
package neuro

import (
	"fmt"

	"repro/internal/circuit"
)

// Device describes a neuromorphic chip profile.
type Device struct {
	Name           string
	NeuronsPerCore int
	MaxFanIn       int // synapses per neuron; 0 = unlimited
	// EnergyPerSpike is charged per firing neuron per timestep (the
	// Uchizawa et al. model: a gate is charged iff it fires).
	EnergyPerSpike float64
	// EnergyPerHop is charged per delivered spike that crosses cores.
	EnergyPerHop float64
	// LinkBandwidth bounds how many off-core spike deliveries one core
	// can emit per timestep (0 = unlimited). With a finite bandwidth,
	// congested levels stretch over several wall timesteps — the
	// paper's caveat that "constant depth, in the TC0 sense, may not
	// practically equate to constant time."
	LinkBandwidth int64
}

// TrueNorthish returns a profile loosely shaped like IBM TrueNorth:
// 256 neurons per core, 256 synapses per neuron.
func TrueNorthish() Device {
	return Device{Name: "truenorth-like", NeuronsPerCore: 256, MaxFanIn: 256,
		EnergyPerSpike: 1, EnergyPerHop: 0.1}
}

// Loihiish returns a profile loosely shaped like Intel Loihi: 1024
// neurons per core, 4096 synapses per neuron.
func Loihiish() Device {
	return Device{Name: "loihi-like", NeuronsPerCore: 1024, MaxFanIn: 4096,
		EnergyPerSpike: 1, EnergyPerHop: 0.1}
}

// Unlimited returns an idealized device with no resource limits, for
// isolating the energy accounting.
func Unlimited() Device {
	return Device{Name: "unlimited", NeuronsPerCore: 1 << 20, EnergyPerSpike: 1, EnergyPerHop: 0.1}
}

// Placement maps every gate to a core. Circuit inputs live on core -1
// (the I/O interface), so input-to-gate traffic is always off-core.
type Placement struct {
	CoreOf   []int32
	NumCores int
}

// Place assigns gates to cores in level order, packing each core to
// capacity — the natural layout for a layered circuit, keeping
// same-level neighbours together. It rejects circuits whose fan-in
// exceeds the device limit: such circuits must be rebuilt with a
// grouped summation (core.Options.GroupSize) or partitioned inputs
// (conv.ViaCircuit's maxRows), which is exactly the paper's Section 5
// prescription.
func Place(c *circuit.Circuit, d Device) (*Placement, error) {
	if d.NeuronsPerCore < 1 {
		return nil, fmt.Errorf("neuro: device %q has no neurons per core", d.Name)
	}
	if d.MaxFanIn > 0 {
		if f := c.MaxFanIn(); f > d.MaxFanIn {
			return nil, fmt.Errorf("neuro: circuit max fan-in %d exceeds device %q limit %d", f, d.Name, d.MaxFanIn)
		}
	}
	p := &Placement{CoreOf: make([]int32, c.Size())}
	core, used := 0, 0
	// Level order == gate creation order refined by level buckets.
	for lvl := 1; lvl <= c.Depth(); lvl++ {
		for g := 0; g < c.Size(); g++ {
			if c.GateLevel(g) != lvl {
				continue
			}
			if used == d.NeuronsPerCore {
				core++
				used = 0
			}
			p.CoreOf[g] = int32(core)
			used++
		}
	}
	p.NumCores = core + 1
	return p, nil
}

// RunStats aggregates one inference's execution on the device.
type RunStats struct {
	Timesteps int // circuit depth: one level per step, no congestion
	// WallTimesteps is the congestion-aware execution time: each level
	// takes ceil(worst per-core off-core traffic / LinkBandwidth) steps,
	// at least one. Equals Timesteps when LinkBandwidth is unlimited.
	WallTimesteps int64
	Spikes        int64
	// Delivered spike events, split by locality.
	OnCoreEvents  int64
	OffCoreEvents int64
	Energy        float64
	Cores         int
	Neurons       int
}

// Run executes the circuit on the device under the given placement:
// functional evaluation plus spike/energy/traffic accounting. Returns
// the full wire assignment (identical to circuit.Eval) and the stats.
func Run(c *circuit.Circuit, d Device, p *Placement, inputs []bool) ([]bool, RunStats, error) {
	return RunInto(c, d, p, inputs, nil)
}

// RunInto is Run with caller-owned wire storage: pass the previous
// inference's returned assignment as scratch and sweeps that run many
// inferences on one circuit (placement ablations, congestion studies,
// Monte Carlo energy estimation) stop reallocating the wire array.
// With scratch nil the evaluation is level-parallel, as before; a
// reused scratch selects the sequential allocation-free path.
func RunInto(c *circuit.Circuit, d Device, p *Placement, inputs, scratch []bool) ([]bool, RunStats, error) {
	if len(p.CoreOf) != c.Size() {
		return nil, RunStats{}, fmt.Errorf("neuro: placement covers %d gates, circuit has %d", len(p.CoreOf), c.Size())
	}
	vals := scratch
	if vals == nil {
		vals = c.EvalParallel(inputs, 0)
	} else {
		vals = c.EvalInto(inputs, vals)
	}
	stats := RunStats{
		Timesteps: c.Depth(),
		Spikes:    c.Energy(vals),
		Cores:     p.NumCores,
		Neurons:   c.Size(),
	}
	coreOfWire := func(w circuit.Wire) int32 {
		if int(w) < c.NumInputs() {
			return -1
		}
		return p.CoreOf[int(w)-c.NumInputs()]
	}
	wireLevel := func(w circuit.Wire) int {
		if int(w) < c.NumInputs() {
			return 0
		}
		return c.GateLevel(int(w) - c.NumInputs())
	}
	// Per-(source level, source core) off-core traffic, for the
	// congestion model. Input wires live on virtual core -1 at level 0;
	// shift cores by +1 for array indexing.
	depth := c.Depth()
	offAt := make([][]int64, depth) // level -> core+1 -> events
	for i := range offAt {
		offAt[i] = make([]int64, p.NumCores+1)
	}
	c.VisitEdges(func(gate int, src circuit.Wire, _ int64) {
		if !vals[src] {
			return
		}
		sc := coreOfWire(src)
		if sc == p.CoreOf[gate] {
			stats.OnCoreEvents++
		} else {
			stats.OffCoreEvents++
			lvl := wireLevel(src)
			if lvl < depth {
				offAt[lvl][sc+1]++
			}
		}
	})
	// Congestion-aware wall clock: level ℓ's sends must drain before
	// level ℓ+1 fires.
	for lvl := 0; lvl < depth; lvl++ {
		steps := int64(1)
		if d.LinkBandwidth > 0 {
			for _, ev := range offAt[lvl] {
				if s := (ev + d.LinkBandwidth - 1) / d.LinkBandwidth; s > steps {
					steps = s
				}
			}
		}
		stats.WallTimesteps += steps
	}
	stats.Energy = d.EnergyPerSpike*float64(stats.Spikes) + d.EnergyPerHop*float64(stats.OffCoreEvents)
	return vals, stats, nil
}

// Deploy is the one-call path: place and run.
func Deploy(c *circuit.Circuit, d Device, inputs []bool) ([]bool, RunStats, error) {
	p, err := Place(c, d)
	if err != nil {
		return nil, RunStats{}, err
	}
	return Run(c, d, p, inputs)
}
