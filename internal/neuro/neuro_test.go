package neuro

import (
	"math/rand"
	"testing"

	"repro/internal/bilinear"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/matrix"
)

// tinyCircuit: two layers, known spike pattern.
func tinyCircuit() *circuit.Circuit {
	b := circuit.NewBuilder(2)
	or := b.Gate([]circuit.Wire{0, 1}, []int64{1, 1}, 1)
	and := b.Gate([]circuit.Wire{0, 1}, []int64{1, 1}, 2)
	xor := b.Gate([]circuit.Wire{or, and}, []int64{1, -1}, 1)
	b.MarkOutput(xor)
	return b.Build()
}

func TestDeployTiny(t *testing.T) {
	c := tinyCircuit()
	d := Unlimited()
	vals, stats, err := Deploy(c, d, []bool{true, false})
	if err != nil {
		t.Fatal(err)
	}
	if !vals[c.NumInputs()+2] {
		t.Error("xor output wrong")
	}
	if stats.Timesteps != 2 {
		t.Errorf("timesteps = %d, want 2 (depth)", stats.Timesteps)
	}
	if stats.Spikes != 2 { // or fires, and doesn't, xor fires
		t.Errorf("spikes = %d, want 2", stats.Spikes)
	}
	// Events: input 0 fired -> delivered to or and and (2 off-core
	// events from the I/O core); or fired -> delivered to xor.
	if stats.OffCoreEvents+stats.OnCoreEvents != 3 {
		t.Errorf("delivered events = %d, want 3", stats.OffCoreEvents+stats.OnCoreEvents)
	}
	// Energy = spikes + 0.1 * off-core.
	wantEnergy := float64(stats.Spikes) + 0.1*float64(stats.OffCoreEvents)
	if stats.Energy != wantEnergy {
		t.Errorf("energy = %v, want %v", stats.Energy, wantEnergy)
	}
}

// Placement respects core capacity and covers all gates.
func TestPlaceCapacity(t *testing.T) {
	c := tinyCircuit()
	d := Device{Name: "tiny", NeuronsPerCore: 1, EnergyPerSpike: 1}
	p, err := Place(c, d)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumCores != 3 {
		t.Errorf("3 gates on 1-neuron cores should need 3 cores, got %d", p.NumCores)
	}
	counts := map[int32]int{}
	for _, core := range p.CoreOf {
		counts[core]++
		if counts[core] > d.NeuronsPerCore {
			t.Fatal("core over capacity")
		}
	}
}

// Fan-in validation: a trace circuit's output gate reads thousands of
// wires; a 256-synapse device must reject it, an unlimited one accept.
func TestFanInLimit(t *testing.T) {
	tc, err := core.BuildTrace(4, 1, core.Options{Alg: bilinear.Strassen()})
	if err != nil {
		t.Fatal(err)
	}
	if tc.Circuit.MaxFanIn() <= 256 {
		t.Skip("circuit unexpectedly narrow")
	}
	if _, err := Place(tc.Circuit, TrueNorthish()); err == nil {
		t.Error("fan-in violation not detected")
	}
	if _, err := Place(tc.Circuit, Unlimited()); err != nil {
		t.Errorf("unlimited device rejected circuit: %v", err)
	}
}

// Grouped construction brings fan-in under device limits (the Section 5
// remedy), at the cost of extra depth.
func TestGroupedBuildFitsDevice(t *testing.T) {
	plain, err := core.BuildTrace(8, 6, core.Options{Alg: bilinear.Strassen()})
	if err != nil {
		t.Fatal(err)
	}
	grouped, err := core.BuildTrace(8, 6, core.Options{Alg: bilinear.Strassen(), GroupSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Grouping bounds the Lemma 3.2 fan-ins; the single output gate
	// still reads all product terms (it needs input partitioning
	// instead), so compare the widest *summation* gate: max fan-in over
	// gates below the final level.
	interior := func(c *core.TraceCircuit) int {
		mx := 0
		depth := c.Circuit.Depth()
		for g := 0; g < c.Circuit.Size(); g++ {
			if c.Circuit.GateLevel(g) < depth {
				if f := c.Circuit.FanIn(g); f > mx {
					mx = f
				}
			}
		}
		return mx
	}
	if interior(grouped) >= interior(plain) {
		t.Errorf("grouping did not reduce interior fan-in: %d vs %d",
			interior(grouped), interior(plain))
	}
	// Both still decide correctly.
	adj := matrix.New(8, 8)
	adj.Set(0, 1, 1)
	adj.Set(1, 0, 1)
	adj.Set(0, 2, 1)
	adj.Set(2, 0, 1)
	adj.Set(1, 2, 1)
	adj.Set(2, 1, 1)
	for _, tc := range []*core.TraceCircuit{plain, grouped} {
		got, err := tc.Decide(adj) // one triangle: trace = 6 >= 6
		if err != nil {
			t.Fatal(err)
		}
		if !got {
			t.Error("triangle not detected")
		}
	}
}

// End-to-end: deploy a matmul circuit, decoded outputs match, energy is
// positive and bounded by gate count + edges.
func TestDeployMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	mc, err := core.BuildMatMul(4, core.Options{Alg: bilinear.Strassen()})
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.RandomBinary(rng, 4, 4, 0.5)
	bm := matrix.RandomBinary(rng, 4, 4, 0.5)
	in, err := mc.Assign(a, bm)
	if err != nil {
		t.Fatal(err)
	}
	vals, stats, err := Deploy(mc.Circuit, Loihiish(), in)
	if err != nil {
		t.Fatal(err)
	}
	if !mc.Decode(vals).Equal(a.Mul(bm)) {
		t.Error("deployed circuit computes wrong product")
	}
	if stats.Spikes <= 0 || stats.Spikes > int64(mc.Circuit.Size()) {
		t.Errorf("spikes %d outside (0, size]", stats.Spikes)
	}
	if ev := stats.OnCoreEvents + stats.OffCoreEvents; ev > mc.Circuit.Edges() {
		t.Errorf("events %d exceed edges %d", ev, mc.Circuit.Edges())
	}
	if stats.Timesteps != mc.Circuit.Depth() {
		t.Error("timesteps != depth")
	}
	if stats.Cores < 1 {
		t.Error("no cores used")
	}
}

// Energy scales with input activity: a denser matrix fires more gates.
func TestEnergyTracksActivity(t *testing.T) {
	mc, err := core.BuildMatMul(4, core.Options{Alg: bilinear.Strassen()})
	if err != nil {
		t.Fatal(err)
	}
	zero := matrix.New(4, 4)
	ones := matrix.New(4, 4)
	for i := range ones.Data {
		ones.Data[i] = 1
	}
	inZero, _ := mc.Assign(zero, zero)
	inOnes, _ := mc.Assign(ones, ones)
	_, sZero, err := Deploy(mc.Circuit, Unlimited(), inZero)
	if err != nil {
		t.Fatal(err)
	}
	_, sOnes, err := Deploy(mc.Circuit, Unlimited(), inOnes)
	if err != nil {
		t.Fatal(err)
	}
	if sOnes.Energy <= sZero.Energy {
		t.Errorf("all-ones energy %v not above all-zeros %v", sOnes.Energy, sZero.Energy)
	}
}

func TestRunErrors(t *testing.T) {
	c := tinyCircuit()
	if _, _, err := Run(c, Unlimited(), &Placement{CoreOf: make([]int32, 1)}, []bool{true, false}); err == nil {
		t.Error("mismatched placement accepted")
	}
	if _, err := Place(c, Device{Name: "broken"}); err == nil {
		t.Error("zero-capacity device accepted")
	}
}
