package neuro

import (
	"fmt"

	"repro/internal/circuit"
)

// PlaceLocality assigns gates to cores by consumer affinity: walking
// gates from the outputs backwards (reverse creation order, so every
// consumer is placed before its producers), each unassigned gate takes
// the least-loaded core, and then pulls as many of its producers as fit
// onto its own core. Producer-consumer edges thus tend to stay on-core,
// which is what minimizes off-core spike deliveries — the dominant
// energy term on mesh devices. Compare Place (level-order packing).
func PlaceLocality(c *circuit.Circuit, d Device) (*Placement, error) {
	if d.NeuronsPerCore < 1 {
		return nil, fmt.Errorf("neuro: device %q has no neurons per core", d.Name)
	}
	if d.MaxFanIn > 0 {
		if f := c.MaxFanIn(); f > d.MaxFanIn {
			return nil, fmt.Errorf("neuro: circuit max fan-in %d exceeds device %q limit %d", f, d.Name, d.MaxFanIn)
		}
	}
	const unassigned = int32(-2)
	p := &Placement{CoreOf: make([]int32, c.Size())}
	for i := range p.CoreOf {
		p.CoreOf[i] = unassigned
	}
	var load []int

	leastLoaded := func() int32 {
		best := int32(-1)
		min := d.NeuronsPerCore
		for core, l := range load {
			if l < min {
				min = l
				best = int32(core)
			}
		}
		if best < 0 {
			load = append(load, 0)
			best = int32(len(load) - 1)
		}
		return best
	}

	assign := func(g int, core int32) {
		p.CoreOf[g] = core
		load[core]++
	}

	for g := c.Size() - 1; g >= 0; g-- {
		if p.CoreOf[g] == unassigned {
			assign(g, leastLoaded())
		}
		core := p.CoreOf[g]
		spec := c.Gate(g)
		for _, w := range spec.Inputs {
			if int(w) < c.NumInputs() {
				continue
			}
			src := int(w) - c.NumInputs()
			if p.CoreOf[src] == unassigned && load[core] < d.NeuronsPerCore {
				assign(src, core)
			}
		}
	}
	p.NumCores = len(load)
	return p, nil
}
