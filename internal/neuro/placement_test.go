package neuro

import (
	"math/rand"
	"testing"

	"repro/internal/bilinear"
	"repro/internal/core"
	"repro/internal/matrix"
)

// Locality placement covers every gate, respects capacity, and computes
// the same circuit function.
func TestPlaceLocalityValid(t *testing.T) {
	mc, err := core.BuildMatMul(4, core.Options{Alg: bilinear.Strassen()})
	if err != nil {
		t.Fatal(err)
	}
	d := Device{Name: "small", NeuronsPerCore: 64, EnergyPerSpike: 1, EnergyPerHop: 0.1}
	p, err := PlaceLocality(mc.Circuit, d)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[int32]int)
	for g, core := range p.CoreOf {
		if core < 0 || int(core) >= p.NumCores {
			t.Fatalf("gate %d on invalid core %d", g, core)
		}
		counts[core]++
	}
	for core, n := range counts {
		if n > d.NeuronsPerCore {
			t.Fatalf("core %d holds %d > %d neurons", core, n, d.NeuronsPerCore)
		}
	}

	rng := rand.New(rand.NewSource(1))
	a := matrix.RandomBinary(rng, 4, 4, 0.5)
	b := matrix.RandomBinary(rng, 4, 4, 0.5)
	in, err := mc.Assign(a, b)
	if err != nil {
		t.Fatal(err)
	}
	vals, _, err := Run(mc.Circuit, d, p, in)
	if err != nil {
		t.Fatal(err)
	}
	if !mc.Decode(vals).Equal(a.Mul(b)) {
		t.Error("locality-placed circuit computes wrong product")
	}
}

// The ablation the placement exists for: locality placement yields
// fewer off-core spike deliveries than level-order packing on the same
// device, for the same circuit and input.
func TestLocalityBeatsLevelOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	mc, err := core.BuildMatMul(8, core.Options{Alg: bilinear.Strassen()})
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.RandomBinary(rng, 8, 8, 0.5)
	b := matrix.RandomBinary(rng, 8, 8, 0.5)
	in, err := mc.Assign(a, b)
	if err != nil {
		t.Fatal(err)
	}
	d := Loihiish()

	level, err := Place(mc.Circuit, d)
	if err != nil {
		t.Fatal(err)
	}
	local, err := PlaceLocality(mc.Circuit, d)
	if err != nil {
		t.Fatal(err)
	}
	_, sLevel, err := Run(mc.Circuit, d, level, in)
	if err != nil {
		t.Fatal(err)
	}
	_, sLocal, err := Run(mc.Circuit, d, local, in)
	if err != nil {
		t.Fatal(err)
	}
	if sLocal.OffCoreEvents >= sLevel.OffCoreEvents {
		t.Errorf("locality off-core %d not below level-order %d",
			sLocal.OffCoreEvents, sLevel.OffCoreEvents)
	}
	if sLocal.Energy >= sLevel.Energy {
		t.Errorf("locality energy %v not below level-order %v", sLocal.Energy, sLevel.Energy)
	}
	// Spike counts are placement-independent.
	if sLocal.Spikes != sLevel.Spikes {
		t.Errorf("spikes differ across placements: %d vs %d", sLocal.Spikes, sLevel.Spikes)
	}
}

func TestPlaceLocalityRejects(t *testing.T) {
	c := tinyCircuit()
	if _, err := PlaceLocality(c, Device{Name: "zero"}); err == nil {
		t.Error("zero-capacity device accepted")
	}
	tc, err := core.BuildTrace(4, 1, core.Options{Alg: bilinear.Strassen()})
	if err != nil {
		t.Fatal(err)
	}
	if tc.Circuit.MaxFanIn() > 256 {
		if _, err := PlaceLocality(tc.Circuit, TrueNorthish()); err == nil {
			t.Error("fan-in violation not detected")
		}
	}
}
