// Package pram implements the conventional parallel baseline the paper
// compares against (Sections 1 and 2.2): "the divide-and-conquer
// Strassen's algorithm has a natural O(log N)-time parallel (PRAM)
// implementation with a total work of O(N^{log2 7}) arithmetic
// operations". The circuits' pitch is constant *depth* at comparable
// total work; this package supplies the log-depth side of that
// comparison.
//
// Executor runs a bilinear algorithm as a fork-join task DAG: the r
// recursive block products execute concurrently (bounded by a worker
// pool), and the pre/post linear combinations are elementwise-parallel.
// Alongside wall-clock parallelism it tracks the two standard PRAM
// measures exactly:
//
//   - Work: total scalar operations (multiplications + additions), the
//     same count the sequential executor reports;
//   - Span: the critical-path length in scalar operations, which obeys
//     span(N) = span(N/2) + Θ(log N) for Strassen-like algorithms and
//     hence is Θ(log² N) in the EREW accounting used here (a CRCW
//     machine sums in O(log N / log log N); we report the binary-tree
//     span).
package pram

import (
	"fmt"
	"sync"

	"repro/internal/bilinear"
	"repro/internal/bitio"
	"repro/internal/matrix"
)

// Measures carries PRAM work/span accounting in units of scalar
// arithmetic operations.
type Measures struct {
	Work int64 // total operations
	Span int64 // critical path
}

// Executor runs bilinear fast matrix multiplication as a parallel
// fork-join computation.
type Executor struct {
	Alg *bilinear.Algorithm
	// Workers bounds concurrently executing recursive products
	// (<= 0 means GOMAXPROCS-driven unbounded fork-join).
	Workers int
	// Cutoff switches to the naive product at or below this dimension.
	Cutoff int

	sem chan struct{}
}

// NewExecutor returns a parallel executor.
func NewExecutor(alg *bilinear.Algorithm, workers, cutoff int) *Executor {
	if cutoff < 1 {
		cutoff = 1
	}
	e := &Executor{Alg: alg, Workers: workers, Cutoff: cutoff}
	if workers > 0 {
		e.sem = make(chan struct{}, workers)
	}
	return e
}

// Mul computes the product of two n x n matrices (n a power of Alg.T)
// in parallel, returning the product and the work/span measures of the
// computation that was actually performed.
func (e *Executor) Mul(a, b *matrix.Matrix) (*matrix.Matrix, Measures, error) {
	if a.Rows != a.Cols || b.Rows != b.Cols || a.Rows != b.Rows {
		return nil, Measures{}, fmt.Errorf("pram: Mul requires equal square matrices")
	}
	n := a.Rows
	if n == 0 {
		return matrix.New(0, 0), Measures{}, nil
	}
	if n != 1 && !bitio.IsPow(e.Alg.T, n) {
		return nil, Measures{}, fmt.Errorf("pram: dimension %d is not a power of T=%d", n, e.Alg.T)
	}
	c, m := e.mul(a, b)
	return c, m, nil
}

// fork runs f, possibly on another goroutine bounded by the pool.
func (e *Executor) fork(wg *sync.WaitGroup, f func()) {
	wg.Add(1)
	run := func() {
		defer wg.Done()
		f()
	}
	if e.sem == nil {
		go run()
		return
	}
	select {
	case e.sem <- struct{}{}:
		go func() {
			defer func() { <-e.sem }()
			run()
		}()
	default:
		run() // pool saturated: execute inline (avoids deadlock)
	}
}

func (e *Executor) mul(a, b *matrix.Matrix) (*matrix.Matrix, Measures) {
	n := a.Rows
	if n <= e.Cutoff {
		// Naive base case: n³ multiplications, n²(n-1) additions;
		// span = 1 multiplication + ceil(log2 n) addition-tree levels.
		work := int64(n)*int64(n)*int64(n) + int64(n)*int64(n)*int64(n-1)
		span := int64(1)
		if n > 1 {
			span += int64(bitio.CeilLog(2, n))
		}
		return a.Mul(b), Measures{Work: work, Span: span}
	}
	T := e.Alg.T
	half := n / T

	ablocks := make([]*matrix.Matrix, T*T)
	bblocks := make([]*matrix.Matrix, T*T)
	for i := 0; i < T*T; i++ {
		ablocks[i] = a.Block(i/T, i%T, half)
		bblocks[i] = b.Block(i/T, i%T, half)
	}

	// Phase 1 (parallel): linear combinations feeding the products.
	// Every entry of every combination is independent; the span of the
	// phase is one binary addition tree over the densest form.
	type side struct {
		mats []*matrix.Matrix
		work int64
		span int64
	}
	combine := func(blocks []*matrix.Matrix, coefs [][]int64) side {
		s := side{mats: make([]*matrix.Matrix, e.Alg.R)}
		maxTerms := 0
		for k := 0; k < e.Alg.R; k++ {
			sum := matrix.New(half, half)
			terms := 0
			for idx, w := range coefs[k] {
				if w == 0 {
					continue
				}
				sum.AddInPlace(blocks[idx], w)
				terms++
			}
			if terms > 1 {
				s.work += int64(terms-1) * int64(half) * int64(half)
			}
			if terms > maxTerms {
				maxTerms = terms
			}
			s.mats[k] = sum
		}
		if maxTerms > 1 {
			s.span = int64(bitio.CeilLog(2, maxTerms))
		}
		return s
	}
	as := combine(ablocks, e.Alg.A)
	bs := combine(bblocks, e.Alg.B)

	// Phase 2 (parallel): the r recursive products.
	products := make([]*matrix.Matrix, e.Alg.R)
	measures := make([]Measures, e.Alg.R)
	var wg sync.WaitGroup
	for k := 0; k < e.Alg.R; k++ {
		k := k
		e.fork(&wg, func() {
			products[k], measures[k] = e.mul(as.mats[k], bs.mats[k])
		})
	}
	wg.Wait()

	// Phase 3 (parallel): output combinations.
	out := matrix.New(n, n)
	var postWork int64
	maxPostTerms := 0
	for x := 0; x < T; x++ {
		for y := 0; y < T; y++ {
			sum := matrix.New(half, half)
			terms := 0
			for k, w := range e.Alg.C[x*T+y] {
				if w == 0 {
					continue
				}
				sum.AddInPlace(products[k], w)
				terms++
			}
			if terms > 1 {
				postWork += int64(terms-1) * int64(half) * int64(half)
			}
			if terms > maxPostTerms {
				maxPostTerms = terms
			}
			out.SetBlock(x, y, sum)
		}
	}
	var postSpan int64
	if maxPostTerms > 1 {
		postSpan = int64(bitio.CeilLog(2, maxPostTerms))
	}

	// Aggregate: work sums; span is the max child span (children run in
	// parallel) plus the sequential pre/post phases.
	var m Measures
	m.Work = as.work + bs.work + postWork
	var childSpan int64
	for k := 0; k < e.Alg.R; k++ {
		m.Work += measures[k].Work
		if measures[k].Span > childSpan {
			childSpan = measures[k].Span
		}
	}
	preSpan := as.span
	if bs.span > preSpan {
		preSpan = bs.span
	}
	m.Span = preSpan + childSpan + postSpan
	return out, m
}

// SpanBound returns the analytic span recurrence solution for an
// N = T^L instance with cutoff 1: Σ over levels of the pre+post
// addition-tree depths plus the base multiplication.
func SpanBound(alg *bilinear.Algorithm, n int) int64 {
	if n == 1 {
		return 1
	}
	L := bitio.Log(alg.T, n)
	maxPre := 0
	for k := 0; k < alg.R; k++ {
		if a := countNZ(alg.A[k]); a > maxPre {
			maxPre = a
		}
		if b := countNZ(alg.B[k]); b > maxPre {
			maxPre = b
		}
	}
	maxPost := 0
	for _, expr := range alg.C {
		if c := countNZ(expr); c > maxPost {
			maxPost = c
		}
	}
	var span int64 = 1 // base multiplication
	for l := 0; l < L; l++ {
		if maxPre > 1 {
			span += int64(bitio.CeilLog(2, maxPre))
		}
		if maxPost > 1 {
			span += int64(bitio.CeilLog(2, maxPost))
		}
	}
	return span
}

func countNZ(v []int64) int {
	n := 0
	for _, w := range v {
		if w != 0 {
			n++
		}
	}
	return n
}
