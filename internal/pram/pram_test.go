package pram

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bilinear"
	"repro/internal/matrix"
)

// Parallel execution is exact, across algorithms, sizes, worker counts.
func TestParallelCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, name := range []string{"strassen", "winograd", "naive2"} {
		alg, err := bilinear.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{2, 4, 8, 16} {
			for _, workers := range []int{0, 1, 4} {
				e := NewExecutor(alg, workers, 1)
				a := matrix.Random(rng, n, n, -9, 9)
				b := matrix.Random(rng, n, n, -9, 9)
				got, _, err := e.Mul(a, b)
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(a.Mul(b)) {
					t.Fatalf("%s n=%d workers=%d: wrong product", name, n, workers)
				}
			}
		}
	}
}

// Work matches the sequential executor's operation count exactly.
func TestWorkMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{2, 4, 8, 16} {
		alg := bilinear.Strassen()
		a := matrix.Random(rng, n, n, -5, 5)
		b := matrix.Random(rng, n, n, -5, 5)

		seq := bilinear.NewExecutor(alg, 1)
		if _, err := seq.Mul(a, b); err != nil {
			t.Fatal(err)
		}
		wantWork := seq.Ops().Total()

		par := NewExecutor(alg, 4, 1)
		_, m, err := par.Mul(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if m.Work != wantWork {
			t.Errorf("n=%d: parallel work %d != sequential %d", n, m.Work, wantWork)
		}
	}
}

// Span grows like Θ(log² N) (levels x addition-tree depth), far below
// work: the "O(log N)-time PRAM implementation" the paper references,
// in our EREW accounting.
func TestSpanGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	alg := bilinear.Strassen()
	var prevSpan int64
	for _, n := range []int{2, 4, 8, 16, 32} {
		a := matrix.RandomBinary(rng, n, n, 0.5)
		b := matrix.RandomBinary(rng, n, n, 0.5)
		e := NewExecutor(alg, 0, 1)
		_, m, err := e.Mul(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if m.Span != SpanBound(alg, n) {
			t.Errorf("n=%d: span %d != analytic %d", n, m.Span, SpanBound(alg, n))
		}
		if m.Span <= prevSpan {
			t.Errorf("n=%d: span %d not increasing", n, m.Span)
		}
		if m.Span >= m.Work/4 && n >= 8 {
			t.Errorf("n=%d: span %d suspiciously close to work %d", n, m.Span, m.Work)
		}
		prevSpan = m.Span
	}
	// Strassen: pre trees depth 1 (<=2 terms), post depth 2 (<=4 terms)
	// per level, base 1: span(2^L) = 1 + 3L.
	if got := SpanBound(alg, 32); got != 1+3*5 {
		t.Errorf("SpanBound(32) = %d, want 16", got)
	}
}

// Cutoff > 1 trades span for fewer levels and remains exact.
func TestCutoff(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	e := NewExecutor(bilinear.Strassen(), 2, 4)
	a := matrix.Random(rng, 16, 16, -5, 5)
	b := matrix.Random(rng, 16, 16, -5, 5)
	got, m, err := e.Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(a.Mul(b)) {
		t.Fatal("cutoff product wrong")
	}
	if m.Work == 0 || m.Span == 0 {
		t.Error("measures missing")
	}
}

func TestErrors(t *testing.T) {
	e := NewExecutor(bilinear.Strassen(), 0, 1)
	if _, _, err := e.Mul(matrix.New(2, 3), matrix.New(3, 2)); err == nil {
		t.Error("non-square accepted")
	}
	if _, _, err := e.Mul(matrix.New(3, 3), matrix.New(3, 3)); err == nil {
		t.Error("non-power dimension accepted")
	}
	if c, _, err := e.Mul(matrix.New(0, 0), matrix.New(0, 0)); err != nil || c.Rows != 0 {
		t.Error("empty product mishandled")
	}
}

// Property: parallel equals sequential on random instances.
func TestParallelProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(3))
		a := matrix.Random(rng, n, n, -20, 20)
		b := matrix.Random(rng, n, n, -20, 20)
		e := NewExecutor(bilinear.Strassen(), 1+rng.Intn(4), 1+rng.Intn(2))
		got, _, err := e.Mul(a, b)
		return err == nil && got.Equal(a.Mul(b))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
