// Package ratlin is an exact linear-algebra kernel over the rationals
// (math/big.Rat): Gaussian elimination with full consistency checking.
// The tensor package uses it to *complete* partial rank decompositions
// of the matrix multiplication tensor — the trilinear identity is
// linear in each factor separately, so two known factors determine the
// third by solving an (overdetermined) exact linear system.
package ratlin

import (
	"fmt"
	"math/big"
)

// System is a dense linear system A·x = b over the rationals.
type System struct {
	Rows, Cols int
	a          [][]*big.Rat
	b          []*big.Rat
}

// NewSystem returns an all-zero system with the given shape.
func NewSystem(rows, cols int) *System {
	s := &System{Rows: rows, Cols: cols, a: make([][]*big.Rat, rows), b: make([]*big.Rat, rows)}
	for i := 0; i < rows; i++ {
		s.a[i] = make([]*big.Rat, cols)
		for j := 0; j < cols; j++ {
			s.a[i][j] = new(big.Rat)
		}
		s.b[i] = new(big.Rat)
	}
	return s
}

// SetCoef assigns A[row][col] = v.
func (s *System) SetCoef(row, col int, v int64) {
	s.a[row][col].SetInt64(v)
}

// SetRHS assigns b[row] = v.
func (s *System) SetRHS(row int, v int64) {
	s.b[row].SetInt64(v)
}

// Solve runs Gaussian elimination with partial (first-nonzero) pivoting
// and returns a particular solution with free variables set to zero,
// plus the system's rank. It returns an error iff the system is
// inconsistent. Arithmetic is exact.
func (s *System) Solve() ([]*big.Rat, int, error) {
	// Work on copies to keep the system reusable.
	a := make([][]*big.Rat, s.Rows)
	b := make([]*big.Rat, s.Rows)
	for i := 0; i < s.Rows; i++ {
		a[i] = make([]*big.Rat, s.Cols)
		for j := 0; j < s.Cols; j++ {
			a[i][j] = new(big.Rat).Set(s.a[i][j])
		}
		b[i] = new(big.Rat).Set(s.b[i])
	}

	pivotCol := make([]int, 0, s.Cols) // column of each pivot row
	row := 0
	for col := 0; col < s.Cols && row < s.Rows; col++ {
		// Find a pivot in this column at or below `row`.
		pivot := -1
		for r := row; r < s.Rows; r++ {
			if a[r][col].Sign() != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		a[row], a[pivot] = a[pivot], a[row]
		b[row], b[pivot] = b[pivot], b[row]
		// Normalize and eliminate below.
		inv := new(big.Rat).Inv(a[row][col])
		for j := col; j < s.Cols; j++ {
			a[row][j].Mul(a[row][j], inv)
		}
		b[row].Mul(b[row], inv)
		for r := row + 1; r < s.Rows; r++ {
			f := a[r][col]
			if f.Sign() == 0 {
				continue
			}
			factor := new(big.Rat).Set(f)
			for j := col; j < s.Cols; j++ {
				t := new(big.Rat).Mul(factor, a[row][j])
				a[r][j].Sub(a[r][j], t)
			}
			t := new(big.Rat).Mul(factor, b[row])
			b[r].Sub(b[r], t)
		}
		pivotCol = append(pivotCol, col)
		row++
	}
	rank := row
	// Consistency: any remaining row with zero coefficients but nonzero
	// RHS is a contradiction.
	for r := rank; r < s.Rows; r++ {
		if b[r].Sign() != 0 {
			return nil, rank, fmt.Errorf("ratlin: inconsistent system (row %d reduces to 0 = %s)", r, b[r].RatString())
		}
	}
	// Back-substitute; free variables stay zero.
	x := make([]*big.Rat, s.Cols)
	for j := range x {
		x[j] = new(big.Rat)
	}
	for i := rank - 1; i >= 0; i-- {
		col := pivotCol[i]
		sum := new(big.Rat).Set(b[i])
		for j := col + 1; j < s.Cols; j++ {
			if a[i][j].Sign() != 0 {
				t := new(big.Rat).Mul(a[i][j], x[j])
				sum.Sub(sum, t)
			}
		}
		x[col] = sum
	}
	return x, rank, nil
}
