package ratlin

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func ratEq(x *big.Rat, num, den int64) bool {
	return x.Cmp(big.NewRat(num, den)) == 0
}

func TestSolveUnique(t *testing.T) {
	// 2x + y = 5; x - y = 1 -> x = 2, y = 1.
	s := NewSystem(2, 2)
	s.SetCoef(0, 0, 2)
	s.SetCoef(0, 1, 1)
	s.SetRHS(0, 5)
	s.SetCoef(1, 0, 1)
	s.SetCoef(1, 1, -1)
	s.SetRHS(1, 1)
	x, rank, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if rank != 2 || !ratEq(x[0], 2, 1) || !ratEq(x[1], 1, 1) {
		t.Errorf("x = %v %v rank %d", x[0], x[1], rank)
	}
}

func TestSolveRational(t *testing.T) {
	// 3x = 1 -> x = 1/3.
	s := NewSystem(1, 1)
	s.SetCoef(0, 0, 3)
	s.SetRHS(0, 1)
	x, _, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !ratEq(x[0], 1, 3) {
		t.Errorf("x = %v", x[0])
	}
}

func TestSolveInconsistent(t *testing.T) {
	// x + y = 1; x + y = 2.
	s := NewSystem(2, 2)
	s.SetCoef(0, 0, 1)
	s.SetCoef(0, 1, 1)
	s.SetRHS(0, 1)
	s.SetCoef(1, 0, 1)
	s.SetCoef(1, 1, 1)
	s.SetRHS(1, 2)
	if _, _, err := s.Solve(); err == nil {
		t.Error("inconsistent system solved")
	}
}

func TestSolveUnderdetermined(t *testing.T) {
	// x + y = 3 with 2 unknowns: particular solution with free var zero.
	s := NewSystem(1, 2)
	s.SetCoef(0, 0, 1)
	s.SetCoef(0, 1, 1)
	s.SetRHS(0, 3)
	x, rank, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if rank != 1 {
		t.Errorf("rank %d", rank)
	}
	// x0 + x1 must equal 3.
	sum := new(big.Rat).Add(x[0], x[1])
	if !ratEq(sum, 3, 1) {
		t.Errorf("solution does not satisfy the equation: %v + %v", x[0], x[1])
	}
}

func TestSolveOverdeterminedConsistent(t *testing.T) {
	// Three copies of x = 4.
	s := NewSystem(3, 1)
	for r := 0; r < 3; r++ {
		s.SetCoef(r, 0, 1)
		s.SetRHS(r, 4)
	}
	x, rank, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if rank != 1 || !ratEq(x[0], 4, 1) {
		t.Errorf("x = %v rank %d", x[0], rank)
	}
}

// Property: for random integer matrices and solution vectors, solving
// A·x = A·x0 recovers a vector with A·x = b exactly.
func TestSolveProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(6)
		cols := 1 + rng.Intn(6)
		a := make([][]int64, rows)
		x0 := make([]int64, cols)
		for j := range x0 {
			x0[j] = rng.Int63n(11) - 5
		}
		s := NewSystem(rows, cols)
		for i := 0; i < rows; i++ {
			a[i] = make([]int64, cols)
			var rhs int64
			for j := 0; j < cols; j++ {
				a[i][j] = rng.Int63n(11) - 5
				s.SetCoef(i, j, a[i][j])
				rhs += a[i][j] * x0[j]
			}
			s.SetRHS(i, rhs)
		}
		x, _, err := s.Solve()
		if err != nil {
			return false // constructed consistent; must solve
		}
		// Check A·x = b exactly.
		for i := 0; i < rows; i++ {
			sum := new(big.Rat)
			var want int64
			for j := 0; j < cols; j++ {
				term := new(big.Rat).Mul(big.NewRat(a[i][j], 1), x[j])
				sum.Add(sum, term)
				want += a[i][j] * x0[j]
			}
			if sum.Cmp(big.NewRat(want, 1)) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// The system is reusable: Solve twice gives identical answers.
func TestSolveReusable(t *testing.T) {
	s := NewSystem(1, 1)
	s.SetCoef(0, 0, 2)
	s.SetRHS(0, 8)
	x1, _, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	x2, _, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if x1[0].Cmp(x2[0]) != 0 {
		t.Error("solve mutated the system")
	}
}
