package serve

import (
	"time"

	"repro/internal/circuit"
)

// dispatch is one shard's dispatcher goroutine: it drains its own
// stripe's queue into batches of up to MaxBatch samples, steals from
// sibling stripes when its linger expires with capacity left, evaluates
// each batch in one bit-sliced pass through its private evaluator, and
// fans the output bits back to the waiters.
//
// Wakeup protocol: a dispatcher blocks only after a non-blocking sweep
// of every stripe (own first, then siblings) came back empty, and it
// sleeps on its own queue plus the entry's capacity-1 notify channel.
// Every successful enqueue posts a token, so an enqueue that races the
// empty sweep leaves a token pending and some dispatcher re-sweeps
// after it. The sweep-before-sleep is load-bearing: tokens are dropped
// while the channel is full, so "token consumed" cannot be trusted to
// mean "one request"; what keeps a stalled shard's stripe from
// starving is that no sibling ever sleeps while that stripe is
// non-empty.
//
// Retirement protocol: when done closes (eviction or server shutdown),
// each dispatcher serves final drains over every stripe (not just its
// own — a sibling may already be gone), then retires; the last one out
// closes dead. The ordering — reply to everything dequeued, then close
// dead — is what makes the waiter side sound: after observing dead, a
// waiter's reply is either already buffered in its channel or will
// never arrive, so a non-blocking recheck decides retry-vs-return
// without any further synchronization.
func (s *Server) dispatch(e *entry, shard int) {
	st := &e.stripes[shard]
	defer func() {
		st.ev.Close()
		if e.running.Add(-1) == 0 {
			close(e.dead)
			s.dispatchers.Done() // release the entry's group slot
		}
	}()

	var (
		batch []*request
		in    circuit.Planes  // packed input planes, reused across batches
		out   *circuit.Planes // gathered output planes, reused
		row   []bool          // per-sample output scratch for Assignment
	)
	var linger *time.Timer
	if s.cfg.Linger > 0 {
		linger = time.NewTimer(s.cfg.Linger)
		if !linger.Stop() {
			<-linger.C
		}
		defer linger.Stop()
	}

	for {
		batch = batch[:0]
		// Sweep before sleeping: our own stripe has priority (healthy
		// shards batch their own traffic); siblings are raided only when
		// it is dry, which is exactly when their work would otherwise
		// wait on a busy or stalled owner.
		s.fillFrom(st.queue, &batch)
		if len(batch) == 0 {
			s.steal(e, shard, &batch)
		}
		if len(batch) == 0 {
			select {
			case <-e.done:
				s.finalDrain(e, st, shard, &in, &out, &row)
				return
			case first := <-st.queue:
				batch = append(batch, first)
			case <-e.notify:
				// A request landed while dispatchers were idle — possibly
				// on a stripe whose own dispatcher is busy or stalled. The
				// loop-top sweep gathers whatever the token announced (or
				// finds a sibling already took it).
				continue
			}
		}
		// Coalesce: whatever is already queued on our stripe joins
		// immediately; then linger briefly for stragglers.
		s.fillFrom(st.queue, &batch)
		if len(batch) < s.cfg.MaxBatch && linger != nil {
			linger.Reset(s.cfg.Linger)
		lingering:
			for len(batch) < s.cfg.MaxBatch {
				select {
				case r := <-st.queue:
					batch = append(batch, r)
				case <-linger.C:
					break lingering
				case <-e.done:
					break lingering
				}
			}
			if !linger.Stop() {
				select {
				case <-linger.C:
				default:
				}
			}
		}
		// Work stealing on linger expiry: batch capacity left over after
		// our own stripe ran dry is filled from sibling stripes, so a
		// hot shape's requests coalesce across shards instead of each
		// stripe dispatching a fraction-full batch.
		if len(batch) < s.cfg.MaxBatch {
			s.steal(e, shard, &batch)
		}
		out, row = s.serveBatch(e, st, shard, batch, &in, out, row)
	}
}

// fillFrom non-blockingly moves queued requests from q into the batch.
func (s *Server) fillFrom(q chan *request, batch *[]*request) {
	for len(*batch) < s.cfg.MaxBatch {
		select {
		case r := <-q:
			*batch = append(*batch, r)
		default:
			return
		}
	}
}

// steal non-blockingly fills the batch from sibling stripes (metered).
func (s *Server) steal(e *entry, shard int, batch *[]*request) {
	if len(e.stripes) == 1 {
		return
	}
	before := len(*batch)
	for i := 1; i < len(e.stripes) && len(*batch) < s.cfg.MaxBatch; i++ {
		s.fillFrom(e.stripes[(shard+i)%len(e.stripes)].queue, batch)
	}
	if n := len(*batch) - before; n > 0 {
		s.metrics.steals.Add(int64(n))
	}
}

// finalDrain serves every request still queued at retirement, sweeping
// all stripes: queued work is real accepted work — graceful shutdown
// completes it rather than erroring it — and a sibling dispatcher may
// have retired already, so its stripe is drained here too. The drain
// runs in MaxBatch slices so eviction under load cannot build one
// unbounded batch.
func (s *Server) finalDrain(e *entry, st *stripe, shard int, in *circuit.Planes, out **circuit.Planes, row *[]bool) {
	var batch []*request
	for {
		batch = batch[:0]
		for i := 0; i < len(e.stripes) && len(batch) < s.cfg.MaxBatch; i++ {
			s.fillFrom(e.stripes[(shard+i)%len(e.stripes)].queue, &batch)
		}
		if len(batch) == 0 {
			return
		}
		*out, *row = s.serveBatch(e, st, shard, batch, in, *out, *row)
	}
}

// serveBatch evaluates one coalesced batch on the shard's private
// evaluator and replies to every request. Cancelled requests are
// dropped before the evaluation (their waiters have already returned).
// Returns the reusable scratch.
func (s *Server) serveBatch(e *entry, st *stripe, shard int, batch []*request, in *circuit.Planes, out *circuit.Planes, row []bool) (*circuit.Planes, []bool) {
	if s.evalGate != nil {
		s.evalGate(shard)
	}
	if s.holdBatch != nil {
		s.holdBatch <- struct{}{} // announce: a batch is held
		<-s.holdBatch             // release
	}
	// Drop requests whose context ended while queued.
	live := batch[:0]
	for _, r := range batch {
		if err := r.ctx.Err(); err != nil {
			s.metrics.dropped.Add(1)
			r.reply <- reply{err: err}
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return out, row
	}
	s.metrics.batches.Add(1)
	s.metrics.samples.Add(int64(len(live)))
	s.metrics.batchSize.observe(int64(len(live)))

	start := time.Now()
	if len(live) == 1 {
		// Singleton fast path: a batch of one evaluates cheaper through
		// the scalar engine than through a 1/64-occupied plane pass.
		s.metrics.singletons.Add(1)
		r := live[0]
		vals := st.ev.Eval(r.in)
		o := make([]bool, len(e.outs))
		for i, w := range e.outs {
			o[i] = vals[w]
		}
		var gates int64
		if r.energy {
			gates = e.built.Circuit().Energy(vals)
			s.metrics.energyRequests.Add(1)
			s.metrics.energyGates.Add(gates)
		}
		s.metrics.evalLatency.observeSince(start)
		r.reply <- reply{out: o, energy: gates}
		return out, row
	}

	// Fan-in: pack the live inputs into reused planes. Reset zeroes the
	// words, re-establishing the zero-tail invariant for the partial
	// final block (pinned by the padding-audit tests in
	// internal/circuit).
	in.Reset(e.built.Circuit().NumInputs(), len(live))
	for i, r := range live {
		in.SetRow(i, r.in)
	}
	planes := st.ev.EvalPlanes(in)
	// Energy accounting rides the same plane pass: one popcount over
	// the gate planes yields every requester's firing count, so the
	// batched figure is bit-identical to the scalar Energy path. The
	// sweep is skipped entirely when no request in the batch asked.
	var energies []int64
	for _, r := range live {
		if r.energy {
			energies = e.built.Circuit().EnergyBatch(planes)
			break
		}
	}
	// Fan-out: gather only the marked-output planes (a few hundred bits
	// per sample) instead of materializing every wire.
	out = planes.GatherInto(out, e.outs)
	s.metrics.evalLatency.observeSince(start)
	for i, r := range live {
		row = out.Assignment(i, row)
		o := make([]bool, len(row))
		copy(o, row)
		var gates int64
		if r.energy {
			gates = energies[i]
			s.metrics.energyRequests.Add(1)
			s.metrics.energyGates.Add(gates)
		}
		r.reply <- reply{out: o, energy: gates}
	}
	return out, row
}
