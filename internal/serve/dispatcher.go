package serve

import (
	"time"

	"repro/internal/circuit"
)

// dispatch is one entry's dispatcher goroutine: it drains the request
// queue into batches of up to MaxBatch samples, evaluates each batch in
// one bit-sliced pass, and fans the output bits back to the waiters.
//
// Retirement protocol: when done closes (eviction or server shutdown),
// the dispatcher serves one final drain of whatever is queued, then
// closes dead. The ordering — reply to everything dequeued, then close
// dead — is what makes the waiter side sound: after observing dead, a
// waiter's reply is either already buffered in its channel or will
// never arrive, so a non-blocking recheck decides retry-vs-return
// without any further synchronization.
func (s *Server) dispatch(e *entry) {
	defer s.dispatchers.Done()
	defer e.ev.Close()
	defer close(e.dead)

	var (
		batch []*request
		in    circuit.Planes  // packed input planes, reused across batches
		out   *circuit.Planes // gathered output planes, reused
		row   []bool          // per-sample output scratch for Assignment
	)
	var linger *time.Timer
	if s.cfg.Linger > 0 {
		linger = time.NewTimer(s.cfg.Linger)
		if !linger.Stop() {
			<-linger.C
		}
		defer linger.Stop()
	}

	for {
		select {
		case <-e.done:
			s.finalDrain(e, &in, &out, &row)
			return
		case first := <-e.queue:
			batch = append(batch[:0], first)
			// Coalesce: whatever is already queued joins immediately;
			// then linger briefly for stragglers.
			s.fill(e, &batch)
			if len(batch) < s.cfg.MaxBatch && linger != nil {
				linger.Reset(s.cfg.Linger)
			lingering:
				for len(batch) < s.cfg.MaxBatch {
					select {
					case r := <-e.queue:
						batch = append(batch, r)
					case <-linger.C:
						break lingering
					case <-e.done:
						break lingering
					}
				}
				if !linger.Stop() {
					select {
					case <-linger.C:
					default:
					}
				}
			}
			out, row = s.serveBatch(e, batch, &in, out, row)
		}
	}
}

// fill non-blockingly moves already-queued requests into the batch.
func (s *Server) fill(e *entry, batch *[]*request) {
	for len(*batch) < s.cfg.MaxBatch {
		select {
		case r := <-e.queue:
			*batch = append(*batch, r)
		default:
			return
		}
	}
}

// finalDrain serves every request still queued at retirement. Queued
// work is real accepted work — graceful shutdown completes it rather
// than erroring it — and the drain runs in MaxBatch slices so eviction
// under load cannot build one unbounded batch.
func (s *Server) finalDrain(e *entry, in *circuit.Planes, out **circuit.Planes, row *[]bool) {
	var batch []*request
	for {
		batch = batch[:0]
		s.fill(e, &batch)
		if len(batch) == 0 {
			return
		}
		*out, *row = s.serveBatch(e, batch, in, *out, *row)
	}
}

// serveBatch evaluates one coalesced batch and replies to every
// request. Cancelled requests are dropped before the evaluation (their
// waiters have already returned). Returns the reusable scratch.
func (s *Server) serveBatch(e *entry, batch []*request, in *circuit.Planes, out *circuit.Planes, row []bool) (*circuit.Planes, []bool) {
	if s.holdBatch != nil {
		s.holdBatch <- struct{}{} // announce: a batch is held
		<-s.holdBatch             // release
	}
	// Drop requests whose context ended while queued.
	live := batch[:0]
	for _, r := range batch {
		if err := r.ctx.Err(); err != nil {
			s.metrics.dropped.Add(1)
			r.reply <- reply{err: err}
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return out, row
	}
	s.metrics.batches.Add(1)
	s.metrics.samples.Add(int64(len(live)))
	s.metrics.batchSize.observe(int64(len(live)))

	start := time.Now()
	if len(live) == 1 {
		// Singleton fast path: a batch of one evaluates cheaper through
		// the scalar engine than through a 1/64-occupied plane pass.
		s.metrics.singletons.Add(1)
		r := live[0]
		vals := e.ev.Eval(r.in)
		o := make([]bool, len(e.outs))
		for i, w := range e.outs {
			o[i] = vals[w]
		}
		s.metrics.evalLatency.observeSince(start)
		r.reply <- reply{out: o}
		return out, row
	}

	// Fan-in: pack the live inputs into reused planes. Reset zeroes the
	// words, re-establishing the zero-tail invariant for the partial
	// final block (pinned by the padding-audit tests in
	// internal/circuit).
	in.Reset(e.built.Circuit().NumInputs(), len(live))
	for i, r := range live {
		in.SetRow(i, r.in)
	}
	planes := e.ev.EvalPlanes(in)
	// Fan-out: gather only the marked-output planes (a few hundred bits
	// per sample) instead of materializing every wire.
	out = planes.GatherInto(out, e.outs)
	s.metrics.evalLatency.observeSince(start)
	for i, r := range live {
		row = out.Assignment(i, row)
		o := make([]bool, len(row))
		copy(o, row)
		r.reply <- reply{out: o}
	}
	return out, row
}
