package serve

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
)

// Binary frame codec for POST /v1/eval — the low-overhead alternative
// to the JSON endpoints. A frame carries the shape selector in a
// fixed+varint header and the raw circuit input bits packed 8 per byte
// (LSB first), so a hot client skips JSON marshalling entirely and the
// wire cost per request drops from kilobytes of digit arrays to a few
// dozen header bytes plus ceil(bits/8).
//
// Request frame ("TCF1"):
//
//	magic[4] op[1] alg[1] flags[1]
//	uvarint N, varint Tau, uvarint Depth, uvarint EntryBits, uvarint GroupSize
//	uvarint nbits, packed input bits
//
// Response frame ("TCR1"):
//
//	magic[4] uvarint nbits, packed output bits (Circuit.Outputs order)
//
// Both sides are strict: unknown op/alg bytes, truncated payloads,
// nonzero padding bits and trailing bytes are all rejected, mirroring
// the trailing-byte-strict TCS1 store decoder.
const FrameContentType = "application/x-tcframe"

var (
	frameMagic     = [4]byte{'T', 'C', 'F', '1'}
	frameRespMagic = [4]byte{'T', 'C', 'R', '1'}
)

// maxFrameBits bounds the declared bit counts so a hostile header
// cannot force a huge allocation before validation against the circuit.
const maxFrameBits = 1 << 28

var frameOps = map[core.Op]byte{core.OpMatMul: 1, core.OpTrace: 2, core.OpCount: 3}
var frameAlgs = map[string]byte{"strassen": 1, "winograd": 2, "naive2": 3}

var frameOpByCode = invertOps(frameOps)
var frameAlgByCode = invertAlgs(frameAlgs)

func invertOps(m map[core.Op]byte) map[byte]core.Op {
	out := make(map[byte]core.Op, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

func invertAlgs(m map[string]byte) map[byte]string {
	out := make(map[byte]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// EncodeFrame serializes one evaluation request: the shape selector and
// the circuit input bits (the same assignment Do takes).
func EncodeFrame(shape core.Shape, in []bool) ([]byte, error) {
	op, ok := frameOps[shape.Op]
	if !ok {
		return nil, fmt.Errorf("serve: frame: unknown op %q", shape.Op)
	}
	alg, ok := frameAlgs[shape.Alg]
	if !ok {
		return nil, fmt.Errorf("serve: frame: unknown algorithm %q", shape.Alg)
	}
	if shape.N < 0 || shape.Depth < 0 || shape.EntryBits < 0 || shape.GroupSize < 0 {
		return nil, fmt.Errorf("serve: frame: negative shape field in %s", shape.Key())
	}
	var flags byte
	if shape.Signed {
		flags |= 1
	}
	if shape.SharedMSB {
		flags |= 2
	}
	b := make([]byte, 0, 32+(len(in)+7)/8)
	b = append(b, frameMagic[:]...)
	b = append(b, op, alg, flags)
	b = binary.AppendUvarint(b, uint64(shape.N))
	b = binary.AppendVarint(b, shape.Tau)
	b = binary.AppendUvarint(b, uint64(shape.Depth))
	b = binary.AppendUvarint(b, uint64(shape.EntryBits))
	b = binary.AppendUvarint(b, uint64(shape.GroupSize))
	return appendBits(b, in), nil
}

// DecodeFrame parses one request frame, rejecting malformed, truncated
// or trailing-padded input.
func DecodeFrame(b []byte) (core.Shape, []bool, error) {
	var shape core.Shape
	if len(b) < len(frameMagic)+3 {
		return shape, nil, fmt.Errorf("serve: frame: %d bytes is shorter than the header", len(b))
	}
	if [4]byte(b[:4]) != frameMagic {
		return shape, nil, fmt.Errorf("serve: frame: bad magic %q", b[:4])
	}
	opCode, algCode, flags := b[4], b[5], b[6]
	b = b[7:]
	op, ok := frameOpByCode[opCode]
	if !ok {
		return shape, nil, fmt.Errorf("serve: frame: unknown op code %d", opCode)
	}
	alg, ok := frameAlgByCode[algCode]
	if !ok {
		return shape, nil, fmt.Errorf("serve: frame: unknown algorithm code %d", algCode)
	}
	if flags > 3 {
		return shape, nil, fmt.Errorf("serve: frame: unknown flag bits %#x", flags)
	}
	shape.Op, shape.Alg = op, alg
	shape.Signed = flags&1 != 0
	shape.SharedMSB = flags&2 != 0
	var err error
	if shape.N, b, err = frameUvarint(b, "n"); err != nil {
		return shape, nil, err
	}
	var tau int64
	var k int
	if tau, k = binary.Varint(b); k <= 0 {
		return shape, nil, fmt.Errorf("serve: frame: bad tau varint")
	}
	shape.Tau, b = tau, b[k:]
	if shape.Depth, b, err = frameUvarint(b, "depth"); err != nil {
		return shape, nil, err
	}
	if shape.EntryBits, b, err = frameUvarint(b, "entry bits"); err != nil {
		return shape, nil, err
	}
	if shape.GroupSize, b, err = frameUvarint(b, "group size"); err != nil {
		return shape, nil, err
	}
	in, rest, err := parseBits(b)
	if err != nil {
		return shape, nil, err
	}
	if len(rest) != 0 {
		return shape, nil, fmt.Errorf("serve: frame: %d trailing bytes", len(rest))
	}
	return shape, in, nil
}

// EncodeFrameResponse serializes the marked-output bits of one reply.
func EncodeFrameResponse(out []bool) []byte {
	b := make([]byte, 0, 8+(len(out)+7)/8)
	b = append(b, frameRespMagic[:]...)
	return appendBits(b, out)
}

// DecodeFrameResponse parses a response frame back into output bits.
func DecodeFrameResponse(b []byte) ([]bool, error) {
	if len(b) < len(frameRespMagic) {
		return nil, fmt.Errorf("serve: frame: response shorter than magic")
	}
	if [4]byte(b[:4]) != frameRespMagic {
		return nil, fmt.Errorf("serve: frame: bad response magic %q", b[:4])
	}
	out, rest, err := parseBits(b[4:])
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("serve: frame: %d trailing response bytes", len(rest))
	}
	return out, nil
}

func frameUvarint(b []byte, field string) (int, []byte, error) {
	v, k := binary.Uvarint(b)
	if k <= 0 {
		return 0, nil, fmt.Errorf("serve: frame: bad %s varint", field)
	}
	if v > maxFrameBits {
		return 0, nil, fmt.Errorf("serve: frame: %s %d out of range", field, v)
	}
	return int(v), b[k:], nil
}

// appendBits packs bits 8 per byte, LSB first, behind a uvarint count.
func appendBits(b []byte, bits []bool) []byte {
	b = binary.AppendUvarint(b, uint64(len(bits)))
	var cur byte
	for i, v := range bits {
		if v {
			cur |= 1 << (i % 8)
		}
		if i%8 == 7 {
			b = append(b, cur)
			cur = 0
		}
	}
	if len(bits)%8 != 0 {
		b = append(b, cur)
	}
	return b
}

// parseBits reverses appendBits, returning the unconsumed tail. Padding
// bits in the final byte must be zero (one canonical encoding per bit
// vector).
func parseBits(b []byte) ([]bool, []byte, error) {
	n, k := binary.Uvarint(b)
	if k <= 0 {
		return nil, nil, fmt.Errorf("serve: frame: bad bit count varint")
	}
	if n > maxFrameBits {
		return nil, nil, fmt.Errorf("serve: frame: bit count %d out of range", n)
	}
	b = b[k:]
	nb := int(n+7) / 8
	if len(b) < nb {
		return nil, nil, fmt.Errorf("serve: frame: truncated bits: have %d bytes, want %d", len(b), nb)
	}
	bits := make([]bool, n)
	for i := range bits {
		bits[i] = b[i/8]&(1<<(i%8)) != 0
	}
	for i := int(n); i < nb*8; i++ {
		if b[i/8]&(1<<(i%8)) != 0 {
			return nil, nil, fmt.Errorf("serve: frame: nonzero padding bit %d", i)
		}
	}
	return bits, b[nb:], nil
}
