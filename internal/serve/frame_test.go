package serve

import (
	"bytes"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// Round trip: every shape field and every input bit survives
// encode/decode for a spread of shapes, including the tricky header
// values (negative Tau zigzags, bit counts off byte boundaries).
func TestFrameRoundTrip(t *testing.T) {
	shapes := []core.Shape{
		{Op: core.OpMatMul, N: 4, Alg: "strassen", EntryBits: 2, Signed: true},
		{Op: core.OpTrace, N: 8, Tau: -127, Alg: "winograd", Depth: 6, SharedMSB: true},
		{Op: core.OpCount, N: 16, Alg: "naive2", GroupSize: 3},
		{Op: core.OpTrace, N: 4, Tau: 1 << 40, Alg: "strassen"},
	}
	rng := rand.New(rand.NewSource(5))
	for _, shape := range shapes {
		for _, nbits := range []int{0, 1, 7, 8, 9, 64, 193} {
			in := make([]bool, nbits)
			for i := range in {
				in[i] = rng.Intn(2) == 1
			}
			b, err := EncodeFrame(shape, in)
			if err != nil {
				t.Fatalf("%s/%d bits: %v", shape.Key(), nbits, err)
			}
			gotShape, gotIn, err := DecodeFrame(b)
			if err != nil {
				t.Fatalf("%s/%d bits: decode: %v", shape.Key(), nbits, err)
			}
			if gotShape != shape {
				t.Errorf("shape %+v round-tripped to %+v", shape, gotShape)
			}
			if len(gotIn) != len(in) {
				t.Fatalf("%d bits round-tripped to %d", len(in), len(gotIn))
			}
			for i := range in {
				if gotIn[i] != in[i] {
					t.Errorf("%s/%d bits: bit %d flipped", shape.Key(), nbits, i)
				}
			}
		}
	}
}

func TestFrameResponseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, nbits := range []int{0, 1, 8, 13, 200} {
		out := make([]bool, nbits)
		for i := range out {
			out[i] = rng.Intn(2) == 1
		}
		got, err := DecodeFrameResponse(EncodeFrameResponse(out))
		if err != nil {
			t.Fatalf("%d bits: %v", nbits, err)
		}
		if len(got) != nbits {
			t.Fatalf("%d bits round-tripped to %d", nbits, len(got))
		}
		for i := range out {
			if got[i] != out[i] {
				t.Errorf("%d bits: bit %d flipped", nbits, i)
			}
		}
	}
}

// The decoder is strict: every malformed frame is rejected, never
// silently misread.
func TestFrameDecodeRejectsMalformed(t *testing.T) {
	shape := countShape(4)
	good, err := EncodeFrame(shape, []bool{true, false, true})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeFrame(good); err != nil {
		t.Fatalf("baseline frame rejected: %v", err)
	}

	cases := map[string][]byte{
		"empty":          {},
		"short header":   good[:5],
		"bad magic":      append([]byte("TCX1"), good[4:]...),
		"response magic": append([]byte("TCR1"), good[4:]...),
		"unknown op":     mutate(good, 4, 99),
		"unknown alg":    mutate(good, 5, 99),
		"unknown flags":  mutate(good, 6, 0x80),
		"truncated bits": good[:len(good)-1],
		"trailing byte":  append(append([]byte{}, good...), 0),
		// The last byte holds 3 payload bits; bit 3 is padding.
		"nonzero padding": mutate(good, len(good)-1, good[len(good)-1]|0x08),
	}
	for name, frame := range cases {
		if _, _, err := DecodeFrame(frame); err == nil {
			t.Errorf("%s: decode accepted a malformed frame", name)
		}
	}

	if _, err := EncodeFrame(core.Shape{Op: "nope", Alg: "strassen"}, nil); err == nil {
		t.Error("encode accepted an unknown op")
	}
	if _, err := EncodeFrame(core.Shape{Op: core.OpCount, Alg: "nope"}, nil); err == nil {
		t.Error("encode accepted an unknown algorithm")
	}

	if _, err := DecodeFrameResponse([]byte("TCF1")); err == nil {
		t.Error("response decode accepted a request magic")
	}
	resp := EncodeFrameResponse([]bool{true})
	if _, err := DecodeFrameResponse(append(resp, 0)); err == nil {
		t.Error("response decode accepted a trailing byte")
	}
}

func mutate(b []byte, i int, v byte) []byte {
	out := append([]byte{}, b...)
	out[i] = v
	return out
}

// End to end over HTTP: a binary /v1/eval round trip must decode to the
// same triangle count as the JSON endpoint and the host-side count.
func TestHTTPEvalFrame(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	shape := countShape(4)
	cc, err := core.BuildCount(4, mustOpts(t, shape))
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Complete(4)
	in, err := cc.Assign(g.Adjacency())
	if err != nil {
		t.Fatal(err)
	}
	frame, err := EncodeFrame(shape, in)
	if err != nil {
		t.Fatal(err)
	}

	resp, err := ts.Client().Post(ts.URL+"/v1/eval", FrameContentType, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != FrameContentType {
		t.Errorf("response content type %q, want %q", ct, FrameContentType)
	}
	out, err := DecodeFrameResponse(body)
	if err != nil {
		t.Fatal(err)
	}
	tri, err := cc.DecodeTriangles(out)
	if err != nil {
		t.Fatal(err)
	}
	if want := g.Triangles(); tri != want {
		t.Fatalf("frame triangles %d, host %d", tri, want)
	}

	// Malformed frames answer 400; wrong input width is a terminal 400.
	resp, err = ts.Client().Post(ts.URL+"/v1/eval", FrameContentType, bytes.NewReader([]byte("garbage")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage frame status %d, want 400", resp.StatusCode)
	}
	short, err := EncodeFrame(shape, make([]bool, 3))
	if err != nil {
		t.Fatal(err)
	}
	resp, err = ts.Client().Post(ts.URL+"/v1/eval", FrameContentType, bytes.NewReader(short))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("wrong-width frame status %d, want 400", resp.StatusCode)
	}
}
