package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/core"
	"repro/internal/matrix"
)

// Handler returns the server's HTTP API:
//
//	POST /v1/matmul    {"n","alg","entry_bits","signed",...,"a","b"} -> {"c"}
//	POST /v1/trace     {"n","tau","alg",...,"a"}                     -> {"decision"}
//	POST /v1/triangles {"n","alg",...,"adj"}                         -> {"count"}
//	POST /v1/eval      binary frame (see frame.go)                   -> binary frame
//	GET  /v1/stats     -> metrics Snapshot
//	GET  /healthz      -> 200 "ok"
//
// Matrices are JSON arrays of int64 rows. Shape fields (alg, depth,
// entry_bits, signed, shared_msb, group_size) select the cached
// circuit; omitted fields take the construction defaults. /v1/eval
// trades the JSON ergonomics for throughput: raw circuit input bits in,
// raw marked-output bits back, no per-request marshalling. A full queue
// answers 429, a request that outlives Config.RequestTimeout answers
// 504, and a draining server answers 503.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/matmul", s.handleMatMul)
	mux.HandleFunc("/v1/trace", s.handleTrace)
	mux.HandleFunc("/v1/triangles", s.handleTriangles)
	mux.HandleFunc("/v1/eval", s.handleEval)
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// shapeFields is the wire form of core.Shape minus Op (implied by the
// endpoint) — embedded in every request body.
type shapeFields struct {
	N         int    `json:"n"`
	Tau       int64  `json:"tau,omitempty"`
	Alg       string `json:"alg,omitempty"`
	Depth     int    `json:"depth,omitempty"`
	EntryBits int    `json:"entry_bits,omitempty"`
	Signed    bool   `json:"signed,omitempty"`
	SharedMSB bool   `json:"shared_msb,omitempty"`
	GroupSize int    `json:"group_size,omitempty"`
}

func (f shapeFields) shape(op core.Op) core.Shape {
	alg := f.Alg
	if alg == "" {
		alg = "strassen"
	}
	return core.Shape{
		Op: op, N: f.N, Tau: f.Tau, Alg: alg,
		Depth: f.Depth, EntryBits: f.EntryBits, Signed: f.Signed,
		SharedMSB: f.SharedMSB, GroupSize: f.GroupSize,
	}
}

type matmulRequest struct {
	shapeFields
	A [][]int64 `json:"a"`
	B [][]int64 `json:"b"`
}

type traceRequest struct {
	shapeFields
	A [][]int64 `json:"a"`
}

type trianglesRequest struct {
	shapeFields
	Adj [][]int64 `json:"adj"`
}

func (s *Server) handleMatMul(w http.ResponseWriter, r *http.Request) {
	var req matmulRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	a, err := toMatrix(req.A)
	if err == nil {
		var b *matrix.Matrix
		if b, err = toMatrix(req.B); err == nil {
			ctx, cancel := s.requestContext(r)
			defer cancel()
			var c *matrix.Matrix
			if c, err = s.MatMul(ctx, req.shape(core.OpMatMul), a, b); err == nil {
				writeJSON(w, http.StatusOK, map[string]any{"c": fromMatrix(c)})
				return
			}
		}
	}
	s.writeError(w, err)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	var req traceRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	a, err := toMatrix(req.A)
	if err == nil {
		ctx, cancel := s.requestContext(r)
		defer cancel()
		var dec bool
		if dec, err = s.Trace(ctx, req.shape(core.OpTrace), a); err == nil {
			writeJSON(w, http.StatusOK, map[string]any{"decision": dec})
			return
		}
	}
	s.writeError(w, err)
}

func (s *Server) handleTriangles(w http.ResponseWriter, r *http.Request) {
	var req trianglesRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	adj, err := toMatrix(req.Adj)
	if err == nil {
		ctx, cancel := s.requestContext(r)
		defer cancel()
		var count int64
		if count, err = s.Triangles(ctx, req.shape(core.OpCount), adj); err == nil {
			writeJSON(w, http.StatusOK, map[string]any{"count": count})
			return
		}
	}
	s.writeError(w, err)
}

// handleEval is the binary-frame endpoint: shape + packed input bits
// in, packed marked-output bits back. Errors stay JSON (with the same
// status mapping as the JSON endpoints) so failures remain readable.
func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	shape, in, err := DecodeFrame(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	out, err := s.Do(ctx, shape, in)
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", FrameContentType)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(EncodeFrameResponse(out))
}

func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	return context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
}

func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

// writeError maps service errors to HTTP statuses: backpressure 429,
// shutdown 503, deadline 504, cancellation 499 (nginx convention),
// everything else (validation, unbuildable shapes) 400.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrBusy):
		w.Header().Set("Retry-After", "1")
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		status = http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		status = 499
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// fromMatrix converts a matrix to its JSON row form.
func fromMatrix(m *matrix.Matrix) [][]int64 {
	rows := make([][]int64, m.Rows)
	for i := range rows {
		rows[i] = m.Data[i*m.Cols : (i+1)*m.Cols : (i+1)*m.Cols]
	}
	return rows
}

// toMatrix validates and converts a JSON row matrix.
func toMatrix(rows [][]int64) (*matrix.Matrix, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("serve: empty matrix")
	}
	m := matrix.New(len(rows), len(rows[0]))
	for i, row := range rows {
		if len(row) != m.Cols {
			return nil, fmt.Errorf("serve: ragged matrix: row %d has %d entries, want %d", i, len(row), m.Cols)
		}
		for j, v := range row {
			m.Set(i, j, v)
		}
	}
	return m, nil
}
