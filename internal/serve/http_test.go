package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/matrix"
)

func postJSON(t *testing.T, client *http.Client, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestHTTPEndpoints(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	rng := rand.New(rand.NewSource(21))

	// matmul: response equals the host-side product.
	a := matrix.Random(rng, 4, 4, -3, 3)
	b := matrix.Random(rng, 4, 4, -3, 3)
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/matmul", map[string]any{
		"n": 4, "alg": "strassen", "entry_bits": 2, "signed": true,
		"a": fromMatrix(a), "b": fromMatrix(b),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("matmul status %d: %s", resp.StatusCode, body)
	}
	var mmOut struct {
		C [][]int64 `json:"c"`
	}
	if err := json.Unmarshal(body, &mmOut); err != nil {
		t.Fatal(err)
	}
	got, err := toMatrix(mmOut.C)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(a.Mul(b)) {
		t.Fatal("HTTP matmul result differs from host product")
	}

	// trace and triangles agree with host-side graph counting.
	g := graph.ErdosRenyi(rng, 4, 0.7)
	adj := g.Adjacency()
	tri := g.Triangles()
	resp, body = postJSON(t, ts.Client(), ts.URL+"/v1/trace", map[string]any{
		"n": 4, "tau": 6 * tri, "a": fromMatrix(adj),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d: %s", resp.StatusCode, body)
	}
	var trOut struct {
		Decision bool `json:"decision"`
	}
	if err := json.Unmarshal(body, &trOut); err != nil {
		t.Fatal(err)
	}
	if !trOut.Decision { // trace(A³) = 6·tri >= 6·tri
		t.Fatal("trace decision false at exact threshold")
	}

	resp, body = postJSON(t, ts.Client(), ts.URL+"/v1/triangles", map[string]any{
		"n": 4, "adj": fromMatrix(adj),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("triangles status %d: %s", resp.StatusCode, body)
	}
	var cntOut struct {
		Count int64 `json:"count"`
	}
	if err := json.Unmarshal(body, &cntOut); err != nil {
		t.Fatal(err)
	}
	if cntOut.Count != tri {
		t.Fatalf("HTTP triangles %d, host %d", cntOut.Count, tri)
	}

	// stats reflects the served traffic.
	statsResp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.NewDecoder(statsResp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	statsResp.Body.Close()
	if snap.Requests != 3 || snap.Samples != 3 {
		t.Errorf("stats requests=%d samples=%d, want 3/3", snap.Requests, snap.Samples)
	}

	// healthz.
	hResp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hResp.Body.Close()
	if hResp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", hResp.StatusCode)
	}
}

func TestHTTPErrors(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Malformed body.
	resp, err := ts.Client().Post(ts.URL+"/v1/matmul", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body status %d, want 400", resp.StatusCode)
	}

	// GET on a POST endpoint.
	resp, err = ts.Client().Get(ts.URL + "/v1/matmul")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status %d, want 405", resp.StatusCode)
	}

	// Unbuildable shape.
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/matmul", map[string]any{
		"n": 3, "a": [][]int64{{1}}, "b": [][]int64{{1}},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad shape status %d (%s), want 400", resp.StatusCode, body)
	}

	// Ragged matrix.
	resp, _ = postJSON(t, ts.Client(), ts.URL+"/v1/matmul", map[string]any{
		"n": 4, "a": [][]int64{{1, 2}, {3}}, "b": [][]int64{{1}},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("ragged matrix status %d, want 400", resp.StatusCode)
	}
}

// A saturated queue surfaces as HTTP 429 with a Retry-After hint.
func TestHTTPBackpressure429(t *testing.T) {
	s := New(Config{QueueDepth: 1, MaxBatch: 1, Linger: -1, Shards: 1})
	s.holdBatch = make(chan struct{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Build the circuit first so requests go straight to the queue.
	if _, err := s.Built(t.Context(), core.Shape{Op: core.OpCount, N: 4, Alg: "strassen"}); err != nil {
		t.Fatal(err)
	}
	adj := fromMatrix(graph.Complete(4).Adjacency())
	req := map[string]any{"n": 4, "adj": adj}

	var wg sync.WaitGroup
	statuses := make(chan int, 8)
	post := func() {
		defer wg.Done()
		resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/triangles", req)
		statuses <- resp.StatusCode
	}
	wg.Add(1)
	go post()
	<-s.holdBatch // dispatcher holds request #1
	wg.Add(1)
	go post() // fills the depth-1 queue
	for s.metrics.requests.Load() < 2 {
	}
	// Now the queue is full: this one must bounce with 429.
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/triangles", req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	stop := make(chan struct{})
	go holdService(s.holdBatch, stop)
	defer close(stop)
	s.holdBatch <- struct{}{} // release batch #1
	wg.Wait()
	close(statuses)
	for code := range statuses {
		if code != http.StatusOK {
			t.Errorf("held request finished with %d, want 200", code)
		}
	}
}

// Example payload in README stays valid: keep this in sync with docs.
func TestHTTPQuickstartPayload(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	payload := `{"n":2,"alg":"strassen","entry_bits":3,"a":[[1,2],[3,4]],"b":[[5,6],[7,0]]}`
	resp, err := ts.Client().Post(ts.URL+"/v1/matmul", "application/json", bytes.NewReader([]byte(payload)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		C [][]int64 `json:"c"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	want := [][]int64{{19, 6}, {43, 18}}
	if fmt.Sprint(out.C) != fmt.Sprint(want) {
		t.Fatalf("quickstart product %v, want %v", out.C, want)
	}
}
