package serve

import (
	"math/bits"
	"sync/atomic"
	"time"

	"repro/internal/store"
)

// metrics is the server's counter set. Plain atomics rather than
// expvar.Publish so that any number of Server instances can coexist in
// one process (expvar names are global and panic on reuse); cmd/tcserve
// publishes one server's Snapshot through expvar.Func.
type metrics struct {
	requests   atomic.Int64 // Do calls accepted into a queue
	cacheHits  atomic.Int64 // entry found in LRU
	cacheMiss  atomic.Int64 // entry built
	evictions  atomic.Int64 // entries pushed out of the LRU
	rejected   atomic.Int64 // backpressure: queue full (HTTP 429)
	cancelled  atomic.Int64 // request context ended before reply
	dropped    atomic.Int64 // cancelled requests discarded by the dispatcher
	errors     atomic.Int64 // terminal errors (bad shape, bad input)
	batches    atomic.Int64 // EvalPlanes/Eval dispatches
	samples    atomic.Int64 // samples served through batches
	singletons atomic.Int64 // batches of size 1 (direct Eval path)
	retries    atomic.Int64 // enqueue raced an eviction and retried
	steals     atomic.Int64 // requests stolen from sibling stripes
	diskHits   atomic.Int64 // LRU misses warm-started from the disk store
	diskSaves  atomic.Int64 // builds persisted to the disk store

	energyRequests atomic.Int64 // requests served with energy accounting
	energyGates    atomic.Int64 // total firing gates tallied for them

	evalLatency  histogram // per-batch evaluation wall time
	totalLatency histogram // per-request accept→reply wall time
	batchSize    histogram // samples per dispatched batch
}

// histogram is a lock-free power-of-two histogram: bucket i counts
// observations v with 2^(i-1) < v <= 2^i (bucket 0: v <= 1). Units are
// microseconds for latencies and samples for batch sizes.
type histogram struct {
	buckets [32]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

func (h *histogram) observe(v int64) {
	if v < 0 {
		v = 0
	}
	i := bits.Len64(uint64(v))
	if v > 0 && v == 1<<(i-1) {
		i-- // exact powers of two belong to their own bucket
	}
	if i > 31 {
		i = 31
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

func (h *histogram) observeSince(start time.Time) {
	h.observe(time.Since(start).Microseconds())
}

// HistogramSnapshot is a point-in-time copy of one histogram.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	Sum     int64            `json:"sum"`
	Buckets map[string]int64 `json:"buckets,omitempty"` // "le_2^i" -> count
}

func (h *histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			if s.Buckets == nil {
				s.Buckets = make(map[string]int64)
			}
			s.Buckets[bucketLabel(i)] = n
		}
	}
	return s
}

func bucketLabel(i int) string {
	// Small fixed table beats fmt in the snapshot path; 32 labels total.
	const digits = "0123456789"
	if i < 10 {
		return "le_2^" + digits[i:i+1]
	}
	return "le_2^" + digits[i/10:i/10+1] + digits[i%10:i%10+1]
}

// Snapshot is the exported view of the server's counters, JSON-ready
// for the /v1/stats endpoint and expvar.
type Snapshot struct {
	Requests   int64 `json:"requests"`
	CacheHits  int64 `json:"cache_hits"`
	CacheMiss  int64 `json:"cache_misses"`
	Evictions  int64 `json:"evictions"`
	Rejected   int64 `json:"rejected"`
	Cancelled  int64 `json:"cancelled"`
	Dropped    int64 `json:"dropped"`
	Errors     int64 `json:"errors"`
	Batches    int64 `json:"batches"`
	Samples    int64 `json:"samples"`
	Singletons int64 `json:"singletons"`
	Retries    int64 `json:"retries"`

	// Steals counts requests a dispatcher pulled from a sibling shard's
	// stripe (linger-expiry and idle-notification work stealing).
	Steals int64 `json:"steals"`

	// Disk warm-start counters (zero unless Config.Cache is set):
	// an LRU miss resolved from the on-disk store instead of a build,
	// and builds persisted back to it.
	DiskHits  int64 `json:"disk_hits"`
	DiskSaves int64 `json:"disk_saves"`

	// Energy-budget mode: requests that asked for Uchizawa energy
	// accounting, and the total firing-gate count tallied for them.
	EnergyRequests int64 `json:"energy_requests"`
	EnergyGates    int64 `json:"energy_gates"`

	// Store, when a disk cache is configured, is its own counter
	// snapshot (including corrupt-artifact detections).
	Store *store.Stats `json:"store,omitempty"`

	EvalLatencyUS  HistogramSnapshot `json:"eval_latency_us"`
	TotalLatencyUS HistogramSnapshot `json:"total_latency_us"`
	BatchSize      HistogramSnapshot `json:"batch_size"`
}

// Snapshot returns a consistent-enough copy of the counters (each field
// is individually atomic; cross-field skew is acceptable for metrics).
func (s *Server) Snapshot() Snapshot {
	m := &s.metrics
	var st *store.Stats
	if s.cfg.Cache != nil {
		cs := s.cfg.Cache.Stats()
		st = &cs
	}
	return Snapshot{
		DiskHits:   m.diskHits.Load(),
		DiskSaves:  m.diskSaves.Load(),
		Store:      st,
		Requests:   m.requests.Load(),
		CacheHits:  m.cacheHits.Load(),
		CacheMiss:  m.cacheMiss.Load(),
		Evictions:  m.evictions.Load(),
		Rejected:   m.rejected.Load(),
		Cancelled:  m.cancelled.Load(),
		Dropped:    m.dropped.Load(),
		Errors:     m.errors.Load(),
		Batches:    m.batches.Load(),
		Samples:    m.samples.Load(),
		Singletons: m.singletons.Load(),
		Retries:    m.retries.Load(),
		Steals:     m.steals.Load(),

		EnergyRequests: m.energyRequests.Load(),
		EnergyGates:    m.energyGates.Load(),

		EvalLatencyUS:  m.evalLatency.snapshot(),
		TotalLatencyUS: m.totalLatency.snapshot(),
		BatchSize:      m.batchSize.snapshot(),
	}
}
