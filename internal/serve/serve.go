// Package serve is the request-coalescing evaluation service over the
// paper's threshold circuits.
//
// The economics: a built circuit is expensive (seconds of construction
// for large N) but reusable, and the bit-sliced evaluator amortizes a
// single evaluation pass over up to 64 independent samples — one uint64
// word per wire instead of one bool. A serving workload with concurrent
// clients is exactly the shape that cashes both in:
//
//   - a bounded LRU cache keyed by core.Shape pays construction once
//     per (op, N, algorithm, options) tuple;
//   - each circuit's dispatch is sharded over Config.Shards per-core
//     dispatcher goroutines, one striped bounded queue each. A
//     dispatcher drains its stripe into EvalPlanes batches (up to
//     Config.MaxBatch samples, or whatever arrived within Config.Linger
//     of the first), steals from sibling stripes when its linger
//     expires with batch capacity left, evaluates once, and fans the
//     marked-output bits back to the waiting requests. Idle dispatchers
//     are woken by an enqueue notification and steal too, so a stalled
//     or busy shard never strands its queued requests.
//
// The sharding mirrors the paper's depth/size trade-off at the serving
// layer: wide, shallow parallelism. One popular shape is served by up
// to Shards cores concurrently instead of funneling every request
// through a single dispatcher goroutine.
//
// Robustness is part of the contract: per-request deadlines and
// cancellation via context, a bounded queue with explicit backpressure
// (ErrBusy → HTTP 429), graceful shutdown that drains queued requests
// through a final batch, and atomic counters/latency histograms exposed
// through Snapshot for expvar.
package serve

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/store"
	"runtime"
	"sync"
	"sync/atomic"
)

var (
	// ErrBusy reports that the target circuit's request queue is full;
	// the client should back off (HTTP 429).
	ErrBusy = errors.New("serve: queue full, retry later")
	// ErrClosed reports that the server has shut down.
	ErrClosed = errors.New("serve: server closed")

	// errRetry is the internal signal that an enqueue raced an eviction
	// or shutdown drain; Do re-resolves the entry a bounded number of
	// times before giving up.
	errRetry = errors.New("serve: entry retired, retry")
)

// Config tunes a Server. The zero value is usable: every field has a
// sensible default applied by New.
type Config struct {
	// MaxCircuits bounds the LRU cache of built circuits (default 8).
	MaxCircuits int
	// MaxBatch is the largest number of samples coalesced into one
	// evaluation (default 64 — one bit plane word; clamped to [1, 4096]).
	MaxBatch int
	// Linger is how long the dispatcher waits for more requests after
	// the first of a batch arrives (default 200µs). Zero means default;
	// negative means no lingering (serve whatever is already queued).
	Linger time.Duration
	// QueueDepth bounds each circuit's pending-request capacity, summed
	// across its striped queues; when every stripe is full the enqueue
	// rejects with ErrBusy (default 256).
	QueueDepth int
	// Shards is the number of dispatcher goroutines (and queue stripes)
	// per cached circuit. Requests spread round-robin over the stripes;
	// a dispatcher whose linger expires below MaxBatch steals from
	// sibling stripes, and idle dispatchers steal on enqueue
	// notification, so concurrent requests for one hot shape coalesce
	// into batches without serializing behind one goroutine. 0 or
	// negative means GOMAXPROCS; clamped to at most 64.
	Shards int
	// BuildWorkers parallelizes cold circuit construction on a cache
	// miss. 0 (the default) means GOMAXPROCS — the fork/adopt sharded
	// builder is never slower than sequential by more than its small
	// merge overhead and wins outright on multicore, so cold starts
	// parallelize unless explicitly disabled with 1. Negative also
	// selects GOMAXPROCS. Never changes the built circuit (parallel
	// builds are bit-identical to sequential).
	BuildWorkers int
	// EvalWorkers is the worker count for each circuit's batch
	// evaluator (default 1: the dispatcher thread evaluates in place).
	EvalWorkers int
	// RequestTimeout caps each HTTP request's context (default 30s);
	// direct Do callers manage their own contexts.
	RequestTimeout time.Duration
	// Cache, when non-nil, is the content-addressed on-disk circuit
	// store: an LRU miss first tries to load the built circuit from
	// disk (corrupt artifacts are rejected and healed), and fresh
	// builds are persisted back — so a restarted server warm-starts
	// instead of paying construction again. Nil means build-only.
	Cache *store.Cache
}

func (c Config) withDefaults() Config {
	if c.MaxCircuits <= 0 {
		c.MaxCircuits = 8
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxBatch > 4096 {
		c.MaxBatch = 4096
	}
	switch {
	case c.Linger == 0:
		c.Linger = 200 * time.Microsecond
	case c.Linger < 0:
		c.Linger = 0
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.Shards > 64 {
		c.Shards = 64
	}
	if c.BuildWorkers == 0 {
		c.BuildWorkers = -1 // core resolves negative to GOMAXPROCS
	}
	if c.EvalWorkers == 0 {
		c.EvalWorkers = 1
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	return c
}

// Server coalesces evaluation requests over a bounded cache of built
// circuits. Safe for concurrent use; create with New and release with
// Close.
type Server struct {
	cfg     Config
	metrics metrics

	mu     sync.Mutex
	lru    *list.List // of *entry, front = most recently used
	byKey  map[core.Shape]*list.Element
	closed bool

	dispatchers sync.WaitGroup

	// holdBatch, when non-nil, turns every batch dispatch into a
	// two-phase rendezvous: the dispatcher sends one token when it picks
	// up a batch (announce) and receives one before evaluating
	// (release). Tests use it to hold a dispatcher mid-batch and fill
	// its queue deterministically (meaningful with Shards: 1).
	holdBatch chan struct{}

	// evalGate, when non-nil, is called with the shard index before each
	// batch evaluation. The fault-injection tests use it to stall one
	// dispatcher mid-batch and assert that sibling dispatchers steal the
	// stalled stripe's queued requests.
	evalGate func(shard int)
}

// New returns a ready Server.
func New(cfg Config) *Server {
	return &Server{
		cfg:   cfg.withDefaults(),
		lru:   list.New(),
		byKey: make(map[core.Shape]*list.Element),
	}
}

// entry is one cached circuit with its sharded dispatch state.
type entry struct {
	shape core.Shape

	ready chan struct{} // closed once build completes (built/err set)
	built *core.Built
	err   error
	outs  []circuit.Wire // marked outputs, decode order

	// stripes are the per-dispatcher bounded queues (and each
	// dispatcher's private evaluator). Enqueues spread round-robin via
	// rr; notify (capacity 1) wakes one idle dispatcher to steal after
	// an enqueue, so a request never waits on a busy stripe while a
	// sibling dispatcher sits idle.
	stripes []stripe
	rr      atomic.Uint32
	notify  chan struct{}

	running atomic.Int32  // dispatchers not yet retired; the last closes dead
	done    chan struct{} // closed on eviction/shutdown: dispatchers drain and exit
	dead    chan struct{} // closed after the final drains: every request any
	// dispatcher ever dequeued has been replied to, so a waiter that
	// observes dead either finds its reply already buffered or knows it
	// will never come and can safely retry elsewhere.
}

// stripe is one dispatcher's slice of an entry: its bounded request
// queue and its private batch evaluator (EvalPlanes scratch is not
// shareable across goroutines).
type stripe struct {
	queue chan *request
	ev    *circuit.Evaluator
}

// request is one queued evaluation.
type request struct {
	ctx    context.Context
	in     []bool
	energy bool // tally firing gates for this sample (energy-budget mode)
	start  time.Time
	reply  chan reply // buffered (1): the dispatcher never blocks on it
}

type reply struct {
	out    []bool
	energy int64 // firing-gate count; meaningful only when requested
	err    error
}

// getEntry resolves shape to a cached entry, building (and possibly
// evicting) under the LRU policy, then waits for the build to finish.
func (s *Server) getEntry(ctx context.Context, shape core.Shape) (*entry, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	var e *entry
	if el, ok := s.byKey[shape]; ok {
		s.lru.MoveToFront(el)
		e = el.Value.(*entry)
		s.metrics.cacheHits.Add(1)
		s.mu.Unlock()
	} else {
		depth := (s.cfg.QueueDepth + s.cfg.Shards - 1) / s.cfg.Shards
		if depth < 1 {
			depth = 1
		}
		e = &entry{
			shape:   shape,
			ready:   make(chan struct{}),
			stripes: make([]stripe, s.cfg.Shards),
			notify:  make(chan struct{}, 1),
			done:    make(chan struct{}),
			dead:    make(chan struct{}),
		}
		for i := range e.stripes {
			e.stripes[i].queue = make(chan *request, depth)
		}
		s.byKey[shape] = s.lru.PushFront(e)
		s.metrics.cacheMiss.Add(1)
		// Account the builder (and, transitively, the entry's dispatcher
		// group — the last dispatcher to retire releases the slot) while
		// still under the lock: Close observes `closed` only after this
		// Add, so its Wait can never race a late Add from a pre-close
		// entry.
		s.dispatchers.Add(1)
		var evicted *entry
		if s.lru.Len() > s.cfg.MaxCircuits {
			back := s.lru.Back()
			evicted = back.Value.(*entry)
			s.lru.Remove(back)
			delete(s.byKey, evicted.shape)
			s.metrics.evictions.Add(1)
		}
		s.mu.Unlock()
		if evicted != nil {
			close(evicted.done) // dispatcher drains its queue and exits
		}
		go s.buildEntry(e)
	}
	select {
	case <-e.ready:
		return e, e.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// buildEntry resolves the circuit for e — from the disk store when one
// is configured (LoadOrBuild rejects and heals corrupt artifacts, and
// persists fresh builds), otherwise by construction — and starts its
// dispatcher shards.
func (s *Server) buildEntry(e *entry) {
	var built *core.Built
	var err error
	if s.cfg.Cache != nil {
		var fromDisk bool
		built, fromDisk, err = s.cfg.Cache.LoadOrBuild(e.shape, s.cfg.BuildWorkers)
		if fromDisk {
			s.metrics.diskHits.Add(1)
		} else if err == nil {
			s.metrics.diskSaves.Add(1)
		}
	} else {
		built, err = core.BuildShape(e.shape, s.cfg.BuildWorkers)
	}
	if err != nil {
		e.err = err
		close(e.ready)
		close(e.dead) // no dispatcher will ever run
		s.dispatchers.Done()
		return
	}
	e.built = built
	e.outs = built.Circuit().Outputs()
	e.running.Store(int32(len(e.stripes)))
	for i := range e.stripes {
		e.stripes[i].ev = circuit.NewEvaluator(built.Circuit(), s.cfg.EvalWorkers)
	}
	for i := range e.stripes {
		go s.dispatch(e, i) // the group inherits the dispatchers slot taken at creation
	}
	close(e.ready)
}

// Built resolves (building if needed) the typed circuit wrapper for a
// shape — the encode/decode companion to Do.
func (s *Server) Built(ctx context.Context, shape core.Shape) (*core.Built, error) {
	e, err := s.getEntry(ctx, shape)
	if err != nil {
		return nil, err
	}
	return e.built, nil
}

// Do evaluates one input assignment against the shape's circuit and
// returns the marked-output values (Circuit.Outputs() order), bit-
// identical to a direct Circuit.Eval. The call coalesces with
// concurrent Do calls for the same shape into one bit-sliced batch.
func (s *Server) Do(ctx context.Context, shape core.Shape, in []bool) ([]bool, error) {
	out, _, err := s.doRetry(ctx, shape, in, false)
	return out, err
}

// DoEnergy is Do plus per-request Uchizawa energy accounting: it also
// returns the number of gates that fired evaluating this sample. The
// count is identical whether the request is served by the singleton
// scalar path or coalesced into a bit-sliced batch (both are popcounts
// over the same gate values).
func (s *Server) DoEnergy(ctx context.Context, shape core.Shape, in []bool) ([]bool, int64, error) {
	return s.doRetry(ctx, shape, in, true)
}

func (s *Server) doRetry(ctx context.Context, shape core.Shape, in []bool, energy bool) ([]bool, int64, error) {
	// An enqueue can race an eviction's final drain; the dead-channel
	// protocol makes that loss observable, so a couple of retries
	// (against the freshly rebuilt entry) make Do lossless. Three
	// attempts bound the pathological build-evict-build loop.
	for attempt := 0; ; attempt++ {
		out, gates, err := s.tryDo(ctx, shape, in, energy)
		if err == errRetry && attempt < 2 {
			s.metrics.retries.Add(1)
			continue
		}
		if err == errRetry {
			err = ErrBusy
		}
		return out, gates, err
	}
}

func (s *Server) tryDo(ctx context.Context, shape core.Shape, in []bool, energy bool) ([]bool, int64, error) {
	e, err := s.getEntry(ctx, shape)
	if err != nil {
		if err != ErrClosed && ctx.Err() == nil {
			s.metrics.errors.Add(1)
		}
		return nil, 0, err
	}
	if want := e.built.Circuit().NumInputs(); len(in) != want {
		s.metrics.errors.Add(1)
		return nil, 0, fmt.Errorf("serve: %d input bits for %s, want %d", len(in), shape.Key(), want)
	}
	req := &request{ctx: ctx, in: in, energy: energy, start: time.Now(), reply: make(chan reply, 1)}
	// Striped enqueue: try the round-robin home stripe first, then every
	// sibling — one busy stripe must not reject while others have room.
	accepted := false
	home := int(e.rr.Add(1) - 1)
	for i := 0; i < len(e.stripes) && !accepted; i++ {
		select {
		case e.stripes[(home+i)%len(e.stripes)].queue <- req:
			accepted = true
		default:
		}
	}
	if accepted {
		s.metrics.requests.Add(1)
		// Wake one idle dispatcher to gather (capacity-1 token: a
		// pending token already guarantees a future steal sweep).
		select {
		case e.notify <- struct{}{}:
		default:
		}
	} else {
		select {
		case <-e.dead:
			return nil, 0, errRetry
		case <-ctx.Done():
			s.metrics.cancelled.Add(1)
			return nil, 0, ctx.Err()
		default:
			s.metrics.rejected.Add(1)
			return nil, 0, ErrBusy
		}
	}
	select {
	case r := <-req.reply:
		s.metrics.totalLatency.observeSince(req.start)
		return r.out, r.energy, r.err
	case <-ctx.Done():
		// The dispatcher still owns the request: it will observe the
		// cancelled context and drop it, or finish the in-flight batch
		// and send into the buffered reply channel (collected by GC).
		s.metrics.cancelled.Add(1)
		return nil, 0, ctx.Err()
	case <-e.dead:
		// The dispatcher retired after we enqueued. Per the dead
		// protocol the reply is either already buffered or never coming.
		select {
		case r := <-req.reply:
			s.metrics.totalLatency.observeSince(req.start)
			return r.out, r.energy, r.err
		default:
			return nil, 0, errRetry
		}
	}
}

// MatMul multiplies two matrices through the shape's circuit
// (shape.Op must be core.OpMatMul).
func (s *Server) MatMul(ctx context.Context, shape core.Shape, a, b *matrix.Matrix) (*matrix.Matrix, error) {
	if shape.Op != core.OpMatMul {
		return nil, fmt.Errorf("serve: MatMul needs op %q, got %q", core.OpMatMul, shape.Op)
	}
	bt, err := s.Built(ctx, shape)
	if err != nil {
		return nil, err
	}
	in, err := bt.MatMul.Assign(a, b)
	if err != nil {
		s.metrics.errors.Add(1)
		return nil, err
	}
	out, err := s.Do(ctx, shape, in)
	if err != nil {
		return nil, err
	}
	return bt.MatMul.DecodeOutputs(out), nil
}

// Trace decides trace(A³) >= shape.Tau through the shape's circuit
// (shape.Op must be core.OpTrace).
func (s *Server) Trace(ctx context.Context, shape core.Shape, a *matrix.Matrix) (bool, error) {
	if shape.Op != core.OpTrace {
		return false, fmt.Errorf("serve: Trace needs op %q, got %q", core.OpTrace, shape.Op)
	}
	bt, err := s.Built(ctx, shape)
	if err != nil {
		return false, err
	}
	in, err := bt.Trace.Assign(a)
	if err != nil {
		s.metrics.errors.Add(1)
		return false, err
	}
	out, err := s.Do(ctx, shape, in)
	if err != nil {
		return false, err
	}
	return bt.Trace.DecodeOutputs(out), nil
}

// Triangles counts triangles in an adjacency matrix through the
// shape's circuit (shape.Op must be core.OpCount).
func (s *Server) Triangles(ctx context.Context, shape core.Shape, adj *matrix.Matrix) (int64, error) {
	if shape.Op != core.OpCount {
		return 0, fmt.Errorf("serve: Triangles needs op %q, got %q", core.OpCount, shape.Op)
	}
	bt, err := s.Built(ctx, shape)
	if err != nil {
		return 0, err
	}
	in, err := bt.Count.Assign(adj)
	if err != nil {
		s.metrics.errors.Add(1)
		return 0, err
	}
	out, err := s.Do(ctx, shape, in)
	if err != nil {
		return 0, err
	}
	return bt.Count.DecodeTriangles(out)
}

// Close shuts the server down gracefully: new requests fail with
// ErrClosed, every cached circuit's dispatcher drains its queued
// requests through a final batch, and Close returns once all
// dispatchers have exited.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.dispatchers.Wait()
		return
	}
	s.closed = true
	var entries []*entry
	for el := s.lru.Front(); el != nil; el = el.Next() {
		entries = append(entries, el.Value.(*entry))
	}
	s.lru.Init()
	s.byKey = make(map[core.Shape]*list.Element)
	s.mu.Unlock()
	for _, e := range entries {
		close(e.done)
	}
	s.dispatchers.Wait()
}

// CachedCircuits returns the number of circuits currently cached.
func (s *Server) CachedCircuits() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}
