package serve

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/matrix"
)

func matmulShape(n int) core.Shape {
	return core.Shape{Op: core.OpMatMul, N: n, Alg: "strassen", EntryBits: 2, Signed: true}
}

func traceShape(n int, tau int64) core.Shape {
	return core.Shape{Op: core.OpTrace, N: n, Tau: tau, Alg: "strassen"}
}

func countShape(n int) core.Shape {
	return core.Shape{Op: core.OpCount, N: n, Alg: "strassen"}
}

// Concurrent clients over all three ops: every served answer must be
// bit-identical to the direct (unserved) evaluation.
func TestServeConcurrentBitIdentical(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	ctx := context.Background()

	mmShape, trShape, cntShape := matmulShape(4), traceShape(4, 2), countShape(4)
	mm, err := core.BuildMatMul(4, mustOpts(t, mmShape))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := core.BuildTrace(4, 2, mustOpts(t, trShape))
	if err != nil {
		t.Fatal(err)
	}
	cc, err := core.BuildCount(4, mustOpts(t, cntShape))
	if err != nil {
		t.Fatal(err)
	}

	const clients = 16
	const perClient = 8
	var wg sync.WaitGroup
	errc := make(chan error, 3*clients)
	for cl := 0; cl < clients; cl++ {
		rng := rand.New(rand.NewSource(int64(cl)))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				a := matrix.Random(rng, 4, 4, -3, 3)
				b := matrix.Random(rng, 4, 4, -3, 3)
				got, err := s.MatMul(ctx, mmShape, a, b)
				if err != nil {
					errc <- err
					return
				}
				want, err := mm.Multiply(a, b)
				if err != nil {
					errc <- err
					return
				}
				if !got.Equal(want) {
					errc <- errors.New("matmul result differs from direct Eval")
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + cl)))
			for i := 0; i < perClient; i++ {
				adj := graph.ErdosRenyi(rng, 4, 0.6).Adjacency()
				got, err := s.Trace(ctx, trShape, adj)
				if err != nil {
					errc <- err
					return
				}
				want, err := tr.Decide(adj)
				if err != nil {
					errc <- err
					return
				}
				if got != want {
					errc <- errors.New("trace decision differs from direct Eval")
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(2000 + cl)))
			for i := 0; i < perClient; i++ {
				adj := graph.ErdosRenyi(rng, 4, 0.6).Adjacency()
				got, err := s.Triangles(ctx, cntShape, adj)
				if err != nil {
					errc <- err
					return
				}
				want, err := cc.Triangles(adj)
				if err != nil {
					errc <- err
					return
				}
				if got != want {
					errc <- errors.New("triangle count differs from direct Eval")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if snap.Requests != 3*clients*perClient {
		t.Errorf("requests %d, want %d", snap.Requests, 3*clients*perClient)
	}
	if snap.Samples != snap.Requests {
		t.Errorf("samples %d != requests %d: lost or duplicated work", snap.Samples, snap.Requests)
	}
	if snap.CacheMiss != 3 {
		t.Errorf("cache misses %d, want 3 (one build per shape)", snap.CacheMiss)
	}
}

func mustOpts(t *testing.T, s core.Shape) core.Options {
	t.Helper()
	opts, err := s.Options(0)
	if err != nil {
		t.Fatal(err)
	}
	return opts
}

// holdService answers the two-phase holdBatch rendezvous in the
// background: every announced batch is immediately released.
func holdService(hb chan struct{}, stop chan struct{}) {
	for {
		select {
		case <-hb:
			hb <- struct{}{}
		case <-stop:
			return
		}
	}
}

// With the dispatcher held mid-batch, piled-up requests must coalesce
// into one following batch.
func TestServeCoalesces(t *testing.T) {
	s := New(Config{Shards: 1})
	s.holdBatch = make(chan struct{})
	defer s.Close()
	ctx := context.Background()
	shape := countShape(4)
	if _, err := s.Built(ctx, shape); err != nil {
		t.Fatal(err)
	}
	adj := graph.Complete(4).Adjacency()

	results := make(chan int64, 32)
	errc := make(chan error, 32)
	post := func() {
		got, err := s.Triangles(ctx, shape, adj)
		if err != nil {
			errc <- err
			return
		}
		results <- got
	}
	go post()
	<-s.holdBatch // dispatcher holds batch #1 (the single first request)

	const piled = 20
	for i := 0; i < piled; i++ {
		go post()
	}
	// Wait until every piled request is enqueued (requests counts
	// successful enqueues; the first one is already held in batch #1).
	for s.metrics.requests.Load() < piled+1 {
		time.Sleep(time.Millisecond)
	}
	s.holdBatch <- struct{}{} // release batch #1
	<-s.holdBatch             // batch #2 announced: the piled requests
	s.holdBatch <- struct{}{} // release it

	for i := 0; i < piled+1; i++ {
		select {
		case got := <-results:
			if got != 4 { // K4 has C(4,3) = 4 triangles
				t.Fatalf("triangles = %d, want 4", got)
			}
		case err := <-errc:
			t.Fatal(err)
		case <-time.After(10 * time.Second):
			t.Fatal("timed out waiting for replies")
		}
	}
	snap := s.Snapshot()
	if snap.Batches != 2 {
		t.Errorf("batches %d, want 2 (singleton + one coalesced)", snap.Batches)
	}
	if snap.Samples != piled+1 {
		t.Errorf("samples %d, want %d", snap.Samples, piled+1)
	}
}

// DoEnergy must report the same firing-gate count whether the request
// is served as a singleton through the scalar engine or coalesced into
// a bit-sliced batch — and both must equal a direct Circuit.Energy.
func TestServeDoEnergyBothPaths(t *testing.T) {
	s := New(Config{Shards: 1})
	s.holdBatch = make(chan struct{})
	defer s.Close()
	ctx := context.Background()
	shape := countShape(4)
	bt, err := s.Built(ctx, shape)
	if err != nil {
		t.Fatal(err)
	}
	adj := graph.Complete(4).Adjacency()
	in, err := bt.Count.Assign(adj)
	if err != nil {
		t.Fatal(err)
	}
	c := bt.Circuit()
	want := c.Energy(c.Eval(in))
	if want == 0 {
		t.Fatal("test graph fires no gates; energy equality would be vacuous")
	}

	// Singleton path: the only queued request evaluates via st.ev.Eval.
	type res struct {
		out    []bool
		energy int64
		err    error
	}
	results := make(chan res, 32)
	post := func() {
		out, gates, err := s.DoEnergy(ctx, shape, in)
		results <- res{out, gates, err}
	}
	go post()
	<-s.holdBatch // batch #1 (the singleton) held
	s.holdBatch <- struct{}{}
	r := <-results
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.energy != want {
		t.Fatalf("singleton path energy %d, want %d", r.energy, want)
	}

	// Batched path: pile requests behind a held batch so they coalesce.
	hold := make(chan struct{})
	go func() {
		_, _, err := s.DoEnergy(ctx, shape, in)
		hold <- struct{}{}
		if err != nil {
			t.Error(err)
		}
	}()
	<-s.holdBatch // holder's singleton batch announced
	const piled = 8
	for i := 0; i < piled; i++ {
		go post()
	}
	for s.metrics.requests.Load() < piled+2 {
		time.Sleep(time.Millisecond)
	}
	s.holdBatch <- struct{}{} // release the holder
	<-s.holdBatch             // the piled batch announced
	s.holdBatch <- struct{}{} // release it
	<-hold
	for i := 0; i < piled; i++ {
		r := <-results
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.energy != want {
			t.Fatalf("batched request %d: energy %d, want %d", i, r.energy, want)
		}
		if tri, err := bt.Count.DecodeTriangles(r.out); err != nil || tri != 4 {
			t.Fatalf("batched request %d: triangles %d (%v), want 4", i, tri, err)
		}
	}
	snap := s.Snapshot()
	if wantReq := int64(piled + 2); snap.EnergyRequests != wantReq {
		t.Errorf("energy_requests %d, want %d", snap.EnergyRequests, wantReq)
	}
	if wantGates := int64(piled+2) * want; snap.EnergyGates != wantGates {
		t.Errorf("energy_gates %d, want %d", snap.EnergyGates, wantGates)
	}
	// Plain Do requests must not pay the energy sweep or the counters.
	plain := make(chan error, 1)
	go func() {
		_, err := s.Do(ctx, shape, in)
		plain <- err
	}()
	<-s.holdBatch // its batch announced
	s.holdBatch <- struct{}{}
	if err := <-plain; err != nil {
		t.Fatal(err)
	}
	if got := s.Snapshot().EnergyRequests; got != int64(piled+2) {
		t.Errorf("plain Do incremented energy_requests to %d", got)
	}
}

// A request cancelled while queued must return the context error, and
// the dispatcher must drop it rather than evaluate it.
func TestServeCancellationMidQueue(t *testing.T) {
	s := New(Config{Shards: 1})
	s.holdBatch = make(chan struct{})
	defer s.Close()
	ctx := context.Background()
	shape := countShape(4)
	if _, err := s.Built(ctx, shape); err != nil {
		t.Fatal(err)
	}
	adj := graph.Complete(4).Adjacency()

	first := make(chan error, 1)
	go func() {
		_, err := s.Triangles(ctx, shape, adj)
		first <- err
	}()
	<-s.holdBatch // batch #1 held

	cctx, cancel := context.WithCancel(ctx)
	cancelled := make(chan error, 1)
	go func() {
		_, err := s.Triangles(cctx, shape, adj)
		cancelled <- err
	}()
	for s.metrics.requests.Load() < 2 {
		time.Sleep(time.Millisecond)
	}
	cancel() // the queued request's waiter gives up
	if err := <-cancelled; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled request returned %v, want context.Canceled", err)
	}

	s.holdBatch <- struct{}{} // release batch #1
	stop := make(chan struct{})
	go holdService(s.holdBatch, stop)
	defer close(stop)
	if err := <-first; err != nil {
		t.Fatal(err)
	}
	// The dispatcher must eventually account the cancelled request as
	// dropped, not evaluated: its sample never enters a batch.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && s.Snapshot().Dropped < 1 {
		time.Sleep(time.Millisecond)
	}
	snap := s.Snapshot()
	if snap.Dropped != 1 {
		t.Errorf("dropped %d, want 1: cancelled request not discarded", snap.Dropped)
	}
	if snap.Samples != 1 {
		t.Errorf("samples %d, want 1: cancelled request was evaluated", snap.Samples)
	}
}

// A full queue rejects immediately with ErrBusy (the HTTP 429 path).
func TestServeBackpressure(t *testing.T) {
	s := New(Config{QueueDepth: 2, MaxBatch: 1, Linger: -1, Shards: 1})
	s.holdBatch = make(chan struct{})
	defer s.Close()
	ctx := context.Background()
	shape := countShape(4)
	if _, err := s.Built(ctx, shape); err != nil {
		t.Fatal(err)
	}
	adj := graph.Complete(4).Adjacency()

	replies := make(chan error, 8)
	post := func() {
		_, err := s.Triangles(ctx, shape, adj)
		replies <- err
	}
	go post()
	<-s.holdBatch // dispatcher blocked holding request #1; queue empty
	go post()
	go post()
	for s.metrics.requests.Load() < 3 {
		time.Sleep(time.Millisecond) // #2 and #3 now fill the queue
	}
	if _, err := s.Triangles(ctx, shape, adj); !errors.Is(err, ErrBusy) {
		t.Fatalf("overflow request returned %v, want ErrBusy", err)
	}
	if got := s.Snapshot().Rejected; got != 1 {
		t.Errorf("rejected %d, want 1", got)
	}

	stop := make(chan struct{})
	go holdService(s.holdBatch, stop)
	defer close(stop)
	s.holdBatch <- struct{}{} // release the held batch
	for i := 0; i < 3; i++ {
		if err := <-replies; err != nil {
			t.Fatal(err)
		}
	}
}

// Close drains queued requests through final batches: accepted work
// completes, new work is refused.
func TestServeShutdownDrains(t *testing.T) {
	s := New(Config{Shards: 1})
	s.holdBatch = make(chan struct{})
	ctx := context.Background()
	shape := countShape(4)
	if _, err := s.Built(ctx, shape); err != nil {
		t.Fatal(err)
	}
	adj := graph.Complete(4).Adjacency()

	results := make(chan error, 16)
	post := func() {
		got, err := s.Triangles(ctx, shape, adj)
		if err == nil && got != 4 {
			err = errors.New("wrong count after drain")
		}
		results <- err
	}
	go post()
	<-s.holdBatch // batch #1 held
	const queued = 5
	for i := 0; i < queued; i++ {
		go post()
	}
	for s.metrics.requests.Load() < queued+1 {
		time.Sleep(time.Millisecond)
	}

	closed := make(chan struct{})
	go func() {
		s.Close()
		close(closed)
	}()
	stop := make(chan struct{})
	go holdService(s.holdBatch, stop)
	defer close(stop)
	s.holdBatch <- struct{}{} // release batch #1; drain follows

	for i := 0; i < queued+1; i++ {
		if err := <-results; err != nil {
			t.Fatalf("request failed across shutdown: %v", err)
		}
	}
	<-closed
	if _, err := s.Triangles(ctx, shape, adj); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close request returned %v, want ErrClosed", err)
	}
}

// The LRU keeps at most MaxCircuits entries; evicted shapes rebuild on
// demand and answer correctly (enqueue-vs-eviction races resolve
// through the retry protocol).
func TestServeLRUEviction(t *testing.T) {
	s := New(Config{MaxCircuits: 1})
	defer s.Close()
	ctx := context.Background()
	rng := rand.New(rand.NewSource(3))
	a := matrix.Random(rng, 4, 4, -3, 3)
	b := matrix.Random(rng, 4, 4, -3, 3)
	want := a.Mul(b)
	adj := graph.Complete(4).Adjacency()

	for round := 0; round < 3; round++ {
		got, err := s.MatMul(ctx, matmulShape(4), a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatal("matmul wrong after eviction churn")
		}
		tri, err := s.Triangles(ctx, countShape(4), adj)
		if err != nil {
			t.Fatal(err)
		}
		if tri != 4 {
			t.Fatalf("triangles %d, want 4", tri)
		}
		if n := s.CachedCircuits(); n != 1 {
			t.Fatalf("cache holds %d circuits, want 1", n)
		}
	}
	snap := s.Snapshot()
	if snap.Evictions < 5 {
		t.Errorf("evictions %d, want >= 5 under churn", snap.Evictions)
	}
}

// A shape that cannot build returns its construction error and does not
// wedge the server.
func TestServeBuildError(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	ctx := context.Background()
	bad := core.Shape{Op: core.OpMatMul, N: 3, Alg: "strassen"} // 3 not a power of 2
	if _, err := s.Do(ctx, bad, nil); err == nil {
		t.Fatal("unbuildable shape accepted")
	}
	// The server still serves good shapes afterwards.
	adj := graph.Complete(4).Adjacency()
	if tri, err := s.Triangles(ctx, countShape(4), adj); err != nil || tri != 4 {
		t.Fatalf("good shape after bad: %d, %v", tri, err)
	}
}

// Do validates input length against the built circuit.
func TestServeInputLengthValidated(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	if _, err := s.Do(context.Background(), countShape(4), make([]bool, 3)); err == nil {
		t.Fatal("wrong-length input accepted")
	}
}

// An already-expired context fails fast without being evaluated.
func TestServeDeadlineBeforeEnqueue(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	shape := countShape(4)
	if _, err := s.Built(context.Background(), shape); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	adj := graph.Complete(4).Adjacency()
	if _, err := s.Triangles(ctx, shape, adj); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}
