package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

// Property test for the striped-queue/work-stealing protocol: across
// shard counts, batch sizes and linger expiries (including none), N
// concurrent producers hammering one shape must each get back exactly
// one reply per request, bit-identical to a sequential Eval of the same
// input, with the server's own accounting agreeing that nothing was
// lost or evaluated twice (samples == requests).
func TestShardedExactlyOnceBitIdentical(t *testing.T) {
	shape := countShape(4)
	cc, err := core.BuildCount(4, mustOpts(t, shape))
	if err != nil {
		t.Fatal(err)
	}
	// Reference inputs: distinct random graphs with their direct-Eval
	// answers (DecodeOutputs order equals Do's output order).
	rng := rand.New(rand.NewSource(77))
	const kinds = 8
	ins := make([][]bool, kinds)
	want := make([][]bool, kinds)
	for k := range ins {
		adj := graph.ErdosRenyi(rng, 4, 0.2+0.1*float64(k)).Adjacency()
		in, err := cc.Assign(adj)
		if err != nil {
			t.Fatal(err)
		}
		ins[k] = in
		vals := cc.Circuit.Eval(in)
		outs := cc.Circuit.Outputs()
		w := make([]bool, len(outs))
		for j, o := range outs {
			w[j] = vals[o]
		}
		want[k] = w
	}

	// Random linger expiries: the rendezvous between linger timers and
	// stealing is the fragile part, so sweep no-linger, short and long.
	cfgs := []Config{
		{Shards: 2, MaxBatch: 8, Linger: -1},
		{Shards: 3, MaxBatch: 4, Linger: 20 * time.Microsecond, QueueDepth: 48},
		{Shards: 4, MaxBatch: 64, Linger: 200 * time.Microsecond},
		{Shards: 5, MaxBatch: 1, Linger: 50 * time.Microsecond},
	}
	for ci, cfg := range cfgs {
		t.Run(fmt.Sprintf("cfg%d_shards%d", ci, cfg.Shards), func(t *testing.T) {
			s := New(cfg)
			defer s.Close()
			ctx := context.Background()
			if _, err := s.Built(ctx, shape); err != nil {
				t.Fatal(err)
			}
			const producers = 8
			const perProducer = 40
			errc := make(chan error, producers)
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					prng := rand.New(rand.NewSource(int64(1000*ci + p)))
					for i := 0; i < perProducer; i++ {
						k := prng.Intn(kinds)
						out, err := s.Do(ctx, shape, ins[k])
						if err != nil {
							errc <- fmt.Errorf("producer %d: %v", p, err)
							return
						}
						if len(out) != len(want[k]) {
							errc <- fmt.Errorf("producer %d: %d output bits, want %d", p, len(out), len(want[k]))
							return
						}
						for j := range out {
							if out[j] != want[k][j] {
								errc <- fmt.Errorf("producer %d: output bit %d differs from sequential Eval", p, j)
								return
							}
						}
					}
					errc <- nil
				}(p)
			}
			wg.Wait()
			close(errc)
			for err := range errc {
				if err != nil {
					t.Fatal(err)
				}
			}
			snap := s.Snapshot()
			if snap.Requests != producers*perProducer {
				t.Errorf("requests %d, want %d", snap.Requests, producers*perProducer)
			}
			if snap.Samples != snap.Requests {
				t.Errorf("samples %d != requests %d: lost or duplicated work", snap.Samples, snap.Requests)
			}
			if snap.Dropped != 0 || snap.Rejected != 0 {
				t.Errorf("dropped=%d rejected=%d, want 0/0", snap.Dropped, snap.Rejected)
			}
		})
	}
}

// Close racing live traffic must lose nothing: every Do that returns
// nil error carries bits identical to sequential Eval, every other
// return is ErrClosed (the only acceptable refusal), and the server's
// accounting balances — accepted requests are either evaluated or
// (post-drain stragglers) retried into ErrClosed, never silently
// dropped.
func TestShardedCloseDrainLossless(t *testing.T) {
	shape := countShape(4)
	cc, err := core.BuildCount(4, mustOpts(t, shape))
	if err != nil {
		t.Fatal(err)
	}
	adj := graph.Complete(4).Adjacency()
	in, err := cc.Assign(adj)
	if err != nil {
		t.Fatal(err)
	}
	vals := cc.Circuit.Eval(in)
	outs := cc.Circuit.Outputs()
	want := make([]bool, len(outs))
	for j, o := range outs {
		want[j] = vals[o]
	}

	for trial := 0; trial < 3; trial++ {
		s := New(Config{Shards: 4, MaxBatch: 8, Linger: 50 * time.Microsecond})
		ctx := context.Background()
		if _, err := s.Built(ctx, shape); err != nil {
			t.Fatal(err)
		}
		const producers = 8
		var served atomic.Int64
		errc := make(chan error, producers)
		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					out, err := s.Do(ctx, shape, in)
					if errors.Is(err, ErrClosed) {
						errc <- nil
						return
					}
					if err != nil {
						errc <- err
						return
					}
					for j := range out {
						if out[j] != want[j] {
							errc <- errors.New("reply across Close differs from sequential Eval")
							return
						}
					}
					served.Add(1)
				}
			}()
		}
		// Let traffic build, then slam the door mid-flight.
		for served.Load() < 20 {
			time.Sleep(100 * time.Microsecond)
		}
		s.Close()
		wg.Wait()
		close(errc)
		for err := range errc {
			if err != nil {
				t.Fatal(err)
			}
		}
		snap := s.Snapshot()
		if snap.Samples != snap.Requests {
			t.Errorf("trial %d: samples %d != requests %d after drain", trial, snap.Samples, snap.Requests)
		}
	}
}

// Fault injection: stall one dispatcher mid-batch (blocked eval gate)
// and assert the steal path drains its stripe — requests that round-
// robin onto the stalled shard's queue must be answered by siblings
// well before the request deadline would escalate to 504.
func TestShardedStealsFromStalledShard(t *testing.T) {
	shape := countShape(4)
	s := New(Config{Shards: 2, MaxBatch: 8, Linger: 50 * time.Microsecond})
	defer s.Close()

	// LIFO defers: the stalled dispatcher must be released before the
	// deferred Close waits on it, even when an assertion fails the test.
	release := make(chan struct{})
	releaseStalled := sync.OnceFunc(func() { close(release) })
	defer releaseStalled()
	entered := make(chan int, 1)
	var gateOnce sync.Once
	s.evalGate = func(shard int) {
		stall := false
		gateOnce.Do(func() {
			entered <- shard
			stall = true
		})
		if stall {
			<-release // hold this dispatcher mid-batch until the test ends
		}
	}

	ctx := context.Background()
	if _, err := s.Built(ctx, shape); err != nil {
		t.Fatal(err)
	}
	cc, err := core.BuildCount(4, mustOpts(t, shape))
	if err != nil {
		t.Fatal(err)
	}
	adj := graph.Complete(4).Adjacency()
	in, err := cc.Assign(adj)
	if err != nil {
		t.Fatal(err)
	}

	// The bait request: whichever dispatcher picks it up stalls in its
	// evaluation gate, wedging that shard with a non-empty stripe queue
	// still attached to it.
	bait := make(chan error, 1)
	go func() {
		_, err := s.Do(ctx, shape, in)
		bait <- err
	}()
	stalledShard := <-entered

	// Now load the server. Round-robin spreads these over both stripes;
	// the stalled shard cannot serve its share, so every request that
	// lands there must be stolen by the healthy dispatcher. The deadline
	// stands in for the HTTP 504 escalation: nothing may hit it.
	const piled = 40
	dctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	errc := make(chan error, piled)
	for i := 0; i < piled; i++ {
		go func() {
			_, err := s.Do(dctx, shape, in)
			errc <- err
		}()
	}
	for i := 0; i < piled; i++ {
		if err := <-errc; err != nil {
			t.Fatalf("request failed while shard %d was stalled: %v", stalledShard, err)
		}
	}
	if steals := s.Snapshot().Steals; steals == 0 {
		t.Error("no steals recorded: the stalled shard's stripe was not drained by siblings")
	}

	releaseStalled() // unwedge the stalled dispatcher; the bait completes
	if err := <-bait; err != nil {
		t.Fatalf("bait request failed after release: %v", err)
	}
}
