package serve

import (
	"context"
	"math/rand"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/store"
)

// A server with a disk cache persists its builds, and a new server
// over the same directory warm-starts from disk on LRU miss — the
// build-once/serve-many restart path. Corrupt artifacts are healed
// transparently.
func TestServerWarmStartsFromDisk(t *testing.T) {
	dir := t.TempDir()
	cache1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	shape := core.Shape{Op: core.OpMatMul, N: 4, Alg: "strassen", EntryBits: 2, Signed: true}
	rng := rand.New(rand.NewSource(77))
	a := matrix.Random(rng, 4, 4, -2, 2)
	b := matrix.Random(rng, 4, 4, -2, 2)

	s1 := New(Config{Cache: cache1})
	want, err := s1.MatMul(context.Background(), shape, a, b)
	if err != nil {
		t.Fatal(err)
	}
	s1.Close()
	snap := s1.Snapshot()
	if snap.DiskHits != 0 || snap.DiskSaves != 1 {
		t.Fatalf("first server: disk_hits=%d disk_saves=%d, want 0/1", snap.DiskHits, snap.DiskSaves)
	}
	if _, err := os.Stat(cache1.Path(shape)); err != nil {
		t.Fatalf("artifact not on disk after first serve: %v", err)
	}

	// Fresh server, fresh LRU, same disk: must load, not rebuild.
	cache2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{Cache: cache2})
	got, err := s2.MatMul(context.Background(), shape, a, b)
	if err != nil {
		t.Fatal(err)
	}
	s2.Close()
	if !want.Equal(got) {
		t.Fatal("warm-started server answers differently")
	}
	snap = s2.Snapshot()
	if snap.DiskHits != 1 || snap.DiskSaves != 0 {
		t.Fatalf("second server: disk_hits=%d disk_saves=%d, want 1/0", snap.DiskHits, snap.DiskSaves)
	}
	if snap.Store == nil || snap.Store.Hits != 1 {
		t.Fatalf("snapshot store stats %+v, want 1 hit", snap.Store)
	}

	// Corrupt the artifact in place; a third server must heal and serve.
	path := cache2.Path(shape)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0x5A
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	cache3, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s3 := New(Config{Cache: cache3})
	defer s3.Close()
	got, err = s3.MatMul(context.Background(), shape, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(got) {
		t.Fatal("healed server answers differently")
	}
	if st := cache3.Stats(); st.Corrupt != 1 || st.Saves != 1 {
		t.Fatalf("healing stats %+v, want 1 corrupt / 1 save", st)
	}
}
