package serve

import (
	"context"
	"math/rand"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/store"
)

// A server with a disk cache persists its builds, and a new server
// over the same directory warm-starts from disk on LRU miss — the
// build-once/serve-many restart path. Corrupt artifacts are healed
// transparently.
func TestServerWarmStartsFromDisk(t *testing.T) {
	dir := t.TempDir()
	cache1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	shape := core.Shape{Op: core.OpMatMul, N: 4, Alg: "strassen", EntryBits: 2, Signed: true}
	rng := rand.New(rand.NewSource(77))
	a := matrix.Random(rng, 4, 4, -2, 2)
	b := matrix.Random(rng, 4, 4, -2, 2)

	s1 := New(Config{Cache: cache1})
	want, err := s1.MatMul(context.Background(), shape, a, b)
	if err != nil {
		t.Fatal(err)
	}
	s1.Close()
	snap := s1.Snapshot()
	if snap.DiskHits != 0 || snap.DiskSaves != 1 {
		t.Fatalf("first server: disk_hits=%d disk_saves=%d, want 0/1", snap.DiskHits, snap.DiskSaves)
	}
	if _, err := os.Stat(cache1.Path(shape)); err != nil {
		t.Fatalf("artifact not on disk after first serve: %v", err)
	}

	// Fresh server, fresh LRU, same disk: must load, not rebuild — and
	// with the TCS2 default the load comes off an mmap'd artifact whose
	// arenas the serving circuit aliases for its whole LRU lifetime.
	cache2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{Cache: cache2})
	got, err := s2.MatMul(context.Background(), shape, a, b)
	if err != nil {
		t.Fatal(err)
	}
	s2.Close()
	defer cache2.Close() // after the server: its circuits alias the mapping
	if !want.Equal(got) {
		t.Fatal("warm-started server answers differently")
	}
	snap = s2.Snapshot()
	if snap.DiskHits != 1 || snap.DiskSaves != 0 {
		t.Fatalf("second server: disk_hits=%d disk_saves=%d, want 1/0", snap.DiskHits, snap.DiskSaves)
	}
	if snap.Store == nil || snap.Store.Hits != 1 {
		t.Fatalf("snapshot store stats %+v, want 1 hit", snap.Store)
	}
	if store.MapSupported() && snap.Store.Mapped != 1 {
		t.Fatalf("snapshot store stats %+v, want the warm start mapped", snap.Store)
	}

	// Corrupt the artifact in place; a third server must heal and serve.
	path := cache2.Path(shape)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0x5A
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	cache3, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s3 := New(Config{Cache: cache3})
	defer s3.Close()
	got, err = s3.MatMul(context.Background(), shape, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(got) {
		t.Fatal("healed server answers differently")
	}
	if st := cache3.Stats(); st.Corrupt != 1 || st.Saves != 1 {
		t.Fatalf("healing stats %+v, want 1 corrupt / 1 save", st)
	}
}

// A server pointed at a cache directory populated by a TCS1-era binary
// warm-starts from the legacy artifact and transparently migrates it:
// the first restart serves from disk (not a rebuild) and republishes
// the circuit as TCS2, the second restart takes the mapped fast path.
func TestServerWarmStartsFromLegacyCache(t *testing.T) {
	dir := t.TempDir()
	legacy, err := store.OpenWith(dir, store.Options{Format: store.FormatVersion})
	if err != nil {
		t.Fatal(err)
	}
	shape := core.Shape{Op: core.OpMatMul, N: 4, Alg: "strassen", EntryBits: 2, Signed: true}
	rng := rand.New(rand.NewSource(78))
	a := matrix.Random(rng, 4, 4, -2, 2)
	b := matrix.Random(rng, 4, 4, -2, 2)

	s1 := New(Config{Cache: legacy})
	want, err := s1.MatMul(context.Background(), shape, a, b)
	if err != nil {
		t.Fatal(err)
	}
	s1.Close()

	// Restart on the same directory with the modern default format.
	cache2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{Cache: cache2})
	got, err := s2.MatMul(context.Background(), shape, a, b)
	if err != nil {
		t.Fatal(err)
	}
	s2.Close()
	defer cache2.Close()
	if !want.Equal(got) {
		t.Fatal("migrated server answers differently")
	}
	snap := s2.Snapshot()
	if snap.DiskHits != 1 {
		t.Fatalf("legacy warm start rebuilt instead of loading: %+v", snap)
	}
	if st := cache2.Stats(); st.Migrated != 1 {
		t.Fatalf("stats %+v, want 1 migration", st)
	}

	// Third restart: the migrated TCS2 artifact serves the mapped path.
	cache3, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s3 := New(Config{Cache: cache3})
	got, err = s3.MatMul(context.Background(), shape, a, b)
	if err != nil {
		t.Fatal(err)
	}
	s3.Close()
	defer cache3.Close()
	if !want.Equal(got) {
		t.Fatal("mapped server answers differently")
	}
	if st := cache3.Stats(); st.Migrated != 0 || (store.MapSupported() && st.Mapped != 1) {
		t.Fatalf("stats %+v, want 0 migrations and a mapped load", st)
	}
}
