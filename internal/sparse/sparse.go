// Package sparse provides the scalable graph substrate for the paper's
// social-network motivation (Section 5): adjacency in compressed
// sparse row form with triangle/wedge/clustering analysis that runs on
// graphs far beyond what any materialized circuit handles (10^5+
// vertices), using the standard node-iterator algorithm with sorted
// neighbor intersection.
//
// The paper concedes that "social networks of current interest are too
// large for our circuit methods to be practical"; this package supplies
// the conventional-computation side of that comparison, while the
// counting model (internal/counting) prices the hypothetical circuit at
// the same N.
package sparse

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// Graph is an undirected simple graph in CSR form: the neighbors of
// vertex v are adj[start[v]:start[v+1]], sorted ascending.
type Graph struct {
	N     int
	start []int64
	adj   []int32
}

// FromEdges builds a CSR graph from an edge list; duplicate edges and
// self-loops are rejected.
func FromEdges(n int, edges [][2]int) (*Graph, error) {
	deg := make([]int64, n)
	for _, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, fmt.Errorf("sparse: edge (%d,%d) out of range [0,%d)", u, v, n)
		}
		if u == v {
			return nil, fmt.Errorf("sparse: self-loop at %d", u)
		}
		deg[u]++
		deg[v]++
	}
	g := &Graph{N: n, start: make([]int64, n+1)}
	for v := 0; v < n; v++ {
		g.start[v+1] = g.start[v] + deg[v]
	}
	g.adj = make([]int32, g.start[n])
	fill := make([]int64, n)
	for _, e := range edges {
		u, v := e[0], e[1]
		g.adj[g.start[u]+fill[u]] = int32(v)
		g.adj[g.start[v]+fill[v]] = int32(u)
		fill[u]++
		fill[v]++
	}
	for v := 0; v < n; v++ {
		nb := g.neighbors(v)
		sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
		for i := 1; i < len(nb); i++ {
			if nb[i] == nb[i-1] {
				return nil, fmt.Errorf("sparse: duplicate edge (%d,%d)", v, nb[i])
			}
		}
	}
	return g, nil
}

// FromDense converts a dense graph (validated elsewhere) to CSR.
func FromDense(dg *graph.Graph) *Graph {
	var edges [][2]int
	for u := 0; u < dg.N; u++ {
		for v := u + 1; v < dg.N; v++ {
			if dg.HasEdge(u, v) {
				edges = append(edges, [2]int{u, v})
			}
		}
	}
	g, err := FromEdges(dg.N, edges)
	if err != nil {
		panic("sparse: dense graph produced invalid edges: " + err.Error())
	}
	return g
}

func (g *Graph) neighbors(v int) []int32 {
	return g.adj[g.start[v]:g.start[v+1]]
}

// Degree returns deg(v).
func (g *Graph) Degree(v int) int64 { return g.start[v+1] - g.start[v] }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int64 { return int64(len(g.adj)) / 2 }

// HasEdge reports whether {u, v} is an edge (binary search).
func (g *Graph) HasEdge(u, v int) bool {
	nb := g.neighbors(u)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= int32(v) })
	return i < len(nb) && nb[i] == int32(v)
}

// Triangles counts triangles with the node-iterator algorithm: for each
// edge (u, v) with u < v, intersect the sorted neighbor lists above v.
// Runs in O(Σ_e (deg(u)+deg(v))) — practical at hundreds of thousands
// of vertices.
func (g *Graph) Triangles() int64 {
	var count int64
	for u := 0; u < g.N; u++ {
		nu := g.neighbors(u)
		for _, v32 := range nu {
			v := int(v32)
			if v <= u {
				continue
			}
			nv := g.neighbors(v)
			// Intersect entries > v in both lists.
			i := sort.Search(len(nu), func(i int) bool { return nu[i] > int32(v) })
			j := sort.Search(len(nv), func(i int) bool { return nv[i] > int32(v) })
			for i < len(nu) && j < len(nv) {
				switch {
				case nu[i] < nv[j]:
					i++
				case nu[i] > nv[j]:
					j++
				default:
					count++
					i++
					j++
				}
			}
		}
	}
	return count
}

// Wedges returns Σ_v C(deg(v), 2).
func (g *Graph) Wedges() int64 {
	var w int64
	for v := 0; v < g.N; v++ {
		d := g.Degree(v)
		w += d * (d - 1) / 2
	}
	return w
}

// ClusteringCoefficient returns 3Δ/D (0 when wedge-free).
func (g *Graph) ClusteringCoefficient() float64 {
	w := g.Wedges()
	if w == 0 {
		return 0
	}
	return 3 * float64(g.Triangles()) / float64(w)
}

// TauForClustering mirrors graph.TauForClustering on the sparse form.
func (g *Graph) TauForClustering(cc float64) int64 {
	d := g.Wedges()
	triangles := int64(float64(d) * cc / 3)
	if float64(triangles)*3 < float64(d)*cc {
		triangles++
	}
	return 6 * triangles
}

// ErdosRenyi samples a sparse G(n, p) by sampling the number of edges
// per vertex pair block — for small p it uses geometric skipping so the
// cost is O(p·n²) expected rather than n².
func ErdosRenyi(rng *rand.Rand, n int, p float64) *Graph {
	var edges [][2]int
	if p <= 0 {
		g, _ := FromEdges(n, nil)
		return g
	}
	if p >= 1 {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				edges = append(edges, [2]int{u, v})
			}
		}
	} else {
		// Geometric skipping over the implicit pair enumeration.
		total := int64(n) * int64(n-1) / 2
		idx := int64(-1)
		for {
			// Skip ~Geom(p).
			skip := int64(1)
			if p < 1 {
				u := rng.Float64()
				skip = int64(math.Log(1-u)/math.Log(1-p)) + 1
			}
			idx += skip
			if idx >= total {
				break
			}
			u, v := pairFromIndex(idx, n)
			edges = append(edges, [2]int{u, v})
		}
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		panic("sparse: generator produced invalid edges: " + err.Error())
	}
	return g
}

// pairFromIndex maps a linear index over upper-triangle pairs to (u,v).
func pairFromIndex(idx int64, n int) (int, int) {
	u := 0
	rowLen := int64(n - 1)
	for idx >= rowLen {
		idx -= rowLen
		u++
		rowLen--
	}
	return u, u + 1 + int(idx)
}
