package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// Sparse triangle counting agrees with the dense reference on random
// graphs.
func TestTrianglesMatchDense(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		dg := graph.ErdosRenyi(rng, n, rng.Float64())
		sg := FromDense(dg)
		return sg.Triangles() == dg.Triangles() &&
			sg.Wedges() == dg.Wedges() &&
			sg.NumEdges() == dg.NumEdges()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestKnownGraphs(t *testing.T) {
	// K5: 10 triangles, 10 edges... K5 has C(5,3)=10 triangles, 10 edges.
	k5 := FromDense(graph.Complete(5))
	if k5.Triangles() != 10 || k5.NumEdges() != 10 {
		t.Errorf("K5: triangles=%d edges=%d", k5.Triangles(), k5.NumEdges())
	}
	if k5.ClusteringCoefficient() != 1 {
		t.Errorf("K5 clustering = %v", k5.ClusteringCoefficient())
	}
	c6 := FromDense(graph.Cycle(6))
	if c6.Triangles() != 0 {
		t.Error("C6 should be triangle-free")
	}
}

func TestFromEdgesValidation(t *testing.T) {
	if _, err := FromEdges(3, [][2]int{{0, 3}}); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := FromEdges(3, [][2]int{{1, 1}}); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := FromEdges(3, [][2]int{{0, 1}, {1, 0}}); err == nil {
		t.Error("duplicate edge accepted")
	}
	g, err := FromEdges(3, [][2]int{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(2, 1) || g.HasEdge(0, 2) {
		t.Error("HasEdge wrong")
	}
	if g.Degree(1) != 2 || g.Degree(0) != 1 {
		t.Error("degrees wrong")
	}
}

// The geometric-skipping generator matches expected density and the
// resulting structure is valid.
func TestSparseErdosRenyi(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n = 2000
	const p = 0.01
	g := ErdosRenyi(rng, n, p)
	expected := p * float64(n) * float64(n-1) / 2
	got := float64(g.NumEdges())
	if got < expected*0.85 || got > expected*1.15 {
		t.Errorf("edges %v, expected ≈ %v", got, expected)
	}
	if z := ErdosRenyi(rng, 50, 0); z.NumEdges() != 0 {
		t.Error("p=0 graph has edges")
	}
	if f := ErdosRenyi(rng, 20, 1); f.NumEdges() != 190 {
		t.Error("p=1 graph incomplete")
	}
}

// Sparse and dense generators give statistically similar triangle
// counts; at ER expectation Δ ≈ C(n,3)p³.
func TestSparseTriangleExpectation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const n = 1500
	const p = 0.01
	g := ErdosRenyi(rng, n, p)
	expected := float64(n) * float64(n-1) * float64(n-2) / 6 * p * p * p
	got := float64(g.Triangles())
	if got < expected*0.4 || got > expected*2.5 {
		t.Errorf("triangles %v, ER expectation ≈ %v", got, expected)
	}
}

// Large-scale smoke: 100k vertices, ~500k edges, triangle counting
// completes quickly — the conventional baseline at "social network"
// scale the paper says circuits can't reach yet.
func TestLargeScale(t *testing.T) {
	if testing.Short() {
		t.Skip("large graph")
	}
	rng := rand.New(rand.NewSource(7))
	const n = 100000
	g := ErdosRenyi(rng, n, 1e-4)
	tri := g.Triangles()
	if tri < 0 {
		t.Fatal("negative count")
	}
	cc := g.ClusteringCoefficient()
	if cc < 0 || cc > 1 {
		t.Fatalf("clustering %v out of range", cc)
	}
	if g.TauForClustering(0.5) < 0 {
		t.Fatal("tau negative")
	}
}

func TestPairFromIndex(t *testing.T) {
	n := 5
	idx := int64(0)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			gu, gv := pairFromIndex(idx, n)
			if gu != u || gv != v {
				t.Fatalf("index %d -> (%d,%d), want (%d,%d)", idx, gu, gv, u, v)
			}
			idx++
		}
	}
}
