package store

import (
	"encoding/binary"
	"fmt"
	"unsafe"
)

// The TCS2 arenas are little-endian arrays on disk. On a little-endian
// host with a suitably aligned buffer they are usable in place — that
// is the whole point of the mmap path — and the helpers here are the
// single seam where that reinterpretation happens. Everywhere else the
// codec goes through encoding/binary, so a big-endian or misaligned
// host silently degrades to a correct copying decode.

var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// i64Bytes and i32Bytes view a slice's backing memory as bytes in host
// order. They are only used to form dictionary map keys during encode —
// any injective encoding works there — never for on-disk bytes.
func i64Bytes(vs []int64) []byte {
	if len(vs) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&vs[0])), len(vs)*8)
}

func i32Bytes(vs []int32) []byte {
	if len(vs) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&vs[0])), len(vs)*4)
}

// sliceI64 reinterprets b (length a multiple of 8) as little-endian
// int64s. With alias set — and a little-endian host and 8-aligned
// buffer — the result shares b's memory and the caller must keep b
// alive and unwritten; otherwise the values are copied out.
func sliceI64(b []byte, alias bool) []int64 {
	n := len(b) / 8
	if n == 0 {
		return nil
	}
	if alias && hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// sliceI32 is sliceI64 for int32 arenas (4-byte alignment).
func sliceI32(b []byte, alias bool) []int32 {
	n := len(b) / 4
	if n == 0 {
		return nil
	}
	if alias && hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// uvarint reads one varint, joining the decoder's sticky-error flow.
func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		d.err = fmt.Errorf("bad varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}
