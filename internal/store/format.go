// Package store persists built circuits: a versioned, checksummed
// binary envelope around the circuit codec plus the typed-wrapper
// metadata (core.BuiltMeta), and a content-addressed on-disk cache
// keyed by a SHA-256 fingerprint of the shape and the format version.
//
// The economics mirror an inference stack: construction is seconds of
// CPU for large N (even parallelized — see internal/core's pipeline),
// evaluation is microseconds, and the artifact is deterministic per
// core.Shape. So the circuit is built once, fingerprinted, and
// reloaded everywhere else — a cache load is an order of magnitude
// cheaper than a rebuild (tcbench e26 measures it).
//
// Two envelope generations coexist: the flat TCS1 layout below (this
// file), and the compact, mmap-able TCS2 default (tcs2.go, map.go).
// TCS1 remains fully readable; a TCS2-mode cache migrates legacy
// artifacts on first load.
//
// TCS1 envelope layout (little endian):
//
//	magic "TCS1" | u32 formatVersion
//	u32 keyLen   | shape key string (core.Shape.Key())
//	u64 metaLen  | BuiltMeta section (see appendMeta)
//	u64 circLen  | circuit codec bytes (circuit.WriteTo format)
//	u32 CRC-32C over everything above
//
// The trailing CRC-32C (Castagnoli, hardware-accelerated) catches
// corruption and truncation before any section is trusted; the shape
// key is stored in clear and must match the requested shape exactly,
// so a fingerprint collision or a renamed file cannot smuggle the
// wrong circuit in; and the circuit and metadata sections each
// re-validate their own structural invariants (circuit.ReadBytes,
// core.RestoreBuilt). Integrity uses CRC, not SHA-256: the content
// address authenticates *which* artifact a file claims to be, the CRC
// only needs to catch bit rot and torn writes at disk bandwidth.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/arith"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/tctree"
)

const (
	envelopeMagic = "TCS1"
	// FormatVersion is bumped on any incompatible layout change; it is
	// part of both the envelope header and the cache fingerprint, so a
	// version bump simply misses the old files instead of misreading
	// them.
	FormatVersion = 1
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Encode serializes a Built into the envelope format. The output
// buffer is presized to the exact envelope length (the circuit codec
// reports its size up front), so the circuit section is encoded
// straight into place — no staging buffer, no growth copies. At N=16
// that is a 443 MB artifact written with a single allocation, which
// is what keeps save time below build time (TestEncodePresized pins
// the no-realloc property).
func Encode(b *core.Built) ([]byte, error) {
	c := b.Circuit()
	meta := appendMeta(nil, b.Meta())
	key := b.Shape.Key()

	circLen := c.EncodedSize()
	out := make([]byte, 0, int64(len(envelopeMagic)+4+4+len(key)+8+len(meta)+8+4)+circLen)
	out = append(out, envelopeMagic...)
	out = binary.LittleEndian.AppendUint32(out, FormatVersion)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(key)))
	out = append(out, key...)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(meta)))
	out = append(out, meta...)
	out = binary.LittleEndian.AppendUint64(out, uint64(circLen))
	out = c.AppendBinary(out)
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(out, crcTable))
	return out, nil
}

// Decode parses an envelope and restores the Built for shape. Every
// failure mode — truncation, bit flips, version or shape mismatch,
// inconsistent sections — returns an error wrapping ErrCorrupt (except
// a clean version mismatch, which wraps ErrVersion so callers can
// distinguish "stale format" from "damaged file").
func Decode(shape core.Shape, data []byte) (*core.Built, error) {
	const minLen = 4 + 4 + 4 + 8 + 8 + 4
	if len(data) < minLen {
		return nil, fmt.Errorf("%w: %d bytes is shorter than any envelope", ErrCorrupt, len(data))
	}
	if string(data[:4]) != envelopeMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:4])
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.Checksum(body, crcTable), binary.LittleEndian.Uint32(tail); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch (have %08x, stored %08x)", ErrCorrupt, got, want)
	}
	// From here on the bytes are authentic; mismatches mean the file
	// was written by a different writer, not damaged in place.
	if v := binary.LittleEndian.Uint32(body[4:]); v != FormatVersion {
		return nil, fmt.Errorf("%w: file has format v%d, this build reads v%d", ErrVersion, v, FormatVersion)
	}
	d := &decoder{data: body, off: 8}
	key := string(d.bytes(int64(d.u32())))
	meta := d.bytes(int64(d.u64()))
	circ := d.bytes(int64(d.u64()))
	if d.err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, d.err)
	}
	if d.off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(body)-d.off)
	}
	if want := shape.Key(); key != want {
		return nil, fmt.Errorf("%w: envelope is for shape %q, want %q", ErrCorrupt, key, want)
	}
	m, err := decodeMeta(meta)
	if err != nil {
		return nil, fmt.Errorf("%w: metadata: %v", ErrCorrupt, err)
	}
	c, err := circuit.ReadBytes(circ)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	built, err := core.RestoreBuilt(shape, c, m)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return built, nil
}

// appendMeta serializes a BuiltMeta:
//
//	u64 schedLen | sched[] (i64)
//	4 audits (DownA DownB DownG Up): u64 len | values[] (i64)
//	product i64 | auditOutput i64
//	u64 numReps | per rep: pos half, neg half
//	  half: u64 nTerms | terms[] (i32 wire, i64 weight) | i64 max
//	i64 output wire
func appendMeta(out []byte, m core.BuiltMeta) []byte {
	i64 := func(v int64) { out = binary.LittleEndian.AppendUint64(out, uint64(v)) }
	i64s := func(vs []int64) {
		i64(int64(len(vs)))
		for _, v := range vs {
			i64(v)
		}
	}
	i64(int64(len(m.Schedule)))
	for _, h := range m.Schedule {
		i64(int64(h))
	}
	i64s(m.Audit.DownA)
	i64s(m.Audit.DownB)
	i64s(m.Audit.DownG)
	i64s(m.Audit.Up)
	i64(m.Audit.Product)
	i64(m.Audit.Output)
	i64(int64(len(m.Reps)))
	for _, r := range m.Reps {
		for _, half := range []arith.Rep{r.Pos, r.Neg} {
			i64(int64(len(half.Terms)))
			for _, t := range half.Terms {
				out = binary.LittleEndian.AppendUint32(out, uint32(t.Wire))
				i64(t.Weight)
			}
			i64(half.Max)
		}
	}
	i64(int64(m.Output))
	return out
}

func decodeMeta(data []byte) (core.BuiltMeta, error) {
	d := &decoder{data: data}
	var m core.BuiltMeta

	schedLen := d.count(8)
	if d.err == nil {
		m.Schedule = make(tctree.Schedule, schedLen)
		for i := range m.Schedule {
			m.Schedule[i] = int(d.i64())
		}
	}
	audit := func() []int64 {
		n := d.count(8)
		if d.err != nil || n == 0 {
			return nil
		}
		vs := make([]int64, n)
		for i := range vs {
			vs[i] = d.i64()
		}
		return vs
	}
	m.Audit.DownA = audit()
	m.Audit.DownB = audit()
	m.Audit.DownG = audit()
	m.Audit.Up = audit()
	m.Audit.Product = d.i64()
	m.Audit.Output = d.i64()

	numReps := d.count(32) // a rep is at least two empty halves (16 bytes each)
	if d.err == nil {
		m.Reps = make([]arith.Signed, numReps)
		for i := range m.Reps {
			for _, half := range []*arith.Rep{&m.Reps[i].Pos, &m.Reps[i].Neg} {
				nTerms := d.count(12)
				if d.err != nil {
					break
				}
				half.Terms = make([]arith.Term, nTerms)
				for j := range half.Terms {
					half.Terms[j] = arith.Term{Wire: circuit.Wire(d.u32()), Weight: d.i64()}
				}
				half.Max = d.i64()
			}
		}
	}
	m.Output = circuit.Wire(d.i64())
	if d.err != nil {
		return core.BuiltMeta{}, d.err
	}
	if d.off != len(data) {
		return core.BuiltMeta{}, fmt.Errorf("%d trailing metadata bytes", len(data)-d.off)
	}
	return m, nil
}

// decoder reads little-endian values out of a byte slice; methods
// return zeros after the first error.
type decoder struct {
	data []byte
	off  int
	err  error
}

func (d *decoder) has(n int64) bool {
	if d.err != nil {
		return false
	}
	if n < 0 || int64(len(d.data)-d.off) < n {
		d.err = io.ErrUnexpectedEOF
		return false
	}
	return true
}

// count reads a u64 element count and rejects any value whose minimum
// encoding (elemSize bytes each) cannot fit in the remaining input, so
// a hostile length cannot drive a large allocation.
func (d *decoder) count(elemSize int64) int64 {
	n := d.i64()
	if d.err != nil {
		return 0
	}
	if n < 0 || n > int64(len(d.data)-d.off)/elemSize {
		d.err = fmt.Errorf("implausible element count %d", n)
		return 0
	}
	return n
}

func (d *decoder) i64() int64 {
	if !d.has(8) {
		return 0
	}
	v := int64(binary.LittleEndian.Uint64(d.data[d.off:]))
	d.off += 8
	return v
}

func (d *decoder) u64() uint64 { return uint64(d.i64()) }

func (d *decoder) u32() uint32 {
	if !d.has(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.data[d.off:])
	d.off += 4
	return v
}

func (d *decoder) bytes(n int64) []byte {
	if !d.has(n) {
		return nil
	}
	b := d.data[d.off : d.off+int(n)]
	d.off += int(n)
	return b
}
