package store

import (
	"fmt"
	"os"

	"repro/internal/core"
)

// Mapping is an open, memory-mapped TCS2 artifact together with the
// Built decoded from it. The circuit's wire and weight arenas alias the
// mapped pages directly — the kernel faults them in on first touch and
// shares them across processes mapping the same artifact — so the Built
// must not be used after Close. A nil-data Mapping (heap fallback)
// makes Close a no-op, letting callers treat both paths uniformly.
type Mapping struct {
	built *core.Built
	data  []byte // nil when the heap fallback was used
}

// Built returns the decoded artifact. Valid until Close.
func (m *Mapping) Built() *core.Built { return m.built }

// Mapped reports whether the circuit aliases a live file mapping (as
// opposed to the heap fallback).
func (m *Mapping) Mapped() bool { return m.data != nil }

// Close releases the file mapping. Any circuit obtained from Built
// must no longer be evaluated or inspected afterwards.
func (m *Mapping) Close() error {
	if m.data == nil {
		return nil
	}
	d := m.data
	m.data = nil
	return munmap(d)
}

// MapSupported reports whether loads on this platform are served from
// file mappings (false means every load takes the heap fallback).
func MapSupported() bool { return mmapSupported }

// MapCircuit opens a TCS2 artifact, maps it read-only and restores the
// Built for shape with the hot arenas aliased in place: integrity is
// verified (root digest plus every segment leaf, at CRC bandwidth) and
// the group structure decoded, but the multi-hundred-megabyte wire and
// weight dictionaries are never copied or even touched beyond the
// checksum pass. On platforms without mmap — or if the map itself
// fails — it falls back to a heap decode of the same bytes, so callers
// get identical semantics everywhere.
func MapCircuit(path string, shape core.Shape) (*Mapping, error) {
	if !mmapSupported {
		return heapFallback(path, shape)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close() // the mapping outlives the descriptor
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if st.Size() < tcs2TailLen {
		return nil, fmt.Errorf("%w: %d bytes is shorter than any TCS2 envelope", ErrCorrupt, st.Size())
	}
	data, err := mmapFile(f, st.Size())
	if err != nil {
		return heapFallback(path, shape)
	}
	built, err := decodeTCS2(shape, data, true)
	if err != nil {
		_ = munmap(data)
		return nil, err
	}
	return &Mapping{built: built, data: data}, nil
}

func heapFallback(path string, shape core.Shape) (*Mapping, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	built, err := DecodeTCS2(shape, data)
	if err != nil {
		return nil, err
	}
	return &Mapping{built: built}, nil
}

// DecodeAny sniffs the envelope generation and dispatches: TCS2 by its
// trailing magic, TCS1 otherwise. This is the read path for tools that
// accept a file of either format (tcmm load, migration).
func DecodeAny(shape core.Shape, data []byte) (*core.Built, error) {
	if isTCS2(data) {
		return DecodeTCS2(shape, data)
	}
	return Decode(shape, data)
}

func isTCS2(data []byte) bool {
	return len(data) >= tcs2TailLen && string(data[len(data)-4:]) == tcs2TailMagic &&
		string(data[:4]) == tcs2Magic
}
