//go:build !unix

package store

import (
	"errors"
	"os"
)

const mmapSupported = false

func mmapFile(_ *os.File, _ int64) ([]byte, error) { return nil, errors.ErrUnsupported }

func munmap(_ []byte) error { return nil }
