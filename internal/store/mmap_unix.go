//go:build unix

package store

import (
	"fmt"
	"os"
	"syscall"
)

const mmapSupported = true

// mmapFile maps size bytes of f read-only and shared. The mapping
// survives closing f; release it with munmap.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if int64(int(size)) != size {
		return nil, fmt.Errorf("store: %d bytes exceeds the address space", size)
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmap(b []byte) error { return syscall.Munmap(b) }
