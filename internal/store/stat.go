package store

import (
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
)

// StatInfo summarizes an on-disk artifact from its header and footer
// alone. Fields a format does not record in its header are -1.
type StatInfo struct {
	Path     string
	Format   int // envelope version: 1 (TCS1) or 2 (TCS2)
	ShapeKey string
	FileSize int64

	Inputs      int64
	Gates       int64
	Groups      int64
	Outputs     int64
	StoredEdges int64
	Depth       int64

	Segments   int    // TCS2: integrity segments in the directory
	RootDigest string // TCS2: hex SHA-256 root, as stored
}

// Stat reports an artifact's identity and dimensions by reading a few
// kilobytes — the header, and for TCS2 the fixed footer — regardless
// of artifact size: no full read, no decode, no checksum pass. Values
// are reported as stored; Stat identifies, Load verifies.
func Stat(path string) (StatInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return StatInfo{}, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return StatInfo{}, fmt.Errorf("store: %w", err)
	}
	info := StatInfo{
		Path: path, FileSize: fi.Size(),
		Inputs: -1, Gates: -1, Groups: -1, Outputs: -1, StoredEdges: -1, Depth: -1,
	}
	var magic [4]byte
	if _, err := f.ReadAt(magic[:], 0); err != nil {
		return info, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	switch string(magic[:]) {
	case envelopeMagic:
		return statTCS1(f, info)
	case tcs2Magic:
		return statTCS2(f, info)
	default:
		return info, fmt.Errorf("%w: unrecognized magic %q", ErrCorrupt, magic[:])
	}
}

func statReadAt(f *os.File, off, n int64) ([]byte, error) {
	buf := make([]byte, n)
	if _, err := f.ReadAt(buf, off); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("%w: header truncated", ErrCorrupt)
		}
		return nil, fmt.Errorf("store: %w", err)
	}
	return buf, nil
}

func statTCS1(f *os.File, info StatInfo) (StatInfo, error) {
	hdr, err := statReadAt(f, 0, 12)
	if err != nil {
		return info, err
	}
	info.Format = int(binary.LittleEndian.Uint32(hdr[4:]))
	keyLen := int64(binary.LittleEndian.Uint32(hdr[8:]))
	if keyLen < 0 || keyLen > 1<<16 || 12+keyLen+8 > info.FileSize {
		return info, fmt.Errorf("%w: implausible key length %d", ErrCorrupt, keyLen)
	}
	buf, err := statReadAt(f, 12, keyLen+8)
	if err != nil {
		return info, err
	}
	info.ShapeKey = string(buf[:keyLen])
	metaLen := int64(binary.LittleEndian.Uint64(buf[keyLen:]))
	circOff := 12 + keyLen + 8 + metaLen
	if metaLen < 0 || circOff+8+4+32 > info.FileSize {
		return info, fmt.Errorf("%w: implausible metadata length %d", ErrCorrupt, metaLen)
	}
	// u64 circLen, then the TCM1 header: magic | numInputs | numGroups |
	// numGates | numWires(stored).
	buf, err = statReadAt(f, circOff, 8+4+4*8)
	if err != nil {
		return info, err
	}
	if string(buf[8:12]) != "TCM1" {
		return info, fmt.Errorf("%w: circuit section magic %q", ErrCorrupt, buf[8:12])
	}
	info.Inputs = int64(binary.LittleEndian.Uint64(buf[12:]))
	info.Groups = int64(binary.LittleEndian.Uint64(buf[20:]))
	info.Gates = int64(binary.LittleEndian.Uint64(buf[28:]))
	info.StoredEdges = int64(binary.LittleEndian.Uint64(buf[36:]))
	return info, nil
}

func statTCS2(f *os.File, info StatInfo) (StatInfo, error) {
	if info.FileSize < tcs2TailLen {
		return info, fmt.Errorf("%w: %d bytes is shorter than any TCS2 envelope", ErrCorrupt, info.FileSize)
	}
	tail, err := statReadAt(f, info.FileSize-tcs2TailLen, tcs2TailLen)
	if err != nil {
		return info, err
	}
	if string(tail[tcs2TailLen-4:]) != tcs2TailMagic {
		return info, fmt.Errorf("%w: bad tail magic", ErrCorrupt)
	}
	info.RootDigest = hex.EncodeToString(tail[:32])
	info.Segments = int(binary.LittleEndian.Uint32(tail[48:]))

	hdr, err := statReadAt(f, 0, 12)
	if err != nil {
		return info, err
	}
	info.Format = int(binary.LittleEndian.Uint32(hdr[4:]))
	keyLen := int64(binary.LittleEndian.Uint32(hdr[8:]))
	if keyLen < 0 || keyLen > 1<<16 || 12+keyLen+tcs2CountsLen > info.FileSize {
		return info, fmt.Errorf("%w: implausible key length %d", ErrCorrupt, keyLen)
	}
	buf, err := statReadAt(f, 12, keyLen+tcs2CountsLen)
	if err != nil {
		return info, err
	}
	info.ShapeKey = string(buf[:keyLen])
	counts := buf[keyLen:]
	u := func(i int) int64 { return int64(binary.LittleEndian.Uint64(counts[8*i:])) }
	info.Inputs, info.Gates, info.Groups, info.Outputs = u(0), u(1), u(2), u(3)
	info.StoredEdges, info.Depth = u(4), u(5)
	return info, nil
}
