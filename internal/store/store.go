package store

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"repro/internal/core"
)

var (
	// ErrMiss reports that the cache holds no artifact for the shape.
	ErrMiss = errors.New("store: cache miss")
	// ErrCorrupt reports that an artifact exists but failed validation
	// (checksum, structure, or shape mismatch); callers should rebuild.
	ErrCorrupt = errors.New("store: corrupt artifact")
	// ErrVersion reports an artifact written by a different format
	// version — intact, but unreadable by this build. It wraps
	// ErrCorrupt so a plain errors.Is(err, ErrCorrupt) treats both as
	// "rebuild"; in practice the fingerprint includes the version, so
	// this only surfaces for hand-renamed files.
	ErrVersion = fmt.Errorf("%w (format version mismatch)", ErrCorrupt)
)

// Fingerprint returns the content address of a shape's artifact: the
// hex SHA-256 of the format version and the shape's canonical key
// (which covers op, N, tau, algorithm, and every circuit-shaping
// Options field). Equal shapes build bit-identical circuits, so the
// fingerprint names the artifact, not a particular build of it.
func Fingerprint(s core.Shape) string {
	h := sha256.New()
	fmt.Fprintf(h, "tcstore\x00v%d\x00%s", FormatVersion, s.Key())
	return hex.EncodeToString(h.Sum(nil))
}

// Stats is a point-in-time snapshot of a cache's counters.
type Stats struct {
	Hits    int64 `json:"hits"`     // successful loads
	Misses  int64 `json:"misses"`   // absent artifacts
	Corrupt int64 `json:"corrupt"`  // artifacts rejected by validation
	Saves   int64 `json:"saves"`    // artifacts written
	SaveErr int64 `json:"save_err"` // failed writes
}

// Cache is a content-addressed on-disk store of built circuits. All
// methods are safe for concurrent use by multiple goroutines and
// multiple processes: writers stage to a temp file and atomically
// rename into place, so readers only ever observe complete artifacts,
// and concurrent writers of the same shape are idempotent (last rename
// wins with identical bytes).
type Cache struct {
	dir string

	hits, misses, corrupt, saves, saveErr atomic.Int64
}

// Open returns a cache rooted at dir, creating it if needed.
func Open(dir string) (*Cache, error) {
	if dir == "" {
		return nil, errors.New("store: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// Path returns the artifact path for a shape, whether or not it exists.
func (c *Cache) Path(s core.Shape) string {
	return filepath.Join(c.dir, Fingerprint(s)+".tcs")
}

// Load reads, validates and restores the cached Built for shape.
// Returns ErrMiss when absent and an ErrCorrupt-wrapping error when
// the artifact fails any validation layer.
func (c *Cache) Load(shape core.Shape) (*core.Built, error) {
	data, err := os.ReadFile(c.Path(shape))
	if errors.Is(err, os.ErrNotExist) {
		c.misses.Add(1)
		return nil, ErrMiss
	}
	if err != nil {
		c.misses.Add(1)
		return nil, fmt.Errorf("store: %w", err)
	}
	built, err := Decode(shape, data)
	if err != nil {
		c.corrupt.Add(1)
		return nil, err
	}
	c.hits.Add(1)
	return built, nil
}

// Save writes b's artifact, staging to a temp file in the same
// directory and renaming into place so concurrent readers and writers
// never observe a partial file. Returns the artifact path.
func (c *Cache) Save(b *core.Built) (string, error) {
	path, err := c.save(b)
	if err != nil {
		c.saveErr.Add(1)
		return "", err
	}
	c.saves.Add(1)
	return path, nil
}

func (c *Cache) save(b *core.Built) (string, error) {
	data, err := Encode(b)
	if err != nil {
		return "", err
	}
	path := c.Path(b.Shape)
	tmp, err := os.CreateTemp(c.dir, ".tcs-tmp-*")
	if err != nil {
		return "", fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return "", fmt.Errorf("store: write %s: %w", tmp.Name(), err)
	}
	// Flush before rename: an artifact must never become visible under
	// its content address with pages still in flight, or a crash could
	// leave a named-but-hollow file.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", fmt.Errorf("store: sync %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		return "", fmt.Errorf("store: close %s: %w", tmp.Name(), err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return "", fmt.Errorf("store: publish %s: %w", path, err)
	}
	return path, nil
}

// Remove deletes a shape's artifact (used after detecting corruption;
// missing files are not an error).
func (c *Cache) Remove(shape core.Shape) error {
	err := os.Remove(c.Path(shape))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	return err
}

// LoadOrBuild resolves a shape from disk, falling back to a build.
// On a hit it returns (built, true, nil). On a miss — or a corrupt
// artifact, which is deleted — it builds with buildWorkers workers,
// saves the result (best-effort: a read-only cache directory degrades
// to build-only operation), and returns (built, false, nil).
func (c *Cache) LoadOrBuild(shape core.Shape, buildWorkers int) (*core.Built, bool, error) {
	built, err := c.Load(shape)
	if err == nil {
		return built, true, nil
	}
	if errors.Is(err, ErrCorrupt) {
		// A damaged artifact never heals; drop it so the rebuild below
		// repopulates the slot.
		_ = c.Remove(shape)
	}
	built, berr := core.BuildShape(shape, buildWorkers)
	if berr != nil {
		return nil, false, berr
	}
	_, _ = c.Save(built)
	return built, false, nil
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Corrupt: c.corrupt.Load(),
		Saves:   c.saves.Load(),
		SaveErr: c.saveErr.Load(),
	}
}
