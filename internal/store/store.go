package store

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

var (
	// ErrMiss reports that the cache holds no artifact for the shape.
	ErrMiss = errors.New("store: cache miss")
	// ErrCorrupt reports that an artifact exists but failed validation
	// (checksum, structure, or shape mismatch); callers should rebuild.
	ErrCorrupt = errors.New("store: corrupt artifact")
	// ErrVersion reports an artifact written by a different format
	// version — intact, but unreadable by this build. It wraps
	// ErrCorrupt so a plain errors.Is(err, ErrCorrupt) treats both as
	// "rebuild"; in practice the fingerprint includes the version, so
	// this only surfaces for hand-renamed files.
	ErrVersion = fmt.Errorf("%w (format version mismatch)", ErrCorrupt)
)

// Fingerprint returns the content address of a shape's artifact in the
// current (TCS2) format: the hex SHA-256 of the format version and the
// shape's canonical key (which covers op, N, tau, algorithm, and every
// circuit-shaping Options field). Equal shapes build bit-identical
// circuits, so the fingerprint names the artifact, not a particular
// build of it — and because the version is hashed in, TCS1 and TCS2
// artifacts live side by side under different addresses.
func Fingerprint(s core.Shape) string {
	return fingerprint(FormatVersionTCS2, s)
}

func fingerprint(version int, s core.Shape) string {
	h := sha256.New()
	fmt.Fprintf(h, "tcstore\x00v%d\x00%s", version, s.Key())
	return hex.EncodeToString(h.Sum(nil))
}

// Stats is a point-in-time snapshot of a cache's counters.
type Stats struct {
	Hits     int64 `json:"hits"`     // successful loads
	Misses   int64 `json:"misses"`   // absent artifacts
	Corrupt  int64 `json:"corrupt"`  // artifacts rejected by validation
	Saves    int64 `json:"saves"`    // artifacts written
	SaveErr  int64 `json:"save_err"` // failed writes
	Mapped   int64 `json:"mapped"`   // loads served by an mmap'd artifact
	Migrated int64 `json:"migrated"` // TCS1 artifacts upgraded to TCS2 on load
}

// Options configures a cache's format and load strategy.
type Options struct {
	// Format selects the envelope generation: FormatVersionTCS2 (the
	// default, chosen when zero) or FormatVersion for legacy TCS1.
	Format int
	// NoMap forces heap decodes even where mmap is available — for
	// debugging, and for callers that cannot guarantee the cache stays
	// open for the lifetime of the circuits it hands out.
	NoMap bool
}

func (o Options) format() int {
	if o.Format == 0 {
		return FormatVersionTCS2
	}
	return o.Format
}

// Cache is a content-addressed on-disk store of built circuits. All
// methods are safe for concurrent use by multiple goroutines and
// multiple processes: writers stage to a temp file and atomically
// rename into place, so readers only ever observe complete artifacts,
// and concurrent writers of the same shape are idempotent (both
// envelope encoders are deterministic, so last rename wins with
// identical bytes).
//
// In TCS2 mode, loads go through the mmap path when the platform
// supports it: the returned circuits alias mapped pages owned by the
// cache, and stay valid until Close. Long-lived processes (the serving
// stack) simply never close — the artifacts are their working set —
// while tests and short-lived tools should Close after the circuits
// are done with.
type Cache struct {
	dir  string
	opts Options

	hits, misses, corrupt, saves, saveErr, mapped, migrated atomic.Int64

	mu       sync.Mutex
	mappings []*Mapping
}

// Open returns a cache rooted at dir with default options (TCS2,
// mapped loads), creating the directory if needed.
func Open(dir string) (*Cache, error) {
	return OpenWith(dir, Options{})
}

// OpenWith returns a cache rooted at dir with explicit options.
func OpenWith(dir string, opts Options) (*Cache, error) {
	if dir == "" {
		return nil, errors.New("store: empty cache directory")
	}
	if f := opts.format(); f != FormatVersion && f != FormatVersionTCS2 {
		return nil, fmt.Errorf("store: unknown format version %d", f)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Cache{dir: dir, opts: opts}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// Path returns the artifact path for a shape in the cache's configured
// format, whether or not it exists.
func (c *Cache) Path(s core.Shape) string {
	return filepath.Join(c.dir, fingerprint(c.opts.format(), s)+".tcs")
}

// legacyPath is where a TCS1-era cache would hold this shape; the TCS2
// load path falls back to it for transparent migration.
func (c *Cache) legacyPath(s core.Shape) string {
	return filepath.Join(c.dir, fingerprint(FormatVersion, s)+".tcs")
}

// Load reads, validates and restores the cached Built for shape.
// Returns ErrMiss when absent and an ErrCorrupt-wrapping error when
// the artifact fails any validation layer.
//
// In TCS2 mode the artifact is memory-mapped (unless Options.NoMap or
// the platform lacks support) and the circuit aliases the mapping; see
// the Cache doc for lifetime rules. A miss of the TCS2 artifact falls
// back to the shape's TCS1-era address: a hit there is decoded, counted
// as a migration, and re-saved in TCS2 so the next load takes the
// mapped path. The old file is left in place for older binaries
// sharing the directory.
func (c *Cache) Load(shape core.Shape) (*core.Built, error) {
	if c.opts.format() == FormatVersion {
		data, err := os.ReadFile(c.Path(shape))
		if err != nil {
			c.misses.Add(1)
			if errors.Is(err, os.ErrNotExist) {
				return nil, ErrMiss
			}
			return nil, fmt.Errorf("store: %w", err)
		}
		built, err := Decode(shape, data)
		if err != nil {
			c.corrupt.Add(1)
			return nil, err
		}
		c.hits.Add(1)
		return built, nil
	}

	built, err := c.loadV2(shape)
	switch {
	case err == nil:
		c.hits.Add(1)
		return built, nil
	case errors.Is(err, os.ErrNotExist):
		// fall through to the legacy address
	default:
		c.corrupt.Add(1)
		return nil, err
	}

	data, err := os.ReadFile(c.legacyPath(shape))
	if err != nil {
		c.misses.Add(1)
		if errors.Is(err, os.ErrNotExist) {
			return nil, ErrMiss
		}
		return nil, fmt.Errorf("store: %w", err)
	}
	built, err = Decode(shape, data)
	if err != nil {
		c.corrupt.Add(1)
		return nil, err
	}
	// Migrate: republish under the TCS2 address (best-effort — a
	// read-only directory still serves the legacy artifact).
	if _, serr := c.save(built); serr == nil {
		c.saves.Add(1)
		c.migrated.Add(1)
	}
	c.hits.Add(1)
	return built, nil
}

// loadV2 resolves the TCS2 artifact, mapped when possible. Absence is
// reported as an os.ErrNotExist-wrapping error (not ErrMiss) so Load
// can distinguish "try the legacy address" from a final miss.
func (c *Cache) loadV2(shape core.Shape) (*core.Built, error) {
	path := c.Path(shape)
	if c.opts.NoMap || !mmapSupported {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		return DecodeTCS2(shape, data)
	}
	m, err := MapCircuit(path, shape)
	if err != nil {
		return nil, err
	}
	if m.Mapped() {
		c.mu.Lock()
		c.mappings = append(c.mappings, m)
		c.mu.Unlock()
		c.mapped.Add(1)
	}
	return m.Built(), nil
}

// Close releases every file mapping this cache has handed out. Circuits
// returned by Load must not be used afterwards. Safe to call on caches
// that never mapped anything.
func (c *Cache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var first error
	for _, m := range c.mappings {
		if err := m.Close(); err != nil && first == nil {
			first = err
		}
	}
	c.mappings = nil
	return first
}

// Save writes b's artifact in the cache's configured format, staging
// to a temp file in the same directory and renaming into place so
// concurrent readers and writers never observe a partial file. Returns
// the artifact path.
func (c *Cache) Save(b *core.Built) (string, error) {
	path, err := c.save(b)
	if err != nil {
		c.saveErr.Add(1)
		return "", err
	}
	c.saves.Add(1)
	return path, nil
}

func (c *Cache) save(b *core.Built) (string, error) {
	var (
		data []byte
		err  error
	)
	if c.opts.format() == FormatVersionTCS2 {
		data, err = EncodeTCS2(b)
	} else {
		data, err = Encode(b)
	}
	if err != nil {
		return "", err
	}
	path := c.Path(b.Shape)
	tmp, err := os.CreateTemp(c.dir, ".tcs-tmp-*")
	if err != nil {
		return "", fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return "", fmt.Errorf("store: write %s: %w", tmp.Name(), err)
	}
	// Flush before rename: an artifact must never become visible under
	// its content address with pages still in flight, or a crash could
	// leave a named-but-hollow file.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", fmt.Errorf("store: sync %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		return "", fmt.Errorf("store: close %s: %w", tmp.Name(), err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return "", fmt.Errorf("store: publish %s: %w", path, err)
	}
	return path, nil
}

// Remove deletes a shape's artifacts — both the configured format's and
// the legacy address (used after detecting corruption, where leaving a
// stale legacy file would resurrect the damage on the next load).
// Missing files are not an error.
func (c *Cache) Remove(shape core.Shape) error {
	err := os.Remove(c.Path(shape))
	if errors.Is(err, os.ErrNotExist) {
		err = nil
	}
	if lp := c.legacyPath(shape); lp != c.Path(shape) {
		lerr := os.Remove(lp)
		if lerr != nil && !errors.Is(lerr, os.ErrNotExist) && err == nil {
			err = lerr
		}
	}
	return err
}

// LoadOrBuild resolves a shape from disk, falling back to a build.
// On a hit it returns (built, true, nil). On a miss — or a corrupt
// artifact, which is deleted — it builds with buildWorkers workers,
// saves the result (best-effort: a read-only cache directory degrades
// to build-only operation), and returns (built, false, nil).
func (c *Cache) LoadOrBuild(shape core.Shape, buildWorkers int) (*core.Built, bool, error) {
	built, err := c.Load(shape)
	if err == nil {
		return built, true, nil
	}
	if errors.Is(err, ErrCorrupt) {
		// A damaged artifact never heals; drop it so the rebuild below
		// repopulates the slot.
		_ = c.Remove(shape)
	}
	built, berr := core.BuildShape(shape, buildWorkers)
	if berr != nil {
		return nil, false, berr
	}
	_, _ = c.Save(built)
	return built, false, nil
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:     c.hits.Load(),
		Misses:   c.misses.Load(),
		Corrupt:  c.corrupt.Load(),
		Saves:    c.saves.Load(),
		SaveErr:  c.saveErr.Load(),
		Mapped:   c.mapped.Load(),
		Migrated: c.migrated.Load(),
	}
}
