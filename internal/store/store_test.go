package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/matrix"
)

// testShapes covers every op at sizes small enough for -short CI runs.
func testShapes() []core.Shape {
	return []core.Shape{
		{Op: core.OpMatMul, N: 4, Alg: "strassen"},
		{Op: core.OpMatMul, N: 8, Alg: "strassen", EntryBits: 2, Signed: true},
		{Op: core.OpTrace, N: 4, Tau: 6, Alg: "strassen"},
		{Op: core.OpTrace, N: 8, Tau: 12, Alg: "strassen"},
		{Op: core.OpCount, N: 4, Alg: "strassen"},
	}
}

// evalBatch runs a random batch through the circuit's bit-sliced
// evaluator and returns the gathered marked-output planes as flat
// bools, sample-major.
func evalBatch(t *testing.T, c *circuit.Circuit, rng *rand.Rand, batch int) [][]bool {
	t.Helper()
	ev := circuit.NewEvaluator(c, 0)
	defer ev.Close()
	ins := make([][]bool, batch)
	sampleRng := rand.New(rand.NewSource(rng.Int63()))
	for i := range ins {
		in := make([]bool, c.NumInputs())
		for j := range in {
			in[j] = sampleRng.Intn(2) == 1
		}
		ins[i] = in
	}
	outs := ev.EvalBatch(ins)
	gathered := make([][]bool, batch)
	for i, vals := range outs {
		row := make([]bool, len(c.Outputs()))
		for j, o := range c.Outputs() {
			row[j] = vals[o]
		}
		gathered[i] = row
	}
	return gathered
}

// The round-trip property the format guarantees: serialize→deserialize
// yields byte-identical re-serialization, and the reloaded circuit is
// bit-identical to the original under batched evaluation.
func TestRoundTripByteIdentical(t *testing.T) {
	for _, shape := range testShapes() {
		t.Run(shape.Key(), func(t *testing.T) {
			bt, err := core.BuildShape(shape, 0)
			if err != nil {
				t.Fatal(err)
			}
			data, err := Encode(bt)
			if err != nil {
				t.Fatal(err)
			}
			rt, err := Decode(shape, data)
			if err != nil {
				t.Fatal(err)
			}
			data2, err := Encode(rt)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(data, data2) {
				t.Fatal("re-serialization is not byte-identical")
			}

			rng := rand.New(rand.NewSource(7))
			// Same seed → same inputs for both circuits.
			seed := rng.Int63()
			a := evalBatch(t, bt.Circuit(), rand.New(rand.NewSource(seed)), 65)
			b := evalBatch(t, rt.Circuit(), rand.New(rand.NewSource(seed)), 65)
			for i := range a {
				for j := range a[i] {
					if a[i][j] != b[i][j] {
						t.Fatalf("sample %d output %d differs after reload", i, j)
					}
				}
			}
		})
	}
}

// End-to-end through the cache: save, load, and answer real queries
// identically.
func TestCacheSaveLoad(t *testing.T) {
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	shape := core.Shape{Op: core.OpMatMul, N: 4, Alg: "strassen", EntryBits: 2, Signed: true}

	if _, err := cache.Load(shape); !errors.Is(err, ErrMiss) {
		t.Fatalf("empty cache returned %v, want ErrMiss", err)
	}
	bt, err := core.BuildShape(shape, 0)
	if err != nil {
		t.Fatal(err)
	}
	path, err := cache.Save(bt)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(path) != cache.Dir() {
		t.Errorf("artifact %s outside cache dir %s", path, cache.Dir())
	}
	rt, err := cache.Load(shape)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 4; trial++ {
		a := matrix.Random(rng, 4, 4, -2, 2)
		b := matrix.Random(rng, 4, 4, -2, 2)
		want, err := bt.MatMul.Multiply(a, b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := rt.MatMul.Multiply(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !want.Equal(got) {
			t.Fatal("reloaded circuit multiplies differently")
		}
	}

	st := cache.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Saves != 1 || st.Corrupt != 0 {
		t.Errorf("stats %+v, want 1 hit / 1 miss / 1 save", st)
	}

	// A different shape misses even with the first artifact present.
	other := shape
	other.N = 8
	if _, err := cache.Load(other); !errors.Is(err, ErrMiss) {
		t.Errorf("cross-shape load returned %v, want ErrMiss", err)
	}
}

// Fault injection: flipping any byte of the artifact must yield a
// rejection (ErrCorrupt), never a mis-loaded circuit or a panic, and
// LoadOrBuild must recover by rebuilding.
func TestFaultInjectionFlippedBytes(t *testing.T) {
	shape := core.Shape{Op: core.OpTrace, N: 4, Tau: 6, Alg: "strassen"}
	bt, err := core.BuildShape(shape, 0)
	if err != nil {
		t.Fatal(err)
	}
	good, err := Encode(bt)
	if err != nil {
		t.Fatal(err)
	}

	// Every byte for small offsets (headers, lengths), then a stride
	// through the bulk and the trailing checksum region.
	offsets := map[int]bool{}
	for i := 0; i < len(good) && i < 128; i++ {
		offsets[i] = true
	}
	for i := 128; i < len(good); i += 97 {
		offsets[i] = true
	}
	for i := len(good) - 8; i < len(good); i++ {
		if i >= 0 {
			offsets[i] = true
		}
	}
	for off := range offsets {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0x41
		if _, err := Decode(shape, bad); err == nil {
			t.Fatalf("flipped byte at %d accepted", off)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flipped byte at %d: error %v does not wrap ErrCorrupt", off, err)
		}
	}
}

// Truncations at every length are rejected.
func TestFaultInjectionTruncation(t *testing.T) {
	shape := core.Shape{Op: core.OpCount, N: 4, Alg: "strassen"}
	bt, err := core.BuildShape(shape, 0)
	if err != nil {
		t.Fatal(err)
	}
	good, err := Encode(bt)
	if err != nil {
		t.Fatal(err)
	}
	step := 1
	if len(good) > 4096 {
		step = 31
	}
	for cut := 0; cut < len(good); cut += step {
		if _, err := Decode(shape, good[:cut]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d bytes: %v", cut, err)
		}
	}
	// Trailing garbage after a valid envelope.
	if _, err := Decode(shape, append(append([]byte(nil), good...), 0xCC)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing garbage: %v", err)
	}
}

// A wrong-version artifact (with a valid checksum) is rejected with
// ErrVersion, distinguishable from damage but still rebuild-triggering.
func TestWrongVersionRejected(t *testing.T) {
	shape := core.Shape{Op: core.OpMatMul, N: 4, Alg: "strassen"}
	bt, err := core.BuildShape(shape, 0)
	if err != nil {
		t.Fatal(err)
	}
	good, err := Encode(bt)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), good...)
	bad[4] = FormatVersion + 1 // bump the version field...
	// ...and re-checksum so only the version differs from a valid file.
	binary.LittleEndian.PutUint32(bad[len(bad)-4:], crc32.Checksum(bad[:len(bad)-4], crcTable))
	_, err = Decode(shape, bad)
	if !errors.Is(err, ErrVersion) {
		t.Errorf("version mismatch: %v, want ErrVersion", err)
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("ErrVersion must wrap ErrCorrupt, got %v", err)
	}
}

// On-disk corruption heals through LoadOrBuild: reject, delete,
// rebuild, re-save.
func TestLoadOrBuildHealsCorruption(t *testing.T) {
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	shape := core.Shape{Op: core.OpTrace, N: 4, Tau: 2, Alg: "strassen"}

	// Cold: builds and saves.
	bt, fromDisk, err := cache.LoadOrBuild(shape, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fromDisk {
		t.Fatal("cold LoadOrBuild claims a disk hit")
	}
	// Warm: loads.
	if _, fromDisk, err = cache.LoadOrBuild(shape, 0); err != nil || !fromDisk {
		t.Fatalf("warm LoadOrBuild: hit=%v err=%v", fromDisk, err)
	}

	// Corrupt the artifact in place.
	path := cache.Path(shape)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rt, fromDisk, err := cache.LoadOrBuild(shape, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fromDisk {
		t.Fatal("corrupt artifact served as a hit")
	}
	rng := rand.New(rand.NewSource(11))
	adj := matrix.New(4, 4)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if rng.Intn(2) == 1 {
				adj.Set(i, j, 1)
				adj.Set(j, i, 1)
			}
		}
	}
	want, err := bt.Trace.Decide(adj)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rt.Trace.Decide(adj)
	if err != nil {
		t.Fatal(err)
	}
	if want != got {
		t.Fatal("healed circuit decides differently")
	}
	// The rebuild re-saved a valid artifact.
	if _, err := cache.Load(shape); err != nil {
		t.Fatalf("artifact not healed: %v", err)
	}
	if st := cache.Stats(); st.Corrupt != 1 {
		t.Errorf("stats %+v, want exactly 1 corrupt detection", st)
	}
}

// Concurrent writers and readers on the same shape: every load must
// observe either a miss or a complete, valid artifact (the atomic
// temp+rename protocol), never a partial file.
func TestConcurrentSaveLoad(t *testing.T) {
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	shape := core.Shape{Op: core.OpMatMul, N: 4, Alg: "strassen"}
	bt, err := core.BuildShape(shape, 0)
	if err != nil {
		t.Fatal(err)
	}

	const writers, readers, rounds = 4, 4, 8
	var wg sync.WaitGroup
	errc := make(chan error, writers*rounds+readers*rounds)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if _, err := cache.Save(bt); err != nil {
					errc <- err
				}
			}
		}()
	}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				_, err := cache.Load(shape)
				if err != nil && !errors.Is(err, ErrMiss) {
					errc <- fmt.Errorf("reader observed %w", err)
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	// No stranded temp files.
	matches, err := filepath.Glob(filepath.Join(cache.Dir(), ".tcs-tmp-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Errorf("stranded temp files: %v", matches)
	}
}

// Fingerprints are stable per shape and distinct across shapes and
// format versions.
func TestFingerprint(t *testing.T) {
	seen := map[string]core.Shape{}
	for _, s := range testShapes() {
		fp := Fingerprint(s)
		if len(fp) != 64 {
			t.Fatalf("fingerprint %q is not hex SHA-256", fp)
		}
		if prev, dup := seen[fp]; dup {
			t.Fatalf("shapes %v and %v share fingerprint %s", prev, s, fp)
		}
		seen[fp] = s
		if Fingerprint(s) != fp {
			t.Fatal("fingerprint not deterministic")
		}
	}
	// Tau participates (same op/N/alg, different threshold).
	a := core.Shape{Op: core.OpTrace, N: 4, Tau: 2, Alg: "strassen"}
	b := a
	b.Tau = 3
	if Fingerprint(a) == Fingerprint(b) {
		t.Error("tau does not affect the fingerprint")
	}
}
